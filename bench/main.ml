(* CacheBox benchmark & reproduction harness.

   Usage:
     dune exec bench/main.exe                  -- run every experiment
     dune exec bench/main.exe -- rq1 rq5 ...   -- run a subset
     dune exec bench/main.exe -- bechamel      -- only the micro-benchmarks

   One section per table/figure of the paper's evaluation (Figs 3/4, 7-14,
   Table 1) plus the DESIGN.md ablations. Accuracy experiments train real
   CB-GAN models at repro scale; see EXPERIMENTS.md for paper-vs-measured
   discussion. Environment knobs: CACHEBOX_FAST=1 shrinks everything,
   CACHEBOX_EPOCHS=n overrides training length. *)

let log fmt = Printf.printf fmt

let section title =
  log "\n================================================================\n";
  log "%s\n" title;
  log "================================================================\n%!"

let progress msg = Printf.printf "    [%s]\n%!" msg

let marker diff = if diff < 1.0 then " <1%" else if diff < 2.0 then " 1-2%" else ""

let print_accuracy (r : Experiments.accuracy_result) =
  log "\n  %s\n" r.Experiments.label;
  log "  %-28s %-10s %8s %8s %8s\n" "benchmark" "suite" "true" "pred" "|diff|%";
  List.iter
    (fun (row : Experiments.row) ->
      let d = Experiments.row_abs_pct row in
      log "  %-28s %-10s %8.4f %8.4f %8.2f%s\n" row.Experiments.benchmark
        (Workload.suite_name row.Experiments.suite)
        row.Experiments.truth row.Experiments.predicted d (marker d))
    r.Experiments.rows;
  log "  -> average absolute %%difference: %.2f\n%!" r.Experiments.avg_abs_pct

let scale = Experiments.default_scale ()

(* Per-experiment step budgets: heavier experiments get fewer epochs so the
   full suite stays tractable on one CPU. *)
let rq1_scale = { scale with Experiments.epochs = scale.Experiments.epochs * 6 }
let rq2_scale = { scale with Experiments.epochs = scale.Experiments.epochs * 2 }
let rq4_scale =
  { scale with Experiments.epochs = scale.Experiments.epochs * 3; train_cap = 6; test_cap = 8 }
let rq7_scale = { scale with Experiments.epochs = scale.Experiments.epochs * 3; train_cap = 8 }
let ablation_scale =
  { scale with Experiments.epochs = scale.Experiments.epochs * 3; train_cap = 8; test_cap = 8 }

(* --- Fig 3 / Fig 4 --- *)

let run_fig3 () =
  section "Fig 3/4: access & miss heatmaps, 30% overlap";
  let spec = scale.Experiments.spec in
  let w = Suite.find "seidel-2d.small" in
  let trace = w.Workload.generate scale.Experiments.trace_len in
  let cache = Cache.create Experiments.l1_64s12w in
  let hits = Array.map (fun a -> Cache.access cache a) trace in
  let pairs = Heatmap.pair_of_trace spec ~addresses:trace ~hits in
  (match pairs with
  | (a, m) :: _ ->
    log "access heatmap (%s):\n%s" w.Workload.name
      (Heatmap.render_ascii ~max_rows:16 ~max_cols:64 a);
    log "miss heatmap (L1 %s):\n%s" (Cache.config_name Experiments.l1_64s12w)
      (Heatmap.render_ascii ~max_rows:16 ~max_cols:64 m)
  | [] -> ());
  match Heatmap.of_trace spec trace with
  | a :: b :: _ ->
    let ov = Heatmap.overlap_columns spec in
    let same = ref true in
    for row = 0 to spec.Heatmap.height - 1 do
      for col = 0 to ov - 1 do
        if Tensor.get2 a row (spec.Heatmap.width - ov + col) <> Tensor.get2 b row col then
          same := false
      done
    done;
    log "consecutive heatmaps share %d columns; overlapped region identical: %b\n" ov !same
  | _ -> ()

(* --- RQ1 --- *)

let run_rq1 () =
  section "RQ1 (Fig 7): generalization to unseen benchmarks, mixed suites";
  let r = Experiments.rq1 ~log:progress rq1_scale in
  print_accuracy r

(* --- RQ2/RQ3/RQ5/RQ6 share a model --- *)

let rq2_ctx : Experiments.rq2_context option ref = ref None

let get_rq2_ctx () =
  match !rq2_ctx with
  | Some ctx -> ctx
  | None ->
    let ctx = Experiments.train_rq2_model ~log:progress rq2_scale in
    (try
       let dir = "_artifacts" in
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       Cbgan.save ctx.Experiments.model (Filename.concat dir "rq2_model.ckpt");
       progress "checkpoint saved to _artifacts/rq2_model.ckpt"
     with Sys_error _ -> ());
    rq2_ctx := Some ctx;
    ctx

let run_rq2 () =
  section "RQ2 (Fig 8): one model, four L1 configurations";
  let ctx = get_rq2_ctx () in
  List.iter print_accuracy (Experiments.rq2 ~log:progress ctx)

let run_rq3 () =
  section "RQ3 (Fig 9): unseen cache configurations (no retraining)";
  let ctx = get_rq2_ctx () in
  List.iter print_accuracy (Experiments.rq3 ~log:progress ctx)

let run_rq4 () =
  section "RQ4 (Fig 10): multi-level caches, combined vs standalone models";
  let r = Experiments.rq4 ~log:progress rq4_scale in
  log "\n  Combined L1+L2+L3 model (no cache parameters):\n";
  List.iter print_accuracy r.Experiments.combined;
  log "\n  Standalone per-level models (with cache parameters):\n";
  List.iter print_accuracy r.Experiments.standalone;
  if r.Experiments.excluded <> [] then begin
    log "\n  excluded (low-data regime, paper Sec 6.1 thresholds):\n";
    List.iter
      (fun (name, lvl) -> log "    %s at %s\n" name (Hierarchy.level_name lvl))
      r.Experiments.excluded
  end

let run_rq5 () =
  section "RQ5 (Fig 11): batched inference scaling vs MultiCacheSim";
  let ctx = get_rq2_ctx () in
  let r = Experiments.rq5 ~log:progress ctx in
  log "\n  %-12s %14s %10s\n" "batch size" "sec/benchmark" "speedup";
  List.iter
    (fun (p : Experiments.rq5_point) ->
      log "  %-12d %14.3f %9.2fx\n" p.Experiments.batch_size p.Experiments.seconds
        p.Experiments.speedup_vs_b1)
    r.Experiments.points;
  log "\n  MultiCacheSim (same traces): %.5f sec/benchmark\n" r.Experiments.multicachesim_seconds;
  log "  (paper: 2.4x at batch 32 on an A6000 GPU; on one CPU the surviving\n";
  log "   mechanism is per-call amortization -- see EXPERIMENTS.md)\n"

let run_rq6 () =
  section "RQ6 (Fig 12): true vs predicted hit-rate scatter";
  let ctx = get_rq2_ctx () in
  let rows = Experiments.rq6 ~log:progress ctx in
  log "\n  %-28s %-14s %8s %8s %8s\n" "benchmark" "config" "true" "pred" "bias";
  List.iter
    (fun (row : Experiments.row) ->
      log "  %-28s %-14s %8.4f %8.4f %+8.4f\n" row.Experiments.benchmark
        row.Experiments.config_name row.Experiments.truth row.Experiments.predicted
        (row.Experiments.predicted -. row.Experiments.truth))
    rows;
  let mid =
    List.filter
      (fun (r : Experiments.row) -> r.Experiments.truth >= 0.70 && r.Experiments.truth <= 0.90)
      rows
  in
  if mid <> [] then begin
    let bias =
      Metrics.mean
        (List.map (fun (r : Experiments.row) -> r.Experiments.predicted -. r.Experiments.truth) mid)
    in
    log "\n  mean bias on intermediate (70-90%%) hit rates: %+.4f (paper reports a positive bias)\n"
      bias
  end

let run_rq7 () =
  section "RQ7 (Fig 13): next-line prefetcher modelling (MSE / SSIM)";
  let r = Experiments.rq7 ~log:progress rq7_scale in
  log "\n  %-28s %10s %10s\n" "benchmark" "MSE" "SSIM";
  List.iter
    (fun (row : Experiments.rq7_row) ->
      log "  %-28s %10.5f %10.4f\n" row.Experiments.benchmark row.Experiments.mse
        row.Experiments.ssim)
    r.Experiments.rows;
  log "  -> average MSE %.5f, average SSIM %.4f (paper: low MSE, high SSIM)\n"
    r.Experiments.avg_mse r.Experiments.avg_ssim

let run_fig14 () =
  section "Fig 14: histogram of true L1 hit rates (SPEC-like suite)";
  let h = Experiments.fig14 scale in
  log "%s" (Metrics.render_histogram h);
  let total = Array.fold_left ( + ) 0 h.Metrics.counts in
  let above_65 =
    let bins = Array.length h.Metrics.counts in
    let from_bin = int_of_float (0.65 *. float_of_int bins) in
    let acc = ref 0 in
    for i = from_bin to bins - 1 do
      acc := !acc + h.Metrics.counts.(i)
    done;
    !acc
  in
  log "  %d/%d (%.0f%%) of benchmarks above 65%% hit rate (paper: >95%% of SPEC)\n" above_65
    total
    (100.0 *. float_of_int above_65 /. float_of_int total)

let run_table1 () =
  section "Table 1: L1 miss-rate prediction, CBox vs tabular synthesis / HRD / STM";
  let rows = Experiments.table1 ~log:progress { scale with Experiments.epochs = scale.Experiments.epochs * 4 } in
  log "\n  %-5s %9s %9s %9s %9s %9s | %9s %9s %9s\n" "app" "Tab-Base" "Tab-RD" "Tab-IC" "HRD"
    "STM" "CBox-best" "CBox-wrst" "CBox-avg";
  List.iter
    (fun (r : Experiments.table1_row) ->
      log "  %-5s %9.2f %9.2f %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n" r.Experiments.app
        r.Experiments.tab_base r.Experiments.tab_rd r.Experiments.tab_ic r.Experiments.hrd
        r.Experiments.stm r.Experiments.cbox_best r.Experiments.cbox_worst
        r.Experiments.cbox_avg)
    rows;
  let avg f = Metrics.mean (List.map f rows) in
  log "  %-5s %9.2f %9.2f %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f\n" "avg"
    (avg (fun r -> r.Experiments.tab_base))
    (avg (fun r -> r.Experiments.tab_rd))
    (avg (fun r -> r.Experiments.tab_ic))
    (avg (fun r -> r.Experiments.hrd))
    (avg (fun r -> r.Experiments.stm))
    (avg (fun r -> r.Experiments.cbox_best))
    (avg (fun r -> r.Experiments.cbox_worst))
    (avg (fun r -> r.Experiments.cbox_avg))

let run_ablations () =
  section "Ablation: lambda (L1 reconstruction weight, paper uses 150)";
  List.iter
    (fun (lambda, (r : Experiments.accuracy_result)) ->
      log "  lambda=%5.0f -> avg abs %%diff %.2f (%d benchmarks)\n" lambda
        r.Experiments.avg_abs_pct
        (List.length r.Experiments.rows))
    (Experiments.ablate_lambda ~log:progress ablation_scale);
  section "Ablation: heatmap overlap (paper Sec 3.1.1 prefers 30%)";
  List.iter
    (fun (overlap, (r : Experiments.accuracy_result)) ->
      log "  overlap=%3.0f%% -> avg abs %%diff %.2f\n" (overlap *. 100.0) r.Experiments.avg_abs_pct)
    (Experiments.ablate_overlap ~log:progress ablation_scale);
  section "Ablation: cache-parameter conditioning (paper Sec 3.2.3)";
  (* Four-config training is the costliest setup; run it at the base epoch
     count -- the comparison is relative. *)
  let params_scale = { scale with Experiments.train_cap = 8; test_cap = 8 } in
  List.iter
    (fun (on, (r : Experiments.accuracy_result)) ->
      log "  cache params %-3s -> avg abs %%diff %.2f\n" (if on then "on" else "off")
        r.Experiments.avg_abs_pct)
    (Experiments.ablate_cache_params ~log:progress params_scale)

let run_policies () =
  section "Ablation: replacement policies & victim cache (paper Sec 6.3 future work)";
  let benchmarks = [ "gemm.small"; "605.mcf_s-734B"; "623.xalancbmk_s-734B"; "pagerank.uni-small" ] in
  let policies =
    [ ("LRU", Cache.Lru); ("FIFO", Cache.Fifo); ("PLRU", Cache.Plru);
      ("SRRIP", Cache.Srrip); ("Random", Cache.Random_policy 7) ]
  in
  log "\n  %-24s" "benchmark";
  List.iter (fun (name, _) -> log " %8s" name) policies;
  log " %10s\n" "LRU+victim";
  List.iter
    (fun bname ->
      let w = Suite.find bname in
      let trace = w.Workload.generate scale.Experiments.trace_len in
      log "  %-24s" bname;
      List.iter
        (fun (_, policy) ->
          let c = Cache.create (Cache.config ~policy ~sets:64 ~ways:12 ()) in
          Array.iter (fun a -> ignore (Cache.access c a)) trace;
          log " %8.4f" (Cache.hit_rate (Cache.stats c)))
        policies;
      let v = Victim.create ~main:(Cache.config ~sets:64 ~ways:12 ()) ~victim_entries:16 in
      Array.iter (fun a -> ignore (Victim.access v a)) trace;
      log " %10.4f\n" (Victim.hit_rate (Victim.stats v)))
    benchmarks

(* --- Parallel backend: serial vs N-domain throughput on the Dpool pool --- *)

let run_parallel () =
  section "Parallel: persistent domain pool, serial vs N-domain throughput";
  let fast = Sys.getenv_opt "CACHEBOX_FAST" <> None in
  let counts = [ 1; 2; 4 ] in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let report name times =
    (* [times]: (domains, seconds) with domains=1 first. *)
    let serial = List.assoc 1 times in
    log "  %-28s" name;
    List.iter
      (fun (d, t) -> log "  %dd %8.3fs (%4.2fx)" d t (serial /. Float.max 1e-9 t))
      times;
    log "\n%!"
  in
  let measure name f =
    ignore (Dpool.with_domains 1 (fun () -> time f));
    (* warm-up: pool spawn + allocation *)
    report name (List.map (fun d -> (d, Dpool.with_domains d (fun () -> time f))) counts)
  in
  (* 1. Raw GEMM. *)
  let dim = if fast then 96 else 256 in
  let reps = if fast then 2 else 4 in
  let rng = Prng.create 11 in
  let a = Tensor.randn rng [| dim; dim |] and b = Tensor.randn rng [| dim; dim |] in
  let c = Tensor.zeros [| dim; dim |] in
  measure
    (Printf.sprintf "gemm %dx%dx%d x%d" dim dim dim reps)
    (fun () ->
      for _ = 1 to reps do
        Blas.gemm ~alpha:1.0 ~a ~b ~beta:0.0 c
      done);
  (* Bit-identity spot check across the extreme domain counts. *)
  let at d =
    Dpool.with_domains d (fun () ->
        let out = Tensor.zeros [| dim; dim |] in
        Blas.gemm ~alpha:1.0 ~a ~b ~beta:0.0 out;
        Tensor.to_array out)
  in
  log "  gemm serial/4-domain outputs bit-identical: %b\n%!"
    (Array.for_all2 Float.equal (at 1) (at 4));
  (* 2. U-Net generator forward + backward (the conv/deconv hot path). *)
  let batch = if fast then 2 else 4 in
  let model = Cbgan.create ~seed:3 (Cbgan.default_config ~ngf:8 ~ndf:8 ()) in
  let size = (Cbgan.model_config model).Cbgan.image_size in
  let x = Tensor.rand rng [| batch; 1; size; size |] ~lo:(-1.0) ~hi:1.0 in
  let target = Tensor.rand rng [| batch; 1; size; size |] ~lo:(-1.0) ~hi:1.0 in
  let cp = Cbgan.cache_params_tensor (List.init batch (fun _ -> Experiments.l1_64s12w)) in
  measure
    (Printf.sprintf "u-net fwd+bwd b%d" batch)
    (fun () ->
      let frng = Prng.create 5 in
      let out = Cbgan.generator_forward model ~rng:frng ~training:true ~cache_params:cp x in
      Value.backward (Value.l1_loss out target));
  (* 3. A full CB-GAN training step (G+D forward/backward + Adam), driven
     through Cbox_train's [domains] option. *)
  let spec = scale.Experiments.spec in
  let ws =
    List.filteri (fun i _ -> i < if fast then 1 else 2) (Suite.split (Suite.all ())).Suite.train
  in
  let data =
    Cbox_dataset.build_l1 spec ~configs:[ Experiments.l1_64s12w ]
      ~trace_len:(if fast then 4000 else 8000)
      ws
  in
  let samples = Cbox_dataset.to_samples data in
  let step_model = Cbgan.create ~seed:7 (Cbgan.default_config ~ngf:8 ~ndf:8 ()) in
  let train_step d () =
    let options =
      { (Cbox_train.default_options ~epochs:1 ~batch_size:batch ()) with
        Cbox_train.domains = Some d;
      }
    in
    ignore (Cbox_train.train step_model spec options samples)
  in
  report "cb-gan train step"
    (List.map (fun d -> (d, time (train_step d))) counts)

(* --- Kernel benchmarks: reference vs tiled dense path --- *)

let run_kernels () =
  section "Kernels: reference vs tiled+workspace dense path (old vs new)";
  let results = Kbench.run ~log:progress () in
  Kbench.pp_table Format.std_formatter results;
  try
    let dir = "_artifacts" in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir "BENCH_KERNELS.json" in
    Kbench.write_json ~path results;
    progress (Printf.sprintf "json written to %s" path)
  with Sys_error _ -> ()

(* --- Dataset-pipeline benchmarks: recorded seed path vs streaming builders --- *)

let run_dataset () =
  section "Dataset pipeline: recorded traces vs streaming/parallel/cached builders (old vs new)";
  let results = Dbench.run ~log:progress () in
  Kbench.pp_table Format.std_formatter results;
  try
    let dir = "_artifacts" in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir "BENCH_DATASET.json" in
    Kbench.write_json ~path results;
    progress (Printf.sprintf "json written to %s" path)
  with Sys_error _ -> ()

(* --- Bechamel micro-benchmarks: one Test.make per table/figure family --- *)

let run_bechamel () =
  section "Bechamel micro-benchmarks (one per table/figure kernel)";
  let open Bechamel in
  let spec = scale.Experiments.spec in
  let w = Suite.find "gemm.small" in
  let trace = w.Workload.generate 4000 in
  let model = Cbgan.create ~seed:1 (Cbgan.default_config ~ngf:8 ~ndf:8 ()) in
  let rng = Prng.create 1 in
  let img1 =
    Tensor.rand rng [| 1; 1; spec.Heatmap.height; spec.Heatmap.width |] ~lo:(-1.0) ~hi:1.0
  in
  let cp1 = Cbgan.cache_params_tensor [ Experiments.l1_64s12w ] in
  let imgs8 =
    Tensor.rand rng [| 8; 1; spec.Heatmap.height; spec.Heatmap.width |] ~lo:(-1.0) ~hi:1.0
  in
  let cp8 = Cbgan.cache_params_tensor (List.init 8 (fun _ -> Experiments.l1_64s12w)) in
  let ha = Tensor.rand rng [| spec.Heatmap.height; spec.Heatmap.width |] ~lo:0.0 ~hi:5.0 in
  let hb = Tensor.rand rng [| spec.Heatmap.height; spec.Heatmap.width |] ~lo:0.0 ~hi:5.0 in
  let tests =
    [
      Test.make ~name:"fig3.heatmap-generation"
        (Staged.stage (fun () -> ignore (Heatmap.of_trace spec trace)));
      Test.make ~name:"fig7.generator-forward-b1"
        (Staged.stage (fun () ->
             ignore (Cbgan.generator_forward model ~rng ~training:false ~cache_params:cp1 img1)));
      Test.make ~name:"fig11.generator-forward-b8"
        (Staged.stage (fun () ->
             ignore (Cbgan.generator_forward model ~rng ~training:false ~cache_params:cp8 imgs8)));
      Test.make ~name:"fig11.multicachesim"
        (Staged.stage (fun () ->
             let m = Multicachesim.create ~sets:64 ~ways:12 ~block_bytes:64 in
             ignore (Multicachesim.run m trace)));
      Test.make ~name:"fig8.cache-simulation"
        (Staged.stage (fun () ->
             let c = Cache.create Experiments.l1_64s12w in
             Array.iter (fun a -> ignore (Cache.access c a)) trace));
      Test.make ~name:"fig10.hierarchy-simulation"
        (Staged.stage (fun () ->
             let h =
               Hierarchy.create ~l2:Experiments.l2_config ~l3:Experiments.l3_config
                 ~l1:Experiments.l1_64s12w ()
             in
             Hierarchy.run h trace));
      Test.make ~name:"fig12.hitrate-from-heatmaps"
        (Staged.stage (fun () -> ignore (Heatmap.hit_rate spec ~access:[ ha ] ~miss:[ hb ])));
      Test.make ~name:"fig13.ssim" (Staged.stage (fun () -> ignore (Metrics.ssim ha hb)));
      Test.make ~name:"table1.reuse-distance"
        (Staged.stage (fun () -> ignore (Reuse_distance.distances trace)));
      Test.make ~name:"table1.tabsynth-rd-clone"
        (Staged.stage (fun () -> ignore (Tabsynth.synthesize ~variant:Tabsynth.Rd trace)));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~stabilize:false () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"cachebox" [ test ]) in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> log "  %-36s %14.1f ns/run\n%!" name t
          | Some _ | None -> log "  %-36s (no estimate)\n%!" name)
        results)
    tests

(* --- driver --- *)

let all_experiments =
  [
    ("fig3", run_fig3);
    ("rq1", run_rq1);
    ("rq2", run_rq2);
    ("rq3", run_rq3);
    ("rq4", run_rq4);
    ("rq5", run_rq5);
    ("rq6", run_rq6);
    ("rq7", run_rq7);
    ("fig14", run_fig14);
    ("table1", run_table1);
    ("ablations", run_ablations);
    ("policies", run_policies);
    ("parallel", run_parallel);
    ("kernels", run_kernels);
    ("dataset", run_dataset);
    ("bechamel", run_bechamel);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all_experiments
  in
  let t0 = Unix.gettimeofday () in
  log "CacheBox reproduction harness (scale: %dx%d heatmaps, %d-access traces, base epochs %d)\n"
    scale.Experiments.spec.Heatmap.height scale.Experiments.spec.Heatmap.width
    scale.Experiments.trace_len scale.Experiments.epochs;
  (* CACHEBOX_JOURNAL=path makes the sweep resumable: each experiment's
     completion is journalled, and a re-run against the same journal skips
     the drivers that already finished. *)
  let run_all journal =
    List.iter
      (fun name ->
        match List.assoc_opt name all_experiments with
        | Some f ->
          if Experiments.run_driver ?journal ~name f = None then
            log "skipping %s (already completed in journal)\n%!" name
        | None ->
          log "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst all_experiments));
          exit 2)
      requested
  in
  (match Sys.getenv_opt "CACHEBOX_JOURNAL" with
  | Some path ->
    log "journalling sweep to %s\n" path;
    Runlog.with_journal path (fun j -> run_all (Some j))
  | None -> run_all None);
  log "\ntotal harness time: %.1f s\n" (Unix.gettimeofday () -. t0)
