(** Multi-level cache hierarchy simulation.

    Demand accesses enter L1; misses propagate to L2 and then L3 (when
    present). Each level records the address stream that *entered* it and a
    hit/miss flag per entry — exactly the per-level access/miss traces the
    CacheBox heatmap pipeline consumes (paper §2: the bus between level i-1
    and level i carries level i's access trace; the bus below carries its
    miss trace). *)

type level = L1 | L2 | L3

val level_name : level -> string

type level_trace = {
  level : level;
  addresses : int array;  (** accesses that reached this level, in order *)
  hits : bool array;  (** per-access hit flag, same length *)
}

val trace_hit_rate : level_trace -> float

type t

val create :
  ?l2:Cache.config ->
  ?l3:Cache.config ->
  ?l1_prefetcher:Prefetch.kind ->
  l1:Cache.config ->
  unit ->
  t
(** L1 prefetches fill L1 only and do not count as demand accesses
    (matching the paper's setup where prefetching is off for ground truth
    and modelled separately for RQ7). *)

val access : t -> int -> bool
(** Runs one demand access through the hierarchy; returns the L1 hit flag. *)

val run : t -> int array -> unit
(** Feeds a whole trace (recording enabled). *)

val levels : t -> level array
(** The configured levels, innermost (L1) first — the index space of
    {!run_observed}'s observer. *)

val run_observed : t -> f:(int -> int -> bool -> unit) -> int array -> unit
(** Streaming variant of {!run}: feeds the trace and calls
    [f level_index addr hit] for every access that reaches a level (index 0
    is L1; see {!levels}), instead of recording per-level traces or
    prefetch issue logs. Memory use is constant in the trace length — this
    is the dataset-pipeline fast path that folds accesses straight into
    heatmap accumulators. Cache state, statistics and prefetch fills evolve
    exactly as under {!run}. *)

val level_traces : t -> level_trace list
(** Recorded per-level traces, innermost (L1) first. Only meaningful after
    {!run} or a sequence of {!access} calls. The decode is memoised until
    the next {!access}/{!run}/{!reset}, and the same arrays are returned on
    repeated calls — treat them as read-only. *)

val prefetched_addresses : t -> int array
(** Addresses the L1 prefetcher filled, in issue order (RQ7 ground truth).
    Memoised like {!level_traces}; treat the array as read-only. *)

val stats : t -> (level * Cache.stats) list
val reset : t -> unit
