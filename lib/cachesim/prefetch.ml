type kind =
  | No_prefetch
  | Next_line
  | Stride of { degree : int; table_size : int }

type stride_entry = { mutable last_block : int; mutable stride : int; mutable confidence : int }

type state =
  | S_none
  | S_next
  | S_stride of { degree : int; table : stride_entry array }

type t = { k : kind; state : state; mutable issued : int }

let create k =
  let state =
    match k with
    | No_prefetch -> S_none
    | Next_line -> S_next
    | Stride { degree; table_size } ->
      if degree <= 0 || table_size <= 0 then invalid_arg "Prefetch.create: bad stride params";
      S_stride
        { degree;
          table = Array.init table_size (fun _ -> { last_block = -1; stride = 0; confidence = 0 }) }
  in
  { k; state; issued = 0 }

let kind t = t.k

(* The trace has no PCs, so the stride table is keyed by the 4KiB region the
   access falls in — a region-local stride detector, as in spatial-pattern
   prefetchers. *)
let region_key addr table_len = (addr lsr 12) mod table_len

let max_degree t =
  match t.state with S_none -> 0 | S_next -> 1 | S_stride { degree; _ } -> degree

(* Proposals are written into [buf] (sized >= [max_degree t] by the caller)
   and the count returned; the demand loop reuses one scratch buffer for the
   whole trace instead of consing a list per access. [No_prefetch] returns
   before computing anything. *)
let on_access_into t ~addr ~block_bytes ~buf =
  match t.state with
  | S_none -> 0
  | S_next ->
    buf.(0) <- ((addr / block_bytes) + 1) * block_bytes;
    t.issued <- t.issued + 1;
    1
  | S_stride { degree; table } ->
    let block = addr / block_bytes in
    let e = table.(region_key addr (Array.length table)) in
    let n =
      if e.last_block < 0 then 0
      else begin
        let s = block - e.last_block in
        if s <> 0 && s = e.stride then begin
          e.confidence <- min 3 (e.confidence + 1);
          if e.confidence >= 2 then begin
            for i = 0 to degree - 1 do
              buf.(i) <- (block + (s * (i + 1))) * block_bytes
            done;
            degree
          end
          else 0
        end
        else begin
          e.stride <- s;
          e.confidence <- 0;
          0
        end
      end
    in
    e.last_block <- block;
    t.issued <- t.issued + n;
    n

let on_access t ~addr ~block_bytes =
  match t.state with
  | S_none -> []
  | _ ->
    let buf = Array.make (max_degree t) 0 in
    let n = on_access_into t ~addr ~block_bytes ~buf in
    List.init n (fun i -> buf.(i))

let issued t = t.issued

let reset t =
  t.issued <- 0;
  match t.state with
  | S_none | S_next -> ()
  | S_stride { table; _ } ->
    Array.iter
      (fun e ->
        e.last_block <- -1;
        e.stride <- 0;
        e.confidence <- 0)
      table
