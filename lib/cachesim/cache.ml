type policy =
  | Lru
  | Fifo
  | Plru
  | Srrip
  | Random_policy of int

type config = {
  sets : int;
  ways : int;
  block_bytes : int;
  policy : policy;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let config ?(block_bytes = 64) ?(policy = Lru) ~sets ~ways () =
  if not (is_power_of_two sets) then invalid_arg "Cache.config: sets must be a power of two";
  if not (is_power_of_two block_bytes) then
    invalid_arg "Cache.config: block_bytes must be a power of two";
  if ways <= 0 then invalid_arg "Cache.config: ways must be positive";
  { sets; ways; block_bytes; policy }

let size_bytes c = c.sets * c.ways * c.block_bytes
let config_name c = Printf.sprintf "%dset-%dway" c.sets c.ways

type stats = { accesses : int; hits : int; misses : int }

let hit_rate s =
  if s.accesses = 0 then 0.0 else float_of_int s.hits /. float_of_int s.accesses

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

type t = {
  cfg : config;
  block_shift : int;
  set_mask : int;
  set_shift : int;  (** log2 sets, so tag extraction is one shift per access *)
  ways : int;
  tags : int array;  (** [sets * ways]; -1 = invalid *)
  meta : int array;  (** replacement metadata, meaning depends on policy *)
  mutable clock : int;  (** monotonically increasing use/insert counter *)
  mutable accesses : int;
  mutable hits : int;
  rng : Prng.t option;
}

let create cfg =
  {
    cfg;
    block_shift = log2 cfg.block_bytes;
    set_mask = cfg.sets - 1;
    set_shift = log2 cfg.sets;
    ways = cfg.ways;
    tags = Array.make (cfg.sets * cfg.ways) (-1);
    meta = Array.make (cfg.sets * cfg.ways) 0;
    clock = 0;
    accesses = 0;
    hits = 0;
    rng = (match cfg.policy with Random_policy seed -> Some (Prng.create seed) | _ -> None);
  }

let get_config t = t.cfg

let set_and_tag t addr =
  let block = addr lsr t.block_shift in
  (block land t.set_mask, block lsr t.set_shift)

let find_way t base tag =
  let tags = t.tags in
  let rec go w =
    if w >= t.ways then -1
    else if Array.unsafe_get tags (base + w) = tag then w
    else go (w + 1)
  in
  go 0

(* Bit-PLRU: each line has an MRU bit in [meta]; when all bits in a set are
   set they are cleared (except the line just touched). *)
let plru_touch t base way =
  t.meta.(base + way) <- 1;
  let all_set = ref true in
  for w = 0 to t.ways - 1 do
    if t.meta.(base + w) = 0 then all_set := false
  done;
  if !all_set then
    for w = 0 to t.ways - 1 do
      if w <> way then t.meta.(base + w) <- 0
    done

let on_hit t base way =
  t.clock <- t.clock + 1;
  match t.cfg.policy with
  | Lru -> t.meta.(base + way) <- t.clock
  | Fifo -> ()
  | Plru -> plru_touch t base way
  | Srrip -> t.meta.(base + way) <- 0
  | Random_policy _ -> ()

let victim t base =
  (* Prefer an invalid way. *)
  let invalid = ref (-1) in
  for w = t.ways - 1 downto 0 do
    if t.tags.(base + w) = -1 then invalid := w
  done;
  if !invalid >= 0 then !invalid
  else
    match t.cfg.policy with
    | Lru | Fifo ->
      let best = ref 0 in
      for w = 1 to t.ways - 1 do
        if t.meta.(base + w) < t.meta.(base + !best) then best := w
      done;
      !best
    | Plru ->
      let rec first_clear w =
        if w >= t.ways then 0
        else if t.meta.(base + w) = 0 then w
        else first_clear (w + 1)
      in
      first_clear 0
    | Srrip ->
      (* Find an RRPV-3 line, aging the whole set until one appears. *)
      let rec go () =
        let found = ref (-1) in
        for w = t.ways - 1 downto 0 do
          if t.meta.(base + w) >= 3 then found := w
        done;
        if !found >= 0 then !found
        else begin
          for w = 0 to t.ways - 1 do
            t.meta.(base + w) <- t.meta.(base + w) + 1
          done;
          go ()
        end
      in
      go ()
    | Random_policy _ -> (
      match t.rng with Some g -> Prng.int g t.ways | None -> assert false)

let on_fill t base way =
  t.clock <- t.clock + 1;
  match t.cfg.policy with
  | Lru | Fifo -> t.meta.(base + way) <- t.clock
  | Plru -> plru_touch t base way
  | Srrip -> t.meta.(base + way) <- 2
  | Random_policy _ -> ()

(* Fills a victim way and returns the evicted tag (or -1 if invalid). *)
let fill t base tag =
  let way = victim t base in
  let evicted = t.tags.(base + way) in
  t.tags.(base + way) <- tag;
  on_fill t base way;
  evicted

let rebuild_address t set tag =
  let block = (tag lsl t.set_shift) lor set in
  block lsl t.block_shift

let access_evict t addr =
  let set, tag = set_and_tag t addr in
  let base = set * t.ways in
  t.accesses <- t.accesses + 1;
  let way = find_way t base tag in
  if way >= 0 then begin
    t.hits <- t.hits + 1;
    on_hit t base way;
    (true, None)
  end
  else begin
    let evicted = fill t base tag in
    (false, if evicted < 0 then None else Some (rebuild_address t set evicted))
  end

(* Specialized LRU demand path: one fused scan yields the matching way, the
   first invalid way and the minimum-clock victim at once (the generic path
   rescans the set on a miss), and hits are swapped to slot 0 so temporally
   hot lines sit at the front of later scans. Reordering ways is sound for
   LRU only because its behaviour depends on the set's (tag, meta) multiset
   and never on way positions: clock values are unique, so the LRU victim
   is unambiguous, and invalid ways are interchangeable (tag -1, meta 0).
   Positional policies (PLRU, SRRIP, random) keep the generic path. *)
let access_lru t base tag =
  let tags = t.tags and meta = t.meta in
  let ways = t.ways in
  let w = ref 0 and hit_way = ref (-1) and inv = ref (-1) in
  let best = ref 0 and bestm = ref max_int in
  while !hit_way < 0 && !w < ways do
    let i = base + !w in
    let tw = Array.unsafe_get tags i in
    if tw = tag then hit_way := !w
    else begin
      (if tw < 0 then begin
         if !inv < 0 then inv := !w
       end
       else begin
         let m = Array.unsafe_get meta i in
         if m < !bestm then begin
           bestm := m;
           best := !w
         end
       end);
      incr w
    end
  done;
  t.clock <- t.clock + 1;
  if !hit_way >= 0 then begin
    t.hits <- t.hits + 1;
    let hw = base + !hit_way in
    if !hit_way > 0 then begin
      let t0 = Array.unsafe_get tags base and m0 = Array.unsafe_get meta base in
      Array.unsafe_set tags base tag;
      Array.unsafe_set meta base t.clock;
      Array.unsafe_set tags hw t0;
      Array.unsafe_set meta hw m0
    end
    else Array.unsafe_set meta base t.clock;
    true
  end
  else begin
    let v = base + (if !inv >= 0 then !inv else !best) in
    if v > base then begin
      let t0 = Array.unsafe_get tags base and m0 = Array.unsafe_get meta base in
      Array.unsafe_set tags base tag;
      Array.unsafe_set meta base t.clock;
      Array.unsafe_set tags v t0;
      Array.unsafe_set meta v m0
    end
    else begin
      Array.unsafe_set tags base tag;
      Array.unsafe_set meta base t.clock
    end;
    false
  end

(* The demand hot path: same transitions as [access_evict] but without
   materializing the (hit, eviction) tuple — dataset generation calls this
   once per trace element. *)
let access t addr =
  let block = addr lsr t.block_shift in
  let set = block land t.set_mask in
  let tag = block lsr t.set_shift in
  let base = set * t.ways in
  t.accesses <- t.accesses + 1;
  match t.cfg.policy with
  | Lru -> access_lru t base tag
  | _ ->
    let way = find_way t base tag in
    if way >= 0 then begin
      t.hits <- t.hits + 1;
      on_hit t base way;
      true
    end
    else begin
      ignore (fill t base tag);
      false
    end

let probe t addr =
  let set, tag = set_and_tag t addr in
  find_way t (set * t.ways) tag >= 0

let insert t addr =
  let set, tag = set_and_tag t addr in
  let base = set * t.ways in
  if find_way t base tag < 0 then ignore (fill t base tag)

let invalidate t addr =
  let set, tag = set_and_tag t addr in
  let base = set * t.ways in
  let way = find_way t base tag in
  if way < 0 then false
  else begin
    t.tags.(base + way) <- -1;
    t.meta.(base + way) <- 0;
    true
  end

let stats t = { accesses = t.accesses; hits = t.hits; misses = t.accesses - t.hits }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.meta 0 (Array.length t.meta) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.hits <- 0
