(** Trace import/export.

    Real deployments feed CacheBox with Pin/ChampSim captures; this module
    reads and writes address traces in two interchange formats so externally
    collected traces can be pushed through the same pipeline:

    - {b text}: one lowercase hex byte-address per line ("0x1a2b3c" or bare
      "1a2b3c"); blank lines and lines starting with '#' are skipped.
    - {b binary v2}: magic "CBTRACE2", a little-endian int64 count, a
      CRC-32 (IEEE) of the payload, then that many little-endian int64
      addresses. The checksum turns any byte-level corruption into a clean
      [Failure] at read time. v1 files ("CBTRACE1", no checksum) remain
      readable with per-address range checking as the only defence.

    Addresses are bounded to [0, 2^52] in every format (larger values never
    occur in real traces and cannot survive the float64 paths downstream);
    writers reject out-of-range addresses with [Invalid_argument], readers
    with [Failure].

    Both writers are atomic (temp file + rename): a crash mid-write never
    leaves a truncated file under the target name. *)

val max_address : int
(** Inclusive upper bound on trace addresses (2^52). *)

val write_text : string -> int array -> unit
val read_text : string -> int array
(** Raises [Failure] with the offending line number on malformed input. *)

val write_binary : string -> int array -> unit
(** Always writes the checksummed v2 format. *)

val read_binary : string -> int array
(** Raises [Failure] on bad magic, a truncated payload, a checksum
    mismatch, an out-of-range address, or trailing bytes after the declared
    access count — never any other exception. *)

val read_auto : string -> int array
(** Dispatches on the binary magic, falling back to text. A file holding
    only a strict prefix of a binary magic is a truncated binary trace
    ([Failure]), not text. *)
