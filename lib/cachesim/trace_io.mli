(** Trace import/export.

    Real deployments feed CacheBox with Pin/ChampSim captures; this module
    reads and writes address traces in two interchange formats so externally
    collected traces can be pushed through the same pipeline:

    - {b text}: one lowercase hex byte-address per line ("0x1a2b3c" or bare
      "1a2b3c"); blank lines and lines starting with '#' are skipped.
    - {b binary}: magic "CBTRACE1" followed by a little-endian int64 count
      and that many little-endian int64 addresses.

    Both writers are atomic (temp file + rename): a crash mid-write never
    leaves a truncated file under the target name. *)

val write_text : string -> int array -> unit
val read_text : string -> int array
(** Raises [Failure] with the offending line number on malformed input. *)

val write_binary : string -> int array -> unit
val read_binary : string -> int array
(** Raises [Failure] on bad magic, a truncated payload, or trailing bytes
    after the declared access count. *)

val read_auto : string -> int array
(** Dispatches on the binary magic, falling back to text. *)
