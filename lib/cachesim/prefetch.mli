(** Hardware prefetcher models (RQ7 substrate).

    A prefetcher observes the demand-access stream of one cache level and
    proposes block addresses to fill. The next-line prefetcher is the one the
    paper trains CB-GAN on; the stride prefetcher is provided for the
    "other prefetching algorithms" extension the paper hypothesises. *)

type kind =
  | No_prefetch
  | Next_line  (** always prefetch the next sequential block *)
  | Stride of { degree : int; table_size : int }
      (** reference-prediction-table stride detector keyed by a hash of the
          block region; prefetches [degree] strided blocks once a stride is
          confirmed twice *)

type t

val create : kind -> t
val kind : t -> kind

val on_access : t -> addr:int -> block_bytes:int -> int list
(** Byte addresses the prefetcher wants filled in response to a demand
    access to [addr]. *)

val max_degree : t -> int
(** Upper bound on proposals per access (0 for [No_prefetch]); sizes the
    scratch buffer for {!on_access_into}. *)

val on_access_into : t -> addr:int -> block_bytes:int -> buf:int array -> int
(** Allocation-free variant of {!on_access}: writes proposals into the
    first cells of [buf] (which must hold at least [max_degree t] elements)
    and returns how many were written. [No_prefetch] does no work at all.
    State transitions are identical to {!on_access}. *)

val issued : t -> int
(** Total prefetches proposed so far. *)

val reset : t -> unit
