let binary_magic = "CBTRACE1"

(* Both writers go through a temp file + rename so a crash (or full disk)
   mid-write never leaves a truncated trace under the target name. *)
let atomic_write path ~binary write_to =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".trace" ".tmp" in
  match
    let oc = if binary then open_out_bin tmp else open_out tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_to oc)
  with
  | () -> Sys.rename tmp path
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_text path trace =
  atomic_write path ~binary:false (fun oc ->
      Array.iter (fun a -> Printf.fprintf oc "0x%x\n" a) trace)

let parse_hex_line line lineno =
  let s = String.trim line in
  let s = if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then String.sub s 2 (String.length s - 2) else s in
  match int_of_string_opt ("0x" ^ s) with
  | Some v when v >= 0 -> v
  | Some _ | None ->
    failwith (Printf.sprintf "Trace_io.read_text: malformed address at line %d" lineno)

let read_text path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let trimmed = String.trim line in
           if trimmed <> "" && trimmed.[0] <> '#' then
             out := parse_hex_line trimmed !lineno :: !out
         done
       with End_of_file -> ());
      Array.of_list (List.rev !out))

let write_binary path trace =
  atomic_write path ~binary:true (fun oc ->
      output_string oc binary_magic;
      let buf = Bytes.create 8 in
      Bytes.set_int64_le buf 0 (Int64.of_int (Array.length trace));
      output_bytes oc buf;
      Array.iter
        (fun a ->
          Bytes.set_int64_le buf 0 (Int64.of_int a);
          output_bytes oc buf)
        trace)

let read_binary path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      if len < String.length binary_magic + 8 then
        failwith "Trace_io.read_binary: file too short";
      let magic = really_input_string ic (String.length binary_magic) in
      if magic <> binary_magic then failwith "Trace_io.read_binary: bad magic";
      let buf = Bytes.create 8 in
      really_input ic buf 0 8;
      let count = Int64.to_int (Bytes.get_int64_le buf 0) in
      let expected = String.length binary_magic + 8 + (8 * count) in
      if count < 0 || len < expected then
        failwith "Trace_io.read_binary: truncated payload";
      if len > expected then
        failwith
          (Printf.sprintf
             "Trace_io.read_binary: %d trailing byte(s) after the declared %d accesses \
              (corrupt or mis-written trace)"
             (len - expected) count);
      Array.init count (fun _ ->
          really_input ic buf 0 8;
          Int64.to_int (Bytes.get_int64_le buf 0)))

let read_auto path =
  let looks_binary =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        in_channel_length ic >= String.length binary_magic
        && really_input_string ic (String.length binary_magic) = binary_magic)
  in
  if looks_binary then read_binary path else read_text path
