let binary_magic_v1 = "CBTRACE1"
let binary_magic = "CBTRACE2"

(* Addresses above 2^52 cannot survive the float64 paths downstream (heatmap
   pixel coordinates, JSON interchange) and never occur in real traces; the
   bound doubles as a corruption tripwire for v1 files, which carry no
   checksum. *)
let max_address = 1 lsl 52

(* Both writers go through a temp file + rename so a crash (or full disk)
   mid-write never leaves a truncated trace under the target name. *)
let atomic_write path ~binary write_to =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".trace" ".tmp" in
  match
    let oc = if binary then open_out_bin tmp else open_out tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_to oc)
  with
  | () -> Sys.rename tmp path
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let check_writable_address a =
  if a < 0 || a > max_address then
    invalid_arg (Printf.sprintf "Trace_io: address 0x%x out of range" a)

let write_text path trace =
  Array.iter check_writable_address trace;
  atomic_write path ~binary:false (fun oc ->
      Array.iter (fun a -> Printf.fprintf oc "0x%x\n" a) trace)

let parse_hex_line line lineno =
  let s = String.trim line in
  let s = if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then String.sub s 2 (String.length s - 2) else s in
  match int_of_string_opt ("0x" ^ s) with
  | Some v when v >= 0 && v <= max_address -> v
  | Some _ | None ->
    failwith (Printf.sprintf "Trace_io.read_text: malformed address at line %d" lineno)

let read_text path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let trimmed = String.trim line in
           if trimmed <> "" && trimmed.[0] <> '#' then
             out := parse_hex_line trimmed !lineno :: !out
         done
       with End_of_file -> ());
      Array.of_list (List.rev !out))

(* v2 ("CBTRACE2") layout:
     magic                      8 bytes
     count                      u64 LE
     CRC-32 (IEEE) of payload   u32 LE
     payload                    count * s64 LE addresses
   v1 ("CBTRACE1") had no checksum (magic, u64 count, addresses); it is
   still readable, with a per-address range check as the only corruption
   defence it admits. New files are always v2: any single corrupted byte
   surfaces as a clean [Failure] instead of a silently different trace. *)
let write_binary path trace =
  Array.iter check_writable_address trace;
  let payload = Buffer.create (8 * Array.length trace) in
  Array.iter (fun a -> Buffer.add_int64_le payload (Int64.of_int a)) trace;
  let payload = Buffer.contents payload in
  atomic_write path ~binary:true (fun oc ->
      output_string oc binary_magic;
      let hdr = Bytes.create 12 in
      Bytes.set_int64_le hdr 0 (Int64.of_int (Array.length trace));
      Bytes.set_int32_le hdr 8 (Int32.of_int (Crc32.digest payload));
      output_bytes oc hdr;
      output_string oc payload)

let check_read_address a =
  if a < 0 || a > max_address then
    failwith (Printf.sprintf "Trace_io.read_binary: address out of range (corrupt trace)")
  else a

let read_binary path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let mlen = String.length binary_magic in
      if len < mlen + 8 then failwith "Trace_io.read_binary: file too short";
      let magic = really_input_string ic mlen in
      let v2 = magic = binary_magic in
      if (not v2) && magic <> binary_magic_v1 then
        failwith "Trace_io.read_binary: bad magic";
      let buf = Bytes.create 8 in
      really_input ic buf 0 8;
      let count = Int64.to_int (Bytes.get_int64_le buf 0) in
      let header = mlen + 8 + if v2 then 4 else 0 in
      let expected = header + (8 * count) in
      if count < 0 || len < expected then
        failwith "Trace_io.read_binary: truncated payload";
      if len > expected then
        failwith
          (Printf.sprintf
             "Trace_io.read_binary: %d trailing byte(s) after the declared %d accesses \
              (corrupt or mis-written trace)"
             (len - expected) count);
      if v2 then begin
        really_input ic buf 0 4;
        let stored_crc = Int32.to_int (Bytes.get_int32_le buf 0) land 0xFFFFFFFF in
        let payload = really_input_string ic (8 * count) in
        if Crc32.digest payload <> stored_crc then
          failwith "Trace_io.read_binary: checksum mismatch (corrupt trace)";
        Array.init count (fun i ->
            check_read_address (Int64.to_int (String.get_int64_le payload (8 * i))))
      end
      else
        Array.init count (fun _ ->
            really_input ic buf 0 8;
            check_read_address (Int64.to_int (Bytes.get_int64_le buf 0))))

let read_auto path =
  let probe =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        really_input_string ic (min (in_channel_length ic) (String.length binary_magic)))
  in
  let is_partial_magic m =
    String.length probe > 0
    && String.length probe < String.length m
    && String.equal probe (String.sub m 0 (String.length probe))
  in
  if String.equal probe binary_magic || String.equal probe binary_magic_v1 then
    read_binary path
  else if is_partial_magic binary_magic || is_partial_magic binary_magic_v1 then
    (* "C", "CB", ... with nothing after: a binary trace truncated inside
       its magic, not a one-line text trace that happens to be hex. *)
    failwith "Trace_io.read_auto: truncated binary trace (partial magic)"
  else read_text path
