type level = L1 | L2 | L3

let level_name = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3"

type level_trace = {
  level : level;
  addresses : int array;
  hits : bool array;
}

let trace_hit_rate t =
  let n = Array.length t.hits in
  if n = 0 then 0.0
  else begin
    let h = ref 0 in
    Array.iter (fun b -> if b then incr h) t.hits;
    float_of_int !h /. float_of_int n
  end

type recorder = { addrs : Buffer.t; flags : Buffer.t }
(* Traces are recorded compactly: addresses as 8 little-endian bytes, flags
   as single bytes; converted to arrays on demand. *)

let recorder () = { addrs = Buffer.create 4096; flags = Buffer.create 512 }

let record r addr hit =
  Buffer.add_int64_le r.addrs (Int64.of_int addr);
  Buffer.add_char r.flags (if hit then '\001' else '\000')

let recorded_trace r level =
  let raw = Buffer.contents r.addrs in
  let n = String.length raw / 8 in
  let addresses = Array.init n (fun i -> Int64.to_int (String.get_int64_le raw (i * 8))) in
  let flags_raw = Buffer.contents r.flags in
  let hits = Array.init n (fun i -> flags_raw.[i] = '\001') in
  { level; addresses; hits }

type node = {
  level : level;
  cache : Cache.t;
  rec_ : recorder;
  mutable decoded : level_trace option;
      (* memo of [recorded_trace rec_], valid while its length still matches
         the recorder — revalidated by length so the hot loop never touches
         it *)
}

type t = {
  nodes : node array;  (** innermost first; non-empty *)
  prefetcher : Prefetch.t;
  pf_scratch : int array;  (** >= Prefetch.max_degree cells, reused per access *)
  l1_block_bytes : int;
  pf_addrs : Buffer.t;
  mutable pf_decoded : int array option;
}

let create ?l2 ?l3 ?(l1_prefetcher = Prefetch.No_prefetch) ~l1 () =
  if l3 <> None && l2 = None then
    invalid_arg "Hierarchy.create: cannot have an L3 without an L2";
  let mk lvl cfg = { level = lvl; cache = Cache.create cfg; rec_ = recorder (); decoded = None } in
  let nodes =
    mk L1 l1
    :: List.filter_map
         (fun x -> x)
         [ Option.map (mk L2) l2; Option.map (mk L3) l3 ]
  in
  let prefetcher = Prefetch.create l1_prefetcher in
  {
    nodes = Array.of_list nodes;
    prefetcher;
    pf_scratch = Array.make (max 1 (Prefetch.max_degree prefetcher)) 0;
    l1_block_bytes = l1.Cache.block_bytes;
    pf_addrs = Buffer.create 512;
    pf_decoded = None;
  }

let levels t = Array.map (fun nd -> nd.level) t.nodes

(* Walk the miss chain below L1: access each deeper level until one hits,
   reporting every (level index, hit) step to [f]. *)
let walk_deeper nodes f addr =
  let n = Array.length nodes in
  let i = ref 1 and propagate = ref true in
  while !propagate && !i < n do
    let nd = Array.unsafe_get nodes !i in
    let hit = Cache.access nd.cache addr in
    f nd !i hit;
    if hit then propagate := false;
    incr i
  done

let access t addr =
  let nodes = t.nodes in
  let n0 = Array.unsafe_get nodes 0 in
  let npf =
    Prefetch.on_access_into t.prefetcher ~addr ~block_bytes:t.l1_block_bytes
      ~buf:t.pf_scratch
  in
  let l1_hit = Cache.access n0.cache addr in
  record n0.rec_ addr l1_hit;
  if not l1_hit then walk_deeper nodes (fun nd _ hit -> record nd.rec_ addr hit) addr;
  (* L1 prefetches are generated from the demand stream and fill L1 only. *)
  for k = 0 to npf - 1 do
    let pf_addr = Array.unsafe_get t.pf_scratch k in
    Buffer.add_int64_le t.pf_addrs (Int64.of_int pf_addr);
    Cache.insert n0.cache pf_addr
  done;
  l1_hit

let run t trace = Array.iter (fun addr -> ignore (access t addr)) trace

let run_observed t ~f trace =
  let nodes = t.nodes in
  let n0 = Array.unsafe_get nodes 0 in
  let bb = t.l1_block_bytes and scratch = t.pf_scratch in
  let has_pf = Prefetch.max_degree t.prefetcher > 0 in
  let n = Array.length trace in
  for j = 0 to n - 1 do
    let addr = Array.unsafe_get trace j in
    let npf =
      if has_pf then Prefetch.on_access_into t.prefetcher ~addr ~block_bytes:bb ~buf:scratch
      else 0
    in
    let l1_hit = Cache.access n0.cache addr in
    f 0 addr l1_hit;
    if not l1_hit then walk_deeper nodes (fun _ i hit -> f i addr hit) addr;
    for k = 0 to npf - 1 do
      Cache.insert n0.cache (Array.unsafe_get scratch k)
    done
  done

let decoded_trace nd =
  let n = Buffer.length nd.rec_.addrs / 8 in
  match nd.decoded with
  | Some lt when Array.length lt.addresses = n -> lt
  | _ ->
    let lt = recorded_trace nd.rec_ nd.level in
    nd.decoded <- Some lt;
    lt

let level_traces t = Array.to_list (Array.map decoded_trace t.nodes)

let prefetched_addresses t =
  let n = Buffer.length t.pf_addrs / 8 in
  match t.pf_decoded with
  | Some a when Array.length a = n -> a
  | _ ->
    let raw = Buffer.contents t.pf_addrs in
    let a = Array.init n (fun i -> Int64.to_int (String.get_int64_le raw (i * 8))) in
    t.pf_decoded <- Some a;
    a

let stats t = Array.to_list (Array.map (fun nd -> (nd.level, Cache.stats nd.cache)) t.nodes)

let reset t =
  Array.iter
    (fun nd ->
      Cache.reset nd.cache;
      Buffer.clear nd.rec_.addrs;
      Buffer.clear nd.rec_.flags;
      nd.decoded <- None)
    t.nodes;
  Prefetch.reset t.prefetcher;
  Buffer.clear t.pf_addrs;
  t.pf_decoded <- None
