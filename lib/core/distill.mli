(** Knowledge distillation of the CB-GAN generator into a {!Student}.

    Fits a half-depth/half-width student U-Net against the frozen teacher's
    synthetic miss heatmaps. The teacher only ever runs in eval mode
    (running-stats batch norm, no dropout), so its targets are deterministic,
    per-sample independent and bit-identical at any Dpool domain count; a
    distillation run is therefore exactly reproducible across
    [CACHEBOX_DOMAINS] settings.

    The loss blends ground-truth supervision with teacher imitation under
    [temperature] (0 = pure supervised — the teacher is never evaluated and
    the loss is bitwise the supervised one; 1 = pure distillation), each term
    a weighted pixel L1 + L2. An optional feature-matching term pulls the
    student's pooled bottleneck activations towards the teacher's through a
    learned linear adapter trained alongside the student (the adapter is a
    training-time artifact; the saved student checkpoint stands alone).

    The run-resilience layer mirrors {!Cbox_train}: periodic atomic
    checksummed snapshots (schema [cachebox-distill-snapshot/1]) with exact
    bit-identical resume, a NaN/Inf divergence sentinel that rolls back to
    the last good snapshot and halves the learning rate up to [max_retries]
    times, and an optional append-only {!Runlog} JSONL journal. *)

type options = {
  epochs : int;
  batch_size : int;
  lr : float;
  beta1 : float;
  temperature : float;
      (** teacher-imitation weight in [\[0, 1\]]: 0 = pure supervised,
          1 = pure distillation *)
  l1_weight : float;  (** pixel L1 weight inside each term *)
  l2_weight : float;  (** pixel L2 (MSE) weight inside each term *)
  feat_weight : float;
      (** bottleneck feature-matching weight; 0 disables the term (and the
          adapter) entirely *)
  seed : int;
  domains : int option;
      (** Dpool lane count pinned for the whole run ([None] = ambient
          [CACHEBOX_DOMAINS] / machine default); results are bit-identical
          for every setting. *)
  snapshot_every : int option;  (** snapshot cadence in batches across the run *)
  snapshot_dir : string option;
  keep_snapshots : int;
  max_retries : int;
  journal : string option;
}

val default_options :
  ?epochs:int ->
  ?batch_size:int ->
  ?temperature:float ->
  ?l1_weight:float ->
  ?l2_weight:float ->
  ?feat_weight:float ->
  ?domains:int ->
  ?snapshot_every:int ->
  ?snapshot_dir:string ->
  ?journal:string ->
  unit ->
  options
(** Defaults: 2 epochs, batch 4, lr 2e-4, beta1 0.5, temperature 1 (pure
    distillation), L1 weight 1, L2 weight 0.5, feature matching off, seed
    1234, ambient domains, no snapshotting/journal, keep 3 snapshots, 3
    divergence retries. *)

type epoch_stats = {
  epoch : int;
  pixel : float;  (** mean blended pixel loss *)
  feat : float;  (** mean feature-matching loss (0 when disabled) *)
  batches : int;
}

val student_config : ?depth_div:int -> ?width_div:int -> Cbgan.config -> Student.config
(** Derives the student architecture from a teacher configuration: levels
    divided by [depth_div] (floor 2), generator filters and conditioning
    dims divided by [width_div] (floors keep every dimension positive),
    image size and conditioning-MLP presence preserved. Defaults give the
    half-depth/half-width student. *)

val pixel_loss : l1_weight:float -> l2_weight:float -> Value.t -> Tensor.t -> Value.t
(** [pixel_loss ~l1_weight ~l2_weight out target] is
    [l1_weight * L1(out, target) + l2_weight * MSE(out, target)] — the exact
    supervised expression the zero-temperature distillation step reduces
    to. *)

val step_loss :
  temperature:float ->
  l1_weight:float ->
  l2_weight:float ->
  out:Value.t ->
  truth:Tensor.t ->
  teacher:Tensor.t option ->
  Value.t
(** One distillation step's pixel loss. At [temperature = 0] the teacher
    output is ignored (it may be [None]) and the result is bitwise
    [pixel_loss out truth]; at [temperature = 1] it is bitwise
    [pixel_loss out teacher]; in between the two terms blend as
    [(1 - t) * supervised + t * distillation]. Raises [Invalid_argument]
    when [temperature > 0] without a teacher output or when [temperature]
    is outside [\[0, 1\]]. *)

val train :
  ?log:(string -> unit) ->
  ?resume:bool ->
  teacher:Cbgan.t ->
  Student.t ->
  Heatmap.spec ->
  options ->
  Cbox_dataset.sample list ->
  epoch_stats list
(** Distills in place (the student and, when [feat_weight > 0], its
    training-time adapter update; the teacher is frozen) and returns
    per-epoch loss statistics for the whole run — including, after a
    resume, epochs completed before the interruption. [~resume:true]
    requires [snapshot_dir]; with no loadable snapshot it starts fresh.
    Raises [Invalid_argument] on an empty dataset, mismatched
    student/teacher geometry, or out-of-range loss options. *)
