(* Kernel benchmark suite: old (reference) vs new (tiled+workspace) dense
   path, timed on the same machine in the same process.

   The reference configuration is the pre-tiling production setup — the
   two-row-blocked GEMM with the workspace arena disabled (fresh scratch
   allocations everywhere) — kept runtime-selectable in Blas/Workspace
   exactly so this comparison stays honest: both sides run the same repo,
   same compiler flags, same process.

   Results are recorded as speedups (ref_s / tiled_s), which is what CI
   compares against the committed BENCH_KERNELS.json baseline: absolute
   times shift with the host, relative speedups of the same two code paths
   on the same host are stable. *)

type result = {
  name : string;
  domains : int;
  ref_s : float;
  tiled_s : float;
  speedup : float;
  max_rel_err : float option;
      (* max_i |ref_i - tiled_i| / max(1, max_i |ref_i|); None when the
         benchmark has no directly comparable output (training steps). *)
}

let time ~reps f =
  (* Best-of-N: on a shared machine the minimum is the least-noisy
     estimate of the true cost. *)
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

(* Run [f] under an explicit kernel/workspace configuration, restoring the
   ambient configuration afterwards even on exceptions. *)
let with_mode kernel ws f =
  let k0 = Blas.kernel () and w0 = Workspace.enabled () in
  Blas.set_kernel kernel;
  Workspace.set_enabled ws;
  Fun.protect
    ~finally:(fun () ->
      Blas.set_kernel k0;
      Workspace.set_enabled w0)
    f

let rel_err ~ref_out ~tiled_out =
  let a = Tensor.to_array ref_out and b = Tensor.to_array tiled_out in
  let scale = ref 1.0 in
  Array.iter (fun v -> if Float.abs v > !scale then scale := Float.abs v) a;
  let worst = ref 0.0 in
  Array.iteri
    (fun i v ->
      let d = Float.abs (v -. b.(i)) /. !scale in
      if d > !worst then worst := d)
    a;
  !worst

(* One old-vs-new measurement. [f] must return a freshly computed output
   tensor (or [None]); it runs once for warmup, then [reps] timed times,
   under each mode, inside a [domains]-lane pool. *)
let compare_modes ~name ~domains ~reps f =
  Dpool.with_domains domains (fun () ->
      let run mode ws =
        with_mode mode ws (fun () ->
            let out = ref None in
            let thunk () = out := f () in
            thunk ();
            (* warmup: pool spin-up, arena population *)
            let t = time ~reps thunk in
            (t, !out))
      in
      let ref_s, ref_out = run Blas.Reference false in
      let tiled_s, tiled_out = run Blas.Tiled true in
      let max_rel_err =
        match (ref_out, tiled_out) with
        | Some a, Some b -> Some (rel_err ~ref_out:a ~tiled_out:b)
        | _ -> None
      in
      { name; domains; ref_s; tiled_s; speedup = ref_s /. Float.max 1e-9 tiled_s;
        max_rel_err })

(* --- benchmark definitions --- *)

let gemm_bench ~name ~m ~k ~n ~domains ~reps =
  let rng = Prng.create 42 in
  let a = Tensor.randn rng [| m; k |] and b = Tensor.randn rng [| k; n |] in
  let c = Tensor.zeros [| m; n |] in
  compare_modes ~name ~domains ~reps (fun () ->
      Blas.gemm ~alpha:1.0 ~a ~b ~beta:0.0 c;
      Some (Tensor.copy c))

let conv_fwd_bench ~fast ~domains ~reps =
  let batch = 4 and ic = (if fast then 8 else 16) and oc = if fast then 16 else 32 in
  let size = if fast then 16 else 32 in
  let rng = Prng.create 43 in
  let x = Tensor.randn rng [| batch; ic; size; size |] in
  let weight = Tensor.randn rng [| oc; ic; 4; 4 |] in
  let bias = Some (Tensor.randn rng [| oc |]) in
  compare_modes
    ~name:(Printf.sprintf "conv_fwd_b%d_%dc%d_%d" batch ic oc size)
    ~domains ~reps
    (fun () -> Some (Conv.conv2d ~x ~weight ~bias ~stride:2 ~pad:1))

let conv_bwd_bench ~fast ~domains ~reps =
  let batch = 4 and ic = (if fast then 8 else 16) and oc = if fast then 16 else 32 in
  let size = if fast then 16 else 32 in
  let rng = Prng.create 44 in
  let x = Tensor.randn rng [| batch; ic; size; size |] in
  let weight = Tensor.randn rng [| oc; ic; 4; 4 |] in
  let osz = Conv.out_size ~size ~kernel:4 ~stride:2 ~pad:1 in
  let gout = Tensor.randn rng [| batch; oc; osz; osz |] in
  compare_modes
    ~name:(Printf.sprintf "conv_bwd_b%d_%dc%d_%d" batch ic oc size)
    ~domains ~reps
    (fun () ->
      let gw = Tensor.zeros [| oc; ic; 4; 4 |] in
      let gx =
        Conv.conv2d_backward ~x ~weight ~gout ~stride:2 ~pad:1 ~grad_weight:gw
          ~grad_bias:None
      in
      Some gx)

let train_step_bench ~fast ~domains =
  let spec = (Experiments.default_scale ()).Experiments.spec in
  let ws =
    List.filteri (fun i _ -> i < 1) (Suite.split (Suite.all ())).Suite.train
  in
  let data =
    Cbox_dataset.build_l1 spec ~configs:[ Experiments.l1_64s12w ]
      ~trace_len:(if fast then 4000 else 8000)
      ws
  in
  let samples = Cbox_dataset.to_samples data in
  compare_modes
    ~name:"cbgan_train_step"
    ~domains ~reps:1
    (fun () ->
      (* A fresh model per run so both modes train from the same state;
         epoch results depend only on the seed, so the measured work is
         identical apart from the kernel/workspace configuration. *)
      let model = Cbgan.create ~seed:7 (Cbgan.default_config ~ngf:8 ~ndf:8 ()) in
      let options =
        { (Cbox_train.default_options ~epochs:1 ~batch_size:4 ()) with
          Cbox_train.domains = Some domains;
        }
      in
      ignore (Cbox_train.train model spec options samples);
      None)

(* --- int8 quantized-path benchmarks ---

   Unlike compare_modes (old float path vs new float path), these compare
   the BEST float configuration (tiled kernel + workspace arena) against the
   int8 quantized path, so the reported speedup is the marginal win of
   quantization over the production float32 setup — never against a
   strawman. [ref_s] holds the float32 tiled time, [tiled_s] the int8 time,
   and [max_rel_err] the float-vs-int8 output divergence. *)
let compare_int8 ~name ~domains ~reps ~fref ~fq =
  Dpool.with_domains domains (fun () ->
      with_mode Blas.Tiled true (fun () ->
          let run f =
            let out = ref None in
            let thunk () = out := f () in
            thunk ();
            let t = time ~reps thunk in
            (t, !out)
          in
          let ref_s, ref_out = run fref in
          let q_s, q_out = run fq in
          let max_rel_err =
            match (ref_out, q_out) with
            | Some a, Some b -> Some (rel_err ~ref_out:a ~tiled_out:b)
            | _ -> None
          in
          { name; domains; ref_s; tiled_s = q_s; speedup = ref_s /. Float.max 1e-9 q_s;
            max_rel_err }))

let int8_gemm_bench ~name ~m ~k ~n ~domains ~reps =
  let rng = Prng.create 45 in
  let a = Tensor.randn rng [| m; k |] and b = Tensor.randn rng [| k; n |] in
  let c = Tensor.zeros [| m; n |] in
  let qa = Blas.Int8.quantize a in
  let act = Quant.scale_of_amax (Quant.amax b) in
  compare_int8 ~name ~domains ~reps
    ~fref:(fun () ->
      Blas.gemm ~alpha:1.0 ~a ~b ~beta:0.0 c;
      Some (Tensor.copy c))
    ~fq:(fun () ->
      Blas.Int8.gemm ~a:qa ~act_scale:act ~b c;
      Some (Tensor.copy c))

let int8_conv_bench ~fast ~domains ~reps =
  let batch = 4 and ic = (if fast then 8 else 16) and oc = if fast then 16 else 32 in
  let size = if fast then 16 else 32 in
  let rng = Prng.create 46 in
  let x = Tensor.randn rng [| batch; ic; size; size |] in
  let weight = Tensor.randn rng [| oc; ic; 4; 4 |] in
  let bias_arr = Array.init oc (fun _ -> Prng.uniform rng ~lo:(-0.5) ~hi:0.5) in
  let bias = Tensor.create [| oc |] in
  Array.iteri (Tensor.set bias) bias_arr;
  let qw = Blas.Int8.quantize ~bias:bias_arr (Tensor.view weight [| oc; ic * 4 * 4 |]) in
  let act = Quant.scale_of_amax (Quant.amax x) in
  compare_int8
    ~name:(Printf.sprintf "int8_conv_fwd_b%d_%dc%d_%d" batch ic oc size)
    ~domains ~reps
    ~fref:(fun () -> Some (Conv.conv2d ~x ~weight ~bias:(Some bias) ~stride:2 ~pad:1))
    ~fq:(fun () -> Some (Conv.conv2d_q ~x ~weight:qw ~act_scale:act ~kernel:4 ~stride:2 ~pad:1))

(* Whole-generator forward at serving shape: float32 Value-graph forward
   (wide-batch conv on, its best configuration) vs the quantized direct
   tensor program. This is the row the CI perf gate holds at >= 1.5x: it
   bundles the int8 GEMM win with what quantized serving actually ships —
   no autodiff tape, batch norms folded away. *)
let int8_unet_parts ~fast =
  let spec = Heatmap.spec () in
  let cfg = Cbgan.default_config ~ngf:(if fast then 8 else 16) () in
  let model = Cbgan.create ~seed:9 cfg in
  let q = Qgen.of_model ~spec model in
  let imgs = List.filteri (fun i _ -> i < 8) (Qgen.default_calib spec) in
  let x = Cbox_dataset.batch_images spec imgs in
  let n = Tensor.dim x 0 in
  let caches = Array.of_list Qgen.default_calib_caches in
  let cp =
    Cbgan.cache_params_tensor (List.init n (fun i -> caches.(i mod Array.length caches)))
  in
  (spec, cfg, model, q, imgs, x, cp)

let with_wide f =
  let w0 = Conv.wide_batch () in
  Conv.set_wide_batch true;
  Fun.protect ~finally:(fun () -> Conv.set_wide_batch w0) f

let int8_unet_bench ~fast ~domains ~reps =
  let _, _, model, q, _, x, cp = int8_unet_parts ~fast in
  with_wide (fun () ->
      compare_int8 ~name:"int8_unet_fwd" ~domains ~reps
        ~fref:(fun () ->
          let rng = Prng.create 0 in
          Some
            (Value.value
               (Cbgan.generator_forward model ~rng ~training:false ~cache_params:cp x)))
        ~fq:(fun () -> Some (Qgen.forward q ~cache_params:cp x)))

(* Fig-14 accuracy row: the same forward pair scored as hit rates, with
   [max_rel_err] carrying the absolute float-vs-int8 hit-rate delta. CI
   holds this under a committed bound so a quantization accuracy regression
   fails the same gate as a performance one. *)
let int8_fig14_bench ~fast ~domains =
  let spec, cfg, model, q, imgs, x, cp = int8_unet_parts ~fast in
  let h = cfg.Cbgan.image_size in
  let n = Tensor.dim x 0 in
  let split y =
    List.init n (fun i ->
        Cbox_dataset.denormalize spec (Tensor.view (Tensor.slice_batch y i 1) [| h; h |]))
  in
  with_wide (fun () ->
      Dpool.with_domains domains (fun () ->
          with_mode Blas.Tiled true (fun () ->
              let t0 = Unix.gettimeofday () in
              let yf =
                let rng = Prng.create 0 in
                Value.value
                  (Cbgan.generator_forward model ~rng ~training:false ~cache_params:cp x)
              in
              let tf = Unix.gettimeofday () -. t0 in
              let t1 = Unix.gettimeofday () in
              let yq = Qgen.forward q ~cache_params:cp x in
              let tq = Unix.gettimeofday () -. t1 in
              let hr_f = Heatmap.hit_rate spec ~access:imgs ~miss:(split yf) in
              let hr_q = Heatmap.hit_rate spec ~access:imgs ~miss:(split yq) in
              {
                name = "int8_fig14_delta";
                domains;
                ref_s = tf;
                tiled_s = tq;
                speedup = tf /. Float.max 1e-9 tq;
                max_rel_err = Some (Float.abs (hr_f -. hr_q));
              })))

(* --- distilled-student benchmarks ---

   Same honest-reference discipline as the int8 rows: the reference side is
   the float32 TEACHER forward in its best configuration (tiled kernels,
   workspace arena, wide-batch conv), the measured side the half-depth/
   half-width student — float32 or through its int8 compilation, so the
   student and quantization wins compose multiplicatively in one row. *)
let student_parts ~fast =
  let spec = Heatmap.spec () in
  let cfg = Cbgan.default_config ~ngf:(if fast then 8 else 16) () in
  let teacher = Cbgan.create ~seed:9 cfg in
  let student = Student.create ~seed:7 (Distill.student_config cfg) in
  let sq = Qgen.of_student ~spec student in
  let imgs = List.filteri (fun i _ -> i < 8) (Qgen.default_calib spec) in
  let x = Cbox_dataset.batch_images spec imgs in
  let n = Tensor.dim x 0 in
  let caches = Array.of_list Qgen.default_calib_caches in
  let cp =
    Cbgan.cache_params_tensor (List.init n (fun i -> caches.(i mod Array.length caches)))
  in
  (spec, cfg, teacher, student, sq, imgs, x, cp)

let teacher_fwd teacher ~cache_params x () =
  let rng = Prng.create 0 in
  Some
    (Value.value (Cbgan.generator_forward teacher ~rng ~training:false ~cache_params x))

let student_unet_bench ~fast ~domains ~reps =
  let _, _, teacher, student, _, _, x, cp = student_parts ~fast in
  with_wide (fun () ->
      compare_int8 ~name:"student_unet_fwd" ~domains ~reps
        ~fref:(teacher_fwd teacher ~cache_params:cp x)
        ~fq:(fun () ->
          Some (Value.value (Student.forward student ~training:false ~cache_params:cp x))))

let student_int8_bench ~fast ~domains ~reps =
  let _, _, teacher, _, sq, _, x, cp = student_parts ~fast in
  with_wide (fun () ->
      compare_int8 ~name:"student_int8_fwd" ~domains ~reps
        ~fref:(teacher_fwd teacher ~cache_params:cp x)
        ~fq:(fun () -> Some (Qgen.forward sq ~cache_params:cp x)))

(* Fig-14 accuracy row for the student: teacher-vs-student absolute
   hit-rate delta in [max_rel_err], held under a committed bound by the
   same CI gate as the int8 row. Both nets share the "empty heatmap"
   output-bias prior, so the delta is small by construction at init and
   only tightens with distillation. *)
let student_fig14_bench ~fast ~domains =
  let spec, cfg, teacher, student, _, imgs, x, cp = student_parts ~fast in
  let h = cfg.Cbgan.image_size in
  let n = Tensor.dim x 0 in
  let split y =
    List.init n (fun i ->
        Cbox_dataset.denormalize spec (Tensor.view (Tensor.slice_batch y i 1) [| h; h |]))
  in
  with_wide (fun () ->
      Dpool.with_domains domains (fun () ->
          with_mode Blas.Tiled true (fun () ->
              let t0 = Unix.gettimeofday () in
              let yt = Option.get (teacher_fwd teacher ~cache_params:cp x ()) in
              let tf = Unix.gettimeofday () -. t0 in
              let t1 = Unix.gettimeofday () in
              let ys =
                Value.value (Student.forward student ~training:false ~cache_params:cp x)
              in
              let ts = Unix.gettimeofday () -. t1 in
              let hr_t = Heatmap.hit_rate spec ~access:imgs ~miss:(split yt) in
              let hr_s = Heatmap.hit_rate spec ~access:imgs ~miss:(split ys) in
              {
                name = "student_fig14_delta";
                domains;
                ref_s = tf;
                tiled_s = ts;
                speedup = tf /. Float.max 1e-9 ts;
                max_rel_err = Some (Float.abs (hr_t -. hr_s));
              })))

let run ?(fast = Sys.getenv_opt "CACHEBOX_FAST" <> None) ?(log = fun _ -> ()) () =
  let reps = if fast then 2 else 3 in
  let dim = if fast then 96 else 256 in
  (* U-Net-shaped GEMMs: [oc x ic*k*k] times [ic*k*k x oh*ow] as lowered by
     im2col at the generator's first/middle levels, plus a square workload. *)
  let benches =
    [
      ( "gemm_unet_down",
        fun () ->
          gemm_bench ~name:"gemm_unet_down"
            ~m:(if fast then 16 else 64)
            ~k:(if fast then 128 else 1024)
            ~n:(if fast then 256 else 1024)
            ~domains:1 ~reps );
      ( "gemm_unet_mid",
        fun () ->
          gemm_bench ~name:"gemm_unet_mid"
            ~m:(if fast then 32 else 128)
            ~k:(if fast then 256 else 2048)
            ~n:(if fast then 64 else 256)
            ~domains:1 ~reps );
    ]
    @ List.map
        (fun d ->
          ( Printf.sprintf "gemm_square_%d at %d domains" dim d,
            fun () ->
              gemm_bench
                ~name:(Printf.sprintf "gemm_square_%d" dim)
                ~m:dim ~k:dim ~n:dim ~domains:d ~reps ))
        [ 1; 2; 4 ]
    @ [
        ("conv_fwd d1", fun () -> conv_fwd_bench ~fast ~domains:1 ~reps);
        ("conv_fwd d4", fun () -> conv_fwd_bench ~fast ~domains:4 ~reps);
        ("conv_bwd d1", fun () -> conv_bwd_bench ~fast ~domains:1 ~reps);
      ]
    @ List.map
        (fun d ->
          ( Printf.sprintf "cbgan_train_step at %d domains" d,
            fun () -> train_step_bench ~fast ~domains:d ))
        [ 1; 2; 4 ]
    @ [
        ( "int8_gemm_unet_down",
          fun () ->
            int8_gemm_bench ~name:"int8_gemm_unet_down"
              ~m:(if fast then 16 else 64)
              ~k:(if fast then 128 else 1024)
              ~n:(if fast then 256 else 1024)
              ~domains:1 ~reps );
        ("int8_conv_fwd d1", fun () -> int8_conv_bench ~fast ~domains:1 ~reps);
        ("int8_unet_fwd d1", fun () -> int8_unet_bench ~fast ~domains:1 ~reps);
        ("int8_unet_fwd d4", fun () -> int8_unet_bench ~fast ~domains:4 ~reps);
        ("int8_fig14_delta", fun () -> int8_fig14_bench ~fast ~domains:1);
        ("student_unet_fwd d1", fun () -> student_unet_bench ~fast ~domains:1 ~reps);
        ("student_unet_fwd d4", fun () -> student_unet_bench ~fast ~domains:4 ~reps);
        ("student_int8_fwd d1", fun () -> student_int8_bench ~fast ~domains:1 ~reps);
        ("student_fig14_delta", fun () -> student_fig14_bench ~fast ~domains:1);
      ]
  in
  List.map
    (fun (name, f) ->
      log name;
      f ())
    benches

(* --- machine-readable output ---

   Written by hand so lib/core needs no JSON dependency; the parser lives
   behind [cachebox bench] (bin/), which links the serve library's Sjson. *)

let json_of_result r =
  let err =
    match r.max_rel_err with
    | Some e -> Printf.sprintf ", \"max_rel_err\": %.9g" e
    | None -> ""
  in
  Printf.sprintf
    "    {\"name\": %S, \"domains\": %d, \"ref_s\": %.6f, \"tiled_s\": %.6f, \
     \"speedup\": %.4f%s}"
    r.name r.domains r.ref_s r.tiled_s r.speedup err

(* Provenance for a committed baseline: which commit produced it and how
   parallel the host was. Informational only — the baseline reader keys on
   "results" and ignores the rest — but it turns "why did this baseline
   move?" from archaeology into a diff. *)
let git_describe () =
  match Unix.open_process_in "git describe --always --dirty 2>/dev/null" with
  | exception _ -> None
  | ic -> (
    let line = try Some (input_line ic) with End_of_file | Sys_error _ -> None in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> line
    | _ -> None
    | exception _ -> None)

let meta_json () =
  Printf.sprintf "  \"meta\": {\"git\": %s, \"host_cores\": %d},\n"
    (match git_describe () with Some g -> Printf.sprintf "%S" g | None -> "null")
    (Domain.recommended_domain_count ())

let to_json results =
  Printf.sprintf "{\n  \"version\": 1,\n%s  \"results\": [\n%s\n  ]\n}\n" (meta_json ())
    (String.concat ",\n" (List.map json_of_result results))

let write_json ~path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json results))

let pp_table fmt results =
  Format.fprintf fmt "  %-24s %7s %10s %10s %8s %12s@." "benchmark" "domains"
    "ref (s)" "tiled (s)" "speedup" "max rel err";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-24s %7d %10.4f %10.4f %7.2fx %12s@." r.name
        r.domains r.ref_s r.tiled_s r.speedup
        (match r.max_rel_err with
        | Some e -> Printf.sprintf "%.2e" e
        | None -> "-"))
    results
