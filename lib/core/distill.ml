(* Knowledge distillation: fits a half-depth/half-width Student generator
   against a frozen CB-GAN teacher's miss heatmaps. The teacher runs in eval
   mode only (running-stats batch norm, no dropout), so its targets are
   deterministic and per-sample independent — computed per batch on the fly
   with no stored target table, and bit-identical at any Dpool domain count.

   The loss blends plain supervision against the ground-truth heatmap with
   imitation of the teacher's output, controlled by [temperature]:

     temperature = 0   pure supervised regression (the teacher is never
                       evaluated; the loss is bitwise the supervised one)
     temperature = 1   pure distillation against the teacher
     in between        (1 - t) * supervised + t * distillation

   Both terms are pixel losses (weighted L1 + L2); an optional
   feature-matching term pulls the student's bottleneck activations towards
   the teacher's through a learned linear adapter (the two bottlenecks have
   different widths), trained jointly with the student.

   The resilience layer — in-memory rollback points, on-disk snapshots with
   exact resume, the NaN/Inf divergence sentinel with LR-halving retries and
   the JSONL journal — mirrors Cbox_train batch for batch. *)

type options = {
  epochs : int;
  batch_size : int;
  lr : float;
  beta1 : float;
  temperature : float;
  l1_weight : float;
  l2_weight : float;
  feat_weight : float;
  seed : int;
  domains : int option;
  snapshot_every : int option;
  snapshot_dir : string option;
  keep_snapshots : int;
  max_retries : int;
  journal : string option;
}

let default_options ?(epochs = 2) ?(batch_size = 4) ?(temperature = 1.0)
    ?(l1_weight = 1.0) ?(l2_weight = 0.5) ?(feat_weight = 0.0) ?domains
    ?snapshot_every ?snapshot_dir ?journal () =
  {
    epochs;
    batch_size;
    lr = 2e-4;
    beta1 = 0.5;
    temperature;
    l1_weight;
    l2_weight;
    feat_weight;
    seed = 1234;
    domains;
    snapshot_every;
    snapshot_dir;
    keep_snapshots = 3;
    max_retries = 3;
    journal;
  }

type epoch_stats = {
  epoch : int;
  pixel : float;  (* mean blended pixel loss *)
  feat : float;  (* mean feature-matching loss (0 when disabled) *)
  batches : int;
}

(* Shared channel progression (ngf, 2ngf, 4ngf, 8ngf capped) — the same
   formula as Cbgan/Student's channel plans; used to size the bottleneck
   feature adapter without exposing either module's internals. *)
let bottleneck_channels ~ngf ~levels = ngf * min 8 (1 lsl min (levels - 1) 3)

let student_config ?(depth_div = 2) ?(width_div = 2) (t : Cbgan.config) =
  if depth_div < 1 || width_div < 1 then
    invalid_arg "Distill.student_config: divisors must be >= 1";
  {
    Student.st_image_size = t.Cbgan.image_size;
    st_levels = max 2 (t.Cbgan.levels / depth_div);
    st_ngf = max 1 (t.Cbgan.ngf / width_div);
    st_use_cond = t.Cbgan.use_cache_params;
    st_cond_hidden = max 2 (t.Cbgan.cond_hidden / width_div);
    st_cond_dim = max 1 (t.Cbgan.cond_dim / width_div);
  }

(* The supervised/distillation pixel term: weighted L1 + L2 against a fixed
   target image. Kept as a tiny named combinator so the zero-temperature
   path of [step_loss] is, by construction, exactly this expression — the
   qcheck bitwise-equivalence property depends on it. *)
let pixel_loss ~l1_weight ~l2_weight out target =
  Value.add
    (Value.scale (Value.l1_loss out target) l1_weight)
    (Value.scale (Value.mse_loss out target) l2_weight)

let step_loss ~temperature ~l1_weight ~l2_weight ~out ~truth ~teacher =
  if not (Float.is_finite temperature) || temperature < 0.0 || temperature > 1.0
  then invalid_arg "Distill.step_loss: temperature must be in [0, 1]";
  if temperature = 0.0 then pixel_loss ~l1_weight ~l2_weight out truth
  else begin
    let teacher_out =
      match teacher with
      | Some t -> t
      | None -> invalid_arg "Distill.step_loss: temperature > 0 requires a teacher output"
    in
    let dist = pixel_loss ~l1_weight ~l2_weight out teacher_out in
    if temperature = 1.0 then dist
    else
      Value.add
        (Value.scale (pixel_loss ~l1_weight ~l2_weight out truth) (1.0 -. temperature))
        (Value.scale dist temperature)
  end

exception Diverged of string * float

let chunks size xs =
  let rec go acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
      if count = size then go (List.rev current :: acc) [ x ] 1 rest
      else go acc (x :: current) (count + 1) rest
  in
  go [] [] 0 xs

let batch_tensors spec ~use_cond (samples : Cbox_dataset.sample list) =
  let access = Cbox_dataset.batch_images spec (List.map (fun (s : Cbox_dataset.sample) -> s.access) samples) in
  let target = Cbox_dataset.batch_images spec (List.map (fun (s : Cbox_dataset.sample) -> s.target) samples) in
  let cp =
    if use_cond then
      Some (Cbgan.cache_params_tensor (List.map (fun (s : Cbox_dataset.sample) -> s.cache) samples))
    else None
  in
  (access, target, cp)

let scalar v = Tensor.get (Value.value v) 0

(* --- resilience layer (mirrors Cbox_train) ---------------------------- *)

type run_state = {
  mutable epoch : int;
  mutable done_in_epoch : int;
  mutable global_batch : int;
  mutable retries : int;
  mutable sum_pixel : float;
  mutable sum_feat : float;
  mutable order : int array;
  mutable history : epoch_stats list;
}

type mem_snapshot = {
  s_params : float array array;
  s_bn : float array array;
  s_opt : (string * float array) list;
  s_prng : int64;
  s_epoch : int;
  s_done : int;
  s_global : int;
  s_sums : float * float;
  s_order : int array;
  s_history : epoch_stats list;
}

let snapshot_name global = Printf.sprintf "snap-%09d.ckpt" global

let list_snapshots dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           if
             String.length f = 19
             && String.sub f 0 5 = "snap-"
             && Filename.check_suffix f ".ckpt"
           then
             Option.map (fun b -> (b, Filename.concat dir f)) (int_of_string_opt (String.sub f 5 9))
           else None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)

let flatten_history history =
  let per (s : epoch_stats) =
    [ float_of_int s.epoch; s.pixel; s.feat; float_of_int s.batches ]
  in
  Array.of_list (List.concat_map per (List.rev history))

let unflatten_history a =
  if Array.length a mod 4 <> 0 then
    failwith "Distill: malformed distill.history in snapshot";
  let n = Array.length a / 4 in
  List.init n (fun i ->
      {
        epoch = int_of_float a.((i * 4) + 0);
        pixel = a.((i * 4) + 1);
        feat = a.((i * 4) + 2);
        batches = int_of_float a.((i * 4) + 3);
      })
  |> List.rev

let fingerprint options ~samples =
  Printf.sprintf "v1|%d|%d|%h|%h|%h|%h|%h|%h|%d|%d" options.epochs
    options.batch_size options.lr options.beta1 options.temperature
    options.l1_weight options.l2_weight options.feat_weight options.seed samples

let train_loop ~log ~resume ~teacher student spec options samples =
  let samples_arr = Array.of_list samples in
  let n = Array.length samples_arr in
  let rng = Prng.create options.seed in
  let scfg = Student.model_config student in
  let tcfg = Cbgan.model_config teacher in
  if scfg.Student.st_image_size <> tcfg.Cbgan.image_size then
    invalid_arg "Distill.train: student and teacher image sizes differ";
  if scfg.Student.st_use_cond <> tcfg.Cbgan.use_cache_params then
    invalid_arg "Distill.train: student and teacher conditioning disagree";
  (* The bottleneck adapter projects the student's pooled bottleneck
     features onto the teacher's channel width; it trains with the student
     and is discarded afterwards (the student checkpoint stands alone). *)
  let adapter =
    if options.feat_weight > 0.0 then
      Some
        (Layers.linear rng ~name:"distill.adapter"
           ~in_dim:(bottleneck_channels ~ngf:scfg.Student.st_ngf ~levels:scfg.Student.st_levels)
           ~out_dim:(bottleneck_channels ~ngf:tcfg.Cbgan.ngf ~levels:tcfg.Cbgan.levels)
           ~bias:true)
    else None
  in
  let all_params =
    Student.params student
    @ (match adapter with Some a -> Layers.linear_params a | None -> [])
  in
  let opt = Optimizer.adam ~lr:options.lr ~beta1:options.beta1 all_params in
  let bn = Student.state student in
  let journal = Option.map Runlog.create options.journal in
  let jevent kind fields = Option.iter (fun j -> Runlog.event j kind fields) journal in
  let fp = fingerprint options ~samples:n in
  let st =
    {
      epoch = 1;
      done_in_epoch = 0;
      global_batch = 0;
      retries = 0;
      sum_pixel = 0.0;
      sum_feat = 0.0;
      order = [||];
      history = [];
    }
  in

  (* --- in-memory snapshots (divergence rollback) --- *)
  let capture () =
    {
      s_params = Array.of_list (List.map (fun p -> Tensor.to_array p.Param.value) all_params);
      s_bn = Array.of_list (List.map (fun (_, a) -> Array.copy a) bn);
      s_opt = Optimizer.state opt;
      s_prng = Prng.state rng;
      s_epoch = st.epoch;
      s_done = st.done_in_epoch;
      s_global = st.global_batch;
      s_sums = (st.sum_pixel, st.sum_feat);
      s_order = Array.copy st.order;
      s_history = st.history;
    }
  in
  let restore_mem s =
    List.iteri
      (fun i p -> Array.iteri (fun j v -> Tensor.set p.Param.value j v) s.s_params.(i))
      all_params;
    List.iteri (fun i (_, live) -> Array.blit s.s_bn.(i) 0 live 0 (Array.length live)) bn;
    Optimizer.set_state opt s.s_opt;
    Prng.set_state rng s.s_prng;
    st.epoch <- s.s_epoch;
    st.done_in_epoch <- s.s_done;
    st.global_batch <- s.s_global;
    let a, b = s.s_sums in
    st.sum_pixel <- a;
    st.sum_feat <- b;
    st.order <- Array.copy s.s_order;
    st.history <- s.s_history
  in

  (* --- on-disk snapshots (crash resume) --- *)
  let snapshot_state () =
    bn
    @ List.map (fun (k, v) -> ("opt.s." ^ k, v)) (Optimizer.state opt)
    @ [
        ( "distill.pos",
          [|
            float_of_int st.epoch;
            float_of_int st.done_in_epoch;
            float_of_int st.global_batch;
          |] );
        ("distill.sums", [| st.sum_pixel; st.sum_feat |]);
        ("distill.order", Array.map float_of_int st.order);
        ("distill.history", flatten_history st.history);
      ]
  in
  let write_snapshot dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (snapshot_name st.global_batch) in
    Checkpoint.save path
      ~meta:
        [
          ("schema", "cachebox-distill-snapshot/1");
          ("options", fp);
          ("prng", Int64.to_string (Prng.state rng));
        ]
      ~params:all_params ~state:(snapshot_state ());
    jevent "snapshot"
      [ ("path", Runlog.S path); ("epoch", Runlog.I st.epoch); ("batch", Runlog.I st.global_batch) ];
    list_snapshots dir
    |> List.iteri (fun i (_, p) ->
           if i >= max 1 options.keep_snapshots then try Sys.remove p with Sys_error _ -> ())
  in
  let restore_disk (c : Checkpoint.container) =
    (match List.assoc_opt "options" (Checkpoint.meta c) with
    | Some fp' when fp' = fp -> ()
    | Some _ ->
      failwith
        "Distill.train: snapshot was written with different distillation options or dataset; \
         refusing to resume"
    | None -> failwith "Distill.train: snapshot has no options fingerprint");
    let req name =
      match Checkpoint.find_array c name with
      | Some a -> a
      | None -> failwith ("Distill.train: snapshot missing " ^ name)
    in
    let pos = req "distill.pos" in
    let sums = req "distill.sums" in
    if Array.length pos <> 3 || Array.length sums <> 2 then
      failwith "Distill.train: malformed snapshot position";
    let order = Array.map int_of_float (req "distill.order") in
    if Array.length order <> n then
      failwith "Distill.train: snapshot permutation does not match the dataset";
    let history = unflatten_history (req "distill.history") in
    let opt_state = Optimizer.state opt in
    Checkpoint.restore c ~params:all_params
      ~state:(bn @ List.map (fun (k, v) -> ("opt.s." ^ k, v)) opt_state);
    Optimizer.set_state opt opt_state;
    (match List.assoc_opt "prng" (Checkpoint.meta c) with
    | Some s -> Prng.set_state rng (Int64.of_string s)
    | None -> failwith "Distill.train: snapshot has no PRNG state");
    st.epoch <- int_of_float pos.(0);
    st.done_in_epoch <- int_of_float pos.(1);
    st.global_batch <- int_of_float pos.(2);
    st.sum_pixel <- sums.(0);
    st.sum_feat <- sums.(1);
    st.order <- order;
    st.history <- history
  in
  let try_resume dir =
    let rec attempt = function
      | [] -> jevent "resume_fresh" [ ("dir", Runlog.S dir) ]
      | (_, path) :: rest -> (
        match Checkpoint.read path with
        | exception Failure msg ->
          jevent "snapshot_corrupt" [ ("path", Runlog.S path); ("error", Runlog.S msg) ];
          attempt rest
        | c ->
          restore_disk c;
          jevent "resume"
            [
              ("path", Runlog.S path);
              ("epoch", Runlog.I st.epoch);
              ("batch", Runlog.I st.global_batch);
            ];
          log
            (Printf.sprintf "resumed from %s (epoch %d, batch %d)" path st.epoch st.global_batch))
    in
    attempt (list_snapshots dir)
  in

  (* --- per-batch work with the divergence sentinel --- *)
  let check who v = if not (Float.is_finite v) then raise (Diverged (who, v)) in
  (* The teacher never trains: eval-mode forward, no dropout, no gradient
     flow (its output enters the loss as a constant tensor). *)
  let teacher_rng = Prng.create 0 in
  let process_batch batch ~bidx =
    let access, target, cp =
      batch_tensors spec ~use_cond:scfg.Student.st_use_cond batch
    in
    let teacher_out =
      if options.temperature > 0.0 then
        Some
          (Value.value
             (Cbgan.generator_forward teacher ~rng:teacher_rng ~training:false
                ?cache_params:cp access))
      else None
    in
    Optimizer.zero_grad opt;
    let out, s_bneck =
      Student.forward_with_bottleneck student ~training:true ?cache_params:cp access
    in
    let loss_pixel =
      step_loss ~temperature:options.temperature ~l1_weight:options.l1_weight
        ~l2_weight:options.l2_weight ~out ~truth:target ~teacher:teacher_out
    in
    let loss, feat_value =
      match adapter with
      | Some ad ->
        let t_feat = Tensor.spatial_mean (Cbgan.generator_encode teacher access) in
        let s_feat = Value.spatial_mean s_bneck in
        let feat = Value.mse_loss (Layers.apply_linear ad s_feat) t_feat in
        (Value.add loss_pixel (Value.scale feat options.feat_weight), scalar feat)
      | None -> (loss_pixel, 0.0)
    in
    Value.backward loss;
    Faultinject.poison_grads ~batch:bidx all_params;
    check "distill_pixel" (scalar loss_pixel);
    check "distill_feat" feat_value;
    check "distill_grad_norm" (Optimizer.grad_norm opt);
    Optimizer.step opt;
    st.sum_pixel <- st.sum_pixel +. scalar loss_pixel;
    st.sum_feat <- st.sum_feat +. feat_value
  in

  (* --- driver --- *)
  let run () =
    jevent "run_start"
      [
        ("epochs", Runlog.I options.epochs);
        ("batch_size", Runlog.I options.batch_size);
        ("samples", Runlog.I n);
        ("temperature", Runlog.F options.temperature);
        ("resume", Runlog.B resume);
      ];
    (match (resume, options.snapshot_dir) with
    | true, Some dir -> try_resume dir
    | true, None -> invalid_arg "Distill.train: ~resume:true requires snapshot_dir"
    | false, _ -> ());
    let good = ref (capture ()) in
    let take_snapshot () =
      good := capture ();
      Option.iter write_snapshot options.snapshot_dir
    in
    while st.epoch <= options.epochs do
      if st.done_in_epoch = 0 then begin
        st.order <- Array.init n Fun.id;
        Prng.shuffle rng st.order;
        st.sum_pixel <- 0.0;
        st.sum_feat <- 0.0
      end;
      let shuffled = List.map (fun i -> samples_arr.(i)) (Array.to_list st.order) in
      let batches = Array.of_list (chunks options.batch_size shuffled) in
      let nb = Array.length batches in
      match
        while st.done_in_epoch < nb do
          let bidx = st.global_batch + 1 in
          process_batch batches.(st.done_in_epoch) ~bidx;
          st.done_in_epoch <- st.done_in_epoch + 1;
          st.global_batch <- bidx;
          (match options.snapshot_every with
          | Some k when k > 0 && st.global_batch mod k = 0 -> take_snapshot ()
          | _ -> ());
          Faultinject.kill_point ~batch:st.global_batch
        done
      with
      | () ->
        let nf = float_of_int (max 1 nb) in
        let stats =
          {
            epoch = st.epoch;
            pixel = st.sum_pixel /. nf;
            feat = st.sum_feat /. nf;
            batches = nb;
          }
        in
        log
          (Printf.sprintf "epoch %d/%d: pixel %.4f feat %.4f (%d batches)" st.epoch
             options.epochs stats.pixel stats.feat stats.batches);
        jevent "epoch_end"
          [
            ("epoch", Runlog.I st.epoch);
            ("pixel", Runlog.F stats.pixel);
            ("feat", Runlog.F stats.feat);
            ("batches", Runlog.I nb);
          ];
        st.history <- stats :: st.history;
        st.epoch <- st.epoch + 1;
        st.done_in_epoch <- 0;
        good := capture ()
      | exception Diverged (who, v) ->
        jevent "divergence"
          [
            ("source", Runlog.S who);
            ("value", Runlog.F v);
            ("epoch", Runlog.I st.epoch);
            ("batch", Runlog.I (st.global_batch + 1));
            ("retries", Runlog.I st.retries);
          ];
        if st.retries >= options.max_retries then begin
          jevent "abort" [ ("reason", Runlog.S "divergence retries exhausted") ];
          failwith
            (Printf.sprintf
               "Distill.train: %s diverged (%g) at batch %d; %d rollbacks exhausted" who v
               (st.global_batch + 1) st.retries)
        end;
        let r = st.retries + 1 in
        restore_mem !good;
        st.retries <- r;
        let new_lr = Optimizer.lr opt /. 2.0 in
        Optimizer.set_lr opt new_lr;
        jevent "rollback"
          [
            ("epoch", Runlog.I st.epoch);
            ("batch", Runlog.I st.global_batch);
            ("lr", Runlog.F new_lr);
            ("retries", Runlog.I r);
          ]
    done;
    jevent "run_end" [ ("epochs", Runlog.I options.epochs); ("batches", Runlog.I st.global_batch) ];
    List.rev st.history
  in
  Fun.protect ~finally:(fun () -> Option.iter Runlog.close journal) run

let train ?(log = fun _ -> ()) ?(resume = false) ~teacher student spec options samples =
  if samples = [] then invalid_arg "Distill.train: empty dataset";
  if
    (not (Float.is_finite options.temperature))
    || options.temperature < 0.0
    || options.temperature > 1.0
  then invalid_arg "Distill.train: temperature must be in [0, 1]";
  if options.l1_weight < 0.0 || options.l2_weight < 0.0 || options.feat_weight < 0.0
  then invalid_arg "Distill.train: loss weights must be non-negative";
  match options.domains with
  | Some d ->
    Dpool.with_domains d (fun () ->
        train_loop ~log ~resume ~teacher student spec options samples)
  | None -> train_loop ~log ~resume ~teacher student spec options samples
