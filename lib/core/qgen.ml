(* Int8 quantized generator for inference.

   This is a post-training compilation of a trained {!Cbgan} generator into
   a direct tensor program:

   - every batch norm is folded into the preceding (transposed) convolution
     using its running statistics — exact at inference, where batch norm is
     an affine per-channel map — so the quantized network has only GEMMs and
     pointwise activations;
   - each folded weight matrix is quantized symmetrically with per-output-row
     scales and packed for {!Blas.Int8.gemm};
   - one per-tensor activation scale per GEMM is calibrated by running the
     folded float network over a calibration batch and recording the largest
     absolute input each GEMM sees ({!Quant.observer});
   - the Value-graph machinery is bypassed entirely: [forward] calls the
     quantized {!Conv} lowerings directly, which both removes the tape
     overhead and lets the int8 kernels run on the wide-batch path.

   The compiled model serializes to a v3 checkpoint carrying int8 bytes and
   exact float64 scales/biases, so a quantized artifact loads without the
   float originals and round-trips scales bit-identically. *)

type qconv = {
  qc_w : Blas.Int8.qweight;  (* [oc; ic*k*k], bias fused *)
  qc_act : float;
  qc_kernel : int;
  qc_stride : int;
  qc_pad : int;
}

type qtconv = {
  qt_w : Blas.Int8.qweight;  (* [oc*k*k; ic] (transposed at quantize time) *)
  qt_act : float;
  qt_bias : Tensor.t;  (* [oc], applied after col2im *)
  qt_kernel : int;
  qt_stride : int;
  qt_pad : int;
}

type qlinear = { ql_w : Blas.Int8.qweight; (* [out; in], bias fused *) ql_act : float }

type t = {
  q_image_size : int;
  q_levels : int;
  q_cond_dim : int;
  q_bneck : int;  (* bottleneck spatial side: 1 for the full-depth teacher,
                     image_size / 2^levels for a half-depth student *)
  q_downs : qconv array;
  q_ups : qtconv array;
  q_cond : (qlinear * qlinear * qlinear) option;
}

let image_size t = t.q_image_size
let uses_cache_params t = t.q_cond <> None

(* --- batch-norm folding --- *)

(* BN(y)_o = (y_o - mu_o) * g_o + beta_o with g_o = gamma_o / sqrt(var_o + eps),
   so conv-then-BN folds to a conv with W'[o,:] = W[o,:] * g_o and
   b'_o = (b_o - mu_o) * g_o + beta_o. Without a BN, g = 1 and b' = b. *)
let bn_gains bn oc =
  match bn with
  | None -> (Array.make oc 1.0, fun _ b -> b)
  | Some (bn : Layers.batch_norm) ->
    let g =
      Array.init oc (fun o ->
          Tensor.get bn.Layers.gamma.Param.value o
          /. Float.sqrt (bn.Layers.running_var.(o) +. bn.Layers.eps))
    in
    ( g,
      fun o b ->
        ((b -. bn.Layers.running_mean.(o)) *. g.(o))
        +. Tensor.get bn.Layers.beta.Param.value o )

let param_bias bias oc =
  match bias with
  | Some (p : Param.t) -> Array.init oc (fun o -> Tensor.get p.value o)
  | None -> Array.make oc 0.0

(* Folded float weights, materialized so the calibration pass can run the
   plain float Conv kernels over exactly the network that will be quantized. *)
type fconv = { f_w : Tensor.t; f_b : Tensor.t; f_stride : int; f_pad : int }

let fold_conv (cv : Layers.conv2d) bn =
  let w = cv.Layers.weight.Param.value in
  let oc = Tensor.dim w 0 in
  let per_row = Tensor.numel w / oc in
  let g, fold_b = bn_gains bn oc in
  let wf = Tensor.copy w in
  let d = wf.Tensor.data in
  for o = 0 to oc - 1 do
    let base = o * per_row in
    for p = 0 to per_row - 1 do
      Bigarray.Array1.unsafe_set d (base + p)
        (Bigarray.Array1.unsafe_get d (base + p) *. g.(o))
    done
  done;
  let b0 = param_bias cv.Layers.bias oc in
  let bf = Tensor.create [| oc |] in
  Array.iteri (fun o b -> Tensor.set bf o (fold_b o b)) b0;
  { f_w = wf; f_b = bf; f_stride = cv.Layers.stride; f_pad = cv.Layers.pad }

(* Transposed convolutions carry their weight as [ic; oc; k; k]: the output
   channel is dim 1, so folding scales the slice W[:, o, :, :]. *)
let fold_tconv (tc : Layers.conv_transpose2d) bn =
  let w = tc.Layers.tweight.Param.value in
  let ic = Tensor.dim w 0 and oc = Tensor.dim w 1 in
  let khw = Tensor.dim w 2 * Tensor.dim w 3 in
  let g, fold_b = bn_gains bn oc in
  let wf = Tensor.copy w in
  let d = wf.Tensor.data in
  for i = 0 to ic - 1 do
    for o = 0 to oc - 1 do
      let base = ((i * oc) + o) * khw in
      for p = 0 to khw - 1 do
        Bigarray.Array1.unsafe_set d (base + p)
          (Bigarray.Array1.unsafe_get d (base + p) *. g.(o))
      done
    done
  done;
  let b0 = param_bias tc.Layers.tbias oc in
  let bf = Tensor.create [| oc |] in
  Array.iteri (fun o b -> Tensor.set bf o (fold_b o b)) b0;
  { f_w = wf; f_b = bf; f_stride = tc.Layers.tstride; f_pad = tc.Layers.tpad }

(* --- pointwise helpers shared by the calibration and quantized forwards --- *)

let leaky_copy x =
  let y = Tensor.copy x in
  Tensor.map_ (fun v -> if v > 0.0 then v else 0.2 *. v) y;
  y

let relu_copy x =
  let y = Tensor.copy x in
  Tensor.map_ (fun v -> if v > 0.0 then v else 0.0) y;
  y

let relu_ x = Tensor.map_ (fun v -> if v > 0.0 then v else 0.0) x
let tanh_ x = Tensor.map_ Float.tanh x

(* y[n; out] = x[n; in] * W^T + b: the float reference for the cond MLP. *)
let linear_fwd (f : fconv) x =
  let n = Tensor.dim x 0 and out = Tensor.dim f.f_w 0 in
  let y = Tensor.create [| n; out |] in
  Blas.gemm ~trans_b:true ~alpha:1.0 ~a:x ~b:f.f_w ~beta:0.0 y;
  for i = 0 to n - 1 do
    for o = 0 to out - 1 do
      Tensor.set2 y i o (Tensor.get2 y i o +. Tensor.get f.f_b o)
    done
  done;
  y

(* --- calibration: float forward over the folded network ---

   Mirrors Cbgan.generator_forward at inference (dropout off, batch norm
   folded away) on plain tensors; [observe] receives every GEMM input so
   the pass records exactly the activation ranges the quantized GEMMs will
   see. Observation keys: [("down", i)], [("up", i)], [("cond", j)]. *)
let broadcast_cond h ~bneck =
  if bneck > 1 then Tensor.broadcast_spatial h ~h:bneck ~w:bneck else h

let forward_folded ~levels ~cond_dim ~bneck ~downs ~ups ~cond ~observe ?cache_params x =
  let n = Tensor.dim x 0 in
  let enc = Array.make levels x in
  for i = 0 to levels - 1 do
    let input = if i = 0 then x else leaky_copy enc.(i - 1) in
    observe ("down", i) input;
    let f = (downs.(i) : fconv) in
    enc.(i) <- Conv.conv2d ~x:input ~weight:f.f_w ~bias:(Some f.f_b) ~stride:f.f_stride ~pad:f.f_pad
  done;
  let bottleneck =
    match (cond, cache_params) with
    | None, _ -> enc.(levels - 1)
    | Some _, None -> invalid_arg "Qgen: cache parameters required"
    | Some (fc0, fc1, fc2), Some cp ->
      if Tensor.dim cp 0 <> n || Tensor.dim cp 1 <> 2 then
        invalid_arg "Qgen: cache_params must be [n; 2]";
      observe ("cond", 0) cp;
      let h = linear_fwd fc0 cp in
      relu_ h;
      observe ("cond", 1) h;
      let h = linear_fwd fc1 h in
      relu_ h;
      observe ("cond", 2) h;
      let h = linear_fwd fc2 h in
      Tensor.concat_channels enc.(levels - 1)
        (broadcast_cond (Tensor.view h [| n; cond_dim; 1; 1 |]) ~bneck)
  in
  let d = ref bottleneck in
  for i = 0 to levels - 1 do
    let input = relu_copy !d in
    observe ("up", i) input;
    let f = (ups.(i) : fconv) in
    let y =
      Conv.conv_transpose2d ~x:input ~weight:f.f_w ~bias:(Some f.f_b) ~stride:f.f_stride
        ~pad:f.f_pad
    in
    if i = levels - 1 then begin
      tanh_ y;
      d := y
    end
    else d := Tensor.concat_channels y enc.(levels - 2 - i)
  done;
  !d

(* --- quantized forward --- *)

(* The quantized cond MLP chains GEMMs in [features; n] orientation: the
   first layer consumes cp^T via trans_b, after which each activation is
   already the next GEMM's B operand — no transposes inside the chain. The
   fused per-row bias is per-feature, which is correct for every column. *)
let qlinear_chain (q0, q1, q2) cp n cond_dim =
  let hid = Blas.Int8.rows q0.ql_w in
  let h1 = Tensor.create [| hid; n |] in
  Blas.Int8.gemm ~trans_b:true ~a:q0.ql_w ~act_scale:q0.ql_act ~b:cp h1;
  relu_ h1;
  let h2 = Tensor.create [| Blas.Int8.rows q1.ql_w; n |] in
  Blas.Int8.gemm ~a:q1.ql_w ~act_scale:q1.ql_act ~b:h1 h2;
  relu_ h2;
  let h3 = Tensor.create [| cond_dim; n |] in
  Blas.Int8.gemm ~a:q2.ql_w ~act_scale:q2.ql_act ~b:h2 h3;
  (* Transpose [cond_dim; n] -> [n; cond_dim; 1; 1] for the bottleneck
     concat. *)
  let out = Tensor.create [| n; cond_dim; 1; 1 |] in
  for i = 0 to n - 1 do
    for c = 0 to cond_dim - 1 do
      Tensor.set out ((i * cond_dim) + c) (Tensor.get2 h3 c i)
    done
  done;
  out

let forward t ?cache_params x =
  let levels = t.q_levels in
  let n = Tensor.dim x 0 in
  if Tensor.dim x 2 <> t.q_image_size || Tensor.dim x 3 <> t.q_image_size then
    invalid_arg "Qgen.forward: image size mismatch";
  let enc = Array.make levels x in
  for i = 0 to levels - 1 do
    let input = if i = 0 then x else leaky_copy enc.(i - 1) in
    let q = t.q_downs.(i) in
    enc.(i) <-
      Conv.conv2d_q ~x:input ~weight:q.qc_w ~act_scale:q.qc_act ~kernel:q.qc_kernel
        ~stride:q.qc_stride ~pad:q.qc_pad
  done;
  let bottleneck =
    match (t.q_cond, cache_params) with
    | None, _ -> enc.(levels - 1)
    | Some _, None -> invalid_arg "Qgen.forward: cache parameters required"
    | Some chain, Some cp ->
      if Tensor.dim cp 0 <> n || Tensor.dim cp 1 <> 2 then
        invalid_arg "Qgen.forward: cache_params must be [n; 2]";
      Tensor.concat_channels enc.(levels - 1)
        (broadcast_cond (qlinear_chain chain cp n t.q_cond_dim) ~bneck:t.q_bneck)
  in
  let d = ref bottleneck in
  for i = 0 to levels - 1 do
    let input = relu_copy !d in
    let q = t.q_ups.(i) in
    let y =
      Conv.conv_transpose2d_q ~x:input ~weight:q.qt_w ~act_scale:q.qt_act
        ~bias:(Some q.qt_bias) ~kernel:q.qt_kernel ~stride:q.qt_stride ~pad:q.qt_pad
    in
    if i = levels - 1 then begin
      tanh_ y;
      d := y
    end
    else d := Tensor.concat_channels y enc.(levels - 2 - i)
  done;
  !d

(* --- calibration batch --- *)

(* Deterministic default calibration inputs: a mix of strided and
   pseudo-random (LCG) traces whose heatmaps span sparse and dense access
   patterns, plus a spread of cache geometries for the conditioning MLP.
   Two images per trace keep the batch small enough to calibrate in
   milliseconds. *)
let default_calib spec =
  let len = 2 * Heatmap.accesses_per_image spec in
  let strided stride = Array.init len (fun i -> i * stride) in
  let lcg seed =
    let s = ref seed in
    Array.init len (fun _ ->
        s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
        (!s land 0xFFFF) * 64)
  in
  let traces = [ strided 64; strided 320; strided 4096; lcg 1; lcg 7 ] in
  List.concat_map (fun tr -> Heatmap.of_trace spec tr) traces

let default_calib_caches =
  [
    Cache.config ~sets:64 ~ways:8 ();
    Cache.config ~sets:16 ~ways:16 ();
    Cache.config ~sets:256 ~ways:4 ();
    Cache.config ~sets:1024 ~ways:2 ();
  ]

(* --- compilation --- *)

(* Shared compile body: folds the layer views, calibrates over the folded
   float network and quantizes — identical for the teacher and the student,
   which differ only in their dimensions (the student's bottleneck may be
   wider than 1x1). *)
let compile ~pow2 ~spec ~calib ~calib_caches ~image_size ~levels ~cond_dim ~bneck
    ~use_cond ~downs_v ~ups_v ~cond_v =
  let downs = Array.map (fun (cv, bn) -> fold_conv cv bn) downs_v in
  let ups = Array.map (fun (tc, bn, _dropout) -> fold_tconv tc bn) ups_v in
  let cond =
    Option.map
      (fun (l0, l1, l2) ->
        let of_linear (ln : Layers.linear) =
          let w = ln.Layers.lweight.Param.value in
          {
            f_w = Tensor.copy w;
            f_b =
              (let out = Tensor.dim w 0 in
               let b = Tensor.create [| out |] in
               Array.iteri (Tensor.set b) (param_bias ln.Layers.lbias out);
               b);
            f_stride = 1;
            f_pad = 0;
          }
        in
        (of_linear l0, of_linear l1, of_linear l2))
      cond_v
  in
  (* Calibrate: run the folded float network over the calibration batch and
     record each GEMM input's range. *)
  let images = match calib with Some l -> l | None -> default_calib spec in
  if images = [] then invalid_arg "Qgen.of_model: empty calibration batch";
  let x = Cbox_dataset.batch_images spec images in
  let n = Tensor.dim x 0 in
  let cp =
    if use_cond then
      let caches =
        match calib_caches with Some l when l <> [] -> l | _ -> default_calib_caches
      in
      let arr = Array.of_list caches in
      Some
        (Cbgan.cache_params_tensor
           (List.init n (fun i -> arr.(i mod Array.length arr))))
    else None
  in
  let observers = Hashtbl.create 32 in
  let obs key =
    match Hashtbl.find_opt observers key with
    | Some o -> o
    | None ->
      let o = Quant.observer () in
      Hashtbl.add observers key o;
      o
  in
  let observe key tensor = Quant.observe (obs key) tensor in
  ignore
    (forward_folded ~levels ~cond_dim ~bneck ~downs ~ups ~cond ~observe ?cache_params:cp
       x);
  let act key = Quant.observed_scale ~pow2 (obs key) in
  (* Quantize the folded weights. *)
  let q_downs =
    Array.mapi
      (fun i (f : fconv) ->
        let oc = Tensor.dim f.f_w 0 in
        let kernel = Tensor.dim f.f_w 2 in
        let kk = Tensor.numel f.f_w / oc in
        let wm = Tensor.view f.f_w [| oc; kk |] in
        let bias = Array.init oc (Tensor.get f.f_b) in
        {
          qc_w = Blas.Int8.quantize ~pow2 ~bias wm;
          qc_act = act ("down", i);
          qc_kernel = kernel;
          qc_stride = f.f_stride;
          qc_pad = f.f_pad;
        })
      downs
  in
  let q_ups =
    Array.mapi
      (fun i (f : fconv) ->
        let ic = Tensor.dim f.f_w 0 in
        let kernel = Tensor.dim f.f_w 2 in
        let okk = Tensor.numel f.f_w / ic in
        let wm = Tensor.view f.f_w [| ic; okk |] in
        {
          qt_w = Blas.Int8.quantize ~trans:true ~pow2 wm;
          qt_act = act ("up", i);
          qt_bias = f.f_b;
          qt_kernel = kernel;
          qt_stride = f.f_stride;
          qt_pad = f.f_pad;
        })
      ups
  in
  let q_cond =
    Option.map
      (fun ((f0 : fconv), (f1 : fconv), (f2 : fconv)) ->
        let ql j (f : fconv) =
          let out = Tensor.dim f.f_w 0 in
          let bias = Array.init out (Tensor.get f.f_b) in
          { ql_w = Blas.Int8.quantize ~pow2 ~bias f.f_w; ql_act = act ("cond", j) }
        in
        (ql 0 f0, ql 1 f1, ql 2 f2))
      cond
  in
  {
    q_image_size = image_size;
    q_levels = levels;
    q_cond_dim = cond_dim;
    q_bneck = bneck;
    q_downs;
    q_ups;
    q_cond;
  }

let of_model ?(pow2 = false) ~spec ?calib ?calib_caches model =
  let cfg = Cbgan.model_config model in
  compile ~pow2 ~spec ~calib ~calib_caches ~image_size:cfg.Cbgan.image_size
    ~levels:cfg.Cbgan.levels ~cond_dim:cfg.Cbgan.cond_dim
    ~bneck:(cfg.Cbgan.image_size lsr cfg.Cbgan.levels)
    ~use_cond:cfg.Cbgan.use_cache_params ~downs_v:(Cbgan.generator_downs model)
    ~ups_v:(Cbgan.generator_ups model) ~cond_v:(Cbgan.generator_cond model)

let of_student ?(pow2 = false) ~spec ?calib ?calib_caches student =
  let cfg = Student.model_config student in
  compile ~pow2 ~spec ~calib ~calib_caches ~image_size:cfg.Student.st_image_size
    ~levels:cfg.Student.st_levels ~cond_dim:cfg.Student.st_cond_dim
    ~bneck:(Student.bottleneck_size cfg) ~use_cond:cfg.Student.st_use_cond
    ~downs_v:(Student.student_downs student) ~ups_v:(Student.student_ups student)
    ~cond_v:(Student.student_cond student)

(* --- serialization (v3 checkpoint) --- *)

let geom_meta k s p = Printf.sprintf "%d,%d,%d" k s p

let parse_geom s =
  match String.split_on_char ',' s with
  | [ k; s'; p ] -> (int_of_string k, int_of_string s', int_of_string p)
  | _ -> failwith "Qgen.load: malformed geometry"

let save t path =
  let meta =
    [
      ("qgen.image_size", string_of_int t.q_image_size);
      ("qgen.levels", string_of_int t.q_levels);
      ("qgen.cond_dim", string_of_int t.q_cond_dim);
      ("qgen.bneck", string_of_int t.q_bneck);
      ("qgen.cond", if t.q_cond = None then "0" else "1");
    ]
    @ List.concat
        (List.init t.q_levels (fun i ->
             let qd = t.q_downs.(i) and qu = t.q_ups.(i) in
             [
               ( Printf.sprintf "qgen.down%d.geom" i,
                 geom_meta qd.qc_kernel qd.qc_stride qd.qc_pad );
               ( Printf.sprintf "qgen.up%d.geom" i,
                 geom_meta qu.qt_kernel qu.qt_stride qu.qt_pad );
             ]))
  in
  let down_entries =
    List.concat
      (List.init t.q_levels (fun i ->
           let q = t.q_downs.(i) in
           Quant.entries_of_qweight
             ~prefix:(Printf.sprintf "qgen.down%d" i)
             ~act_scale:q.qc_act q.qc_w))
  in
  let up_entries =
    List.concat
      (List.init t.q_levels (fun i ->
           let q = t.q_ups.(i) in
           let prefix = Printf.sprintf "qgen.up%d" i in
           Quant.entries_of_qweight ~prefix ~act_scale:q.qt_act q.qt_w
           @ [
               ( prefix ^ ".tbias",
                 [| Tensor.numel q.qt_bias |],
                 Checkpoint.F64 (Array.init (Tensor.numel q.qt_bias) (Tensor.get q.qt_bias))
               );
             ]))
  in
  let cond_entries =
    match t.q_cond with
    | None -> []
    | Some (q0, q1, q2) ->
      List.concat
        (List.mapi
           (fun j q ->
             Quant.entries_of_qweight
               ~prefix:(Printf.sprintf "qgen.cond%d" j)
               ~act_scale:q.ql_act q.ql_w)
           [ q0; q1; q2 ])
  in
  Checkpoint.save_packed ~meta path (down_entries @ up_entries @ cond_entries)

let load path =
  let c = Checkpoint.read path in
  let meta = Checkpoint.meta c in
  let meta_int name =
    match List.assoc_opt name meta with
    | Some v -> int_of_string v
    | None -> failwith ("Qgen.load: missing meta " ^ name)
  in
  let image_size = meta_int "qgen.image_size" in
  let levels = meta_int "qgen.levels" in
  let cond_dim = meta_int "qgen.cond_dim" in
  (* Artifacts from before the student backend carry no bneck; they are all
     full-depth, where the bottleneck is 1x1. *)
  let bneck =
    match List.assoc_opt "qgen.bneck" meta with Some v -> int_of_string v | None -> 1
  in
  let has_cond = meta_int "qgen.cond" <> 0 in
  let geom name =
    match List.assoc_opt name meta with
    | Some v -> parse_geom v
    | None -> failwith ("Qgen.load: missing meta " ^ name)
  in
  let q_downs =
    Array.init levels (fun i ->
        let prefix = Printf.sprintf "qgen.down%d" i in
        let qw, act = Quant.qweight_of_container c ~prefix in
        let k, s, p = geom (prefix ^ ".geom") in
        { qc_w = qw; qc_act = act; qc_kernel = k; qc_stride = s; qc_pad = p })
  in
  let q_ups =
    Array.init levels (fun i ->
        let prefix = Printf.sprintf "qgen.up%d" i in
        let qw, act = Quant.qweight_of_container c ~prefix in
        let k, s, p = geom (prefix ^ ".geom") in
        let bias =
          match Checkpoint.find_array c (prefix ^ ".tbias") with
          | Some b ->
            let bt = Tensor.create [| Array.length b |] in
            Array.iteri (Tensor.set bt) b;
            bt
          | None -> failwith ("Qgen.load: missing " ^ prefix ^ ".tbias")
        in
        { qt_w = qw; qt_act = act; qt_bias = bias; qt_kernel = k; qt_stride = s; qt_pad = p })
  in
  let q_cond =
    if not has_cond then None
    else
      let ql j =
        let qw, act =
          Quant.qweight_of_container c ~prefix:(Printf.sprintf "qgen.cond%d" j)
        in
        { ql_w = qw; ql_act = act }
      in
      Some (ql 0, ql 1, ql 2)
  in
  {
    q_image_size = image_size;
    q_levels = levels;
    q_cond_dim = cond_dim;
    q_bneck = bneck;
    q_downs;
    q_ups;
    q_cond;
  }
