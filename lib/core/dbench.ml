(* Dataset-pipeline benchmarks: seed recorded path vs streaming builders.

   The reference side is the dataset pipeline exactly as it first shipped,
   replicated here verbatim (the [Blas.Reference] convention): a cache model
   that recomputes [log2 sets] on every access and rescans the set on a
   miss, a list-walked hierarchy that records every per-level trace into
   buffers, per-access prefetcher consultation returning fresh lists, a full
   decode of the recorded buffers, and a second pass cutting heatmaps out of
   the arrays with [Heatmap.pair_of_trace]. The production side is
   [Cbox_dataset.build_*]: fused-scan LRU, streaming [Heatmap.Accum]
   columns, Dpool workload fan-out and (for the warm benchmark) the
   content-addressed [Simcache].

   Outputs are compared element-for-element: [max_rel_err] must be 0 — the
   streaming path is a pure optimization, not an approximation. *)

module Seed = struct
  (* Verbatim replica of the seed [Cache] (see the initial lib/cachesim
     revision): positional find/victim scans, a (hit, eviction) tuple per
     access, and the tag shift recomputed per access. *)
  let log2 n =
    let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
    go 0 n

  type cache = {
    cfg : Cache.config;
    block_shift : int;
    set_mask : int;
    tags : int array;
    meta : int array;
    mutable clock : int;
    mutable accesses : int;
    mutable hits : int;
    rng : Prng.t option;
  }

  let create (cfg : Cache.config) =
    {
      cfg;
      block_shift = log2 cfg.Cache.block_bytes;
      set_mask = cfg.Cache.sets - 1;
      tags = Array.make (cfg.Cache.sets * cfg.Cache.ways) (-1);
      meta = Array.make (cfg.Cache.sets * cfg.Cache.ways) 0;
      clock = 0;
      accesses = 0;
      hits = 0;
      rng =
        (match cfg.Cache.policy with
        | Cache.Random_policy seed -> Some (Prng.create seed)
        | _ -> None);
    }

  let set_and_tag t addr =
    let block = addr lsr t.block_shift in
    (block land t.set_mask, block lsr log2 t.cfg.Cache.sets)

  let find_way t base tag =
    let rec go w =
      if w >= t.cfg.Cache.ways then -1
      else if t.tags.(base + w) = tag then w
      else go (w + 1)
    in
    go 0

  let plru_touch t base way =
    t.meta.(base + way) <- 1;
    let all_set = ref true in
    for w = 0 to t.cfg.Cache.ways - 1 do
      if t.meta.(base + w) = 0 then all_set := false
    done;
    if !all_set then
      for w = 0 to t.cfg.Cache.ways - 1 do
        if w <> way then t.meta.(base + w) <- 0
      done

  let on_hit t base way =
    t.clock <- t.clock + 1;
    match t.cfg.Cache.policy with
    | Cache.Lru -> t.meta.(base + way) <- t.clock
    | Cache.Fifo -> ()
    | Cache.Plru -> plru_touch t base way
    | Cache.Srrip -> t.meta.(base + way) <- 0
    | Cache.Random_policy _ -> ()

  let victim t base =
    let invalid = ref (-1) in
    for w = t.cfg.Cache.ways - 1 downto 0 do
      if t.tags.(base + w) = -1 then invalid := w
    done;
    if !invalid >= 0 then !invalid
    else
      match t.cfg.Cache.policy with
      | Cache.Lru | Cache.Fifo ->
        let best = ref 0 in
        for w = 1 to t.cfg.Cache.ways - 1 do
          if t.meta.(base + w) < t.meta.(base + !best) then best := w
        done;
        !best
      | Cache.Plru ->
        let rec first_clear w =
          if w >= t.cfg.Cache.ways then 0
          else if t.meta.(base + w) = 0 then w
          else first_clear (w + 1)
        in
        first_clear 0
      | Cache.Srrip ->
        let rec go () =
          let found = ref (-1) in
          for w = t.cfg.Cache.ways - 1 downto 0 do
            if t.meta.(base + w) >= 3 then found := w
          done;
          if !found >= 0 then !found
          else begin
            for w = 0 to t.cfg.Cache.ways - 1 do
              t.meta.(base + w) <- t.meta.(base + w) + 1
            done;
            go ()
          end
        in
        go ()
      | Cache.Random_policy _ -> (
        match t.rng with Some g -> Prng.int g t.cfg.Cache.ways | None -> assert false)

  let on_fill t base way =
    t.clock <- t.clock + 1;
    match t.cfg.Cache.policy with
    | Cache.Lru | Cache.Fifo -> t.meta.(base + way) <- t.clock
    | Cache.Plru -> plru_touch t base way
    | Cache.Srrip -> t.meta.(base + way) <- 2
    | Cache.Random_policy _ -> ()

  let fill t base tag =
    let way = victim t base in
    let evicted = t.tags.(base + way) in
    t.tags.(base + way) <- tag;
    on_fill t base way;
    evicted

  let rebuild_address t set tag =
    let block = (tag lsl log2 t.cfg.Cache.sets) lor set in
    block lsl t.block_shift

  let access_evict t addr =
    let set, tag = set_and_tag t addr in
    let base = set * t.cfg.Cache.ways in
    t.accesses <- t.accesses + 1;
    let way = find_way t base tag in
    if way >= 0 then begin
      t.hits <- t.hits + 1;
      on_hit t base way;
      (true, None)
    end
    else begin
      let evicted = fill t base tag in
      (false, if evicted < 0 then None else Some (rebuild_address t set evicted))
    end

  let access t addr = fst (access_evict t addr)

  let insert t addr =
    let set, tag = set_and_tag t addr in
    let base = set * t.cfg.Cache.ways in
    if find_way t base tag < 0 then ignore (fill t base tag)

  (* Verbatim replica of the seed [Hierarchy]: an association list of
     (level, node) walked with closures, per-level buffer recorders decoded
     into arrays after the run. *)
  type recorder = { addrs : Buffer.t; flags : Buffer.t }

  let recorder () = { addrs = Buffer.create 4096; flags = Buffer.create 512 }

  let record r addr hit =
    Buffer.add_int64_le r.addrs (Int64.of_int addr);
    Buffer.add_char r.flags (if hit then '\001' else '\000')

  let recorded_trace r level =
    let raw = Buffer.contents r.addrs in
    let n = String.length raw / 8 in
    let addresses = Array.init n (fun i -> Int64.to_int (String.get_int64_le raw (i * 8))) in
    let flags_raw = Buffer.contents r.flags in
    let hits = Array.init n (fun i -> flags_raw.[i] = '\001') in
    { Hierarchy.level; addresses; hits }

  type node = { cache : cache; rec_ : recorder }

  type hierarchy = {
    levels : (Hierarchy.level * node) list;
    prefetcher : Prefetch.t;
    pf_addrs : Buffer.t;
  }

  let hierarchy ~l1 ~l2 ~l3 () =
    let mk lvl cfg = (lvl, { cache = create cfg; rec_ = recorder () }) in
    {
      levels = [ mk Hierarchy.L1 l1; mk Hierarchy.L2 l2; mk Hierarchy.L3 l3 ];
      prefetcher = Prefetch.create Prefetch.No_prefetch;
      pf_addrs = Buffer.create 512;
    }

  let h_access t addr =
    match t.levels with
    | [] -> assert false
    | (_, l1_node) :: deeper ->
      let pf =
        Prefetch.on_access t.prefetcher ~addr
          ~block_bytes:l1_node.cache.cfg.Cache.block_bytes
      in
      let l1_hit = access l1_node.cache addr in
      record l1_node.rec_ addr l1_hit;
      let rec go levels =
        match levels with
        | [] -> ()
        | (_lvl, node) :: rest ->
          let hit = access node.cache addr in
          record node.rec_ addr hit;
          if not hit then go rest
      in
      if not l1_hit then go deeper;
      List.iter
        (fun pf_addr ->
          Buffer.add_int64_le t.pf_addrs (Int64.of_int pf_addr);
          insert l1_node.cache pf_addr)
        pf;
      l1_hit

  let h_run t trace = Array.iter (fun addr -> ignore (h_access t addr)) trace

  let level_traces t = List.map (fun (lvl, node) -> recorded_trace node.rec_ lvl) t.levels

  (* Seed dataset builders over the replica simulator: record, decode, cut
     heatmaps from arrays, sum pixels for the hit rate. *)
  let data_for ~workload ~cache ~level spec ~addresses ~hits =
    let pairs = Heatmap.pair_of_trace spec ~addresses ~hits in
    let access = List.map fst pairs and miss = List.map snd pairs in
    {
      Cbox_dataset.workload;
      cache;
      level;
      pairs;
      true_hit_rate = Heatmap.hit_rate spec ~access ~miss;
    }

  let build_hierarchy spec ~l1 ~l2 ~l3 ~trace_len workloads =
    let config_of_level = function
      | Hierarchy.L1 -> l1
      | Hierarchy.L2 -> l2
      | Hierarchy.L3 -> l3
    in
    List.concat_map
      (fun w ->
        let trace = w.Workload.generate trace_len in
        let h = hierarchy ~l1 ~l2 ~l3 () in
        h_run h trace;
        level_traces h
        |> List.filter_map (fun (lt : Hierarchy.level_trace) ->
               if Array.length lt.addresses < Heatmap.accesses_per_image spec then None
               else
                 Some
                   (data_for ~workload:w ~cache:(config_of_level lt.level) ~level:lt.level
                      spec ~addresses:lt.addresses ~hits:lt.hits)))
      workloads

  let build_l1 spec ~configs ~trace_len workloads =
    List.concat_map
      (fun w ->
        let trace = w.Workload.generate trace_len in
        List.map
          (fun cfg ->
            let cache = create cfg in
            let hits = Array.map (fun addr -> access cache addr) trace in
            data_for ~workload:w ~cache:cfg ~level:Hierarchy.L1 spec ~addresses:trace
              ~hits)
          configs)
      workloads
end

(* --- harness --- *)

let time ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

(* Scaled max deviation across two benchmark_data lists; [None] when the
   lists are not even structurally comparable. The streaming path must
   reproduce the recorded path exactly, so the expected value is 0. *)
let max_rel_err (ref_data : Cbox_dataset.benchmark_data list)
    (new_data : Cbox_dataset.benchmark_data list) =
  if List.length ref_data <> List.length new_data then None
  else begin
    let diff = ref 0.0 and peak = ref 1e-9 in
    let scan a b =
      let pa = Tensor.to_array a and pb = Tensor.to_array b in
      if Array.length pa <> Array.length pb then diff := infinity
      else
        Array.iteri
          (fun i va ->
            peak := Float.max !peak (Float.abs va);
            diff := Float.max !diff (Float.abs (va -. pb.(i))))
          pa
    in
    List.iter2
      (fun (r : Cbox_dataset.benchmark_data) (n : Cbox_dataset.benchmark_data) ->
        diff := Float.max !diff (Float.abs (r.true_hit_rate -. n.true_hit_rate));
        if List.length r.pairs <> List.length n.pairs then diff := infinity
        else
          List.iter2
            (fun (ra, rm) (na, nm) ->
              scan ra na;
              scan rm nm)
            r.pairs n.pairs)
      ref_data new_data;
    Some (!diff /. !peak)
  end

let fresh_tmp_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d = Filename.concat base (Printf.sprintf "cbx-simcache-%d-%d" (Unix.getpid ()) k) in
    if Sys.file_exists d then go (k + 1)
    else begin
      Sys.mkdir d 0o700;
      d
    end
  in
  go 0

let remove_tree d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
      (Sys.readdir d);
    try Sys.rmdir d with Sys_error _ -> ()
  end

let run ?fast ?(log = fun _ -> ()) () =
  let fast =
    match fast with Some f -> f | None -> Sys.getenv_opt "CACHEBOX_FAST" <> None
  in
  let spec = Heatmap.spec () in
  let l1 = Cache.config ~sets:64 ~ways:12 () in
  let l2 = Cache.config ~sets:256 ~ways:8 () in
  let l3 = Cache.config ~sets:512 ~ways:16 () in
  let workloads = Suite.of_suite Workload.Spec in
  let trace_len = if fast then 12_000 else 48_000 in
  let reps = if fast then 2 else 3 in
  let nw = List.length workloads in
  let label name = Printf.sprintf "%s nw%d len%dk" name nw (trace_len / 1000) in
  let results = ref [] in
  let push name domains ref_s new_s err =
    results :=
      {
        Kbench.name;
        domains;
        ref_s;
        tiled_s = new_s;
        speedup = ref_s /. Float.max 1e-9 new_s;
        max_rel_err = err;
      }
      :: !results
  in
  (* Everything below runs with the simulation cache disabled unless a
     benchmark explicitly primes one. *)
  Simcache.with_dir None (fun () ->
      (* build_hierarchy: cold, at 1 and 4 domains. *)
      let name = label "dataset.build_hierarchy.cold" in
      log name;
      let seed_out = Seed.build_hierarchy spec ~l1 ~l2 ~l3 ~trace_len workloads in
      let ref_s =
        time ~reps (fun () -> Seed.build_hierarchy spec ~l1 ~l2 ~l3 ~trace_len workloads)
      in
      List.iter
        (fun domains ->
          let out =
            Dpool.with_domains domains (fun () ->
                Cbox_dataset.build_hierarchy spec ~l1 ~l2 ~l3 ~trace_len workloads)
          in
          let new_s =
            Dpool.with_domains domains (fun () ->
                time ~reps (fun () ->
                    Cbox_dataset.build_hierarchy spec ~l1 ~l2 ~l3 ~trace_len workloads))
          in
          push name domains ref_s new_s (max_rel_err seed_out out);
          (* Idle pool workers still cost stop-the-world handshakes on every
             minor collection — measured 4x on a single-core host — so the
             pool is torn down before the serial benchmarks that follow. *)
          Dpool.shutdown ())
        [ 1; 4 ];
      (* build_hierarchy: warm, against a primed simulation cache. *)
      let name = label "dataset.build_hierarchy.warm" in
      log name;
      let tmp = fresh_tmp_dir () in
      Fun.protect
        ~finally:(fun () -> remove_tree tmp)
        (fun () ->
          Simcache.with_dir (Some tmp) (fun () ->
              let out =
                Dpool.with_domains 1 (fun () ->
                    Cbox_dataset.build_hierarchy spec ~l1 ~l2 ~l3 ~trace_len workloads)
              in
              let warm_s =
                Dpool.with_domains 1 (fun () ->
                    time ~reps (fun () ->
                        Cbox_dataset.build_hierarchy spec ~l1 ~l2 ~l3 ~trace_len workloads))
              in
              push name 1 ref_s warm_s (max_rel_err seed_out out)));
      (* build_l1: cold, single config sweep. *)
      let name = label "dataset.build_l1.cold" in
      log name;
      let configs = [ l1 ] in
      let seed_out = Seed.build_l1 spec ~configs ~trace_len workloads in
      let ref_s = time ~reps (fun () -> Seed.build_l1 spec ~configs ~trace_len workloads) in
      let out =
        Dpool.with_domains 1 (fun () -> Cbox_dataset.build_l1 spec ~configs ~trace_len workloads)
      in
      let new_s =
        Dpool.with_domains 1 (fun () ->
            time ~reps (fun () -> Cbox_dataset.build_l1 spec ~configs ~trace_len workloads))
      in
      push name 1 ref_s new_s (max_rel_err seed_out out));
  List.rev !results
