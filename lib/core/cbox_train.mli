(** CB-GAN training loop (paper §3.2.2, Fig 6) with a run-resilience layer.

    Standard pix2pix alternation per batch: one discriminator step on a
    (real, fake) pair with the fake detached, then one generator step
    minimising the adversarial loss plus [lambda_l1] times the L1
    reconstruction loss (Equation 1; the paper uses lambda = 150). Both
    optimizers are Adam with beta1 = 0.5.

    The resilience layer makes long training campaigns crash-safe:

    - {b Snapshots}: every [snapshot_every] batches the complete training
      state (parameters, batch-norm stats, Adam moments, PRNG state, epoch
      permutation, partial loss sums, completed-epoch history) is written to
      [snapshot_dir] as an atomic, checksummed {!Checkpoint} file; the
      newest [keep_snapshots] files are kept.
    - {b Exact resume}: [~resume:true] restarts from the newest loadable
      snapshot and the continued run is bit-identical — same per-epoch
      stats, same final weights — to a run that was never interrupted. A
      corrupt snapshot is skipped (journalled) in favour of the previous
      one; a snapshot written under different options is refused.
    - {b Divergence sentinel}: each batch's losses and gradient norms are
      scanned for NaN/Inf before the optimizer steps. On a trip the run
      rolls back to the last good snapshot, halves both learning rates and
      retries, up to [max_retries] times, before failing with [Failure].
    - {b Journal}: when [journal] is set, run/epoch/snapshot/divergence/
      rollback/resume events are appended to a {!Runlog} JSONL file. *)

type options = {
  epochs : int;
  batch_size : int;
  lr : float;
  beta1 : float;
  lambda_l1 : float;
  seed : int;
  domains : int option;
      (** Dpool lane count used for the whole run ([None] = ambient
          [CACHEBOX_DOMAINS] / machine default). Results are bit-identical
          for every setting. *)
  snapshot_every : int option;
      (** Snapshot cadence in batches, counted across the whole run
          ([None] = rollback points at epoch boundaries only, nothing on
          disk). *)
  snapshot_dir : string option;
      (** Where on-disk snapshots go (created if missing). [None] keeps
          snapshots in memory only. *)
  keep_snapshots : int;  (** rotating window of on-disk snapshots (>= 1) *)
  max_retries : int;  (** divergence rollbacks before giving up *)
  journal : string option;  (** append-only JSONL run log path *)
}

val default_options :
  ?epochs:int ->
  ?batch_size:int ->
  ?lambda_l1:float ->
  ?domains:int ->
  ?snapshot_every:int ->
  ?snapshot_dir:string ->
  ?journal:string ->
  unit ->
  options
(** Defaults: 2 epochs, batch 4, lr 2e-4, beta1 0.5, lambda 150, seed 1234,
    ambient domain count, no snapshotting/journal, keep 3 snapshots, 3
    divergence retries. *)

type epoch_stats = {
  epoch : int;
  g_adv : float;  (** mean generator adversarial loss *)
  g_l1 : float;  (** mean (unweighted) L1 reconstruction loss *)
  d_loss : float;  (** mean discriminator loss *)
  batches : int;
}

val train :
  ?log:(string -> unit) ->
  ?resume:bool ->
  Cbgan.t ->
  Heatmap.spec ->
  options ->
  Cbox_dataset.sample list ->
  epoch_stats list
(** Trains in place (random batching each epoch, as the paper notes) and
    returns per-epoch loss statistics for the whole run — including, after a
    resume, the epochs completed before the interruption. [~resume:true]
    requires [snapshot_dir]; with no snapshot present it starts fresh. *)
