type config = {
  image_size : int;
  levels : int;
  ngf : int;
  ndf : int;
  disc_layers : int;
  use_cache_params : bool;
  cond_hidden : int;
  cond_dim : int;
  dropout_rate : float;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let default_config ?(image_size = 64) ?(ngf = 16) ?(ndf = 16) () =
  if image_size land (image_size - 1) <> 0 then
    invalid_arg "Cbgan.default_config: image_size must be a power of two";
  {
    image_size;
    levels = log2 image_size;
    ngf;
    ndf;
    disc_layers = 2;
    use_cache_params = true;
    cond_hidden = 32;
    cond_dim = 2 * ngf;
    dropout_rate = 0.5;
  }

type down_block = { d_conv : Layers.conv2d; d_bn : Layers.batch_norm option }

type up_block = {
  u_conv : Layers.conv_transpose2d;
  u_bn : Layers.batch_norm option;
  u_dropout : bool;
}

type generator = {
  downs : down_block array;
  ups : up_block array;
  cond : (Layers.linear * Layers.linear * Layers.linear) option;
}

type disc_block = { p_conv : Layers.conv2d; p_bn : Layers.batch_norm option }

type discriminator = { blocks : disc_block array; head : Layers.conv2d }

type t = { cfg : config; gen : generator; disc : discriminator }

(* Encoder channel plan: ngf, 2ngf, 4ngf, then 8ngf for all deeper levels
   (the pix2pix progression). *)
let channel_plan cfg =
  Array.init cfg.levels (fun i -> cfg.ngf * min 8 (1 lsl min i 3))

let build_generator rng cfg =
  let ch = channel_plan cfg in
  let levels = cfg.levels in
  let downs =
    Array.init levels (fun i ->
        let in_channels = if i = 0 then 1 else ch.(i - 1) in
        let name = Printf.sprintf "gen.down%d" i in
        let d_conv =
          Layers.conv2d rng ~name ~in_channels ~out_channels:ch.(i) ~kernel:4
            ~stride:2 ~pad:1 ~bias:true
        in
        (* No norm on the outermost block (pix2pix) nor on the 1x1
           bottleneck. *)
        let d_bn =
          if i = 0 || i = levels - 1 then None
          else Some (Layers.batch_norm rng ~name:(name ^ ".bn") ~channels:ch.(i))
        in
        { d_conv; d_bn })
  in
  let cond =
    if not cfg.use_cache_params then None
    else
      Some
        ( Layers.linear rng ~name:"gen.cond0" ~in_dim:2 ~out_dim:cfg.cond_hidden ~bias:true,
          Layers.linear rng ~name:"gen.cond1" ~in_dim:cfg.cond_hidden
            ~out_dim:cfg.cond_hidden ~bias:true,
          Layers.linear rng ~name:"gen.cond2" ~in_dim:cfg.cond_hidden
            ~out_dim:cfg.cond_dim ~bias:true )
  in
  let bottleneck_ch = ch.(levels - 1) + if cfg.use_cache_params then cfg.cond_dim else 0 in
  let dropout_blocks = min 3 (max 0 (levels - 2)) in
  let ups =
    Array.init levels (fun i ->
        (* Up block i consumes the previous decoder output concatenated with
           encoder level [levels-1-i] (except the first, which consumes the
           conditioned bottleneck) and produces encoder level
           [levels-2-i]'s channel count, ending at 1 output channel. *)
        let in_channels = if i = 0 then bottleneck_ch else 2 * ch.(levels - 1 - i) in
        let out_channels = if i = levels - 1 then 1 else ch.(levels - 2 - i) in
        let name = Printf.sprintf "gen.up%d" i in
        let u_conv =
          Layers.conv_transpose2d rng ~name ~in_channels ~out_channels ~kernel:4
            ~stride:2 ~pad:1 ~bias:true
        in
        let u_bn =
          if i = levels - 1 then None
          else Some (Layers.batch_norm rng ~name:(name ^ ".bn") ~channels:out_channels)
        in
        (* Bias the output layer towards "no misses": heatmaps are sparse,
           so starting the tanh near -1 (empty) makes the early training
           signal the misses to *add* rather than a uniform background to
           remove. *)
        if i = levels - 1 then
          Option.iter (fun (b : Param.t) -> Tensor.fill b.value (-1.5)) u_conv.Layers.tbias;
        { u_conv; u_bn; u_dropout = i < dropout_blocks })
  in
  { downs; ups; cond }

let build_discriminator rng cfg =
  let blocks =
    Array.init cfg.disc_layers (fun i ->
        let in_channels = if i = 0 then 2 else cfg.ndf * (1 lsl (i - 1)) in
        let out_channels = cfg.ndf * (1 lsl i) in
        let name = Printf.sprintf "disc.conv%d" i in
        let p_conv =
          Layers.conv2d rng ~name ~in_channels ~out_channels ~kernel:4 ~stride:2
            ~pad:1 ~bias:true
        in
        let p_bn =
          if i = 0 then None
          else Some (Layers.batch_norm rng ~name:(name ^ ".bn") ~channels:out_channels)
        in
        { p_conv; p_bn })
  in
  let head_in = cfg.ndf * (1 lsl (cfg.disc_layers - 1)) in
  let head =
    Layers.conv2d rng ~name:"disc.head" ~in_channels:head_in ~out_channels:1
      ~kernel:4 ~stride:1 ~pad:1 ~bias:true
  in
  { blocks; head }

let create ~seed cfg =
  if cfg.levels < 2 || 1 lsl cfg.levels > cfg.image_size then
    invalid_arg "Cbgan.create: levels incompatible with image_size";
  let rng = Prng.create seed in
  { cfg; gen = build_generator rng cfg; disc = build_discriminator rng cfg }

let model_config t = t.cfg

(* Read-only structure views for the quantized-inference compiler (Qgen):
   it walks the generator's layers to fold batch norms and quantize weights
   without this module having to know about quantization. *)
let generator_downs t = Array.map (fun b -> (b.d_conv, b.d_bn)) t.gen.downs
let generator_ups t = Array.map (fun b -> (b.u_conv, b.u_bn, b.u_dropout)) t.gen.ups
let generator_cond t = t.gen.cond

let normalize_cache_params (c : Cache.config) =
  (float_of_int (log2 c.sets) /. 12.0, float_of_int c.ways /. 16.0)

let cache_params_tensor configs =
  let n = List.length configs in
  let t = Tensor.create [| n; 2 |] in
  List.iteri
    (fun i c ->
      let s, w = normalize_cache_params c in
      Tensor.set2 t i 0 s;
      Tensor.set2 t i 1 w)
    configs;
  t

let generator_forward t ~rng ~training ?cache_params x =
  let cfg = t.cfg in
  let gen = t.gen in
  let levels = cfg.levels in
  let n = Tensor.dim x 0 in
  if Tensor.dim x 2 <> cfg.image_size || Tensor.dim x 3 <> cfg.image_size then
    invalid_arg "Cbgan.generator_forward: image size mismatch";
  (* Encoder *)
  let enc = Array.make levels (Value.const x) in
  for i = 0 to levels - 1 do
    let input = if i = 0 then Value.const x else Value.leaky_relu 0.2 enc.(i - 1) in
    let y = Layers.apply_conv2d gen.downs.(i).d_conv input in
    let y =
      match gen.downs.(i).d_bn with
      | Some bn -> Layers.apply_batch_norm bn ~training y
      | None -> y
    in
    enc.(i) <- y
  done;
  (* Cache-parameter conditioning at the bottleneck *)
  let bottleneck =
    match (gen.cond, cache_params) with
    | None, None -> enc.(levels - 1)
    | None, Some _ ->
      invalid_arg "Cbgan.generator_forward: model built without cache parameters"
    | Some _, None ->
      invalid_arg "Cbgan.generator_forward: cache parameters required"
    | Some (fc0, fc1, fc2), Some cp ->
      if Tensor.dim cp 0 <> n || Tensor.dim cp 1 <> 2 then
        invalid_arg "Cbgan.generator_forward: cache_params must be [n; 2]";
      let h = Value.relu (Layers.apply_linear fc0 (Value.const cp)) in
      let h = Value.relu (Layers.apply_linear fc1 h) in
      let h = Layers.apply_linear fc2 h in
      let h = Value.reshape h [| n; cfg.cond_dim; 1; 1 |] in
      Value.concat_channels enc.(levels - 1) h
  in
  (* Decoder with skip connections *)
  let d = ref bottleneck in
  for i = 0 to levels - 1 do
    let input = Value.relu !d in
    let y = Layers.apply_conv_transpose2d t.gen.ups.(i).u_conv input in
    if i = levels - 1 then d := Value.tanh_ y
    else begin
      let y =
        match t.gen.ups.(i).u_bn with
        | Some bn -> Layers.apply_batch_norm bn ~training y
        | None -> y
      in
      let y =
        if t.gen.ups.(i).u_dropout then
          Value.dropout rng ~rate:cfg.dropout_rate ~training y
        else y
      in
      d := Value.concat_channels y enc.(levels - 2 - i)
    end
  done;
  !d

(* Eval-mode encoder tap: the bottleneck activations (pre-conditioning)
   the feature-matching distillation loss compares against. Running-stats
   batch norm makes each sample's features independent of its batch mates,
   so precomputed teacher features are bit-identical at any batching. *)
let generator_encode t x =
  let cfg = t.cfg in
  let gen = t.gen in
  let levels = cfg.levels in
  if Tensor.dim x 2 <> cfg.image_size || Tensor.dim x 3 <> cfg.image_size then
    invalid_arg "Cbgan.generator_encode: image size mismatch";
  let y = ref (Value.const x) in
  for i = 0 to levels - 1 do
    let input = if i = 0 then !y else Value.leaky_relu 0.2 !y in
    let z = Layers.apply_conv2d gen.downs.(i).d_conv input in
    let z =
      match gen.downs.(i).d_bn with
      | Some bn -> Layers.apply_batch_norm bn ~training:false z
      | None -> z
    in
    y := z
  done;
  Value.value !y

let discriminator_forward t ~training ~access ~miss =
  let pair = Value.concat_channels (Value.const access) miss in
  let y = ref pair in
  Array.iter
    (fun blk ->
      let z = Layers.apply_conv2d blk.p_conv !y in
      let z =
        match blk.p_bn with
        | Some bn -> Layers.apply_batch_norm bn ~training z
        | None -> z
      in
      y := Value.leaky_relu 0.2 z)
    t.disc.blocks;
  Layers.apply_conv2d t.disc.head !y

let generator_params t =
  let down_params =
    Array.to_list t.gen.downs
    |> List.concat_map (fun b ->
           Layers.conv2d_params b.d_conv
           @ (match b.d_bn with Some bn -> Layers.batch_norm_params bn | None -> []))
  in
  let up_params =
    Array.to_list t.gen.ups
    |> List.concat_map (fun b ->
           Layers.conv_transpose2d_params b.u_conv
           @ (match b.u_bn with Some bn -> Layers.batch_norm_params bn | None -> []))
  in
  let cond_params =
    match t.gen.cond with
    | None -> []
    | Some (a, b, c) ->
      Layers.linear_params a @ Layers.linear_params b @ Layers.linear_params c
  in
  Param.group [ down_params; up_params; cond_params ]

let discriminator_params t =
  let blocks =
    Array.to_list t.disc.blocks
    |> List.concat_map (fun b ->
           Layers.conv2d_params b.p_conv
           @ (match b.p_bn with Some bn -> Layers.batch_norm_params bn | None -> []))
  in
  Param.group [ blocks; Layers.conv2d_params t.disc.head ]

let parameter_count t =
  List.fold_left
    (fun acc p -> acc + Param.numel p)
    0
    (generator_params t @ discriminator_params t)

let bn_states t =
  let of_down b = match b.d_bn with Some bn -> Layers.batch_norm_state bn | None -> [] in
  let of_up b = match b.u_bn with Some bn -> Layers.batch_norm_state bn | None -> [] in
  let of_disc b = match b.p_bn with Some bn -> Layers.batch_norm_state bn | None -> [] in
  List.concat_map of_down (Array.to_list t.gen.downs)
  @ List.concat_map of_up (Array.to_list t.gen.ups)
  @ List.concat_map of_disc (Array.to_list t.disc.blocks)

let state = bn_states

let clone t =
  (* Same config, any seed: every weight and every batch-norm running
     statistic is then overwritten from [t], so the copy is functionally
     identical. Param/state orderings are deterministic for a fixed config
     (both are built by the same structural traversal). *)
  let c = create ~seed:0 t.cfg in
  List.iter2
    (fun (src : Param.t) (dst : Param.t) ->
      Tensor.blit ~src:src.Param.value ~dst:dst.Param.value)
    (generator_params t @ discriminator_params t)
    (generator_params c @ discriminator_params c);
  List.iter2
    (fun (name_src, (src : float array)) (name_dst, dst) ->
      if name_src <> name_dst || Array.length src <> Array.length dst then
        invalid_arg "Cbgan.clone: state mismatch";
      Array.blit src 0 dst 0 (Array.length src))
    (bn_states t) (bn_states c);
  c

let save t path =
  Checkpoint.save path
    ~params:(generator_params t @ discriminator_params t)
    ~state:(bn_states t)

let load t path =
  Checkpoint.load path
    ~params:(generator_params t @ discriminator_params t)
    ~state:(bn_states t)
