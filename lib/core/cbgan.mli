(** CB-GAN: the paper's conditional image-to-image GAN (§3.2).

    The generator is a U-Net encoder-decoder over access heatmaps, modified
    to accept numerical cache parameters: the (sets, ways) pair passes
    through three fully-connected layers whose reshaped output is
    concatenated to the bottleneck before the first up-sampling block
    (Fig 5a). The discriminator is a PatchGAN that classifies patches of the
    (input, output) channel concatenation as real or synthetic (Fig 5b).

    Image tensors are NCHW with one channel; pixel values are normalised to
    [-1, 1] (see {!Cbox_dataset}), matching the generator's tanh output. *)

type config = {
  image_size : int;  (** heatmap height = width; must be a power of two *)
  levels : int;  (** U-Net depth; [2^levels = image_size] gives a 1x1 bottleneck *)
  ngf : int;  (** generator filters in the outermost block (paper: 128) *)
  ndf : int;  (** discriminator filters (paper: 64) *)
  disc_layers : int;
      (** stride-2 discriminator conv layers: 2 gives the paper's small
          (receptive field ~22) PatchGAN, 3 the large one used for RQ4 *)
  use_cache_params : bool;  (** enable the bottleneck conditioning MLP *)
  cond_hidden : int;  (** width of the conditioning MLP's hidden layers *)
  cond_dim : int;  (** channels appended to the bottleneck *)
  dropout_rate : float;  (** decoder dropout (pix2pix noise source) *)
}

val default_config : ?image_size:int -> ?ngf:int -> ?ndf:int -> unit -> config
(** Repro-scale defaults: 64x64 images, 6 levels, ngf = ndf = 16, cache
    parameters enabled. *)

type t

val create : seed:int -> config -> t
val model_config : t -> config

val normalize_cache_params : Cache.config -> float * float
(** Maps (sets, ways) to the unit-scale pair fed to the conditioning MLP
    ([log2 sets / 12], [ways / 16]). *)

val cache_params_tensor : Cache.config list -> Tensor.t
(** Stacks normalised parameters into an [\[n; 2\]] tensor. *)

val generator_forward :
  t ->
  rng:Prng.t ->
  training:bool ->
  ?cache_params:Tensor.t ->
  Tensor.t ->
  Value.t
(** [generator_forward t ~rng ~training ?cache_params x] maps a batch
    [x : \[n; 1; s; s\]] of normalised access heatmaps to synthetic miss
    heatmaps in [\[-1, 1\]]. [cache_params] (shape [\[n; 2\]]) is required
    iff the model was built with [use_cache_params]. [rng] drives decoder
    dropout. *)

val generator_encode : t -> Tensor.t -> Tensor.t
(** Eval-mode encoder only: the bottleneck activations
    [\[n; ch; 1; 1\]] before conditioning, for feature-matching
    distillation. Running-stats batch norm makes each sample's features
    independent of its batch mates. *)

val discriminator_forward :
  t -> training:bool -> access:Tensor.t -> miss:Value.t -> Value.t
(** Patch logits for the (access, miss) pair; [miss] may be a constant (real
    sample) or a live generator output (fake sample, letting gradients flow
    back into the generator). *)

val generator_downs : t -> (Layers.conv2d * Layers.batch_norm option) array
(** Encoder blocks in order — a read-only structure view for the quantized
    inference compiler ({!Qgen} folds each block's batch norm into the
    convolution and quantizes the result). *)

val generator_ups : t -> (Layers.conv_transpose2d * Layers.batch_norm option * bool) array
(** Decoder blocks in order: (transposed conv, batch norm, dropout flag). *)

val generator_cond : t -> (Layers.linear * Layers.linear * Layers.linear) option
(** The cache-parameter conditioning MLP, when the model has one. *)

val generator_params : t -> Param.t list
val discriminator_params : t -> Param.t list

val parameter_count : t -> int

val state : t -> (string * float array) list
(** The model's non-parameter state (batch-norm running statistics) as the
    {e live} named arrays: mutating them mutates the model. Used by
    checkpointing and by the training loop's snapshot/rollback machinery. *)

val clone : t -> t
(** Deep copy: same configuration, independent parameter and batch-norm
    state storage, identical values. Replica pools clone the loaded model so
    concurrent batches never share mutable forward-pass state. *)

val save : t -> string -> unit
val load : t -> string -> unit
(** Loads weights into an existing model of identical configuration. *)
