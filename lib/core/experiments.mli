(** Experiment drivers reproducing every figure and table of the paper's
    evaluation (RQ1-RQ7, Fig 14, Table 1) plus the ablations called out in
    DESIGN.md. Each driver returns a structured result; pretty-printing
    lives in the bench harness.

    All drivers run at a configurable {!scale}. The defaults are the
    repro-scale parameters from DESIGN.md (64x64 heatmaps, short traces,
    small U-Net) so the entire suite completes on one CPU; the paper-scale
    values are documented alongside each field. *)

type scale = {
  spec : Heatmap.spec;  (** heatmap geometry (paper: 512x512, window 100) *)
  trace_len : int;  (** accesses per benchmark trace (paper: ~1e9 instrs) *)
  hierarchy_trace_len : int;  (** longer traces for the RQ4 L2/L3 streams *)
  epochs : int;
  batch_size : int;
  ngf : int;  (** paper: 128 *)
  ndf : int;  (** paper: 64 *)
  lambda_l1 : float;  (** paper: 150 *)
  train_cap : int;  (** max training benchmarks per suite subset *)
  test_cap : int;  (** max inference benchmarks *)
  seed : int;
}

val default_scale : unit -> scale
(** Honours [CACHEBOX_FAST=1] (quarter-size smoke scale) and
    [CACHEBOX_EPOCHS=n] overrides from the environment. *)

(** {1 Cache configurations (paper §5)} *)

val l1_64s12w : Cache.config
val train_configs : Cache.config list
(** RQ2's four L1 configurations: 64s12w, 128s12w, 128s6w, 128s3w. *)

val unseen_configs : Cache.config list
(** RQ3's three held-out configurations: 256s6w, 256s12w, 32s12w. *)

val l2_config : Cache.config
val l3_config : Cache.config
(** RQ4 deeper levels, capacity-scaled to the repro trace lengths (paper:
    1024s8w and 2048s16w; see EXPERIMENTS.md). *)

val hit_rate_threshold : Hierarchy.level -> float
(** The paper's low-data-regime exclusion thresholds (§6.1): 0.65 / 0.40 /
    0.35 for L1 / L2 / L3. *)

val repro_hit_rate_threshold : Hierarchy.level -> float
(** The same exclusion rule with L2/L3 thresholds scaled to the hit-rate
    range observable at repro-scale trace lengths (0.65 / 0.04 / 0.03);
    used by RQ4. See EXPERIMENTS.md. *)

(** {1 Result shapes} *)

type row = {
  benchmark : string;
  suite : Workload.suite;
  config_name : string;
  level : Hierarchy.level;
  truth : float;
  predicted : float;
}

val row_abs_pct : row -> float

type accuracy_result = {
  label : string;
  rows : row list;
  avg_abs_pct : float;
}

val summarize : string -> row list -> accuracy_result

(** {1 Resumable sweeps} *)

val run_driver : ?journal:Runlog.t -> name:string -> (unit -> 'a) -> 'a option
(** [run_driver ~journal ~name f] runs one experiment driver under journal
    bookkeeping: it appends [driver_start]/[driver_end] events around [f]
    (and [driver_error] if [f] raises), and returns [None] without running
    [f] when the journal already records a completed [name] — making a long
    RQ sweep resumable per-driver after a crash. Without a journal it just
    runs [f]. *)

(** {1 Experiments} *)

val rq1 : ?log:(string -> unit) -> scale -> accuracy_result
(** Mixed-suite generalization to unseen benchmarks (Fig 7). *)

type rq2_context = {
  model : Cbgan.t;
  scale : scale;
  test_workloads : Workload.t list;
}

val train_rq2_model : ?log:(string -> unit) -> scale -> rq2_context
(** One model over the four training configurations (shared by RQ2, RQ3,
    RQ5 and RQ6). *)

val rq2 : ?log:(string -> unit) -> rq2_context -> accuracy_result list
(** Per-config accuracy on the four seen configurations (Fig 8). *)

val rq3 : ?log:(string -> unit) -> rq2_context -> accuracy_result list
(** Accuracy on the three unseen configurations (Fig 9). *)

type rq4_result = {
  combined : accuracy_result list;  (** L1, L2, L3 under the combined model *)
  standalone : accuracy_result list;
  excluded : (string * Hierarchy.level) list;
      (** benchmarks dropped by the low-data-regime thresholds *)
}

val rq4 : ?log:(string -> unit) -> scale -> rq4_result
(** Multi-level modelling (Fig 10): a combined L1+L2+L3 model trained
    without cache parameters versus per-level standalone models. *)

type rq5_point = {
  batch_size : int;
  seconds : float;  (** mean wall time to synthesize one benchmark's heatmaps *)
  speedup_vs_b1 : float;
}

type rq5_result = {
  points : rq5_point list;
  multicachesim_seconds : float;
      (** mean wall time for MultiCacheSim to simulate the same traces *)
}

val rq5 : ?log:(string -> unit) -> rq2_context -> rq5_result
(** Batched-inference scaling (Fig 11). *)

val rq6 : ?log:(string -> unit) -> rq2_context -> row list
(** The true-vs-predicted scatter across all configs (Fig 12); each row is
    one (benchmark, config) point. *)

type rq7_row = { benchmark : string; mse : float; ssim : float }

type rq7_result = {
  rows : rq7_row list;
  avg_mse : float;
  avg_ssim : float;
}

val rq7 : ?log:(string -> unit) -> scale -> rq7_result
(** Next-line-prefetcher modelling (Fig 13). *)

val fig14 : scale -> Metrics.histogram
(** Histogram of true L1 hit rates across the SPEC-like suite. *)

type table1_row = {
  app : string;  (** benchmark group, e.g. "600" *)
  tab_base : float;
  tab_rd : float;
  tab_ic : float;
  hrd : float;
  stm : float;
  cbox_best : float;
  cbox_worst : float;
  cbox_avg : float;
}

val table1 : ?log:(string -> unit) -> scale -> table1_row list
(** Abs-%-diff comparison of L1 miss-rate prediction (Table 1): tabular
    synthesizers, HRD, STM and CBox best/worst/average over each app's
    phases. Baseline columns are averaged over the app's phases. *)

(** {1 Ablations} *)

val ablate_lambda : ?log:(string -> unit) -> scale -> (float * accuracy_result) list
(** RQ1-style runs at lambda in {0, 50, 150}. *)

val ablate_overlap : ?log:(string -> unit) -> scale -> (float * accuracy_result) list
(** 0% vs 30% heatmap overlap (paper §3.1.1). *)

val ablate_cache_params : ?log:(string -> unit) -> scale -> (bool * accuracy_result) list
(** Multi-config training with and without the conditioning MLP. *)
