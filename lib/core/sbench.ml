(* Serving benchmarks: per-request inference (batch 1) vs dynamic
   micro-batching (coalesced requests through one wide-batch forward).

   Two measured quantities drive everything: the real service time of one
   request alone, and the real service time of a coalesced batch through
   {!Cbox_infer.synthesize_group} with the wide-batch conv lowering. A
   deterministic closed-loop simulation (C logical clients, each reissuing
   the moment its reply lands) then turns those service times into
   throughput and latency percentiles per concurrency level — the loop is
   virtual-time, so 1024 "clients" need no sockets, threads or FD_SETSIZE
   headroom, and the numbers are reproducible on a loaded CI host.

   This lives in cachebox_core (not cachebox_serve) because the quantity
   under test is the model hot path the serving batcher dispatches to; the
   daemon's own overheads (reactor, queue) are microseconds against the
   milliseconds of a forward pass. *)

type mode_stats = {
  throughput_rps : float;
  p50_ms : float;
  p99_ms : float;
  total_s : float;  (** virtual seconds to serve the whole closed-loop run *)
}

type result = {
  name : string;
  domains : int;
  clients : int;
  batch1 : mode_stats;
  dynamic : mode_stats;
  speedup : float;  (** dynamic throughput over batch-1 throughput *)
  max_abs_diff : float;
      (** largest |batched - sequential| over every synthetic heatmap
          element: 0.0 means bit-identical outputs *)
}

let concurrency_levels = [ 1; 64; 1024 ]

(* --- fixture: tiny model + real access heatmaps, one window per request --- *)

let fixture () =
  let spec = Heatmap.spec ~height:16 ~width:16 ~window:8 ~overlap:0.3 ~granularity:64 () in
  let mc =
    { (Cbgan.default_config ~image_size:16 ~ngf:4 ~ndf:4 ()) with
      Cbgan.cond_dim = 4;
      cond_hidden = 8
    }
  in
  let model = Cbgan.create ~seed:42 mc in
  let cache = Cache.config ~sets:64 ~ways:8 () in
  let wl =
    Workload.make ~name:"sbench" ~suite:Workload.Spec ~group:"sbench" (fun n ->
        let rng = Prng.create 9 in
        Array.init n (fun i ->
            if Prng.float rng 1.0 < 0.7 then i mod 32 * 8 else Prng.int rng 8192 * 64))
  in
  let data = Cbox_dataset.build_l1 spec ~configs:[ cache ] ~trace_len:20_000 [ wl ] in
  let windows =
    match data with
    | [ d ] -> List.map fst d.Cbox_dataset.pairs
    | _ -> invalid_arg "Sbench.fixture: expected one benchmark entry"
  in
  (* 64 single-window requests (windows recycle; content diversity is not
     what is being measured). *)
  let requests =
    List.init 64 (fun i -> (cache, [ List.nth windows (i mod List.length windows) ]))
  in
  (model, spec, requests)

(* --- measurement --- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* All [reps] wall-clock samples, after one warm-up call. Every sample is
   kept — not just the minimum — because the closed-loop simulation
   resamples from them: with a single repeated service time every latency
   in the loop is identical and p50 collapses onto p99. *)
let samples_of reps f =
  ignore (f ());
  (* warm caches/arena *)
  Array.init reps (fun _ -> snd (time f))

let minimum a = Array.fold_left Float.min Float.infinity a

(* Piecewise-linear service time through the measured (batch, seconds)
   points; constant extrapolation beyond the ends. *)
let t_of_batch points b =
  let fb = float_of_int b in
  let rec go = function
    | [] -> invalid_arg "Sbench.t_of_batch: no points"
    | [ (_, t) ] -> t
    | (b0, t0) :: ((b1, t1) :: _ as rest) ->
      if fb <= b0 then t0
      else if fb <= b1 then t0 +. ((t1 -. t0) *. (fb -. b0) /. (b1 -. b0))
      else go rest
  in
  go (List.map (fun (b, t) -> (float_of_int b, t)) points)

(* --- closed-loop virtual-time simulation --- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (Float.of_int (n - 1) *. p /. 100.0 +. 0.5)))

(* C clients, each with one request in flight, reissuing on completion; the
   server takes up to [max_batch] queued requests per round. A partial
   batch waits out the oldest request's linger — in a closed loop nobody
   else can arrive until the batch completes, exactly the worst case the
   linger bound is for. *)
let simulate ~clients ~rounds ~max_batch ~linger_s ~service =
  let n = clients * rounds in
  let q = Queue.create () in
  for _ = 1 to clients do
    Queue.push 0.0 q
  done;
  let issued = ref clients and served = ref 0 in
  let now = ref 0.0 in
  let lats = Array.make n 0.0 in
  while !served < n do
    let qlen = Queue.length q in
    let start =
      if qlen >= max_batch then !now else Float.max !now (Queue.peek q +. linger_s)
    in
    let b = min max_batch qlen in
    let fin = start +. service b in
    for _ = 1 to b do
      let arrival = Queue.pop q in
      lats.(!served) <- fin -. arrival;
      incr served;
      if !issued < n then begin
        Queue.push fin q;
        incr issued
      end
    done;
    now := fin
  done;
  let sorted = Array.copy lats in
  Array.sort compare sorted;
  {
    throughput_rps = float_of_int n /. !now;
    p50_ms = 1e3 *. percentile sorted 50.0;
    p99_ms = 1e3 *. percentile sorted 99.0;
    total_s = !now;
  }

(* --- suite --- *)

let run ?(fast = Sys.getenv_opt "CACHEBOX_FAST" <> None) ?(log = fun _ -> ()) () =
  let model, spec, requests = fixture () in
  (* Full-mode rounds are sized so every regime sees many independent
     service draws: at 1 client batch-1 sees [rounds] draws total, and at
     64 clients the dynamic server drains the whole closed loop in one
     64-wide batch per round — also just [rounds] draws. With too few
     draws the resampled distribution clumps and p50 can land on p99.
     Rounds are virtual time only (no extra measurement), so 64 is cheap. *)
  let reps = if fast then 2 else 8 in
  let rounds = if fast then 2 else 64 in
  let wide_before = Conv.wide_batch () in
  Fun.protect
    ~finally:(fun () -> Conv.set_wide_batch wide_before)
    (fun () ->
      (* Bit-identity first: sequential batch-1 (wide lowering off — the
         per-sample reference) vs one coalesced wide-batch group. *)
      Conv.set_wide_batch false;
      let sequential =
        List.map (fun (cache, imgs) -> Cbox_infer.synthesize model spec ~batch_size:1 ~cache imgs) requests
      in
      Conv.set_wide_batch true;
      let grouped = Cbox_infer.synthesize_group model spec ~batch_size:64 requests in
      let max_abs_diff =
        List.fold_left2
          (fun acc a b ->
            List.fold_left2
              (fun acc ta tb ->
                let d = ref acc in
                for i = 0 to Tensor.numel ta - 1 do
                  d := Float.max !d (Float.abs (Tensor.get ta i -. Tensor.get tb i))
                done;
                !d)
              acc a b)
          0.0 sequential grouped
      in
      log (Printf.sprintf "bit-identity: max |batched - sequential| = %g" max_abs_diff);
      (* Service-time samples: one request alone, and coalesced batches.
         All [reps] samples per batch size are retained; the simulations
         below cycle through them so the replayed latency distribution
         carries the real measurement jitter. *)
      Conv.set_wide_batch false;
      let t1s =
        let one = [ List.hd requests ] in
        samples_of reps (fun () -> Cbox_infer.synthesize_group model spec ~batch_size:1 one)
      in
      Conv.set_wide_batch true;
      let t_at b =
        let batch = List.filteri (fun i _ -> i < b) requests in
        samples_of reps (fun () -> Cbox_infer.synthesize_group model spec ~batch_size:b batch)
      in
      let t8s = t_at 8 and t64s = t_at 64 in
      log
        (Printf.sprintf "service times (best): 1 req %.2f ms, batch 8 %.2f ms, batch 64 %.2f ms"
           (1e3 *. minimum t1s) (1e3 *. minimum t8s) (1e3 *. minimum t64s));
      (* A service closure that resamples the measured service times with
         the deterministic PRNG; each simulation gets its own generator so
         runs stay reproducible and independent of evaluation order.
         Walking the samples in order would not do: whenever the rep count
         divides the client count, every window of [clients] consecutive
         draws holds the same full cycles and sums to the same total, and
         p50 collapses onto p99 again in the queued regimes. *)
      let resampling make =
        let rng = Prng.create 17 in
        fun b -> make (Prng.int rng (Array.length t1s)) b
      in
      let domains = Dpool.domains () in
      List.map
        (fun clients ->
          let name = Printf.sprintf "serve_c%d" clients in
          log name;
          let batch1 =
            simulate ~clients ~rounds ~max_batch:1 ~linger_s:0.0
              ~service:(resampling (fun i _ -> t1s.(i)))
          in
          let dynamic =
            simulate ~clients ~rounds ~max_batch:64 ~linger_s:0.005
              ~service:
                (resampling (fun i b ->
                     t_of_batch [ (1, t1s.(i)); (8, t8s.(i)); (64, t64s.(i)) ] b))
          in
          {
            name;
            domains;
            clients;
            batch1;
            dynamic;
            speedup = dynamic.throughput_rps /. batch1.throughput_rps;
            max_abs_diff;
          })
        concurrency_levels)

(* --- reporting: same (name, domains, speedup) surface as Kbench so the
   CLI bench gate and CI job are shared verbatim --- *)

let to_kbench rs =
  List.map
    (fun r ->
      {
        Kbench.name = r.name;
        domains = r.domains;
        ref_s = r.batch1.total_s;
        tiled_s = r.dynamic.total_s;
        speedup = r.speedup;
        max_rel_err = Some r.max_abs_diff;
      })
    rs

(* Same hand-rolled JSON style as Kbench (cachebox_core cannot see the
   serving stack's Sjson codec, which lives above it). *)
let json_of_result r =
  let mode prefix (m : mode_stats) =
    Printf.sprintf
      "\"%s_rps\": %.2f, \"%s_p50_ms\": %.4f, \"%s_p99_ms\": %.4f" prefix
      m.throughput_rps prefix m.p50_ms prefix m.p99_ms
  in
  Printf.sprintf
    "    {\"name\": %S, \"domains\": %d, \"clients\": %d, \"ref_s\": %.6f, \
     \"tiled_s\": %.6f, \"speedup\": %.4f, \"max_rel_err\": %g, %s, %s}"
    r.name r.domains r.clients r.batch1.total_s r.dynamic.total_s r.speedup
    r.max_abs_diff (mode "batch1" r.batch1) (mode "dynamic" r.dynamic)

let to_json rs =
  Printf.sprintf "{\n  \"version\": 1,\n%s  \"results\": [\n%s\n  ]\n}\n"
    (Kbench.meta_json ())
    (String.concat ",\n" (List.map json_of_result rs))

let write_json ~path rs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json rs))

let pp_table ppf rs =
  Format.fprintf ppf "%-12s %8s %12s %12s %10s %10s %10s@." "benchmark" "clients"
    "batch1 rps" "dynamic rps" "speedup" "b1 p99ms" "dyn p99ms";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %8d %12.1f %12.1f %9.2fx %10.2f %10.2f@." r.name
        r.clients r.batch1.throughput_rps r.dynamic.throughput_rps r.speedup
        r.batch1.p99_ms r.dynamic.p99_ms)
    rs
