(** Kernel benchmarks: reference (pre-tiling two-row GEMM, workspace arena
    off) vs production (tiled+packed GEMM, arena on), same process, same
    machine.

    This is the code path behind both [bench/main.exe -- kernels] and
    [cachebox bench]; CI compares the measured {!result.speedup} values
    against the committed [BENCH_KERNELS.json] baseline. Speedups — not
    absolute times — are the stable, machine-portable quantity. *)

type result = {
  name : string;
  domains : int;  (** Dpool lane count the benchmark ran under *)
  ref_s : float;  (** best-of-N seconds, reference configuration *)
  tiled_s : float;  (** best-of-N seconds, production configuration *)
  speedup : float;  (** [ref_s /. tiled_s] *)
  max_rel_err : float option;
      (** scaled max deviation between the two configurations' outputs;
          [None] for benchmarks without a directly comparable output *)
}

val run : ?fast:bool -> ?log:(string -> unit) -> unit -> result list
(** Runs the full suite: U-Net-shaped and square GEMMs (1/2/4 domains),
    convolution forward (1/4 domains) and backward, a one-epoch CB-GAN
    training step (1/2/4 domains), the int8 quantized rows, and the
    distilled-student rows ([student_unet_fwd], [student_int8_fwd] — both
    against the float32 teacher forward — and the [student_fig14_delta]
    accuracy row). [fast] (default: [CACHEBOX_FAST] set) shrinks shapes for
    smoke runs; [log] receives a progress line per benchmark. *)

val meta_json : unit -> string
(** The provenance block shared by every bench writer: [git describe] of
    the producing tree (null outside a repo) and the host's core count. *)

val to_json : result list -> string
(** The [BENCH_KERNELS.json] document:
    [{"version": 1, "meta": {...}, "results": [...]}]. *)

val write_json : path:string -> result list -> unit
val pp_table : Format.formatter -> result list -> unit
