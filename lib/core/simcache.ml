(* Content-addressed cache of ground-truth simulation results.

   Dataset construction re-simulates the same (workload, config, spec)
   combinations across experiment sweeps; every result is a pure function of
   that tuple, so it is cached on disk keyed by a digest of a canonical
   descriptor string. An entry stores the per-level heatmap pairs plus the
   true hit rate — everything [Cbox_dataset.benchmark_data] derives from a
   simulation — in a checksummed binary container:

     magic "CBSC1\n" | u64 LE payload length | u32 LE CRC-32 of payload | payload

   The payload leads with the full descriptor (the digest only names the
   file; equality of the stored descriptor is what validates a hit), then
   the section list. Heatmap pixels are integral counts bounded by the
   window size, so they are stored as u8 or u16 — exact, and small enough
   that the warm path is dominated by the CRC, which uses the slicing-by-8
   [Crc32.digest_sub].

   Any malformed entry — short file, wrong magic, bad CRC, descriptor
   mismatch (format-version bumps change the descriptor) — is treated as a
   miss and silently regenerated; writes go through a temp file + rename so
   concurrent readers only ever see complete entries. *)

type section = {
  tag : string;
  pairs : (Tensor.t * Tensor.t) list;
  true_hit_rate : float;
}

type stats = { hits : int; misses : int; stores : int; errors : int }

let hit_count = Atomic.make 0
let miss_count = Atomic.make 0
let store_count = Atomic.make 0
let error_count = Atomic.make 0

let stats () =
  {
    hits = Atomic.get hit_count;
    misses = Atomic.get miss_count;
    stores = Atomic.get store_count;
    errors = Atomic.get error_count;
  }

let reset_stats () =
  Atomic.set hit_count 0;
  Atomic.set miss_count 0;
  Atomic.set store_count 0;
  Atomic.set error_count 0

(* The directory is resolved from CACHEBOX_SIMCACHE on first use; [set_dir]
   (the --simcache flag, tests) overrides it either way. *)
let dir_ref : string option option ref = ref None

let dir () =
  match !dir_ref with
  | Some d -> d
  | None ->
    let d = Sys.getenv_opt "CACHEBOX_SIMCACHE" in
    dir_ref := Some d;
    d

let set_dir d = dir_ref := Some d
let enabled () = dir () <> None

let with_dir d f =
  let saved = !dir_ref in
  set_dir d;
  Fun.protect ~finally:(fun () -> dir_ref := saved) f

(* --- descriptors --- *)

let format_version = 1

let policy_tag = function
  | Cache.Lru -> "lru"
  | Cache.Fifo -> "fifo"
  | Cache.Plru -> "plru"
  | Cache.Srrip -> "srrip"
  | Cache.Random_policy seed -> Printf.sprintf "rnd%d" seed

let config_tag (c : Cache.config) =
  Printf.sprintf "%ds%dw%db-%s" c.Cache.sets c.Cache.ways c.Cache.block_bytes
    (policy_tag c.Cache.policy)

let spec_tag (s : Heatmap.spec) =
  Printf.sprintf "h%dw%dn%dg%dov%.6g" s.Heatmap.height s.Heatmap.width s.Heatmap.window
    s.Heatmap.granularity s.Heatmap.overlap

let descriptor ~kind ~workload ~trace_len ~configs ~spec =
  Printf.sprintf "cachebox-simcache/%d|%s|%s|%d|%s|%s" format_version kind workload
    trace_len
    (String.concat ";" (List.map config_tag configs))
    (spec_tag spec)

let entry_path ~dir ~descriptor =
  Filename.concat dir (Printf.sprintf "cbx-%08x.sim" (Crc32.digest descriptor))

(* --- binary container --- *)

let magic = "CBSC1\n"

let encode ~descriptor sections =
  let max_pixel = ref 0.0 in
  List.iter
    (fun s ->
      List.iter
        (fun (a, m) ->
          max_pixel := Float.max !max_pixel (Tensor.max_value a);
          max_pixel := Float.max !max_pixel (Tensor.max_value m))
        s.pairs)
    sections;
  if !max_pixel > 65535.0 || List.length sections > 255 then None
  else begin
    let bpp = if !max_pixel <= 255.0 then 1 else 2 in
    let buf = Buffer.create 65536 in
    Buffer.add_uint16_le buf (String.length descriptor);
    Buffer.add_string buf descriptor;
    Buffer.add_uint8 buf (List.length sections);
    List.iter
      (fun s ->
        Buffer.add_uint8 buf (String.length s.tag);
        Buffer.add_string buf s.tag;
        Buffer.add_int64_le buf (Int64.bits_of_float s.true_hit_rate);
        Buffer.add_uint16_le buf (List.length s.pairs);
        let h, w =
          match s.pairs with
          | (a, _) :: _ -> (Tensor.dim a 0, Tensor.dim a 1)
          | [] -> (0, 0)
        in
        Buffer.add_uint16_le buf h;
        Buffer.add_uint16_le buf w;
        Buffer.add_uint8 buf bpp;
        let put_plane t =
          let px = Tensor.to_array t in
          Array.iter
            (fun v ->
              let n = int_of_float v in
              if bpp = 1 then Buffer.add_uint8 buf n else Buffer.add_uint16_le buf n)
            px
        in
        List.iter
          (fun (a, m) ->
            put_plane a;
            put_plane m)
          s.pairs)
      sections;
    Some (Buffer.contents buf)
  end

exception Bad_entry

let decode ~descriptor raw =
  let pos = ref 0 in
  let len = String.length raw in
  let need n = if len - !pos < n then raise Bad_entry in
  let u8 () =
    need 1;
    let v = Char.code raw.[!pos] in
    incr pos;
    v
  in
  let u16 () =
    need 2;
    let v = String.get_uint16_le raw !pos in
    pos := !pos + 2;
    v
  in
  let u64 () =
    need 8;
    let v = String.get_int64_le raw !pos in
    pos := !pos + 8;
    v
  in
  let str n =
    need n;
    let s = String.sub raw !pos n in
    pos := !pos + n;
    s
  in
  let dlen = u16 () in
  if str dlen <> descriptor then raise Bad_entry;
  let nsections = u8 () in
  let sections =
    List.init nsections (fun _ ->
        let tag = str (u8 ()) in
        let true_hit_rate = Int64.float_of_bits (u64 ()) in
        let npairs = u16 () in
        let h = u16 () and w = u16 () in
        let bpp = u8 () in
        if bpp <> 1 && bpp <> 2 then raise Bad_entry;
        if npairs > 0 && (h <= 0 || w <= 0) then raise Bad_entry;
        (* Hot warm-path loop: direct indexing straight into the tensor's
           bigarray — no per-byte cursor calls, no intermediate array. *)
        let plane () =
          let n = h * w in
          need (n * bpp);
          let p0 = !pos in
          let t = Tensor.zeros [| h; w |] in
          let px = t.Tensor.data in
          if bpp = 1 then
            for i = 0 to n - 1 do
              Bigarray.Array1.unsafe_set px i
                (float_of_int (Char.code (String.unsafe_get raw (p0 + i))))
            done
          else
            for i = 0 to n - 1 do
              Bigarray.Array1.unsafe_set px i
                (float_of_int (String.get_uint16_le raw (p0 + (2 * i))))
            done;
          pos := p0 + (n * bpp);
          t
        in
        let pairs =
          List.init npairs (fun _ ->
              let a = plane () in
              let m = plane () in
              (a, m))
        in
        { tag; pairs; true_hit_rate })
  in
  if !pos <> len then raise Bad_entry;
  sections

(* --- filesystem --- *)

let rec mkdirs d =
  if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let header_len = String.length magic + 12

let parse_entry ~descriptor raw =
  let n = String.length raw in
  if n < header_len then raise Bad_entry;
  if String.sub raw 0 (String.length magic) <> magic then raise Bad_entry;
  let plen = Int64.to_int (String.get_int64_le raw (String.length magic)) in
  let crc = String.get_int32_le raw (String.length magic + 8) in
  if plen < 0 || plen <> n - header_len then raise Bad_entry;
  let computed = Crc32.digest_sub (Bytes.unsafe_of_string raw) ~pos:header_len ~len:plen in
  if Int32.to_int crc land 0xFFFFFFFF <> computed then raise Bad_entry;
  decode ~descriptor (String.sub raw header_len plen)

let lookup ~descriptor =
  match dir () with
  | None -> None
  | Some d ->
    let path = entry_path ~dir:d ~descriptor in
    if not (Sys.file_exists path) then begin
      Atomic.incr miss_count;
      None
    end
    else begin
      match parse_entry ~descriptor (read_file path) with
      | sections ->
        Atomic.incr hit_count;
        Some sections
      | exception _ ->
        Atomic.incr error_count;
        Atomic.incr miss_count;
        None
    end

let store ~descriptor sections =
  match dir () with
  | None -> ()
  | Some d -> (
    match encode ~descriptor sections with
    | None -> Atomic.incr error_count
    | Some payload -> (
      try
        mkdirs d;
        let path = entry_path ~dir:d ~descriptor in
        let tmp = Filename.temp_file ~temp_dir:d ".simcache" ".tmp" in
        let oc = open_out_bin tmp in
        (match
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () ->
               output_string oc magic;
               let hdr = Bytes.create 12 in
               Bytes.set_int64_le hdr 0 (Int64.of_int (String.length payload));
               Bytes.set_int32_le hdr 8
                 (Int32.of_int
                    (Crc32.digest_sub
                       (Bytes.unsafe_of_string payload)
                       ~pos:0 ~len:(String.length payload)));
               output_bytes oc hdr;
               output_string oc payload)
         with
        | () -> Sys.rename tmp path
        | exception e ->
          (try Sys.remove tmp with Sys_error _ -> ());
          raise e);
        Atomic.incr store_count
      with Sys_error _ -> Atomic.incr error_count))

let with_sections ~descriptor f =
  match lookup ~descriptor with
  | Some sections -> sections
  | None ->
    let sections = f () in
    store ~descriptor sections;
    sections
