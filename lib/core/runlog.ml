(* Append-only JSONL run journal.

   Every event is one JSON object per line, flushed immediately, so a crash
   mid-run loses at most the event being written and a journal can be tailed
   while the run is live. The reader side is deliberately minimal: we only
   ever read back journals this module wrote, and only to answer "which
   events of kind K happened, and with which fields" -- enough to make an
   experiment sweep resumable per-driver. *)

type value = S of string | I of int | F of float | B of bool

type t = { path : string; oc : out_channel }

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_json = function
  | S s -> "\"" ^ escape s ^ "\""
  | I i -> string_of_int i
  | F f ->
    if Float.is_nan f then "\"nan\""
    else if f = Float.infinity then "\"inf\""
    else if f = Float.neg_infinity then "\"-inf\""
    else Printf.sprintf "%.17g" f
  | B b -> if b then "true" else "false"

let create path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  { path; oc }

let path t = t.path

let event t kind fields =
  let fields = ("ts", F (Unix.gettimeofday ())) :: ("event", S kind) :: fields in
  let line =
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ value_to_json v) fields)
    ^ "}"
  in
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let close t = close_out t.oc

let with_journal path f =
  let t = create path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* --- read-back --- *)

let lines path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let out = ref [] in
        (try
           while true do
             out := input_line ic :: !out
           done
         with End_of_file -> ());
        List.rev !out)
  end

(* Extracts the string value of ["key": "..."] from a line this module
   wrote. Only used on our own output, where keys are plain identifiers. *)
let field line key =
  let needle = "\"" ^ key ^ "\": \"" in
  let nlen = String.length needle in
  let llen = String.length line in
  let rec find i =
    if i + nlen > llen then None
    else if String.sub line i nlen = needle then begin
      let buf = Buffer.create 16 in
      let rec copy j =
        if j >= llen then None
        else
          match line.[j] with
          | '"' -> Some (Buffer.contents buf)
          | '\\' when j + 1 < llen ->
            (match line.[j + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | c -> Buffer.add_char buf c);
            copy (j + 2)
          | c ->
            Buffer.add_char buf c;
            copy (j + 1)
      in
      copy (i + nlen)
    end
    else find (i + 1)
  in
  find 0

let events ?kind path =
  let all = lines path in
  match kind with
  | None -> all
  | Some k -> List.filter (fun l -> field l "event" = Some k) all

let completed_drivers path =
  List.filter_map (fun l -> field l "driver") (events ~kind:"driver_end" path)
