(** Int8 quantized generator for inference.

    Compiles a trained {!Cbgan} generator into a direct tensor program:
    batch norms are folded into their convolutions (exact at inference),
    the folded weights are quantized symmetrically with per-output-channel
    scales, and per-tensor activation scales are calibrated by running the
    folded float network over a calibration batch. The resulting model runs
    through the {!Blas.Int8} GEMM kernel with no Value-graph overhead and
    serializes to a dtype-tagged v3 checkpoint, so quantized artifacts load
    without the float originals.

    [forward] is deterministic and bit-identical at any domain count: the
    integer GEMMs accumulate exactly and the dequantization epilogue runs in
    a fixed per-element order (see {!Blas.Int8}). *)

type t

val of_model :
  ?pow2:bool ->
  spec:Heatmap.spec ->
  ?calib:Tensor.t list ->
  ?calib_caches:Cache.config list ->
  Cbgan.t ->
  t
(** [of_model ~spec model] folds, calibrates and quantizes the generator.
    [calib] (access heatmaps, as produced by {!Heatmap.of_trace}) defaults
    to a deterministic mix of strided and pseudo-random traces;
    [calib_caches] (cycled across the batch for the conditioning MLP)
    defaults to a spread of cache geometries. [pow2] rounds every scale up
    to a power of two. *)

val of_student :
  ?pow2:bool ->
  spec:Heatmap.spec ->
  ?calib:Tensor.t list ->
  ?calib_caches:Cache.config list ->
  Student.t ->
  t
(** As {!of_model}, for a distilled {!Student} generator: the same fold /
    calibrate / quantize pipeline over the student's structure views. A
    half-depth student's bottleneck is wider than 1x1, so the quantized
    conditioning vector is broadcast over it exactly as in the float
    forward — the composed "student-int8" backend. *)

val forward : t -> ?cache_params:Tensor.t -> Tensor.t -> Tensor.t
(** [forward t ?cache_params x] maps normalised access heatmaps
    [x : \[n; 1; s; s\]] to synthetic miss heatmaps in [\[-1, 1\]] — the
    quantized counterpart of [Cbgan.generator_forward ~training:false].
    [cache_params] (shape [\[n; 2\]]) is required iff the source model used
    cache-parameter conditioning. *)

val image_size : t -> int
val uses_cache_params : t -> bool

val save : t -> string -> unit
(** Writes the quantized model as a v3 checkpoint (int8 weight bytes plus
    exact float64 scales and biases; atomic, checksummed). *)

val load : string -> t
(** Rebuilds a quantized model from {!save} output without the float
    originals; scales round-trip bit-identically. Raises [Failure] on
    malformed input. *)

val default_calib : Heatmap.spec -> Tensor.t list
(** The deterministic default calibration heatmaps. *)

val default_calib_caches : Cache.config list
(** The default conditioning-MLP calibration geometries. *)
