(** Content-addressed cache of ground-truth simulation results.

    Simulating a (workload, cache/hierarchy configuration, heatmap spec)
    tuple is pure and deterministic, and experiment sweeps repeat the same
    tuples many times. This module caches each simulation's heatmap pairs
    and true hit rate on disk, keyed by the CRC-32 digest of a canonical
    descriptor string that covers everything the result depends on
    (including a format version).

    Entries are checksummed binary containers written atomically (temp file
    + rename). A corrupt, truncated, stale-format or colliding entry is
    indistinguishable from a miss: it is ignored and regenerated. Enable
    with [CACHEBOX_SIMCACHE=<dir>] or the [--simcache] CLI flag
    ({!set_dir}). *)

type section = {
  tag : string;  (** which sub-result, e.g. a hierarchy level name *)
  pairs : (Tensor.t * Tensor.t) list;  (** aligned (access, target) heatmaps *)
  true_hit_rate : float;
}

type stats = { hits : int; misses : int; stores : int; errors : int }

val enabled : unit -> bool
val dir : unit -> string option
(** The cache directory: the last {!set_dir} value, else [CACHEBOX_SIMCACHE]. *)

val set_dir : string option -> unit
(** Override (or with [None], disable) the cache directory. *)

val with_dir : string option -> (unit -> 'a) -> 'a
(** Run with the directory temporarily overridden, restoring on exit. *)

val descriptor :
  kind:string ->
  workload:string ->
  trace_len:int ->
  configs:Cache.config list ->
  spec:Heatmap.spec ->
  string
(** Canonical cache key covering every input the simulation result depends
    on; bump-safe (embeds the container format version). *)

val entry_path : dir:string -> descriptor:string -> string
(** The file an entry for [descriptor] lives at (exposed for tests that
    plant corrupt or stale entries). *)

val lookup : descriptor:string -> section list option
(** [Some sections] on a valid hit; [None] (counted as a miss, plus an
    error if the file existed but was invalid) otherwise. Always [None]
    when the cache is disabled. *)

val store : descriptor:string -> section list -> unit
(** Write an entry atomically; a no-op when disabled. I/O failures are
    counted in {!stats} and otherwise ignored — the cache is an
    accelerator, never a correctness dependency. *)

val with_sections : descriptor:string -> (unit -> section list) -> section list
(** [lookup], or run the simulation and [store] its result. *)

val stats : unit -> stats
val reset_stats : unit -> unit
