(** Dataset construction: from workloads to paired, normalised heatmaps.

    This is the OCaml equivalent of the paper's HeatmapDataGenerator: run
    each benchmark's trace through the ground-truth simulator, convert the
    per-level access/miss streams into aligned heatmap pairs, and normalise
    pixel counts into the [-1, 1] range the tanh generator works in. *)

type sample = {
  benchmark : string;
  cache : Cache.config;  (** config whose filter behaviour the pair shows *)
  level : Hierarchy.level;
  access : Tensor.t;  (** [\[h; w\]] raw access counts *)
  target : Tensor.t;  (** [\[h; w\]] raw miss (or prefetch) counts *)
}

type benchmark_data = {
  workload : Workload.t;
  cache : Cache.config;
  level : Hierarchy.level;
  pairs : (Tensor.t * Tensor.t) list;  (** aligned raw (access, target) *)
  true_hit_rate : float;  (** de-overlapped ground truth *)
}

(** {1 Normalisation} *)

val normalize : Heatmap.spec -> Tensor.t -> Tensor.t
(** Counts [\[0, window\]] to [\[-1, 1\]] (clamped). *)

val denormalize : Heatmap.spec -> Tensor.t -> Tensor.t
(** Inverse of {!normalize}, clamped to non-negative counts. *)

val batch_images : Heatmap.spec -> Tensor.t list -> Tensor.t
(** Normalises and stacks [k] heatmaps into an [\[k; 1; h; w\]] tensor. *)

(** {1 Construction}

    The builders stream every simulated access straight into
    {!Heatmap.Accum} columns (constant memory per level — no recorded
    trace arrays, no decode, no second pass), fan workloads across the
    {!Dpool} domain pool ([CACHEBOX_DOMAINS]), and consult the
    content-addressed {!Simcache} when one is enabled. Workload traces
    are self-seeded by name, each lane simulates a disjoint roster slice,
    and results are concatenated in roster order — output is bit-identical
    to a serial run at every domain count, and to the recorded-path
    [_reference] builders below. *)

val build_l1 :
  Heatmap.spec ->
  configs:Cache.config list ->
  trace_len:int ->
  Workload.t list ->
  benchmark_data list
(** One entry per (workload, config): simulate the L1 filter and pair up
    heatmaps. Workload traces are generated once and shared across
    configs. *)

val build_hierarchy :
  Heatmap.spec ->
  l1:Cache.config ->
  l2:Cache.config ->
  l3:Cache.config ->
  trace_len:int ->
  Workload.t list ->
  benchmark_data list
(** Entries for all three levels. A level's access stream is the miss
    stream of the previous level; benchmarks whose deeper streams are
    shorter than one heatmap are omitted at those levels (the paper's
    "low data regime" exclusion shows up naturally here). *)

val build_prefetch :
  Heatmap.spec ->
  config:Cache.config ->
  kind:Prefetch.kind ->
  trace_len:int ->
  Workload.t list ->
  benchmark_data list
(** Pairs of (demand access heatmap, prefetched-address heatmap) for RQ7.
    [true_hit_rate] holds the cache's demand hit rate for reference. *)

(** {1 Recorded-path references}

    The original record-decode-then-cut implementations, kept verbatim:
    always serial, never cached. They are the bit-identity oracle the test
    suite compares the streaming builders against, and the baseline side
    of [bench -- dataset]. *)

val build_l1_reference :
  Heatmap.spec ->
  configs:Cache.config list ->
  trace_len:int ->
  Workload.t list ->
  benchmark_data list

val build_hierarchy_reference :
  Heatmap.spec ->
  l1:Cache.config ->
  l2:Cache.config ->
  l3:Cache.config ->
  trace_len:int ->
  Workload.t list ->
  benchmark_data list

val build_prefetch_reference :
  Heatmap.spec ->
  config:Cache.config ->
  kind:Prefetch.kind ->
  trace_len:int ->
  Workload.t list ->
  benchmark_data list

val to_samples : benchmark_data list -> sample list
val shuffle : Prng.t -> sample list -> sample list
