type sample = {
  benchmark : string;
  cache : Cache.config;
  level : Hierarchy.level;
  access : Tensor.t;
  target : Tensor.t;
}

type benchmark_data = {
  workload : Workload.t;
  cache : Cache.config;
  level : Hierarchy.level;
  pairs : (Tensor.t * Tensor.t) list;
  true_hit_rate : float;
}

(* Pixel counts are mapped log-scale into [-1, 1]: count 0 sits at -1 and a
   single access already lands at ~-0.65, so the generator's tanh does not
   have to saturate to render empty background. Denormalisation inverts the
   log map and rounds, since true heatmap pixels are integral counts — this
   keeps the hit-rate sums (paper §4.4) from being polluted by a slightly
   non-zero background level. *)
let normalize (spec : Heatmap.spec) img =
  let scale = log (1.0 +. float_of_int spec.window) in
  Tensor.map
    (fun v -> Float.max (-1.0) (Float.min 1.0 ((2.0 *. log (1.0 +. v) /. scale) -. 1.0)))
    img

let denormalize (spec : Heatmap.spec) img =
  let scale = log (1.0 +. float_of_int spec.window) in
  Tensor.map
    (fun v -> Float.max 0.0 (Float.round (exp ((v +. 1.0) /. 2.0 *. scale) -. 1.0)))
    img

let batch_images spec imgs =
  match imgs with
  | [] -> invalid_arg "Cbox_dataset.batch_images: empty batch"
  | first :: _ ->
    let h = Tensor.dim first 0 and w = Tensor.dim first 1 in
    let normalized =
      List.map (fun img -> Tensor.view (normalize spec img) [| 1; 1; h; w |]) imgs
    in
    Tensor.stack_batch normalized

let hit_flags_for_config cfg trace =
  let cache = Cache.create cfg in
  Array.map (fun addr -> Cache.access cache addr) trace

let data_for ~workload ~cache ~level spec ~addresses ~hits =
  let pairs = Heatmap.pair_of_trace spec ~addresses ~hits in
  let access = List.map fst pairs and miss = List.map snd pairs in
  {
    workload;
    cache;
    level;
    pairs;
    true_hit_rate = Heatmap.hit_rate spec ~access ~miss;
  }

(* --- recorded-path reference builders ---

   These are the original (pre-streaming) implementations, kept verbatim:
   record every per-level trace, decode it, then cut heatmaps out of the
   arrays. They are the bit-identity oracle for the streaming builders below
   (property and golden tests compare against them) and the baseline side of
   [bench -- dataset]. Always serial, never cached. *)

let build_l1_reference spec ~configs ~trace_len workloads =
  List.concat_map
    (fun w ->
      let trace = w.Workload.generate trace_len in
      List.map
        (fun cfg ->
          let hits = hit_flags_for_config cfg trace in
          data_for ~workload:w ~cache:cfg ~level:Hierarchy.L1 spec ~addresses:trace
            ~hits)
        configs)
    workloads

let build_hierarchy_reference spec ~l1 ~l2 ~l3 ~trace_len workloads =
  let config_of_level = function
    | Hierarchy.L1 -> l1
    | Hierarchy.L2 -> l2
    | Hierarchy.L3 -> l3
  in
  List.concat_map
    (fun w ->
      let trace = w.Workload.generate trace_len in
      let h = Hierarchy.create ~l2 ~l3 ~l1 () in
      Hierarchy.run h trace;
      Hierarchy.level_traces h
      |> List.filter_map (fun (lt : Hierarchy.level_trace) ->
             if Array.length lt.addresses < Heatmap.accesses_per_image spec then None
             else
               Some
                 (data_for ~workload:w ~cache:(config_of_level lt.level)
                    ~level:lt.level spec ~addresses:lt.addresses ~hits:lt.hits)))
    workloads

let build_prefetch_reference spec ~config ~kind ~trace_len workloads =
  List.map
    (fun w ->
      let trace = w.Workload.generate trace_len in
      let cache = Cache.create config in
      let pf = Prefetch.create kind in
      let n = Array.length trace in
      (* Align prefetches with the demand access that triggered them: one
         slot per access, holding the first prefetched address (next-line
         issues at most one). *)
      let pf_addr = Array.make n 0 in
      let pf_keep = Array.make n false in
      let hits = Array.make n false in
      for i = 0 to n - 1 do
        let proposals =
          Prefetch.on_access pf ~addr:trace.(i) ~block_bytes:config.Cache.block_bytes
        in
        hits.(i) <- Cache.access cache trace.(i);
        match proposals with
        | [] -> ()
        | addr :: _ ->
          pf_addr.(i) <- addr;
          pf_keep.(i) <- true;
          List.iter (Cache.insert cache) proposals
      done;
      let access = Heatmap.of_trace spec trace in
      let prefetch = Heatmap.of_trace_filtered spec ~addresses:pf_addr ~keep:pf_keep in
      let miss = Heatmap.of_trace_filtered spec ~addresses:trace
          ~keep:(Array.map not hits)
      in
      {
        workload = w;
        cache = config;
        level = Hierarchy.L1;
        pairs = List.combine access prefetch;
        true_hit_rate = Heatmap.hit_rate spec ~access ~miss;
      })
    workloads

(* --- streaming builders ---

   The production path folds every access straight into [Heatmap.Accum]
   columns as the simulator produces it: no per-level address/flag arrays,
   no decode, no second pass over the trace. Plane 0 counts every access,
   plane 1 the misses, so [deoverlapped_mass] yields the exact hit-rate
   numerator/denominator that [Heatmap.hit_rate] computes from pixels.
   Workloads fan out across the Dpool ([CACHEBOX_DOMAINS]); each lane's
   simulation is self-seeded by the workload name and results are
   concatenated in roster order, so output is bit-identical to a serial
   run at any domain count. *)

let section_data (a : Heatmap.Accum.t) =
  let access = Heatmap.Accum.images a ~plane:0 in
  let miss = Heatmap.Accum.images a ~plane:1 in
  let total = Heatmap.Accum.deoverlapped_mass a ~plane:0 in
  let missed = Heatmap.Accum.deoverlapped_mass a ~plane:1 in
  let rate = if total <= 0.0 then 0.0 else 1.0 -. (missed /. total) in
  (List.combine access miss, rate)

let parallel_build per_workload workloads =
  Dpool.parallel_map_array per_workload (Array.of_list workloads)
  |> Array.to_list |> List.concat

let l1_sections spec ~configs ~trace_len (w : Workload.t) =
  let trace = w.Workload.generate trace_len in
  let n = Array.length trace in
  List.mapi
    (fun idx cfg ->
      let cache = Cache.create cfg in
      let acc = Heatmap.Accum.create ~planes:2 spec in
      for i = 0 to n - 1 do
        let addr = Array.unsafe_get trace i in
        let hit = Cache.access cache addr in
        Heatmap.Accum.add acc ~addr ~mask:(if hit then 1 else 3)
      done;
      let pairs, true_hit_rate = section_data acc in
      { Simcache.tag = Printf.sprintf "C%d" idx; pairs; true_hit_rate })
    configs

let build_l1 spec ~configs ~trace_len workloads =
  let cfg_arr = Array.of_list configs in
  parallel_build
    (fun w ->
      let descriptor =
        Simcache.descriptor ~kind:"l1" ~workload:w.Workload.name ~trace_len ~configs ~spec
      in
      Simcache.with_sections ~descriptor (fun () -> l1_sections spec ~configs ~trace_len w)
      |> List.filter_map (fun (s : Simcache.section) ->
             match
               if String.length s.tag >= 2 && s.tag.[0] = 'C' then
                 int_of_string_opt (String.sub s.tag 1 (String.length s.tag - 1))
               else None
             with
             | Some idx when idx >= 0 && idx < Array.length cfg_arr ->
               Some
                 {
                   workload = w;
                   cache = cfg_arr.(idx);
                   level = Hierarchy.L1;
                   pairs = s.pairs;
                   true_hit_rate = s.true_hit_rate;
                 }
             | _ -> None))
    workloads

let level_of_tag = function
  | "L1" -> Some Hierarchy.L1
  | "L2" -> Some Hierarchy.L2
  | "L3" -> Some Hierarchy.L3
  | _ -> None

let hierarchy_sections spec ~l1 ~l2 ~l3 ~trace_len (w : Workload.t) =
  let trace = w.Workload.generate trace_len in
  let h = Hierarchy.create ~l2 ~l3 ~l1 () in
  let lvls = Hierarchy.levels h in
  let accs = Array.map (fun _ -> Heatmap.Accum.create ~planes:2 spec) lvls in
  Hierarchy.run_observed h
    ~f:(fun i addr hit ->
      Heatmap.Accum.add (Array.unsafe_get accs i) ~addr ~mask:(if hit then 1 else 3))
    trace;
  (* A deeper level whose stream never fills one image is excluded — the
     recorded path's [< accesses_per_image] filter, expressed as "zero
     completed images". *)
  let out = ref [] in
  for i = Array.length lvls - 1 downto 0 do
    let a = accs.(i) in
    if Heatmap.Accum.completed a > 0 then begin
      let pairs, true_hit_rate = section_data a in
      out :=
        { Simcache.tag = Hierarchy.level_name lvls.(i); pairs; true_hit_rate } :: !out
    end
  done;
  !out

let build_hierarchy spec ~l1 ~l2 ~l3 ~trace_len workloads =
  let config_of_level = function
    | Hierarchy.L1 -> l1
    | Hierarchy.L2 -> l2
    | Hierarchy.L3 -> l3
  in
  parallel_build
    (fun w ->
      let descriptor =
        Simcache.descriptor ~kind:"hierarchy" ~workload:w.Workload.name ~trace_len
          ~configs:[ l1; l2; l3 ] ~spec
      in
      Simcache.with_sections ~descriptor (fun () ->
          hierarchy_sections spec ~l1 ~l2 ~l3 ~trace_len w)
      |> List.filter_map (fun (s : Simcache.section) ->
             Option.map
               (fun level ->
                 {
                   workload = w;
                   cache = config_of_level level;
                   level;
                   pairs = s.pairs;
                   true_hit_rate = s.true_hit_rate;
                 })
               (level_of_tag s.tag)))
    workloads

let prefetch_kind_tag = function
  | Prefetch.No_prefetch -> "none"
  | Prefetch.Next_line -> "next"
  | Prefetch.Stride { degree; table_size } -> Printf.sprintf "stride%dx%d" degree table_size

let prefetch_sections spec ~config ~kind ~trace_len (w : Workload.t) =
  let trace = w.Workload.generate trace_len in
  let cache = Cache.create config in
  let pf = Prefetch.create kind in
  let buf = Array.make (max 1 (Prefetch.max_degree pf)) 0 in
  let block_bytes = config.Cache.block_bytes in
  (* Demand stream: plane 0 = accesses, plane 1 = misses. Prefetch stream:
     its own accumulator, because its addresses differ per slot (first
     proposal of the triggering access; mask 0 when none). *)
  let acc = Heatmap.Accum.create ~planes:2 spec in
  let pacc = Heatmap.Accum.create ~planes:1 spec in
  let n = Array.length trace in
  for i = 0 to n - 1 do
    let addr = Array.unsafe_get trace i in
    let npf = Prefetch.on_access_into pf ~addr ~block_bytes ~buf in
    let hit = Cache.access cache addr in
    Heatmap.Accum.add acc ~addr ~mask:(if hit then 1 else 3);
    if npf = 0 then Heatmap.Accum.add pacc ~addr:0 ~mask:0
    else begin
      Heatmap.Accum.add pacc ~addr:(Array.unsafe_get buf 0) ~mask:1;
      for k = 0 to npf - 1 do
        Cache.insert cache (Array.unsafe_get buf k)
      done
    end
  done;
  let total = Heatmap.Accum.deoverlapped_mass acc ~plane:0 in
  let missed = Heatmap.Accum.deoverlapped_mass acc ~plane:1 in
  let rate = if total <= 0.0 then 0.0 else 1.0 -. (missed /. total) in
  let access = Heatmap.Accum.images acc ~plane:0 in
  let prefetch = Heatmap.Accum.images pacc ~plane:0 in
  [ { Simcache.tag = "PF"; pairs = List.combine access prefetch; true_hit_rate = rate } ]

let build_prefetch spec ~config ~kind ~trace_len workloads =
  parallel_build
    (fun w ->
      let descriptor =
        Simcache.descriptor
          ~kind:("prefetch:" ^ prefetch_kind_tag kind)
          ~workload:w.Workload.name ~trace_len ~configs:[ config ] ~spec
      in
      Simcache.with_sections ~descriptor (fun () ->
          prefetch_sections spec ~config ~kind ~trace_len w)
      |> List.filter_map (fun (s : Simcache.section) ->
             if s.Simcache.tag <> "PF" then None
             else
               Some
                 {
                   workload = w;
                   cache = config;
                   level = Hierarchy.L1;
                   pairs = s.pairs;
                   true_hit_rate = s.true_hit_rate;
                 }))
    workloads

let to_samples data =
  List.concat_map
    (fun d ->
      List.map
        (fun (access, target) ->
          {
            benchmark = d.workload.Workload.name;
            cache = d.cache;
            level = d.level;
            access;
            target;
          })
        d.pairs)
    data

let shuffle rng samples =
  let a = Array.of_list samples in
  Prng.shuffle rng a;
  Array.to_list a
