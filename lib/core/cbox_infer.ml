type prediction = {
  benchmark : string;
  cache : Cache.config;
  level : Hierarchy.level;
  true_hit_rate : float;
  predicted_hit_rate : float;
  synthetic : Tensor.t list;
}

let synthesize model spec ?(batch_size = 8) ?domains ~cache access_heatmaps =
  if batch_size <= 0 then invalid_arg "Cbox_infer.synthesize: batch_size must be positive";
  let h = (Cbgan.model_config model).Cbgan.image_size in
  let run_batch batch =
    (* Inference needs no dropout randomness; the rng is unused but required
       by the forward signature. *)
    let rng = Prng.create 0 in
    let x = Cbox_dataset.batch_images spec batch in
    let n = List.length batch in
    let cp =
      if (Cbgan.model_config model).Cbgan.use_cache_params then
        Some (Cbgan.cache_params_tensor (List.init n (fun _ -> cache)))
      else None
    in
    let out = Value.value (Cbgan.generator_forward model ~rng ~training:false ?cache_params:cp x) in
    List.init n (fun i ->
        let img = Tensor.slice_batch out i 1 in
        Cbox_dataset.denormalize spec (Tensor.view img [| h; h |]))
  in
  let rec batches acc = function
    | [] -> List.rev acc
    | imgs ->
      let batch = List.filteri (fun i _ -> i < batch_size) imgs in
      let rest = List.filteri (fun i _ -> i >= batch_size) imgs in
      batches (batch :: acc) rest
  in
  let batch_list = Array.of_list (batches [] access_heatmaps) in
  (* Sample results are independent at inference (running-stats batch norm),
     so batches may be scored on separate domains when the host has spare
     cores. *)
  Dpool.parallel_map_array ?domains run_batch batch_list
  |> Array.to_list |> List.concat

(* Shared flatten/batch/unflatten plumbing for the cross-request group
   paths: [forward ~caches x] runs one batch ([x] stacked from that batch's
   images, [caches] one geometry per sample) and returns the [n; 1; h; h]
   output tensor. Inference outputs are per-sample independent (running-stats
   batch norm in the float model, stateless GEMMs in the quantized one), so
   results are bit-identical to scoring each request alone. *)
let group_run ~image_size:h ~forward spec ~batch_size ?domains items =
  if batch_size <= 0 then
    invalid_arg "Cbox_infer.synthesize_group: batch_size must be positive";
  let flat =
    List.concat_map (fun (cache, imgs) -> List.map (fun img -> (cache, img)) imgs) items
  in
  let run_batch batch =
    let imgs = List.map snd batch in
    let x = Cbox_dataset.batch_images spec imgs in
    let n = List.length batch in
    let out = forward ~caches:(List.map fst batch) x in
    List.init n (fun i ->
        let img = Tensor.slice_batch out i 1 in
        Cbox_dataset.denormalize spec (Tensor.view img [| h; h |]))
  in
  let rec batches acc = function
    | [] -> List.rev acc
    | xs ->
      let batch = List.filteri (fun i _ -> i < batch_size) xs in
      let rest = List.filteri (fun i _ -> i >= batch_size) xs in
      batches (batch :: acc) rest
  in
  let outputs =
    Dpool.parallel_map_array ?domains run_batch (Array.of_list (batches [] flat))
    |> Array.to_list |> List.concat
  in
  (* Unflatten back to one synthetic list per request, preserving order. *)
  let rec split outs = function
    | [] -> []
    | (_, imgs) :: rest ->
      let k = List.length imgs in
      let mine = List.filteri (fun i _ -> i < k) outs in
      let theirs = List.filteri (fun i _ -> i >= k) outs in
      mine :: split theirs rest
  in
  split outputs items

let synthesize_group model spec ?(batch_size = 8) ?domains items =
  (* Flatten every request's windows into one (cache, image) stream; the
     conditioning tensor carries one row per sample, so windows of requests
     with different cache geometries share a forward pass. Inference
     batch-norm uses running statistics, so each sample's output is
     independent of its batch mates — results are bit-identical to scoring
     each request alone (the serve-batch suite asserts this). *)
  let cfg = Cbgan.model_config model in
  let forward ~caches x =
    let rng = Prng.create 0 in
    let cp =
      if cfg.Cbgan.use_cache_params then Some (Cbgan.cache_params_tensor caches) else None
    in
    Value.value (Cbgan.generator_forward model ~rng ~training:false ?cache_params:cp x)
  in
  group_run ~image_size:cfg.Cbgan.image_size ~forward spec ~batch_size ?domains items

(* Quantized counterparts: identical batching and unflattening with the
   Value-graph forward swapped for the direct int8 tensor program. *)
let qsynthesize_group qmodel spec ?(batch_size = 8) ?domains items =
  let forward ~caches x =
    let cp =
      if Qgen.uses_cache_params qmodel then Some (Cbgan.cache_params_tensor caches)
      else None
    in
    Qgen.forward qmodel ?cache_params:cp x
  in
  group_run ~image_size:(Qgen.image_size qmodel) ~forward spec ~batch_size ?domains items

let qsynthesize qmodel spec ?(batch_size = 8) ?domains ~cache access_heatmaps =
  match qsynthesize_group qmodel spec ~batch_size ?domains [ (cache, access_heatmaps) ] with
  | [ out ] -> out
  | _ -> assert false

(* Distilled-student counterparts: the student's forward is deterministic
   (no dropout, running-stats batch norm at eval), so cross-request batching
   is again bit-identical to per-item scoring. *)
let ssynthesize_group student spec ?(batch_size = 8) ?domains items =
  let forward ~caches x =
    let cp =
      if Student.uses_cache_params student then Some (Cbgan.cache_params_tensor caches)
      else None
    in
    Value.value (Student.forward student ~training:false ?cache_params:cp x)
  in
  group_run ~image_size:(Student.image_size student) ~forward spec ~batch_size ?domains
    items

let ssynthesize student spec ?(batch_size = 8) ?domains ~cache access_heatmaps =
  match ssynthesize_group student spec ~batch_size ?domains [ (cache, access_heatmaps) ] with
  | [ out ] -> out
  | _ -> assert false

let predict_hit_rate model spec ?batch_size ?domains ~cache access =
  let synthetic = synthesize model spec ?batch_size ?domains ~cache access in
  Heatmap.hit_rate spec ~access ~miss:synthetic

let validate_hit_rate ?(lo = -0.25) ?(hi = 1.25) raw =
  if Float.is_nan raw then Error "hit rate is NaN"
  else if raw = Float.infinity || raw = Float.neg_infinity then
    Error "hit rate is infinite"
  else if raw < lo || raw > hi then
    Error (Printf.sprintf "hit rate %g outside plausible range [%g, %g]" raw lo hi)
  else Ok (Float.max 0.0 (Float.min 1.0 raw))

type backend =
  | Backend_float32
  | Backend_int8
  | Backend_student
  | Backend_student_int8
  | Backend_hrd
  | Backend_stm

let backend_name = function
  | Backend_float32 -> "float32"
  | Backend_int8 -> "int8"
  | Backend_student -> "student"
  | Backend_student_int8 -> "student-int8"
  | Backend_hrd -> "hrd"
  | Backend_stm -> "stm"

let backend_of_string = function
  | "float32" -> Some Backend_float32
  | "int8" -> Some Backend_int8
  | "student" -> Some Backend_student
  | "student-int8" -> Some Backend_student_int8
  | "hrd" -> Some Backend_hrd
  | "stm" -> Some Backend_stm
  | _ -> None

type fallback = No_fallback | Fallback_hrd | Fallback_stm

let fallback_name = function
  | No_fallback -> "none"
  | Fallback_hrd -> "hrd"
  | Fallback_stm -> "stm"

let fallback_of_string = function
  | "none" -> Some No_fallback
  | "hrd" -> Some Fallback_hrd
  | "stm" -> Some Fallback_stm
  | _ -> None

let baseline_hit_rate fallback cache trace =
  match fallback with
  | No_fallback -> None
  | Fallback_hrd -> Some (Hrd.predict_l1 cache trace)
  | Fallback_stm -> Some (Stm.predict cache trace)

let predict model spec ?batch_size (data : Cbox_dataset.benchmark_data) =
  let access = List.map fst data.pairs in
  let synthetic = synthesize model spec ?batch_size ~cache:data.cache access in
  let predicted = Heatmap.hit_rate spec ~access ~miss:synthetic in
  {
    benchmark = data.workload.Workload.name;
    cache = data.cache;
    level = data.level;
    true_hit_rate = data.true_hit_rate;
    predicted_hit_rate = Float.max 0.0 (Float.min 1.0 predicted);
    synthetic;
  }

let predict_all model spec ?batch_size data = List.map (predict model spec ?batch_size) data

let qpredict qmodel spec ?batch_size (data : Cbox_dataset.benchmark_data) =
  let access = List.map fst data.pairs in
  let synthetic = qsynthesize qmodel spec ?batch_size ~cache:data.cache access in
  let predicted = Heatmap.hit_rate spec ~access ~miss:synthetic in
  {
    benchmark = data.workload.Workload.name;
    cache = data.cache;
    level = data.level;
    true_hit_rate = data.true_hit_rate;
    predicted_hit_rate = Float.max 0.0 (Float.min 1.0 predicted);
    synthetic;
  }

let spredict student spec ?batch_size (data : Cbox_dataset.benchmark_data) =
  let access = List.map fst data.pairs in
  let synthetic = ssynthesize student spec ?batch_size ~cache:data.cache access in
  let predicted = Heatmap.hit_rate spec ~access ~miss:synthetic in
  {
    benchmark = data.workload.Workload.name;
    cache = data.cache;
    level = data.level;
    true_hit_rate = data.true_hit_rate;
    predicted_hit_rate = Float.max 0.0 (Float.min 1.0 predicted);
    synthetic;
  }

let abs_pct_diff p =
  Metrics.abs_pct_diff ~truth:p.true_hit_rate ~predicted:p.predicted_hit_rate
