type options = {
  epochs : int;
  batch_size : int;
  lr : float;
  beta1 : float;
  lambda_l1 : float;
  seed : int;
  domains : int option;
  snapshot_every : int option;
  snapshot_dir : string option;
  keep_snapshots : int;
  max_retries : int;
  journal : string option;
}

let default_options ?(epochs = 2) ?(batch_size = 4) ?(lambda_l1 = 150.0) ?domains
    ?snapshot_every ?snapshot_dir ?journal () =
  {
    epochs;
    batch_size;
    lr = 2e-4;
    beta1 = 0.5;
    lambda_l1;
    seed = 1234;
    domains;
    snapshot_every;
    snapshot_dir;
    keep_snapshots = 3;
    max_retries = 3;
    journal;
  }

type epoch_stats = {
  epoch : int;
  g_adv : float;
  g_l1 : float;
  d_loss : float;
  batches : int;
}

(* Raised internally when the per-batch sentinel sees a non-finite loss or
   gradient norm; handled by rolling back to the last good snapshot. *)
exception Diverged of string * float

let chunks size xs =
  let rec go acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
      if count = size then go (List.rev current :: acc) [ x ] 1 rest
      else go acc (x :: current) (count + 1) rest
  in
  go [] [] 0 xs

let batch_tensors spec model (samples : Cbox_dataset.sample list) =
  let access = Cbox_dataset.batch_images spec (List.map (fun (s : Cbox_dataset.sample) -> s.access) samples) in
  let target = Cbox_dataset.batch_images spec (List.map (fun (s : Cbox_dataset.sample) -> s.target) samples) in
  let cp =
    if (Cbgan.model_config model).Cbgan.use_cache_params then
      Some (Cbgan.cache_params_tensor (List.map (fun (s : Cbox_dataset.sample) -> s.cache) samples))
    else None
  in
  (access, target, cp)

let scalar v = Tensor.get (Value.value v) 0

(* --- resilience layer ---------------------------------------------------

   A snapshot is the complete training state: parameters, batch-norm running
   stats, both Adam states (moments + step + lr), the PRNG state, the epoch
   permutation, the partial epoch-loss sums and the completed-epoch history.
   Restoring one and continuing is bit-identical to never having stopped.

   Snapshots live in two forms: an in-memory copy (always kept; the
   divergence sentinel rolls back to it) and an on-disk Checkpoint v2 file
   (when [snapshot_dir] is set; crash resume starts from the newest loadable
   one). *)

(* Mutable run position; everything here is captured in snapshots. *)
type run_state = {
  mutable epoch : int;  (* 1-based current epoch *)
  mutable done_in_epoch : int;  (* completed batches within [epoch] *)
  mutable global_batch : int;  (* completed batches across the run *)
  mutable retries : int;  (* divergence rollbacks so far (not snapshotted) *)
  mutable sum_g_adv : float;
  mutable sum_g_l1 : float;
  mutable sum_d : float;
  mutable order : int array;  (* sample permutation for [epoch] *)
  mutable history : epoch_stats list;  (* completed epochs, newest first *)
}

type mem_snapshot = {
  s_params : float array array;
  s_bn : float array array;
  s_g_opt : (string * float array) list;
  s_d_opt : (string * float array) list;
  s_prng : int64;
  s_epoch : int;
  s_done : int;
  s_global : int;
  s_sums : float * float * float;
  s_order : int array;
  s_history : epoch_stats list;
}

let snapshot_name global = Printf.sprintf "snap-%09d.ckpt" global

(* (global_batch, path) pairs, newest first. *)
let list_snapshots dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           if
             String.length f = 19
             && String.sub f 0 5 = "snap-"
             && Filename.check_suffix f ".ckpt"
           then
             Option.map (fun b -> (b, Filename.concat dir f)) (int_of_string_opt (String.sub f 5 9))
           else None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)

let flatten_history history =
  let per (s : epoch_stats) =
    [ float_of_int s.epoch; s.g_adv; s.g_l1; s.d_loss; float_of_int s.batches ]
  in
  Array.of_list (List.concat_map per (List.rev history))

let unflatten_history a =
  if Array.length a mod 5 <> 0 then
    failwith "Cbox_train: malformed train.history in snapshot";
  let n = Array.length a / 5 in
  List.init n (fun i ->
      {
        epoch = int_of_float a.((i * 5) + 0);
        g_adv = a.((i * 5) + 1);
        g_l1 = a.((i * 5) + 2);
        d_loss = a.((i * 5) + 3);
        batches = int_of_float a.((i * 5) + 4);
      })
  |> List.rev

(* Options that must agree between the snapshotting run and the resuming
   run for bit-identical continuation ([%h] is exact for floats). *)
let fingerprint options ~samples =
  Printf.sprintf "v2|%d|%d|%h|%h|%h|%d|%d" options.epochs options.batch_size options.lr
    options.beta1 options.lambda_l1 options.seed samples

let train_loop ~log ~resume model spec options samples =
  let samples_arr = Array.of_list samples in
  let n = Array.length samples_arr in
  let rng = Prng.create options.seed in
  let g_opt = Optimizer.adam ~lr:options.lr ~beta1:options.beta1 (Cbgan.generator_params model) in
  let d_opt = Optimizer.adam ~lr:options.lr ~beta1:options.beta1 (Cbgan.discriminator_params model) in
  let g_params = Cbgan.generator_params model in
  let all_params = g_params @ Cbgan.discriminator_params model in
  let bn = Cbgan.state model in
  let journal = Option.map Runlog.create options.journal in
  let jevent kind fields = Option.iter (fun j -> Runlog.event j kind fields) journal in
  let fp = fingerprint options ~samples:n in
  let st =
    {
      epoch = 1;
      done_in_epoch = 0;
      global_batch = 0;
      retries = 0;
      sum_g_adv = 0.0;
      sum_g_l1 = 0.0;
      sum_d = 0.0;
      order = [||];
      history = [];
    }
  in

  (* --- in-memory snapshots (divergence rollback) --- *)
  let capture () =
    {
      s_params = Array.of_list (List.map (fun p -> Tensor.to_array p.Param.value) all_params);
      s_bn = Array.of_list (List.map (fun (_, a) -> Array.copy a) bn);
      s_g_opt = Optimizer.state g_opt;
      s_d_opt = Optimizer.state d_opt;
      s_prng = Prng.state rng;
      s_epoch = st.epoch;
      s_done = st.done_in_epoch;
      s_global = st.global_batch;
      s_sums = (st.sum_g_adv, st.sum_g_l1, st.sum_d);
      s_order = Array.copy st.order;
      s_history = st.history;
    }
  in
  let restore_mem s =
    List.iteri
      (fun i p -> Array.iteri (fun j v -> Tensor.set p.Param.value j v) s.s_params.(i))
      all_params;
    List.iteri (fun i (_, live) -> Array.blit s.s_bn.(i) 0 live 0 (Array.length live)) bn;
    Optimizer.set_state g_opt s.s_g_opt;
    Optimizer.set_state d_opt s.s_d_opt;
    Prng.set_state rng s.s_prng;
    st.epoch <- s.s_epoch;
    st.done_in_epoch <- s.s_done;
    st.global_batch <- s.s_global;
    let a, b, c = s.s_sums in
    st.sum_g_adv <- a;
    st.sum_g_l1 <- b;
    st.sum_d <- c;
    st.order <- Array.copy s.s_order;
    st.history <- s.s_history
  in

  (* --- on-disk snapshots (crash resume) --- *)
  let snapshot_state () =
    bn
    @ List.map (fun (k, v) -> ("opt.g." ^ k, v)) (Optimizer.state g_opt)
    @ List.map (fun (k, v) -> ("opt.d." ^ k, v)) (Optimizer.state d_opt)
    @ [
        ( "train.pos",
          [|
            float_of_int st.epoch;
            float_of_int st.done_in_epoch;
            float_of_int st.global_batch;
          |] );
        ("train.sums", [| st.sum_g_adv; st.sum_g_l1; st.sum_d |]);
        ("train.order", Array.map float_of_int st.order);
        ("train.history", flatten_history st.history);
      ]
  in
  let write_snapshot dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (snapshot_name st.global_batch) in
    Checkpoint.save path
      ~meta:
        [
          ("schema", "cbox-train-snapshot/1");
          ("options", fp);
          ("prng", Int64.to_string (Prng.state rng));
        ]
      ~params:all_params ~state:(snapshot_state ());
    jevent "snapshot"
      [ ("path", Runlog.S path); ("epoch", Runlog.I st.epoch); ("batch", Runlog.I st.global_batch) ];
    (* Rotate: keep the newest [keep_snapshots] files. *)
    list_snapshots dir
    |> List.iteri (fun i (_, p) ->
           if i >= max 1 options.keep_snapshots then try Sys.remove p with Sys_error _ -> ())
  in
  let restore_disk (c : Checkpoint.container) =
    (match List.assoc_opt "options" (Checkpoint.meta c) with
    | Some fp' when fp' = fp -> ()
    | Some _ ->
      failwith
        "Cbox_train.train: snapshot was written with different training options or dataset; \
         refusing to resume"
    | None -> failwith "Cbox_train.train: snapshot has no options fingerprint");
    let req name =
      match Checkpoint.find_array c name with
      | Some a -> a
      | None -> failwith ("Cbox_train.train: snapshot missing " ^ name)
    in
    let pos = req "train.pos" in
    let sums = req "train.sums" in
    if Array.length pos <> 3 || Array.length sums <> 3 then
      failwith "Cbox_train.train: malformed snapshot position";
    let order = Array.map int_of_float (req "train.order") in
    if Array.length order <> n then
      failwith "Cbox_train.train: snapshot permutation does not match the dataset";
    let history = unflatten_history (req "train.history") in
    let g_state = Optimizer.state g_opt and d_state = Optimizer.state d_opt in
    Checkpoint.restore c ~params:all_params
      ~state:
        (bn
        @ List.map (fun (k, v) -> ("opt.g." ^ k, v)) g_state
        @ List.map (fun (k, v) -> ("opt.d." ^ k, v)) d_state);
    Optimizer.set_state g_opt g_state;
    Optimizer.set_state d_opt d_state;
    (match List.assoc_opt "prng" (Checkpoint.meta c) with
    | Some s -> Prng.set_state rng (Int64.of_string s)
    | None -> failwith "Cbox_train.train: snapshot has no PRNG state");
    st.epoch <- int_of_float pos.(0);
    st.done_in_epoch <- int_of_float pos.(1);
    st.global_batch <- int_of_float pos.(2);
    st.sum_g_adv <- sums.(0);
    st.sum_g_l1 <- sums.(1);
    st.sum_d <- sums.(2);
    st.order <- order;
    st.history <- history
  in
  let try_resume dir =
    let rec attempt = function
      | [] -> jevent "resume_fresh" [ ("dir", Runlog.S dir) ]
      | (_, path) :: rest -> (
        match Checkpoint.read path with
        | exception Failure msg ->
          (* A corrupt or truncated snapshot (e.g. the crash hit mid-write on
             a filesystem without atomic rename) falls back to the previous
             one; replaying from an older point is still bit-identical. *)
          jevent "snapshot_corrupt" [ ("path", Runlog.S path); ("error", Runlog.S msg) ];
          attempt rest
        | c ->
          restore_disk c;
          jevent "resume"
            [
              ("path", Runlog.S path);
              ("epoch", Runlog.I st.epoch);
              ("batch", Runlog.I st.global_batch);
            ];
          log
            (Printf.sprintf "resumed from %s (epoch %d, batch %d)" path st.epoch st.global_batch))
    in
    attempt (list_snapshots dir)
  in

  (* --- per-batch work with the divergence sentinel --- *)
  let check who v = if not (Float.is_finite v) then raise (Diverged (who, v)) in
  let process_batch batch ~bidx =
    let access, target, cp = batch_tensors spec model batch in
    let shape = Tensor.shape target in
    (* One generator forward serves both phases: the discriminator step
       sees a detached copy, the generator step reuses the live graph. *)
    let fake = Cbgan.generator_forward model ~rng ~training:true ?cache_params:cp access in
    let fake_detached = Tensor.copy (Value.value fake) in
    (* --- Discriminator step --- *)
    Optimizer.zero_grad d_opt;
    let d_real = Cbgan.discriminator_forward model ~training:true ~access ~miss:(Value.const target) in
    let d_fake = Cbgan.discriminator_forward model ~training:true ~access ~miss:(Value.const fake_detached) in
    let ones = Tensor.ones (Tensor.shape (Value.value d_real)) in
    let zeros = Tensor.zeros (Tensor.shape (Value.value d_fake)) in
    let loss_d =
      Value.scale
        (Value.add (Value.bce_with_logits d_real ones) (Value.bce_with_logits d_fake zeros))
        0.5
    in
    Value.backward loss_d;
    check "d_loss" (scalar loss_d);
    check "d_grad_norm" (Optimizer.grad_norm d_opt);
    Optimizer.step d_opt;
    (* --- Generator step --- *)
    Optimizer.zero_grad g_opt;
    Optimizer.zero_grad d_opt;
    let d_on_fake = Cbgan.discriminator_forward model ~training:true ~access ~miss:fake in
    let adv_target = Tensor.ones (Tensor.shape (Value.value d_on_fake)) in
    let adv = Value.bce_with_logits d_on_fake adv_target in
    let l1 = Value.l1_loss fake (Tensor.view target shape) in
    (* Miss heatmaps can be very sparse (a few hundred non-empty pixels
       in a 64x64 image); a plain mean L1 is then dominated by the empty
       background and the generator collapses to "no misses". Class-
       balance by adding an L1 term restricted to the non-empty target
       pixels, weighted by half the background/foreground pixel ratio —
       the weight vanishes on dense targets and grows with sparsity. *)
    let fg_mask = Tensor.map (fun v -> if v > -0.999 then 1.0 else 0.0) target in
    let fg_count = Tensor.sum fg_mask in
    let bg_count = float_of_int (Tensor.numel target) -. fg_count in
    let fg_weight = Float.min 8.0 (0.5 *. (bg_count /. Float.max 1.0 fg_count)) in
    let recon =
      if fg_weight < 0.05 then l1
      else begin
        let fg_target = Tensor.mul target fg_mask in
        let l1_fg = Value.l1_loss (Value.mul fake (Value.const fg_mask)) fg_target in
        Value.add l1 (Value.scale l1_fg fg_weight)
      end
    in
    let loss_g = Value.add adv (Value.scale recon options.lambda_l1) in
    Value.backward loss_g;
    Faultinject.poison_grads ~batch:bidx g_params;
    check "g_adv" (scalar adv);
    check "g_l1" (scalar l1);
    check "g_grad_norm" (Optimizer.grad_norm g_opt);
    Optimizer.step g_opt;
    (* The generator step leaked gradients into the discriminator's
       parameters; clear them so the next D step starts clean. *)
    Optimizer.zero_grad d_opt;
    st.sum_g_adv <- st.sum_g_adv +. scalar adv;
    st.sum_g_l1 <- st.sum_g_l1 +. scalar l1;
    st.sum_d <- st.sum_d +. scalar loss_d
  in

  (* --- driver --- *)
  let run () =
    jevent "run_start"
      [
        ("epochs", Runlog.I options.epochs);
        ("batch_size", Runlog.I options.batch_size);
        ("samples", Runlog.I n);
        ("resume", Runlog.B resume);
      ];
    (match (resume, options.snapshot_dir) with
    | true, Some dir -> try_resume dir
    | true, None -> invalid_arg "Cbox_train.train: ~resume:true requires snapshot_dir"
    | false, _ -> ());
    let good = ref (capture ()) in
    let take_snapshot () =
      good := capture ();
      Option.iter write_snapshot options.snapshot_dir
    in
    while st.epoch <= options.epochs do
      if st.done_in_epoch = 0 then begin
        st.order <- Array.init n Fun.id;
        Prng.shuffle rng st.order;
        st.sum_g_adv <- 0.0;
        st.sum_g_l1 <- 0.0;
        st.sum_d <- 0.0
      end;
      let shuffled = List.map (fun i -> samples_arr.(i)) (Array.to_list st.order) in
      let batches = Array.of_list (chunks options.batch_size shuffled) in
      let nb = Array.length batches in
      match
        while st.done_in_epoch < nb do
          let bidx = st.global_batch + 1 in
          process_batch batches.(st.done_in_epoch) ~bidx;
          st.done_in_epoch <- st.done_in_epoch + 1;
          st.global_batch <- bidx;
          (match options.snapshot_every with
          | Some k when k > 0 && st.global_batch mod k = 0 -> take_snapshot ()
          | _ -> ());
          Faultinject.kill_point ~batch:st.global_batch
        done
      with
      | () ->
        let nf = float_of_int (max 1 nb) in
        let stats =
          {
            epoch = st.epoch;
            g_adv = st.sum_g_adv /. nf;
            g_l1 = st.sum_g_l1 /. nf;
            d_loss = st.sum_d /. nf;
            batches = nb;
          }
        in
        log
          (Printf.sprintf "epoch %d/%d: G_adv %.4f G_L1 %.4f D %.4f (%d batches)" st.epoch
             options.epochs stats.g_adv stats.g_l1 stats.d_loss stats.batches);
        jevent "epoch_end"
          [
            ("epoch", Runlog.I st.epoch);
            ("g_adv", Runlog.F stats.g_adv);
            ("g_l1", Runlog.F stats.g_l1);
            ("d_loss", Runlog.F stats.d_loss);
            ("batches", Runlog.I nb);
          ];
        st.history <- stats :: st.history;
        st.epoch <- st.epoch + 1;
        st.done_in_epoch <- 0;
        (* Epoch boundaries are rollback points even with snapshotting off. *)
        good := capture ()
      | exception Diverged (who, v) ->
        jevent "divergence"
          [
            ("source", Runlog.S who);
            ("value", Runlog.F v);
            ("epoch", Runlog.I st.epoch);
            ("batch", Runlog.I (st.global_batch + 1));
            ("retries", Runlog.I st.retries);
          ];
        if st.retries >= options.max_retries then begin
          jevent "abort" [ ("reason", Runlog.S "divergence retries exhausted") ];
          failwith
            (Printf.sprintf
               "Cbox_train.train: %s diverged (%g) at batch %d; %d rollbacks exhausted" who v
               (st.global_batch + 1) st.retries)
        end;
        let r = st.retries + 1 in
        restore_mem !good;
        st.retries <- r;
        let new_lr = Optimizer.lr g_opt /. 2.0 in
        Optimizer.set_lr g_opt new_lr;
        Optimizer.set_lr d_opt (Optimizer.lr d_opt /. 2.0);
        jevent "rollback"
          [
            ("epoch", Runlog.I st.epoch);
            ("batch", Runlog.I st.global_batch);
            ("lr", Runlog.F new_lr);
            ("retries", Runlog.I r);
          ]
    done;
    jevent "run_end" [ ("epochs", Runlog.I options.epochs); ("batches", Runlog.I st.global_batch) ];
    List.rev st.history
  in
  Fun.protect ~finally:(fun () -> Option.iter Runlog.close journal) run

let train ?(log = fun _ -> ()) ?(resume = false) model spec options samples =
  if samples = [] then invalid_arg "Cbox_train.train: empty dataset";
  (* [domains] pins the Dpool lane count for the whole run, so every kernel
     under the step (gemm, conv, elementwise) runs data-parallel; [None]
     keeps the ambient CACHEBOX_DOMAINS / machine default. *)
  match options.domains with
  | Some d -> Dpool.with_domains d (fun () -> train_loop ~log ~resume model spec options samples)
  | None -> train_loop ~log ~resume model spec options samples
