type scale = {
  spec : Heatmap.spec;
  trace_len : int;
  hierarchy_trace_len : int;
  epochs : int;
  batch_size : int;
  ngf : int;
  ndf : int;
  lambda_l1 : float;
  train_cap : int;
  test_cap : int;
  seed : int;
}

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (try int_of_string v with Failure _ -> default)
  | None -> default

let default_scale () =
  let fast = Sys.getenv_opt "CACHEBOX_FAST" = Some "1" in
  let epochs = env_int "CACHEBOX_EPOCHS" (if fast then 1 else 2) in
  {
    spec = Heatmap.spec ();
    trace_len = (if fast then 8_000 else 16_000);
    hierarchy_trace_len = (if fast then 24_000 else 48_000);
    epochs;
    batch_size = 4;
    ngf = (if fast then 8 else 16);
    ndf = (if fast then 8 else 16);
    lambda_l1 = 150.0;
    train_cap = (if fast then 6 else 12);
    test_cap = (if fast then 6 else 10);
    seed = 42;
  }

(* --- cache configurations --- *)

let l1_64s12w = Cache.config ~sets:64 ~ways:12 ()

let train_configs =
  [
    l1_64s12w;
    Cache.config ~sets:128 ~ways:12 ();
    Cache.config ~sets:128 ~ways:6 ();
    Cache.config ~sets:128 ~ways:3 ();
  ]

let unseen_configs =
  [
    Cache.config ~sets:256 ~ways:6 ();
    Cache.config ~sets:256 ~ways:12 ();
    Cache.config ~sets:32 ~ways:12 ();
  ]

(* The paper's L2/L3 are 1024s8w / 2048s16w against billion-instruction
   traces; at repro-scale trace lengths those capacities never warm up, so
   the deeper levels are capacity-scaled (same ways, fewer sets) to keep the
   levels' filtering behaviour observable. Documented in EXPERIMENTS.md. *)
let l2_config = Cache.config ~sets:256 ~ways:8 ()
let l3_config = Cache.config ~sets:512 ~ways:16 ()

let hit_rate_threshold = function
  | Hierarchy.L1 -> 0.65
  | Hierarchy.L2 -> 0.40
  | Hierarchy.L3 -> 0.35

(* At repro-scale trace lengths the deeper levels cannot reach the paper's
   absolute hit-rate levels (tens of thousands of accesses barely warm a
   multi-hundred-KiB cache), so RQ4 applies the same exclusion *rule* with
   thresholds scaled to the observable L2/L3 hit-rate range. Documented in
   EXPERIMENTS.md. *)
let repro_hit_rate_threshold = function
  | Hierarchy.L1 -> 0.65
  | Hierarchy.L2 -> 0.04
  | Hierarchy.L3 -> 0.03

(* --- result shapes --- *)

type row = {
  benchmark : string;
  suite : Workload.suite;
  config_name : string;
  level : Hierarchy.level;
  truth : float;
  predicted : float;
}

let row_abs_pct r = Metrics.abs_pct_diff ~truth:r.truth ~predicted:r.predicted

type accuracy_result = {
  label : string;
  rows : row list;
  avg_abs_pct : float;
}

let summarize label rows =
  { label; rows; avg_abs_pct = Metrics.mean (List.map row_abs_pct rows) }

(* --- helpers --- *)

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n xs

(* Round-robin across suites so capped subsets stay mixed (RQ1 trains on
   batches mixing SPEC, Ligra and Polybench). *)
let mixed_take cap workloads =
  let by_suite suite = List.filter (fun w -> w.Workload.suite = suite) workloads in
  let queues = List.map by_suite [ Workload.Spec; Workload.Ligra; Workload.Polybench ] in
  let queues = List.filter (fun q -> q <> []) queues in
  let rec go acc n queues =
    if n >= cap || queues = [] then List.rev acc
    else
      let heads, tails =
        List.fold_left
          (fun (hs, ts) q ->
            match q with
            | x :: rest -> (x :: hs, if rest = [] then ts else rest :: ts)
            | [] -> (hs, ts))
          ([], []) queues
      in
      let heads = List.rev heads and tails = List.rev tails in
      let took = take (cap - n) heads in
      go (List.rev_append took acc) (n + List.length took) tails
  in
  go [] 0 queues

let spec_only workloads = List.filter (fun w -> w.Workload.suite = Workload.Spec) workloads

let filter_threshold ?(thresholds = hit_rate_threshold) data =
  List.filter
    (fun (d : Cbox_dataset.benchmark_data) ->
      d.true_hit_rate > thresholds d.level)
    data

let model_config scale ~use_cache_params ~disc_layers =
  let base = Cbgan.default_config ~image_size:scale.spec.Heatmap.height ~ngf:scale.ngf ~ndf:scale.ndf () in
  { base with Cbgan.use_cache_params; disc_layers }

let train_model ?(log = fun _ -> ()) scale ~use_cache_params ?(disc_layers = 2) data =
  let model = Cbgan.create ~seed:scale.seed (model_config scale ~use_cache_params ~disc_layers) in
  let samples = Cbox_dataset.to_samples data in
  let options =
    {
      (Cbox_train.default_options ~epochs:scale.epochs ~batch_size:scale.batch_size
         ~lambda_l1:scale.lambda_l1 ())
      with
      (* Higher than pix2pix's 2e-4: repro-scale runs see far fewer samples,
         and the sparse log-normalised targets tolerate the larger step. *)
      Cbox_train.lr = 1e-3;
      seed = scale.seed + 7;
    }
  in
  let _history = Cbox_train.train ~log model scale.spec options samples in
  model

let rows_of_predictions preds =
  List.map
    (fun (p : Cbox_infer.prediction) ->
      {
        benchmark = p.benchmark;
        suite =
          (try (Suite.find p.benchmark).Workload.suite with Not_found -> Workload.Spec);
        config_name = Cache.config_name p.cache;
        level = p.level;
        truth = p.true_hit_rate;
        predicted = p.predicted_hit_rate;
      })
    preds

(* --- resumable sweeps --- *)

(* Wraps one experiment driver in journal bookkeeping: a driver whose
   [driver_end] event is already in the journal is skipped, so an
   interrupted multi-hour sweep re-run with the same journal resumes at the
   first unfinished driver instead of retraining everything. *)
let run_driver ?journal ~name f =
  match journal with
  | None -> Some (f ())
  | Some j ->
    if List.mem name (Runlog.completed_drivers (Runlog.path j)) then None
    else begin
      Runlog.event j "driver_start" [ ("driver", Runlog.S name) ];
      let t0 = Unix.gettimeofday () in
      match f () with
      | result ->
        Runlog.event j "driver_end"
          [ ("driver", Runlog.S name); ("seconds", Runlog.F (Unix.gettimeofday () -. t0)) ];
        Some result
      | exception e ->
        Runlog.event j "driver_error"
          [ ("driver", Runlog.S name); ("error", Runlog.S (Printexc.to_string e)) ];
        raise e
    end

(* --- RQ1 --- *)

let rq1 ?(log = fun _ -> ()) scale =
  let split = Suite.split ~seed:scale.seed (Suite.all ()) in
  let train_ws = mixed_take scale.train_cap split.Suite.train in
  let test_ws = mixed_take scale.test_cap split.Suite.test in
  log (Printf.sprintf "RQ1: %d train, %d test benchmarks" (List.length train_ws) (List.length test_ws));
  let build ws = Cbox_dataset.build_l1 scale.spec ~configs:[ l1_64s12w ] ~trace_len:scale.trace_len ws in
  let train_data = filter_threshold (build train_ws) in
  let test_data = filter_threshold (build test_ws) in
  let model = train_model ~log scale ~use_cache_params:true train_data in
  let preds = Cbox_infer.predict_all model scale.spec test_data in
  summarize "RQ1 mixed suites, L1 64set-12way" (rows_of_predictions preds)

(* --- RQ2 / RQ3 / RQ5 / RQ6 share a model --- *)

type rq2_context = {
  model : Cbgan.t;
  scale : scale;
  test_workloads : Workload.t list;
}

let train_rq2_model ?(log = fun _ -> ()) scale =
  let split = Suite.split ~seed:scale.seed (Suite.all ()) in
  let train_ws = take scale.train_cap (spec_only split.Suite.train) in
  let test_ws = take scale.test_cap (spec_only split.Suite.test) in
  log (Printf.sprintf "RQ2: %d train, %d test SPEC benchmarks x 4 configs" (List.length train_ws) (List.length test_ws));
  let train_data =
    filter_threshold
      (Cbox_dataset.build_l1 scale.spec ~configs:train_configs ~trace_len:scale.trace_len train_ws)
  in
  let model = train_model ~log scale ~use_cache_params:true train_data in
  { model; scale; test_workloads = test_ws }

let eval_configs ?(log = fun _ -> ()) ctx configs =
  List.map
    (fun cfg ->
      let data =
        filter_threshold
          (Cbox_dataset.build_l1 ctx.scale.spec ~configs:[ cfg ]
             ~trace_len:ctx.scale.trace_len ctx.test_workloads)
      in
      let preds = Cbox_infer.predict_all ctx.model ctx.scale.spec data in
      let result = summarize (Cache.config_name cfg) (rows_of_predictions preds) in
      log (Printf.sprintf "  %s: avg abs %%diff %.2f" result.label result.avg_abs_pct);
      result)
    configs

let rq2 ?log ctx = eval_configs ?log ctx train_configs
let rq3 ?log ctx = eval_configs ?log ctx unseen_configs

(* --- RQ4 --- *)

type rq4_result = {
  combined : accuracy_result list;
  standalone : accuracy_result list;
  excluded : (string * Hierarchy.level) list;
}

let rq4 ?(log = fun _ -> ()) scale =
  let split = Suite.split ~seed:scale.seed (Suite.all ()) in
  let train_ws = take scale.train_cap (spec_only split.Suite.train) in
  let test_ws = take scale.test_cap (spec_only split.Suite.test) in
  let build ws =
    Cbox_dataset.build_hierarchy scale.spec ~l1:l1_64s12w ~l2:l2_config ~l3:l3_config
      ~trace_len:scale.hierarchy_trace_len ws
  in
  let train_all = build train_ws in
  let test_all = build test_ws in
  let excluded =
    List.filter_map
      (fun (d : Cbox_dataset.benchmark_data) ->
        if d.true_hit_rate > repro_hit_rate_threshold d.level then None
        else Some (d.workload.Workload.name, d.level))
      test_all
  in
  let train_data = filter_threshold ~thresholds:repro_hit_rate_threshold train_all in
  let test_data = filter_threshold ~thresholds:repro_hit_rate_threshold test_all in
  let of_level lvl data = List.filter (fun (d : Cbox_dataset.benchmark_data) -> d.level = lvl) data in
  let levels = [ Hierarchy.L1; Hierarchy.L2; Hierarchy.L3 ] in
  (* Combined model: all levels together, no cache parameters (paper §5.4),
     larger discriminator. *)
  log "RQ4: training combined L1+L2+L3 model (no cache parameters)";
  let combined_model = train_model ~log scale ~use_cache_params:false ~disc_layers:3 train_data in
  let combined =
    List.map
      (fun lvl ->
        let preds = Cbox_infer.predict_all combined_model scale.spec (of_level lvl test_data) in
        summarize ("combined " ^ Hierarchy.level_name lvl) (rows_of_predictions preds))
      levels
  in
  (* Standalone models per level, with cache parameters. *)
  let standalone =
    List.map
      (fun lvl ->
        log (Printf.sprintf "RQ4: training standalone %s model" (Hierarchy.level_name lvl));
        let model =
          train_model ~log scale ~use_cache_params:true ~disc_layers:3 (of_level lvl train_data)
        in
        let preds = Cbox_infer.predict_all model scale.spec (of_level lvl test_data) in
        summarize ("standalone " ^ Hierarchy.level_name lvl) (rows_of_predictions preds))
      levels
  in
  { combined; standalone; excluded }

(* --- RQ5 --- *)

type rq5_point = { batch_size : int; seconds : float; speedup_vs_b1 : float }

type rq5_result = {
  points : rq5_point list;
  multicachesim_seconds : float;
}

let rq5 ?(log = fun _ -> ()) ctx =
  let scale = ctx.scale in
  let data =
    Cbox_dataset.build_l1 scale.spec ~configs:[ l1_64s12w ] ~trace_len:scale.trace_len
      ctx.test_workloads
  in
  let image_sets = List.map (fun (d : Cbox_dataset.benchmark_data) -> List.map fst d.pairs) data in
  let time_once batch_size =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun imgs ->
        ignore (Cbox_infer.synthesize ctx.model scale.spec ~batch_size ~cache:l1_64s12w imgs))
      image_sets;
    (Unix.gettimeofday () -. t0) /. float_of_int (List.length image_sets)
  in
  let batch_sizes = [ 1; 2; 4; 8; 16; 32 ] in
  let timings = List.map (fun b ->
      let s = time_once b in
      log (Printf.sprintf "  batch %2d: %.3fs per benchmark" b s);
      (b, s))
      batch_sizes
  in
  let b1 = List.assoc 1 timings in
  let points =
    List.map (fun (batch_size, seconds) -> { batch_size; seconds; speedup_vs_b1 = b1 /. seconds }) timings
  in
  (* MultiCacheSim on the same traces. *)
  let traces = List.map (fun w -> w.Workload.generate scale.trace_len) ctx.test_workloads in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun trace ->
      let m = Multicachesim.create ~sets:64 ~ways:12 ~block_bytes:64 in
      ignore (Multicachesim.run m trace))
    traces;
  let mcs = (Unix.gettimeofday () -. t0) /. float_of_int (List.length traces) in
  { points; multicachesim_seconds = mcs }

(* --- RQ6 --- *)

let rq6 ?log ctx =
  let results = eval_configs ?log ctx train_configs in
  List.concat_map (fun r -> r.rows) results

(* --- RQ7 --- *)

type rq7_row = { benchmark : string; mse : float; ssim : float }

type rq7_result = {
  rows : rq7_row list;
  avg_mse : float;
  avg_ssim : float;
}

let rq7 ?(log = fun _ -> ()) scale =
  let split = Suite.split ~seed:scale.seed (Suite.all ()) in
  let train_ws = take scale.train_cap (spec_only split.Suite.train) in
  let test_ws = take scale.test_cap (spec_only split.Suite.test) in
  let build ws =
    Cbox_dataset.build_prefetch scale.spec ~config:l1_64s12w ~kind:Prefetch.Next_line
      ~trace_len:scale.trace_len ws
  in
  log "RQ7: training prefetch model (next-line, L1 64set-12way)";
  let model = train_model ~log scale ~use_cache_params:true (build train_ws) in
  let window = float_of_int scale.spec.Heatmap.window in
  let unit_scale img = Tensor.scale img (1.0 /. window) in
  let rows =
    List.map
      (fun (d : Cbox_dataset.benchmark_data) ->
        let access = List.map fst d.pairs and real = List.map snd d.pairs in
        let synthetic = Cbox_infer.synthesize model scale.spec ~cache:d.cache access in
        let per_image =
          List.map2
            (fun r s -> (Metrics.mse (unit_scale r) (unit_scale s), Metrics.ssim r s))
            real synthetic
        in
        {
          benchmark = d.workload.Workload.name;
          mse = Metrics.mean (List.map fst per_image);
          ssim = Metrics.mean (List.map snd per_image);
        })
      (build test_ws)
  in
  {
    rows;
    avg_mse = Metrics.mean (List.map (fun r -> r.mse) rows);
    avg_ssim = Metrics.mean (List.map (fun r -> r.ssim) rows);
  }

(* --- Fig 14 --- *)

let fig14 scale =
  let spec_ws = Array.of_list (Suite.of_suite Workload.Spec) in
  (* Workload generation is self-seeded from the name, so each lane's rates
     match the serial sweep bit-for-bit at any domain count. *)
  let rates =
    Dpool.parallel_map_array
      (fun w ->
        let trace = w.Workload.generate scale.trace_len in
        let cache = Cache.create l1_64s12w in
        Array.iter (fun a -> ignore (Cache.access cache a)) trace;
        Cache.hit_rate (Cache.stats cache))
      spec_ws
  in
  Metrics.histogram ~bins:20 ~lo:0.0 ~hi:1.0 (Array.to_list rates)

(* --- Table 1 --- *)

type table1_row = {
  app : string;
  tab_base : float;
  tab_rd : float;
  tab_ic : float;
  hrd : float;
  stm : float;
  cbox_best : float;
  cbox_worst : float;
  cbox_avg : float;
}

let table1 ?(log = fun _ -> ()) scale =
  let apps = Synth.table1_apps in
  let all_spec = Suite.of_suite Workload.Spec in
  let is_app w = List.mem w.Workload.group apps in
  let train_ws = take scale.train_cap (List.filter (fun w -> not (is_app w)) all_spec) in
  let test_ws = List.filter is_app all_spec in
  log (Printf.sprintf "Table 1: CBox trained on %d SPEC benchmarks; evaluating 5 apps x phases" (List.length train_ws));
  let build ws = Cbox_dataset.build_l1 scale.spec ~configs:[ l1_64s12w ] ~trace_len:scale.trace_len ws in
  let model = train_model ~log scale ~use_cache_params:true (filter_threshold (build train_ws)) in
  let test_data = build test_ws in
  List.map
    (fun app ->
      let phases =
        List.filter
          (fun (d : Cbox_dataset.benchmark_data) -> d.workload.Workload.group = app)
          test_data
      in
      let diffs_of predictor =
        Metrics.mean
          (List.map
             (fun (d : Cbox_dataset.benchmark_data) ->
               let trace = d.workload.Workload.generate scale.trace_len in
               Metrics.abs_pct_diff ~truth:d.true_hit_rate ~predicted:(predictor trace))
             phases)
      in
      let cbox_diffs =
        List.map
          (fun d ->
            let p = Cbox_infer.predict model scale.spec d in
            Cbox_infer.abs_pct_diff p)
          phases
      in
      let short =
        match String.index_opt app '.' with
        | Some i -> String.sub app 0 i
        | None -> app
      in
      log (Printf.sprintf "  app %s (%d phases)" short (List.length phases));
      {
        app = short;
        tab_base = diffs_of (fun t -> Tabsynth.predict ~variant:Tabsynth.Base l1_64s12w t);
        tab_rd = diffs_of (fun t -> Tabsynth.predict ~variant:Tabsynth.Rd l1_64s12w t);
        tab_ic = diffs_of (fun t -> Tabsynth.predict ~variant:Tabsynth.Ic l1_64s12w t);
        hrd = diffs_of (fun t -> Hrd.predict_l1 l1_64s12w t);
        stm = diffs_of (fun t -> Stm.predict l1_64s12w t);
        cbox_best = List.fold_left Float.min Float.infinity cbox_diffs;
        cbox_worst = List.fold_left Float.max Float.neg_infinity cbox_diffs;
        cbox_avg = Metrics.mean cbox_diffs;
      })
    apps

(* --- Ablations --- *)

let rq1_with scale ~log =
  let split = Suite.split ~seed:scale.seed (Suite.all ()) in
  let train_ws = mixed_take scale.train_cap split.Suite.train in
  let test_ws = mixed_take scale.test_cap split.Suite.test in
  let build ws = Cbox_dataset.build_l1 scale.spec ~configs:[ l1_64s12w ] ~trace_len:scale.trace_len ws in
  let train_data = filter_threshold (build train_ws) in
  let test_data = filter_threshold (build test_ws) in
  let model = train_model ~log scale ~use_cache_params:true train_data in
  let preds = Cbox_infer.predict_all model scale.spec test_data in
  rows_of_predictions preds

let ablate_lambda ?(log = fun _ -> ()) scale =
  List.map
    (fun lambda ->
      log (Printf.sprintf "ablation: lambda = %.0f" lambda);
      let rows = rq1_with { scale with lambda_l1 = lambda } ~log in
      (lambda, summarize (Printf.sprintf "lambda=%.0f" lambda) rows))
    [ 0.0; 50.0; 150.0 ]

let ablate_overlap ?(log = fun _ -> ()) scale =
  List.map
    (fun overlap ->
      log (Printf.sprintf "ablation: overlap = %.0f%%" (overlap *. 100.0));
      let spec =
        Heatmap.spec ~height:scale.spec.Heatmap.height ~width:scale.spec.Heatmap.width
          ~window:scale.spec.Heatmap.window ~overlap
          ~granularity:scale.spec.Heatmap.granularity ()
      in
      let rows = rq1_with { scale with spec } ~log in
      (overlap, summarize (Printf.sprintf "overlap=%.0f%%" (overlap *. 100.0)) rows))
    [ 0.0; 0.3 ]

let ablate_cache_params ?(log = fun _ -> ()) scale =
  let split = Suite.split ~seed:scale.seed (Suite.all ()) in
  let train_ws = take scale.train_cap (spec_only split.Suite.train) in
  let test_ws = take scale.test_cap (spec_only split.Suite.test) in
  let train_data =
    filter_threshold
      (Cbox_dataset.build_l1 scale.spec ~configs:train_configs ~trace_len:scale.trace_len train_ws)
  in
  let test_data =
    filter_threshold
      (Cbox_dataset.build_l1 scale.spec ~configs:train_configs ~trace_len:scale.trace_len test_ws)
  in
  List.map
    (fun use_cache_params ->
      log (Printf.sprintf "ablation: cache params %s" (if use_cache_params then "on" else "off"));
      let model = train_model ~log scale ~use_cache_params train_data in
      let preds = Cbox_infer.predict_all model scale.spec test_data in
      ( use_cache_params,
        summarize
          (if use_cache_params then "with cache params" else "without cache params")
          (rows_of_predictions preds) ))
    [ true; false ]
