(** Serving benchmarks: per-request inference (batch 1) vs dynamic
    micro-batching through the wide-batch conv lowering.

    Measures the {e real} service time of single requests and coalesced
    batches on the serving model hot path ({!Cbox_infer.synthesize_group})
    — keeping every repetition's sample, so the replayed latency
    distribution has genuine spread (p50 and p99 differ) — then replays a
    deterministic closed-loop simulation — C logical
    clients, each reissuing on completion, a server flushing batches of up
    to 64 with a 5 ms linger — to report throughput and p50/p99 latency
    per concurrency level (1, 64 and 1024 clients, no real sockets
    needed). Also asserts the batched outputs match the sequential batch-1
    outputs exactly ({!result.max_abs_diff} is 0 when bit-identical).

    This is the code path behind [cachebox bench --suite serve]; CI gates
    the measured speedups against the committed [BENCH_SERVE.json]. *)

type mode_stats = {
  throughput_rps : float;
  p50_ms : float;
  p99_ms : float;
  total_s : float;  (** virtual seconds to serve the whole closed-loop run *)
}

type result = {
  name : string;  (** ["serve_c<clients>"] *)
  domains : int;
  clients : int;
  batch1 : mode_stats;
  dynamic : mode_stats;
  speedup : float;  (** dynamic throughput over batch-1 throughput *)
  max_abs_diff : float;
      (** largest |batched - sequential| over every synthetic heatmap
          element; 0.0 means bit-identical *)
}

val concurrency_levels : int list
(** [1; 64; 1024]. *)

val run : ?fast:bool -> ?log:(string -> unit) -> unit -> result list
(** Runs the suite. [fast] (default: [CACHEBOX_FAST] set) shrinks
    repetitions and rounds; [log] receives a progress line per step. *)

val to_kbench : result list -> Kbench.result list
(** Projection onto the kernel-benchmark schema ([ref_s] = batch-1 total,
    [tiled_s] = dynamic total, [max_rel_err] = [max_abs_diff]) so the CLI
    table and the [--baseline] perf gate are shared with the other
    suites. *)

val to_json : result list -> string
(** The [BENCH_SERVE.json] document: the {!to_kbench} fields per row plus
    [clients] and per-mode [*_rps]/[*_p50_ms]/[*_p99_ms]. The gate only
    reads (name, domains, speedup), so the extra fields are inert there. *)

val write_json : path:string -> result list -> unit
val pp_table : Format.formatter -> result list -> unit
