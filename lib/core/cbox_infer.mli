(** CB-GAN inference: synthetic miss heatmaps and predicted hit rates
    (paper §3.2.4, §4.4).

    Inference is batched: a benchmark's access heatmaps are grouped into
    batches of a configurable size and pushed through the generator in eval
    mode (no dropout; batch statistics, as pix2pix does). Larger batches
    amortise per-call overheads — the mechanism behind RQ5. *)

type prediction = {
  benchmark : string;
  cache : Cache.config;
  level : Hierarchy.level;
  true_hit_rate : float;
  predicted_hit_rate : float;
  synthetic : Tensor.t list;  (** denormalised synthetic miss heatmaps *)
}

val synthesize :
  Cbgan.t ->
  Heatmap.spec ->
  ?batch_size:int ->
  ?domains:int ->
  cache:Cache.config ->
  Tensor.t list ->
  Tensor.t list
(** Raw pipeline: access heatmaps in, denormalised synthetic miss heatmaps
    out (order preserved). Default batch size 8. When [domains] (default
    {!Dpool.recommended}) exceeds 1, batches are scored on separate domains
    — sample results are independent because inference batch-norm uses
    running statistics, so the parallel and serial paths agree exactly. *)

val synthesize_group :
  Cbgan.t ->
  Heatmap.spec ->
  ?batch_size:int ->
  ?domains:int ->
  (Cache.config * Tensor.t list) list ->
  Tensor.t list list
(** Cross-request batching: each item is one request's (cache geometry,
    access heatmaps); ALL windows of ALL items are flattened into shared
    forward passes — the conditioning tensor carries one row per sample, so
    requests with different geometries batch together. Returns one synthetic
    list per item, order preserved. Because inference batch-norm uses running
    statistics, outputs are bit-identical to calling {!synthesize} per item
    (asserted by the serve-batch suite); only the speed differs. *)

val qsynthesize :
  Qgen.t ->
  Heatmap.spec ->
  ?batch_size:int ->
  ?domains:int ->
  cache:Cache.config ->
  Tensor.t list ->
  Tensor.t list
(** {!synthesize} on the int8-quantized generator: same batching, same
    output shape, deterministic and bit-identical at any domain count. *)

val qsynthesize_group :
  Qgen.t ->
  Heatmap.spec ->
  ?batch_size:int ->
  ?domains:int ->
  (Cache.config * Tensor.t list) list ->
  Tensor.t list list
(** {!synthesize_group} on the int8-quantized generator. Quantized GEMMs are
    stateless per sample, so cross-request batching is again bit-identical to
    per-item scoring. *)

val ssynthesize :
  Student.t ->
  Heatmap.spec ->
  ?batch_size:int ->
  ?domains:int ->
  cache:Cache.config ->
  Tensor.t list ->
  Tensor.t list
(** {!synthesize} on a distilled {!Student} generator: deterministic (no
    dropout), bit-identical at any domain count. *)

val ssynthesize_group :
  Student.t ->
  Heatmap.spec ->
  ?batch_size:int ->
  ?domains:int ->
  (Cache.config * Tensor.t list) list ->
  Tensor.t list list
(** {!synthesize_group} on a distilled {!Student} generator. *)

val predict_hit_rate :
  Cbgan.t ->
  Heatmap.spec ->
  ?batch_size:int ->
  ?domains:int ->
  cache:Cache.config ->
  Tensor.t list ->
  float
(** Raw (unclamped) predicted hit rate from a list of access heatmaps: the
    serving path's entry point. The result may be NaN or out of [0, 1] when
    the model misbehaves — callers that serve the value must gate it through
    {!validate_hit_rate}. *)

val validate_hit_rate : ?lo:float -> ?hi:float -> float -> (float, string) result
(** Validity gate for a raw model prediction: NaN, infinities and values
    outside the grace range [\[lo, hi\]] (default [\[-0.25, 1.25\]] — mild
    overshoot is normal for a regression-through-GAN, gross excursions mean
    the model can't be trusted) are rejected with a reason; accepted values
    are clamped to [\[0, 1\]]. *)

(** {1 Backend registry}

    Serving can answer one request on any of six interchangeable backends:
    the float32 learned model (reference), its int8 quantization (fast,
    bounded error), the distilled student (smaller U-Net, faster still),
    the student's int8 quantization (the two wins compose), or the two
    analytical baselines. Requests select one via the wire-level ["backend"]
    field; the server falls from each learned variant back to float32 when
    the underlying model is unavailable or faults. *)

type backend =
  | Backend_float32
  | Backend_int8
  | Backend_student
  | Backend_student_int8
  | Backend_hrd
  | Backend_stm

val backend_name : backend -> string
val backend_of_string : string -> backend option
(** ["float32" | "int8" | "student" | "student-int8" | "hrd" | "stm"]. *)

(** {1 Analytical fallbacks}

    When the learned model is unavailable or untrusted, serving degrades to
    the analytical baselines (TAO-style hybrid design): same request, same
    answer shape, no learned component. *)

type fallback = No_fallback | Fallback_hrd | Fallback_stm

val fallback_name : fallback -> string
val fallback_of_string : string -> fallback option
(** ["none" | "hrd" | "stm"]. *)

val baseline_hit_rate : fallback -> Cache.config -> int array -> float option
(** Deterministic analytical prediction for the trace under the config
    ([None] for {!No_fallback}). HRD profiles reuse distances; STM clones
    and re-simulates. Both are bounded to [\[0, 1\]] by construction. *)

val predict :
  Cbgan.t -> Heatmap.spec -> ?batch_size:int -> Cbox_dataset.benchmark_data -> prediction
(** Full per-benchmark prediction, including the de-overlapped hit-rate
    computation against the real access heatmaps. *)

val predict_all :
  Cbgan.t ->
  Heatmap.spec ->
  ?batch_size:int ->
  Cbox_dataset.benchmark_data list ->
  prediction list

val qpredict :
  Qgen.t -> Heatmap.spec -> ?batch_size:int -> Cbox_dataset.benchmark_data -> prediction
(** {!predict} on the int8-quantized generator (same de-overlapped hit-rate
    computation, quantized forward). *)

val spredict :
  Student.t -> Heatmap.spec -> ?batch_size:int -> Cbox_dataset.benchmark_data -> prediction
(** {!predict} on a distilled student generator. *)

val abs_pct_diff : prediction -> float
(** |true - predicted| hit rate, in percentage points. *)
