(** Dataset-pipeline benchmarks: seed recorded path vs streaming builders.

    The reference side replicates the dataset pipeline exactly as it first
    shipped (recorded per-level traces, full decode, heatmaps cut from
    arrays in a second pass, the original positional cache scans); the
    production side is {!Cbox_dataset}'s streaming + parallel + cached
    builders. Results reuse the {!Kbench.result} record and JSON schema, so
    [cachebox bench --suite dataset] gates them against the committed
    [BENCH_DATASET.json] exactly like the kernel job.

    Benchmarks: [build_hierarchy] cold at 1 and 4 domains, [build_hierarchy]
    warm against a primed {!Simcache} (a throwaway temp directory, removed
    afterwards), and [build_l1] cold. Every row cross-checks outputs:
    [max_rel_err] must be 0 — the streaming path is an exact optimization. *)

val run : ?fast:bool -> ?log:(string -> unit) -> unit -> Kbench.result list
(** [fast] (default: [CACHEBOX_FAST] set) shrinks trace lengths for smoke
    runs; [log] receives a progress line per benchmark. *)
