(** Append-only JSONL run journal.

    One JSON object per line, flushed per event: [{"ts": <unix seconds>,
    "event": "<kind>", ...fields}]. The training loop journals snapshots,
    divergence trips, rollbacks and resumes; experiment drivers journal
    [driver_start]/[driver_end] pairs so an interrupted RQ sweep can skip
    already-completed drivers on the next run. *)

type value = S of string | I of int | F of float | B of bool

type t

val create : string -> t
(** Opens (appending, creating if absent) a journal at the given path. *)

val path : t -> string

val event : t -> string -> (string * value) list -> unit
(** Appends one event line and flushes. A timestamp and the event kind are
    added automatically. *)

val close : t -> unit

val with_journal : string -> (t -> 'a) -> 'a
(** [create]/[close] bracket. *)

(** {1 Read-back} *)

val events : ?kind:string -> string -> string list
(** Raw journal lines, optionally filtered to one event kind. An absent file
    reads as empty. *)

val field : string -> string -> string option
(** [field line key] extracts the string value of ["key"] from a journal
    line written by this module. *)

val completed_drivers : string -> string list
(** Driver names with a [driver_end] event in the journal, in order. *)
