(* Post-training int8 quantization helpers.

   The scheme is symmetric (zero-point 0) everywhere: weights carry one
   scale per output row (per-channel for convolutions, whose im2col-lowered
   weight matrix has one row per output channel), activations one scale per
   tensor, observed on a calibration batch. Scales can optionally be
   rounded up to the next power of two — a power-of-two scale makes the
   dequant multiplier exactly representable, which keeps serialized models
   bit-identical across platforms at a worst-case cost of one extra bit of
   quantization error.

   The actual packing and integer kernel live in {!Blas.Int8}; this module
   owns the policy (scales, observers) and the canonical serialized form
   (row-major signed bytes + float64 scales, stored through the v3
   checkpoint container so quantized models load without float originals). *)

let amax t =
  let d = t.Tensor.data in
  let n = Tensor.numel t in
  let m = ref 0.0 in
  for i = 0 to n - 1 do
    let v = Float.abs (Bigarray.Array1.unsafe_get d i) in
    if v > !m then m := v
  done;
  !m

let scale_of_amax ?(pow2 = false) a =
  let s = if a <= 0.0 || not (Float.is_finite a) then 1.0 else a /. 127.0 in
  if pow2 then Blas.Int8.pow2_up s else s

(* A running per-tensor range observer: feed it every calibration activation
   that will flow into one quantized GEMM, then read the scale once. *)
type observer = { mutable obs_amax : float }

let observer () = { obs_amax = 0.0 }

let observe o t =
  let a = amax t in
  if a > o.obs_amax then o.obs_amax <- a

let observe_array o arr =
  Array.iter
    (fun v ->
      let a = Float.abs v in
      if a > o.obs_amax then o.obs_amax <- a)
    arr

let observed_scale ?pow2 o = scale_of_amax ?pow2 o.obs_amax

(* --- canonical serialized form --- *)

(* Row-major signed bytes of a packed weight, read back through the panel
   layout: the quantized artifact stores these bytes (not floats), and
   [of_bytes] repacks them on load. *)
let bytes_of_qweight qw =
  let m = Blas.Int8.rows qw and k = Blas.Int8.cols qw in
  String.init (m * k) (fun idx ->
      let q = Blas.Int8.get_q qw ~i:(idx / k) ~p:(idx mod k) in
      Char.chr (q land 0xFF))

let qweight_of_bytes ~m ~k ~scales ?bias bytes =
  if String.length bytes <> m * k then invalid_arg "Quant.qweight_of_bytes: size";
  Blas.Int8.pack ~m ~k ~scales ?bias
    ~get:(fun i p ->
      let v = Char.code (String.unsafe_get bytes ((i * k) + p)) in
      if v > 127 then v - 256 else v)
    ()

(* Checkpoint-section naming convention for one quantized GEMM operand:
   <prefix>.q (I8 bytes, dims [m; k]), <prefix>.scales (F64 [m]),
   <prefix>.bias (F64 [m], optional), <prefix>.act (F64 [1]). *)
let entries_of_qweight ~prefix ~act_scale qw =
  let m = Blas.Int8.rows qw and k = Blas.Int8.cols qw in
  let base =
    [
      (prefix ^ ".q", [| m; k |], Checkpoint.I8 (bytes_of_qweight qw));
      (prefix ^ ".scales", [| m |], Checkpoint.F64 (Blas.Int8.scales qw));
      (prefix ^ ".act", [| 1 |], Checkpoint.F64 [| act_scale |]);
    ]
  in
  match Blas.Int8.bias qw with
  | None -> base
  | Some b -> base @ [ (prefix ^ ".bias", [| m |], Checkpoint.F64 (Array.copy b)) ]

let qweight_of_container c ~prefix =
  let miss what = failwith ("Quant.load: missing " ^ prefix ^ "." ^ what) in
  let q_dims, q_pay =
    match Checkpoint.find_payload c (prefix ^ ".q") with
    | Some e -> e
    | None -> miss "q"
  in
  let bytes =
    match q_pay with
    | Checkpoint.I8 b -> b
    | Checkpoint.F64 _ -> failwith ("Quant.load: " ^ prefix ^ ".q is not int8")
  in
  let m, k =
    match q_dims with
    | [| m; k |] -> (m, k)
    | _ -> failwith ("Quant.load: " ^ prefix ^ ".q is not 2-D")
  in
  let scales =
    match Checkpoint.find_array c (prefix ^ ".scales") with
    | Some s when Array.length s = m -> s
    | Some _ -> failwith ("Quant.load: scale length mismatch for " ^ prefix)
    | None -> miss "scales"
  in
  let act_scale =
    match Checkpoint.find_array c (prefix ^ ".act") with
    | Some [| s |] -> s
    | Some _ -> failwith ("Quant.load: bad act scale for " ^ prefix)
    | None -> miss "act"
  in
  let bias =
    match Checkpoint.find_array c (prefix ^ ".bias") with
    | Some b when Array.length b = m -> Some b
    | Some _ -> failwith ("Quant.load: bias length mismatch for " ^ prefix)
    | None -> None
  in
  (qweight_of_bytes ~m ~k ~scales ?bias bytes, act_scale)
