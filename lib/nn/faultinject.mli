(** Deterministic fault injection for crash/divergence recovery tests.

    One global fault can be armed at a 1-based global batch index. The
    training loop consults {!kill_point} and {!poison_grads} at fixed points;
    an armed fault fires exactly once and disarms itself, so a rolled-back or
    resumed run passes the injection point cleanly. With nothing armed the
    hooks are a single integer comparison. *)

type fault =
  | Kill  (** raise {!Killed} after the batch completes (simulated crash) *)
  | Nan_grad  (** overwrite one gradient element with NaN before the step *)

exception Killed of int
(** Raised by {!kill_point} with the batch index; simulates the process
    dying mid-run (no state beyond already-written snapshots survives). *)

val arm : fault -> at_batch:int -> unit
(** Arms [fault] to fire at the given global batch (counted from 1 across
    the whole run). Replaces any previously armed fault. *)

val disarm : unit -> unit
(** Clears any armed fault (tests should call this in cleanup). *)

val kill_point : batch:int -> unit
(** Raises [Killed batch] iff [Kill] is armed for exactly this batch. *)

val poison_grads : batch:int -> Param.t list -> unit
(** If [Nan_grad] is armed for exactly this batch, sets the first gradient
    element of the first parameter to NaN. *)

val corrupt_byte : string -> offset:int -> unit
(** Flips all bits of one byte of a file in place ([offset] is taken modulo
    the file length), for checkpoint-corruption tests. *)
