(** Deterministic fault injection for crash/divergence/serving tests.

    One global fault can be armed at a 1-based global index — a training
    batch for the training hooks, a request ordinal for the serving hooks;
    both are monotonic, and the fault fires on the first [count] hook calls
    whose index has reached the arm point, then disarms itself, so a
    rolled-back, resumed or retried run passes the injection point cleanly.
    With nothing armed every hook is a single integer comparison. *)

type fault =
  | Kill  (** raise {!Killed} after the batch completes (simulated crash) *)
  | Nan_grad  (** overwrite one gradient element with NaN before the step *)
  | Slow of float
      (** stall the model inference path for the given seconds (simulated
          overloaded/slow model, for deadline tests) *)
  | Nan_output  (** overwrite one model-output element with NaN *)
  | Corrupt_checkpoint
      (** make the model path fail as if its checkpoint went unreadable *)
  | Crash_backend
      (** die abruptly ([_exit], no cleanup, socket closed mid-response) at
          the serving crash point — exercises router retry/ejection paths *)
  | Hang of float
      (** stall the serving path for the given seconds without answering
          (accept-then-stall: the process stays alive and connectable, so
          only hedged timeouts — not connect failures — can route around
          it) *)

exception Killed of int
(** Raised by {!kill_point} with the batch index; simulates the process
    dying mid-run (no state beyond already-written snapshots survives). *)

val arm : ?count:int -> fault -> at_batch:int -> unit
(** Arms [fault] to fire on the first [count] (default 1) hook calls at or
    after the given global index. Replaces any previously armed fault.
    [count > 1] drives consecutive-fault scenarios (circuit breakers). *)

val disarm : unit -> unit
(** Clears any armed fault (tests should call this in cleanup). *)

val arm_from_env : ?var:string -> unit -> bool
(** Arms a fault described by the [CACHEBOX_FAULT] environment variable
    (override the name with [var]); returns whether anything was armed.
    Syntax ["fault[:param][@at[xcount]]"], e.g. ["slow:0.05@3x2"] arms
    [Slow 0.05] at request 3 for 2 shots; fault names are [kill],
    [nan_grad], [slow], [nan_output], [corrupt_checkpoint],
    [crash_backend], [hang] (optional [:secs], default 3600). Lets the
    concurrency stress script arm a fault inside the daemon process it
    spawns. Raises [Invalid_argument] on an unknown fault name. *)

(** {1 Training hooks} *)

val kill_point : batch:int -> unit
(** Raises [Killed batch] iff [Kill] is armed and due at this batch. *)

val poison_grads : batch:int -> Param.t list -> unit
(** If [Nan_grad] is armed and due, sets the first gradient element of the
    first parameter to NaN. *)

(** {1 Serving hooks} *)

val slow_delay : index:int -> float
(** Seconds of artificial model latency to insert at this request (0 unless
    [Slow] is armed and due). *)

val poison_output : index:int -> Tensor.t list -> unit
(** If [Nan_output] is armed and due, sets the first element of the first
    tensor to NaN (a synthetic heatmap, poisoning the derived hit rate). *)

val checkpoint_fault : index:int -> bool
(** True iff [Corrupt_checkpoint] is armed and due at this request: the
    caller must fail its model path as if the checkpoint were unreadable. *)

val crash_now : index:int -> bool
(** True iff [Crash_backend] is armed and due at this request: the caller
    must terminate the process abruptly (e.g. [Unix._exit]) so peers see
    the socket close mid-response. The hook stays decision-only so this
    library needs no unix dependency. *)

val hang_delay : index:int -> float
(** Seconds to stall the serving path without answering at this request
    (0 unless [Hang] is armed and due). Unlike {!slow_delay} the default
    stall is far beyond any deadline — the request is meant to never
    complete in time. *)

(** {1 File corruption} *)

val corrupt_byte : string -> offset:int -> unit
(** Flips all bits of one byte of a file in place ([offset] is taken modulo
    the file length), for checkpoint/trace-corruption tests. *)
