(** Stateful layer building blocks: parameter containers plus application
    functions over {!Value.t}. Initialisation follows pix2pix: weights are
    drawn from N(0, 0.02), batch-norm gains from N(1, 0.02).

    The [*node] fields cache the {!Value.of_param} leaves for the layer's
    parameters: a leaf's gradient slot aliases the parameter's persistent
    grad tensor, so one shared node accumulates identically to a fresh node
    per apply while keeping the tape allocation-free for parameters. *)

type conv2d = {
  weight : Param.t;
  bias : Param.t option;
  stride : int;
  pad : int;
  wnode : Value.t;
  bnode : Value.t option;
}

val conv2d :
  Prng.t ->
  name:string ->
  in_channels:int ->
  out_channels:int ->
  kernel:int ->
  stride:int ->
  pad:int ->
  bias:bool ->
  conv2d

val apply_conv2d : conv2d -> Value.t -> Value.t
val conv2d_params : conv2d -> Param.t list

type conv_transpose2d = {
  tweight : Param.t;
  tbias : Param.t option;
  tstride : int;
  tpad : int;
  twnode : Value.t;
  tbnode : Value.t option;
}

val conv_transpose2d :
  Prng.t ->
  name:string ->
  in_channels:int ->
  out_channels:int ->
  kernel:int ->
  stride:int ->
  pad:int ->
  bias:bool ->
  conv_transpose2d

val apply_conv_transpose2d : conv_transpose2d -> Value.t -> Value.t
val conv_transpose2d_params : conv_transpose2d -> Param.t list

type linear = {
  lweight : Param.t;
  lbias : Param.t option;
  lwnode : Value.t;
  lbnode : Value.t option;
}

val linear : Prng.t -> name:string -> in_dim:int -> out_dim:int -> bias:bool -> linear
val apply_linear : linear -> Value.t -> Value.t
val linear_params : linear -> Param.t list

type batch_norm = {
  gamma : Param.t;
  beta : Param.t;
  running_mean : float array;
  running_var : float array;
  momentum : float;
  eps : float;
  gnode : Value.t;
  betanode : Value.t;
}

val batch_norm : Prng.t -> name:string -> channels:int -> batch_norm
val apply_batch_norm : batch_norm -> training:bool -> Value.t -> Value.t
val batch_norm_params : batch_norm -> Param.t list

val batch_norm_state : batch_norm -> (string * float array) list
(** Named running statistics, for checkpointing. *)
