type t = {
  id : int;
  v : Tensor.t;
  mutable g : Tensor.t option;
  parents : t array;
  push : (t -> unit) option;
      (* Reads [t.g] (guaranteed present) and accumulates into parents. *)
}

let counter = ref 0

let node ?(parents = [||]) ?push v =
  incr counter;
  { id = !counter; v; g = None; parents; push }

let value t = t.v

let grad t =
  match t.g with
  | Some g -> g
  | None -> invalid_arg "Value.grad: no gradient was propagated to this node"

let accum t delta =
  match t.g with
  | Some g -> Tensor.add_ g delta
  | None -> t.g <- Some (Tensor.copy delta)

let the_grad t =
  match t.g with Some g -> g | None -> assert false

let const x = node x
let leaf x = node x

let of_param (p : Param.t) =
  let n = node p.value in
  n.g <- Some p.grad;
  n

(* --- arithmetic --- *)

let add a b =
  let push self =
    let g = the_grad self in
    accum a g;
    accum b g
  in
  node ~parents:[| a; b |] ~push (Tensor.add a.v b.v)

let sub a b =
  let push self =
    let g = the_grad self in
    accum a g;
    accum b (Tensor.neg g)
  in
  node ~parents:[| a; b |] ~push (Tensor.sub a.v b.v)

let mul a b =
  let push self =
    let g = the_grad self in
    accum a (Tensor.mul g b.v);
    accum b (Tensor.mul g a.v)
  in
  node ~parents:[| a; b |] ~push (Tensor.mul a.v b.v)

let scale a alpha =
  let push self = accum a (Tensor.scale (the_grad self) alpha) in
  node ~parents:[| a |] ~push (Tensor.scale a.v alpha)

let neg a = scale a (-1.0)

(* --- activations --- *)

let pointwise_fwd_bwd f df a =
  (* Both the forward map and the backward chain-rule map run on the Dpool
     parallel backend for large activations; [f]/[df] must be pure. *)
  let y = Tensor.map f a.v in
  let push self =
    let g = the_grad self in
    accum a (Tensor.map3 (fun gi xi yi -> gi *. df xi yi) g a.v y)
  in
  node ~parents:[| a |] ~push y

let relu a = pointwise_fwd_bwd (fun x -> Float.max 0.0 x) (fun x _y -> if x > 0.0 then 1.0 else 0.0) a

let leaky_relu slope a =
  pointwise_fwd_bwd
    (fun x -> if x > 0.0 then x else slope *. x)
    (fun x _y -> if x > 0.0 then 1.0 else slope)
    a

let tanh_ a = pointwise_fwd_bwd Float.tanh (fun _x y -> 1.0 -. (y *. y)) a

let sigmoid_f x = 1.0 /. (1.0 +. exp (-.x))
let sigmoid a = pointwise_fwd_bwd sigmoid_f (fun _x y -> y *. (1.0 -. y)) a

let dropout rng ~rate ~training a =
  if (not training) || rate <= 0.0 then a
  else begin
    if rate >= 1.0 then invalid_arg "Value.dropout: rate must be < 1";
    let keep = 1.0 -. rate in
    let mask = Tensor.create (Tensor.shape a.v) in
    for i = 0 to Tensor.numel mask - 1 do
      Tensor.set mask i (if Prng.float rng 1.0 < rate then 0.0 else 1.0 /. keep)
    done;
    let push self = accum a (Tensor.mul (the_grad self) mask) in
    node ~parents:[| a |] ~push (Tensor.mul a.v mask)
  end

(* --- shape --- *)

let reshape a shape =
  let push self = accum a (Tensor.view (the_grad self) (Tensor.shape a.v)) in
  node ~parents:[| a |] ~push (Tensor.view a.v shape)

let concat_channels a b =
  let ca = Tensor.dim a.v 1 in
  let push self =
    let ga, gb = Tensor.split_channels (the_grad self) ca in
    accum a ga;
    accum b gb
  in
  node ~parents:[| a; b |] ~push (Tensor.concat_channels a.v b.v)

let broadcast_spatial a ~h ~w =
  let push self = accum a (Tensor.spatial_sum (the_grad self)) in
  node ~parents:[| a |] ~push (Tensor.broadcast_spatial a.v ~h ~w)

let spatial_mean a =
  let shp = Tensor.shape a.v in
  if Array.length shp <> 4 then invalid_arg "Value.spatial_mean: need NCHW";
  let n = shp.(0) and c = shp.(1) and h = shp.(2) and w = shp.(3) in
  let push self =
    let g = the_grad self in
    let inv = 1.0 /. float_of_int (h * w) in
    let gb = Tensor.view (Tensor.scale g inv) [| n; c; 1; 1 |] in
    accum a (Tensor.broadcast_spatial gb ~h ~w)
  in
  node ~parents:[| a |] ~push (Tensor.spatial_mean a.v)

(* --- layers --- *)

let conv2d ~weight ~bias ~stride ~pad x =
  let bias_v = Option.map (fun b -> b.v) bias in
  let y = Conv.conv2d ~x:x.v ~weight:weight.v ~bias:bias_v ~stride ~pad in
  let parents =
    match bias with Some b -> [| x; weight; b |] | None -> [| x; weight |]
  in
  let push self =
    let gout = the_grad self in
    (* The gradient temporaries live only until [accum] copies them out, so
       they are borrowed from the workspace arena. Both need zeroing: the
       kernel accumulates (gemm beta=1 into gw, col2im into gx). *)
    Workspace.with_buf2 ~zero:true (Tensor.shape weight.v) (Tensor.shape x.v)
      (fun gw gx ->
        let gb = Option.map (fun b -> Tensor.zeros (Tensor.shape b.v)) bias in
        Conv.conv2d_backward_into ~x:x.v ~weight:weight.v ~gout ~stride ~pad
          ~grad_weight:gw ~grad_bias:gb ~gx;
        accum x gx;
        accum weight gw;
        match (bias, gb) with
        | Some b, Some g -> accum b g
        | None, None -> ()
        | _ -> assert false)
  in
  node ~parents ~push y

let conv_transpose2d ~weight ~bias ~stride ~pad x =
  let bias_v = Option.map (fun b -> b.v) bias in
  let y = Conv.conv_transpose2d ~x:x.v ~weight:weight.v ~bias:bias_v ~stride ~pad in
  let parents =
    match bias with Some b -> [| x; weight; b |] | None -> [| x; weight |]
  in
  let push self =
    let gout = the_grad self in
    (* gw needs zeroing (the kernel accumulates into it); gx is fully
       overwritten by conv_transpose2d_backward_into, so it is borrowed
       uninitialised. *)
    Workspace.with_buf ~zero:true (Tensor.shape weight.v) (fun gw ->
        Workspace.with_buf (Tensor.shape x.v) (fun gx ->
            let gb = Option.map (fun b -> Tensor.zeros (Tensor.shape b.v)) bias in
            Conv.conv_transpose2d_backward_into ~x:x.v ~weight:weight.v ~gout
              ~stride ~pad ~grad_weight:gw ~grad_bias:gb ~gx;
            accum x gx;
            accum weight gw;
            match (bias, gb) with
            | Some b, Some g -> accum b g
            | None, None -> ()
            | _ -> assert false))
  in
  node ~parents ~push y

let linear ~weight ~bias x =
  let n = Tensor.dim x.v 0 and out_dim = Tensor.dim weight.v 0 in
  let y = Tensor.zeros [| n; out_dim |] in
  Blas.gemm ~trans_b:true ~alpha:1.0 ~a:x.v ~b:weight.v ~beta:0.0 y;
  (match bias with
  | None -> ()
  | Some b ->
    let yd = y.Tensor.data and bd = b.v.Tensor.data in
    for i = 0 to n - 1 do
      let base = i * out_dim in
      for j = 0 to out_dim - 1 do
        Bigarray.Array1.unsafe_set yd (base + j)
          (Bigarray.Array1.unsafe_get yd (base + j)
          +. Bigarray.Array1.unsafe_get bd j)
      done
    done);
  let parents =
    match bias with Some b -> [| x; weight; b |] | None -> [| x; weight |]
  in
  let push self =
    let gout = the_grad self in
    (* Both GEMMs run with beta=0 and fully overwrite their outputs, so the
       borrowed buffers need no zeroing. *)
    Workspace.with_buf2 (Tensor.shape x.v) (Tensor.shape weight.v) (fun gx gw ->
        Blas.gemm ~alpha:1.0 ~a:gout ~b:weight.v ~beta:0.0 gx;
        accum x gx;
        Blas.gemm ~trans_a:true ~alpha:1.0 ~a:gout ~b:x.v ~beta:0.0 gw;
        accum weight gw);
    match bias with
    | None -> ()
    | Some b ->
      let gb = Tensor.zeros (Tensor.shape b.v) in
      let gd = gout.Tensor.data and gbd = gb.Tensor.data in
      for i = 0 to n - 1 do
        let base = i * out_dim in
        for j = 0 to out_dim - 1 do
          Bigarray.Array1.unsafe_set gbd j
            (Bigarray.Array1.unsafe_get gbd j
            +. Bigarray.Array1.unsafe_get gd (base + j))
        done
      done;
      accum b gb
  in
  node ~parents ~push y

let batch_norm ~gamma ~beta ~running_mean ~running_var ~momentum ~eps ~training x =
  let shp = Tensor.shape x.v in
  if Array.length shp <> 4 then invalid_arg "Value.batch_norm: need NCHW";
  let n = shp.(0) and c = shp.(1) and h = shp.(2) and w = shp.(3) in
  if Array.length running_mean <> c || Array.length running_var <> c then
    invalid_arg "Value.batch_norm: running stats size mismatch";
  let mu, var =
    if training then begin
      let m, v = Tensor.channel_mean_var x.v in
      for ci = 0 to c - 1 do
        running_mean.(ci) <- ((1.0 -. momentum) *. running_mean.(ci)) +. (momentum *. m.(ci));
        running_var.(ci) <- ((1.0 -. momentum) *. running_var.(ci)) +. (momentum *. v.(ci))
      done;
      (m, v)
    end
    else (Array.copy running_mean, Array.copy running_var)
  in
  let inv_std = Array.map (fun v -> 1.0 /. sqrt (v +. eps)) var in
  let hw = h * w in
  let xhat = Tensor.create shp in
  let y = Tensor.create shp in
  for ni = 0 to n - 1 do
    for ci = 0 to c - 1 do
      let base = ((ni * c) + ci) * hw in
      let g = Tensor.get gamma.v ci and b = Tensor.get beta.v ci in
      for i = 0 to hw - 1 do
        let xh = (Tensor.get x.v (base + i) -. mu.(ci)) *. inv_std.(ci) in
        Tensor.set xhat (base + i) xh;
        Tensor.set y (base + i) ((g *. xh) +. b)
      done
    done
  done;
  let push self =
    let gout = the_grad self in
    let count = float_of_int (n * hw) in
    let dgamma = Tensor.zeros [| c |] and dbeta = Tensor.zeros [| c |] in
    let sum_g = Array.make c 0.0 and sum_gx = Array.make c 0.0 in
    for ni = 0 to n - 1 do
      for ci = 0 to c - 1 do
        let base = ((ni * c) + ci) * hw in
        for i = 0 to hw - 1 do
          let go = Tensor.get gout (base + i) and xh = Tensor.get xhat (base + i) in
          sum_g.(ci) <- sum_g.(ci) +. go;
          sum_gx.(ci) <- sum_gx.(ci) +. (go *. xh)
        done
      done
    done;
    for ci = 0 to c - 1 do
      Tensor.set dbeta ci sum_g.(ci);
      Tensor.set dgamma ci sum_gx.(ci)
    done;
    (* gx is fully written below, so it is borrowed uninitialised; [accum]
       copies it out before the borrow ends. *)
    Workspace.with_buf shp (fun gx ->
        for ni = 0 to n - 1 do
          for ci = 0 to c - 1 do
            let base = ((ni * c) + ci) * hw in
            let g = Tensor.get gamma.v ci in
            let scale = g *. inv_std.(ci) in
            for i = 0 to hw - 1 do
              let go = Tensor.get gout (base + i) and xh = Tensor.get xhat (base + i) in
              let v =
                if training then
                  scale *. (go -. (sum_g.(ci) /. count) -. (xh *. sum_gx.(ci) /. count))
                else scale *. go
              in
              Tensor.set gx (base + i) v
            done
          done
        done;
        accum x gx);
    accum gamma dgamma;
    accum beta dbeta
  in
  node ~parents:[| x; gamma; beta |] ~push y

(* --- reductions and losses --- *)

let mean_all a =
  let n = float_of_int (Tensor.numel a.v) in
  let push self =
    let g = Tensor.get (the_grad self) 0 /. n in
    accum a (Tensor.full (Tensor.shape a.v) g)
  in
  node ~parents:[| a |] ~push (Tensor.scalar (Tensor.mean a.v))

let sum_all a =
  let push self =
    let g = Tensor.get (the_grad self) 0 in
    accum a (Tensor.full (Tensor.shape a.v) g)
  in
  node ~parents:[| a |] ~push (Tensor.scalar (Tensor.sum a.v))

let l1_loss a target =
  if Tensor.numel a.v <> Tensor.numel target then invalid_arg "Value.l1_loss: size mismatch";
  let n = float_of_int (Tensor.numel a.v) in
  let total = ref 0.0 in
  for i = 0 to Tensor.numel a.v - 1 do
    total := !total +. Float.abs (Tensor.get a.v i -. Tensor.get target i)
  done;
  let push self =
    let g = Tensor.get (the_grad self) 0 /. n in
    let d = Tensor.create (Tensor.shape a.v) in
    for i = 0 to Tensor.numel a.v - 1 do
      let diff = Tensor.get a.v i -. Tensor.get target i in
      Tensor.set d i (if diff > 0.0 then g else if diff < 0.0 then -.g else 0.0)
    done;
    accum a d
  in
  node ~parents:[| a |] ~push (Tensor.scalar (!total /. n))

let mse_loss a target =
  if Tensor.numel a.v <> Tensor.numel target then invalid_arg "Value.mse_loss: size mismatch";
  let n = float_of_int (Tensor.numel a.v) in
  let total = ref 0.0 in
  for i = 0 to Tensor.numel a.v - 1 do
    let d = Tensor.get a.v i -. Tensor.get target i in
    total := !total +. (d *. d)
  done;
  let push self =
    let g = Tensor.get (the_grad self) 0 /. n in
    let d = Tensor.create (Tensor.shape a.v) in
    for i = 0 to Tensor.numel a.v - 1 do
      Tensor.set d i (2.0 *. g *. (Tensor.get a.v i -. Tensor.get target i))
    done;
    accum a d
  in
  node ~parents:[| a |] ~push (Tensor.scalar (!total /. n))

let bce_with_logits a target =
  if Tensor.numel a.v <> Tensor.numel target then
    invalid_arg "Value.bce_with_logits: size mismatch";
  let n = float_of_int (Tensor.numel a.v) in
  let total = ref 0.0 in
  for i = 0 to Tensor.numel a.v - 1 do
    let x = Tensor.get a.v i and t = Tensor.get target i in
    (* max(x,0) - x*t + log(1 + exp(-|x|)) *)
    total :=
      !total +. Float.max x 0.0 -. (x *. t) +. log (1.0 +. exp (-.Float.abs x))
  done;
  let push self =
    let g = Tensor.get (the_grad self) 0 /. n in
    let d = Tensor.create (Tensor.shape a.v) in
    for i = 0 to Tensor.numel a.v - 1 do
      let x = Tensor.get a.v i and t = Tensor.get target i in
      Tensor.set d i (g *. (sigmoid_f x -. t))
    done;
    accum a d
  in
  node ~parents:[| a |] ~push (Tensor.scalar (!total /. n))

(* --- engine --- *)

let topological_order root =
  let visited = Hashtbl.create 256 in
  let order = ref [] in
  (* Iterative post-order DFS. *)
  let stack = Stack.create () in
  Stack.push (root, ref 0) stack;
  Hashtbl.replace visited root.id ();
  while not (Stack.is_empty stack) do
    let n, next = Stack.top stack in
    if !next < Array.length n.parents then begin
      let p = n.parents.(!next) in
      incr next;
      if not (Hashtbl.mem visited p.id) then begin
        Hashtbl.replace visited p.id ();
        Stack.push (p, ref 0) stack
      end
    end
    else begin
      ignore (Stack.pop stack);
      order := n :: !order
    end
  done;
  !order (* root first: reverse topological order *)

let backward root =
  (match root.g with
  | None -> root.g <- Some (Tensor.ones (Tensor.shape root.v))
  | Some g -> Tensor.fill g 1.0);
  let order = topological_order root in
  List.iter
    (fun n ->
      match (n.push, n.g) with
      | Some f, Some _ -> f n
      | _ -> ())
    order
