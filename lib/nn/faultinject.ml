(* Deterministic fault injection for resilience tests.

   A single global fault can be armed at a global index (training batch or
   serving request, both 1-based and monotonic); the hardened loops call the
   hook functions at fixed points and the fault fires [count] times starting
   at that index (then disarms itself), so a retried or resumed run sails
   past the injection point. This is test machinery: production runs never
   arm anything and the hooks reduce to one integer comparison per call. *)

type fault =
  | Kill
  | Nan_grad
  | Slow of float
  | Nan_output
  | Corrupt_checkpoint
  | Crash_backend
  | Hang of float

exception Killed of int

type armed = { fault : fault; at : int; mutable remaining : int }

let current : armed option ref = ref None

let arm ?(count = 1) fault ~at_batch =
  if at_batch < 1 then invalid_arg "Faultinject.arm: at_batch must be >= 1";
  if count < 1 then invalid_arg "Faultinject.arm: count must be >= 1";
  current := Some { fault; at = at_batch; remaining = count }

let disarm () = current := None

(* "fault[:param][@at[xcount]]" — e.g. "slow:0.05@3x2" arms Slow 0.05 at
   request 3 for 2 shots. Lets a load-test script arm a fault inside the
   daemon process it spawns, where no test harness runs. *)
let arm_from_env ?(var = "CACHEBOX_FAULT") () =
  match Sys.getenv_opt var with
  | None | Some "" -> false
  | Some spec ->
    let body, at, count =
      match String.index_opt spec '@' with
      | None -> (spec, 1, 1)
      | Some i ->
        let body = String.sub spec 0 i in
        let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
        (match String.index_opt rest 'x' with
        | None -> (body, int_of_string rest, 1)
        | Some j ->
          ( body,
            int_of_string (String.sub rest 0 j),
            int_of_string (String.sub rest (j + 1) (String.length rest - j - 1)) ))
    in
    let name, param =
      match String.index_opt body ':' with
      | None -> (body, None)
      | Some i ->
        ( String.sub body 0 i,
          Some (String.sub body (i + 1) (String.length body - i - 1)) )
    in
    let fault =
      match (String.lowercase_ascii name, param) with
      | "kill", _ -> Kill
      | "nan_grad", _ -> Nan_grad
      | "slow", Some s -> Slow (float_of_string s)
      | "slow", None -> Slow 0.05
      | "nan_output", _ -> Nan_output
      | "corrupt_checkpoint", _ -> Corrupt_checkpoint
      | "crash_backend", _ -> Crash_backend
      | "hang", Some s -> Hang (float_of_string s)
      | "hang", None -> Hang 3600.0
      | _ -> invalid_arg (Printf.sprintf "Faultinject.arm_from_env: unknown fault %S" spec)
    in
    arm ~count fault ~at_batch:at;
    true

(* Fires iff a matching fault is armed and the (monotonic) index has reached
   its start point; consumes one of the remaining shots. *)
let fires_if pred index =
  match !current with
  | Some a when index >= a.at && a.remaining > 0 && pred a.fault ->
    a.remaining <- a.remaining - 1;
    if a.remaining = 0 then current := None;
    true
  | _ -> false

let kill_point ~batch = if fires_if (fun f -> f = Kill) batch then raise (Killed batch)

let poison_grads ~batch params =
  if fires_if (fun f -> f = Nan_grad) batch then
    match params with
    | [] -> ()
    | (p : Param.t) :: _ -> Tensor.set p.Param.grad 0 Float.nan

let slow_delay ~index =
  let d = ref 0.0 in
  if fires_if (function Slow s -> d := s; true | _ -> false) index then !d else 0.0

let poison_output ~index tensors =
  if fires_if (fun f -> f = Nan_output) index then
    match tensors with
    | [] -> ()
    | (t : Tensor.t) :: _ -> Tensor.set t 0 Float.nan

let checkpoint_fault ~index = fires_if (fun f -> f = Corrupt_checkpoint) index

let crash_now ~index = fires_if (fun f -> f = Crash_backend) index

let hang_delay ~index =
  let d = ref 0.0 in
  if fires_if (function Hang s -> d := s; true | _ -> false) index then !d else 0.0

let corrupt_byte path ~offset =
  let ic = open_in_bin path in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if String.length raw = 0 then invalid_arg "Faultinject.corrupt_byte: empty file";
  let offset = ((offset mod String.length raw) + String.length raw) mod String.length raw in
  let bytes = Bytes.of_string raw in
  Bytes.set bytes offset (Char.chr (Char.code (Bytes.get bytes offset) lxor 0xFF));
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc bytes)
