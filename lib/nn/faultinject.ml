(* Deterministic fault injection for resilience tests.

   A single global fault can be armed at a global batch index; the training
   loop calls the hook functions at fixed points and the fault fires exactly
   once (then disarms itself), so a retried or resumed run sails past the
   injection point. This is test machinery: production runs never arm
   anything and the hooks reduce to one integer comparison per batch. *)

type fault = Kill | Nan_grad

exception Killed of int

type armed = { fault : fault; at_batch : int }

let current : armed option ref = ref None

let arm fault ~at_batch =
  if at_batch < 1 then invalid_arg "Faultinject.arm: at_batch must be >= 1";
  current := Some { fault; at_batch }

let disarm () = current := None

let fires fault batch =
  match !current with
  | Some a when a.fault = fault && a.at_batch = batch ->
    current := None;
    true
  | _ -> false

let kill_point ~batch = if fires Kill batch then raise (Killed batch)

let poison_grads ~batch params =
  if fires Nan_grad batch then
    match params with
    | [] -> ()
    | (p : Param.t) :: _ -> Tensor.set p.Param.grad 0 Float.nan

let corrupt_byte path ~offset =
  let ic = open_in_bin path in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if String.length raw = 0 then invalid_arg "Faultinject.corrupt_byte: empty file";
  let offset = ((offset mod String.length raw) + String.length raw) mod String.length raw in
  let bytes = Bytes.of_string raw in
  Bytes.set bytes offset (Char.chr (Char.code (Bytes.get bytes offset) lxor 0xFF));
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc bytes)
