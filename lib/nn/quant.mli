(** Post-training int8 quantization: scale policy, calibration observers,
    and the canonical serialized form of quantized weights.

    Symmetric scheme throughout — per-output-row (per-channel) weight
    scales, one per-tensor activation scale observed on a calibration
    batch, optionally rounded up to powers of two. Packing and the integer
    kernel live in {!Blas.Int8}; serialization goes through the v3
    dtype-tagged {!Checkpoint} container so quantized models load without
    the float originals. *)

val amax : Tensor.t -> float
(** Largest absolute element (0 for all-zero tensors). *)

val scale_of_amax : ?pow2:bool -> float -> float
(** [amax/127], defaulting to 1.0 for degenerate ranges; [pow2] rounds up
    to the next power of two. *)

type observer

val observer : unit -> observer
val observe : observer -> Tensor.t -> unit
val observe_array : observer -> float array -> unit

val observed_scale : ?pow2:bool -> observer -> float
(** Activation scale from everything observed so far. *)

val bytes_of_qweight : Blas.Int8.qweight -> string
(** Canonical row-major signed bytes of a packed weight. *)

val qweight_of_bytes :
  m:int -> k:int -> scales:float array -> ?bias:float array -> string -> Blas.Int8.qweight
(** Repack canonical bytes (the load path — no float weights involved). *)

val entries_of_qweight :
  prefix:string -> act_scale:float -> Blas.Int8.qweight -> (string * int array * Checkpoint.payload) list
(** Checkpoint entries for one quantized GEMM operand: [<prefix>.q] (int8
    bytes), [.scales], [.act] and, when fused, [.bias]. *)

val qweight_of_container :
  Checkpoint.container -> prefix:string -> Blas.Int8.qweight * float
(** Rebuild a packed weight (plus its activation scale) from the entries
    written by {!entries_of_qweight}. Raises [Failure] on missing or
    malformed sections. *)
