(** Gradient-descent optimizers over {!Param.t} lists. *)

type t

val sgd : lr:float -> ?momentum:float -> Param.t list -> t
(** Classical SGD with optional heavy-ball momentum. *)

val adam :
  lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> Param.t list -> t
(** Adam (Kingma & Ba). Defaults match pix2pix: beta1 is usually set to 0.5
    by callers training GANs; the default here is the standard 0.9. *)

val zero_grad : t -> unit
val step : t -> unit
(** Applies one update using the gradients currently accumulated in the
    parameters. *)

val set_lr : t -> float -> unit
val lr : t -> float
val params : t -> Param.t list

val state : t -> (string * float array) list
(** Serializable optimizer state as named float arrays (fresh copies):
    ["lr"], and per-parameter moment vectors — ["m.<name>"]/["v.<name>"]
    plus ["step"] for Adam, ["velocity.<name>"] for SGD. Feed these (with a
    distinguishing prefix) into {!Checkpoint.save} so moments survive a
    restart instead of silently resetting to zero. *)

val set_state : t -> (string * float array) list -> unit
(** Exact inverse of {!state} for an optimizer built over the same parameter
    list. Raises [Failure] on a missing entry or length mismatch. *)

val grad_norm : t -> float
(** L2 norm of the concatenated gradients (diagnostic). *)

val clip_grad_norm : t -> max_norm:float -> unit
(** Rescales all gradients if their joint L2 norm exceeds [max_norm]. *)
