type algo =
  | Sgd of { momentum : float; velocity : Tensor.t array }
  | Adam of {
      beta1 : float;
      beta2 : float;
      eps : float;
      m : Tensor.t array;
      v : Tensor.t array;
      mutable step_count : int;
    }

type t = { mutable lr : float; params : Param.t array; algo : algo }

let sgd ~lr ?(momentum = 0.0) params =
  let params = Array.of_list params in
  let velocity = Array.map (fun p -> Tensor.zeros (Tensor.shape p.Param.value)) params in
  { lr; params; algo = Sgd { momentum; velocity } }

let adam ~lr ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) params =
  let params = Array.of_list params in
  let m = Array.map (fun p -> Tensor.zeros (Tensor.shape p.Param.value)) params in
  let v = Array.map (fun p -> Tensor.zeros (Tensor.shape p.Param.value)) params in
  { lr; params; algo = Adam { beta1; beta2; eps; m; v; step_count = 0 } }

let zero_grad t = Array.iter Param.zero_grad t.params
let set_lr t lr = t.lr <- lr
let lr t = t.lr
let params t = Array.to_list t.params

let grad_norm t =
  let acc = ref 0.0 in
  Array.iter
    (fun p -> acc := !acc +. Tensor.fold (fun a g -> a +. (g *. g)) 0.0 p.Param.grad)
    t.params;
  sqrt !acc

let clip_grad_norm t ~max_norm =
  let norm = grad_norm t in
  if norm > max_norm && norm > 0.0 then begin
    let factor = max_norm /. norm in
    Array.iter (fun p -> Tensor.scale_ p.Param.grad factor) t.params
  end

(* Serializable optimizer state. Every entry is a named float array so it
   drops straight into a {!Checkpoint} state list; [set_state] is the exact
   inverse, fixing the historical silent reset-to-zero of Adam moments when a
   run was resumed from a weights-only checkpoint. *)
let state t =
  let common = [ ("lr", [| t.lr |]) ] in
  match t.algo with
  | Sgd { velocity; _ } ->
    common
    @ Array.to_list
        (Array.mapi
           (fun i p -> ("velocity." ^ p.Param.name, Tensor.to_array velocity.(i)))
           t.params)
  | Adam a ->
    common
    @ [ ("step", [| float_of_int a.step_count |]) ]
    @ Array.to_list
        (Array.mapi (fun i p -> ("m." ^ p.Param.name, Tensor.to_array a.m.(i))) t.params)
    @ Array.to_list
        (Array.mapi (fun i p -> ("v." ^ p.Param.name, Tensor.to_array a.v.(i))) t.params)

let set_state t entries =
  let find name =
    match List.assoc_opt name entries with
    | Some a -> a
    | None -> failwith ("Optimizer.set_state: missing entry " ^ name)
  in
  let restore_tensor name dst =
    let a = find name in
    if Array.length a <> Tensor.numel dst then
      failwith ("Optimizer.set_state: length mismatch for " ^ name);
    Array.iteri (fun i v -> Tensor.set dst i v) a
  in
  let scalar name =
    match find name with
    | [| v |] -> v
    | _ -> failwith ("Optimizer.set_state: expected scalar entry " ^ name)
  in
  t.lr <- scalar "lr";
  match t.algo with
  | Sgd { velocity; _ } ->
    Array.iteri
      (fun i p -> restore_tensor ("velocity." ^ p.Param.name) velocity.(i))
      t.params
  | Adam a ->
    a.step_count <- int_of_float (scalar "step");
    Array.iteri
      (fun i p ->
        restore_tensor ("m." ^ p.Param.name) a.m.(i);
        restore_tensor ("v." ^ p.Param.name) a.v.(i))
      t.params

let step t =
  match t.algo with
  | Sgd { momentum; velocity } ->
    Array.iteri
      (fun i p ->
        if momentum = 0.0 then
          Tensor.axpy ~alpha:(-.t.lr) ~x:p.Param.grad ~y:p.Param.value
        else begin
          let vel = velocity.(i) in
          Tensor.scale_ vel momentum;
          Tensor.add_ vel p.Param.grad;
          Tensor.axpy ~alpha:(-.t.lr) ~x:vel ~y:p.Param.value
        end)
      t.params
  | Adam a ->
    a.step_count <- a.step_count + 1;
    let bc1 = 1.0 -. (a.beta1 ** float_of_int a.step_count) in
    let bc2 = 1.0 -. (a.beta2 ** float_of_int a.step_count) in
    Array.iteri
      (fun i p ->
        let g = p.Param.grad and m = a.m.(i) and v = a.v.(i) in
        for j = 0 to Tensor.numel g - 1 do
          let gj = Tensor.get g j in
          let mj = (a.beta1 *. Tensor.get m j) +. ((1.0 -. a.beta1) *. gj) in
          let vj = (a.beta2 *. Tensor.get v j) +. ((1.0 -. a.beta2) *. gj *. gj) in
          Tensor.set m j mj;
          Tensor.set v j vj;
          let m_hat = mj /. bc1 and v_hat = vj /. bc2 in
          Tensor.set p.Param.value j
            (Tensor.get p.Param.value j -. (t.lr *. m_hat /. (sqrt v_hat +. a.eps)))
        done)
      t.params
