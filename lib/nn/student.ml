(* Distilled student generator: a channel-scaled (half-width) and
   optionally truncated (half-depth) U-Net with the same conditioning
   plumbing as the CB-GAN teacher. Fewer levels leave the bottleneck at a
   spatial extent above 1x1, so the conditioning vector is broadcast over
   it instead of concatenated at a single pixel. The student is a pure
   regressor: no discriminator, no dropout — its forward pass is
   deterministic, which keeps distillation and quantized compilation
   bit-reproducible. *)

type config = {
  st_image_size : int;
  st_levels : int;
  st_ngf : int;
  st_use_cond : bool;
  st_cond_hidden : int;
  st_cond_dim : int;
}

let default_config ?(image_size = 64) ?(levels = 3) ?(ngf = 8) () =
  {
    st_image_size = image_size;
    st_levels = levels;
    st_ngf = ngf;
    st_use_cond = true;
    st_cond_hidden = 16;
    st_cond_dim = 2 * ngf;
  }

type down_block = { d_conv : Layers.conv2d; d_bn : Layers.batch_norm option }
type up_block = { u_conv : Layers.conv_transpose2d; u_bn : Layers.batch_norm option }

type t = {
  cfg : config;
  downs : down_block array;
  ups : up_block array;
  cond : (Layers.linear * Layers.linear * Layers.linear) option;
}

(* Same progression as the teacher: ngf, 2ngf, 4ngf, 8ngf capped. *)
let channel_plan cfg = Array.init cfg.st_levels (fun i -> cfg.st_ngf * min 8 (1 lsl min i 3))

let bottleneck_size cfg = cfg.st_image_size lsr cfg.st_levels

let validate cfg =
  if cfg.st_image_size land (cfg.st_image_size - 1) <> 0 then
    invalid_arg "Student.create: image_size must be a power of two";
  if cfg.st_levels < 2 || 1 lsl cfg.st_levels > cfg.st_image_size then
    invalid_arg "Student.create: levels incompatible with image_size";
  if cfg.st_ngf < 1 then invalid_arg "Student.create: ngf must be positive";
  if cfg.st_use_cond && (cfg.st_cond_dim < 1 || cfg.st_cond_hidden < 1) then
    invalid_arg "Student.create: conditioning dims must be positive"

let create ~seed cfg =
  validate cfg;
  let rng = Prng.create seed in
  let ch = channel_plan cfg in
  let levels = cfg.st_levels in
  let downs =
    Array.init levels (fun i ->
        let in_channels = if i = 0 then 1 else ch.(i - 1) in
        let name = Printf.sprintf "student.down%d" i in
        let d_conv =
          Layers.conv2d rng ~name ~in_channels ~out_channels:ch.(i) ~kernel:4
            ~stride:2 ~pad:1 ~bias:true
        in
        let d_bn =
          if i = 0 || i = levels - 1 then None
          else Some (Layers.batch_norm rng ~name:(name ^ ".bn") ~channels:ch.(i))
        in
        { d_conv; d_bn })
  in
  let cond =
    if not cfg.st_use_cond then None
    else
      Some
        ( Layers.linear rng ~name:"student.cond0" ~in_dim:2 ~out_dim:cfg.st_cond_hidden
            ~bias:true,
          Layers.linear rng ~name:"student.cond1" ~in_dim:cfg.st_cond_hidden
            ~out_dim:cfg.st_cond_hidden ~bias:true,
          Layers.linear rng ~name:"student.cond2" ~in_dim:cfg.st_cond_hidden
            ~out_dim:cfg.st_cond_dim ~bias:true )
  in
  let bottleneck_ch = ch.(levels - 1) + if cfg.st_use_cond then cfg.st_cond_dim else 0 in
  let ups =
    Array.init levels (fun i ->
        let in_channels = if i = 0 then bottleneck_ch else 2 * ch.(levels - 1 - i) in
        let out_channels = if i = levels - 1 then 1 else ch.(levels - 2 - i) in
        let name = Printf.sprintf "student.up%d" i in
        let u_conv =
          Layers.conv_transpose2d rng ~name ~in_channels ~out_channels ~kernel:4
            ~stride:2 ~pad:1 ~bias:true
        in
        let u_bn =
          if i = levels - 1 then None
          else Some (Layers.batch_norm rng ~name:(name ^ ".bn") ~channels:out_channels)
        in
        (* Same sparse-heatmap prior as the teacher: start the tanh output
           near -1 (empty). *)
        if i = levels - 1 then
          Option.iter (fun (b : Param.t) -> Tensor.fill b.Param.value (-1.5)) u_conv.Layers.tbias;
        { u_conv; u_bn })
  in
  { cfg; downs; ups; cond }

let model_config t = t.cfg
let image_size t = t.cfg.st_image_size
let uses_cache_params t = t.cfg.st_use_cond

(* Read-only structure views for the quantized-inference compiler; the
   third component mirrors Cbgan.generator_ups's dropout flag (always off
   for the student). *)
let student_downs t = Array.map (fun b -> (b.d_conv, b.d_bn)) t.downs
let student_ups t = Array.map (fun b -> (b.u_conv, b.u_bn, false)) t.ups
let student_cond t = t.cond

(* Encoder + conditioned bottleneck; shared by the plain forward and the
   feature-matching tap. Returns (encoder activations, conditioned
   bottleneck). *)
let encode t ~training ?cache_params x =
  let cfg = t.cfg in
  let levels = cfg.st_levels in
  let n = Tensor.dim x 0 in
  if Tensor.dim x 2 <> cfg.st_image_size || Tensor.dim x 3 <> cfg.st_image_size then
    invalid_arg "Student.forward: image size mismatch";
  let enc = Array.make levels (Value.const x) in
  for i = 0 to levels - 1 do
    let input = if i = 0 then Value.const x else Value.leaky_relu 0.2 enc.(i - 1) in
    let y = Layers.apply_conv2d t.downs.(i).d_conv input in
    let y =
      match t.downs.(i).d_bn with
      | Some bn -> Layers.apply_batch_norm bn ~training y
      | None -> y
    in
    enc.(i) <- y
  done;
  let b = bottleneck_size cfg in
  let bottleneck =
    match (t.cond, cache_params) with
    | None, None -> enc.(levels - 1)
    | None, Some _ -> invalid_arg "Student.forward: model built without cache parameters"
    | Some _, None -> invalid_arg "Student.forward: cache parameters required"
    | Some (fc0, fc1, fc2), Some cp ->
      if Tensor.dim cp 0 <> n || Tensor.dim cp 1 <> 2 then
        invalid_arg "Student.forward: cache_params must be [n; 2]";
      let h = Value.relu (Layers.apply_linear fc0 (Value.const cp)) in
      let h = Value.relu (Layers.apply_linear fc1 h) in
      let h = Layers.apply_linear fc2 h in
      let h = Value.reshape h [| n; cfg.st_cond_dim; 1; 1 |] in
      (* A half-depth bottleneck is wider than 1x1: tile the conditioning
         vector over it so every spatial position sees the geometry. *)
      let h = if b > 1 then Value.broadcast_spatial h ~h:b ~w:b else h in
      Value.concat_channels enc.(levels - 1) h
  in
  (enc, bottleneck)

let decode t ~training enc bottleneck =
  let levels = t.cfg.st_levels in
  let d = ref bottleneck in
  for i = 0 to levels - 1 do
    let input = Value.relu !d in
    let y = Layers.apply_conv_transpose2d t.ups.(i).u_conv input in
    if i = levels - 1 then d := Value.tanh_ y
    else begin
      let y =
        match t.ups.(i).u_bn with
        | Some bn -> Layers.apply_batch_norm bn ~training y
        | None -> y
      in
      d := Value.concat_channels y enc.(levels - 2 - i)
    end
  done;
  !d

let forward t ~training ?cache_params x =
  let enc, bottleneck = encode t ~training ?cache_params x in
  decode t ~training enc bottleneck

let forward_with_bottleneck t ~training ?cache_params x =
  let enc, bottleneck = encode t ~training ?cache_params x in
  let out = decode t ~training enc bottleneck in
  (out, enc.(t.cfg.st_levels - 1))

let params t =
  let down_params =
    Array.to_list t.downs
    |> List.concat_map (fun b ->
           Layers.conv2d_params b.d_conv
           @ (match b.d_bn with Some bn -> Layers.batch_norm_params bn | None -> []))
  in
  let up_params =
    Array.to_list t.ups
    |> List.concat_map (fun b ->
           Layers.conv_transpose2d_params b.u_conv
           @ (match b.u_bn with Some bn -> Layers.batch_norm_params bn | None -> []))
  in
  let cond_params =
    match t.cond with
    | None -> []
    | Some (a, b, c) ->
      Layers.linear_params a @ Layers.linear_params b @ Layers.linear_params c
  in
  Param.group [ down_params; up_params; cond_params ]

let parameter_count t = List.fold_left (fun acc p -> acc + Param.numel p) 0 (params t)

let state t =
  let of_down b = match b.d_bn with Some bn -> Layers.batch_norm_state bn | None -> [] in
  let of_up b = match b.u_bn with Some bn -> Layers.batch_norm_state bn | None -> [] in
  List.concat_map of_down (Array.to_list t.downs)
  @ List.concat_map of_up (Array.to_list t.ups)

let clone t =
  let c = create ~seed:0 t.cfg in
  List.iter2
    (fun (src : Param.t) (dst : Param.t) ->
      Tensor.blit ~src:src.Param.value ~dst:dst.Param.value)
    (params t) (params c);
  List.iter2
    (fun (name_src, (src : float array)) (name_dst, dst) ->
      if name_src <> name_dst || Array.length src <> Array.length dst then
        invalid_arg "Student.clone: state mismatch";
      Array.blit src 0 dst 0 (Array.length src))
    (state t) (state c);
  c

(* --- checkpoint container (schema cachebox-student/1) ---

   The architecture travels in the metadata section, so a student loads
   from its checkpoint alone; the CRC-32 + atomic-write discipline of the
   shared container makes corrupt-byte rejection and bit-identical
   round-trips free. *)

let schema = "cachebox-student/1"

let save t path =
  let cfg = t.cfg in
  Checkpoint.save path
    ~meta:
      [
        ("schema", schema);
        ("student.image_size", string_of_int cfg.st_image_size);
        ("student.levels", string_of_int cfg.st_levels);
        ("student.ngf", string_of_int cfg.st_ngf);
        ("student.use_cond", if cfg.st_use_cond then "1" else "0");
        ("student.cond_hidden", string_of_int cfg.st_cond_hidden);
        ("student.cond_dim", string_of_int cfg.st_cond_dim);
      ]
    ~params:(params t) ~state:(state t)

let config_of_meta meta =
  let geti k =
    match List.assoc_opt k meta with
    | Some v -> (
      match int_of_string_opt v with
      | Some i -> i
      | None -> failwith (Printf.sprintf "student checkpoint: bad %s=%S" k v))
    | None -> failwith (Printf.sprintf "student checkpoint: missing %s" k)
  in
  {
    st_image_size = geti "student.image_size";
    st_levels = geti "student.levels";
    st_ngf = geti "student.ngf";
    st_use_cond = geti "student.use_cond" <> 0;
    st_cond_hidden = geti "student.cond_hidden";
    st_cond_dim = geti "student.cond_dim";
  }

let load path =
  let c = Checkpoint.read path in
  let meta = Checkpoint.meta c in
  (match List.assoc_opt "schema" meta with
  | Some s when s = schema -> ()
  | Some s -> failwith (Printf.sprintf "not a student checkpoint (schema %s)" s)
  | None -> failwith "not a student checkpoint (no schema)");
  let cfg = config_of_meta meta in
  (match validate cfg with
  | () -> ()
  | exception Invalid_argument m -> failwith m);
  let t = create ~seed:0 cfg in
  Checkpoint.restore c ~params:(params t) ~state:(state t);
  t
