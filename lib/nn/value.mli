(** Tape-based reverse-mode automatic differentiation over {!Tensor.t}.

    Every operation records its parents and a backward closure; {!backward}
    runs the closures in reverse topological order. Gradients of
    {!of_param} leaves accumulate into the parameter's persistent gradient
    tensor, so a parameter used several times in one graph (or across the
    generator/discriminator losses of a GAN step) sums its contributions. *)

type t

val value : t -> Tensor.t
(** Forward result held by the node. *)

val grad : t -> Tensor.t
(** Gradient after {!backward}; raises [Invalid_argument] if none was
    propagated to this node. *)

(** {1 Leaves} *)

val const : Tensor.t -> t
(** Input data: no gradient is retained. *)

val leaf : Tensor.t -> t
(** A differentiable leaf that retains its gradient (used in tests and for
    gradient checks). *)

val of_param : Param.t -> t
(** Leaf whose gradient accumulates into [p.grad]. *)

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : t -> float -> t
val neg : t -> t

(** {1 Activations} *)

val relu : t -> t
val leaky_relu : float -> t -> t
val tanh_ : t -> t
val sigmoid : t -> t

val dropout : Prng.t -> rate:float -> training:bool -> t -> t
(** Inverted dropout: at training time each element is zeroed with
    probability [rate] and survivors are scaled by [1/(1-rate)]; at
    inference it is the identity. *)

(** {1 Shape} *)

val reshape : t -> int array -> t
val concat_channels : t -> t -> t

val broadcast_spatial : t -> h:int -> w:int -> t
(** Tile an [n; c; 1; 1] node to [n; c; h; w]; the backward pass sums the
    incoming gradient over the spatial axes. Lets a conditioning vector join
    a bottleneck whose spatial extent exceeds 1x1 (the half-depth student). *)

val spatial_mean : t -> t
(** Global average pooling: [n; c; h; w] -> [n; c]; the backward pass
    spreads the gradient uniformly over H and W. Used for feature matching
    between bottlenecks of different spatial sizes. *)

(** {1 Layers} *)

val conv2d : weight:t -> bias:t option -> stride:int -> pad:int -> t -> t
(** NCHW convolution; weight [\[oc; ic; k; k\]]. *)

val conv_transpose2d : weight:t -> bias:t option -> stride:int -> pad:int -> t -> t
(** NCHW transposed convolution; weight [\[ic; oc; k; k\]]. *)

val linear : weight:t -> bias:t option -> t -> t
(** [linear ~weight ~bias x] is [x * weight^T + bias] for [x : \[n; in\]],
    [weight : \[out; in\]]. *)

val batch_norm :
  gamma:t ->
  beta:t ->
  running_mean:float array ->
  running_var:float array ->
  momentum:float ->
  eps:float ->
  training:bool ->
  t ->
  t
(** Batch normalisation over the N/H/W axes of an NCHW tensor. In training
    mode batch statistics are used and the running statistics are updated in
    place; in inference mode the running statistics are used. *)

(** {1 Losses (scalar-valued nodes of shape [|1|])} *)

val mean_all : t -> t
val sum_all : t -> t

val l1_loss : t -> Tensor.t -> t
(** Mean absolute error against a constant target. *)

val mse_loss : t -> Tensor.t -> t

val bce_with_logits : t -> Tensor.t -> t
(** Numerically-stable binary cross entropy on logits, averaged over all
    elements; target entries must lie in [\[0, 1\]]. *)

(** {1 Engine} *)

val backward : t -> unit
(** Seeds the node's gradient with ones and back-propagates. The node is
    normally a scalar loss. *)
