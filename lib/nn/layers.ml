let init_normal rng shape std =
  let t = Tensor.randn rng shape in
  Tensor.scale_ t std;
  t

(* Each layer caches the [Value.of_param] leaf nodes for its parameters.
   A leaf's gradient slot aliases the parameter's persistent [grad] tensor,
   so sharing one node across every apply (and every step) accumulates into
   exactly the same place as rebuilding it each time — it just stops the
   tape from allocating fresh leaf nodes per forward pass. *)

type conv2d = {
  weight : Param.t;
  bias : Param.t option;
  stride : int;
  pad : int;
  wnode : Value.t;
  bnode : Value.t option;
}

let conv2d rng ~name ~in_channels ~out_channels ~kernel ~stride ~pad ~bias =
  let weight =
    Param.create (name ^ ".weight")
      (init_normal rng [| out_channels; in_channels; kernel; kernel |] 0.02)
  in
  let bias = if bias then Some (Param.create (name ^ ".bias") (Tensor.zeros [| out_channels |])) else None in
  { weight; bias; stride; pad;
    wnode = Value.of_param weight;
    bnode = Option.map Value.of_param bias }

let apply_conv2d l x =
  Value.conv2d ~weight:l.wnode ~bias:l.bnode ~stride:l.stride ~pad:l.pad x

let conv2d_params l = l.weight :: Option.to_list l.bias

type conv_transpose2d = {
  tweight : Param.t;
  tbias : Param.t option;
  tstride : int;
  tpad : int;
  twnode : Value.t;
  tbnode : Value.t option;
}

let conv_transpose2d rng ~name ~in_channels ~out_channels ~kernel ~stride ~pad ~bias =
  let tweight =
    Param.create (name ^ ".weight")
      (init_normal rng [| in_channels; out_channels; kernel; kernel |] 0.02)
  in
  let tbias = if bias then Some (Param.create (name ^ ".bias") (Tensor.zeros [| out_channels |])) else None in
  { tweight; tbias; tstride = stride; tpad = pad;
    twnode = Value.of_param tweight;
    tbnode = Option.map Value.of_param tbias }

let apply_conv_transpose2d l x =
  Value.conv_transpose2d ~weight:l.twnode ~bias:l.tbnode ~stride:l.tstride
    ~pad:l.tpad x

let conv_transpose2d_params l = l.tweight :: Option.to_list l.tbias

type linear = {
  lweight : Param.t;
  lbias : Param.t option;
  lwnode : Value.t;
  lbnode : Value.t option;
}

let linear rng ~name ~in_dim ~out_dim ~bias =
  (* Scaled (He-style) initialisation keeps dense activations well-ranged. *)
  let std = sqrt (2.0 /. float_of_int in_dim) in
  let lweight = Param.create (name ^ ".weight") (init_normal rng [| out_dim; in_dim |] std) in
  let lbias = if bias then Some (Param.create (name ^ ".bias") (Tensor.zeros [| out_dim |])) else None in
  { lweight; lbias;
    lwnode = Value.of_param lweight;
    lbnode = Option.map Value.of_param lbias }

let apply_linear l x = Value.linear ~weight:l.lwnode ~bias:l.lbnode x

let linear_params l = l.lweight :: Option.to_list l.lbias

type batch_norm = {
  gamma : Param.t;
  beta : Param.t;
  running_mean : float array;
  running_var : float array;
  momentum : float;
  eps : float;
  gnode : Value.t;
  betanode : Value.t;
}

let batch_norm rng ~name ~channels =
  let gamma_init = Tensor.map (fun v -> 1.0 +. (0.02 *. v)) (Tensor.randn rng [| channels |]) in
  let gamma = Param.create (name ^ ".gamma") gamma_init in
  let beta = Param.create (name ^ ".beta") (Tensor.zeros [| channels |]) in
  {
    gamma;
    beta;
    running_mean = Array.make channels 0.0;
    running_var = Array.make channels 1.0;
    momentum = 0.1;
    eps = 1e-5;
    gnode = Value.of_param gamma;
    betanode = Value.of_param beta;
  }

let apply_batch_norm l ~training x =
  Value.batch_norm ~gamma:l.gnode ~beta:l.betanode
    ~running_mean:l.running_mean ~running_var:l.running_var ~momentum:l.momentum
    ~eps:l.eps ~training x

let batch_norm_params l = [ l.gamma; l.beta ]

let batch_norm_state l =
  [
    (l.gamma.Param.name ^ ".running_mean", l.running_mean);
    (l.gamma.Param.name ^ ".running_var", l.running_var);
  ]
