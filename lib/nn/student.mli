(** Distilled student generator: a channel-scaled (half-width), optionally
    truncated (half-depth) U-Net with the teacher's conditioning-vector
    plumbing. With fewer levels than [log2 image_size] the bottleneck keeps
    a spatial extent above 1x1 and the conditioning vector is broadcast
    over it. The student has no discriminator and no dropout: its forward
    pass is deterministic, so distillation, serving and int8 compilation
    are bit-reproducible. *)

type config = {
  st_image_size : int;  (** input/output heatmap side, a power of two *)
  st_levels : int;  (** encoder/decoder depth; [2^levels <= image_size] *)
  st_ngf : int;  (** base channel width (teacher default is 16) *)
  st_use_cond : bool;  (** concatenate cache-geometry conditioning *)
  st_cond_hidden : int;
  st_cond_dim : int;
}

val default_config : ?image_size:int -> ?levels:int -> ?ngf:int -> unit -> config
(** Half-depth (3 of the teacher's 6 levels) and half-width (ngf 8 vs 16)
    at the paper's 64x64 heatmaps. *)

type t

val create : seed:int -> config -> t
(** Fresh student with pix2pix N(0, 0.02) initialisation and the same
    "empty heatmap" output-bias prior as the teacher. Raises
    [Invalid_argument] on an inconsistent config. *)

val model_config : t -> config
val image_size : t -> int
val uses_cache_params : t -> bool

val bottleneck_size : config -> int
(** Spatial side of the bottleneck, [image_size / 2^levels] (1 for a
    full-depth net). *)

val forward : t -> training:bool -> ?cache_params:Tensor.t -> Tensor.t -> Value.t
(** [n; 1; s; s] in, [n; 1; s; s] tanh heatmap out. [cache_params] is the
    [n; 2] normalised geometry tensor (required iff the student was built
    with conditioning). *)

val forward_with_bottleneck :
  t -> training:bool -> ?cache_params:Tensor.t -> Tensor.t -> Value.t * Value.t
(** As {!forward}, also returning the encoder bottleneck activations
    (pre-conditioning) for feature-matching distillation. *)

val params : t -> Param.t list
val state : t -> (string * float array) list
val parameter_count : t -> int
val clone : t -> t

val student_downs : t -> (Layers.conv2d * Layers.batch_norm option) array
val student_ups : t -> (Layers.conv_transpose2d * Layers.batch_norm option * bool) array
val student_cond : t -> (Layers.linear * Layers.linear * Layers.linear) option
(** Read-only structure views for the quantized-inference compiler, shaped
    like their [Cbgan.generator_*] counterparts (the up-block dropout flag
    is always [false]). *)

val save : t -> string -> unit
(** Atomic, CRC-checksummed checkpoint (schema [cachebox-student/1]); the
    architecture travels in the metadata, so {!load} needs no config. The
    float64 payload makes the round-trip bit-identical. *)

val load : string -> t
(** Raises [Failure] on a missing, corrupt, truncated or non-student file. *)
