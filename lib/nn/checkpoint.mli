(** Binary model checkpoints.

    A checkpoint stores named parameter tensors, named auxiliary float arrays
    (batch-norm running statistics, optimizer moments, training counters) and
    a small string-to-string metadata section. The on-disk format (v2) is a
    little-endian binary container protected by a CRC-32 checksum and written
    atomically (temp file + rename), so a crash mid-save never leaves a
    truncated checkpoint under the target name and any corrupted byte is
    rejected at load with [Failure]. Payload floats are stored as full
    float64 bits: a save/load round-trip is exact, which the resumable
    training loop relies on for bit-identical resume.

    v1 files (pre-checksum, float32, no metadata) remain loadable. *)

val save :
  ?meta:(string * string) list ->
  string ->
  params:Param.t list ->
  state:(string * float array) list ->
  unit
(** Writes a v2 checkpoint atomically; replaces any existing file. [meta]
    carries small string key/value pairs (PRNG state, epoch, options hash). *)

val load :
  string -> params:Param.t list -> state:(string * float array) list -> unit
(** Loads values into the given parameters/state arrays by name. Raises
    [Failure] if the file is malformed or corrupt (checksum mismatch), an
    entry is missing, or a shape disagrees. Entries present in the file but
    not requested are ignored. *)

(** {1 Container access}

    For callers that need the metadata or variable-length entries (the
    training snapshot loader), [read] parses and verifies the file once and
    the accessors below work on the parsed container. *)

type container

val read : string -> container
(** Parses and checksum-verifies a checkpoint. Raises [Failure] on any
    malformed or corrupt input, never any other exception. *)

val version : container -> int
(** 1, 2 or 3. *)

val meta : container -> (string * string) list
(** Metadata pairs ([[]] for v1 files). *)

val find_array : container -> string -> float array option
(** A fresh copy of the named entry's payload, flattened. *)

val restore :
  container -> params:Param.t list -> state:(string * float array) list -> unit
(** As {!load}, from an already-parsed container. *)

val entries : string -> (string * int array) list
(** Names and shapes stored in a checkpoint (diagnostic). *)

(** {1 Dtype-tagged containers (v3)}

    Quantized models store int8 weight bytes next to exact float64 scales
    and biases. [save_packed] writes a v3 file (same CRC-32 + atomic-write
    discipline); {!read} accepts all versions. Through {!find_array} an
    [I8] payload decodes to a float array of the signed byte values
    (lossless), while {!find_payload} returns the raw bytes. *)

type payload =
  | F64 of float array  (** exact float64 round-trip *)
  | I8 of string  (** signed int8 bytes, one per element *)

val save_packed :
  ?meta:(string * string) list -> string -> (string * int array * payload) list -> unit
(** Writes a v3 checkpoint atomically: [(name, dims, payload)] entries whose
    payload size must match the product of [dims]. *)

val find_payload : container -> string -> (int array * payload) option
(** Dims and raw payload of the named entry ([F64] for every entry of a
    v1/v2 file). *)
