(* Versioned checkpoint container.

   v2 ("CBOXCKPT2") layout:
     magic                      9 bytes
     payload length             u64 LE
     CRC-32 (IEEE) of payload   u32 LE
     payload:
       meta count               u32 LE
       meta entries             (klen, key, vlen, value) with u32 lengths
       entry count              u32 LE
       entries                  (nlen, name, ndims, dims..., float64 data)

   v1 ("CBOXCKPT1") had no checksum, no meta section, and float32 payloads;
   it is still readable. New files are always v2: the checksum turns any
   single-byte corruption into a clean [Failure], and the float64 payload
   makes save/load an exact round-trip (required for bit-identical training
   resume). *)

let magic_v1 = "CBOXCKPT1"
let magic_v2 = "CBOXCKPT2"

(* v3 ("CBOXCKPT3") is v2 plus a u32 dtype tag per entry (0 = float64,
   1 = signed int8 bytes), so quantized models ship their weights as raw
   bytes — a quarter the size of v2's float64 payload for the same data —
   while scales and biases stay exact float64. Only [save_packed] writes
   v3; plain [save] stays v2 so training checkpoints are unchanged. *)
let magic_v3 = "CBOXCKPT3"

(* CRC-32 lives in the shared [Crc32] module (lib/tensor) so the trace
   container uses the identical, identically-tested implementation. *)
let crc32 = Crc32.digest

(* --- writing --- *)

let write_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let write_string buf s =
  write_u32 buf (String.length s);
  Buffer.add_string buf s

let write_entry buf name dims (get : int -> float) n =
  write_string buf name;
  write_u32 buf (Array.length dims);
  Array.iter (fun d -> write_u32 buf d) dims;
  for i = 0 to n - 1 do
    Buffer.add_int64_le buf (Int64.bits_of_float (get i))
  done

let atomic_write path write_to =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".ckpt" ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_to oc)
  with
  | () -> Sys.rename tmp path
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let save ?(meta = []) path ~params ~state =
  let payload = Buffer.create (1 lsl 16) in
  write_u32 payload (List.length meta);
  List.iter
    (fun (k, v) ->
      write_string payload k;
      write_string payload v)
    meta;
  write_u32 payload (List.length params + List.length state);
  List.iter
    (fun (p : Param.t) ->
      let v = p.value in
      write_entry payload p.name (Tensor.shape v) (Tensor.get v) (Tensor.numel v))
    params;
  List.iter
    (fun (name, a) ->
      write_entry payload name [| Array.length a |] (Array.get a) (Array.length a))
    state;
  let payload = Buffer.contents payload in
  atomic_write path (fun oc ->
      output_string oc magic_v2;
      let hdr = Bytes.create 12 in
      Bytes.set_int64_le hdr 0 (Int64.of_int (String.length payload));
      Bytes.set_int32_le hdr 8 (Int32.of_int (crc32 payload));
      output_bytes oc hdr;
      output_string oc payload)

type payload = F64 of float array | I8 of string

let save_packed ?(meta = []) path entries =
  let payload = Buffer.create (1 lsl 16) in
  write_u32 payload (List.length meta);
  List.iter
    (fun (k, v) ->
      write_string payload k;
      write_string payload v)
    meta;
  write_u32 payload (List.length entries);
  List.iter
    (fun (name, dims, pay) ->
      let n = Array.fold_left ( * ) 1 dims in
      write_string payload name;
      (match pay with
      | F64 data ->
        if Array.length data <> n then
          invalid_arg ("Checkpoint.save_packed: size mismatch for " ^ name);
        write_u32 payload 0
      | I8 bytes ->
        if String.length bytes <> n then
          invalid_arg ("Checkpoint.save_packed: size mismatch for " ^ name);
        write_u32 payload 1);
      write_u32 payload (Array.length dims);
      Array.iter (fun d -> write_u32 payload d) dims;
      match pay with
      | F64 data ->
        Array.iter (fun v -> Buffer.add_int64_le payload (Int64.bits_of_float v)) data
      | I8 bytes -> Buffer.add_string payload bytes)
    entries;
  let payload = Buffer.contents payload in
  atomic_write path (fun oc ->
      output_string oc magic_v3;
      let hdr = Bytes.create 12 in
      Bytes.set_int64_le hdr 0 (Int64.of_int (String.length payload));
      Bytes.set_int32_le hdr 8 (Int32.of_int (crc32 payload));
      output_bytes oc hdr;
      output_string oc payload)

(* --- reading --- *)

(* Payloads are decoded uniformly to float arrays for the name-indexed
   accessors ([find_array]/[restore]); signed bytes are exactly
   representable, so the decode is lossless. [find_payload] exposes the
   raw dtyped payload for the quantized-model loader. *)
type entry = { dims : int array; data : float array; pay : payload }

type container = {
  version : int;
  meta : (string * string) list;
  table : (string, entry) Hashtbl.t;
}

(* A cursor over [raw] whose primitive reads raise [Failure] (never
   [Invalid_argument]) when the file is too short for the declared
   structure. *)
let cursor path raw start =
  let pos = ref start in
  let need n =
    if !pos + n > String.length raw then
      failwith ("Checkpoint.load: truncated file " ^ path)
  in
  let u32 () =
    need 4;
    let v = Int32.to_int (String.get_int32_le raw !pos) in
    pos := !pos + 4;
    if v < 0 then failwith ("Checkpoint.load: negative count in " ^ path);
    v
  in
  let str () =
    let n = u32 () in
    need n;
    let s = String.sub raw !pos n in
    pos := !pos + n;
    s
  in
  let f32 () =
    need 4;
    let v = Int32.float_of_bits (String.get_int32_le raw !pos) in
    pos := !pos + 4;
    v
  in
  let f64 () =
    need 8;
    let v = Int64.float_of_bits (String.get_int64_le raw !pos) in
    pos := !pos + 8;
    v
  in
  let bytes n =
    need n;
    let s = String.sub raw !pos n in
    pos := !pos + n;
    s
  in
  (u32, str, f32, f64, bytes)

let i8_decode bytes =
  Array.init (String.length bytes) (fun i ->
      let v = Char.code (String.unsafe_get bytes i) in
      float_of_int (if v > 127 then v - 256 else v))

let read_entries path ~float_size ~dtyped (u32, str, f32, f64, bytes) =
  let count = u32 () in
  let table = Hashtbl.create (2 * count) in
  let read_float = if float_size = 4 then f32 else f64 in
  for _ = 1 to count do
    let name = str () in
    let dtype = if dtyped then u32 () else 0 in
    if dtype > 1 then failwith ("Checkpoint.load: unknown dtype in " ^ path);
    let ndims = u32 () in
    if ndims > 8 then failwith ("Checkpoint.load: implausible rank in " ^ path);
    let dims = Array.init ndims (fun _ -> u32 ()) in
    let n = Array.fold_left ( * ) 1 dims in
    let entry =
      if dtype = 1 then begin
        let raw = bytes n in
        { dims; data = i8_decode raw; pay = I8 raw }
      end
      else begin
        let data = Array.init n (fun _ -> read_float ()) in
        { dims; data; pay = F64 data }
      end
    in
    Hashtbl.replace table name entry
  done;
  table

let read path =
  let ic = open_in_bin path in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let mlen = String.length magic_v2 in
  if String.length raw < mlen then failwith ("Checkpoint.load: bad magic in " ^ path);
  let checksummed version =
    if String.length raw < mlen + 12 then
      failwith ("Checkpoint.load: truncated header in " ^ path);
    let plen = Int64.to_int (String.get_int64_le raw mlen) in
    let stored_crc = Int32.to_int (String.get_int32_le raw (mlen + 8)) land 0xFFFFFFFF in
    if plen < 0 || String.length raw <> mlen + 12 + plen then
      failwith ("Checkpoint.load: payload length mismatch in " ^ path);
    let payload = String.sub raw (mlen + 12) plen in
    if crc32 payload <> stored_crc then
      failwith ("Checkpoint.load: checksum mismatch in " ^ path ^ " (corrupt file)");
    let ((u32, str, _, _, _) as cur) = cursor path payload 0 in
    let meta_count = u32 () in
    if meta_count > 10_000 then
      failwith ("Checkpoint.load: implausible meta count in " ^ path);
    let meta =
      List.init meta_count (fun _ ->
          let k = str () in
          let v = str () in
          (k, v))
    in
    {
      version;
      meta;
      table = read_entries path ~float_size:8 ~dtyped:(version >= 3) cur;
    }
  in
  match String.sub raw 0 mlen with
  | m when m = magic_v3 -> checksummed 3
  | m when m = magic_v2 -> checksummed 2
  | m when m = magic_v1 ->
    let cur = cursor path raw mlen in
    { version = 1; meta = []; table = read_entries path ~float_size:4 ~dtyped:false cur }
  | _ -> failwith ("Checkpoint.load: bad magic in " ^ path)

let version c = c.version
let meta c = c.meta

let find_array c name =
  Option.map (fun e -> e.data) (Hashtbl.find_opt c.table name)

let find_payload c name =
  Option.map (fun e -> (e.dims, e.pay)) (Hashtbl.find_opt c.table name)

let restore c ~params ~state =
  let find name =
    match Hashtbl.find_opt c.table name with
    | Some e -> e
    | None -> failwith ("Checkpoint.load: missing entry " ^ name)
  in
  List.iter
    (fun (p : Param.t) ->
      let e = find p.name in
      if e.dims <> Tensor.shape p.value then
        failwith ("Checkpoint.load: shape mismatch for " ^ p.name);
      Array.iteri (fun i v -> Tensor.set p.value i v) e.data)
    params;
  List.iter
    (fun (name, a) ->
      let e = find name in
      if Array.length e.data <> Array.length a then
        failwith ("Checkpoint.load: length mismatch for " ^ name);
      Array.blit e.data 0 a 0 (Array.length a))
    state

let load path ~params ~state = restore (read path) ~params ~state

let entries path =
  let c = read path in
  Hashtbl.fold (fun name e acc -> (name, e.dims) :: acc) c.table []
  |> List.sort compare
