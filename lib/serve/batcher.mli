(** Dynamic micro-batching policy for the serving path.

    Pure coalescing state machine: admitted infer requests accumulate here
    until the batch is worth flushing, which happens when either
    - the queue reaches [max_batch] (a full batch), or
    - any queued request reaches its flush obligation — its enqueue time
      plus [max_linger_s], tightened to [deadline - deadline_margin_s] for a
      request whose own deadline is near (deadline-aware flushing).

    The module only decides {e when} and {e what} to flush; the daemon's
    batcher thread owns the clock-driven loop and hands flushed batches to
    {!Serve_engine.infer_batch}. Time is injected at construction so the
    serve-batch suite replays exact coalescing schedules with a virtual
    clock. Thread-safe (one internal mutex). *)

type config = {
  max_batch : int;  (** flush as soon as this many requests are queued *)
  max_linger_s : float;  (** longest any request may wait for batch mates *)
  deadline_margin_s : float;
      (** flush a request this close to its deadline even if the batch is
          small, leaving headroom for the forward pass itself *)
}

val default_config : config
(** max_batch 32, linger 5 ms, deadline margin 50 ms. *)

type 'a t

val create : ?now:(unit -> float) -> config -> 'a t
(** [now] defaults to [Unix.gettimeofday]; tests inject a virtual clock. *)

val push : 'a t -> ?deadline:float -> 'a -> unit
(** Enqueue one request; [deadline] is the request's absolute deadline on
    the batcher's clock (its flush obligation is clamped to now when the
    deadline is already within the margin). *)

val length : 'a t -> int

val due : 'a t -> bool
(** Must a batch be flushed right now? True on a full batch or any queued
    request at/past its flush obligation. *)

val next_flush : 'a t -> float option
(** Earliest flush obligation among queued requests ([None] when empty) —
    the batcher thread sleeps until this instant at the latest. *)

val take : 'a t -> 'a list
(** The batch to run now, FIFO order, at most [max_batch] items: everything
    queued when {!due}, [[]] otherwise. *)

val drain : 'a t -> 'a list
(** Everything queued, regardless of obligations (shutdown path). *)

val flushes : 'a t -> int * int
(** (full-batch flushes, linger/deadline-forced flushes) so far. *)
