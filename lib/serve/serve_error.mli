(** The serving error taxonomy.

    Every failure an external caller can observe — over the wire or as a CLI
    exit status — is one of these codes. The string codes and exit codes
    are {e stable}: clients and CI scripts match on them; new codes are
    only ever appended.

    {v
    code                 wire string            exit  meaning
    Bad_request          "bad_request"           2    malformed/over-limit request
    Invalid_config       "invalid_config"        2    impossible cache geometry
    Corrupt_input        "corrupt_input"         3    checksum/parse failure in a file
    Model_unavailable    "model_unavailable"     4    no loadable/trustworthy model
    Deadline_exceeded    "deadline_exceeded"     5    request deadline expired
    Overloaded           "overloaded"            6    bounded queue shed the request
    Internal             "internal"              7    anything else (a bug)
    Upstream_unavailable "upstream_unavailable"  8    router: no live shard replica
                                                      and no fallback
    v} *)

type code =
  | Bad_request
  | Invalid_config
  | Corrupt_input
  | Model_unavailable
  | Deadline_exceeded
  | Overloaded
  | Internal
  | Upstream_unavailable

type t = { code : code; message : string }

exception Error of t
(** The only exception the serving layer lets escape on purpose. *)

val all_codes : code list

val code_string : code -> string
(** Stable wire identifier, e.g. ["bad_request"]. *)

val code_of_string : string -> code option

val exit_code : code -> int
(** Stable CLI exit status (see table above; success is 0). *)

val v : code -> ('a, unit, string, t) format4 -> 'a
(** [v code fmt ...] builds an error value. *)

val fail : code -> ('a, unit, string, 'b) format4 -> 'a
(** [fail code fmt ...] raises {!Error}. *)

val of_exn : exn -> t
(** Total mapping of any exception into the taxonomy: {!Error} passes
    through, [Failure]/[Sys_error] become {!Corrupt_input},
    [Invalid_argument] becomes {!Bad_request}, everything else is
    {!Internal} (with the exception text preserved). *)

val pp : Format.formatter -> t -> unit
(** ["<code>: <message>"]. *)
