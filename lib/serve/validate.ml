let max_sets = 1 lsl 22
let max_ways = 1024
let max_block = 65536
let default_max_trace_len = 2_000_000
let max_deadline_s = 600.0

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let err code fmt = Printf.ksprintf (fun m -> Error { Serve_error.code; message = m }) fmt

let cache_config ?(block_bytes = 64) ?(policy = Cache.Lru) ~sets ~ways () =
  if not (is_power_of_two sets) then
    err Serve_error.Invalid_config "sets must be a power of two (got %d)" sets
  else if sets > max_sets then
    err Serve_error.Invalid_config "sets too large (got %d, max %d)" sets max_sets
  else if ways <= 0 then
    err Serve_error.Invalid_config "ways must be positive (got %d)" ways
  else if ways > max_ways then
    err Serve_error.Invalid_config "ways too large (got %d, max %d)" ways max_ways
  else if not (is_power_of_two block_bytes) then
    err Serve_error.Invalid_config "block_bytes must be a power of two (got %d)" block_bytes
  else if block_bytes < 8 || block_bytes > max_block then
    err Serve_error.Invalid_config "block_bytes out of range [8, %d] (got %d)" max_block
      block_bytes
  else
    (* The constructor re-checks the structural invariants; any residual
       Invalid_argument is still mapped, so this function is total. *)
    match Cache.config ~block_bytes ~policy ~sets ~ways () with
    | cfg -> Ok cfg
    | exception Invalid_argument m -> err Serve_error.Invalid_config "%s" m

let hierarchy_configs configs =
  let rec go level = function
    | a :: (b :: _ as rest) ->
      if Cache.size_bytes b < Cache.size_bytes a then
        err Serve_error.Invalid_config
          "cache levels must grow outward: L%d (%s, %d B) is larger than L%d (%s, %d B)"
          level (Cache.config_name a) (Cache.size_bytes a) (level + 1) (Cache.config_name b)
          (Cache.size_bytes b)
      else go (level + 1) rest
    | _ -> Ok ()
  in
  go 1 configs

let trace ?(max_len = default_max_trace_len) ?(what = "trace") t =
  let n = Array.length t in
  if n = 0 then err Serve_error.Bad_request "%s is empty" what
  else if n > max_len then
    err Serve_error.Bad_request "%s too long (%d accesses, max %d)" what n max_len
  else begin
    let bad = ref (-1) in
    (try
       Array.iteri
         (fun i a ->
           if a < 0 || a > Trace_io.max_address then begin
             bad := i;
             raise Exit
           end)
         t
     with Exit -> ());
    if !bad >= 0 then
      err Serve_error.Bad_request "%s address at index %d out of range [0, 2^52]" what !bad
    else Ok ()
  end

let trace_for_spec spec ?max_len t =
  match trace ?max_len t with
  | Error _ as e -> e
  | Ok () ->
    let need = Heatmap.accesses_per_image spec in
    if Array.length t < need then
      err Serve_error.Bad_request
        "trace too short for the heatmap pipeline (%d accesses, need at least %d)"
        (Array.length t) need
    else Ok ()

let finite_tensor ~what t =
  let n = Tensor.numel t in
  let bad = ref (-1) in
  (try
     for i = 0 to n - 1 do
       let v = Tensor.get t i in
       if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then begin
         bad := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !bad >= 0 then
    err Serve_error.Corrupt_input "%s contains a non-finite value at index %d" what !bad
  else Ok ()

let read_trace_file ?max_len path =
  if not (Sys.file_exists path) then
    err Serve_error.Corrupt_input "trace file %s does not exist" path
  else
    match Trace_io.read_auto path with
    | t -> (
      match trace ?max_len ~what:(Printf.sprintf "trace file %s" path) t with
      | Ok () -> Ok t
      | Error e ->
        (* The request named a readable file whose *content* is unusable
           (empty, over-limit, out-of-range addresses): that is corrupt
           input, not a malformed request. *)
        Error { e with Serve_error.code = Serve_error.Corrupt_input })
    | exception Failure m -> err Serve_error.Corrupt_input "%s" m
    | exception Sys_error m -> err Serve_error.Corrupt_input "%s" m

let load_checkpoint thunk =
  match thunk () with
  | v -> Ok v
  | exception Failure m -> err Serve_error.Model_unavailable "checkpoint rejected: %s" m
  | exception Sys_error m -> err Serve_error.Model_unavailable "checkpoint unreadable: %s" m

(* --- wire requests --- *)

type trace_source =
  | Inline of int array
  | Benchmark of { name : string; length : int }
  | File of string

(* A stream chunk's payload survives validation even when it is broken:
   the session layer must see the fault (to poison that one session with a
   typed [corrupt_input]) rather than have the whole line bounce as a
   sessionless [bad_request]. Address range checks are likewise deferred to
   the session so a bad address mid-chunk can roll the session back. *)
type feed_payload = Addrs of int array | Corrupt of string

type request =
  | Infer of {
      id : string option;
      sets : int;
      ways : int;
      source : trace_source;
      deadline_s : float option;
      backend : Cbox_infer.backend option;
    }
  | Health
  | Stats_request
  | Shutdown
  | Reload of { id : string option; checkpoint : string option }
  | Stream_open of { id : string option; sets : int; ways : int }
  | Stream_feed of {
      id : string option;
      session : string;
      seq : int option;
      ack : int option;
      payload : feed_payload;
    }
  | Stream_resume of { id : string option; session : string; last_window : int option }
  | Stream_close of { id : string option; session : string }

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field_int json key =
  match Sjson.member key json with
  | None -> err Serve_error.Bad_request "missing required field %S" key
  | Some v -> (
    match Sjson.to_int v with
    | Some i -> Ok i
    | None -> err Serve_error.Bad_request "field %S must be an integer" key)

let opt_field json key conv kind =
  match Sjson.member key json with
  | None -> Ok None
  | Some v -> (
    match conv v with
    | Some x -> Ok (Some x)
    | None -> err Serve_error.Bad_request "field %S must be %s" key kind)

let req_str json key =
  match Sjson.member key json with
  | None -> err Serve_error.Bad_request "missing required field %S" key
  | Some v -> (
    match Sjson.to_str v with
    | Some s when s <> "" -> Ok s
    | Some _ -> err Serve_error.Bad_request "field %S must be non-empty" key
    | None -> err Serve_error.Bad_request "field %S must be a string" key)

let feed_payload json =
  match Sjson.member "addrs" json with
  | None -> Corrupt "missing required field \"addrs\""
  | Some v -> (
    match Sjson.to_list v with
    | None -> Corrupt "field \"addrs\" must be an array of addresses"
    | Some items -> (
      let n = List.length items in
      let arr = Array.make n 0 in
      let bad = ref None in
      List.iteri
        (fun i v ->
          match Sjson.to_int v with
          | Some a -> arr.(i) <- a
          | None -> if !bad = None then bad := Some i)
        items;
      match !bad with
      | Some i -> Corrupt (Printf.sprintf "\"addrs\" element %d is not an integer" i)
      | None -> Addrs arr))

let inline_trace ~max_trace_len items =
  let n = List.length items in
  if n > max_trace_len then
    err Serve_error.Bad_request "field \"trace\" too long (%d accesses, max %d)" n
      max_trace_len
  else begin
    let arr = Array.make n 0 in
    let bad = ref false in
    List.iteri
      (fun i v ->
        match Sjson.to_int v with
        | Some a -> arr.(i) <- a
        | None -> bad := true)
      items;
    if !bad then err Serve_error.Bad_request "field \"trace\" must contain only integers"
    else
      let* () = trace ~max_len:max_trace_len ~what:"field \"trace\"" arr in
      Ok (Inline arr)
  end

let infer_source ~max_trace_len json =
  let present k = Sjson.member k json <> None in
  let sources = List.filter present [ "trace"; "benchmark"; "trace_file" ] in
  match sources with
  | [ "trace" ] -> (
    match Sjson.to_list (Option.get (Sjson.member "trace" json)) with
    | Some items -> inline_trace ~max_trace_len items
    | None -> err Serve_error.Bad_request "field \"trace\" must be an array of addresses")
  | [ "benchmark" ] -> (
    match Sjson.to_str (Option.get (Sjson.member "benchmark" json)) with
    | None -> err Serve_error.Bad_request "field \"benchmark\" must be a string"
    | Some name ->
      let* length =
        match Sjson.member "trace_len" json with
        | None -> Ok 16_000
        | Some v -> (
          match Sjson.to_int v with
          | Some l when l >= 1 && l <= max_trace_len -> Ok l
          | Some l ->
            err Serve_error.Bad_request "field \"trace_len\" out of range [1, %d] (got %d)"
              max_trace_len l
          | None -> err Serve_error.Bad_request "field \"trace_len\" must be an integer")
      in
      Ok (Benchmark { name; length }))
  | [ "trace_file" ] -> (
    match Sjson.to_str (Option.get (Sjson.member "trace_file" json)) with
    | Some path -> Ok (File path)
    | None -> err Serve_error.Bad_request "field \"trace_file\" must be a string")
  | [] ->
    err Serve_error.Bad_request
      "infer needs a trace source: one of \"trace\", \"benchmark\" or \"trace_file\""
  | several ->
    err Serve_error.Bad_request "conflicting trace sources: %s"
      (String.concat ", " several)

let request ?(max_trace_len = default_max_trace_len) json =
  match json with
  | Sjson.Obj _ -> (
    match Sjson.member "op" json with
    | None -> err Serve_error.Bad_request "missing required field \"op\""
    | Some op -> (
      match Sjson.to_str op with
      | None -> err Serve_error.Bad_request "field \"op\" must be a string"
      | Some "health" -> Ok Health
      | Some "stats" -> Ok Stats_request
      | Some "shutdown" -> Ok Shutdown
      | Some "reload" ->
        let* id = opt_field json "id" Sjson.to_str "a string" in
        let* checkpoint = opt_field json "checkpoint" Sjson.to_str "a string" in
        Ok (Reload { id; checkpoint })
      | Some "infer" ->
        let* id = opt_field json "id" Sjson.to_str "a string" in
        let* sets = field_int json "sets" in
        let* ways = field_int json "ways" in
        let* source = infer_source ~max_trace_len json in
        let* deadline_s =
          match Sjson.member "deadline_ms" json with
          | None -> Ok None
          | Some v -> (
            match Sjson.to_float v with
            | Some ms when ms > 0.0 && ms <= max_deadline_s *. 1000.0 ->
              Ok (Some (ms /. 1000.0))
            | Some ms ->
              err Serve_error.Bad_request
                "field \"deadline_ms\" out of range (0, %g] (got %g)"
                (max_deadline_s *. 1000.0) ms
            | None -> err Serve_error.Bad_request "field \"deadline_ms\" must be a number")
        in
        let* backend =
          match Sjson.member "backend" json with
          | None -> Ok None
          | Some v -> (
            match Sjson.to_str v with
            | None -> err Serve_error.Bad_request "field \"backend\" must be a string"
            | Some s -> (
              match Cbox_infer.backend_of_string s with
              | Some b -> Ok (Some b)
              | None ->
                err Serve_error.Invalid_config
                  "unknown backend %S (expected float32, int8, student, student-int8, \
                   hrd or stm)" s))
        in
        Ok (Infer { id; sets; ways; source; deadline_s; backend })
      | Some "stream_open" ->
        let* id = opt_field json "id" Sjson.to_str "a string" in
        let* sets = field_int json "sets" in
        let* ways = field_int json "ways" in
        Ok (Stream_open { id; sets; ways })
      | Some "stream_feed" ->
        let* id = opt_field json "id" Sjson.to_str "a string" in
        let* session = req_str json "session" in
        let* seq = opt_field json "seq" Sjson.to_int "an integer" in
        let* ack = opt_field json "ack" Sjson.to_int "an integer" in
        Ok (Stream_feed { id; session; seq; ack; payload = feed_payload json })
      | Some "stream_resume" ->
        let* id = opt_field json "id" Sjson.to_str "a string" in
        let* session = req_str json "session" in
        let* last_window = opt_field json "last_window" Sjson.to_int "an integer" in
        Ok (Stream_resume { id; session; last_window })
      | Some "stream_close" ->
        let* id = opt_field json "id" Sjson.to_str "a string" in
        let* session = req_str json "session" in
        Ok (Stream_close { id; session })
      | Some other -> err Serve_error.Bad_request "unknown op %S" other))
  | _ -> err Serve_error.Bad_request "request must be a JSON object"
