type config = {
  fallback : Cbox_infer.fallback;
  default_backend : Cbox_infer.backend;
  default_deadline_s : float;
  max_deadline_s : float;
  max_trace_len : int;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  batch_size : int;
  grace_lo : float;
  grace_hi : float;
  warmup : bool;
  replicas : int;
}

let default_config ?(fallback = Cbox_infer.Fallback_hrd)
    ?(default_backend = Cbox_infer.Backend_float32) () =
  {
    fallback;
    default_backend;
    default_deadline_s = 5.0;
    max_deadline_s = 60.0;
    max_trace_len = Validate.default_max_trace_len;
    breaker_threshold = 3;
    breaker_cooldown_s = 5.0;
    batch_size = 8;
    grace_lo = -0.25;
    grace_hi = 1.25;
    warmup = true;
    replicas = 1;
  }

type reload_spec = {
  reload_seed : int;
  reload_model_cfg : Cbgan.config;
  reload_default_path : string option;
  reload_student_path : string option;
      (* student checkpoint re-read on every reload so SIGHUP hot-swaps the
         distilled backend along with the teacher *)
}

type t = {
  cfg : config;
  spec : Heatmap.spec;
  now : unit -> float;
  journal : Runlog.t option;
  jm : Mutex.t;  (* Runlog is not thread-safe; batch completions journal concurrently *)
  mutable model : Cbgan.t option;
  mutable qmodel : Qgen.t option;
      (* int8 quantization of [model], rebuilt on reload; None when the
         model is missing or quantization failed (the int8 backend then
         degrades to float32 per request) *)
  mutable pool : (Cbgan.t * Mutex.t) array;  (* replica 0 is [model] itself *)
  mutable student : Student.t option;
      (* distilled student, loaded from its own checkpoint; None when no
         student was configured or its checkpoint was rejected — student
         requests then degrade to float32, flagged, breaker untouched *)
  mutable sqmodel : Qgen.t option;  (* int8 quantization of [student] *)
  mutable spool : (Student.t * Mutex.t) array;  (* replica 0 is [student] *)
  breaker : Breaker.t;
  stats : Serve_stats.t;
  em : Mutex.t;  (* guards ewma_model_s and req_count across entrants *)
  mutable ewma_model_s : float;  (* 0 until the first model inference *)
  mutable req_count : int;
  reload : reload_spec option;
  rm : Mutex.t;  (* held for the duration of a reload; try_lock rejects overlap *)
  mutable reloads : int;
  mutable reload_failures : int;
  mutable extra_stats : unit -> (string * Sjson.t) list;
      (* extension point: the stream-session manager contributes its gauges
         to the stats reply without the engine depending on it *)
}

(* A tiny inference through the real serving pipeline so the first client
   request doesn't pay the cold-start costs: workspace arenas reach their
   steady slot population, the Dpool workers spin up, and code paths get
   compiled/paged in. Best-effort by design — a model that cannot run a
   warmup inference will fail identically on real requests and be handled
   by the breaker/fallback machinery there. *)
let warmup_model ~spec ~batch_size model =
  try
    match Validate.cache_config ~sets:64 ~ways:12 () with
    | Error _ -> ()
    | Ok cache ->
      let trace = Array.init 256 (fun i -> i * 64) in
      let access = Heatmap.of_trace spec trace in
      ignore (Cbox_infer.synthesize model spec ~batch_size ~cache access)
  with _ -> ()

(* Load, warm, quantize and replicate a student checkpoint entirely off to
   the side. Total: any failure (missing file, corrupt bytes, wrong schema)
   is an [Error reason] — callers journal it and keep float32 serving. *)
let student_of_checkpoint ~spec ~warmup ~batch_size ~replicas path =
  match Student.load path with
  | exception e -> Error (Printexc.to_string e)
  | s ->
    (if warmup then
       try
         match Validate.cache_config ~sets:64 ~ways:12 () with
         | Error _ -> ()
         | Ok cache ->
           let trace = Array.init 256 (fun i -> i * 64) in
           let access = Heatmap.of_trace spec trace in
           ignore (Cbox_infer.ssynthesize s spec ~batch_size ~cache access)
       with _ -> ());
    let sq = try Some (Qgen.of_student ~spec s) with _ -> None in
    let spool =
      Array.init replicas (fun i ->
          ((if i = 0 then s else Student.clone s), Mutex.create ()))
    in
    Ok (s, sq, spool)

let create ?now ?journal ?reload ?student_path ~spec ~model cfg =
  let now = Option.value now ~default:Unix.gettimeofday in
  if cfg.replicas < 1 then invalid_arg "Serve_engine.create: replicas must be >= 1";
  (* Serving is forward-only, so the wide-batch conv lowering (bit-identical,
     faster at batch > 1) is safe to leave on for the whole process. *)
  Conv.set_wide_batch true;
  if cfg.warmup then
    Option.iter (warmup_model ~spec ~batch_size:cfg.batch_size) model;
  (* Quantize eagerly so the int8 backend never pays calibration on the
     serving path; a model that cannot quantize leaves [qmodel] at None and
     int8 requests degrade to float32 (flagged) instead of failing. *)
  let quantize m = try Some (Qgen.of_model ~spec m) with _ -> None in
  let qmodel = Option.bind model quantize in
  let pool =
    match model with
    | None -> [||]
    | Some m ->
      Array.init cfg.replicas (fun i ->
          ((if i = 0 then m else Cbgan.clone m), Mutex.create ()))
  in
  (* The student is optional and independent: a checkpoint that fails to
     load (corrupt bytes, wrong schema) is journalled and dropped, leaving
     float32 (and int8) serving untouched. *)
  let student, sqmodel, spool =
    match student_path with
    | None -> (None, None, [||])
    | Some p -> (
      match
        student_of_checkpoint ~spec ~warmup:cfg.warmup ~batch_size:cfg.batch_size
          ~replicas:cfg.replicas p
      with
      | Ok (s, sq, sp) -> (Some s, sq, sp)
      | Error why ->
        Option.iter
          (fun j ->
            Runlog.event j "student_reject"
              [ ("path", Runlog.S p); ("why", Runlog.S why) ])
          journal;
        (None, None, [||]))
  in
  {
    cfg;
    spec;
    now;
    journal;
    jm = Mutex.create ();
    model;
    qmodel;
    pool;
    student;
    sqmodel;
    spool;
    breaker =
      Breaker.create ~threshold:cfg.breaker_threshold ~cooldown:cfg.breaker_cooldown_s ~now
        ();
    stats = Serve_stats.create ();
    em = Mutex.create ();
    ewma_model_s = 0.0;
    req_count = 0;
    reload;
    rm = Mutex.create ();
    reloads = 0;
    reload_failures = 0;
    extra_stats = (fun () -> []);
  }

let model_of_checkpoint ~seed model_cfg ~path =
  if not (Sys.file_exists path) then
    Error (Serve_error.v Serve_error.Model_unavailable "checkpoint %s not found" path)
  else
    Validate.load_checkpoint (fun () ->
        let model = Cbgan.create ~seed model_cfg in
        Cbgan.load model path;
        model)

let journal_event t kind fields =
  match t.journal with
  | None -> ()
  | Some j ->
    Mutex.lock t.jm;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.jm) (fun () ->
        Runlog.event j kind fields)

let stats t = Serve_stats.snapshot t.stats
let breaker_state t = Breaker.state t.breaker
let model_loaded t = t.model <> None
let student_loaded t = t.student <> None
let requests_seen t = t.req_count
let reloads t = t.reloads
let now t = t.now ()
let spec t = t.spec
let set_extra_stats t f = t.extra_stats <- f

(* --- zero-downtime reload ---

   Load and warm the new checkpoint entirely off to the side, then hand it
   over with two plain field writes. In-flight batches snapshotted [t.pool]
   at batch start, so they drain on the old model; the next batch picks up
   the new pool. Nothing below ever blocks the serving path: overlapping
   reloads are rejected ([try_lock]), and a checkpoint that fails to load
   leaves the old model serving untouched. *)
let reload t ?path () =
  match t.reload with
  | None ->
    Error
      (Serve_error.v Serve_error.Invalid_config
         "daemon has no reload source (started without a model configuration)")
  | Some r -> (
    let resolved =
      match (path, r.reload_default_path) with
      | Some p, _ | None, Some p -> Ok p
      | None, None ->
        Error
          (Serve_error.v Serve_error.Bad_request
             "reload needs a \"checkpoint\" path (daemon has no default)")
    in
    match resolved with
    | Error e -> Error e
    | Ok path ->
      if not (Mutex.try_lock t.rm) then
        Error (Serve_error.v Serve_error.Overloaded "reload already in progress")
      else
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.rm)
          (fun () ->
            journal_event t "reload_start" [ ("path", Runlog.S path) ];
            match model_of_checkpoint ~seed:r.reload_seed r.reload_model_cfg ~path with
            | Error e ->
              t.reload_failures <- t.reload_failures + 1;
              journal_event t "reload_reject"
                [ ("path", Runlog.S path); ("why", Runlog.S e.Serve_error.message) ];
              Error e
            | Ok m ->
              if t.cfg.warmup then warmup_model ~spec:t.spec ~batch_size:t.cfg.batch_size m;
              let q = try Some (Qgen.of_model ~spec:t.spec m) with _ -> None in
              let pool =
                Array.init t.cfg.replicas (fun i ->
                    ((if i = 0 then m else Cbgan.clone m), Mutex.create ()))
              in
              (* The student checkpoint is re-read off to the side too, so a
                 reload hot-swaps both generations together. A student that
                 fails to load keeps the PREVIOUS student serving (the swap
                 below is all-or-nothing per family): a bad student artifact
                 must never degrade a fleet that was serving fine. *)
              let student_next =
                Option.map
                  (fun p ->
                    ( p,
                      student_of_checkpoint ~spec:t.spec ~warmup:t.cfg.warmup
                        ~batch_size:t.cfg.batch_size ~replicas:t.cfg.replicas p ))
                  r.reload_student_path
              in
              t.pool <- pool;
              t.model <- Some m;
              t.qmodel <- q;
              (match student_next with
              | None -> ()
              | Some (_, Ok (s, sq, sp)) ->
                t.spool <- sp;
                t.student <- Some s;
                t.sqmodel <- sq
              | Some (p, Error why) ->
                journal_event t "student_reject"
                  [ ("path", Runlog.S p); ("why", Runlog.S why) ]);
              t.reloads <- t.reloads + 1;
              journal_event t "reload_ok"
                [ ("path", Runlog.S path); ("generation", Runlog.I t.reloads) ];
              Ok ()))

(* --- reply construction --- *)

let base_fields id = match id with None -> [] | Some id -> [ ("id", Sjson.Str id) ]

let error_reply ?id (e : Serve_error.t) =
  Sjson.Obj
    (base_fields id
    @ [
        ("ok", Sjson.Bool false);
        ("error", Sjson.Str (Serve_error.code_string e.Serve_error.code));
        ("message", Sjson.Str e.Serve_error.message);
      ])

let hit_rate_reply ?id ~degraded ~source ~backend ~reason ~latency_ms hit_rate =
  Sjson.Obj
    (base_fields id
    @ [
        ("ok", Sjson.Bool true);
        ("op", Sjson.Str "infer");
        ("hit_rate", Sjson.Num hit_rate);
        ("degraded", Sjson.Bool degraded);
        ("source", Sjson.Str source);
        ("backend", Sjson.Str backend);
      ]
    @ (match reason with None -> [] | Some r -> [ ("reason", Sjson.Str r) ])
    @ [ ("latency_ms", Sjson.Num latency_ms) ])

let health_reply t =
  let breaker = Breaker.state t.breaker in
  let healthy = model_loaded t && breaker = Breaker.Closed in
  Sjson.Obj
    [
      ("ok", Sjson.Bool true);
      ("op", Sjson.Str "health");
      ("status", Sjson.Str (if healthy then "ok" else "degraded"));
      ("model_loaded", Sjson.Bool (model_loaded t));
      ("student_loaded", Sjson.Bool (student_loaded t));
      ("breaker", Sjson.Str (Breaker.state_name breaker));
      ("fallback", Sjson.Str (Cbox_infer.fallback_name t.cfg.fallback));
    ]

let stats_reply t =
  let s = Serve_stats.snapshot t.stats in
  Sjson.Obj
    ([
       ("ok", Sjson.Bool true);
       ("op", Sjson.Str "stats");
       ("served", Sjson.Num (float_of_int s.Serve_stats.served));
       ("ok_count", Sjson.Num (float_of_int s.Serve_stats.ok));
       ("degraded_count", Sjson.Num (float_of_int s.Serve_stats.degraded));
       ("shed", Sjson.Num (float_of_int s.Serve_stats.shed));
       ("p50_ms", Sjson.Num s.Serve_stats.p50_ms);
       ("p99_ms", Sjson.Num s.Serve_stats.p99_ms);
       ("breaker", Sjson.Str (Breaker.state_name (Breaker.state t.breaker)));
       ("breaker_opens", Sjson.Num (float_of_int (Breaker.times_opened t.breaker)));
       (* Workspace-arena counters: ws_allocs should plateau after warmup;
          steady growth under load means scratch buffers are not being
          reused (an allocation regression). *)
       ("ws_allocs", Sjson.Num (float_of_int (Workspace.alloc_count ())));
       ("ws_borrows", Sjson.Num (float_of_int (Workspace.borrow_count ())));
       (* Routing counters are zero on a plain backend; the router fills
          them in. Present everywhere so the stats schema is uniform. *)
       ("retries", Sjson.Num (float_of_int s.Serve_stats.retries));
       ("hedges", Sjson.Num (float_of_int s.Serve_stats.hedges));
       ("degraded_router", Sjson.Num (float_of_int s.Serve_stats.degraded_router));
       ("reloads", Sjson.Num (float_of_int t.reloads));
       ("reload_failures", Sjson.Num (float_of_int t.reload_failures));
     ]
    (* Per-backend serve counts: all six registry entries are always
       present so clients can compute deltas without existence checks. The
       JSON key is the backend name with '-' mapped to '_' (field names
       stay identifier-shaped: backend_student_int8). *)
    @ List.map
        (fun b ->
          let n =
            match List.assoc_opt b s.Serve_stats.backends with Some n -> n | None -> 0
          in
          let key = String.map (fun c -> if c = '-' then '_' else c) b in
          ("backend_" ^ key, Sjson.Num (float_of_int n)))
        [ "float32"; "int8"; "student"; "student-int8"; "hrd"; "stm" ]
    @ t.extra_stats ()
    @ List.map
        (fun (code, n) -> ("err_" ^ code, Sjson.Num (float_of_int n)))
        s.Serve_stats.errors)

let overload_reply t =
  Serve_stats.shed t.stats;
  journal_event t "shed" [];
  error_reply (Serve_error.v Serve_error.Overloaded "request queue full")

let draining_reply t =
  Serve_stats.shed t.stats;
  journal_event t "shed" [ ("why", Runlog.S "shutdown") ];
  error_reply (Serve_error.v Serve_error.Overloaded "server shutting down")

(* --- inference --- *)

let resolve_trace t source =
  match source with
  | Validate.Inline arr -> Ok arr
  | Validate.Benchmark { name; length } -> (
    match Suite.find name with
    | w -> Ok (w.Workload.generate length)
    | exception Not_found ->
      Error (Serve_error.v Serve_error.Bad_request "unknown benchmark %S" name))
  | Validate.File path -> Validate.read_trace_file ~max_len:t.cfg.max_trace_len path

(* Shared per-request prediction body: fault-injection hooks, heatmap
   construction, one forward through [synth], the validity gate. [synth] is
   the backend-specific scorer (float32 or int8). The hooks simulate a
   stalled model, a NaN output, a checkpoint that rotted under a live
   server, a crashing backend (abrupt exit, socket closed mid-response) and
   a hung backend (alive and connectable, never answers in time). *)
let predict_with t ~index ~synth trace =
  match
    if Faultinject.crash_now ~index then Unix._exit 42;
    if Faultinject.checkpoint_fault ~index then
      failwith "checkpoint unreadable (injected fault)";
    let delay = Faultinject.slow_delay ~index +. Faultinject.hang_delay ~index in
    if delay > 0.0 then Unix.sleepf delay;
    let access = Heatmap.of_trace t.spec trace in
    let synthetic = synth access in
    Faultinject.poison_output ~index synthetic;
    Heatmap.hit_rate t.spec ~access ~miss:synthetic
  with
  | raw -> Cbox_infer.validate_hit_rate ~lo:t.cfg.grace_lo ~hi:t.cfg.grace_hi raw
  | exception e -> Error (Printexc.to_string e)

(* One model attempt: a validated, clamped hit rate or the reason the model
   cannot be trusted. *)
let model_predict t index cache trace =
  match t.model with
  | None -> Error "model not loaded"
  | Some model ->
    predict_with t ~index
      ~synth:(fun access ->
        Cbox_infer.synthesize model t.spec ~batch_size:t.cfg.batch_size ~cache access)
      trace

let qmodel_predict t index q cache trace =
  predict_with t ~index
    ~synth:(fun access ->
      Cbox_infer.qsynthesize q t.spec ~batch_size:t.cfg.batch_size ~cache access)
    trace

let smodel_predict t index s cache trace =
  predict_with t ~index
    ~synth:(fun access ->
      Cbox_infer.ssynthesize s t.spec ~batch_size:t.cfg.batch_size ~cache access)
    trace

let record_and_reply ?backend t ~arrival ~ok ~degraded ~code reply =
  Serve_stats.record ?backend t.stats ~ok ~degraded ~code
    ~latency_s:(t.now () -. arrival);
  reply

let baseline t ~arrival ~id ~reason cache trace =
  match Cbox_infer.baseline_hit_rate t.cfg.fallback cache trace with
  | Some hit_rate ->
    let name = Cbox_infer.fallback_name t.cfg.fallback in
    journal_event t "degraded"
      [ ("reason", Runlog.S reason); ("source", Runlog.S name) ];
    let latency_ms = 1000.0 *. (t.now () -. arrival) in
    record_and_reply t ~backend:name ~arrival ~ok:true ~degraded:true ~code:None
      (hit_rate_reply ?id ~degraded:true ~source:name ~backend:name
         ~reason:(Some reason) ~latency_ms hit_rate)
  | None ->
    let code =
      if reason = "deadline" then Serve_error.Deadline_exceeded
      else Serve_error.Model_unavailable
    in
    let e = Serve_error.v code "learned model unusable (%s) and fallback is off" reason in
    record_and_reply t ~arrival ~ok:false ~degraded:false ~code:(Some code)
      (error_reply ?id e)
  | exception e ->
    let e = Serve_error.of_exn e in
    record_and_reply t ~arrival ~ok:false ~degraded:false
      ~code:(Some e.Serve_error.code) (error_reply ?id e)

(* An explicitly requested analytical backend (hrd/stm) is a first-class
   answer, not a degradation: ok, non-degraded, no breaker involvement, and
   it works with no model loaded. Distinct from [baseline], which serves the
   same predictors as the bottom rung of the ladder, flagged. *)
let analytic t ~arrival ~id ~backend cache trace =
  let fb =
    match backend with
    | Cbox_infer.Backend_hrd -> Cbox_infer.Fallback_hrd
    | Cbox_infer.Backend_stm -> Cbox_infer.Fallback_stm
    | Cbox_infer.Backend_float32 | Cbox_infer.Backend_int8 | Cbox_infer.Backend_student
    | Cbox_infer.Backend_student_int8 ->
      invalid_arg "Serve_engine.analytic: model backend"
  in
  let name = Cbox_infer.backend_name backend in
  match Cbox_infer.baseline_hit_rate fb cache trace with
  | Some hit_rate ->
    record_and_reply t ~backend:name ~arrival ~ok:true ~degraded:false ~code:None
      (hit_rate_reply ?id ~degraded:false ~source:name ~backend:name ~reason:None
         ~latency_ms:(1000.0 *. (t.now () -. arrival))
         hit_rate)
  | None -> assert false (* hrd/stm always produce an answer *)
  | exception e ->
    let e = Serve_error.of_exn e in
    record_and_reply t ~arrival ~ok:false ~degraded:false
      ~code:(Some e.Serve_error.code) (error_reply ?id e)

(* --- hooks for the stream-session layer (Stream_session) ---

   The session manager answers on its own (quota sheds, poisoned sessions,
   protocol misuse, per-window degradation) but must keep the engine's
   counters and journal truthful, so its replies route through these. *)

let shed_reply ?id ?(why = "stream") t e =
  Serve_stats.shed t.stats;
  journal_event t "shed" [ ("why", Runlog.S why) ];
  error_reply ?id e

let error_reply_counted ?id t ~arrival (e : Serve_error.t) =
  record_and_reply t ~arrival ~ok:false ~degraded:false ~code:(Some e.Serve_error.code)
    (error_reply ?id e)

let ok_counted t ~arrival json =
  record_and_reply t ~arrival ~ok:true ~degraded:false ~code:None json

let degraded_reply ?id t ~arrival ~reason cache trace =
  baseline t ~arrival ~id ~reason cache trace

let journal t kind fields = journal_event t kind fields

let journal_breaker_transition t before =
  let after = Breaker.state t.breaker in
  if after <> before then
    journal_event t "breaker"
      [
        ("from", Runlog.S (Breaker.state_name before));
        ("to", Runlog.S (Breaker.state_name after));
      ]

let next_index t =
  Mutex.lock t.em;
  t.req_count <- t.req_count + 1;
  let i = t.req_count in
  Mutex.unlock t.em;
  i

let update_ewma t dur =
  Mutex.lock t.em;
  t.ewma_model_s <-
    (if t.ewma_model_s = 0.0 then dur else (0.7 *. t.ewma_model_s) +. (0.3 *. dur));
  Mutex.unlock t.em

let ewma t =
  Mutex.lock t.em;
  let v = t.ewma_model_s in
  Mutex.unlock t.em;
  v

let infer t ~arrival ~id ~sets ~ways ~source ~deadline_s ~backend =
  let index = next_index t in
  let backend = Option.value backend ~default:t.cfg.default_backend in
  let fail_with e =
    record_and_reply t ~arrival ~ok:false ~degraded:false
      ~code:(Some e.Serve_error.code) (error_reply ?id e)
  in
  match Validate.cache_config ~sets ~ways () with
  | Error e -> fail_with e
  | Ok cache -> (
    match resolve_trace t source with
    | Error e -> fail_with e
    | Ok trace -> (
      match Validate.trace_for_spec t.spec ~max_len:t.cfg.max_trace_len trace with
      | Error e -> fail_with e
      | Ok () ->
        let budget =
          Float.min t.cfg.max_deadline_s
            (Option.value deadline_s ~default:t.cfg.default_deadline_s)
        in
        let deadline = arrival +. budget in
        if t.now () > deadline then
          (* Expired while queued: too late even for the baseline. *)
          fail_with
            (Serve_error.v Serve_error.Deadline_exceeded
               "deadline (%.0f ms) expired before processing started" (1000.0 *. budget))
        else begin
          match backend with
          | Cbox_infer.Backend_hrd | Cbox_infer.Backend_stm ->
            analytic t ~arrival ~id ~backend cache trace
          | Cbox_infer.Backend_float32 | Cbox_infer.Backend_int8
          | Cbox_infer.Backend_student | Cbox_infer.Backend_student_int8 ->
            let model_usable = t.model <> None && Breaker.allow t.breaker in
            let headroom = t.now () +. ewma t <= deadline in
            if model_usable && headroom then begin
              let before = Breaker.state t.breaker in
              let t0 = t.now () in
              (* The int8/student rungs: score on the requested variant when
                 it is loaded; a missing or faulting variant re-runs the
                 request on float32, flagged [degraded] with a reason,
                 WITHOUT touching the breaker — trouble in a derived model
                 says nothing about the float reference's health. *)
              let attempt, served_backend, degrade_reason =
                match backend with
                | Cbox_infer.Backend_int8 -> (
                  match t.qmodel with
                  | Some q -> (
                    match qmodel_predict t index q cache trace with
                    | Ok hr -> (Some (Ok hr), "int8", None)
                    | Error why ->
                      journal_event t "int8_fault" [ ("why", Runlog.S why) ];
                      (None, "float32", Some "int8_fault"))
                  | None -> (None, "float32", Some "int8_unavailable"))
                | Cbox_infer.Backend_student -> (
                  match t.student with
                  | Some s -> (
                    match smodel_predict t index s cache trace with
                    | Ok hr -> (Some (Ok hr), "student", None)
                    | Error why ->
                      journal_event t "student_fault" [ ("why", Runlog.S why) ];
                      (None, "float32", Some "student_fault"))
                  | None -> (None, "float32", Some "student_unavailable"))
                | Cbox_infer.Backend_student_int8 -> (
                  match t.sqmodel with
                  | Some q -> (
                    match qmodel_predict t index q cache trace with
                    | Ok hr -> (Some (Ok hr), "student-int8", None)
                    | Error why ->
                      journal_event t "student_int8_fault" [ ("why", Runlog.S why) ];
                      (None, "float32", Some "student_int8_fault"))
                  | None -> (None, "float32", Some "student_int8_unavailable"))
                | _ -> (None, "float32", None)
              in
              let result =
                match attempt with
                | Some r -> r
                | None -> model_predict t index cache trace
              in
              match result with
              | Ok hit_rate ->
                let dur = t.now () -. t0 in
                update_ewma t dur;
                Breaker.record_success t.breaker;
                journal_breaker_transition t before;
                if t.now () > deadline then
                  (* The answer arrived too late to trust the time budget;
                     serve the (cheap) analytical answer, flagged. *)
                  baseline t ~arrival ~id ~reason:"deadline" cache trace
                else begin
                  let degraded = degrade_reason <> None in
                  if degraded then
                    journal_event t "degraded"
                      [
                        ("reason", Runlog.S (Option.get degrade_reason));
                        ("source", Runlog.S "model");
                      ];
                  record_and_reply t ~backend:served_backend ~arrival ~ok:true
                    ~degraded ~code:None
                    (hit_rate_reply ?id ~degraded ~source:"model"
                       ~backend:served_backend ~reason:degrade_reason
                       ~latency_ms:(1000.0 *. (t.now () -. arrival))
                       hit_rate)
                end
              | Error why ->
                Breaker.record_failure t.breaker;
                journal_breaker_transition t before;
                journal_event t "model_fault" [ ("why", Runlog.S why) ];
                baseline t ~arrival ~id ~reason:("model_fault: " ^ why) cache trace
            end
            else
              let reason =
                if t.model = None then "model_unavailable"
                else if not (Breaker.allow t.breaker) then "breaker_open"
                else "deadline"
              in
              baseline t ~arrival ~id ~reason cache trace
        end))

type outcome = Reply of Sjson.t | Shutdown_reply of Sjson.t

(* Perform a reload and build the wire reply. Total: callers may run this
   on a dedicated thread with nothing above it to catch exceptions. *)
let do_reload t ~arrival ~id ~checkpoint =
  match reload t ?path:checkpoint () with
  | Ok () ->
    record_and_reply t ~arrival ~ok:true ~degraded:false ~code:None
      (Sjson.Obj
         (base_fields id
         @ [
             ("ok", Sjson.Bool true);
             ("op", Sjson.Str "reload");
             ("reloads", Sjson.Num (float_of_int t.reloads));
             ("latency_ms", Sjson.Num (1000.0 *. (t.now () -. arrival)));
           ]))
  | Error e ->
    record_and_reply t ~arrival ~ok:false ~degraded:false ~code:(Some e.Serve_error.code)
      (error_reply ?id e)
  | exception e ->
    let e = Serve_error.of_exn e in
    let e = { e with Serve_error.code = Serve_error.Internal } in
    record_and_reply t ~arrival ~ok:false ~degraded:false ~code:(Some Serve_error.Internal)
      (error_reply ?id e)

let handle_request t ~arrival req =
  match req with
  | Validate.Health ->
    Reply
      (record_and_reply t ~arrival ~ok:true ~degraded:false ~code:None (health_reply t))
  | Validate.Stats_request ->
    Reply (record_and_reply t ~arrival ~ok:true ~degraded:false ~code:None (stats_reply t))
  | Validate.Shutdown ->
    journal_event t "serve_stop" [];
    Shutdown_reply
      (record_and_reply t ~arrival ~ok:true ~degraded:false ~code:None
         (Sjson.Obj [ ("ok", Sjson.Bool true); ("op", Sjson.Str "shutdown") ]))
  | Validate.Reload { id; checkpoint } -> Reply (do_reload t ~arrival ~id ~checkpoint)
  | Validate.Stream_open { id; _ }
  | Validate.Stream_feed { id; _ }
  | Validate.Stream_resume { id; _ }
  | Validate.Stream_close { id; _ } ->
    (* Streaming needs the reactor's connection identity and the batcher's
       completion callbacks; the sequential entry points have neither. *)
    Reply
      (error_reply_counted ?id t ~arrival
         (Serve_error.v Serve_error.Bad_request
            "stream ops are only served by the streaming daemon path"))
  | Validate.Infer { id; sets; ways; source; deadline_s; backend } -> (
    (* Total: a bug below this point is an [internal] reply, not a dead
       worker. *)
    match infer t ~arrival ~id ~sets ~ways ~source ~deadline_s ~backend with
    | reply -> Reply reply
    | exception e ->
      let e = Serve_error.of_exn e in
      let e = { e with Serve_error.code = Serve_error.Internal } in
      Reply
        (record_and_reply t ~arrival ~ok:false ~degraded:false
           ~code:(Some Serve_error.Internal) (error_reply ?id e)))

let handle_line ?arrival t line =
  let arrival = Option.value arrival ~default:(t.now ()) in
  match Sjson.parse line with
  | Error why ->
    let e = Serve_error.v Serve_error.Bad_request "malformed JSON: %s" why in
    Reply
      (record_and_reply t ~arrival ~ok:false ~degraded:false
         ~code:(Some Serve_error.Bad_request) (error_reply e))
  | Ok json -> (
    match Validate.request ~max_trace_len:t.cfg.max_trace_len json with
    | Error e ->
      Reply
        (record_and_reply t ~arrival ~ok:false ~degraded:false
           ~code:(Some e.Serve_error.code) (error_reply e))
    | Ok req -> handle_request t ~arrival req)

(* --- batched execution (the daemon's dynamic micro-batching path) --- *)

type infer_item = {
  item_id : string option;
  item_arrival : float;
  item_index : int;  (* admission order; the fault-injection index *)
  item_cache : Cache.config;
  item_trace : int array;
  item_access : Tensor.t option;
      (* prebuilt access heatmap (a streamed window blitted out of
         Heatmap.Accum); None = build from item_trace as usual. The trace
         is still carried for the analytical-baseline degradation path. *)
  item_deadline : float;  (* absolute, on the engine clock *)
  item_backend : Cbox_infer.backend;  (* resolved (request or daemon default) *)
  mutable item_pickup : float;  (* when the batcher popped it (stats) *)
}

type classified =
  | Immediate of outcome
  | Batchable of infer_item
  | Deferred of (unit -> outcome)
      (* slow control-plane work (reload): run the thunk off the batcher
         thread so model loading never stalls the serving path *)
  | Stream of Validate.request
      (* a stream_* op: the daemon hands it to the session manager with
         its connection identity and completion callbacks *)

let item_deadline it = it.item_deadline
let set_item_pickup it ts = it.item_pickup <- ts

(* One streamed window as a batchable item: the access heatmap was already
   blitted out of the session's accumulator (bit-identical to of_trace on
   the window's trace), and the window's trace tail rides along so the
   degradation ladder (HRD/STM per window) and fault containment work
   exactly as they do for offline requests. Stamped with the engine's
   admission index, so CACHEBOX_FAULT indices reach streamed windows. *)
let stream_item t ~arrival ~cache ~trace ~access =
  {
    item_id = None;
    item_arrival = arrival;
    item_index = next_index t;
    item_cache = cache;
    item_trace = trace;
    item_access = Some access;
    item_deadline = arrival +. t.cfg.default_deadline_s;
    item_backend = t.cfg.default_backend;
    item_pickup = arrival;
  }

let classify_request t ~arrival req =
  match req with
  | Validate.Infer { id; sets; ways; source; deadline_s; backend } -> (
    let fail_with e =
      Immediate
        (Reply
           (record_and_reply t ~arrival ~ok:false ~degraded:false
              ~code:(Some e.Serve_error.code) (error_reply ?id e)))
    in
    match
      match Validate.cache_config ~sets ~ways () with
      | Error e -> fail_with e
      | Ok cache -> (
        match resolve_trace t source with
        | Error e -> fail_with e
        | Ok trace -> (
          match Validate.trace_for_spec t.spec ~max_len:t.cfg.max_trace_len trace with
          | Error e -> fail_with e
          | Ok () ->
            let budget =
              Float.min t.cfg.max_deadline_s
                (Option.value deadline_s ~default:t.cfg.default_deadline_s)
            in
            Batchable
              {
                item_id = id;
                item_arrival = arrival;
                item_index = next_index t;
                item_cache = cache;
                item_trace = trace;
                item_access = None;
                item_deadline = arrival +. budget;
                item_backend = Option.value backend ~default:t.cfg.default_backend;
                item_pickup = arrival;
              }))
    with
    | c -> c
    | exception e ->
      let e = Serve_error.of_exn e in
      let e = { e with Serve_error.code = Serve_error.Internal } in
      Immediate
        (Reply
           (record_and_reply t ~arrival ~ok:false ~degraded:false
              ~code:(Some Serve_error.Internal) (error_reply ?id e))))
  | Validate.Reload { id; checkpoint } ->
    Deferred (fun () -> Reply (do_reload t ~arrival ~id ~checkpoint))
  | ( Validate.Stream_open _ | Validate.Stream_feed _ | Validate.Stream_resume _
    | Validate.Stream_close _ ) as req ->
    Stream req
  | req -> Immediate (handle_request t ~arrival req)

let classify_line ?arrival t line =
  let arrival = Option.value arrival ~default:(t.now ()) in
  match Sjson.parse line with
  | Error why ->
    let e = Serve_error.v Serve_error.Bad_request "malformed JSON: %s" why in
    Immediate
      (Reply
         (record_and_reply t ~arrival ~ok:false ~degraded:false
            ~code:(Some Serve_error.Bad_request) (error_reply e)))
  | Ok json -> (
    match Validate.request ~max_trace_len:t.cfg.max_trace_len json with
    | Error e ->
      Immediate
        (Reply
           (record_and_reply t ~arrival ~ok:false ~degraded:false
              ~code:(Some e.Serve_error.code) (error_reply e)))
    | Ok req -> classify_request t ~arrival req)

let replica_count t = max 1 (Array.length t.pool)

(* Per-item execution plan, decided once at batch start. Unlike the
   sequential path, the admission decision (breaker state, headroom) is made
   for the whole batch at its start: a breaker that trips while the batch
   runs affects the NEXT batch, not batch mates that already went through
   the shared forward pass. *)
type plan =
  | P_expired
  | P_analytic  (* explicitly requested hrd/stm: first-class, needs no model *)
  | P_baseline of string  (* degradation reason *)
  | P_fault of string  (* model fault raised before the forward *)
  | P_forward

let infer_batch ?(replica = 0) t items =
  match items with
  | [] -> []
  | _ ->
    let t0 = t.now () in
    (* Snapshot the replica pools (and the derived models) once: a
       concurrent reload swaps the fields atomically, and this batch must
       drain entirely on the generation it started with. *)
    let pool = t.pool in
    let qmodel = t.qmodel in
    let spool = t.spool in
    let sqmodel = t.sqmodel in
    let have_model = Array.length pool > 0 in
    let model_usable = have_model && Breaker.allow t.breaker in
    let est = ewma t in
    let pairs =
      List.map
        (fun it ->
          let plan =
            if t0 > it.item_deadline then P_expired
            else
              match it.item_backend with
              | Cbox_infer.Backend_hrd | Cbox_infer.Backend_stm -> P_analytic
              | Cbox_infer.Backend_float32 | Cbox_infer.Backend_int8
              | Cbox_infer.Backend_student | Cbox_infer.Backend_student_int8 ->
                if not model_usable then
                  P_baseline (if have_model then "breaker_open" else "model_unavailable")
                else if t0 +. est > it.item_deadline then P_baseline "deadline"
                else if Faultinject.checkpoint_fault ~index:it.item_index then
                  P_fault "checkpoint unreadable (injected fault)"
                else P_forward
          in
          (it, plan))
        items
    in
    let fwd = List.filter (fun (_, p) -> p = P_forward) pairs in
    List.iter
      (fun (it, _) -> if Faultinject.crash_now ~index:it.item_index then Unix._exit 42)
      fwd;
    (* A slow (or hung) fault stalls the whole batch (the forward pass is
       shared); sleeping the summed delay keeps total injected latency equal
       to the sequential path. *)
    let slow =
      List.fold_left
        (fun acc (it, _) ->
          acc
          +. Faultinject.slow_delay ~index:it.item_index
          +. Faultinject.hang_delay ~index:it.item_index)
        0.0 fwd
    in
    if slow > 0.0 then Unix.sleepf slow;
    let n_fwd = List.length fwd in
    (* item_index -> Ok (hit rate, serving backend, degradation reason) or
       the fault that stops this item trusting the model family at all. *)
    let results : (int, (float * string * string option, string) result) Hashtbl.t =
      Hashtbl.create 16
    in
    (if n_fwd > 0 then begin
       let model, lock = pool.(replica mod Array.length pool) in
       let input_of it =
         ( it.item_cache,
           match it.item_access with
           | Some img -> [ img ]
           | None -> Heatmap.of_trace t.spec it.item_trace )
       in
       (* Score one backend's sub-group through [synth_group] under the
          given replica lock. Each element carries its degradation reason
          (None = a clean answer on the requested backend). A raised group
          failure is returned so the caller decides: retry on float32 (the
          derived-model rungs) or fail every batch mate (float32 rung).
          Each sub-group is one homogeneous wide-batch forward — backends
          are never mixed inside a forward pass. *)
       let score ~backend ~lock synth_group group =
         match group with
         | [] -> Ok ()
         | _ -> (
           let inputs = List.map (fun ((it, _), _) -> input_of it) group in
           match
             Mutex.lock lock;
             Fun.protect
               ~finally:(fun () -> Mutex.unlock lock)
               (fun () -> synth_group inputs)
           with
           | synth ->
             List.iter2
               (fun ((it, _), reason) ((_, access), syn) ->
                 Faultinject.poison_output ~index:it.item_index syn;
                 let r =
                   match Heatmap.hit_rate t.spec ~access ~miss:syn with
                   | raw ->
                     Cbox_infer.validate_hit_rate ~lo:t.cfg.grace_lo ~hi:t.cfg.grace_hi
                       raw
                   | exception e -> Error (Printexc.to_string e)
                 in
                 Hashtbl.replace results it.item_index
                   (match r with
                   | Ok hr -> Ok (hr, backend, reason)
                   | Error w -> Error w))
               group
               (List.combine inputs synth);
             Ok ()
           | exception e -> Error (Printexc.to_string e))
       in
       let t_f0 = t.now () in
       let sitems, rest =
         List.partition (fun (it, _) -> it.item_backend = Cbox_infer.Backend_student) fwd
       in
       let sqitems, rest =
         List.partition
           (fun (it, _) -> it.item_backend = Cbox_infer.Backend_student_int8)
           rest
       in
       let qitems, fitems =
         List.partition (fun (it, _) -> it.item_backend = Cbox_infer.Backend_int8) rest
       in
       (* Derived-model sub-groups first; any trouble (model not loaded, a
          raised group failure, a per-item validity failure) drops the
          affected items into the float32 pass, flagged — these rungs never
          trip the breaker. [run_rung] scores one sub-group and returns the
          items that must re-run on float32 with their reasons. *)
       let run_rung ~backend ~reason items synth =
         match (items, synth) with
         | [], _ -> []
         | _, None -> List.map (fun p -> (p, Some (reason ^ "_unavailable"))) items
         | _, Some (lock, synth_group) -> (
           match
             score ~backend ~lock synth_group (List.map (fun p -> (p, None)) items)
           with
           | Ok () ->
             List.filter_map
               (fun ((it, _) as p) ->
                 match Hashtbl.find_opt results it.item_index with
                 | Some (Error why) ->
                   journal_event t (reason ^ "_fault") [ ("why", Runlog.S why) ];
                   Some (p, Some (reason ^ "_fault"))
                 | _ -> None)
               items
           | Error why ->
             journal_event t (reason ^ "_fault") [ ("why", Runlog.S why) ];
             List.map (fun p -> (p, Some (reason ^ "_fault"))) items)
       in
       let refloat_q =
         run_rung ~backend:"int8" ~reason:"int8" qitems
           (Option.map
              (fun q ->
                ( lock,
                  fun inputs ->
                    Cbox_infer.qsynthesize_group q t.spec ~batch_size:t.cfg.batch_size
                      inputs ))
              qmodel)
       in
       let replica_student =
         if Array.length spool = 0 then None
         else Some spool.(replica mod Array.length spool)
       in
       let refloat_s =
         run_rung ~backend:"student" ~reason:"student" sitems
           (Option.map
              (fun (s, sl) ->
                ( sl,
                  fun inputs ->
                    Cbox_infer.ssynthesize_group s t.spec ~batch_size:t.cfg.batch_size
                      inputs ))
              replica_student)
       in
       let refloat_sq =
         run_rung ~backend:"student-int8" ~reason:"student_int8" sqitems
           (Option.map
              (fun q ->
                ( lock,
                  fun inputs ->
                    Cbox_infer.qsynthesize_group q t.spec ~batch_size:t.cfg.batch_size
                      inputs ))
              sqmodel)
       in
       let fgroup =
         List.map (fun p -> (p, None)) fitems @ refloat_q @ refloat_s @ refloat_sq
       in
       let failed =
         match
           score ~backend:"float32" ~lock
             (fun inputs ->
               Cbox_infer.synthesize_group model t.spec ~batch_size:t.cfg.batch_size
                 inputs)
             fgroup
         with
         | Ok () -> false
         | Error why ->
           (* The shared float32 forward died: every batch mate records the
              fault. *)
           List.iter
             (fun ((it, _), _) -> Hashtbl.replace results it.item_index (Error why))
             fgroup;
           true
       in
       if not failed then begin
         let dur = t.now () -. t_f0 in
         update_ewma t (dur /. float_of_int n_fwd);
         Serve_stats.record_batch t.stats ~size:n_fwd
       end
     end);
    (* Replies, breaker bookkeeping and stage accounting, in item order. *)
    List.map
      (fun (it, plan) ->
        let arrival = it.item_arrival and id = it.item_id in
        let infer_share =
          match plan with
          | P_forward when n_fwd > 0 -> (t.now () -. t0) /. float_of_int n_fwd
          | _ -> 0.0
        in
        Serve_stats.record_stages t.stats
          ~queue_s:(it.item_pickup -. arrival)
          ~batch_s:(t0 -. it.item_pickup) ~infer_s:infer_share;
        let fault why =
          let before = Breaker.state t.breaker in
          Breaker.record_failure t.breaker;
          journal_breaker_transition t before;
          journal_event t "model_fault" [ ("why", Runlog.S why) ];
          baseline t ~arrival ~id ~reason:("model_fault: " ^ why) it.item_cache
            it.item_trace
        in
        match plan with
        | P_expired ->
          let budget = it.item_deadline -. arrival in
          let e =
            Serve_error.v Serve_error.Deadline_exceeded
              "deadline (%.0f ms) expired before processing started" (1000.0 *. budget)
          in
          record_and_reply t ~arrival ~ok:false ~degraded:false
            ~code:(Some e.Serve_error.code) (error_reply ?id e)
        | P_analytic ->
          analytic t ~arrival ~id ~backend:it.item_backend it.item_cache it.item_trace
        | P_baseline reason -> baseline t ~arrival ~id ~reason it.item_cache it.item_trace
        | P_fault why -> fault why
        | P_forward -> (
          match Hashtbl.find_opt results it.item_index with
          | Some (Ok (hit_rate, served_backend, degrade_reason)) ->
            let before = Breaker.state t.breaker in
            Breaker.record_success t.breaker;
            journal_breaker_transition t before;
            if t.now () > it.item_deadline then
              baseline t ~arrival ~id ~reason:"deadline" it.item_cache it.item_trace
            else begin
              let degraded = degrade_reason <> None in
              if degraded then
                journal_event t "degraded"
                  [
                    ("reason", Runlog.S (Option.get degrade_reason));
                    ("source", Runlog.S "model");
                  ];
              record_and_reply t ~backend:served_backend ~arrival ~ok:true ~degraded
                ~code:None
                (hit_rate_reply ?id ~degraded ~source:"model" ~backend:served_backend
                   ~reason:degrade_reason
                   ~latency_ms:(1000.0 *. (t.now () -. arrival))
                   hit_rate)
            end
          | Some (Error why) -> fault why
          | None ->
            (* Unreachable: every P_forward item was given a result above. *)
            fault "batch result missing"))
      pairs
