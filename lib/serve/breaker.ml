type state = Closed | Open | Half_open

type internal = St_closed | St_open of float  (* probe-eligible time *) | St_half_open

type t = {
  threshold : int;
  cooldown : float;
  now : unit -> float;
  m : Mutex.t;
  mutable st : internal;
  mutable failures : int;
  mutable opened : int;
}

let create ?(threshold = 3) ?(cooldown = 5.0) ~now () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  if cooldown < 0.0 then invalid_arg "Breaker.create: cooldown must be >= 0";
  {
    threshold;
    cooldown;
    now;
    m = Mutex.create ();
    st = St_closed;
    failures = 0;
    opened = 0;
  }

(* Every observation and transition runs under the mutex: replica batches
   complete concurrently, and a torn read-modify-write of the failure streak
   could miss a trip or double-open. The critical sections are a few loads
   and stores — contention is negligible next to a model forward pass. *)
let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* An expired cooldown surfaces as Half_open the moment anyone looks.
   Call only with the lock held. *)
let refresh t =
  match t.st with
  | St_open until when t.now () >= until -> t.st <- St_half_open
  | _ -> ()

let observe t =
  refresh t;
  match t.st with St_closed -> Closed | St_open _ -> Open | St_half_open -> Half_open

let state t = with_lock t (fun () -> observe t)

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

let allow t = state t <> Open

let trip t =
  t.opened <- t.opened + 1;
  t.st <- St_open (t.now () +. t.cooldown)

let record_success t =
  with_lock t (fun () ->
      t.failures <- 0;
      t.st <- St_closed)

let record_failure t =
  with_lock t (fun () ->
      refresh t;
      t.failures <- t.failures + 1;
      match t.st with
      | St_half_open -> trip t (* failed probe: straight back to open *)
      | St_closed when t.failures >= t.threshold -> trip t
      | _ -> ())

let consecutive_failures t = with_lock t (fun () -> t.failures)
let times_opened t = with_lock t (fun () -> t.opened)
