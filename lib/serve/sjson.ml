type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- parsing: recursive descent over the string, internal exception
   converted to [Error] at the boundary so the parser is total. --- *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let err fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> err "expected '%c' at offset %d, got '%c'" c !pos d
    | None -> err "expected '%c' at offset %d, got end of input" c !pos
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else err "bad literal at offset %d" !pos
  in
  let hex4 () =
    if !pos + 4 > n then err "truncated \\u escape at offset %d" !pos;
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> err "bad hex digit '%c' in \\u escape at offset %d" c !pos
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  (* A \u escape naming a high surrogate must be immediately followed by a
     low-surrogate escape; the pair recombines into one code point so
     non-BMP text decodes to real UTF-8, not CESU-8. Lone surrogates are a
     parse error. *)
  let unicode_escape () =
    let cp = hex4 () in
    if cp >= 0xD800 && cp <= 0xDBFF then begin
      if not (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u') then
        err "unpaired high surrogate \\u%04x at offset %d" cp !pos;
      pos := !pos + 2;
      let lo = hex4 () in
      if lo < 0xDC00 || lo > 0xDFFF then
        err "high surrogate \\u%04x followed by non-low \\u%04x" cp lo;
      0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
    end
    else if cp >= 0xDC00 && cp <= 0xDFFF then
      err "unpaired low surrogate \\u%04x at offset %d" cp !pos
    else cp
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then err "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' -> add_utf8 buf (unicode_escape ())
         | c -> err "bad escape '\\%c'" c);
        go ()
      | c when Char.code c < 0x20 -> err "unescaped control character in string"
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f when Float.is_nan f || f = Float.infinity || f = Float.neg_infinity ->
      err "non-finite number %S at offset %d" lit start
    | Some f -> Num f
    | None -> err "bad number %S at offset %d" lit start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> err "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> err "expected ',' or '}' at offset %d" !pos
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> err "expected ',' or ']' at offset %d" !pos
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> err "unexpected character '%c' at offset %d" c !pos
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then err "trailing garbage at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

(* --- printing --- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f ->
    if Float.is_nan f then "\"nan\""
    else if f = Float.infinity then "\"inf\""
    else if f = Float.neg_infinity then "\"-inf\""
    else if Float.is_integer f && Float.abs f < 9.007199254740992e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr items -> "[" ^ String.concat ", " (List.map to_string items) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ to_string v) fields)
    ^ "}"

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 4.503599627370496e15 ->
    Some (int_of_float f)
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr l -> Some l | _ -> None
