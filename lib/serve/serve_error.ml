type code =
  | Bad_request
  | Invalid_config
  | Corrupt_input
  | Model_unavailable
  | Deadline_exceeded
  | Overloaded
  | Internal
  | Upstream_unavailable

type t = { code : code; message : string }

exception Error of t

let all_codes =
  [
    Bad_request;
    Invalid_config;
    Corrupt_input;
    Model_unavailable;
    Deadline_exceeded;
    Overloaded;
    Internal;
    Upstream_unavailable;
  ]

let code_string = function
  | Bad_request -> "bad_request"
  | Invalid_config -> "invalid_config"
  | Corrupt_input -> "corrupt_input"
  | Model_unavailable -> "model_unavailable"
  | Deadline_exceeded -> "deadline_exceeded"
  | Overloaded -> "overloaded"
  | Internal -> "internal"
  | Upstream_unavailable -> "upstream_unavailable"

let code_of_string s = List.find_opt (fun c -> code_string c = s) all_codes

let exit_code = function
  | Bad_request -> 2
  | Invalid_config -> 2
  | Corrupt_input -> 3
  | Model_unavailable -> 4
  | Deadline_exceeded -> 5
  | Overloaded -> 6
  | Internal -> 7
  | Upstream_unavailable -> 8

let v code fmt = Printf.ksprintf (fun message -> { code; message }) fmt
let fail code fmt = Printf.ksprintf (fun message -> raise (Error { code; message })) fmt

let of_exn = function
  | Error e -> e
  | Failure m -> { code = Corrupt_input; message = m }
  | Sys_error m -> { code = Corrupt_input; message = m }
  | Invalid_argument m -> { code = Bad_request; message = m }
  | e -> { code = Internal; message = Printexc.to_string e }

let pp ppf e = Format.fprintf ppf "%s: %s" (code_string e.code) e.message
