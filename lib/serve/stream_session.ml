(* Live trace streaming sessions: bounded buffering with explicit credit,
   global quotas, checkpointed rollback and per-session fault containment.

   One manager owns every session behind a daemon. All entry points run on
   the daemon's batcher thread ({!handle}) or on executor threads (window
   completion callbacks); a single manager mutex guards the registry and
   all session state — the critical sections are small (no model work, no
   I/O) so contention is negligible next to inference.

   Lock ordering: the manager lock may be taken first and engine/reactor
   locks acquired under it (stats recording, ticket resolution); nothing in
   the engine or reactor ever calls back into the manager, so the order is
   acyclic. *)

type config = {
  max_sessions : int;
  retain_windows : int;
  max_pending_windows : int;
  max_bytes : int;
  session_ttl_s : float;
}

let default_config =
  {
    max_sessions = 64;
    retain_windows = 8;
    max_pending_windows = 256;
    max_bytes = 64 * 1024 * 1024;
    session_ttl_s = 300.0;
  }

type session = {
  token : string;
  cache : Cache.config;
  accum : Heatmap.Accum.t;
  tail : int array;
      (* ring of the last [accesses_per_image] addresses fed, indexed by
         stream position mod its length. A window completing at image index
         c spans positions [c*step, c*step+apw): exactly the ring's live
         contents at the moment of completion, so the window's own trace
         (for the HRD/STM degradation path) is recoverable without keeping
         the stream. *)
  tail_snap : int array;
      (* ring contents at the last applied chunk boundary. An aborted chunk
         has already written positions >= fed before the fault, and those
         slots alias live history (position p shares a slot with p - apw),
         so rollback must restore the ring too — the replay only rewrites a
         clobbered slot when it re-reaches that position, which can be
         after an earlier window's extraction reads it. *)
  mutable snapshot : string;  (* accum state at the last applied chunk boundary *)
  mutable retained : (int * Sjson.t) list;  (* un-acked window results, ascending *)
  mutable poisoned : Serve_error.t option;
  mutable conn : int;  (* reactor connection this session is bound to *)
  mutable last_seen : float;
  mutable inflight : int;  (* windows submitted to the batcher, not yet resolved *)
  bytes : int;  (* fixed footprint estimate, charged against the global quota *)
}

type t = {
  cfg : config;
  engine : Serve_engine.t;
  m : Mutex.t;
  sessions : (string, session) Hashtbl.t;
  mutable next_token : int;
  mutable pending : int;  (* global in-flight windows across sessions *)
  mutable bytes : int;  (* summed session footprints *)
  mutable opened : int;
  mutable resumed : int;
  mutable closed : int;
  mutable windows : int;  (* windows completed (inferred or quota-degraded) *)
  mutable degraded_quota : int;
  mutable shed_credit : int;
  mutable shed_quota : int;
  mutable poison_count : int;
  mutable evicted : int;
}

(* A feed's completion group: the feed reply resolves only once every
   window the chunk closed has its result, so the reactor's one-reply-per-
   line contract holds and per-connection FIFO order is preserved. *)
type group = {
  g_token : string;
  g_id : string option;
  g_seq : int option;
  mutable g_waiting : int;
  mutable g_windows : (int * Sjson.t) list;
  g_resolve : Sjson.t -> unit;
}

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let create ?(config = default_config) engine =
  if config.max_sessions <= 0 then invalid_arg "Stream_session.create: max_sessions";
  if config.retain_windows <= 0 then invalid_arg "Stream_session.create: retain_windows";
  if config.max_pending_windows <= 0 then
    invalid_arg "Stream_session.create: max_pending_windows";
  if config.session_ttl_s <= 0.0 then invalid_arg "Stream_session.create: session_ttl_s";
  {
    cfg = config;
    engine;
    m = Mutex.create ();
    sessions = Hashtbl.create 16;
    next_token = 0;
    pending = 0;
    bytes = 0;
    opened = 0;
    resumed = 0;
    closed = 0;
    windows = 0;
    degraded_quota = 0;
    shed_credit = 0;
    shed_quota = 0;
    poison_count = 0;
    evicted = 0;
  }

let num n = Sjson.Num (float_of_int n)

let with_fields json extra =
  match json with Sjson.Obj fs -> Sjson.Obj (fs @ extra) | j -> j

(* Strip a per-window engine reply down to the fields a window entry
   carries: the prediction and its provenance, not the transport framing. *)
let window_json ~index reply =
  let keep = [ "hit_rate"; "degraded"; "source"; "backend"; "reason"; "error"; "message" ] in
  let fields =
    match reply with
    | Sjson.Obj fs -> List.filter (fun (k, _) -> List.mem k keep) fs
    | _ -> []
  in
  Sjson.Obj (("window", num index) :: fields)

(* Credit, in accesses: how much more the client may pour before windows
   could outrun the retention ring. With [rem] retention slots free the
   client may close at most [rem] more windows, i.e. feed up to the end of
   window [completed + rem - 1]. Window c completes at stream position
   apw + c*step, so the grant is the distance to the next completion plus
   (rem-1) full steps. *)
let credit_locked mgr s =
  let spec = Serve_engine.spec mgr.engine in
  let apw = Heatmap.accesses_per_image spec in
  let step = Heatmap.step_accesses spec in
  let outstanding = List.length s.retained + s.inflight in
  let rem = mgr.cfg.retain_windows - outstanding in
  if rem <= 0 then 0
  else
    let fed = Heatmap.Accum.fed s.accum in
    let next_done = apw + (Heatmap.Accum.completed s.accum * step) in
    next_done - fed + ((rem - 1) * step)

let session_fields mgr s =
  [
    ("session", Sjson.Str s.token);
    ("consumed", num (Heatmap.Accum.fed s.accum));
    ("next_window", num (Heatmap.Accum.completed s.accum));
    ("credit", num (credit_locked mgr s));
  ]

let id_field = function None -> [] | Some id -> [ ("id", Sjson.Str id) ]
let seq_field = function None -> [] | Some s -> [ ("seq", num s) ]

let journal mgr kind s extra =
  Serve_engine.journal mgr.engine kind (("session", Runlog.S s.token) :: extra)

let sweep_locked mgr ~now =
  let dead =
    Hashtbl.fold
      (fun tok s acc ->
        if s.inflight = 0 && now -. s.last_seen > mgr.cfg.session_ttl_s then
          (tok, s) :: acc
        else acc)
      mgr.sessions []
  in
  List.iter
    (fun ((tok : string), (s : session)) ->
      Hashtbl.remove mgr.sessions tok;
      mgr.bytes <- mgr.bytes - s.bytes;
      mgr.evicted <- mgr.evicted + 1;
      journal mgr "stream_evict" s
        [ ("idle_s", Runlog.F (now -. s.last_seen)); ("retained", Runlog.I (List.length s.retained)) ])
    dead

let sweep mgr = with_lock mgr (fun () -> sweep_locked mgr ~now:(Serve_engine.now mgr.engine))

(* --- window completion --- *)

let insert_sorted (w, j) retained =
  let rec go = function
    | [] -> [ (w, j) ]
    | (w', _) :: _ as rest when w < w' -> (w, j) :: rest
    | hd :: rest -> hd :: go rest
  in
  go retained

(* Record one window's result into its feed group (and the session's
   retention ring for resume replay); the last window to land builds and
   resolves the feed reply. Lock held. *)
let complete_window_locked mgr g index wjson =
  (match Hashtbl.find_opt mgr.sessions g.g_token with
  | Some s -> s.retained <- insert_sorted (index, wjson) s.retained
  | None -> () (* session closed/evicted mid-flight: nothing to retain *));
  g.g_windows <- (index, wjson) :: g.g_windows;
  g.g_waiting <- g.g_waiting - 1;
  if g.g_waiting = 0 then begin
    let ws =
      List.sort (fun (a, _) (b, _) -> compare a b) g.g_windows |> List.map snd
    in
    let tail =
      match Hashtbl.find_opt mgr.sessions g.g_token with
      | Some s -> session_fields mgr s
      | None -> [ ("session", Sjson.Str g.g_token) ]
    in
    g.g_resolve
      (Sjson.Obj
         ([ ("ok", Sjson.Bool true); ("op", Sjson.Str "stream_feed") ]
         @ id_field g.g_id @ seq_field g.g_seq
         @ tail
         @ [ ("windows", Sjson.Arr ws) ]))
  end

(* Completion callback for a window that went through the batcher; runs on
   an executor (or the batcher) thread. *)
let on_window_reply mgr g index reply =
  with_lock mgr (fun () ->
      mgr.pending <- mgr.pending - 1;
      (match Hashtbl.find_opt mgr.sessions g.g_token with
      | Some s -> s.inflight <- s.inflight - 1
      | None -> ());
      complete_window_locked mgr g index (window_json ~index reply))

(* --- ops --- *)

let unknown_session mgr ?id ~arrival token =
  Serve_engine.error_reply_counted ?id mgr.engine ~arrival
    (Serve_error.v Serve_error.Bad_request "unknown session %S" token)

let open_session mgr ~conn ~arrival ~resolve ~exempt ~id ~sets ~ways =
  let reply =
    with_lock mgr (fun () ->
        let now = Serve_engine.now mgr.engine in
        sweep_locked mgr ~now;
        if Hashtbl.length mgr.sessions >= mgr.cfg.max_sessions then begin
          mgr.shed_quota <- mgr.shed_quota + 1;
          `Err
            (Serve_engine.shed_reply ?id ~why:"stream_sessions" mgr.engine
               (Serve_error.v Serve_error.Overloaded
                  "session quota reached (%d live sessions)" mgr.cfg.max_sessions))
        end
        else
          match Validate.cache_config ~sets ~ways () with
          | Error e -> `Err (Serve_engine.error_reply_counted ?id mgr.engine ~arrival e)
          | Ok cache ->
            let spec = Serve_engine.spec mgr.engine in
            let apw = Heatmap.accesses_per_image spec in
            let accum = Heatmap.Accum.create spec in
            let snapshot = Heatmap.Accum.snapshot accum in
            (* Footprint: the live accumulator plus its checkpoint blob
               (about the same size), the tail ring and its rollback copy,
               and slack for the retention ring's scalar records. *)
            let bytes = (2 * String.length snapshot) + (16 * apw) + 4096 in
            if mgr.bytes + bytes > mgr.cfg.max_bytes then begin
              mgr.shed_quota <- mgr.shed_quota + 1;
              `Err
                (Serve_engine.shed_reply ?id ~why:"stream_bytes" mgr.engine
                   (Serve_error.v Serve_error.Overloaded
                      "session memory quota reached (%d of %d bytes)" mgr.bytes
                      mgr.cfg.max_bytes))
            end
            else begin
              mgr.next_token <- mgr.next_token + 1;
              let token =
                Printf.sprintf "s%d-%08x" mgr.next_token
                  (Crc32.digest (Printf.sprintf "%d:%.9f" mgr.next_token now)
                  land 0xFFFFFFFF)
              in
              let s =
                {
                  token;
                  cache;
                  accum;
                  tail = Array.make apw 0;
                  tail_snap = Array.make apw 0;
                  snapshot;
                  retained = [];
                  poisoned = None;
                  conn;
                  last_seen = now;
                  inflight = 0;
                  bytes;
                }
              in
              Hashtbl.replace mgr.sessions token s;
              mgr.bytes <- mgr.bytes + bytes;
              mgr.opened <- mgr.opened + 1;
              journal mgr "stream_open" s [ ("conn", Runlog.I conn) ];
              `Ok
                (Serve_engine.ok_counted mgr.engine ~arrival
                   (Sjson.Obj
                      ([ ("ok", Sjson.Bool true); ("op", Sjson.Str "stream_open") ]
                      @ id_field id @ session_fields mgr s
                      @ [
                          ("height", num spec.Heatmap.height);
                          ("width", num spec.Heatmap.width);
                          ("window", num spec.Heatmap.window);
                          ("accesses_per_image", num apw);
                          ("step_accesses", num (Heatmap.step_accesses spec));
                          ("retain_windows", num mgr.cfg.retain_windows);
                        ])))
            end)
  in
  match reply with
  | `Ok json ->
    exempt ();
    resolve json
  | `Err json -> resolve json

let poison_locked mgr s e =
  s.poisoned <- Some e;
  mgr.poison_count <- mgr.poison_count + 1;
  journal mgr "stream_poisoned" s [ ("reason", Runlog.S e.Serve_error.message) ]

(* Apply one admitted chunk. Single pass: each address is range-checked as
   it is fed; a bad one aborts the chunk, restores the accumulator from the
   pre-chunk checkpoint (CRC-verified) and the tail ring from its rollback
   copy, and poisons the session — neighbours never see the fault, and
   [consumed] in the reply tells the client exactly where to replay from
   after resuming. Windows the chunk closes are collected during the pass
   and only dispatched once the whole chunk commits, so a poisoned chunk
   contributes nothing. Lock held. *)
let apply_chunk mgr s ~arrival ~resolve ~id ~seq addrs =
  let spec = Serve_engine.spec mgr.engine in
  let apw = Heatmap.accesses_per_image spec in
  let step = Heatmap.step_accesses spec in
  let closed = ref [] in
  let fault = ref None in
  (try
     Array.iteri
       (fun i a ->
         if a < 0 || a > Trace_io.max_address then begin
           fault := Some (i, a);
           raise Exit
         end;
         s.tail.(Heatmap.Accum.fed s.accum mod apw) <- a;
         let before = Heatmap.Accum.completed s.accum in
         Heatmap.Accum.add s.accum ~addr:a ~mask:1;
         if Heatmap.Accum.completed s.accum > before then begin
           (* Extract the window's own trace NOW — a later window in the
              same chunk overwrites these ring positions. *)
           let trace =
             Array.init apw (fun k -> s.tail.(((before * step) + k) mod apw))
           in
           match Heatmap.Accum.take_completed s.accum with
           | [ planes ] -> closed := (before, trace, planes.(0)) :: !closed
           | _ -> ()
         end)
       addrs
   with Exit -> ());
  match !fault with
  | Some (i, a) ->
    (match Heatmap.Accum.restore s.accum s.snapshot with
    | Ok () -> ()
    | Error m ->
      (* The snapshot came from this very accumulator; failing to restore
         it is a bug, not an input fault. *)
      Serve_engine.journal mgr.engine "stream_restore_bug" [ ("err", Runlog.S m) ]);
    Array.blit s.tail_snap 0 s.tail 0 (Array.length s.tail);
    let e =
      Serve_error.v Serve_error.Corrupt_input
        "address %d at chunk offset %d out of range [0, 2^52]" a i
    in
    poison_locked mgr s e;
    `Resolve
      (with_fields
         (Serve_engine.error_reply_counted ?id mgr.engine ~arrival e)
         (session_fields mgr s))
  | None ->
    s.snapshot <- Heatmap.Accum.snapshot s.accum;
    Array.blit s.tail 0 s.tail_snap 0 (Array.length s.tail);
    let closed = List.rev !closed in
    mgr.windows <- mgr.windows + List.length closed;
    if closed = [] then
      `Resolve
        (Serve_engine.ok_counted mgr.engine ~arrival
           (Sjson.Obj
              ([ ("ok", Sjson.Bool true); ("op", Sjson.Str "stream_feed") ]
              @ id_field id @ seq_field seq @ session_fields mgr s
              @ [ ("windows", Sjson.Arr []) ])))
    else begin
      let g =
        {
          g_token = s.token;
          g_id = id;
          g_seq = seq;
          g_waiting = List.length closed;
          g_windows = [];
          g_resolve = resolve;
        }
      in
      let items = ref [] in
      List.iter
        (fun (c, trace, access) ->
          if mgr.pending >= mgr.cfg.max_pending_windows then begin
            (* Over the global window quota: degrade this window to the
               analytical baseline right here — the existing ladder rung —
               instead of deepening the backlog. *)
            mgr.degraded_quota <- mgr.degraded_quota + 1;
            let rj =
              Serve_engine.degraded_reply mgr.engine ~arrival
                ~reason:"stream_window_quota" s.cache trace
            in
            complete_window_locked mgr g c (window_json ~index:c rj)
          end
          else begin
            mgr.pending <- mgr.pending + 1;
            s.inflight <- s.inflight + 1;
            let item =
              Serve_engine.stream_item mgr.engine ~arrival ~cache:s.cache ~trace
                ~access
            in
            items := (item, on_window_reply mgr g c) :: !items
          end)
        closed;
      `Submit (List.rev !items)
    end

let feed mgr ~conn ~arrival ~resolve ~submit ~id ~token ~seq ~ack ~payload =
  let action =
    with_lock mgr (fun () ->
        match Hashtbl.find_opt mgr.sessions token with
        | None -> `Resolve (unknown_session mgr ?id ~arrival token)
        | Some s ->
          s.last_seen <- Serve_engine.now mgr.engine;
          if s.conn <> conn then
            `Resolve
              (with_fields
                 (Serve_engine.error_reply_counted ?id mgr.engine ~arrival
                    (Serve_error.v Serve_error.Bad_request
                       "session %S is bound to another connection; stream_resume to re-attach"
                       token))
                 [ ("session", Sjson.Str token) ])
          else begin
            (match ack with
            | Some a -> s.retained <- List.filter (fun (w, _) -> w > a) s.retained
            | None -> ());
            match s.poisoned with
            | Some e ->
              (* Sticky: the fault stays contained to this session until
                 the client acknowledges it by resuming. *)
              `Resolve
                (with_fields
                   (Serve_engine.error_reply_counted ?id mgr.engine ~arrival e)
                   (session_fields mgr s))
            | None -> (
              match payload with
              | Validate.Corrupt msg ->
                let e =
                  Serve_error.v Serve_error.Corrupt_input "corrupt stream chunk: %s" msg
                in
                poison_locked mgr s e;
                `Resolve
                  (with_fields
                     (Serve_engine.error_reply_counted ?id mgr.engine ~arrival e)
                     (session_fields mgr s))
              | Validate.Addrs addrs ->
                let credit = credit_locked mgr s in
                if Array.length addrs > credit then begin
                  mgr.shed_credit <- mgr.shed_credit + 1;
                  `Resolve
                    (with_fields
                       (Serve_engine.shed_reply ?id ~why:"stream_credit" mgr.engine
                          (Serve_error.v Serve_error.Overloaded
                             "chunk of %d accesses exceeds credit %d"
                             (Array.length addrs) credit))
                       (session_fields mgr s))
                end
                else apply_chunk mgr s ~arrival ~resolve ~id ~seq addrs)
          end)
  in
  match action with
  | `Resolve json -> resolve json
  | `Submit items -> List.iter (fun (item, cb) -> submit item cb) items

let resume mgr ~conn ~arrival ~resolve ~exempt ~id ~token ~last_window =
  let reply =
    with_lock mgr (fun () ->
        match Hashtbl.find_opt mgr.sessions token with
        | None -> `Err (unknown_session mgr ?id ~arrival token)
        | Some s ->
          s.last_seen <- Serve_engine.now mgr.engine;
          (* Re-bind to the new connection; clear any poison — the
             accumulator was already rolled back to the pre-fault chunk
             boundary when the poison landed, so [consumed] below is the
             exact replay point. *)
          s.conn <- conn;
          s.poisoned <- None;
          (match last_window with
          | Some lw -> s.retained <- List.filter (fun (w, _) -> w > lw) s.retained
          | None -> ());
          mgr.resumed <- mgr.resumed + 1;
          journal mgr "stream_resume" s
            [ ("conn", Runlog.I conn); ("pending", Runlog.I s.inflight) ];
          `Ok
            (Serve_engine.ok_counted mgr.engine ~arrival
               (Sjson.Obj
                  ([ ("ok", Sjson.Bool true); ("op", Sjson.Str "stream_resume") ]
                  @ id_field id @ session_fields mgr s
                  @ [
                      (* Windows still in the batcher: their results land in
                         the retention ring as they finish — poll resume
                         until [pending] is 0 to collect them. *)
                      ("pending", num s.inflight);
                      ("windows", Sjson.Arr (List.map snd s.retained));
                    ]))))
  in
  match reply with
  | `Ok json ->
    exempt ();
    resolve json
  | `Err json -> resolve json

let close mgr ~arrival ~resolve ~id ~token =
  resolve
    (with_lock mgr (fun () ->
         match Hashtbl.find_opt mgr.sessions token with
         | None -> unknown_session mgr ?id ~arrival token
         | Some s ->
           Hashtbl.remove mgr.sessions token;
           mgr.bytes <- mgr.bytes - s.bytes;
           mgr.closed <- mgr.closed + 1;
           journal mgr "stream_close" s
             [ ("windows", Runlog.I (Heatmap.Accum.completed s.accum)) ];
           Serve_engine.ok_counted mgr.engine ~arrival
             (Sjson.Obj
                ([ ("ok", Sjson.Bool true); ("op", Sjson.Str "stream_close") ]
                @ id_field id
                @ [
                    ("session", Sjson.Str token);
                    ("consumed", num (Heatmap.Accum.fed s.accum));
                    ("windows", num (Heatmap.Accum.completed s.accum));
                  ]))))

let handle mgr ~conn ~arrival ~submit ~resolve ~exempt (req : Validate.request) =
  (* Guard against double resolution: a feed that submitted windows will be
     resolved by its completion group, and the catch-all below must not
     race it. First resolution wins; the rest are dropped. *)
  let once = ref false in
  let resolve json =
    if not !once then begin
      once := true;
      resolve json
    end
  in
  try
    match req with
    | Validate.Stream_open { id; sets; ways } ->
      open_session mgr ~conn ~arrival ~resolve ~exempt ~id ~sets ~ways
    | Validate.Stream_feed { id; session; seq; ack; payload } ->
      feed mgr ~conn ~arrival ~resolve ~submit ~id ~token:session ~seq ~ack ~payload
    | Validate.Stream_resume { id; session; last_window } ->
      resume mgr ~conn ~arrival ~resolve ~exempt ~id ~token:session ~last_window
    | Validate.Stream_close { id; session } ->
      close mgr ~arrival ~resolve ~id ~token:session
    | _ ->
      resolve
        (Serve_engine.error_reply_counted mgr.engine ~arrival
           (Serve_error.v Serve_error.Internal "not a stream request"))
  with e ->
    resolve (Serve_engine.error_reply_counted mgr.engine ~arrival (Serve_error.of_exn e))

let live_sessions mgr = with_lock mgr (fun () -> Hashtbl.length mgr.sessions)
let pending_windows mgr = with_lock mgr (fun () -> mgr.pending)
let buffered_bytes mgr = with_lock mgr (fun () -> mgr.bytes)

let stats_fields mgr () =
  with_lock mgr (fun () ->
      [
        ( "stream",
          Sjson.Obj
            [
              ("sessions", num (Hashtbl.length mgr.sessions));
              ("opened", num mgr.opened);
              ("resumed", num mgr.resumed);
              ("closed", num mgr.closed);
              ("windows", num mgr.windows);
              ("pending", num mgr.pending);
              ("bytes", num mgr.bytes);
              ("degraded_quota", num mgr.degraded_quota);
              ("shed_credit", num mgr.shed_credit);
              ("shed_quota", num mgr.shed_quota);
              ("poisoned", num mgr.poison_count);
              ("evicted", num mgr.evicted);
            ] );
      ])
