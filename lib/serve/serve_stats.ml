type t = {
  m : Mutex.t;
  mutable served : int;
  mutable ok : int;
  mutable degraded : int;
  mutable shed_count : int;
  errors : (Serve_error.code, int ref) Hashtbl.t;
  ring : float array;
  mutable ring_len : int;  (* samples stored, <= Array.length ring *)
  mutable ring_pos : int;  (* next write slot *)
  (* Stage accounting: per-request sums in seconds, plus how many requests
     carried stage timings (health/stats requests don't). *)
  mutable staged : int;
  mutable queue_sum_s : float;
  mutable batch_sum_s : float;
  mutable infer_sum_s : float;
  (* Batching: forward passes executed and requests they carried. *)
  mutable batches : int;
  mutable batched_requests : int;
  mutable max_batch : int;
  (* Routing: extra upstream attempts behind one client-visible answer.
     The answer itself still counts exactly once in [served]/[ok]. *)
  mutable retries : int;
  mutable hedges : int;
  mutable degraded_router : int;
  (* Per-backend serve counts, keyed by the reply's "backend" field. *)
  backends : (string, int ref) Hashtbl.t;
}

type summary = {
  served : int;
  ok : int;
  degraded : int;
  shed : int;
  errors : (string * int) list;
  p50_ms : float;
  p99_ms : float;
  window : int;
  staged : int;
  queue_ms_mean : float;
  batch_ms_mean : float;
  infer_ms_mean : float;
  batches : int;
  batched_requests : int;
  max_batch : int;
  mean_batch : float;
  retries : int;
  hedges : int;
  degraded_router : int;
  backends : (string * int) list;
}

let create ?(window = 1024) () =
  if window < 1 then invalid_arg "Serve_stats.create: window must be >= 1";
  {
    m = Mutex.create ();
    served = 0;
    ok = 0;
    degraded = 0;
    shed_count = 0;
    errors = Hashtbl.create 8;
    ring = Array.make window 0.0;
    ring_len = 0;
    ring_pos = 0;
    staged = 0;
    queue_sum_s = 0.0;
    batch_sum_s = 0.0;
    infer_sum_s = 0.0;
    batches = 0;
    batched_requests = 0;
    max_batch = 0;
    retries = 0;
    hedges = 0;
    degraded_router = 0;
    backends = Hashtbl.create 4;
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let record ?backend t ~ok ~degraded ~code ~latency_s =
  with_lock t (fun () ->
      t.served <- t.served + 1;
      if ok then t.ok <- t.ok + 1;
      if degraded then t.degraded <- t.degraded + 1;
      (match backend with
      | None -> ()
      | Some b -> (
        match Hashtbl.find_opt t.backends b with
        | Some r -> incr r
        | None -> Hashtbl.add t.backends b (ref 1)));
      (match code with
      | None -> ()
      | Some c -> (
        match Hashtbl.find_opt t.errors c with
        | Some r -> incr r
        | None -> Hashtbl.add t.errors c (ref 1)));
      t.ring.(t.ring_pos) <- latency_s;
      t.ring_pos <- (t.ring_pos + 1) mod Array.length t.ring;
      t.ring_len <- min (t.ring_len + 1) (Array.length t.ring))

let record_stages t ~queue_s ~batch_s ~infer_s =
  with_lock t (fun () ->
      t.staged <- t.staged + 1;
      t.queue_sum_s <- t.queue_sum_s +. Float.max 0.0 queue_s;
      t.batch_sum_s <- t.batch_sum_s +. Float.max 0.0 batch_s;
      t.infer_sum_s <- t.infer_sum_s +. Float.max 0.0 infer_s)

let record_batch t ~size =
  with_lock t (fun () ->
      t.batches <- t.batches + 1;
      t.batched_requests <- t.batched_requests + size;
      if size > t.max_batch then t.max_batch <- size)

let shed t = with_lock t (fun () -> t.shed_count <- t.shed_count + 1)
let record_retry t = with_lock t (fun () -> t.retries <- t.retries + 1)
let record_hedge t = with_lock t (fun () -> t.hedges <- t.hedges + 1)

let record_degraded_router t =
  with_lock t (fun () -> t.degraded_router <- t.degraded_router + 1)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let snapshot t =
  with_lock t (fun () ->
      let samples = Array.sub t.ring 0 t.ring_len in
      Array.sort compare samples;
      let mean sum n = if n = 0 then 0.0 else 1000.0 *. sum /. float_of_int n in
      {
        served = t.served;
        ok = t.ok;
        degraded = t.degraded;
        shed = t.shed_count;
        errors =
          List.filter_map
            (fun c ->
              match Hashtbl.find_opt t.errors c with
              | Some r -> Some (Serve_error.code_string c, !r)
              | None -> None)
            Serve_error.all_codes;
        p50_ms = 1000.0 *. percentile samples 0.50;
        p99_ms = 1000.0 *. percentile samples 0.99;
        window = t.ring_len;
        staged = t.staged;
        queue_ms_mean = mean t.queue_sum_s t.staged;
        batch_ms_mean = mean t.batch_sum_s t.staged;
        infer_ms_mean = mean t.infer_sum_s t.staged;
        batches = t.batches;
        batched_requests = t.batched_requests;
        max_batch = t.max_batch;
        mean_batch =
          (if t.batches = 0 then 0.0
           else float_of_int t.batched_requests /. float_of_int t.batches);
        retries = t.retries;
        hedges = t.hedges;
        degraded_router = t.degraded_router;
        backends =
          Hashtbl.fold (fun b r acc -> (b, !r) :: acc) t.backends []
          |> List.sort (fun (a, _) (b, _) -> compare a b);
      })
