(* Single-threaded non-blocking event loop owning accept/read/write for the
   serving daemon.

   One Unix.select loop replaces the old thread-per-connection readers: each
   accepted connection carries an incremental line buffer (bytes arrive in
   any framing — byte-by-byte, whole lines, coalesced multi-line chunks), a
   FIFO of reply tickets, and an output buffer. Request processing happens
   elsewhere (the batcher thread); the loop's only cross-thread surface is
   [resolve], which fills a ticket and wakes the loop through a self-pipe.

   Ordering: replies on one connection go out strictly in request order —
   [flush_ready] only moves the {e resolved prefix} of the ticket FIFO into
   the output buffer, so an early answer to a later request waits for its
   predecessors. *)

module Linebuf = struct
  type t = {
    max_line : int;
    buf : Buffer.t;  (* current partial line, no newline yet *)
    mutable overflowed : bool;
  }

  let create ~max_line =
    if max_line < 1 then invalid_arg "Linebuf.create: max_line must be >= 1";
    { max_line; buf = Buffer.create 256; overflowed = false }

  let pending t = Buffer.length t.buf
  let overflowed t = t.overflowed

  (* Append a chunk; return the complete lines it closed, in order. Lines
     completed before an oversized line is detected are still delivered;
     the overflow is sticky (the stream cannot be re-framed safely, the
     caller must reject and close). *)
  let feed t chunk =
    if t.overflowed then ([], true)
    else begin
      let lines = ref [] in
      let n = String.length chunk in
      let i = ref 0 in
      while (not t.overflowed) && !i < n do
        (match String.index_from_opt chunk !i '\n' with
        | Some j ->
          Buffer.add_substring t.buf chunk !i (j - !i);
          if Buffer.length t.buf > t.max_line then t.overflowed <- true
          else begin
            lines := Buffer.contents t.buf :: !lines;
            Buffer.clear t.buf;
            i := j + 1
          end
        | None ->
          Buffer.add_substring t.buf chunk !i (n - !i);
          if Buffer.length t.buf > t.max_line then t.overflowed <- true;
          i := n)
      done;
      (List.rev !lines, t.overflowed)
    end
end

type t = {
  listener : Unix.file_descr;
  max_conns : int;
  max_line : int;
  overflow_reply : string;
  idle_timeout : float option;  (* reap quiet connections after this long *)
  mutable on_line : ticket -> string -> unit;
  m : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable woken : bool;  (* a wake byte is already in flight *)
  mutable conns : conn list;
  mutable next_cid : int;
  mutable reap_count : int;
  mutable stopping : bool;
}

and conn = {
  owner : t;
  cid : int;  (* stable per-connection id (session binding) *)
  fd : Unix.file_descr;
  lbuf : Linebuf.t;
  out : Buffer.t;
  mutable out_off : int;  (* bytes of [out] already written *)
  tickets : ticket Queue.t;  (* unanswered requests, FIFO *)
  mutable closing : bool;  (* read side done; close once flushed *)
  mutable last_activity : float;  (* last byte read or written *)
  mutable idle_exempt : bool;  (* streaming sessions opt out of the reaper *)
}

and ticket = { tk_conn : conn; mutable tk_reply : string option }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let wake_locked t =
  if not t.woken then begin
    t.woken <- true;
    ignore (try Unix.write t.wake_w (Bytes.make 1 '!') 0 1 with Unix.Unix_error _ -> 0)
  end

let create ?(max_conns = 512) ?(max_line = 1 lsl 20)
    ?(overflow_reply =
      {|{"ok": false, "error": "bad_request", "message": "line too long"}|})
    ?idle_timeout_s ~listener () =
  (match idle_timeout_s with
  | Some s when s <= 0.0 -> invalid_arg "Reactor.create: idle_timeout_s must be > 0"
  | _ -> ());
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  {
    listener;
    max_conns;
    max_line;
    overflow_reply;
    idle_timeout = idle_timeout_s;
    on_line = (fun _ _ -> ());
    m = Mutex.create ();
    wake_r;
    wake_w;
    woken = false;
    conns = [];
    next_cid = 0;
    reap_count = 0;
    stopping = false;
  }

let set_on_line t f = t.on_line <- f

let resolve ticket reply =
  let t = ticket.tk_conn.owner in
  with_lock t (fun () ->
      ticket.tk_reply <- Some reply;
      wake_locked t)

let stop t =
  with_lock t (fun () ->
      t.stopping <- true;
      wake_locked t)

let connections t = with_lock t (fun () -> List.length t.conns)
let reaped t = with_lock t (fun () -> t.reap_count)
let ticket_conn_id ticket = ticket.tk_conn.cid

(* Exempting is a plain boolean store: the reaper only ever reads it on the
   loop thread, and a stale read merely delays the exemption by one loop
   iteration (the connection just carried a request, so it is not idle). *)
let exempt_idle ticket = ticket.tk_conn.idle_exempt <- true

(* --- loop internals (reactor thread only, except where noted) --- *)

let enqueue_ticket t conn =
  let tk = { tk_conn = conn; tk_reply = None } in
  with_lock t (fun () -> Queue.push tk conn.tickets);
  tk

(* Move the resolved prefix of the ticket FIFO into the output buffer. *)
let flush_ready t conn =
  with_lock t (fun () ->
      let rec go () =
        match Queue.peek_opt conn.tickets with
        | Some { tk_reply = Some reply; _ } ->
          ignore (Queue.pop conn.tickets);
          Buffer.add_string conn.out reply;
          Buffer.add_char conn.out '\n';
          go ()
        | _ -> ()
      in
      go ())

let close_conn t conn =
  with_lock t (fun () -> t.conns <- List.filter (fun c -> c != conn) t.conns);
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let conn_flushed conn = conn.out_off >= Buffer.length conn.out

let has_pending t conn = with_lock t (fun () -> not (Queue.is_empty conn.tickets))

(* Closing decision: a connection dies once its read side is finished AND
   every admitted request has been answered and flushed. *)
let maybe_close t conn =
  if conn.closing && conn_flushed conn && not (has_pending t conn) then close_conn t conn

let handle_readable t conn =
  let chunk = Bytes.create 4096 in
  match Unix.read conn.fd chunk 0 4096 with
  | 0 ->
    (* EOF: a partial line never completes — a request cut off by the
       disconnect is rejected by discarding it (there is nobody to answer).
       Replies still owed are flushed before the close. *)
    conn.closing <- true;
    maybe_close t conn
  | n ->
    conn.last_activity <- Unix.gettimeofday ();
    let lines, overflowed = Linebuf.feed conn.lbuf (Bytes.sub_string chunk 0 n) in
    List.iter
      (fun line ->
        let line = String.trim line in
        if line <> "" then begin
          let tk = enqueue_ticket t conn in
          t.on_line tk line
        end)
      lines;
    if overflowed then begin
      (* Framing is unrecoverable: answer with a protocol error and stop
         reading; queued requests still drain in order before the close. *)
      let tk = enqueue_ticket t conn in
      resolve tk t.overflow_reply;
      conn.closing <- true
    end;
    flush_ready t conn;
    maybe_close t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) ->
    (* Connection reset: nobody left to answer; drop everything. *)
    with_lock t (fun () -> Queue.clear conn.tickets);
    close_conn t conn

let handle_writable t conn =
  let len = Buffer.length conn.out - conn.out_off in
  if len > 0 then begin
    let data = Buffer.to_bytes conn.out in
    match Unix.write conn.fd data conn.out_off len with
    | n ->
      if n > 0 then conn.last_activity <- Unix.gettimeofday ();
      conn.out_off <- conn.out_off + n;
      if conn_flushed conn then begin
        Buffer.clear conn.out;
        conn.out_off <- 0
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
    | exception Unix.Unix_error (_, _, _) ->
      with_lock t (fun () -> Queue.clear conn.tickets);
      close_conn t conn
  end;
  maybe_close t conn

let handle_accept t =
  match Unix.accept t.listener with
  | fd, _ ->
    Unix.set_nonblock fd;
    let conn =
      {
        owner = t;
        cid = with_lock t (fun () -> t.next_cid <- t.next_cid + 1; t.next_cid);
        fd;
        lbuf = Linebuf.create ~max_line:t.max_line;
        out = Buffer.create 256;
        out_off = 0;
        tickets = Queue.create ();
        closing = false;
        last_activity = Unix.gettimeofday ();
        idle_exempt = false;
      }
    in
    with_lock t (fun () -> t.conns <- conn :: t.conns)
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
    ()
  | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
    (* Listener shut down under us (external kill path). *)
    with_lock t (fun () -> t.stopping <- true)

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
  in
  go ();
  with_lock t (fun () -> t.woken <- false)

let run t =
  let finished = ref false in
  while not !finished do
    let stopping, conns = with_lock t (fun () -> (t.stopping, t.conns)) in
    (* In stopping mode every ticket has been resolved by the shutdown
       drain; flush what remains and close as connections empty out. *)
    if stopping then begin
      List.iter (fun c -> flush_ready t c) conns;
      List.iter
        (fun c ->
          if conn_flushed c && not (has_pending t c) then close_conn t c)
        conns
    end;
    (* Idle reaper: a connection that owes nothing (no unanswered tickets,
       output flushed) and has been quiet past the timeout is closed, so
       slow-loris connections cannot pin [max_conns] slots forever.
       Streaming sessions opt out via {!exempt_idle}; their lifetime is
       governed by the session TTL instead. *)
    let idle_candidate c =
      (not c.idle_exempt) && (not c.closing) && conn_flushed c
      && not (has_pending t c)
    in
    (match t.idle_timeout with
    | Some it when not stopping ->
      let now = Unix.gettimeofday () in
      List.iter
        (fun c ->
          if idle_candidate c && now -. c.last_activity > it then begin
            with_lock t (fun () -> t.reap_count <- t.reap_count + 1);
            close_conn t c
          end)
        conns
    | _ -> ());
    let conns = with_lock t (fun () -> t.conns) in
    if stopping && conns = [] then finished := true
    else begin
      let accepting = (not stopping) && List.length conns < t.max_conns in
      let reads =
        t.wake_r
        :: (if accepting then [ t.listener ] else [])
        @ List.filter_map (fun c -> if c.closing then None else Some c.fd) conns
      in
      let writes = List.filter_map (fun c -> if conn_flushed c then None else Some c.fd) conns in
      (* With the reaper armed, sleep only until the earliest candidate
         would expire; with no candidates (or no reaper) block — every
         other state change wakes the loop via fd readiness or the
         self-pipe. *)
      let timeout =
        match t.idle_timeout with
        | None -> -1.0
        | Some it -> (
          let now = Unix.gettimeofday () in
          let next =
            List.fold_left
              (fun acc c ->
                if idle_candidate c then
                  let d = c.last_activity +. it -. now in
                  Some (match acc with None -> d | Some a -> Float.min a d)
                else acc)
              None conns
          in
          match next with None -> -1.0 | Some d -> Float.max 0.01 d)
      in
      match Unix.select reads writes [] timeout with
      | rs, ws, _ ->
        if List.mem t.wake_r rs then drain_wake t;
        (* Ticket resolutions arrive from the batcher thread at any time;
           sweep every connection for newly-ready replies. *)
        List.iter (fun c -> flush_ready t c) (with_lock t (fun () -> t.conns));
        List.iter
          (fun c ->
            if List.mem c.fd ws then handle_writable t c
            else if not (conn_flushed c) then ()
            else maybe_close t c)
          (with_lock t (fun () -> t.conns));
        List.iter
          (fun c -> if List.mem c.fd rs then handle_readable t c)
          (with_lock t (fun () -> t.conns));
        if accepting && List.mem t.listener rs then handle_accept t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        (* A connection died between snapshot and select; next iteration
           rebuilds the sets from live state. *)
        ()
    end
  done;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
