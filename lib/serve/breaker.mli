(** Circuit breaker over the learned-model inference path.

    Closed (normal) → [threshold] consecutive failures → Open (model
    skipped, requests degrade straight to the analytical baseline) →
    [cooldown] seconds later → Half-open (exactly one probe request may try
    the model) → success closes, failure re-opens.

    Time is injected at construction so tests drive transitions with a fake
    clock. Thread-safe: every observation and transition runs under an
    internal mutex, because replica-pool batches complete concurrently and
    each completion records per-request outcomes (the serve-batch suite
    hammers this from parallel threads and checks the open count). *)

type state = Closed | Open | Half_open

type t

val create : ?threshold:int -> ?cooldown:float -> now:(unit -> float) -> unit -> t
(** Defaults: threshold 3 consecutive failures, cooldown 5 seconds. *)

val state : t -> state
(** Current state; an expired cooldown is observed as [Half_open]. *)

val state_name : state -> string
(** ["closed" | "open" | "half_open"]. *)

val allow : t -> bool
(** May the next request try the model? [Closed] and [Half_open] (the
    probe): yes; [Open] with an unexpired cooldown: no. *)

val record_success : t -> unit
(** Model produced a valid answer: reset the failure streak, close. *)

val record_failure : t -> unit
(** Model faulted (exception, NaN, out-of-range): extend the streak; trips
    to [Open] at [threshold], and a [Half_open] probe failure re-opens
    immediately. *)

val consecutive_failures : t -> int
val times_opened : t -> int
(** Total Closed/Half-open → Open transitions (for the stats endpoint). *)
