(** Minimal JSON codec for the line-delimited serving protocol.

    Parses full JSON (objects, arrays, strings with escapes, numbers,
    booleans, null) into a plain variant; numbers are held as float64, which
    is exact for every integer the protocol carries (trace addresses are
    bounded to 2^52 by {!Trace_io.max_address}). The parser is total: it
    returns [Error] on malformed input and never raises. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-string parse (trailing garbage is an error). *)

val to_string : t -> string
(** Compact one-line rendering (no embedded newlines, so the result is
    always a valid protocol line). Integral numbers print without a decimal
    point. *)

(** {1 Accessors} — all total, [None]/default on type mismatch. *)

val member : string -> t -> t option
(** Field of an object ([None] for non-objects and absent fields). *)

val to_int : t -> int option
(** [Num] with an exactly-integral value in int range. *)

val to_float : t -> float option

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
