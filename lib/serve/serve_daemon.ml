type listen = Unix_socket of string | Tcp of string * int

type config = {
  listen : listen;
  queue_depth : int;
  batcher : Batcher.config;
  engine : Serve_engine.config;
  stream : Stream_session.config;
  idle_timeout_s : float option;
}

let default_config listen =
  {
    listen;
    queue_depth = 64;
    batcher = Batcher.default_config;
    engine = Serve_engine.default_config ();
    stream = Stream_session.default_config;
    idle_timeout_s = None;
  }

(* A queued request: the raw line, its admission timestamp (deadlines count
   from it, so queue wait is on the clock) and the reactor ticket that will
   carry the reply back to the connection, in per-connection order. *)
type job = { line : string; arrival : float; ticket : Reactor.ticket }

let bind_listener = function
  | Unix_socket path ->
    if Sys.file_exists path then begin
      (* Only a stale socket file (connect refused) may be reclaimed;
         a live daemon on the same path is a configuration error, and
         anything else (say, a regular file) is left for bind to reject. *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let verdict =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> `Live
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
        | exception Unix.Unix_error _ -> `Unknown
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      (match verdict with
      | `Live ->
        Serve_error.fail Serve_error.Invalid_config
          "socket %s is in use by a running daemon" path
      | `Stale -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | `Unknown -> ())
    end;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.bind fd (Unix.ADDR_UNIX path)
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Serve_error.fail Serve_error.Internal "cannot bind unix socket %s: %s" path
         (Unix.error_message e));
    fd
  | Tcp (host, port) ->
    let addr =
      match (Unix.gethostbyname host).Unix.h_addr_list.(0) with
      | addr -> addr
      | exception (Not_found | Invalid_argument _) ->
        Serve_error.fail Serve_error.Invalid_config "cannot resolve host %S" host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (try Unix.bind fd (Unix.ADDR_INET (addr, port))
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Serve_error.fail Serve_error.Internal "cannot bind %s:%d: %s" host port
         (Unix.error_message e));
    fd

(* The batcher thread: drains the admission queue, coalesces infer requests
   in the {!Batcher}, and runs due batches through the engine — inline when
   there is a single replica, through a pool of executor threads otherwise.

   Shutdown protocol, on a [{"op": "shutdown"}] line:
   + flip [draining] so the reactor answers further lines with the shed
     reply without touching the queue;
   + answer the shutdown request itself;
   + requests already coalescing in the batcher were picked up before the
     shutdown, so they get real (batched) answers;
   + close the executor pool and the admission queue, answering orphaned
     queue entries as shed;
   + stop the reactor, which flushes every reply and closes connections —
     idle clients see EOF. *)
let batcher_loop engine sessions cfg queue reactor draining =
  (* Each batched item carries its own completion callback: a plain infer
     resolves its reactor ticket, a streamed window reports into its feed's
     completion group (which resolves the feed's ticket once every window
     the chunk closed has landed). *)
  let b : (Serve_engine.infer_item * (Sjson.t -> unit)) Batcher.t =
    Batcher.create ~now:(fun () -> Serve_engine.now engine) cfg.batcher
  in
  (* Deferred (reload) work runs on its own threads so a multi-second model
     load never stalls the batcher; shutdown joins them so every ticket is
     resolved before the reactor stops. *)
  let deferred = ref [] in
  let dm = Mutex.create () in
  let note_deferred th =
    Mutex.lock dm;
    deferred := th :: !deferred;
    Mutex.unlock dm
  in
  let join_deferred () =
    Mutex.lock dm;
    let ths = !deferred in
    deferred := [];
    Mutex.unlock dm;
    List.iter Thread.join ths
  in
  let run_batch ?replica batch =
    let replies = Serve_engine.infer_batch ?replica engine (List.map fst batch) in
    List.iter2 (fun (_, complete) json -> complete json) batch replies
  in
  let replicas = Serve_engine.replica_count engine in
  let exec_q =
    if replicas > 1 then Some (Squeue.create ~capacity:(2 * replicas)) else None
  in
  let executors =
    match exec_q with
    | None -> []
    | Some q ->
      List.init replicas (fun k ->
          Thread.create
            (fun () ->
              let rec go () =
                match Squeue.pop q with
                | None -> ()
                | Some batch ->
                  run_batch ~replica:k batch;
                  go ()
              in
              go ())
            ())
  in
  let dispatch batch =
    if batch <> [] then
      match exec_q with
      | None -> run_batch batch
      | Some q ->
        (* The executor pool is small and bounded; back off until a slot
           frees rather than shedding work already admitted. *)
        let rec push () =
          if not (Squeue.try_push q batch) then begin
            Thread.delay 0.0005;
            push ()
          end
        in
        push ()
  in
  let process job =
    match Serve_engine.classify_line ~arrival:job.arrival engine job.line with
    | Serve_engine.Immediate (Serve_engine.Reply json) ->
      Reactor.resolve job.ticket (Sjson.to_string json);
      `Continue
    | Serve_engine.Immediate (Serve_engine.Shutdown_reply json) ->
      `Shutdown (job.ticket, json)
    | Serve_engine.Batchable item ->
      let ticket = job.ticket in
      Serve_engine.set_item_pickup item (Serve_engine.now engine);
      Batcher.push b
        ~deadline:(Serve_engine.item_deadline item)
        (item, fun json -> Reactor.resolve ticket (Sjson.to_string json));
      `Continue
    | Serve_engine.Stream req ->
      let ticket = job.ticket in
      Stream_session.handle sessions
        ~conn:(Reactor.ticket_conn_id ticket)
        ~arrival:job.arrival
        ~submit:(fun item complete ->
          Serve_engine.set_item_pickup item (Serve_engine.now engine);
          Batcher.push b ~deadline:(Serve_engine.item_deadline item) (item, complete))
        ~resolve:(fun json -> Reactor.resolve ticket (Sjson.to_string json))
        ~exempt:(fun () -> Reactor.exempt_idle ticket)
        req;
      `Continue
    | Serve_engine.Deferred thunk ->
      let ticket = job.ticket in
      note_deferred
        (Thread.create
           (fun () ->
             match thunk () with
             | Serve_engine.Reply json | Serve_engine.Shutdown_reply json ->
               Reactor.resolve ticket (Sjson.to_string json))
           ());
      `Continue
  in
  let shutdown ticket json =
    Atomic.set draining true;
    Reactor.resolve ticket (Sjson.to_string json);
    dispatch (Batcher.drain b);
    (match exec_q with
    | None -> ()
    | Some q ->
      Squeue.close q;
      List.iter Thread.join executors);
    Squeue.close queue;
    let rec drain_orphans () =
      match Squeue.pop queue with
      | None -> ()
      | Some orphan ->
        Reactor.resolve orphan.ticket
          (Sjson.to_string (Serve_engine.draining_reply engine));
        drain_orphans ()
    in
    drain_orphans ();
    join_deferred ();
    Reactor.stop reactor
  in
  (* Abandoned sessions release their quota without waiting for the next
     open: sweep at most once a second, from whichever branch of the loop
     is active. (A fully idle daemon sweeps on the next request — opens
     also sweep, so quota admission never sees stale sessions.) *)
  let last_sweep = ref (Serve_engine.now engine) in
  let maybe_sweep () =
    let now = Serve_engine.now engine in
    if now -. !last_sweep > 1.0 then begin
      last_sweep := now;
      Stream_session.sweep sessions
    end
  in
  let rec loop () =
    maybe_sweep ();
    if Batcher.length b = 0 then
      (* Nothing coalescing: block until the reactor admits a request. *)
      match Squeue.pop queue with
      | None ->
        join_deferred ();
        Reactor.stop reactor (* external close: bail out cleanly *)
      | Some job -> step job
    else if Batcher.due b then begin
      dispatch (Batcher.take b);
      loop ()
    end
    else
      (* A batch is forming: keep pulling ready work, and otherwise nap
         until the earliest flush obligation (bounded so a new arrival is
         picked up within a millisecond). *)
      match Squeue.try_pop queue with
      | Some job -> step job
      | None ->
        let wait =
          match Batcher.next_flush b with
          | Some at -> at -. Serve_engine.now engine
          | None -> 0.001
        in
        if wait > 0.0 then Thread.delay (Float.min wait 0.001);
        loop ()
  and step job =
    match process job with
    | `Continue -> loop ()
    | `Shutdown (ticket, json) -> shutdown ticket json
  in
  loop ()

let run ?journal ?reload ?student_path ?(ready = fun () -> ()) ~spec ~model config =
  (* A client (or a routing front-end hedging a slow attempt) may close its
     connection while a reply is in flight; the write must surface as EPIPE
     for the reactor to clean up, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let engine =
    Serve_engine.create ?journal ?reload ?student_path ~spec ~model config.engine
  in
  let listener = bind_listener config.listen in
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  (match journal with
  | None -> ()
  | Some j ->
    Runlog.event j "serve_start"
      [
        ( "listen",
          Runlog.S
            (match config.listen with
            | Unix_socket p -> "unix:" ^ p
            | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p) );
        ("model_loaded", Runlog.B (Serve_engine.model_loaded engine));
        ("replicas", Runlog.I (Serve_engine.replica_count engine));
      ]);
  let queue : job Squeue.t = Squeue.create ~capacity:config.queue_depth in
  let reactor = Reactor.create ?idle_timeout_s:config.idle_timeout_s ~listener () in
  let sessions = Stream_session.create ~config:config.stream engine in
  Serve_engine.set_extra_stats engine (Stream_session.stats_fields sessions);
  let draining = Atomic.make false in
  Reactor.set_on_line reactor (fun ticket line ->
      if Atomic.get draining then
        Reactor.resolve ticket (Sjson.to_string (Serve_engine.draining_reply engine))
      else begin
        let job = { line; arrival = Serve_engine.now engine; ticket } in
        if not (Squeue.try_push queue job) then
          Reactor.resolve ticket (Sjson.to_string (Serve_engine.overload_reply engine))
      end);
  (* SIGHUP = operator-driven zero-downtime reload of the default
     checkpoint path. The handler only spawns a thread; the load/warm/swap
     runs entirely off the serving path, and a failed reload is journaled
     and leaves the old model serving. Restored on exit so in-process test
     daemons don't leak handlers. *)
  let restore_sighup =
    match reload with
    | None -> fun () -> ()
    | Some _ ->
      let prev =
        Sys.signal Sys.sighup
          (Sys.Signal_handle
             (fun _ ->
               ignore
                 (Thread.create
                    (fun () ->
                      match Serve_engine.reload engine () with Ok () | Error _ -> ())
                    ())))
      in
      fun () -> Sys.set_signal Sys.sighup prev
  in
  let batcher =
    Thread.create (fun () -> batcher_loop engine sessions config queue reactor draining) ()
  in
  ready ();
  Reactor.run reactor;
  Thread.join batcher;
  restore_sighup ();
  (try Unix.close listener with Unix.Unix_error _ -> ());
  match config.listen with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()
