type listen = Unix_socket of string | Tcp of string * int

type config = {
  listen : listen;
  queue_depth : int;
  engine : Serve_engine.config;
}

let default_config listen =
  { listen; queue_depth = 64; engine = Serve_engine.default_config () }

(* A queued request: the raw line, its admission timestamp (deadlines count
   from it, so queue wait is on the clock) plus a one-shot reply slot the
   worker fills and the connection reader blocks on. *)
type job = {
  line : string;
  arrival : float;
  mutable reply : Serve_engine.outcome option;
  m : Mutex.t;
  cv : Condition.t;
}

let make_job ~arrival line =
  { line; arrival; reply = None; m = Mutex.create (); cv = Condition.create () }

let fulfill job outcome =
  Mutex.lock job.m;
  job.reply <- Some outcome;
  Condition.signal job.cv;
  Mutex.unlock job.m

let await job =
  Mutex.lock job.m;
  while job.reply = None do
    Condition.wait job.cv job.m
  done;
  let r = Option.get job.reply in
  Mutex.unlock job.m;
  r

let send_line oc json =
  output_string oc (Sjson.to_string json);
  output_char oc '\n';
  flush oc

(* Live client fds, so shutdown can wake readers blocked in input_line. *)
type clients = { cm : Mutex.t; mutable fds : Unix.file_descr list }

let clients_create () = { cm = Mutex.create (); fds = [] }

let clients_add c fd =
  Mutex.lock c.cm;
  c.fds <- fd :: c.fds;
  Mutex.unlock c.cm

let clients_remove c fd =
  Mutex.lock c.cm;
  c.fds <- List.filter (fun f -> f <> fd) c.fds;
  Mutex.unlock c.cm

let clients_snapshot c =
  Mutex.lock c.cm;
  let fds = c.fds in
  Mutex.unlock c.cm;
  fds

(* Worker: drains the queue through the engine; flips [stop] on shutdown.
   Jobs admitted before the shutdown closed the queue still have readers
   blocked in [await], so they are drained and answered (as shed) rather
   than abandoned — an unfulfilled job would deadlock [run]'s reader
   join. *)
let worker_loop engine queue stop =
  let rec go () =
    match Squeue.pop queue with
    | None -> ()
    | Some job -> (
      match Serve_engine.handle_line engine ~arrival:job.arrival job.line with
      | Serve_engine.Reply _ as outcome ->
        fulfill job outcome;
        go ()
      | Serve_engine.Shutdown_reply _ as outcome ->
        stop := true;
        fulfill job outcome;
        Squeue.close queue;
        let rec drain () =
          match Squeue.pop queue with
          | None -> ()
          | Some orphan ->
            fulfill orphan (Serve_engine.Reply (Serve_engine.draining_reply engine));
            drain ()
        in
        drain ())
  in
  go ()

(* Connection reader: one thread per client, lines answered in order. *)
let connection_loop engine queue clients fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec go () =
    match input_line ic with
    | line ->
      let line = String.trim line in
      if line = "" then go ()
      else begin
        let job = make_job ~arrival:(Serve_engine.now engine) line in
        if Squeue.try_push queue job then begin
          (match await job with
          | Serve_engine.Reply json | Serve_engine.Shutdown_reply json -> send_line oc json);
          go ()
        end
        else begin
          send_line oc (Serve_engine.overload_reply engine);
          go ()
        end
      end
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      clients_remove clients fd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try go () with Sys_error _ -> ())

let bind_listener = function
  | Unix_socket path ->
    if Sys.file_exists path then begin
      (* Only a stale socket file (connect refused) may be reclaimed;
         a live daemon on the same path is a configuration error, and
         anything else (say, a regular file) is left for bind to reject. *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let verdict =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> `Live
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
        | exception Unix.Unix_error _ -> `Unknown
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      (match verdict with
      | `Live ->
        Serve_error.fail Serve_error.Invalid_config
          "socket %s is in use by a running daemon" path
      | `Stale -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | `Unknown -> ())
    end;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.bind fd (Unix.ADDR_UNIX path)
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Serve_error.fail Serve_error.Internal "cannot bind unix socket %s: %s" path
         (Unix.error_message e));
    fd
  | Tcp (host, port) ->
    let addr =
      match (Unix.gethostbyname host).Unix.h_addr_list.(0) with
      | addr -> addr
      | exception (Not_found | Invalid_argument _) ->
        Serve_error.fail Serve_error.Invalid_config "cannot resolve host %S" host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (try Unix.bind fd (Unix.ADDR_INET (addr, port))
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Serve_error.fail Serve_error.Internal "cannot bind %s:%d: %s" host port
         (Unix.error_message e));
    fd

let run ?journal ?(ready = fun () -> ()) ~spec ~model config =
  let engine = Serve_engine.create ?journal ~spec ~model config.engine in
  let queue : job Squeue.t = Squeue.create ~capacity:config.queue_depth in
  let stop = ref false in
  let listener = bind_listener config.listen in
  Unix.listen listener 16;
  (match journal with
  | None -> ()
  | Some j ->
    Runlog.event j "serve_start"
      [
        ( "listen",
          Runlog.S
            (match config.listen with
            | Unix_socket p -> "unix:" ^ p
            | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p) );
        ("model_loaded", Runlog.B (Serve_engine.model_loaded engine));
      ]);
  let worker = Thread.create (fun () -> worker_loop engine queue stop) () in
  let clients = clients_create () in
  let readers = ref [] in
  ready ();
  (* Accept loop: [stop] is only observed between accepts, so the worker
     also closes the listener to interrupt a blocking accept. *)
  let rec accept_loop () =
    if not !stop then
      match Unix.accept listener with
      | fd, _ ->
        clients_add clients fd;
        readers := Thread.create (fun () -> connection_loop engine queue clients fd) () :: !readers;
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  (* The worker cannot unblock the accept itself (it only sees the queue),
     so poll [stop] from a watchdog. shutdown(2), not close(2): closing an
     fd does not wake a thread already blocked in accept on Linux, while
     shutdown makes that accept return EINVAL. *)
  let watchdog =
    Thread.create
      (fun () ->
        while not !stop do
          Thread.delay 0.05
        done;
        try Unix.shutdown listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      ()
  in
  accept_loop ();
  Squeue.close queue;
  (* Join order matters: the worker first (it fulfills every admitted job,
     releasing readers blocked in [await]), then wake the idle readers
     blocked in input_line. SHUTDOWN_RECEIVE delivers the EOF without
     cutting off a reply a reader is still flushing. *)
  Thread.join worker;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    (clients_snapshot clients);
  List.iter Thread.join !readers;
  Thread.join watchdog;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (match config.listen with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ())
