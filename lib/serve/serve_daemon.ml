type listen = Unix_socket of string | Tcp of string * int

type config = {
  listen : listen;
  queue_depth : int;
  engine : Serve_engine.config;
}

let default_config listen =
  { listen; queue_depth = 64; engine = Serve_engine.default_config () }

(* A queued request: the raw line plus a one-shot reply slot the worker
   fills and the connection reader blocks on. *)
type job = {
  line : string;
  mutable reply : Serve_engine.outcome option;
  m : Mutex.t;
  cv : Condition.t;
}

let make_job line = { line; reply = None; m = Mutex.create (); cv = Condition.create () }

let fulfill job outcome =
  Mutex.lock job.m;
  job.reply <- Some outcome;
  Condition.signal job.cv;
  Mutex.unlock job.m

let await job =
  Mutex.lock job.m;
  while job.reply = None do
    Condition.wait job.cv job.m
  done;
  let r = Option.get job.reply in
  Mutex.unlock job.m;
  r

let send_line oc json =
  output_string oc (Sjson.to_string json);
  output_char oc '\n';
  flush oc

(* Worker: drains the queue through the engine; flips [stop] on shutdown. *)
let worker_loop engine queue stop =
  let rec go () =
    match Squeue.pop queue with
    | None -> ()
    | Some job -> (
      match Serve_engine.handle_line engine job.line with
      | Serve_engine.Reply _ as outcome ->
        fulfill job outcome;
        go ()
      | Serve_engine.Shutdown_reply _ as outcome ->
        stop := true;
        fulfill job outcome;
        Squeue.close queue)
  in
  go ()

(* Connection reader: one thread per client, lines answered in order. *)
let connection_loop engine queue fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec go () =
    match input_line ic with
    | line ->
      let line = String.trim line in
      if line = "" then go ()
      else begin
        let job = make_job line in
        if Squeue.try_push queue job then begin
          (match await job with
          | Serve_engine.Reply json | Serve_engine.Shutdown_reply json -> send_line oc json);
          go ()
        end
        else begin
          send_line oc (Serve_engine.overload_reply engine);
          go ()
        end
      end
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    go

let bind_listener = function
  | Unix_socket path ->
    if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.bind fd (Unix.ADDR_UNIX path)
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Serve_error.fail Serve_error.Internal "cannot bind unix socket %s: %s" path
         (Unix.error_message e));
    fd
  | Tcp (host, port) ->
    let addr =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_loopback
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (try Unix.bind fd (Unix.ADDR_INET (addr, port))
     with Unix.Unix_error (e, _, _) ->
       Unix.close fd;
       Serve_error.fail Serve_error.Internal "cannot bind %s:%d: %s" host port
         (Unix.error_message e));
    fd

let run ?journal ?(ready = fun () -> ()) ~spec ~model config =
  let engine = Serve_engine.create ?journal ~spec ~model config.engine in
  let queue : job Squeue.t = Squeue.create ~capacity:config.queue_depth in
  let stop = ref false in
  let listener = bind_listener config.listen in
  Unix.listen listener 16;
  (match journal with
  | None -> ()
  | Some j ->
    Runlog.event j "serve_start"
      [
        ( "listen",
          Runlog.S
            (match config.listen with
            | Unix_socket p -> "unix:" ^ p
            | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p) );
        ("model_loaded", Runlog.B (Serve_engine.model_loaded engine));
      ]);
  let worker = Thread.create (fun () -> worker_loop engine queue stop) () in
  let readers = ref [] in
  ready ();
  (* Accept loop: [stop] is only observed between accepts, so the worker
     also closes the listener to interrupt a blocking accept. *)
  let rec accept_loop () =
    if not !stop then
      match Unix.accept listener with
      | fd, _ ->
        readers := Thread.create (fun () -> connection_loop engine queue fd) () :: !readers;
        accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  (* The worker cannot unblock the accept itself (it only sees the queue),
     so poll [stop] from a watchdog. shutdown(2), not close(2): closing an
     fd does not wake a thread already blocked in accept on Linux, while
     shutdown makes that accept return EINVAL. *)
  let watchdog =
    Thread.create
      (fun () ->
        while not !stop do
          Thread.delay 0.05
        done;
        try Unix.shutdown listener Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      ()
  in
  accept_loop ();
  Squeue.close queue;
  Thread.join worker;
  Thread.join watchdog;
  List.iter Thread.join !readers;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (match config.listen with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ())
