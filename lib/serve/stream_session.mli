(** Live trace streaming sessions behind the daemon.

    A client opens a session ([stream_open]: cache geometry → token +
    window geometry + initial credit), pours its address trace in
    line-delimited [stream_feed] chunks, and receives a prediction for each
    heatmap window the chunk closed — blitted out of a per-session
    {!Heatmap.Accum} and batched through the engine like any other infer,
    so streamed answers are bit-identical to offline
    [of_trace]-then-infer over the same trace.

    Robustness invariants this module owns:

    - {b Bounded buffering / backpressure.} Every reply carries a [credit]
      grant (in accesses): the most the client may send before windows
      would outrun the per-session retention ring of [retain_windows]
      un-acknowledged results. An over-credit chunk is rejected atomically
      with a typed [overloaded] reply — nothing buffers beyond the fixed
      per-session footprint, ever. Clients free credit by acknowledging
      windows ([ack] in feeds, [last_window] in resumes).
    - {b Global quotas.} [max_sessions] and [max_bytes] cap admission at
      open ([overloaded], counted as a shed); [max_pending_windows] caps
      windows in flight across all sessions — over-quota windows degrade
      immediately to the analytical baseline (the engine's existing ladder
      rung) instead of deepening the backlog.
    - {b Checkpointed resume.} After every applied chunk the session's
      accumulator state is checkpointed ({!Heatmap.Accum.snapshot}, the
      CRC-32 container discipline). A client that lost its connection
      re-attaches with [stream_resume]: the session re-binds to the new
      connection, un-acked window results are replayed, and [consumed]
      names the exact stream position to continue from. Results of windows
      still in the batcher land in the retention ring as they finish —
      poll resume until [pending] is 0.
    - {b Fault containment.} A corrupt chunk (unparseable payload or an
      out-of-range address mid-chunk) rolls the session back to its last
      checkpoint and poisons {e only} that session with a sticky, typed
      [corrupt_input]; resuming clears the poison. Injected model faults
      degrade only the window they hit (the engine's per-item gate) —
      neighbouring sessions' windows are never lost or reordered.

    Thread-safety: one internal lock; {!handle} runs on the daemon's
    batcher thread, completion callbacks on executor threads. *)

type config = {
  max_sessions : int;  (** live sessions admitted *)
  retain_windows : int;
      (** per-session un-acked window results kept for replay; also the
          credit horizon *)
  max_pending_windows : int;  (** windows in the batcher, across sessions *)
  max_bytes : int;  (** summed per-session buffer footprints *)
  session_ttl_s : float;  (** idle sessions older than this are evicted *)
}

val default_config : config
(** 64 sessions, 8 retained windows, 256 pending windows, 64 MiB,
    300 s TTL. *)

type t

val create : ?config:config -> Serve_engine.t -> t
(** Sessions window their input with the engine's heatmap spec; replies,
    sheds and degradations are recorded through the engine's stats and
    journal. Raises [Invalid_argument] on non-positive config fields. *)

val handle :
  t ->
  conn:int ->
  arrival:float ->
  submit:(Serve_engine.infer_item -> (Sjson.t -> unit) -> unit) ->
  resolve:(Sjson.t -> unit) ->
  exempt:(unit -> unit) ->
  Validate.request ->
  unit
(** Process one validated [stream_*] request. Total: every path eventually
    calls [resolve] exactly once (immediately, or — for a feed that closed
    windows — once the last window's result lands). [conn] is the
    reactor's connection id: sessions bind to it at open, feeds from a
    different connection are rejected until a resume re-binds. [submit]
    hands a window to the batcher with its completion callback; the
    callback may fire on any thread. [exempt] is invoked on successful
    open/resume so the carrying connection escapes the idle reaper. *)

val sweep : t -> unit
(** Evict sessions idle past the TTL (with no windows in flight) — call
    periodically from the daemon's nap loop so abandoned sessions release
    their quota without waiting for the next open. *)

val stats_fields : t -> unit -> (string * Sjson.t) list
(** Gauges/counters for the [stats] reply (register with
    {!Serve_engine.set_extra_stats}): one ["stream"] object with
    [sessions], [opened], [resumed], [closed], [windows], [pending],
    [bytes], [degraded_quota], [shed_credit], [shed_quota], [poisoned],
    [evicted]. *)

val live_sessions : t -> int
val pending_windows : t -> int

val buffered_bytes : t -> int
(** Current summed session footprints charged against [max_bytes]. *)
