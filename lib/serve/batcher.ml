type config = {
  max_batch : int;
  max_linger_s : float;
  deadline_margin_s : float;
}

let default_config = { max_batch = 32; max_linger_s = 0.005; deadline_margin_s = 0.05 }

type 'a item = { payload : 'a; enqueued : float; flush_by : float }

type 'a t = {
  cfg : config;
  now : unit -> float;
  m : Mutex.t;
  q : 'a item Queue.t;
  mutable flushes_full : int;
  mutable flushes_timed : int;
}

let create ?now cfg =
  if cfg.max_batch < 1 then invalid_arg "Batcher.create: max_batch must be >= 1";
  if cfg.max_linger_s < 0.0 then invalid_arg "Batcher.create: max_linger_s must be >= 0";
  if cfg.deadline_margin_s < 0.0 then
    invalid_arg "Batcher.create: deadline_margin_s must be >= 0";
  let now = Option.value now ~default:Unix.gettimeofday in
  { cfg; now; m = Mutex.create (); q = Queue.create (); flushes_full = 0; flushes_timed = 0 }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let push t ?deadline payload =
  let enqueued = t.now () in
  (* A request may linger at most max_linger_s — and strictly less when its
     own deadline is close: it must flush with at least deadline_margin_s of
     headroom left to run the batch, clamped so an already-tight request
     flushes immediately rather than in the past. *)
  let flush_by =
    let linger = enqueued +. t.cfg.max_linger_s in
    match deadline with
    | None -> linger
    | Some d -> Float.max enqueued (Float.min linger (d -. t.cfg.deadline_margin_s))
  in
  with_lock t (fun () -> Queue.push { payload; enqueued; flush_by } t.q)

let length t = with_lock t (fun () -> Queue.length t.q)

(* The earliest flush obligation is always the head's: flush_by is clamped
   to at least the enqueue time and enqueue times are monotonic per clock,
   but a later push CAN carry an earlier flush_by (tight deadline), so scan
   the whole queue. *)
let next_flush t =
  with_lock t (fun () ->
      Queue.fold
        (fun acc it ->
          match acc with
          | None -> Some it.flush_by
          | Some f -> Some (Float.min f it.flush_by))
        None t.q)

let due t =
  with_lock t (fun () ->
      Queue.length t.q >= t.cfg.max_batch
      || (not (Queue.is_empty t.q))
         &&
         let now = t.now () in
         Queue.fold (fun acc it -> acc || it.flush_by <= now) false t.q)

let pop_upto t k =
  let rec go acc k =
    if k = 0 || Queue.is_empty t.q then List.rev acc
    else go (Queue.pop t.q :: acc) (k - 1)
  in
  go [] k

let take t =
  with_lock t (fun () ->
      let n = Queue.length t.q in
      if n = 0 then []
      else if n >= t.cfg.max_batch then begin
        t.flushes_full <- t.flushes_full + 1;
        List.map (fun it -> it.payload) (pop_upto t t.cfg.max_batch)
      end
      else
        let now = t.now () in
        if Queue.fold (fun acc it -> acc || it.flush_by <= now) false t.q then begin
          t.flushes_timed <- t.flushes_timed + 1;
          List.map (fun it -> it.payload) (pop_upto t n)
        end
        else [])

let drain t =
  with_lock t (fun () ->
      List.map (fun it -> it.payload) (pop_upto t (Queue.length t.q)))

let flushes t = with_lock t (fun () -> (t.flushes_full, t.flushes_timed))
