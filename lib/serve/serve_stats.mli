(** Serving counters, stage timings and latency percentiles.

    Thread-safe: every mutation and the snapshot run under one internal
    mutex, so counters stay consistent when replica-pool batches complete
    concurrently (readers shed from the reactor, batch completions record
    from pool threads). Latencies are kept in a fixed-size ring of the most
    recent samples; p50/p99 are computed over that window on demand. *)

type t

type summary = {
  served : int;  (** requests answered (ok or error), excluding shed *)
  ok : int;  (** answered successfully, including degraded *)
  degraded : int;  (** answered by an analytical fallback *)
  shed : int;  (** rejected at admission ([Overloaded]) *)
  errors : (string * int) list;  (** taxonomy code → count, code order *)
  p50_ms : float;  (** 0 when no samples *)
  p99_ms : float;
  window : int;  (** latency samples currently in the ring *)
  staged : int;  (** requests that carried stage timings (infer only) *)
  queue_ms_mean : float;  (** admission → batcher pickup *)
  batch_ms_mean : float;  (** batcher pickup → forward-pass start *)
  infer_ms_mean : float;  (** forward pass, amortised share per request *)
  batches : int;  (** batched forward passes executed *)
  batched_requests : int;  (** infer requests those batches carried *)
  max_batch : int;
  mean_batch : float;  (** batched_requests / batches; 0 with no batches *)
  retries : int;
      (** extra upstream attempts after a failed one (router only; a
          request shed on one backend and served by another counts once in
          [served]/[ok] and once here) *)
  hedges : int;  (** attempts abandoned on a per-attempt timeout *)
  degraded_router : int;
      (** requests the router answered from its in-process baseline because
          every live replica for the key was unusable *)
  backends : (string * int) list;
      (** successful answers per serving backend (["float32" | "int8" |
          "student" | "student-int8" | "hrd" | "stm"]), sorted by name; a
          backend absent from the list has served nothing *)
}

val create : ?window:int -> unit -> t
(** [window] is the latency-ring size (default 1024). *)

val record :
  ?backend:string ->
  t ->
  ok:bool ->
  degraded:bool ->
  code:Serve_error.code option ->
  latency_s:float ->
  unit
(** One answered request. [code] is set for error answers; [backend] names
    the backend that produced a successful answer. *)

val record_stages : t -> queue_s:float -> batch_s:float -> infer_s:float -> unit
(** Per-stage wall-clock breakdown for one answered infer request (negative
    inputs clamp to 0). *)

val record_batch : t -> size:int -> unit
(** One batched forward pass carrying [size] requests. *)

val shed : t -> unit
(** One request rejected at admission. *)

val record_retry : t -> unit
(** One extra upstream attempt made after a failed one (the eventual answer
    is still recorded exactly once via {!record}). *)

val record_hedge : t -> unit
(** One upstream attempt abandoned because its per-attempt timeout fired
    while the request deadline still had headroom. *)

val record_degraded_router : t -> unit
(** One request answered by the router's own in-process baseline because no
    upstream replica was usable. *)

val snapshot : t -> summary
