(** Serving counters and latency percentiles.

    Thread-safe (readers shed from connection threads, the worker records
    completions). Latencies are kept in a fixed-size ring of the most
    recent samples; p50/p99 are computed over that window on demand. *)

type t

type summary = {
  served : int;  (** requests answered (ok or error), excluding shed *)
  ok : int;  (** answered successfully, including degraded *)
  degraded : int;  (** answered by an analytical fallback *)
  shed : int;  (** rejected at admission ([Overloaded]) *)
  errors : (string * int) list;  (** taxonomy code → count, code order *)
  p50_ms : float;  (** 0 when no samples *)
  p99_ms : float;
  window : int;  (** latency samples currently in the ring *)
}

val create : ?window:int -> unit -> t
(** [window] is the latency-ring size (default 1024). *)

val record :
  t -> ok:bool -> degraded:bool -> code:Serve_error.code option -> latency_s:float -> unit
(** One answered request. [code] is set for error answers. *)

val shed : t -> unit
(** One request rejected at admission. *)

val snapshot : t -> summary
