(** The hardened inference engine behind [cachebox serve].

    One engine holds an optional CB-GAN model, the circuit breaker guarding
    it, the serving counters and the degradation policy; {!handle_line}
    takes one protocol line and always produces a reply — every failure
    mode is a taxonomy error or a [degraded:true] baseline answer, never an
    escaped exception.

    The degradation ladder for [infer] (TAO-style hybrid):
    + a derived model — the int8 quantization, the distilled student, or
      the student's int8 quantization — when the request selects the
      [int8] / [student] / [student-int8] backend and that model is
      available; a missing or faulting derived model re-runs the request on
      float32, tagged [degraded:true] with reason
      [int8_unavailable]/[int8_fault] (resp. [student_*],
      [student_int8_*]), without touching the breaker;
    + learned model, if loaded, the breaker allows it and the deadline has
      headroom for it;
    + the analytical baseline (HRD or STM per {!config.fallback}), tagged
      [degraded:true] with a reason, when the model is missing, the breaker
      is open, the model's answer fails its validity gate (NaN/out-of-range
      hit rate), or the model finished past the deadline;
    + a typed error ([model_unavailable] / [deadline_exceeded]) when
      fallback is off.

    A request that explicitly selects the [hrd] or [stm] backend is served
    by that predictor as a first-class, non-degraded answer (it needs no
    model and ignores the breaker). Every successful infer reply carries a
    ["backend"] field naming the backend that produced it, and the stats
    reply counts answers per backend.

    Concurrency: the engine is multi-entrant across {e replicas}. Each
    replica is an independent deep copy of the model guarded by its own
    mutex, so up to [config.replicas] batches run concurrently through
    {!infer_batch}; the breaker, stats, journal, request counter and
    latency EWMA are shared and internally synchronised. A single model
    instance is still not reentrant — two calls targeting the same replica
    index serialise on its mutex. *)

type config = {
  fallback : Cbox_infer.fallback;
  default_backend : Cbox_infer.backend;
      (** backend for requests that name none ([float32] unless overridden
          at daemon start) *)
  default_deadline_s : float;  (** when the request names none *)
  max_deadline_s : float;  (** requested deadlines are clamped to this *)
  max_trace_len : int;
  breaker_threshold : int;  (** consecutive model faults before opening *)
  breaker_cooldown_s : float;
  batch_size : int;  (** model inference batch size *)
  grace_lo : float;  (** validity gate, passed to Cbox_infer.validate_hit_rate *)
  grace_hi : float;
  warmup : bool;
      (** run one small inference at {!create} so the first request doesn't
          pay cold-start costs (workspace arena population, Dpool spin-up) *)
  replicas : int;
      (** model copies in the replica pool; batches dispatched to distinct
          replicas run concurrently *)
}

val default_config :
  ?fallback:Cbox_infer.fallback -> ?default_backend:Cbox_infer.backend -> unit -> config
(** HRD fallback, float32 default backend, 5 s default / 60 s max deadline,
    2M-access trace cap, breaker 3 faults / 5 s cooldown, batch 8, grace
    [\[-0.25, 1.25\]], warmup on, 1 replica. *)

type t

type reload_spec = {
  reload_seed : int;  (** seed for the fresh model skeleton *)
  reload_model_cfg : Cbgan.config;  (** architecture the checkpoint must fit *)
  reload_default_path : string option;
      (** used when the reload request names no checkpoint (typically the
          daemon's startup checkpoint path, re-read on SIGHUP) *)
  reload_student_path : string option;
      (** student checkpoint re-read on every reload, so SIGHUP hot-swaps
          the distilled backend along with the teacher; a checkpoint that
          fails to load keeps the previous student serving *)
}

val create :
  ?now:(unit -> float) ->
  ?journal:Runlog.t ->
  ?reload:reload_spec ->
  ?student_path:string ->
  spec:Heatmap.spec ->
  model:Cbgan.t option ->
  config ->
  t
(** [now] defaults to [Unix.gettimeofday] (inject a fake clock in tests).
    [model = None] starts in degraded mode (every inference falls back).
    [reload] enables the hot-swap path ({!reload}, the [reload] wire verb
    and SIGHUP in the daemon); without it reloads are rejected as
    [invalid_config]. [student_path] loads a distilled student checkpoint
    (and eagerly builds its int8 quantization) for the [student] and
    [student-int8] backends; a checkpoint that fails to load — missing,
    corrupt, wrong schema — is journalled ([student_reject]) and dropped,
    with float32 serving untouched. *)

val model_of_checkpoint :
  seed:int -> Cbgan.config -> path:string -> (Cbgan.t, Serve_error.t) result
(** Builds a model and loads the checkpoint, mapping a missing file to
    [Model_unavailable] and loader failures (corrupt/truncated/mismatched)
    to [Model_unavailable] with the cause. *)

type outcome = Reply of Sjson.t | Shutdown_reply of Sjson.t

val handle_line : ?arrival:float -> t -> string -> outcome
(** Parse, validate and execute one protocol line; total. A
    [Shutdown_reply] asks the caller to send the reply and stop serving.
    [arrival] is when the request entered the system (defaults to "now");
    the daemon stamps it at enqueue time so queue wait counts against the
    request's deadline. *)

val handle_request : t -> arrival:float -> Validate.request -> outcome
(** Same, from an already-validated request ([arrival] stamps queue entry;
    deadlines count from it). *)

val overload_reply : t -> Sjson.t
(** The [overloaded] error reply for a shed request; also counts it. *)

val draining_reply : t -> Sjson.t
(** The [overloaded] error reply for a request that was admitted but
    orphaned by shutdown before the worker reached it; also counted as a
    shed. *)

val now : t -> float
(** The engine's clock — use it to stamp request arrival at admission so
    deadlines include queue wait. *)

val spec : t -> Heatmap.spec
(** The heatmap geometry this engine serves (streaming sessions window
    their input with it). *)

val stats : t -> Serve_stats.summary
val breaker_state : t -> Breaker.state
val model_loaded : t -> bool

val student_loaded : t -> bool
(** Whether a distilled student is currently serving (also reported as
    [student_loaded] in the health reply). *)

val requests_seen : t -> int
(** Count of [infer] requests admitted so far (the fault-injection index). *)

(** {2 Zero-downtime reload} *)

val reload : t -> ?path:string -> unit -> (unit, Serve_error.t) result
(** Load and warm the checkpoint at [path] (default: the reload spec's
    default path) on the calling thread, then atomically swap the replica
    pool; in-flight batches drain on the old model, the next batch uses the
    new one. The serving path is never blocked. Failure modes leave the old
    model serving: no reload spec ([Invalid_config]), no path
    ([Bad_request]), unreadable/corrupt checkpoint ([Model_unavailable]),
    or a reload already in progress ([Overloaded]). Call from a dedicated
    thread — loading and warming take seconds. *)

val reloads : t -> int
(** Completed hot swaps (the model generation; 0 = startup model). *)

(** {2 Batched execution}

    The daemon's dynamic micro-batching path: {!classify_line} splits a
    protocol line into either an immediate outcome (health/stats/shutdown,
    validation errors — answered without queueing for the model) or a
    batchable infer item; {!infer_batch} then executes a coalesced batch of
    items through ONE shared model forward pass. Replies are bit-identical
    to running {!handle_line} per request (inference batch-norm uses running
    statistics, and the wide-batch conv lowering preserves accumulation
    order), except for the [latency_ms] field. *)

type infer_item

type classified =
  | Immediate of outcome
  | Batchable of infer_item
  | Deferred of (unit -> outcome)
      (** slow control-plane work (reload): run the (total) thunk off the
          batcher thread so model loading never stalls serving *)
  | Stream of Validate.request
      (** a [stream_*] op — the daemon routes it to {!Stream_session} with
          the request's connection identity and completion callbacks; the
          sequential {!handle_line} path answers it [bad_request] *)

val classify_line : ?arrival:float -> t -> string -> classified
(** Parse + validate one protocol line. Validation errors and non-infer ops
    are [Immediate] (already recorded in stats); a valid infer request
    becomes a [Batchable] item stamped with its admission index and absolute
    deadline; a reload is [Deferred]; stream ops are [Stream]. Total, like
    {!handle_line}. *)

val stream_item :
  t ->
  arrival:float ->
  cache:Cache.config ->
  trace:int array ->
  access:Tensor.t ->
  infer_item
(** One streamed window as a batchable item: [access] is the window's
    heatmap already blitted out of the session's {!Heatmap.Accum}
    (bit-identical to [of_trace] over [trace], the window's own accesses,
    which rides along for the HRD/STM degradation path). The item gets the
    next admission index — armed faults hit streamed windows exactly like
    offline requests — and the engine's default deadline from [arrival]
    (the moment the window closed). *)

val item_deadline : infer_item -> float
(** Absolute deadline on the engine clock — feed it to {!Batcher.push}. *)

val set_item_pickup : infer_item -> float -> unit
(** Stamp when the batcher popped the item from the admission queue
    (queue-wait vs batch-wait attribution in {!Serve_stats}). *)

val infer_batch : ?replica:int -> t -> infer_item list -> Sjson.t list
(** Execute a batch: one reply per item, in order. Expired, breaker-blocked
    and no-headroom items degrade per the ladder without touching the model;
    the rest share one batched forward on replica [replica mod replicas]
    (concurrent calls on distinct replicas run in parallel; same replica
    serialises). Faults injected per admission index fire for their item
    only — except [Slow], which stalls the whole batch by the summed delay.
    The breaker/headroom admission decision is made once at batch start. *)

val replica_count : t -> int
(** Size of the replica pool (1 when no model is loaded). *)

(** {2 Stream-session hooks}

    {!Stream_session} answers many requests on its own (quota sheds,
    poisoned sessions, protocol misuse, per-window degradation) but must
    keep the engine's counters and journal truthful; its replies route
    through these. *)

val shed_reply : ?id:string -> ?why:string -> t -> Serve_error.t -> Sjson.t
(** Typed error reply counted as a shed (and journaled with [why],
    default ["stream"]). *)

val error_reply_counted :
  ?id:string -> t -> arrival:float -> Serve_error.t -> Sjson.t
(** Typed error reply recorded in stats (served, error code, latency). *)

val ok_counted : t -> arrival:float -> Sjson.t -> Sjson.t
(** Record a successful non-degraded answer (latency from [arrival]) and
    pass the reply through. *)

val degraded_reply :
  ?id:string ->
  t ->
  arrival:float ->
  reason:string ->
  Cache.config ->
  int array ->
  Sjson.t
(** Analytical-baseline answer for one trace (a quota-degraded streamed
    window), tagged [degraded:true] with [reason] and recorded in stats —
    the same ladder rung {!infer_batch} uses, callable directly. *)

val journal : t -> string -> (string * Runlog.value) list -> unit
(** Append an event to the engine's journal (thread-safe; no-op without a
    journal). *)

val set_extra_stats : t -> (unit -> (string * Sjson.t) list) -> unit
(** Register extra top-level fields for the [stats] reply (the session
    manager's gauges/counters). Called on every stats request; must be
    thread-safe and fast. *)
