(** Non-blocking serving event loop: one [Unix.select] reactor owns accept,
    read and write for every client connection, replacing the old
    thread-per-connection blocking readers.

    Each connection carries an incremental {!Linebuf} (bytes may arrive in
    any framing: byte-by-byte, whole lines, coalesced multi-line chunks — the
    assembled lines are identical), plus a FIFO of reply {e tickets}. Every
    admitted line gets a ticket; whoever processes the request calls
    {!resolve} from any thread (a self-pipe wakes the loop), and the loop
    writes replies out strictly in per-connection request order — the
    resolved {e prefix} of the FIFO flushes, an early answer to a later
    request waits for its predecessors.

    Rejection paths: a line longer than [max_line] cannot be re-framed, so
    the connection is answered with [overflow_reply] (after any earlier
    queued replies) and closed; a disconnect mid-line discards the partial
    request (nobody is left to answer) while still flushing replies already
    owed. *)

module Linebuf : sig
  type t

  val create : max_line:int -> t

  val feed : t -> string -> string list * bool
  (** [feed t chunk] appends bytes and returns [(lines, overflowed)]: the
      complete lines the chunk closed, in order, and whether an oversized
      line was detected (sticky; later feeds return no lines). Lines
      completed before the overflow are still delivered. *)

  val pending : t -> int
  (** Bytes of the current partial line. *)

  val overflowed : t -> bool
end

type t
type ticket

val create :
  ?max_conns:int ->
  ?max_line:int ->
  ?overflow_reply:string ->
  ?idle_timeout_s:float ->
  listener:Unix.file_descr ->
  unit ->
  t
(** The listener must already be bound and listening. [max_conns] (default
    512, kept below the [select] FD_SETSIZE cap) pauses accepting when
    reached — further clients queue in the kernel backlog. [max_line]
    defaults to 1 MiB. [idle_timeout_s] (default: no reaping) arms the idle
    reaper: a connection with no unanswered tickets and a flushed output
    buffer that has neither read nor written a byte for that long is
    closed, so slow-loris connections cannot pin [max_conns] slots forever.
    Connections marked with {!exempt_idle} are never reaped. *)

val set_on_line : t -> (ticket -> string -> unit) -> unit
(** The per-line callback, invoked on the reactor thread with the line's
    ticket already enqueued in connection order. It must eventually cause
    {!resolve} on the ticket (immediately for sheds, or after batch
    execution) — an unresolved ticket holds its connection open. *)

val resolve : ticket -> string -> unit
(** Fill a ticket with its reply line (no trailing newline) and wake the
    loop. Thread-safe; each ticket resolves once. *)

val run : t -> unit
(** Drive the loop until {!stop}: blocks the calling thread. *)

val stop : t -> unit
(** Thread-safe: stop accepting, flush every resolved reply, close all
    connections, and make {!run} return. Callers must resolve all
    outstanding tickets first (the daemon's shutdown drain does). *)

val connections : t -> int
(** Live connection count (diagnostics). *)

val reaped : t -> int
(** Connections closed by the idle reaper so far (diagnostics/stats). *)

val ticket_conn_id : ticket -> int
(** Stable id of the connection that carried this ticket's request, unique
    for the reactor's lifetime — streaming sessions bind to it so feeds
    from a different connection can be rejected. *)

val exempt_idle : ticket -> unit
(** Mark the ticket's connection exempt from the idle reaper (streaming
    sessions stay open between chunks while holding credit). Lasts until
    the connection closes. Callable from any thread. *)
