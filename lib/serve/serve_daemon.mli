(** The [cachebox serve] daemon: line-delimited JSON over a Unix-domain or
    TCP socket, in front of {!Serve_engine}.

    Threading model: one non-blocking {!Reactor} event loop owns accept,
    read and write for every connection (no per-connection threads); each
    admitted line is pushed as a job into a bounded {!Squeue}. A single
    batcher thread drains it: health/stats/validation-error requests are
    answered immediately, valid infer requests coalesce in a {!Batcher}
    until the batch is full or a linger/deadline obligation fires, then the
    whole batch runs through one shared model forward
    ({!Serve_engine.infer_batch}). With [engine.replicas > 1] due batches
    are handed to a pool of executor threads, one per model replica, so
    batches overlap.

    A full queue sheds the request immediately with an [overloaded] reply —
    admission control, not buffering. Jobs are stamped with their admission
    time, so time spent queued counts against the request's deadline. A
    [{"op": "shutdown"}] request answers, then stops the daemon cleanly:
    requests already coalescing in the batcher get real (batched) answers,
    requests still in the admission queue are answered with an [overloaded]
    "server shutting down" error, idle connections are woken with EOF, and
    the Unix socket file is removed.

    Zero-downtime reload (when [run] is given a reload spec): a
    [{"op": "reload"}] request — or SIGHUP for the default checkpoint —
    loads and warms the new model on a dedicated thread, then atomically
    swaps the engine's replica pool; in-flight batches drain on the old
    model, and a corrupt checkpoint is rejected while the old model keeps
    serving. Clients see at most elevated latency, never an error. *)

type listen = Unix_socket of string | Tcp of string * int

type config = {
  listen : listen;
  queue_depth : int;  (** bounded admission queue capacity *)
  batcher : Batcher.config;  (** micro-batching policy (size/linger) *)
  engine : Serve_engine.config;
  stream : Stream_session.config;  (** streaming-session quotas *)
  idle_timeout_s : float option;
      (** arm the reactor's idle-connection reaper (streaming connections
          are exempt while their session is live); [None] = no reaping *)
}

val default_config : listen -> config
(** Queue depth 64, {!Batcher.default_config}, over
    {!Serve_engine.default_config}; {!Stream_session.default_config}
    quotas, no idle reaping. *)

val bind_listener : listen -> Unix.file_descr
(** Bind (but not listen on) a server socket for [listen], with the stale
    unix-socket reclaim / live-socket refusal policy described above.
    Shared with the router front-end. Raises {!Serve_error.Error}. *)

val run :
  ?journal:Runlog.t ->
  ?reload:Serve_engine.reload_spec ->
  ?student_path:string ->
  ?ready:(unit -> unit) ->
  spec:Heatmap.spec ->
  model:Cbgan.t option ->
  config ->
  unit
(** Binds, listens and serves until a shutdown request; [ready] fires once
    the socket is accepting (tests use it to avoid races). [reload] enables
    the hot-swap path (wire verb + SIGHUP; the SIGHUP handler is installed
    for the duration of [run] and restored on exit). [student_path] loads a
    distilled student checkpoint for the [student]/[student-int8] backends
    (see {!Serve_engine.create}). Raises
    {!Serve_error.Error}: [invalid_config] when the Unix socket path is
    already served by a live daemon (a stale socket file left by a crash is
    reclaimed) or a TCP host does not resolve, [internal] when the socket
    cannot be bound. *)
