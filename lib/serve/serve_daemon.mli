(** The [cachebox serve] daemon: line-delimited JSON over a Unix-domain or
    TCP socket, in front of {!Serve_engine}.

    Threading model: one reader thread per accepted connection parses lines
    and pushes jobs into a bounded {!Squeue}; a single worker thread drains
    it through the engine (the model is not reentrant). A full queue sheds
    the request immediately with an [overloaded] reply — admission control,
    not buffering. Jobs are stamped with their admission time, so time
    spent queued counts against the request's deadline. A
    [{"op": "shutdown"}] request answers, then stops the daemon cleanly:
    requests already admitted to the queue are answered with an
    [overloaded] "server shutting down" error, idle connections are woken
    with EOF, and the Unix socket file is removed. *)

type listen = Unix_socket of string | Tcp of string * int

type config = {
  listen : listen;
  queue_depth : int;  (** bounded admission queue capacity *)
  engine : Serve_engine.config;
}

val default_config : listen -> config
(** Queue depth 64 over {!Serve_engine.default_config}. *)

val run :
  ?journal:Runlog.t ->
  ?ready:(unit -> unit) ->
  spec:Heatmap.spec ->
  model:Cbgan.t option ->
  config ->
  unit
(** Binds, listens and serves until a shutdown request; [ready] fires once
    the socket is accepting (tests use it to avoid races). Raises
    {!Serve_error.Error}: [invalid_config] when the Unix socket path is
    already served by a live daemon (a stale socket file left by a crash is
    reclaimed) or a TCP host does not resolve, [internal] when the socket
    cannot be bound. *)
