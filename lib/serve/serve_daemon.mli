(** The [cachebox serve] daemon: line-delimited JSON over a Unix-domain or
    TCP socket, in front of {!Serve_engine}.

    Threading model: one reader thread per accepted connection parses lines
    and pushes jobs into a bounded {!Squeue}; a single worker thread drains
    it through the engine (the model is not reentrant). A full queue sheds
    the request immediately with an [overloaded] reply — admission control,
    not buffering. A [{"op": "shutdown"}] request answers, then stops the
    daemon cleanly (the Unix socket file is removed). *)

type listen = Unix_socket of string | Tcp of string * int

type config = {
  listen : listen;
  queue_depth : int;  (** bounded admission queue capacity *)
  engine : Serve_engine.config;
}

val default_config : listen -> config
(** Queue depth 64 over {!Serve_engine.default_config}. *)

val run :
  ?journal:Runlog.t ->
  ?ready:(unit -> unit) ->
  spec:Heatmap.spec ->
  model:Cbgan.t option ->
  config ->
  unit
(** Binds, listens and serves until a shutdown request; [ready] fires once
    the socket is accepting (tests use it to avoid races). Raises
    {!Serve_error.Error} ([internal]) if the socket cannot be bound. *)
