(** The single strict gate every external input passes through.

    Cache configurations, traces, heatmaps, files and wire requests are all
    validated here before any downstream code sees them; every rejection is
    a typed {!Serve_error.t}, so callers (the daemon, the CLI) map failures
    to stable wire/exit codes without ad-hoc exception handling. *)

val max_sets : int
val max_ways : int
val default_max_trace_len : int

val cache_config :
  ?block_bytes:int ->
  ?policy:Cache.policy ->
  sets:int ->
  ways:int ->
  unit ->
  (Cache.config, Serve_error.t) result
(** Power-of-two sets in [\[1, 2^22\]], ways in [\[1, 1024\]], power-of-two
    block size in [\[8, 65536\]]. Errors carry {!Serve_error.Invalid_config}
    and name the offending value. *)

val hierarchy_configs : Cache.config list -> (unit, Serve_error.t) result
(** Inner-to-outer level list (L1 first): each level's capacity must be at
    least its predecessor's (level monotonicity). *)

val trace :
  ?max_len:int -> ?what:string -> int array -> (unit, Serve_error.t) result
(** Non-empty, at most [max_len] (default {!default_max_trace_len})
    accesses, every address in [\[0, Trace_io.max_address\]]. *)

val trace_for_spec :
  Heatmap.spec -> ?max_len:int -> int array -> (unit, Serve_error.t) result
(** {!trace} plus the heatmap pipeline's own floor: the trace must fill at
    least one full heatmap image under [spec]. *)

val finite_tensor : what:string -> Tensor.t -> (unit, Serve_error.t) result
(** Rejects NaN/Inf pixels ({!Serve_error.Corrupt_input}), naming the first
    offending index. *)

val read_trace_file :
  ?max_len:int -> string -> (int array, Serve_error.t) result
(** {!Trace_io.read_auto} with every failure mode mapped into the taxonomy
    (missing file / bad magic / checksum mismatch / truncation →
    {!Serve_error.Corrupt_input}) and the result gated through {!trace}. *)

val load_checkpoint : (unit -> 'a) -> ('a, Serve_error.t) result
(** Runs a checkpoint-loading thunk, mapping [Failure]/[Sys_error] (the
    loader's documented failure modes) to {!Serve_error.Model_unavailable}
    with the cause preserved. *)

(** {1 Wire requests} *)

type trace_source =
  | Inline of int array  (** addresses carried in the request *)
  | Benchmark of { name : string; length : int }  (** generate on the server *)
  | File of string  (** read a trace file server-side *)

type feed_payload =
  | Addrs of int array
  | Corrupt of string
      (** the chunk parsed as a request but its address payload is broken
          (missing, not an array, non-integer element). Deliberately NOT a
          validation error: the session layer must see the fault so it can
          poison that one session with a typed [corrupt_input] instead of
          the line bouncing as a sessionless [bad_request]. Address range
          checks are likewise deferred to the session. *)

type request =
  | Infer of {
      id : string option;
      sets : int;
      ways : int;
      source : trace_source;
      deadline_s : float option;  (** requested budget, seconds *)
      backend : Cbox_infer.backend option;
          (** requested scoring backend; [None] means the daemon default *)
    }
  | Health
  | Stats_request
  | Shutdown
  | Reload of { id : string option; checkpoint : string option }
      (** hot-swap the model; [checkpoint] overrides the daemon's default
          reload path *)
  | Stream_open of { id : string option; sets : int; ways : int }
      (** open a streaming session for this cache geometry; the reply
          carries the session token, the window geometry and the initial
          credit *)
  | Stream_feed of {
      id : string option;
      session : string;
      seq : int option;  (** client-side chunk ordinal, echoed back *)
      ack : int option;  (** windows up to this index may be pruned *)
      payload : feed_payload;
    }
  | Stream_resume of { id : string option; session : string; last_window : int option }
      (** re-attach to a session from a new connection; retained window
          results past [last_window] are replayed in the reply *)
  | Stream_close of { id : string option; session : string }

val request : ?max_trace_len:int -> Sjson.t -> (request, Serve_error.t) result
(** Schema gate for one parsed protocol line. [op] selects the variant;
    [infer] requires integer [sets]/[ways] and exactly one of [trace]
    (array of addresses), [benchmark] (+ optional [trace_len]) or
    [trace_file]; optional [id] (string), [deadline_ms] (positive number)
    and [backend] (["float32" | "int8" | "hrd" | "stm"] — an unknown value
    is a typed {!Serve_error.Invalid_config});
    [reload] takes optional [id] and [checkpoint] (string path);
    the [stream_*] ops require a non-empty [session] (except [stream_open],
    which requires [sets]/[ways]). Unknown [op]s, wrong types, over-limit
    traces and out-of-range deadlines are {!Serve_error.Bad_request}. *)
