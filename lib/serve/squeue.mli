(** Bounded thread-safe FIFO with explicit shedding.

    The daemon's admission queue: connection readers push, the single
    worker pops. A full queue never blocks or buffers the producer — the
    push fails immediately and the caller answers
    {!Serve_error.Overloaded}, which is the backpressure contract (no
    unbounded buffering anywhere in the serving path). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity >= 1]. *)

val try_push : 'a t -> 'a -> bool
(** False when the queue is full or closed — the item was shed. Never
    blocks. *)

val pop : 'a t -> 'a option
(** Blocks until an item arrives; [None] once the queue is closed {e and}
    drained. *)

val try_pop : 'a t -> 'a option
(** [None] when the queue is currently empty (closed or not). Never blocks —
    the batcher uses it to drain whatever is ready without waiting. *)

val close : 'a t -> unit
(** Rejects future pushes and wakes blocked poppers (idempotent). *)

val length : 'a t -> int
val capacity : 'a t -> int
