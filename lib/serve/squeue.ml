type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Squeue.create: capacity must be >= 1";
  {
    capacity;
    q = Queue.create ();
    m = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed || Queue.length t.q >= t.capacity then false
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        true
      end)

let try_pop t =
  with_lock t (fun () -> if Queue.is_empty t.q then None else Some (Queue.pop t.q))

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.m;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = with_lock t (fun () -> Queue.length t.q)
let capacity t = t.capacity
