type spec = {
  height : int;
  width : int;
  window : int;
  overlap : float;
  granularity : int;
}

let spec ?(height = 64) ?(width = 64) ?(window = 50) ?(overlap = 0.3) ?(granularity = 64) () =
  if height <= 0 || width <= 0 || window <= 0 then
    invalid_arg "Heatmap.spec: dimensions must be positive";
  if overlap < 0.0 || overlap >= 1.0 then
    invalid_arg "Heatmap.spec: overlap must be in [0, 1)";
  if granularity <= 0 then invalid_arg "Heatmap.spec: granularity must be positive";
  { height; width; window; overlap; granularity }

let paper_spec = spec ~height:512 ~width:512 ~window:100 ~overlap:0.3 ~granularity:64 ()

let accesses_per_image s = s.width * s.window

let overlap_columns s = int_of_float (Float.round (s.overlap *. float_of_int s.width))

let step_accesses s = (s.width - overlap_columns s) * s.window

let image_count s trace_len =
  let per_image = accesses_per_image s in
  if trace_len < per_image then
    invalid_arg
      (Printf.sprintf "Heatmap.image_count: trace of %d accesses is shorter than one image (%d)"
         trace_len per_image);
  1 + ((trace_len - per_image) / step_accesses s)

let row_of_address s addr = addr / s.granularity mod s.height

let build_image s addresses keep start =
  let img = Tensor.zeros [| s.height; s.width |] in
  for col = 0 to s.width - 1 do
    let col_start = start + (col * s.window) in
    for k = 0 to s.window - 1 do
      let i = col_start + k in
      if keep i then begin
        let row = row_of_address s addresses.(i) in
        Tensor.set2 img row col (Tensor.get2 img row col +. 1.0)
      end
    done
  done;
  img

let images s addresses keep =
  let n = image_count s (Array.length addresses) in
  List.init n (fun i -> build_image s addresses keep (i * step_accesses s))

let of_trace s addresses = images s addresses (fun _ -> true)

let of_trace_filtered s ~addresses ~keep =
  if Array.length keep <> Array.length addresses then
    invalid_arg "Heatmap.of_trace_filtered: length mismatch";
  images s addresses (fun i -> keep.(i))

let pair_of_trace s ~addresses ~hits =
  if Array.length hits <> Array.length addresses then
    invalid_arg "Heatmap.pair_of_trace: length mismatch";
  let access = of_trace s addresses in
  let miss = images s addresses (fun i -> not hits.(i)) in
  List.combine access miss

(* Streaming accumulator: folds an address/flag stream into heatmap pixels
   without ever materializing the trace arrays. Image origins are whole
   multiples of [step_accesses], itself a multiple of [window] — every
   image's column boundaries align with the global window grid, and
   overlapping images *share* column content. So the accumulator keeps one
   row histogram for the open window plus a ring of the last [width]
   finished columns; a completed image is materialized straight out of the
   ring, and in-flight images exist only as per-plane mass counters. Pixel
   values are integral counts (exact in float32), so the completed images
   are bit-identical to the ones [of_trace]/[images] cut from a recorded
   trace. *)
module Accum = struct
  type pending = {
    start : int;  (* origin, in global window index *)
    own : int array;  (* per plane: integer mass of the columns this image owns *)
  }

  type t = {
    s : spec;
    planes : int;
    step_windows : int;  (* image stride in windows (= width - overlap_columns) *)
    ov_windows : int;  (* leading columns shared with the previous image *)
    window : int;  (* = s.window, cached out of the nested record *)
    height : int;
    width : int;
    shift : int;  (* power-of-two row mapping: row = (addr lsr shift) land rmask *)
    rmask : int;  (* -1 when granularity/height are not both powers of two *)
    winbuf : float array array;  (* per plane: row histogram of the open window *)
    wintot : int array;  (* per plane: counted accesses in the open window *)
    mutable wincount : int;  (* accesses fed into the open window *)
    mutable gwin : int;  (* windows completed so far *)
    ring : float array array;
        (* per plane: last [width] columns, column-major, slot = gwin mod width *)
    mutable pending : pending list;  (* oldest first; the head completes first *)
    mutable completed_rev : Tensor.t array list;  (* newest first *)
    mutable completed : int;
    mass : int array;  (* per plane: de-overlapped mass of completed images *)
  }

  let is_pow2 n = n > 0 && n land (n - 1) = 0

  let log2 n =
    let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
    go 0 n

  let create ?(planes = 1) s =
    if planes < 1 || planes > 30 then invalid_arg "Heatmap.Accum.create: bad plane count";
    if step_accesses s <= 0 then
      invalid_arg "Heatmap.Accum.create: overlap leaves no step between images";
    let shift, rmask =
      if is_pow2 s.granularity && is_pow2 s.height then (log2 s.granularity, s.height - 1)
      else (0, -1)
    in
    let step_windows = s.width - overlap_columns s in
    {
      s;
      planes;
      step_windows;
      ov_windows = s.width - step_windows;
      window = s.window;
      height = s.height;
      width = s.width;
      shift;
      rmask;
      winbuf = Array.init planes (fun _ -> Array.make s.height 0.0);
      wintot = Array.make planes 0;
      wincount = 0;
      gwin = 0;
      ring = Array.init planes (fun _ -> Array.make (s.width * s.height) 0.0);
      pending = [];
      completed_rev = [];
      completed = 0;
      mass = Array.make planes 0;
    }

  (* De-overlap ownership (paper §4.4): the first image owns all its
     columns, every later one only those past the shared prefix — which
     partitions the window axis, so each finished window's total is added
     to exactly one pending image's mass. *)
  let owner_start t g =
    if g < t.width then 0 else g - t.ov_windows - ((g - t.ov_windows) mod t.step_windows)

  let flush t =
    let g = t.gwin in
    let height = t.height and width = t.width in
    let slot = g mod width * height in
    let ost = owner_start t g in
    (match List.find_opt (fun p -> p.start = ost) t.pending with
    | Some p ->
      for q = 0 to t.planes - 1 do
        p.own.(q) <- p.own.(q) + t.wintot.(q)
      done
    | None -> ());
    for p = 0 to t.planes - 1 do
      let src = Array.unsafe_get t.winbuf p in
      Array.blit src 0 (Array.unsafe_get t.ring p) slot height;
      Array.fill src 0 height 0.0;
      t.wintot.(p) <- 0
    done;
    t.wincount <- 0;
    t.gwin <- g + 1;
    (* An image whose last window just landed is cut straight from the ring
       (its [width] columns are exactly the ring's current contents). *)
    let st = g + 1 - width in
    if st >= 0 && st mod t.step_windows = 0 then begin
      match t.pending with
      | img :: rest when img.start = st ->
        t.pending <- rest;
        let out =
          Array.init t.planes (fun p ->
              let tz = Tensor.zeros [| height; width |] in
              (* Straight into the bigarray: a [Tensor.set2] call per pixel
                 would box its float argument. *)
              let dst = tz.Tensor.data in
              let ring = Array.unsafe_get t.ring p in
              for c = 0 to width - 1 do
                let s0 = (st + c) mod width * height in
                for r = 0 to height - 1 do
                  Bigarray.Array1.unsafe_set dst ((r * width) + c)
                    (Array.unsafe_get ring (s0 + r))
                done
              done;
              tz)
        in
        t.completed_rev <- out :: t.completed_rev;
        t.completed <- t.completed + 1;
        for p = 0 to t.planes - 1 do
          t.mass.(p) <- t.mass.(p) + img.own.(p)
        done
      | _ -> ()
    end

  let add t ~addr ~mask =
    if t.wincount = 0 && t.gwin mod t.step_windows = 0 then
      (* Tail append keeps completion order; the list never exceeds
         width / (width - overlap_columns) entries, each a handful of
         words. *)
      t.pending <- t.pending @ [ { start = t.gwin; own = Array.make t.planes 0 } ];
    if mask <> 0 then begin
      let row =
        if t.rmask >= 0 then (addr lsr t.shift) land t.rmask
        else addr / t.s.granularity mod t.s.height
      in
      (* The common shapes are 1 and 2 planes (access / access+miss);
         touch them without the bit-scan loop. *)
      let winbuf = t.winbuf and wintot = t.wintot in
      if mask land 1 <> 0 then begin
        let h = Array.unsafe_get winbuf 0 in
        Array.unsafe_set h row (Array.unsafe_get h row +. 1.0);
        Array.unsafe_set wintot 0 (Array.unsafe_get wintot 0 + 1)
      end;
      if mask land 2 <> 0 && t.planes > 1 then begin
        let h = Array.unsafe_get winbuf 1 in
        Array.unsafe_set h row (Array.unsafe_get h row +. 1.0);
        Array.unsafe_set wintot 1 (Array.unsafe_get wintot 1 + 1)
      end;
      if mask land lnot 3 <> 0 then
        for p = 2 to t.planes - 1 do
          if mask land (1 lsl p) <> 0 then begin
            let h = Array.unsafe_get winbuf p in
            Array.unsafe_set h row (Array.unsafe_get h row +. 1.0);
            Array.unsafe_set wintot p (Array.unsafe_get wintot p + 1)
          end
        done
    end;
    let c = t.wincount + 1 in
    if c = t.s.window then flush t else t.wincount <- c

  let completed t = t.completed
  let fed t = (t.gwin * t.window) + t.wincount

  (* --- mid-stream checkpointing ---

     Streaming sessions snapshot the accumulator between chunks so a
     dropped connection can resume bit-identically, and so a chunk that
     turns out to be poisoned mid-apply can be rolled back to the last
     good state. Same container discipline as checkpoints and binary
     traces: magic, payload, CRC-32 trailer — any mismatch rejects the
     whole blob. Completed images are NOT serialized (the consumer owns
     them once cut); [restore] drops any it holds, keeping only the
     [completed] count so later image indices stay consistent. *)

  let snapshot_magic = "CBAS1"

  let snapshot t =
    let b = Buffer.create (4096 + (t.planes * (t.width + 1) * t.height * 8)) in
    Buffer.add_string b snapshot_magic;
    let add_i n = Buffer.add_int64_le b (Int64.of_int n) in
    let add_f x = Buffer.add_int64_le b (Int64.bits_of_float x) in
    add_i t.s.height;
    add_i t.s.width;
    add_i t.s.window;
    add_f t.s.overlap;
    add_i t.s.granularity;
    add_i t.planes;
    add_i t.wincount;
    add_i t.gwin;
    add_i t.completed;
    for p = 0 to t.planes - 1 do
      add_i t.wintot.(p);
      add_i t.mass.(p);
      Array.iter add_f t.winbuf.(p);
      Array.iter add_f t.ring.(p)
    done;
    add_i (List.length t.pending);
    List.iter
      (fun pd ->
        add_i pd.start;
        Array.iter add_i pd.own)
      t.pending;
    let payload = Buffer.contents b in
    Buffer.add_int32_le b (Int32.of_int (Crc32.digest payload));
    Buffer.contents b

  let restore t blob =
    let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
    let mlen = String.length snapshot_magic in
    let len = String.length blob in
    if len < mlen + 4 + (9 * 8) || String.sub blob 0 mlen <> snapshot_magic then
      fail "accum snapshot: bad magic"
    else begin
      let body = len - 4 in
      let stored = Int32.to_int (String.get_int32_le blob body) land 0xFFFFFFFF in
      let actual = Crc32.digest (String.sub blob 0 body) in
      if stored <> actual then
        fail "accum snapshot: CRC mismatch (stored %08x, computed %08x)" stored actual
      else begin
        let pos = ref mlen in
        let get_i () =
          let v = Int64.to_int (String.get_int64_le blob !pos) in
          pos := !pos + 8;
          v
        in
        let get_f () =
          let v = Int64.float_of_bits (String.get_int64_le blob !pos) in
          pos := !pos + 8;
          v
        in
        match
          let height = get_i () in
          let width = get_i () in
          let window = get_i () in
          let overlap = get_f () in
          let granularity = get_i () in
          let planes = get_i () in
          if
            height <> t.s.height || width <> t.s.width || window <> t.s.window
            || Int64.bits_of_float overlap <> Int64.bits_of_float t.s.overlap
            || granularity <> t.s.granularity
          then
            Error
              (Printf.sprintf
                 "accum snapshot: spec mismatch (snapshot %dx%d/w%d/g%d, accumulator \
                  %dx%d/w%d/g%d)"
                 height width window granularity t.s.height t.s.width t.s.window
                 t.s.granularity)
          else if planes <> t.planes then
            fail "accum snapshot: plane count mismatch (snapshot %d, accumulator %d)"
              planes t.planes
          else begin
            let wincount = get_i () in
            let gwin = get_i () in
            let completed = get_i () in
            let wintot = Array.make planes 0 and mass = Array.make planes 0 in
            let winbuf = Array.init planes (fun _ -> Array.make height 0.0) in
            let ring = Array.init planes (fun _ -> Array.make (width * height) 0.0) in
            for p = 0 to planes - 1 do
              wintot.(p) <- get_i ();
              mass.(p) <- get_i ();
              for r = 0 to height - 1 do
                winbuf.(p).(r) <- get_f ()
              done;
              for i = 0 to (width * height) - 1 do
                ring.(p).(i) <- get_f ()
              done
            done;
            let npend = get_i () in
            if npend < 0 || npend > width then
              fail "accum snapshot: implausible pending count %d" npend
            else begin
              let pending =
                List.init npend (fun _ ->
                    let start = get_i () in
                    let own = Array.init planes (fun _ -> get_i ()) in
                    { start; own })
              in
              t.wincount <- wincount;
              t.gwin <- gwin;
              t.completed <- completed;
              t.pending <- pending;
              t.completed_rev <- [];
              for p = 0 to planes - 1 do
                t.wintot.(p) <- wintot.(p);
                t.mass.(p) <- mass.(p);
                Array.blit winbuf.(p) 0 t.winbuf.(p) 0 height;
                Array.blit ring.(p) 0 t.ring.(p) 0 (width * height)
              done;
              Ok ()
            end
          end
        with
        | r -> r
        | exception Invalid_argument _ -> fail "accum snapshot: truncated payload"
      end
    end

  let images t ~plane =
    if plane < 0 || plane >= t.planes then invalid_arg "Heatmap.Accum.images: bad plane";
    List.rev_map (fun a -> a.(plane)) t.completed_rev

  let take_completed t =
    let out = List.rev t.completed_rev in
    t.completed_rev <- [];
    out

  let deoverlapped_mass t ~plane =
    if plane < 0 || plane >= t.planes then
      invalid_arg "Heatmap.Accum.deoverlapped_mass: bad plane";
    float_of_int t.mass.(plane)
end

let deoverlapped_sum s imgs =
  let ov = overlap_columns s in
  let sum_from img first_col =
    let acc = ref 0.0 in
    for row = 0 to s.height - 1 do
      for col = first_col to s.width - 1 do
        acc := !acc +. Tensor.get2 img row col
      done
    done;
    !acc
  in
  match imgs with
  | [] -> 0.0
  | first :: rest ->
    List.fold_left (fun acc img -> acc +. sum_from img ov) (sum_from first 0) rest

let hit_rate s ~access ~miss =
  let total = deoverlapped_sum s access in
  if total <= 0.0 then 0.0
  else begin
    let missed = deoverlapped_sum s miss in
    1.0 -. (missed /. total)
  end

let render_ascii ?(max_rows = 32) ?(max_cols = 64) img =
  let h = Tensor.dim img 0 and w = Tensor.dim img 1 in
  let rows = min h max_rows and cols = min w max_cols in
  let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  let cell r c =
    (* Max-pool the covered region so sparse dots stay visible. *)
    let r0 = r * h / rows and r1 = ((r + 1) * h / rows) - 1 in
    let c0 = c * w / cols and c1 = ((c + 1) * w / cols) - 1 in
    let m = ref 0.0 in
    for i = r0 to max r0 r1 do
      for j = c0 to max c0 c1 do
        m := Float.max !m (Tensor.get2 img i j)
      done
    done;
    !m
  in
  let peak = Float.max 1e-9 (Tensor.max_value img) in
  let buf = Buffer.create ((rows + 2) * (cols + 3)) in
  Buffer.add_char buf '+';
  for _ = 1 to cols do Buffer.add_char buf '-' done;
  Buffer.add_string buf "+\n";
  for r = 0 to rows - 1 do
    Buffer.add_char buf '|';
    for c = 0 to cols - 1 do
      let v = cell r c /. peak in
      let idx = min 9 (int_of_float (v *. 9.99)) in
      Buffer.add_char buf shades.(idx)
    done;
    Buffer.add_string buf "|\n"
  done;
  Buffer.add_char buf '+';
  for _ = 1 to cols do Buffer.add_char buf '-' done;
  Buffer.add_string buf "+\n";
  Buffer.contents buf

let write_pgm path img =
  let h = Tensor.dim img 0 and w = Tensor.dim img 1 in
  let peak = Float.max 1e-9 (Tensor.max_value img) in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "P5\n%d %d\n255\n" w h;
      for r = 0 to h - 1 do
        for c = 0 to w - 1 do
          let v = int_of_float (Tensor.get2 img r c /. peak *. 255.0) in
          output_char oc (Char.chr (max 0 (min 255 v)))
        done
      done)
