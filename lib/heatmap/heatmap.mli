(** Memory-trace heatmaps (paper §3.1).

    A trace is rendered as an H x W image: the y-axis is the block address
    modulo [height], the x-axis is time binned into windows of [window]
    consecutive accesses, and each pixel counts the accesses to that
    modulo-address in that window. A long trace is cut into multiple
    heatmaps with a fractional column overlap (the paper found 30% best)
    that serves as warm-up context for the model.

    Heatmaps are stored as 2-D tensors of shape [\[height; width\]]. *)

type spec = {
  height : int;  (** modulo of the address mapping (paper: 512) *)
  width : int;  (** windows (columns) per heatmap (paper: 512) *)
  window : int;  (** accesses per column (paper: 100) *)
  overlap : float;  (** fraction of columns shared with the previous image *)
  granularity : int;
      (** bytes per address unit before the modulo; 64 folds addresses to
          cache blocks *)
}

val spec :
  ?height:int ->
  ?width:int ->
  ?window:int ->
  ?overlap:float ->
  ?granularity:int ->
  unit ->
  spec
(** Defaults are the repro-scale settings (64 x 64, window 50, 30% overlap,
    block granularity); pass explicit values for other scales. *)

val paper_spec : spec
(** The paper's full-scale 512 x 512 / window-100 configuration. *)

val accesses_per_image : spec -> int
val step_accesses : spec -> int
(** Accesses by which consecutive heatmap origins advance (i.e. image size
    minus overlap). *)

val overlap_columns : spec -> int

val image_count : spec -> int -> int
(** Number of heatmaps generated from a trace of the given length (at least
    one full image is required; raises [Invalid_argument] on shorter
    traces). *)

val of_trace : spec -> int array -> Tensor.t list
(** Access heatmaps of a full trace. *)

val of_trace_filtered : spec -> addresses:int array -> keep:bool array -> Tensor.t list
(** Heatmaps counting only the accesses with [keep.(i) = true] — with
    [keep = misses] this builds the paper's miss heatmaps aligned
    column-for-column with {!of_trace}'s access heatmaps. *)

val pair_of_trace :
  spec -> addresses:int array -> hits:bool array -> (Tensor.t * Tensor.t) list
(** Aligned (access, miss) heatmap pairs. *)

(** Streaming heatmap construction: feed one access at a time and collect
    completed images — no trace arrays, constant memory in the trace
    length. An accumulator carries [planes] aligned pixel planes (e.g.
    plane 0 = accesses, plane 1 = misses); each {!Accum.add} structurally
    advances every plane and increments the pixel in the planes whose bit
    is set in [mask]. Completed images are bit-identical to
    {!of_trace}/{!of_trace_filtered}/{!pair_of_trace} over the same
    stream; a trace shorter than one image simply completes zero images
    (no exception, unlike {!image_count}). *)
module Accum : sig
  type t

  val create : ?planes:int -> spec -> t
  (** [planes] defaults to 1; at most 30. *)

  val add : t -> addr:int -> mask:int -> unit
  (** Feed the next access of the stream. Bit [p] of [mask] selects whether
      plane [p] counts this access; the stream position advances for every
      plane regardless (so planes stay column-aligned). *)

  val completed : t -> int
  (** Images fully accumulated so far (equals {!image_count} once the
      stream ends, or 0 for short streams). *)

  val fed : t -> int
  (** Accesses fed so far ({!add} calls), counting masked-out ones — the
      stream position, from which window/image boundaries are derivable. *)

  val snapshot : t -> string
  (** Serialize the full mid-stream state (open-window histograms, column
      ring, de-overlap counters, pending images) as a checksummed binary
      blob: magic + payload + CRC-32 trailer, the same container
      discipline as model checkpoints and binary traces. Completed images
      are not serialized — only their count, so image indices stay
      consistent after {!restore}. *)

  val restore : t -> string -> (unit, string) result
  (** Overwrite the accumulator's state from a {!snapshot} blob. Feeding
      the same suffix of the stream afterwards produces images
      bit-identical to an uninterrupted run. Held completed images are
      dropped ({!images} returns [] until the next completion);
      {!completed} reflects the snapshot. [Error] (bad magic, CRC
      mismatch, truncation, or a spec/plane mismatch with this
      accumulator) leaves the accumulator unchanged. *)

  val images : t -> plane:int -> Tensor.t list
  (** Completed [\[height; width\]] images of one plane, oldest first. *)

  val take_completed : t -> Tensor.t array list
  (** Drain the held completed images (oldest first, one per-plane array
      each) and forget them, so an unbounded stream runs in constant
      memory; {!completed} keeps counting. *)

  val deoverlapped_mass : t -> plane:int -> float
  (** Exactly [deoverlapped_sum spec (images t ~plane)], tracked as integer
      counters during accumulation — the streaming route to {!hit_rate}
      without a pixel pass. *)
end

val deoverlapped_sum : spec -> Tensor.t list -> float
(** Total pixel mass counting each access window exactly once: for every
    image after the first, the overlapped leading columns are skipped
    (paper §4.4). *)

val hit_rate : spec -> access:Tensor.t list -> miss:Tensor.t list -> float
(** [1 - misses/accesses] over de-overlapped totals. *)

val render_ascii : ?max_rows:int -> ?max_cols:int -> Tensor.t -> string
(** Downsampled ASCII rendition (for terminal inspection). *)

val write_pgm : string -> Tensor.t -> unit
(** Write as a binary PGM image, normalised to the 0-255 range. *)
