(** Reusable per-domain scratch arena for hot-path kernels.

    Packed GEMM panels, im2col column matrices and gradient temporaries are
    borrowed from here so that a warmed-up training step or served inference
    performs no large Bigarray allocations. Each domain owns a private arena
    in domain-local storage; Dpool's persistent workers therefore keep their
    scratch across parallel regions.

    Ownership discipline: a borrowed tensor is valid only inside the
    [with_buf] callback and must not escape it (the slot is recycled as soon
    as the callback returns). Nested borrows — including borrows from a
    nested Dpool region running serially on the same domain — take distinct
    slots. *)

val with_buf : ?zero:bool -> int array -> (Tensor.t -> 'a) -> 'a
(** [with_buf ~zero shape f] borrows a scratch tensor of [shape] from the
    current domain's arena (allocating fresh backing storage only on a size
    class miss) and releases it when [f] returns or raises. Contents are
    stale garbage unless [zero] is set (default [false]). The tensor must
    not escape [f]. *)

val with_buf2 : ?zero:bool -> int array -> int array -> (Tensor.t -> Tensor.t -> 'a) -> 'a
(** Two nested borrows; both share the [zero] policy. *)

type ibuffer = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Native-int scratch buffer (63-bit lanes on 64-bit hosts). *)

val with_ibuf : ?zero:bool -> int -> (ibuffer -> 'a) -> 'a
(** [with_ibuf n f] borrows an int scratch buffer of at least [n] elements
    from the current domain's integer arena, with the same scoping, size
    classing, opt-out and counter semantics as {!with_buf}. Used by the int8
    GEMM path for packed B-panel words and column sums. *)

val with_ibuf2 : ?zero:bool -> int -> int -> (ibuffer -> ibuffer -> 'a) -> 'a
(** Two nested int borrows. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** [set_enabled false] makes every borrow allocate a fresh buffer (the
    pre-arena behaviour); also settable via [CACHEBOX_WORKSPACE=0]. Used by
    the reference kernel mode and by re-entrant callers that opt out. *)

(** {1 Observability}

    Process-wide monotonic counters, summed across all domains. *)

val alloc_count : unit -> int
(** Fresh backing-buffer allocations performed by the arena (borrow misses).
    After warmup, a steady-state training step must leave this unchanged —
    the invariant the workspace regression test asserts. *)

val borrow_count : unit -> int
(** Total borrows served (hits + misses). *)

val retained_slots : unit -> int
(** Retained slots in the {e calling} domain's arena (diagnostic). *)

val retained_elems : unit -> int
(** Total float32 elements retained by the calling domain's arena. *)
