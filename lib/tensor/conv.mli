(** 2-D convolution kernels (NCHW), lowered to GEMM through im2col.

    Weight layouts follow the PyTorch convention:
    - convolution: [\[out_channels; in_channels; kh; kw\]]
    - transposed convolution: [\[in_channels; out_channels; kh; kw\]]

    These functions are pure computation: gradients are composed into the
    autodiff tape by the [nn] library. *)

val set_wide_batch : bool -> unit
(** Enable/disable the wide-batch forward lowering: with the flag on (and a
    batch of more than one sample), {!conv2d} and {!conv_transpose2d} unfold
    the whole batch into one wide column matrix and run a single GEMM instead
    of one small GEMM per sample. Values are bit-identical to the per-sample
    path (per-element accumulation order is unchanged); only the speed
    differs — the wide path amortises per-GEMM overhead and is what makes
    batched serving beat batch-1. Off by default; also settable via
    [CACHEBOX_WIDECONV=1]. Backward passes always use the per-sample path. *)

val wide_batch : unit -> bool
(** Current wide-batch mode. *)

val out_size : size:int -> kernel:int -> stride:int -> pad:int -> int
(** Spatial output size of a convolution. *)

val tconv_out_size : size:int -> kernel:int -> stride:int -> pad:int -> int
(** Spatial output size of a transposed convolution. *)

val im2col :
  Tensor.t -> n:int -> kernel:int -> stride:int -> pad:int -> Tensor.t
(** [im2col x ~n ~kernel ~stride ~pad] unfolds sample [n] of the NCHW tensor
    [x] into a [\[c*kernel*kernel; oh*ow\]] matrix (zero padding). *)

val im2col_into :
  Tensor.t -> n:int -> kernel:int -> stride:int -> pad:int -> Tensor.t -> unit
(** Like {!im2col} but writes into a caller-owned column matrix (typically a
    {!Workspace} borrow). Only in-bounds positions are written and that set
    depends on the geometry alone, so a buffer zeroed once may be reused
    across samples of the same shape without re-zeroing. *)

val col2im :
  Tensor.t ->
  dst:Tensor.t ->
  n:int ->
  channels:int ->
  height:int ->
  width:int ->
  kernel:int ->
  stride:int ->
  pad:int ->
  unit
(** [col2im cols ~dst ~n ...] scatters-and-accumulates the column matrix back
    into sample [n] of [dst] (shape [\[_; channels; height; width\]]) —
    the adjoint of {!im2col}. [dst] is accumulated into, not cleared. *)

val conv2d :
  x:Tensor.t ->
  weight:Tensor.t ->
  bias:Tensor.t option ->
  stride:int ->
  pad:int ->
  Tensor.t
(** Forward convolution. *)

val conv2d_backward :
  x:Tensor.t ->
  weight:Tensor.t ->
  gout:Tensor.t ->
  stride:int ->
  pad:int ->
  grad_weight:Tensor.t ->
  grad_bias:Tensor.t option ->
  Tensor.t
(** Accumulates weight/bias gradients (into [grad_weight]/[grad_bias]) and
    returns the gradient with respect to [x]. *)

val conv2d_backward_into :
  x:Tensor.t ->
  weight:Tensor.t ->
  gout:Tensor.t ->
  stride:int ->
  pad:int ->
  grad_weight:Tensor.t ->
  grad_bias:Tensor.t option ->
  gx:Tensor.t ->
  unit
(** Allocation-free variant of {!conv2d_backward}: accumulates the input
    gradient into caller-owned [gx] (which the caller must zero first when a
    plain gradient rather than an accumulation is wanted). *)

val conv_transpose2d :
  x:Tensor.t ->
  weight:Tensor.t ->
  bias:Tensor.t option ->
  stride:int ->
  pad:int ->
  Tensor.t
(** Forward transposed (fractionally-strided) convolution. *)

val conv_transpose2d_backward :
  x:Tensor.t ->
  weight:Tensor.t ->
  gout:Tensor.t ->
  stride:int ->
  pad:int ->
  grad_weight:Tensor.t ->
  grad_bias:Tensor.t option ->
  Tensor.t
(** Adjoint of {!conv_transpose2d}; same contract as {!conv2d_backward}. *)

val conv_transpose2d_backward_into :
  x:Tensor.t ->
  weight:Tensor.t ->
  gout:Tensor.t ->
  stride:int ->
  pad:int ->
  grad_weight:Tensor.t ->
  grad_bias:Tensor.t option ->
  gx:Tensor.t ->
  unit
(** Allocation-free variant of {!conv_transpose2d_backward}. [gx] is fully
    overwritten (unlike {!conv2d_backward_into} it does not accumulate), so
    pre-zeroing is permitted but not required. *)

(** {1 Int8 quantized forwards}

    Same lowering (im2col/col2im, wide-batch split, blocking) as the float
    forwards with the GEMM swapped for {!Blas.Int8.gemm}; activations are
    quantized on the fly at [act_scale]. Results are bit-identical across
    the wide/per-sample paths and any domain count. *)

val conv2d_q :
  x:Tensor.t ->
  weight:Blas.Int8.qweight ->
  act_scale:float ->
  kernel:int ->
  stride:int ->
  pad:int ->
  Tensor.t
(** Quantized forward convolution. [weight] is the quantized
    [\[oc; ic*kernel*kernel\]] im2col weight matrix with per-output-channel
    scales; its fused bias (if any) rides in the GEMM epilogue. *)

val conv_transpose2d_q :
  x:Tensor.t ->
  weight:Blas.Int8.qweight ->
  act_scale:float ->
  bias:Tensor.t option ->
  kernel:int ->
  stride:int ->
  pad:int ->
  Tensor.t
(** Quantized forward transposed convolution. [weight] is the quantized
    [\[oc*kernel*kernel; ic\]] matrix (the float path's [W^T] view, i.e.
    [quantize ~trans:true] of [\[ic; oc*k*k\]]); col2im accumulates many
    GEMM outputs per pixel, so [bias] is applied after the scatter rather
    than fused. *)
