(** CRC-32 (IEEE 802.3: reflected, polynomial 0xEDB88320).

    Shared integrity primitive for every checksummed on-disk container in
    the system (model checkpoints, binary traces): one implementation, one
    set of test vectors. *)

val digest : string -> int
(** CRC-32 of the whole string, in [0, 0xFFFFFFFF]. *)

val digest_sub : Bytes.t -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes starting at [pos] — same function as {!digest},
    computed eight input bytes per step (slicing-by-8), for the large
    checksummed payloads on the simulation-cache warm path. *)
