(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320). Table built lazily so
   programs that never touch a checksummed file pay nothing. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let digest s =
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF
