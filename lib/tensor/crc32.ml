(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320). Table built lazily so
   programs that never touch a checksummed file pay nothing. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let digest s =
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF

(* Slicing-by-8: tables.(k) advances the CRC by one byte followed by k zero
   bytes, so eight input bytes fold into eight independent table lookups per
   iteration instead of a serial 8-step chain. *)
let tables8 =
  lazy
    (let t0 = Lazy.force table in
     let t = Array.init 8 (fun _ -> Array.make 256 0) in
     for n = 0 to 255 do
       t.(0).(n) <- t0.(n);
       let c = ref t0.(n) in
       for k = 1 to 7 do
         c := t0.(!c land 0xFF) lxor (!c lsr 8);
         t.(k).(n) <- !c
       done
     done;
     t)

let digest_sub b ~pos ~len =
  if pos < 0 || len < 0 || pos > Bytes.length b - len then invalid_arg "Crc32.digest_sub";
  let t = Lazy.force tables8 in
  let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3) in
  let t4 = t.(4) and t5 = t.(5) and t6 = t.(6) and t7 = t.(7) in
  let crc = ref 0xFFFFFFFF in
  let i = ref pos in
  let stop = pos + len in
  let byte k = Char.code (Bytes.unsafe_get b k) in
  while stop - !i >= 8 do
    let j = !i in
    let w0 =
      byte j lor (byte (j + 1) lsl 8) lor (byte (j + 2) lsl 16) lor (byte (j + 3) lsl 24)
    in
    let w1 =
      byte (j + 4) lor (byte (j + 5) lsl 8) lor (byte (j + 6) lsl 16) lor (byte (j + 7) lsl 24)
    in
    let x = !crc lxor w0 in
    crc :=
      Array.unsafe_get t7 (x land 0xFF)
      lxor Array.unsafe_get t6 ((x lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((x lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((x lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (w1 land 0xFF)
      lxor Array.unsafe_get t2 ((w1 lsr 8) land 0xFF)
      lxor Array.unsafe_get t1 ((w1 lsr 16) land 0xFF)
      lxor Array.unsafe_get t0 ((w1 lsr 24) land 0xFF);
    i := j + 8
  done;
  while !i < stop do
    crc := t0.((!crc lxor byte !i) land 0xFF) lxor (!crc lsr 8);
    incr i
  done;
  !crc lxor 0xFFFFFFFF
