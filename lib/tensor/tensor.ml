type buffer =
  (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { data : buffer; shape : int array }

let product a = Array.fold_left ( * ) 1 a

let create shape =
  Array.iter (fun d -> if d <= 0 then invalid_arg "Tensor.create: dims must be positive") shape;
  let data = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout (product shape) in
  { data; shape = Array.copy shape }

let numel t = Bigarray.Array1.dim t.data
let shape t = Array.copy t.shape
let dim t i = t.shape.(i)

let fill t v = Bigarray.Array1.fill t.data v

let zeros shape =
  let t = create shape in
  fill t 0.0;
  t

let full shape v =
  let t = create shape in
  fill t v;
  t

let ones shape = full shape 1.0
let scalar v = full [| 1 |] v

let of_array shape a =
  let t = create shape in
  if Array.length a <> numel t then invalid_arg "Tensor.of_array: length mismatch";
  (* Direct loop: a closure here would box every float on the minor heap. *)
  for i = 0 to Array.length a - 1 do
    Bigarray.Array1.unsafe_set t.data i (Array.unsafe_get a i)
  done;
  t

let randn g shape =
  let t = create shape in
  for i = 0 to numel t - 1 do
    Bigarray.Array1.unsafe_set t.data i (Prng.gauss g)
  done;
  t

let rand g shape ~lo ~hi =
  let t = create shape in
  for i = 0 to numel t - 1 do
    Bigarray.Array1.unsafe_set t.data i (Prng.uniform g ~lo ~hi)
  done;
  t

let blit ~src ~dst =
  if numel src <> numel dst then invalid_arg "Tensor.blit: size mismatch";
  Bigarray.Array1.blit src.data dst.data

let copy t =
  let r = create t.shape in
  blit ~src:t ~dst:r;
  r

let of_buffer buf shape =
  if product shape <> Bigarray.Array1.dim buf then
    invalid_arg "Tensor.of_buffer: element count mismatch";
  { data = buf; shape = Array.copy shape }

let view t shape =
  if product shape <> numel t then invalid_arg "Tensor.view: element count mismatch";
  { data = t.data; shape = Array.copy shape }

let sub_view t ~off ~shape =
  let len = product shape in
  if off < 0 || off + len > numel t then invalid_arg "Tensor.sub_view: out of range";
  { data = Bigarray.Array1.sub t.data off len; shape = Array.copy shape }

let get t i = Bigarray.Array1.get t.data i
let set t i v = Bigarray.Array1.set t.data i v

let get2 t i j =
  assert (Array.length t.shape = 2);
  Bigarray.Array1.get t.data ((i * t.shape.(1)) + j)

let set2 t i j v =
  assert (Array.length t.shape = 2);
  Bigarray.Array1.set t.data ((i * t.shape.(1)) + j) v

let idx4 t n c h w =
  let sh = t.shape in
  ((((n * sh.(1)) + c) * sh.(2)) + h) * sh.(3) + w

let get4 t n c h w =
  assert (Array.length t.shape = 4);
  Bigarray.Array1.get t.data (idx4 t n c h w)

let set4 t n c h w v =
  assert (Array.length t.shape = 4);
  Bigarray.Array1.set t.data (idx4 t n c h w) v

let to_array t = Array.init (numel t) (fun i -> Bigarray.Array1.unsafe_get t.data i)

let check_same_size name a b =
  if numel a <> numel b then invalid_arg (name ^ ": size mismatch")

(* Elementwise loops fan out over the domain pool above this element count;
   each lane owns a contiguous disjoint index slice, so parallel results are
   bit-identical to the serial loop at any domain count. *)
let par_numel = 1 lsl 16

let pfor n body = if n < par_numel then body 0 (n - 1) else Dpool.parallel_for n body

let add_ dst x =
  check_same_size "Tensor.add_" dst x;
  let d = dst.data and s = x.data in
  pfor (numel dst) (fun lo hi ->
      for i = lo to hi do
        Bigarray.Array1.unsafe_set d i
          (Bigarray.Array1.unsafe_get d i +. Bigarray.Array1.unsafe_get s i)
      done)

let sub_ dst x =
  check_same_size "Tensor.sub_" dst x;
  let d = dst.data and s = x.data in
  pfor (numel dst) (fun lo hi ->
      for i = lo to hi do
        Bigarray.Array1.unsafe_set d i
          (Bigarray.Array1.unsafe_get d i -. Bigarray.Array1.unsafe_get s i)
      done)

let mul_ dst x =
  check_same_size "Tensor.mul_" dst x;
  let d = dst.data and s = x.data in
  pfor (numel dst) (fun lo hi ->
      for i = lo to hi do
        Bigarray.Array1.unsafe_set d i
          (Bigarray.Array1.unsafe_get d i *. Bigarray.Array1.unsafe_get s i)
      done)

let scale_ t alpha =
  let d = t.data in
  pfor (numel t) (fun lo hi ->
      for i = lo to hi do
        Bigarray.Array1.unsafe_set d i (Bigarray.Array1.unsafe_get d i *. alpha)
      done)

let axpy ~alpha ~x ~y =
  check_same_size "Tensor.axpy" x y;
  let xd = x.data and yd = y.data in
  pfor (numel x) (fun lo hi ->
      for i = lo to hi do
        Bigarray.Array1.unsafe_set yd i
          ((alpha *. Bigarray.Array1.unsafe_get xd i) +. Bigarray.Array1.unsafe_get yd i)
      done)

(* [f] must be pure: it may run concurrently on several domains. *)
let map_ f t =
  let d = t.data in
  pfor (numel t) (fun lo hi ->
      for i = lo to hi do
        Bigarray.Array1.unsafe_set d i (f (Bigarray.Array1.unsafe_get d i))
      done)

let clip_ t ~lo ~hi = map_ (fun v -> Float.max lo (Float.min hi v)) t

let binop name f a b =
  check_same_size name a b;
  let r = create a.shape in
  let rd = r.data and ad = a.data and bd = b.data in
  pfor (numel a) (fun lo hi ->
      for i = lo to hi do
        Bigarray.Array1.unsafe_set rd i
          (f (Bigarray.Array1.unsafe_get ad i) (Bigarray.Array1.unsafe_get bd i))
      done);
  r

let add a b = binop "Tensor.add" ( +. ) a b
let sub a b = binop "Tensor.sub" ( -. ) a b
let mul a b = binop "Tensor.mul" ( *. ) a b
let div a b = binop "Tensor.div" ( /. ) a b
let map2 f a b = binop "Tensor.map2" f a b

let map3 f a b c =
  check_same_size "Tensor.map3" a b;
  check_same_size "Tensor.map3" a c;
  let r = create a.shape in
  let rd = r.data and ad = a.data and bd = b.data and cd = c.data in
  pfor (numel a) (fun lo hi ->
      for i = lo to hi do
        Bigarray.Array1.unsafe_set rd i
          (f
             (Bigarray.Array1.unsafe_get ad i)
             (Bigarray.Array1.unsafe_get bd i)
             (Bigarray.Array1.unsafe_get cd i))
      done);
  r

let map f t =
  let r = copy t in
  map_ f r;
  r

let scale t alpha = map (fun v -> v *. alpha) t
let neg t = map (fun v -> -.v) t

let fold f init t =
  let acc = ref init in
  let d = t.data in
  for i = 0 to numel t - 1 do
    acc := f !acc (Bigarray.Array1.unsafe_get d i)
  done;
  !acc

(* Summation over fixed-size chunks: partials are computed per chunk (in
   parallel for large tensors) and combined in chunk order. The chunk grid
   depends only on the element count — never on the domain count — so the
   result is identical for every pool size, serial included. *)
let sum t =
  let n = numel t in
  let d = t.data in
  let range_sum lo hi =
    let acc = ref 0.0 in
    for i = lo to hi do
      acc := !acc +. Bigarray.Array1.unsafe_get d i
    done;
    !acc
  in
  if n <= par_numel then range_sum 0 (n - 1)
  else begin
    let nchunks = (n + par_numel - 1) / par_numel in
    let partials = Array.make nchunks 0.0 in
    Dpool.parallel_for nchunks (fun clo chi ->
        for c = clo to chi do
          partials.(c) <- range_sum (c * par_numel) (min (n - 1) (((c + 1) * par_numel) - 1))
        done);
    Array.fold_left ( +. ) 0.0 partials
  end

let mean t = sum t /. float_of_int (numel t)
let max_value t = fold Float.max Float.neg_infinity t
let min_value t = fold Float.min Float.infinity t

let channel_mean_var t =
  if Array.length t.shape <> 4 then invalid_arg "Tensor.channel_mean_var: need NCHW";
  let n = t.shape.(0) and c = t.shape.(1) and h = t.shape.(2) and w = t.shape.(3) in
  let count = float_of_int (n * h * w) in
  let means = Array.make c 0.0 and vars = Array.make c 0.0 in
  let hw = h * w in
  let d = t.data in
  for ci = 0 to c - 1 do
    let acc = ref 0.0 in
    for ni = 0 to n - 1 do
      let base = ((ni * c) + ci) * hw in
      for i = 0 to hw - 1 do
        acc := !acc +. Bigarray.Array1.unsafe_get d (base + i)
      done
    done;
    let m = !acc /. count in
    means.(ci) <- m;
    let accv = ref 0.0 in
    for ni = 0 to n - 1 do
      let base = ((ni * c) + ci) * hw in
      for i = 0 to hw - 1 do
        let x = Bigarray.Array1.unsafe_get d (base + i) -. m in
        accv := !accv +. (x *. x)
      done
    done;
    vars.(ci) <- !accv /. count
  done;
  (means, vars)

let concat_channels a b =
  if Array.length a.shape <> 4 || Array.length b.shape <> 4 then
    invalid_arg "Tensor.concat_channels: need NCHW";
  let n = a.shape.(0) and ca = a.shape.(1) and h = a.shape.(2) and w = a.shape.(3) in
  let cb = b.shape.(1) in
  if b.shape.(0) <> n || b.shape.(2) <> h || b.shape.(3) <> w then
    invalid_arg "Tensor.concat_channels: N/H/W mismatch";
  let r = create [| n; ca + cb; h; w |] in
  let hw = h * w in
  for ni = 0 to n - 1 do
    let src_a = Bigarray.Array1.sub a.data (ni * ca * hw) (ca * hw) in
    let src_b = Bigarray.Array1.sub b.data (ni * cb * hw) (cb * hw) in
    let dst_a = Bigarray.Array1.sub r.data (ni * (ca + cb) * hw) (ca * hw) in
    let dst_b = Bigarray.Array1.sub r.data ((ni * (ca + cb) * hw) + (ca * hw)) (cb * hw) in
    Bigarray.Array1.blit src_a dst_a;
    Bigarray.Array1.blit src_b dst_b
  done;
  r

let broadcast_spatial t ~h ~w =
  if Array.length t.shape <> 4 then invalid_arg "Tensor.broadcast_spatial: need NCHW";
  if t.shape.(2) <> 1 || t.shape.(3) <> 1 then
    invalid_arg "Tensor.broadcast_spatial: source must be [n;c;1;1]";
  if h <= 0 || w <= 0 then invalid_arg "Tensor.broadcast_spatial: bad target size";
  let n = t.shape.(0) and c = t.shape.(1) in
  let r = create [| n; c; h; w |] in
  let hw = h * w in
  let d = t.data and rd = r.data in
  for nc = 0 to (n * c) - 1 do
    let v = Bigarray.Array1.unsafe_get d nc in
    let base = nc * hw in
    for i = 0 to hw - 1 do
      Bigarray.Array1.unsafe_set rd (base + i) v
    done
  done;
  r

let spatial_sum t =
  if Array.length t.shape <> 4 then invalid_arg "Tensor.spatial_sum: need NCHW";
  let n = t.shape.(0) and c = t.shape.(1) and h = t.shape.(2) and w = t.shape.(3) in
  let r = create [| n; c; 1; 1 |] in
  let hw = h * w in
  let d = t.data and rd = r.data in
  for nc = 0 to (n * c) - 1 do
    let base = nc * hw in
    let acc = ref 0.0 in
    for i = 0 to hw - 1 do
      acc := !acc +. Bigarray.Array1.unsafe_get d (base + i)
    done;
    Bigarray.Array1.unsafe_set rd nc !acc
  done;
  r

let spatial_mean t =
  let r = spatial_sum t in
  let hw = float_of_int (t.shape.(2) * t.shape.(3)) in
  scale_ r (1.0 /. hw);
  { data = r.data; shape = [| t.shape.(0); t.shape.(1) |] }

let split_channels t c =
  if Array.length t.shape <> 4 then invalid_arg "Tensor.split_channels: need NCHW";
  let n = t.shape.(0) and ct = t.shape.(1) and h = t.shape.(2) and w = t.shape.(3) in
  if c <= 0 || c >= ct then invalid_arg "Tensor.split_channels: bad split point";
  let hw = h * w in
  let a = create [| n; c; h; w |] and b = create [| n; ct - c; h; w |] in
  for ni = 0 to n - 1 do
    let src_a = Bigarray.Array1.sub t.data (ni * ct * hw) (c * hw) in
    let src_b = Bigarray.Array1.sub t.data ((ni * ct * hw) + (c * hw)) ((ct - c) * hw) in
    Bigarray.Array1.blit src_a (Bigarray.Array1.sub a.data (ni * c * hw) (c * hw));
    Bigarray.Array1.blit src_b (Bigarray.Array1.sub b.data (ni * (ct - c) * hw) ((ct - c) * hw))
  done;
  (a, b)

let slice_batch t off len =
  let sh = t.shape in
  if Array.length sh < 1 then invalid_arg "Tensor.slice_batch: rank 0";
  if off < 0 || len <= 0 || off + len > sh.(0) then
    invalid_arg "Tensor.slice_batch: out of range";
  let row = product (Array.sub sh 1 (Array.length sh - 1)) in
  let out_shape = Array.copy sh in
  out_shape.(0) <- len;
  let r = create out_shape in
  Bigarray.Array1.blit (Bigarray.Array1.sub t.data (off * row) (len * row)) r.data;
  r

let stack_batch ts =
  match ts with
  | [] -> invalid_arg "Tensor.stack_batch: empty"
  | first :: _ ->
    let tail_shape = Array.sub first.shape 1 (Array.length first.shape - 1) in
    let row = product tail_shape in
    List.iter
      (fun t ->
        if Array.sub t.shape 1 (Array.length t.shape - 1) <> tail_shape then
          invalid_arg "Tensor.stack_batch: trailing dims mismatch")
      ts;
    let total = List.fold_left (fun acc t -> acc + t.shape.(0)) 0 ts in
    let out_shape = Array.append [| total |] tail_shape in
    let r = create out_shape in
    let off = ref 0 in
    List.iter
      (fun t ->
        let n = numel t in
        Bigarray.Array1.blit t.data (Bigarray.Array1.sub r.data !off n);
        off := !off + n)
      ts;
    ignore row;
    r

let equal_shape a b = a.shape = b.shape

let pp ppf t =
  let n = numel t in
  let limit = min n 8 in
  Format.fprintf ppf "tensor%a [" (fun ppf sh ->
      Array.iter (fun d -> Format.fprintf ppf " %d" d) sh)
    t.shape;
  for i = 0 to limit - 1 do
    Format.fprintf ppf "%s%.4g" (if i > 0 then "; " else "") (get t i)
  done;
  if n > limit then Format.fprintf ppf "; ...";
  Format.fprintf ppf "]"
