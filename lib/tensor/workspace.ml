(* Per-domain reusable scratch arena.

   Every hot-path kernel (packed GEMM panels, im2col column matrices,
   gradient temporaries) borrows its large scratch Bigarrays from here
   instead of allocating fresh ones, so steady-state training steps and
   served inferences stop churning the major heap.

   Design:
   - One arena per domain, held in domain-local storage. Dpool workers are
     persistent, so each lane's arena survives across parallel regions and
     reaches a steady state after the first few calls. Because a domain only
     ever touches its own arena, no locking is needed.
   - Slots are size-classed: capacities are rounded up to powers of two so
     differently-shaped requests of similar size share one slot. A borrow
     takes the smallest free slot that fits; a miss allocates a fresh
     backing buffer and (up to [max_slots]) retains it.
   - Borrows are scoped: [with_buf] releases the slot when the callback
     returns or raises, so nested borrows (e.g. a GEMM packing buffer inside
     a convolution's column buffer, with the nested Dpool region degraded to
     the serial path) simply occupy distinct slots of the same arena.
   - Opt-out: [set_enabled false] (or CACHEBOX_WORKSPACE=0) routes every
     borrow to a fresh allocation — the pre-arena behaviour, used by the
     reference kernel mode and by callers that need re-entrancy guarantees
     beyond the scoped discipline.

   The [alloc_count] counter is the load-bearing observable: it increments
   only when a borrow misses and a fresh backing buffer is created, so a
   warmed-up training step must leave it unchanged (asserted in
   test_workspace.ml). *)

type slot = { buf : Tensor.buffer; mutable busy : bool }
type arena = { mutable slots : slot list }

let enabled_flag =
  ref
    (match Sys.getenv_opt "CACHEBOX_WORKSPACE" with
    | Some ("0" | "off" | "false") -> false
    | Some _ | None -> true)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Counters are process-wide (summed over every domain's arena): the
   steady-state tests must observe lanes running on pool workers too. *)
let allocs = Atomic.make 0
let borrows = Atomic.make 0

let alloc_count () = Atomic.get allocs
let borrow_count () = Atomic.get borrows

let arena_key : arena Domain.DLS.key = Domain.DLS.new_key (fun () -> { slots = [] })

(* Beyond this many retained slots per domain, overflow borrows fall back to
   unretained fresh buffers instead of growing without bound. *)
let max_slots = 64

(* Below this capacity pooling is not worth the bookkeeping; tiny borrows
   still work, they just share the smallest size class. *)
let min_cap = 1024

let round_cap n =
  let c = ref min_cap in
  while !c < n do
    c := !c * 2
  done;
  !c

let create_buf cap = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout cap

(* Smallest free slot with capacity >= n, if any. *)
let find_slot arena n =
  let best = ref None in
  List.iter
    (fun s ->
      if (not s.busy) && Bigarray.Array1.dim s.buf >= n then
        match !best with
        | Some b when Bigarray.Array1.dim b.buf <= Bigarray.Array1.dim s.buf -> ()
        | _ -> best := Some s)
    arena.slots;
  !best

let with_buf ?(zero = false) shape f =
  let n = Array.fold_left ( * ) 1 shape in
  if n <= 0 then invalid_arg "Workspace.with_buf: dims must be positive";
  if not !enabled_flag then begin
    let t = Tensor.create shape in
    if zero then Tensor.fill t 0.0;
    f t
  end
  else begin
    Atomic.incr borrows;
    let arena = Domain.DLS.get arena_key in
    match find_slot arena n with
    | Some s ->
      s.busy <- true;
      let t = Tensor.of_buffer (Bigarray.Array1.sub s.buf 0 n) shape in
      if zero then Tensor.fill t 0.0;
      Fun.protect ~finally:(fun () -> s.busy <- false) (fun () -> f t)
    | None ->
      Atomic.incr allocs;
      if List.length arena.slots < max_slots then begin
        let s = { buf = create_buf (round_cap n); busy = true } in
        arena.slots <- s :: arena.slots;
        let t = Tensor.of_buffer (Bigarray.Array1.sub s.buf 0 n) shape in
        if zero then Tensor.fill t 0.0;
        Fun.protect ~finally:(fun () -> s.busy <- false) (fun () -> f t)
      end
      else begin
        let t = Tensor.of_buffer (create_buf n) shape in
        if zero then Tensor.fill t 0.0;
        f t
      end
  end

let with_buf2 ?zero sa sb f =
  with_buf ?zero sa (fun a -> with_buf ?zero sb (fun b -> f a b))

(* Integer arena: same size-classed, per-domain, scoped-borrow discipline,
   but handing out native-int Bigarrays. The int8 GEMM path packs B-panel
   byte pairs into 63-bit words and keeps per-column sums here; floats
   cannot hold those exactly, hence the parallel arena. Counters are shared
   with the float arena — the steady-state invariant covers both. *)

type ibuffer = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type islot = { ibuf : ibuffer; mutable ibusy : bool }
type iarena = { mutable islots : islot list }

let iarena_key : iarena Domain.DLS.key = Domain.DLS.new_key (fun () -> { islots = [] })
let create_ibuf cap = Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap

let find_islot arena n =
  let best = ref None in
  List.iter
    (fun s ->
      if (not s.ibusy) && Bigarray.Array1.dim s.ibuf >= n then
        match !best with
        | Some b when Bigarray.Array1.dim b.ibuf <= Bigarray.Array1.dim s.ibuf -> ()
        | _ -> best := Some s)
    arena.islots;
  !best

let with_ibuf ?(zero = false) n f =
  if n <= 0 then invalid_arg "Workspace.with_ibuf: size must be positive";
  if not !enabled_flag then begin
    let b = create_ibuf n in
    if zero then Bigarray.Array1.fill b 0;
    f b
  end
  else begin
    Atomic.incr borrows;
    let arena = Domain.DLS.get iarena_key in
    match find_islot arena n with
    | Some s ->
      s.ibusy <- true;
      let b = Bigarray.Array1.sub s.ibuf 0 n in
      if zero then Bigarray.Array1.fill b 0;
      Fun.protect ~finally:(fun () -> s.ibusy <- false) (fun () -> f b)
    | None ->
      Atomic.incr allocs;
      if List.length arena.islots < max_slots then begin
        let s = { ibuf = create_ibuf (round_cap n); ibusy = true } in
        arena.islots <- s :: arena.islots;
        let b = Bigarray.Array1.sub s.ibuf 0 n in
        if zero then Bigarray.Array1.fill b 0;
        Fun.protect ~finally:(fun () -> s.ibusy <- false) (fun () -> f b)
      end
      else begin
        let b = create_ibuf n in
        if zero then Bigarray.Array1.fill b 0;
        f b
      end
  end

let with_ibuf2 ?zero na nb f =
  with_ibuf ?zero na (fun a -> with_ibuf ?zero nb (fun b -> f a b))

let retained_slots () =
  (* Current domain's arena only; a diagnostic, not a global census. *)
  let d = Domain.DLS.get arena_key and i = Domain.DLS.get iarena_key in
  List.length d.slots + List.length i.islots

let retained_elems () =
  List.fold_left
    (fun acc s -> acc + Bigarray.Array1.dim s.buf)
    0 (Domain.DLS.get arena_key).slots
  + List.fold_left
      (fun acc s -> acc + Bigarray.Array1.dim s.ibuf)
      0 (Domain.DLS.get iarena_key).islots
