(** Deterministic pseudo-random number generation.

    All randomness in this repository flows through this module so that every
    experiment is reproducible bit-for-bit. The generator is splitmix64,
    which has a 64-bit state, passes BigCrush, and supports cheap stream
    splitting via {!split}. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from an integer seed. Equal seeds give
    equal streams. *)

val of_label : string -> t
(** [of_label s] derives a generator from a string label (FNV-1a hash of
    [s]); used to give every experiment/workload an independent named
    stream. *)

val split : t -> t
(** [split g] draws from [g] and returns a fresh generator statistically
    independent of the remainder of [g]'s stream. *)

val state : t -> int64
(** The full 64-bit generator state, for checkpointing. *)

val set_state : t -> int64 -> unit
(** Restores a state captured with {!state}; the generator then reproduces
    the exact stream it would have produced from that point. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gauss : t -> float
(** Standard normal via Box-Muller. *)

val uniform : t -> lo:float -> hi:float -> float

val zipf : t -> n:int -> s:float -> int
(** [zipf g ~n ~s] samples from a Zipf distribution over [\[0, n)] with
    exponent [s] by inverse-CDF over a precomputed table is avoided; uses
    rejection-inversion (Hormann). Suitable for hot-set address sampling. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. [Invalid_argument] on empty array. *)
