(* Persistent domain pool.

   Worker domains are spawned lazily on the first parallel region that needs
   them and then reused for the lifetime of the process (joined by an at_exit
   hook or an explicit [shutdown]). A parallel region hands each lane a
   deterministic contiguous slice of the iteration space; lane 0 runs on the
   calling domain so a pool of [d] lanes occupies exactly [d] domains.

   Determinism: slice boundaries depend only on the iteration count and the
   lane count, and every output element is written by exactly one lane running
   the same scalar code the serial path runs — so kernels built on
   [parallel_for] with disjoint writes produce bit-identical results for every
   domain count (including 1).

   Nesting: a parallel region entered from inside a worker (or from lane 0 of
   an enclosing region) degrades to the serial path instead of deadlocking on
   the pool. *)

let recommended () = max 1 (Domain.recommended_domain_count ())

(* OCaml caps the number of simultaneously-live domains (128); stay well
   below it and leave headroom for the caller's own domains. *)
let max_lanes = 64

let env_domains () =
  match Sys.getenv_opt "CACHEBOX_DOMAINS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some (min n max_lanes)
    | Some _ | None -> None)

let configured : int option ref = ref None

let domains () =
  match !configured with
  | Some n -> n
  | None -> ( match env_domains () with Some n -> n | None -> recommended ())

let set_domains n =
  if n < 1 then invalid_arg "Dpool.set_domains: need at least one domain";
  configured := Some (min n max_lanes)

let with_domains n f =
  if n < 1 then invalid_arg "Dpool.with_domains: need at least one domain";
  let prev = !configured in
  configured := Some (min n max_lanes);
  Fun.protect ~finally:(fun () -> configured := prev) f

(* True while the current domain is executing a lane of some parallel
   region; used to run nested regions serially. *)
let in_parallel : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type worker = {
  m : Mutex.t;
  has_job : Condition.t;
  finished : Condition.t;
  mutable job : (unit -> unit) option;
  mutable busy : bool;
  mutable stop : bool;
  mutable domain : unit Domain.t option;
}

let worker_loop w =
  Domain.DLS.set in_parallel true;
  let rec go () =
    Mutex.lock w.m;
    while w.job = None && not w.stop do
      Condition.wait w.has_job w.m
    done;
    match w.job with
    | None -> Mutex.unlock w.m (* stop requested *)
    | Some job ->
      w.job <- None;
      Mutex.unlock w.m;
      (* Jobs wrap user code in their own handler; this is a backstop so a
         worker can never die and wedge the pool. *)
      (try job () with _ -> ());
      Mutex.lock w.m;
      w.busy <- false;
      Condition.signal w.finished;
      Mutex.unlock w.m;
      go ()
  in
  go ()

(* [pool_m] guards pool growth and serialises whole parallel regions:
   concurrent top-level callers take turns rather than sharing workers. *)
let pool_m = Mutex.create ()
let pool : worker array ref = ref [||]
let exit_hook_registered = ref false

let shutdown () =
  Mutex.lock pool_m;
  let ws = !pool in
  pool := [||];
  Mutex.unlock pool_m;
  Array.iter
    (fun w ->
      Mutex.lock w.m;
      w.stop <- true;
      Condition.signal w.has_job;
      Mutex.unlock w.m;
      match w.domain with Some d -> Domain.join d | None -> ())
    ws

(* Grow the pool to [n] workers; [pool_m] must be held. *)
let ensure n =
  let cur = Array.length !pool in
  if cur < n then begin
    if not !exit_hook_registered then begin
      exit_hook_registered := true;
      at_exit shutdown
    end;
    let fresh =
      Array.init (n - cur) (fun _ ->
          let w =
            {
              m = Mutex.create ();
              has_job = Condition.create ();
              finished = Condition.create ();
              job = None;
              busy = false;
              stop = false;
              domain = None;
            }
          in
          w.domain <- Some (Domain.spawn (fun () -> worker_loop w));
          w)
    in
    pool := Array.append !pool fresh
  end

(* Run [f 0 .. f (lanes-1)], lane 0 on the calling domain, the rest on pool
   workers. An exception raised by any lane is re-raised here (lowest lane
   wins) with its original backtrace. *)
let run_lanes lanes f =
  if lanes <= 1 || Domain.DLS.get in_parallel then
    for lane = 0 to lanes - 1 do
      f lane
    done
  else begin
    Mutex.lock pool_m;
    (match ensure (lanes - 1) with
    | () -> ()
    | exception e ->
      Mutex.unlock pool_m;
      raise e);
    let failure = Array.make lanes None in
    let guarded lane () =
      try f lane
      with e -> failure.(lane) <- Some (e, Printexc.get_raw_backtrace ())
    in
    for i = 0 to lanes - 2 do
      let w = !pool.(i) in
      Mutex.lock w.m;
      w.job <- Some (guarded (i + 1));
      w.busy <- true;
      Condition.signal w.has_job;
      Mutex.unlock w.m
    done;
    Domain.DLS.set in_parallel true;
    guarded 0 ();
    Domain.DLS.set in_parallel false;
    for i = 0 to lanes - 2 do
      let w = !pool.(i) in
      Mutex.lock w.m;
      while w.busy do
        Condition.wait w.finished w.m
      done;
      Mutex.unlock w.m
    done;
    Mutex.unlock pool_m;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failure
  end

let parallel_for ?domains:d n body =
  if n > 0 then begin
    let lanes =
      min max_lanes (min n (match d with Some d -> max 1 d | None -> domains ()))
    in
    if lanes <= 1 then body 0 (n - 1)
    else
      run_lanes lanes (fun lane ->
          let lo = lane * n / lanes and hi = ((lane + 1) * n / lanes) - 1 in
          if lo <= hi then body lo hi)
  end

let parallel_map_array ?domains:d f a =
  let n = Array.length a in
  let lanes =
    min max_lanes (min n (match d with Some d -> max 1 d | None -> domains ()))
  in
  if lanes <= 1 || n < 2 || Domain.DLS.get in_parallel then Array.map f a
  else begin
    let results = Array.make n None in
    run_lanes lanes (fun lane ->
        let lo = lane * n / lanes and hi = ((lane + 1) * n / lanes) - 1 in
        for i = lo to hi do
          results.(i) <- Some (f a.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) results
  end
