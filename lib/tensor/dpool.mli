(** Persistent domain pool for data-parallel kernels (OCaml 5 domains).

    Worker domains are spawned lazily on the first parallel region that needs
    them and reused for the lifetime of the process (an [at_exit] hook — or an
    explicit {!shutdown} — joins them). The pool backs the row-blocked
    {!Blas.gemm}/{!Blas.gemv} kernels, the sample/channel-parallel loops in
    {!Conv}, the large elementwise loops in {!Tensor}, and batch-parallel
    CB-GAN inference ({!Cbox_infer}).

    {b Determinism.} Every parallel region splits its iteration space into
    deterministic contiguous slices, one per lane, and each output element is
    written by exactly one lane running the same scalar code as the serial
    path. Kernels built this way are bit-identical to their serial versions
    for every domain count (the property suite in [test/test_parallel.ml]
    checks this with exact float equality).

    {b Nesting.} A parallel region entered from inside another one (e.g. a
    {!Blas.gemm} inside a batch scored by {!parallel_map_array}) runs serially
    on the current domain instead of deadlocking; the outermost region owns
    the pool. *)

val recommended : unit -> int
(** Domains worth using on this machine (at least 1). *)

val domains : unit -> int
(** The pool's configured lane count: the last {!set_domains} value, else
    [CACHEBOX_DOMAINS] from the environment, else {!recommended}. A lane
    count of 1 means every kernel takes its serial path. *)

val set_domains : int -> unit
(** Override the lane count for subsequent parallel regions (e.g. from the
    [--domains] CLI flag). Raises [Invalid_argument] for counts < 1; counts
    are capped well below the runtime's domain limit. *)

val with_domains : int -> (unit -> 'a) -> 'a
(** [with_domains n f] runs [f] with the lane count set to [n], restoring the
    previous setting afterwards (also on exceptions). *)

val parallel_for : ?domains:int -> int -> (int -> int -> unit) -> unit
(** [parallel_for n body] partitions [0 .. n-1] into one contiguous slice per
    lane and calls [body lo hi] (inclusive bounds) for each slice, lane 0 on
    the calling domain. [body] must write only locations owned by its slice.
    Exceptions raised by any lane are re-raised on the caller (lowest lane
    first). [?domains] overrides the configured lane count for this call. *)

val parallel_map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map_array f a] applies [f] to every element, splitting the work
    across up to [domains] (default {!domains}) lanes. Order is preserved.
    [f] must not rely on shared mutable state: each lane executes a disjoint
    slice. An exception raised by [f] on any lane is re-raised on the caller
    with its original backtrace. Falls back to plain [Array.map] when one
    lane suffices or the array is small. *)

val shutdown : unit -> unit
(** Stop and join all pool workers. Safe to call at any time (also via
    [at_exit]); a later parallel region simply restarts the pool. *)
