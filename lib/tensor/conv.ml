let out_size ~size ~kernel ~stride ~pad =
  let o = ((size + (2 * pad) - kernel) / stride) + 1 in
  if o <= 0 then invalid_arg "Conv.out_size: non-positive output size";
  o

let tconv_out_size ~size ~kernel ~stride ~pad =
  let o = ((size - 1) * stride) - (2 * pad) + kernel in
  if o <= 0 then invalid_arg "Conv.tconv_out_size: non-positive output size";
  o

(* Channel work below this many scalar reads stays serial (same cutoff idea
   as Blas.par_flops); thresholding never changes results. *)
let par_work = 16_384

(* Wide-batch forward mode: lower the whole batch to ONE GEMM over a
   [k x n*cols] column matrix instead of one small GEMM per sample. At
   serving shapes the per-call GEMM overhead (packing setup, dispatch)
   dominates the tiny per-sample matrices, so the wide lowering is the
   lever that makes batched inference beat batch-1 (2-6x on the U-Net
   encoder shapes). Values are bit-identical to the per-sample path: each
   output element's K-accumulation order depends only on the K blocking,
   which is the same for every N, and im2col/col2im keep their per-sample
   loop order. Off by default — training backward passes never use it, and
   the per-sample path remains the reference. *)
let wide_flag =
  Atomic.make
    (match Sys.getenv_opt "CACHEBOX_WIDECONV" with
    | Some ("0" | "off" | "false") -> false
    | Some _ -> true
    | None -> false)

let set_wide_batch b = Atomic.set wide_flag b
let wide_batch () = Atomic.get wide_flag

(* Unfold sample [n] of [x] into a caller-owned [c*k*k x oh*ow] column
   matrix. Only in-bounds positions are written — a set that depends on the
   geometry alone, never the data — so a workspace buffer zeroed once can be
   reused across samples of the same shape without re-zeroing: the padding
   positions stay zero and every written position is overwritten. *)
let im2col_into x ~n ~kernel ~stride ~pad cols =
  let c = Tensor.dim x 1 and h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let oh = out_size ~size:h ~kernel ~stride ~pad in
  let ow = out_size ~size:w ~kernel ~stride ~pad in
  if Tensor.dim cols 0 <> c * kernel * kernel || Tensor.dim cols 1 <> oh * ow then
    invalid_arg "Conv.im2col_into: column matrix shape mismatch";
  let xd = x.Tensor.data and cd = cols.Tensor.data in
  let sample_base = n * c * h * w in
  let ncols = oh * ow in
  (* Channel ci touches only rows [ci*k*k .. (ci+1)*k*k) of the column
     matrix, so channel slices write disjoint regions. *)
  let channels clo chi =
    for ci = clo to chi do
      let chan_base = sample_base + (ci * h * w) in
      for kh = 0 to kernel - 1 do
        for kw = 0 to kernel - 1 do
          let row = (((ci * kernel) + kh) * kernel) + kw in
          let row_base = row * ncols in
          for ohi = 0 to oh - 1 do
            let ih = (ohi * stride) - pad + kh in
            if ih >= 0 && ih < h then begin
              let in_row = chan_base + (ih * w) in
              let out_row = row_base + (ohi * ow) in
              for owi = 0 to ow - 1 do
                let iw = (owi * stride) - pad + kw in
                if iw >= 0 && iw < w then
                  Bigarray.Array1.unsafe_set cd (out_row + owi)
                    (Bigarray.Array1.unsafe_get xd (in_row + iw))
              done
            end
          done
        done
      done
    done
  in
  if c * kernel * kernel * ncols < par_work then channels 0 (c - 1)
  else Dpool.parallel_for c channels

(* Unfold EVERY sample of [x] into one wide [c*k*k x n*oh*ow] column matrix,
   sample ni owning the column band [ni*oh*ow .. (ni+1)*oh*ow). Same zeroing
   contract as im2col_into (only in-bounds positions are written). Samples
   write disjoint column bands, so the sample loop parallelises. *)
let im2col_wide_into x ~kernel ~stride ~pad cols =
  let n = Tensor.dim x 0 and c = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let oh = out_size ~size:h ~kernel ~stride ~pad in
  let ow = out_size ~size:w ~kernel ~stride ~pad in
  let ncols = oh * ow in
  let ld = n * ncols in
  if Tensor.dim cols 0 <> c * kernel * kernel || Tensor.dim cols 1 <> ld then
    invalid_arg "Conv.im2col_wide_into: column matrix shape mismatch";
  let xd = x.Tensor.data and cd = cols.Tensor.data in
  Dpool.parallel_for n (fun nlo nhi ->
      for ni = nlo to nhi do
        let sample_base = ni * c * h * w in
        let col0 = ni * ncols in
        for ci = 0 to c - 1 do
          let chan_base = sample_base + (ci * h * w) in
          for kh = 0 to kernel - 1 do
            for kw = 0 to kernel - 1 do
              let row = (((ci * kernel) + kh) * kernel) + kw in
              let row_base = (row * ld) + col0 in
              for ohi = 0 to oh - 1 do
                let ih = (ohi * stride) - pad + kh in
                if ih >= 0 && ih < h then begin
                  let in_row = chan_base + (ih * w) in
                  let out_row = row_base + (ohi * ow) in
                  for owi = 0 to ow - 1 do
                    let iw = (owi * stride) - pad + kw in
                    if iw >= 0 && iw < w then
                      Bigarray.Array1.unsafe_set cd (out_row + owi)
                        (Bigarray.Array1.unsafe_get xd (in_row + iw))
                  done
                end
              done
            done
          done
        done
      done)

let im2col x ~n ~kernel ~stride ~pad =
  let c = Tensor.dim x 1 and h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let oh = out_size ~size:h ~kernel ~stride ~pad in
  let ow = out_size ~size:w ~kernel ~stride ~pad in
  let cols = Tensor.zeros [| c * kernel * kernel; oh * ow |] in
  im2col_into x ~n ~kernel ~stride ~pad cols;
  cols

let col2im cols ~dst ~n ~channels:nchan ~height ~width ~kernel ~stride ~pad =
  let oh = out_size ~size:height ~kernel ~stride ~pad in
  let ow = out_size ~size:width ~kernel ~stride ~pad in
  if Tensor.dim cols 0 <> nchan * kernel * kernel || Tensor.dim cols 1 <> oh * ow then
    invalid_arg "Conv.col2im: column matrix shape mismatch";
  let cd = cols.Tensor.data and dd = dst.Tensor.data in
  let sample_base = n * nchan * height * width in
  let ncols = oh * ow in
  (* Channel ci accumulates only into its own plane of dst, so channel
     slices write disjoint regions and keep the serial accumulation order
     within each element. *)
  let channels clo chi =
    for ci = clo to chi do
      let chan_base = sample_base + (ci * height * width) in
      for kh = 0 to kernel - 1 do
        for kw = 0 to kernel - 1 do
          let row = (((ci * kernel) + kh) * kernel) + kw in
          let row_base = row * ncols in
          for ohi = 0 to oh - 1 do
            let ih = (ohi * stride) - pad + kh in
            if ih >= 0 && ih < height then begin
              let out_row = chan_base + (ih * width) in
              let col_row = row_base + (ohi * ow) in
              for owi = 0 to ow - 1 do
                let iw = (owi * stride) - pad + kw in
                if iw >= 0 && iw < width then
                  Bigarray.Array1.unsafe_set dd (out_row + iw)
                    (Bigarray.Array1.unsafe_get dd (out_row + iw)
                    +. Bigarray.Array1.unsafe_get cd (col_row + owi))
              done
            end
          done
        done
      done
    done
  in
  if nchan * kernel * kernel * ncols < par_work then channels 0 (nchan - 1)
  else Dpool.parallel_for nchan channels

(* Adjoint of im2col_wide_into: scatter-accumulate each sample's column band
   back into its plane of [dst]. Within a sample the accumulation order per
   element is exactly col2im's, so results stay bit-identical to per-sample
   col2im calls; samples touch disjoint planes so the outer loop
   parallelises. *)
let col2im_wide cols ~dst ~channels:nchan ~height ~width ~kernel ~stride ~pad =
  let n = Tensor.dim dst 0 in
  let oh = out_size ~size:height ~kernel ~stride ~pad in
  let ow = out_size ~size:width ~kernel ~stride ~pad in
  let ncols = oh * ow in
  let ld = n * ncols in
  if Tensor.dim cols 0 <> nchan * kernel * kernel || Tensor.dim cols 1 <> ld then
    invalid_arg "Conv.col2im_wide: column matrix shape mismatch";
  let cd = cols.Tensor.data and dd = dst.Tensor.data in
  Dpool.parallel_for n (fun nlo nhi ->
      for ni = nlo to nhi do
        let sample_base = ni * nchan * height * width in
        let col0 = ni * ncols in
        for ci = 0 to nchan - 1 do
          let chan_base = sample_base + (ci * height * width) in
          for kh = 0 to kernel - 1 do
            for kw = 0 to kernel - 1 do
              let row = (((ci * kernel) + kh) * kernel) + kw in
              let row_base = (row * ld) + col0 in
              for ohi = 0 to oh - 1 do
                let ih = (ohi * stride) - pad + kh in
                if ih >= 0 && ih < height then begin
                  let out_row = chan_base + (ih * width) in
                  let col_row = row_base + (ohi * ow) in
                  for owi = 0 to ow - 1 do
                    let iw = (owi * stride) - pad + kw in
                    if iw >= 0 && iw < width then
                      Bigarray.Array1.unsafe_set dd (out_row + iw)
                        (Bigarray.Array1.unsafe_get dd (out_row + iw)
                        +. Bigarray.Array1.unsafe_get cd (col_row + owi))
                  done
                end
              done
            done
          done
        done
      done)

let add_bias_nchw y bias =
  match bias with
  | None -> ()
  | Some b ->
    let n = Tensor.dim y 0 and c = Tensor.dim y 1 in
    let hw = Tensor.dim y 2 * Tensor.dim y 3 in
    let yd = y.Tensor.data and bd = b.Tensor.data in
    for ni = 0 to n - 1 do
      for ci = 0 to c - 1 do
        let v = Bigarray.Array1.unsafe_get bd ci in
        let base = ((ni * c) + ci) * hw in
        for i = 0 to hw - 1 do
          Bigarray.Array1.unsafe_set yd (base + i)
            (Bigarray.Array1.unsafe_get yd (base + i) +. v)
        done
      done
    done

let bias_grad_nchw gout grad_bias =
  match grad_bias with
  | None -> ()
  | Some gb ->
    let n = Tensor.dim gout 0 and c = Tensor.dim gout 1 in
    let hw = Tensor.dim gout 2 * Tensor.dim gout 3 in
    let gd = gout.Tensor.data and gbd = gb.Tensor.data in
    for ni = 0 to n - 1 do
      for ci = 0 to c - 1 do
        let base = ((ni * c) + ci) * hw in
        let acc = ref 0.0 in
        for i = 0 to hw - 1 do
          acc := !acc +. Bigarray.Array1.unsafe_get gd (base + i)
        done;
        Bigarray.Array1.unsafe_set gbd ci (Bigarray.Array1.unsafe_get gbd ci +. !acc)
      done
    done

let conv2d ~x ~weight ~bias ~stride ~pad =
  let n = Tensor.dim x 0 and ic = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let oc = Tensor.dim weight 0 and kernel = Tensor.dim weight 2 in
  if Tensor.dim weight 1 <> ic then invalid_arg "Conv.conv2d: channel mismatch";
  let oh = out_size ~size:h ~kernel ~stride ~pad in
  let ow = out_size ~size:w ~kernel ~stride ~pad in
  let y = Tensor.zeros [| n; oc; oh; ow |] in
  let wm = Tensor.view weight [| oc; ic * kernel * kernel |] in
  if n > 1 && Atomic.get wide_flag then begin
    (* Wide path: one im2col over the whole batch, ONE GEMM, then a scatter
       from the [oc x n*cols] result back into y's NCHW layout. *)
    let ncols = oh * ow in
    let kk = ic * kernel * kernel in
    Workspace.with_buf ~zero:true [| kk; n * ncols |] (fun cols ->
        Workspace.with_buf [| oc; n * ncols |] (fun ywide ->
            im2col_wide_into x ~kernel ~stride ~pad cols;
            Blas.gemm ~alpha:1.0 ~a:wm ~b:cols ~beta:0.0 ywide;
            let yd = y.Tensor.data and wd = ywide.Tensor.data in
            let ld = n * ncols in
            Dpool.parallel_for n (fun nlo nhi ->
                for ni = nlo to nhi do
                  for ci = 0 to oc - 1 do
                    let src = (ci * ld) + (ni * ncols) in
                    let dst = ((ni * oc) + ci) * ncols in
                    for i = 0 to ncols - 1 do
                      Bigarray.Array1.unsafe_set yd (dst + i)
                        (Bigarray.Array1.unsafe_get wd (src + i))
                    done
                  done
                done)))
  end
  else
    (* Samples are independent and write disjoint planes of y: run them on
       separate domains. Inner kernels (im2col, gemm) detect the nesting and
       stay serial inside a lane; with a single sample they parallelise
       themselves instead. Each lane borrows one column buffer from its
       domain's workspace arena, zeroes it once and reuses it for every sample
       it owns (see im2col_into for why no re-zeroing is needed). *)
    Dpool.parallel_for n (fun nlo nhi ->
        Workspace.with_buf ~zero:true [| ic * kernel * kernel; oh * ow |] (fun cols ->
            for ni = nlo to nhi do
              im2col_into x ~n:ni ~kernel ~stride ~pad cols;
              (* A view into sample ni of the output, as an [oc x oh*ow]
                 matrix sharing storage with [y]. *)
              let sample =
                Tensor.sub_view y ~off:(ni * oc * oh * ow) ~shape:[| oc; oh * ow |]
              in
              Blas.gemm ~alpha:1.0 ~a:wm ~b:cols ~beta:0.0 sample
            done));
  add_bias_nchw y bias;
  y

let conv2d_backward_into ~x ~weight ~gout ~stride ~pad ~grad_weight ~grad_bias ~gx =
  let n = Tensor.dim x 0 and ic = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let oc = Tensor.dim weight 0 and kernel = Tensor.dim weight 2 in
  let oh = Tensor.dim gout 2 and ow = Tensor.dim gout 3 in
  let wm = Tensor.view weight [| oc; ic * kernel * kernel |] in
  let gwm = Tensor.view grad_weight [| oc; ic * kernel * kernel |] in
  if Tensor.shape gx <> [| n; ic; h; w |] then
    invalid_arg "Conv.conv2d_backward_into: gx shape mismatch";
  (* The sample loop stays serial: grad_weight accumulates across samples and
     its float accumulation order is part of the determinism guarantee. The
     kernels inside each iteration (im2col, both gemms, col2im) parallelise
     internally with disjoint-write slices, which keeps every value
     bit-identical to the serial path. [cols] is zeroed once and reused
     across samples; [dcols] is fully overwritten by its beta=0 GEMM. *)
  Workspace.with_buf ~zero:true [| ic * kernel * kernel; oh * ow |] (fun cols ->
      Workspace.with_buf [| ic * kernel * kernel; oh * ow |] (fun dcols ->
          for ni = 0 to n - 1 do
            im2col_into x ~n:ni ~kernel ~stride ~pad cols;
            let gout_m =
              Tensor.sub_view gout ~off:(ni * oc * oh * ow) ~shape:[| oc; oh * ow |]
            in
            (* dW += gout * cols^T *)
            Blas.gemm ~trans_b:true ~alpha:1.0 ~a:gout_m ~b:cols ~beta:1.0 gwm;
            (* dcols = W^T * gout, then fold back into the input plane. *)
            Blas.gemm ~trans_a:true ~alpha:1.0 ~a:wm ~b:gout_m ~beta:0.0 dcols;
            col2im dcols ~dst:gx ~n:ni ~channels:ic ~height:h ~width:w ~kernel ~stride
              ~pad
          done));
  bias_grad_nchw gout grad_bias

let conv2d_backward ~x ~weight ~gout ~stride ~pad ~grad_weight ~grad_bias =
  let gx = Tensor.zeros (Tensor.shape x) in
  conv2d_backward_into ~x ~weight ~gout ~stride ~pad ~grad_weight ~grad_bias ~gx;
  gx

let conv_transpose2d ~x ~weight ~bias ~stride ~pad =
  let n = Tensor.dim x 0 and ic = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  if Tensor.dim weight 0 <> ic then invalid_arg "Conv.conv_transpose2d: channel mismatch";
  let oc = Tensor.dim weight 1 and kernel = Tensor.dim weight 2 in
  let oh = tconv_out_size ~size:h ~kernel ~stride ~pad in
  let ow = tconv_out_size ~size:w ~kernel ~stride ~pad in
  let y = Tensor.zeros [| n; oc; oh; ow |] in
  let wm = Tensor.view weight [| ic; oc * kernel * kernel |] in
  if n > 1 && Atomic.get wide_flag then begin
    (* Wide path: gather x into an [ic x n*hw] matrix (sample column bands),
       ONE GEMM into a wide column matrix, then per-sample col2im. *)
    let hw = h * w in
    let kk = oc * kernel * kernel in
    Workspace.with_buf2 [| ic; n * hw |] [| kk; n * hw |] (fun xwide cols ->
        let xd = x.Tensor.data and xwd = xwide.Tensor.data in
        let ld = n * hw in
        Dpool.parallel_for n (fun nlo nhi ->
            for ni = nlo to nhi do
              for ci = 0 to ic - 1 do
                let src = ((ni * ic) + ci) * hw in
                let dst = (ci * ld) + (ni * hw) in
                for i = 0 to hw - 1 do
                  Bigarray.Array1.unsafe_set xwd (dst + i)
                    (Bigarray.Array1.unsafe_get xd (src + i))
                done
              done
            done);
        Blas.gemm ~trans_a:true ~alpha:1.0 ~a:wm ~b:xwide ~beta:0.0 cols;
        col2im_wide cols ~dst:y ~channels:oc ~height:oh ~width:ow ~kernel ~stride ~pad)
  end
  else
    (* Sample-parallel like conv2d: col2im scatters only into sample ni's
       plane of y, so lanes never share output locations. [cols] is fully
       overwritten by the beta=0 GEMM each sample, so no zeroing is needed. *)
    Dpool.parallel_for n (fun nlo nhi ->
        Workspace.with_buf [| oc * kernel * kernel; h * w |] (fun cols ->
            for ni = nlo to nhi do
              let xm = Tensor.sub_view x ~off:(ni * ic * h * w) ~shape:[| ic; h * w |] in
              Blas.gemm ~trans_a:true ~alpha:1.0 ~a:wm ~b:xm ~beta:0.0 cols;
              col2im cols ~dst:y ~n:ni ~channels:oc ~height:oh ~width:ow ~kernel ~stride
                ~pad
            done));
  add_bias_nchw y bias;
  y

let conv_transpose2d_backward_into ~x ~weight ~gout ~stride ~pad ~grad_weight ~grad_bias
    ~gx =
  let n = Tensor.dim x 0 and ic = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let oc = Tensor.dim weight 1 and kernel = Tensor.dim weight 2 in
  let wm = Tensor.view weight [| ic; oc * kernel * kernel |] in
  let gwm = Tensor.view grad_weight [| ic; oc * kernel * kernel |] in
  if Tensor.shape gx <> [| n; ic; h; w |] then
    invalid_arg "Conv.conv_transpose2d_backward_into: gx shape mismatch";
  (* Serial sample loop for the same reason as conv2d_backward: the weight
     gradient's accumulation order must match the serial path exactly. *)
  Workspace.with_buf ~zero:true [| oc * kernel * kernel; h * w |] (fun cols ->
      for ni = 0 to n - 1 do
        (* The forward pass is col2im(W^T x); its adjoint unfolds gout. *)
        im2col_into gout ~n:ni ~kernel ~stride ~pad cols;
        let xm = Tensor.sub_view x ~off:(ni * ic * h * w) ~shape:[| ic; h * w |] in
        (* dW += x * cols^T *)
        Blas.gemm ~trans_b:true ~alpha:1.0 ~a:xm ~b:cols ~beta:1.0 gwm;
        (* dx = W * cols *)
        let gxm = Tensor.sub_view gx ~off:(ni * ic * h * w) ~shape:[| ic; h * w |] in
        Blas.gemm ~alpha:1.0 ~a:wm ~b:cols ~beta:0.0 gxm
      done);
  bias_grad_nchw gout grad_bias

let conv_transpose2d_backward ~x ~weight ~gout ~stride ~pad ~grad_weight ~grad_bias =
  let gx = Tensor.zeros (Tensor.shape x) in
  conv_transpose2d_backward_into ~x ~weight ~gout ~stride ~pad ~grad_weight ~grad_bias
    ~gx;
  gx

(* --- int8 quantized forwards --- *)

(* Identical dataflow to conv2d/conv_transpose2d with the float GEMM swapped
   for Blas.Int8.gemm: the unfold/scatter plumbing, blocking and per-element
   accumulation orders are shared, so the only numerical difference between
   the float and quantized paths is the quantization itself. The int8
   epilogue fuses dequantization and (for conv2d_q) the per-channel bias;
   a transposed convolution accumulates many GEMM outputs into one output
   pixel through col2im, so its bias cannot ride in the epilogue and is
   applied after the scatter. Both quantized paths are bit-identical across
   the wide/per-sample split and any domain count for the same reason the
   float paths are: integer accumulation is exact and the dequant epilogue
   runs in a fixed per-element K-block order. *)
let conv2d_q ~x ~weight ~act_scale ~kernel ~stride ~pad =
  let n = Tensor.dim x 0 and ic = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let oc = Blas.Int8.rows weight in
  if Blas.Int8.cols weight <> ic * kernel * kernel then
    invalid_arg "Conv.conv2d_q: shape mismatch";
  let oh = out_size ~size:h ~kernel ~stride ~pad in
  let ow = out_size ~size:w ~kernel ~stride ~pad in
  let y = Tensor.zeros [| n; oc; oh; ow |] in
  if n > 1 && Atomic.get wide_flag then begin
    let ncols = oh * ow in
    let kk = ic * kernel * kernel in
    Workspace.with_buf ~zero:true [| kk; n * ncols |] (fun cols ->
        Workspace.with_buf [| oc; n * ncols |] (fun ywide ->
            im2col_wide_into x ~kernel ~stride ~pad cols;
            Blas.Int8.gemm ~a:weight ~act_scale ~b:cols ywide;
            let yd = y.Tensor.data and wd = ywide.Tensor.data in
            let ld = n * ncols in
            Dpool.parallel_for n (fun nlo nhi ->
                for ni = nlo to nhi do
                  for ci = 0 to oc - 1 do
                    let src = (ci * ld) + (ni * ncols) in
                    let dst = ((ni * oc) + ci) * ncols in
                    for i = 0 to ncols - 1 do
                      Bigarray.Array1.unsafe_set yd (dst + i)
                        (Bigarray.Array1.unsafe_get wd (src + i))
                    done
                  done
                done)))
  end
  else
    Dpool.parallel_for n (fun nlo nhi ->
        Workspace.with_buf ~zero:true [| ic * kernel * kernel; oh * ow |] (fun cols ->
            for ni = nlo to nhi do
              im2col_into x ~n:ni ~kernel ~stride ~pad cols;
              let sample =
                Tensor.sub_view y ~off:(ni * oc * oh * ow) ~shape:[| oc; oh * ow |]
              in
              Blas.Int8.gemm ~a:weight ~act_scale ~b:cols sample
            done));
  y

let conv_transpose2d_q ~x ~weight ~act_scale ~bias ~kernel ~stride ~pad =
  let n = Tensor.dim x 0 and ic = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let kk = Blas.Int8.rows weight in
  if Blas.Int8.cols weight <> ic || kk mod (kernel * kernel) <> 0 then
    invalid_arg "Conv.conv_transpose2d_q: shape mismatch";
  let oc = kk / (kernel * kernel) in
  let oh = tconv_out_size ~size:h ~kernel ~stride ~pad in
  let ow = tconv_out_size ~size:w ~kernel ~stride ~pad in
  let y = Tensor.zeros [| n; oc; oh; ow |] in
  if n > 1 && Atomic.get wide_flag then begin
    let hw = h * w in
    Workspace.with_buf2 [| ic; n * hw |] [| kk; n * hw |] (fun xwide cols ->
        let xd = x.Tensor.data and xwd = xwide.Tensor.data in
        let ld = n * hw in
        Dpool.parallel_for n (fun nlo nhi ->
            for ni = nlo to nhi do
              for ci = 0 to ic - 1 do
                let src = ((ni * ic) + ci) * hw in
                let dst = (ci * ld) + (ni * hw) in
                for i = 0 to hw - 1 do
                  Bigarray.Array1.unsafe_set xwd (dst + i)
                    (Bigarray.Array1.unsafe_get xd (src + i))
                done
              done
            done);
        Blas.Int8.gemm ~a:weight ~act_scale ~b:xwide cols;
        col2im_wide cols ~dst:y ~channels:oc ~height:oh ~width:ow ~kernel ~stride ~pad)
  end
  else
    Dpool.parallel_for n (fun nlo nhi ->
        Workspace.with_buf [| kk; h * w |] (fun cols ->
            for ni = nlo to nhi do
              let xm = Tensor.sub_view x ~off:(ni * ic * h * w) ~shape:[| ic; h * w |] in
              Blas.Int8.gemm ~a:weight ~act_scale ~b:xm cols;
              col2im cols ~dst:y ~n:ni ~channels:oc ~height:oh ~width:ow ~kernel ~stride
                ~pad
            done));
  add_bias_nchw y bias;
  y
