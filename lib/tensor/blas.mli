(** Dense linear algebra kernels over 2-D {!Tensor.t} values.

    These are the hot loops of the neural-network stack: everything
    convolutional is lowered onto {!gemm} through im2col (see {!Conv}).

    The production GEMM is cache-blocked and panel-packed: A and B are
    copied into contiguous MR-tall / NR-wide k-major micro-panels one
    MC x KC / KC x NC block at a time (packing buffers come from the
    {!Workspace} arena, so steady state allocates nothing), and an MR x NR
    register microkernel accumulates each KC block before flushing to C.
    Transposes are absorbed by the packing — [trans_a]/[trans_b] never
    materialise a transposed copy on this path.

    Determinism contract: results are bit-identical for every domain count.
    The pool partitions rows of C in MR-aligned panels and every element's
    accumulation order depends only on the KC block grid, never on lane
    boundaries. *)

type kernel_impl =
  | Reference  (** previous two-row-blocked kernel, kept for benchmarking *)
  | Tiled  (** cache-blocked, packed production kernel (default) *)

val set_kernel : kernel_impl -> unit
val kernel : unit -> kernel_impl
(** Kernel selection; defaults to [Tiled], or [Reference] when
    [CACHEBOX_KERNEL=ref] is set. Both implementations satisfy the full
    {!gemm} contract. *)

val set_small_cutoff : int -> unit
(** Multiply-add count below which {!gemm} uses the serial row kernel
    instead of packing panels (default 16384). Exposed so tests can force
    tiny shapes through the tiled path; results never depend on it. *)

val gemm :
  ?trans_a:bool ->
  ?trans_b:bool ->
  alpha:float ->
  a:Tensor.t ->
  b:Tensor.t ->
  beta:float ->
  Tensor.t ->
  unit
(** [gemm ~alpha ~a ~b ~beta c] computes [c <- alpha * op(a) * op(b) + beta * c]
    where [op] optionally transposes. All of [a], [b], [c] are 2-D; inner
    dimensions must agree. *)

val matmul : Tensor.t -> Tensor.t -> Tensor.t
(** [matmul a b] allocates [a * b] for 2-D [a], [b]. *)

val transpose : Tensor.t -> Tensor.t
(** Fresh transposed copy of a 2-D tensor. *)

val transpose_into : src:Tensor.t -> dst:Tensor.t -> unit
(** Writes [src]'s transpose into caller-owned [dst] (no allocation); [dst]
    must have the transposed element count. *)

val gemv : a:Tensor.t -> x:Tensor.t -> Tensor.t
(** [gemv ~a ~x] is the matrix-vector product for 2-D [a] and 1-D [x]. *)
