(** Dense linear algebra kernels over 2-D {!Tensor.t} values.

    These are the hot loops of the neural-network stack: everything
    convolutional is lowered onto {!gemm} through im2col (see {!Conv}).

    The production GEMM is cache-blocked and panel-packed: A and B are
    copied into contiguous MR-tall / NR-wide k-major micro-panels one
    MC x KC / KC x NC block at a time (packing buffers come from the
    {!Workspace} arena, so steady state allocates nothing), and an MR x NR
    register microkernel accumulates each KC block before flushing to C.
    Transposes are absorbed by the packing — [trans_a]/[trans_b] never
    materialise a transposed copy on this path.

    Determinism contract: results are bit-identical for every domain count.
    The pool partitions rows of C in MR-aligned panels and every element's
    accumulation order depends only on the KC block grid, never on lane
    boundaries. *)

type kernel_impl =
  | Reference  (** previous two-row-blocked kernel, kept for benchmarking *)
  | Tiled  (** cache-blocked, packed production kernel (default) *)

val set_kernel : kernel_impl -> unit
val kernel : unit -> kernel_impl
(** Kernel selection; defaults to [Tiled], or [Reference] when
    [CACHEBOX_KERNEL=ref] is set. Both implementations satisfy the full
    {!gemm} contract. *)

val set_small_cutoff : int -> unit
(** Multiply-add count below which {!gemm} uses the serial row kernel
    instead of packing panels (default 16384). Exposed so tests can force
    tiny shapes through the tiled path; results never depend on it. *)

val gemm :
  ?trans_a:bool ->
  ?trans_b:bool ->
  alpha:float ->
  a:Tensor.t ->
  b:Tensor.t ->
  beta:float ->
  Tensor.t ->
  unit
(** [gemm ~alpha ~a ~b ~beta c] computes [c <- alpha * op(a) * op(b) + beta * c]
    where [op] optionally transposes. All of [a], [b], [c] are 2-D; inner
    dimensions must agree. *)

val matmul : Tensor.t -> Tensor.t -> Tensor.t
(** [matmul a b] allocates [a * b] for 2-D [a], [b]. *)

val transpose : Tensor.t -> Tensor.t
(** Fresh transposed copy of a 2-D tensor. *)

val transpose_into : src:Tensor.t -> dst:Tensor.t -> unit
(** Writes [src]'s transpose into caller-owned [dst] (no allocation); [dst]
    must have the transposed element count. *)

val gemv : a:Tensor.t -> x:Tensor.t -> Tensor.t
(** [gemv ~a ~x] is the matrix-vector product for 2-D [a] and 1-D [x]. *)

(** Int8 quantized GEMM micro-path.

    Same blocking grid and MR=NR=4 panel discipline as the float32 kernel,
    but the weight operand is quantized symmetrically (per-output-row
    scales, q in [-127, 127]) and prepacked ONCE into byte micro-panels,
    while the activation operand is quantized per call with a single
    per-tensor scale during packing. Packed activation columns travel in
    pairs — two offset-encoded 32-bit lanes per native int — so a k-step
    of the microkernel does 8 integer multiply-adds for a full 4x4 tile.
    Integer accumulation over a KC block is exact (no lane can overflow or
    carry); the epilogue recovers the signed dot products, dequantizes
    with [weight_scale * act_scale] and fuses the optional per-row bias.

    Determinism contract: identical to the float kernel — bit-identical
    results at every domain count. *)
module Int8 : sig
  type qweight
  (** A quantized, prepacked weight matrix (plus scales, per-block row
      sums, and an optional fused bias). *)

  val quantize : ?trans:bool -> ?pow2:bool -> ?bias:float array -> Tensor.t -> qweight
  (** [quantize w] quantizes op(w) (2-D; [trans] selects the transpose)
      with symmetric per-output-row scales [maxabs/127] ([pow2] rounds each
      scale up to the next power of two) and packs it. [bias] (length =
      output rows) is fused into the {!gemm} epilogue. *)

  val pack :
    m:int ->
    k:int ->
    scales:float array ->
    ?bias:float array ->
    get:(int -> int -> int) ->
    unit ->
    qweight
  (** Rebuild a [qweight] from already-quantized values: [get i p] must
      return the signed int8 value of row [i], depth [p] (clamped to
      [-127, 127]). This is the deserialization path — a quantized
      checkpoint stores canonical bytes + scales and repacks on load
      without ever materializing float weights. *)

  val gemm : ?trans_b:bool -> a:qweight -> act_scale:float -> b:Tensor.t -> Tensor.t -> unit
  (** [gemm ~a ~act_scale ~b c] overwrites [c] with
      [dequant(a * quant(op(b))) + bias]: op(b) is quantized on the fly at
      the symmetric per-tensor scale [act_scale] while packing. [c] must be
      [rows a] x [cols op(b)]. *)

  val rows : qweight -> int
  val cols : qweight -> int
  val scales : qweight -> float array
  val bias : qweight -> float array option

  val get_q : qweight -> i:int -> p:int -> int
  (** Signed quantized value at (row, depth) — the serialization readback. *)

  val pow2_up : float -> float
  (** Smallest power of two >= the argument (exact; 1.0 for non-positive). *)
end
