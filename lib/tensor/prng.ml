type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

(* FNV-1a over the label bytes, folded into a 64-bit seed. *)
let of_label label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    label;
  { state = mix64 !h }

let state g = g.state
let set_state g s = g.state <- s

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g = { state = next_int64 g }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value stays non-negative in OCaml's 63-bit int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  r mod bound

let float g bound =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  bits /. 9007199254740992.0 *. bound

let bool g = Int64.logand (next_int64 g) 1L = 1L

let gauss g =
  let rec draw () =
    let u = float g 1.0 in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () and u2 = float g 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let uniform g ~lo ~hi = lo +. float g (hi -. lo)

(* Rejection-inversion sampling for the Zipf distribution (Hormann &
   Derflinger). Values are returned 0-based. *)
let zipf g ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  if n = 1 then 0
  else begin
    (* The near-1 test is hoisted out of the sampling loop, and h (k + 0.5)
       is computed once per candidate; pow (x, 1.0) = x exactly (IEEE 754),
       so dropping the ** 1.0 changes no bits. *)
    let log_case = Float.abs (s -. 1.0) < 1e-9 in
    let h x = if log_case then log x else (x ** (1.0 -. s)) /. (1.0 -. s) in
    let h_inv x =
      if log_case then exp x else ((1.0 -. s) *. x) ** (1.0 /. (1.0 -. s))
    in
    let nf = Float.of_int n in
    let h_x1 = h 1.5 -. 1.0 in
    let h_n = h (nf +. 0.5) in
    let rec loop () =
      let u = h_x1 +. (float g 1.0 *. (h_n -. h_x1)) in
      let x = h_inv u in
      let k = Float.round x in
      let k = Float.max 1.0 (Float.min nf k) in
      let hk = h (k +. 0.5) in
      if k -. x <= 1.0 -. (hk -. u) || u >= hk -. (k ** -.s) then int_of_float k - 1
      else loop ()
    in
    loop ()
  end

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))
