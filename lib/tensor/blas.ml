let check_2d name t =
  if Array.length (Tensor.shape t) <> 2 then invalid_arg (name ^ ": expected 2-D tensor")

let transpose_into ~src ~dst =
  let m = Tensor.dim src 0 and n = Tensor.dim src 1 in
  let td = src.Tensor.data and rd = dst.Tensor.data in
  for i = 0 to m - 1 do
    let row = i * n in
    for j = 0 to n - 1 do
      Bigarray.Array1.unsafe_set rd ((j * m) + i) (Bigarray.Array1.unsafe_get td (row + j))
    done
  done

let transpose t =
  check_2d "Blas.transpose" t;
  let m = Tensor.dim t 0 and n = Tensor.dim t 1 in
  let r = Tensor.create [| n; m |] in
  transpose_into ~src:t ~dst:r;
  r

(* --- kernel selection ---

   [Tiled] is the cache-blocked, panel-packed production kernel. [Reference]
   is the previous two-row-blocked kernel (with materialised transposes and
   no packing), kept callable so the kernels benchmark can measure the
   speedup honestly on the same machine and so a regression can be bisected
   at runtime (CACHEBOX_KERNEL=ref). Both satisfy the same contract:
   bit-identical results at every domain count. *)

type kernel_impl = Reference | Tiled

let kernel_of_env () =
  match Sys.getenv_opt "CACHEBOX_KERNEL" with
  | Some ("ref" | "reference" | "naive") -> Reference
  | Some _ | None -> Tiled

let selected = ref (kernel_of_env ())
let set_kernel k = selected := k
let kernel () = !selected

(* Minimum multiply-add count before a kernel is worth packing panels or
   fanning out over the domain pool; below it the overhead dominates.
   Thresholding never affects results: the small path runs the same scalar
   recurrence serially. *)
let par_flops = 16_384
let small_cutoff = ref par_flops
let set_small_cutoff n = small_cutoff := max 0 n

(* --- reference kernel (previous implementation, unchanged) ---

   Core kernel over rows [row_lo .. row_hi] (inclusive) of the output:
   c[i,:] += alpha * a[i,:] * b, with an i-k-j loop order so the inner loop
   streams contiguously over b and c. Two rows of A per pass halve the
   traffic on B. Row slices handed to the pool are aligned to even row pairs
   so the pairing — and with it the exact float behaviour — matches the
   serial pass over [0 .. m-1]. *)
let gemm_rows ~alpha ~ad ~bd ~cd ~k ~n ~row_lo ~row_hi =
  let i = ref row_lo in
  while !i <= row_hi do
    let two_rows = !i + 1 <= row_hi in
    let a_row0 = !i * k and a_row1 = (!i + 1) * k in
    let c_row0 = !i * n and c_row1 = (!i + 1) * n in
    for p = 0 to k - 1 do
      let a0 = alpha *. Bigarray.Array1.unsafe_get ad (a_row0 + p) in
      let a1 =
        if two_rows then alpha *. Bigarray.Array1.unsafe_get ad (a_row1 + p) else 0.0
      in
      if a0 <> 0.0 || a1 <> 0.0 then begin
        let b_row = p * n in
        if two_rows then
          for j = 0 to n - 1 do
            let bv = Bigarray.Array1.unsafe_get bd (b_row + j) in
            Bigarray.Array1.unsafe_set cd (c_row0 + j)
              (Bigarray.Array1.unsafe_get cd (c_row0 + j) +. (a0 *. bv));
            Bigarray.Array1.unsafe_set cd (c_row1 + j)
              (Bigarray.Array1.unsafe_get cd (c_row1 + j) +. (a1 *. bv))
          done
        else
          for j = 0 to n - 1 do
            Bigarray.Array1.unsafe_set cd (c_row0 + j)
              (Bigarray.Array1.unsafe_get cd (c_row0 + j)
              +. (a0 *. Bigarray.Array1.unsafe_get bd (b_row + j)))
          done
      end
    done;
    i := !i + if two_rows then 2 else 1
  done

let gemm_nn_ref ~alpha ~a ~b ~c ~m ~k ~n =
  let ad = a.Tensor.data and bd = b.Tensor.data and cd = c.Tensor.data in
  if m * n * k < par_flops then gemm_rows ~alpha ~ad ~bd ~cd ~k ~n ~row_lo:0 ~row_hi:(m - 1)
  else begin
    (* Slice ownership in units of row pairs keeps the two-row blocking of
       the serial pass intact, so results are bit-identical for any lane
       count. Each lane writes only its own rows of c. *)
    let npairs = (m + 1) / 2 in
    Dpool.parallel_for npairs (fun plo phi ->
        gemm_rows ~alpha ~ad ~bd ~cd ~k ~n ~row_lo:(2 * plo)
          ~row_hi:(min (m - 1) ((2 * phi) + 1)))
  end

(* --- tiled & packed kernel ---

   Classic three-level blocking: C is computed in NC-wide column blocks; for
   each, B is packed one KC x NC panel at a time into NR-wide column
   micro-panels (k-major, zero-padded to a whole panel), and A is packed one
   MC x KC block at a time into MR-tall row micro-panels with alpha folded
   in. The MR x NR register microkernel then accumulates a full KC block
   into local accumulators and flushes to C once.

   Determinism: an element (i, j) of C receives exactly one contribution per
   (jc, pc) block, in pc order, each computed by the same scalar k-ordered
   recurrence. The domain pool partitions rows of C in MR-aligned panels, so
   lane boundaries change neither the KC grid nor any element's accumulation
   order — results are bit-identical for every domain count. Zero padding in
   the packed panels only feeds accumulators whose rows/columns fall outside
   the matrix and are never written back. *)

let mr = 4
let nr = 4
let kc_blk = 256
let mc_blk = 64
let nc_blk = 256

(* Pack op(A)[i0 .. i0+mcur-1, p0 .. p0+kcur-1] as MR-tall k-major panels
   with [alpha] folded in; rows past [mcur] pack as zero. [ac] is the stored
   column count of [a] (its leading dimension). *)
let pack_a ~trans ~alpha ad ~ac ~i0 ~mcur ~p0 ~kcur dst =
  let panels = (mcur + mr - 1) / mr in
  for pi = 0 to panels - 1 do
    let base = pi * mr * kcur in
    let row0 = i0 + (pi * mr) in
    for p = 0 to kcur - 1 do
      let o = base + (p * mr) in
      let kp = p0 + p in
      for r = 0 to mr - 1 do
        let i = row0 + r in
        let v =
          if i < i0 + mcur then
            alpha
            *. (if trans then Bigarray.Array1.unsafe_get ad ((kp * ac) + i)
                else Bigarray.Array1.unsafe_get ad ((i * ac) + kp))
          else 0.0
        in
        Bigarray.Array1.unsafe_set dst (o + r) v
      done
    done
  done

(* Pack op(B)[p0 .. p0+kcur-1, j0 .. j0+ncur-1] as NR-wide k-major panels;
   columns past [ncur] pack as zero. [bc] is [b]'s stored column count. *)
let pack_b ~trans bd ~bc ~p0 ~kcur ~j0 ~ncur dst =
  let panels = (ncur + nr - 1) / nr in
  for pj = 0 to panels - 1 do
    let base = pj * nr * kcur in
    let col0 = j0 + (pj * nr) in
    for p = 0 to kcur - 1 do
      let o = base + (p * nr) in
      let kp = p0 + p in
      for cc = 0 to nr - 1 do
        let j = col0 + cc in
        let v =
          if j < j0 + ncur then
            if trans then Bigarray.Array1.unsafe_get bd ((j * bc) + kp)
            else Bigarray.Array1.unsafe_get bd ((kp * bc) + j)
          else 0.0
        in
        Bigarray.Array1.unsafe_set dst (o + cc) v
      done
    done
  done

(* 4x4 register microkernel: accumulate a full KC block in k order into 16
   local accumulators, then flush [rows] x [cols] of them to C (the rest
   belong to zero-padded edge rows/columns and are discarded). *)
let kern4x4 ap a0 bp b0 ~kcur cd ~c0 ~ldc ~rows ~cols =
  let acc00 = ref 0.0 and acc01 = ref 0.0 and acc02 = ref 0.0 and acc03 = ref 0.0 in
  let acc10 = ref 0.0 and acc11 = ref 0.0 and acc12 = ref 0.0 and acc13 = ref 0.0 in
  let acc20 = ref 0.0 and acc21 = ref 0.0 and acc22 = ref 0.0 and acc23 = ref 0.0 in
  let acc30 = ref 0.0 and acc31 = ref 0.0 and acc32 = ref 0.0 and acc33 = ref 0.0 in
  let ai = ref a0 and bi = ref b0 in
  for _p = 1 to kcur do
    let x0 = Bigarray.Array1.unsafe_get ap !ai
    and x1 = Bigarray.Array1.unsafe_get ap (!ai + 1)
    and x2 = Bigarray.Array1.unsafe_get ap (!ai + 2)
    and x3 = Bigarray.Array1.unsafe_get ap (!ai + 3) in
    let y0 = Bigarray.Array1.unsafe_get bp !bi
    and y1 = Bigarray.Array1.unsafe_get bp (!bi + 1)
    and y2 = Bigarray.Array1.unsafe_get bp (!bi + 2)
    and y3 = Bigarray.Array1.unsafe_get bp (!bi + 3) in
    acc00 := !acc00 +. (x0 *. y0);
    acc01 := !acc01 +. (x0 *. y1);
    acc02 := !acc02 +. (x0 *. y2);
    acc03 := !acc03 +. (x0 *. y3);
    acc10 := !acc10 +. (x1 *. y0);
    acc11 := !acc11 +. (x1 *. y1);
    acc12 := !acc12 +. (x1 *. y2);
    acc13 := !acc13 +. (x1 *. y3);
    acc20 := !acc20 +. (x2 *. y0);
    acc21 := !acc21 +. (x2 *. y1);
    acc22 := !acc22 +. (x2 *. y2);
    acc23 := !acc23 +. (x2 *. y3);
    acc30 := !acc30 +. (x3 *. y0);
    acc31 := !acc31 +. (x3 *. y1);
    acc32 := !acc32 +. (x3 *. y2);
    acc33 := !acc33 +. (x3 *. y3);
    ai := !ai + 4;
    bi := !bi + 4
  done;
  if rows = 4 && cols = 4 then begin
    let r0 = c0 and r1 = c0 + ldc in
    let r2 = r1 + ldc in
    let r3 = r2 + ldc in
    Bigarray.Array1.unsafe_set cd r0 (Bigarray.Array1.unsafe_get cd r0 +. !acc00);
    Bigarray.Array1.unsafe_set cd (r0 + 1) (Bigarray.Array1.unsafe_get cd (r0 + 1) +. !acc01);
    Bigarray.Array1.unsafe_set cd (r0 + 2) (Bigarray.Array1.unsafe_get cd (r0 + 2) +. !acc02);
    Bigarray.Array1.unsafe_set cd (r0 + 3) (Bigarray.Array1.unsafe_get cd (r0 + 3) +. !acc03);
    Bigarray.Array1.unsafe_set cd r1 (Bigarray.Array1.unsafe_get cd r1 +. !acc10);
    Bigarray.Array1.unsafe_set cd (r1 + 1) (Bigarray.Array1.unsafe_get cd (r1 + 1) +. !acc11);
    Bigarray.Array1.unsafe_set cd (r1 + 2) (Bigarray.Array1.unsafe_get cd (r1 + 2) +. !acc12);
    Bigarray.Array1.unsafe_set cd (r1 + 3) (Bigarray.Array1.unsafe_get cd (r1 + 3) +. !acc13);
    Bigarray.Array1.unsafe_set cd r2 (Bigarray.Array1.unsafe_get cd r2 +. !acc20);
    Bigarray.Array1.unsafe_set cd (r2 + 1) (Bigarray.Array1.unsafe_get cd (r2 + 1) +. !acc21);
    Bigarray.Array1.unsafe_set cd (r2 + 2) (Bigarray.Array1.unsafe_get cd (r2 + 2) +. !acc22);
    Bigarray.Array1.unsafe_set cd (r2 + 3) (Bigarray.Array1.unsafe_get cd (r2 + 3) +. !acc23);
    Bigarray.Array1.unsafe_set cd r3 (Bigarray.Array1.unsafe_get cd r3 +. !acc30);
    Bigarray.Array1.unsafe_set cd (r3 + 1) (Bigarray.Array1.unsafe_get cd (r3 + 1) +. !acc31);
    Bigarray.Array1.unsafe_set cd (r3 + 2) (Bigarray.Array1.unsafe_get cd (r3 + 2) +. !acc32);
    Bigarray.Array1.unsafe_set cd (r3 + 3) (Bigarray.Array1.unsafe_get cd (r3 + 3) +. !acc33)
  end
  else begin
    let accs =
      [|
        !acc00; !acc01; !acc02; !acc03; !acc10; !acc11; !acc12; !acc13;
        !acc20; !acc21; !acc22; !acc23; !acc30; !acc31; !acc32; !acc33;
      |]
    in
    for r = 0 to rows - 1 do
      let row = c0 + (r * ldc) in
      for c = 0 to cols - 1 do
        Bigarray.Array1.unsafe_set cd (row + c)
          (Bigarray.Array1.unsafe_get cd (row + c) +. accs.((r * 4) + c))
      done
    done
  end

(* One lane's share: rows [row_lo .. row_hi] of C, full jc -> pc -> ic block
   sweep. [ap]/[bp] are this lane's packing buffers (>= mc_blk*kc_blk and
   nc_blk*kc_blk elements). *)
let gemm_tile_rows ~trans_a ~trans_b ~alpha ~ad ~ac ~bd ~bc ~cd ~k ~n ~row_lo ~row_hi ~ap
    ~bp =
  let jc = ref 0 in
  while !jc < n do
    let ncur = min nc_blk (n - !jc) in
    let pc = ref 0 in
    while !pc < k do
      let kcur = min kc_blk (k - !pc) in
      pack_b ~trans:trans_b bd ~bc ~p0:!pc ~kcur ~j0:!jc ~ncur bp;
      let ic = ref row_lo in
      while !ic <= row_hi do
        let mcur = min mc_blk (row_hi - !ic + 1) in
        pack_a ~trans:trans_a ~alpha ad ~ac ~i0:!ic ~mcur ~p0:!pc ~kcur ap;
        let mpan = (mcur + mr - 1) / mr and npan = (ncur + nr - 1) / nr in
        (* NR-panel outer, MR-panel inner: the KC x NR sliver of packed B
           stays hot in L1 while the whole packed A block streams past it. *)
        for pj = 0 to npan - 1 do
          let cols = min nr (ncur - (pj * nr)) in
          let b0 = pj * nr * kcur and jcol = !jc + (pj * nr) in
          for pi = 0 to mpan - 1 do
            let rows = min mr (mcur - (pi * mr)) in
            kern4x4 ap (pi * mr * kcur) bp b0 ~kcur cd
              ~c0:(((!ic + (pi * mr)) * n) + jcol)
              ~ldc:n ~rows ~cols
          done
        done;
        ic := !ic + mcur
      done;
      pc := !pc + kcur
    done;
    jc := !jc + ncur
  done

let gemm_tiled ~trans_a ~trans_b ~alpha ~a ~b ~c ~m ~k ~n =
  let ad = a.Tensor.data and bd = b.Tensor.data and cd = c.Tensor.data in
  let ac = Tensor.dim a 1 and bc = Tensor.dim b 1 in
  (* Row ownership in MR-aligned panels: every lane runs the same jc/pc
     block grid over its own rows, so results are bit-identical for any
     lane count (see the module comment above). *)
  let npanels = (m + mr - 1) / mr in
  Dpool.parallel_for npanels (fun plo phi ->
      let row_lo = plo * mr and row_hi = min (m - 1) ((phi * mr) + mr - 1) in
      Workspace.with_buf2 [| mc_blk * kc_blk |] [| nc_blk * kc_blk |] (fun apt bpt ->
          gemm_tile_rows ~trans_a ~trans_b ~alpha ~ad ~ac ~bd ~bc ~cd ~k ~n ~row_lo
            ~row_hi ~ap:apt.Tensor.data ~bp:bpt.Tensor.data))

(* Materialise op(t) (dims rows x cols) into workspace scratch when a
   transpose is requested; the small path's row kernel wants plain NN
   operands but must not allocate. *)
let with_op ~trans t ~rows ~cols f =
  if not trans then f t
  else
    Workspace.with_buf [| rows; cols |] (fun dst ->
        transpose_into ~src:t ~dst;
        f dst)

let gemm ?(trans_a = false) ?(trans_b = false) ~alpha ~a ~b ~beta c =
  check_2d "Blas.gemm a" a;
  check_2d "Blas.gemm b" b;
  check_2d "Blas.gemm c" c;
  let m = Tensor.dim a (if trans_a then 1 else 0) in
  let k = Tensor.dim a (if trans_a then 0 else 1) in
  let k2 = Tensor.dim b (if trans_b then 1 else 0) in
  let n = Tensor.dim b (if trans_b then 0 else 1) in
  if k <> k2 then invalid_arg "Blas.gemm: inner dimension mismatch";
  if Tensor.dim c 0 <> m || Tensor.dim c 1 <> n then
    invalid_arg "Blas.gemm: output dimension mismatch";
  if beta = 0.0 then Tensor.fill c 0.0 else if beta <> 1.0 then Tensor.scale_ c beta;
  if alpha = 0.0 then ()
  else
    match !selected with
    | Reference ->
      let a = if trans_a then transpose a else a in
      let b = if trans_b then transpose b else b in
      gemm_nn_ref ~alpha ~a ~b ~c ~m ~k ~n
    | Tiled ->
      if m * n * k < !small_cutoff then
        with_op ~trans:trans_a a ~rows:m ~cols:k (fun a ->
            with_op ~trans:trans_b b ~rows:k ~cols:n (fun b ->
                gemm_rows ~alpha ~ad:a.Tensor.data ~bd:b.Tensor.data ~cd:c.Tensor.data
                  ~k ~n ~row_lo:0 ~row_hi:(m - 1)))
      else gemm_tiled ~trans_a ~trans_b ~alpha ~a ~b ~c ~m ~k ~n

let matmul a b =
  let m = Tensor.dim a 0 and n = Tensor.dim b 1 in
  let c = Tensor.zeros [| m; n |] in
  gemm ~alpha:1.0 ~a ~b ~beta:0.0 c;
  c

let gemv ~a ~x =
  check_2d "Blas.gemv" a;
  if Array.length (Tensor.shape x) <> 1 then invalid_arg "Blas.gemv: x must be 1-D";
  let m = Tensor.dim a 0 and n = Tensor.dim a 1 in
  if Tensor.dim x 0 <> n then invalid_arg "Blas.gemv: dimension mismatch";
  let r = Tensor.zeros [| m |] in
  let ad = a.Tensor.data and xd = x.Tensor.data and rd = r.Tensor.data in
  let rows row_lo row_hi =
    for i = row_lo to row_hi do
      let row = i * n in
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc := !acc +. (Bigarray.Array1.unsafe_get ad (row + j) *. Bigarray.Array1.unsafe_get xd j)
      done;
      Bigarray.Array1.unsafe_set rd i !acc
    done
  in
  (* Each row's dot product is self-contained, so row slices are bit-identical
     to the serial loop. *)
  if m * n < par_flops then rows 0 (m - 1) else Dpool.parallel_for m rows;
  r

(* --- int8 quantized GEMM micro-path ---

   Same MC/KC/NC grid and MR=NR=4 panel discipline as the float32 kernel,
   but the weight side is quantized once (symmetric per-output-row scales,
   q in [-127, 127]) and prepacked at load time into MR-tall k-major byte
   panels, and the activation side is quantized per call (one symmetric
   per-tensor scale) while packing.

   Arithmetic: values are stored offset-encoded as ua = q + 128 in
   [1, 255], and each packed-B word carries TWO adjacent columns in 32-bit
   lanes of one 63-bit native int (col j in bits 0-31, col j+1 in bits
   32-62). A k-step of the microkernel is then 4 byte loads + 2 word loads
   + 8 integer multiply-adds covering the full 4x4 tile — half the
   multiplies of the float kernel, on smaller operands. Per KC block the
   low lane is bounded by 256*255*255 < 2^25 (so it never carries into the
   high lane) and the whole word by ~2^57 < 2^62, so the accumulation is
   exact. The epilogue recovers the signed dot product per lane as

     sum(qa*qb) = lane - 128*(sum(qa) + sum(qb)) - 128*128*kcur

   using row sums recorded at quantize time and column sums recorded while
   packing, then dequantizes with scale_w[i] * act_scale and adds the
   (optional) fused bias on the first KC block.

   Determinism: identical to the float kernel — lanes own MR-aligned row
   panels, every output element accumulates one float contribution per KC
   block in pc order, and the integer part is exact, so results are
   bit-identical at every domain count. *)

module Int8 = struct
  type qweight = {
    qm : int;
    qk : int;
    qpack : (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t;
        (* ua bytes; KC-major blocks of MR-tall k-major panels, padded rows = 128 *)
    qscales : float array;  (* per-output-row dequant scale, length qm *)
    qrow_sums : int array;  (* signed q row sums, one per (KC block, row) *)
    qbias : float array option;
  }

  let rows t = t.qm
  let cols t = t.qk
  let scales t = t.qscales
  let bias t = t.qbias

  (* Round-to-nearest (ties away from zero), clamped to the symmetric int8
     range. [inv] is the reciprocal scale. Truncation after a signed 0.5
     bump is round-half-away and compiles to the cvttsd2si intrinsic —
     packing runs on every call, so no C call here. *)
  let[@inline] q8 x inv =
    let v = x *. inv in
    let r =
      if v >= 0.0 then int_of_float (v +. 0.5) else -int_of_float (0.5 -. v)
    in
    if r > 127 then 127 else if r < -127 then -127 else r

  (* Smallest power of two >= s (exact for finite positive s). Power-of-two
     scales keep dequantization multipliers exactly representable, which is
     friendly to cross-platform bit-identity of serialized models. *)
  let pow2_up s =
    if s <= 0.0 then 1.0
    else
      let m, e = Float.frexp s in
      if m = 0.5 then s else Float.ldexp 1.0 e

  let nblocks k = (k + kc_blk - 1) / kc_blk
  let npanels m = (m + mr - 1) / mr

  (* Offset of (row i, depth p) in the packed byte layout. *)
  let pack_index ~m ~k ~i ~p =
    let npan = npanels m in
    let b = p / kc_blk in
    let p0 = b * kc_blk in
    let kcur = min kc_blk (k - p0) in
    (npan * mr * p0) + (i / mr * mr * kcur) + ((p - p0) * mr) + (i mod mr)

  let pack ~m ~k ~scales ?bias ~get () =
    if m <= 0 || k <= 0 then invalid_arg "Blas.Int8.pack: dims must be positive";
    if Array.length scales <> m then invalid_arg "Blas.Int8.pack: scales length";
    (match bias with
    | Some b when Array.length b <> m -> invalid_arg "Blas.Int8.pack: bias length"
    | _ -> ());
    let npan = npanels m and nblk = nblocks k in
    let qpack =
      Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout (npan * mr * k)
    in
    let qrow_sums = Array.make (nblk * m) 0 in
    for b = 0 to nblk - 1 do
      let p0 = b * kc_blk in
      let kcur = min kc_blk (k - p0) in
      let base = npan * mr * p0 in
      for pi = 0 to npan - 1 do
        let pbase = base + (pi * mr * kcur) in
        for p = 0 to kcur - 1 do
          let o = pbase + (p * mr) in
          for r = 0 to mr - 1 do
            let i = (pi * mr) + r in
            if i < m then begin
              let q = get i (p0 + p) in
              let q = if q > 127 then 127 else if q < -127 then -127 else q in
              Bigarray.Array1.unsafe_set qpack (o + r) (q + 128);
              qrow_sums.((b * m) + i) <- qrow_sums.((b * m) + i) + q
            end
            else Bigarray.Array1.unsafe_set qpack (o + r) 128
          done
        done
      done
    done;
    { qm = m; qk = k; qpack; qscales = scales; qrow_sums; qbias = bias }

  let get_q t ~i ~p =
    if i < 0 || i >= t.qm || p < 0 || p >= t.qk then invalid_arg "Blas.Int8.get_q";
    Bigarray.Array1.get t.qpack (pack_index ~m:t.qm ~k:t.qk ~i ~p) - 128

  let quantize ?(trans = false) ?(pow2 = false) ?bias w =
    check_2d "Blas.Int8.quantize" w;
    let m = Tensor.dim w (if trans then 1 else 0) in
    let k = Tensor.dim w (if trans then 0 else 1) in
    let wd = w.Tensor.data in
    let wc = Tensor.dim w 1 in
    let at i p =
      if trans then Bigarray.Array1.unsafe_get wd ((p * wc) + i)
      else Bigarray.Array1.unsafe_get wd ((i * wc) + p)
    in
    let scales = Array.make m 1.0 in
    let invs = Array.make m 1.0 in
    for i = 0 to m - 1 do
      let amax = ref 0.0 in
      for p = 0 to k - 1 do
        let v = Float.abs (at i p) in
        if v > !amax then amax := v
      done;
      let s = if !amax = 0.0 then 1.0 else !amax /. 127.0 in
      let s = if pow2 then pow2_up s else s in
      scales.(i) <- s;
      invs.(i) <- 1.0 /. s
    done;
    pack ~m ~k ~scales ?bias ~get:(fun i p -> q8 (at i p) invs.(i)) ()

  (* Quantize and pack op(B)[p0 .. p0+kcur-1, j0 .. j0+ncur-1] as column-PAIR
     words (two 32-bit ua lanes per native int), recording signed per-column
     q sums. Columns past [ncur] pack as ua = 128 (q = 0). *)
  let pack_qb ~trans bd ~bc ~p0 ~kcur ~j0 ~ncur ~inv_act bw bsums =
    let panels = (ncur + nr - 1) / nr in
    for pj = 0 to panels - 1 do
      let wbase = pj * 2 * kcur in
      let col0 = j0 + (pj * nr) in
      let jend = j0 + ncur in
      let s0 = ref 0 and s1 = ref 0 and s2 = ref 0 and s3 = ref 0 in
      if col0 + nr <= jend && not trans then begin
        (* fast path: full panel, natural B layout *)
        for p = 0 to kcur - 1 do
          let row = ((p0 + p) * bc) + col0 in
          let q0 = q8 (Bigarray.Array1.unsafe_get bd row) inv_act in
          let q1 = q8 (Bigarray.Array1.unsafe_get bd (row + 1)) inv_act in
          let q2 = q8 (Bigarray.Array1.unsafe_get bd (row + 2)) inv_act in
          let q3 = q8 (Bigarray.Array1.unsafe_get bd (row + 3)) inv_act in
          s0 := !s0 + q0;
          s1 := !s1 + q1;
          s2 := !s2 + q2;
          s3 := !s3 + q3;
          let o = wbase + (2 * p) in
          Bigarray.Array1.unsafe_set bw o ((q0 + 128) lor ((q1 + 128) lsl 32));
          Bigarray.Array1.unsafe_set bw (o + 1) ((q2 + 128) lor ((q3 + 128) lsl 32))
        done
      end
      else
        for p = 0 to kcur - 1 do
          let kp = p0 + p in
          let qat cc =
            let j = col0 + cc in
            if j < jend then
              q8
                (if trans then Bigarray.Array1.unsafe_get bd ((j * bc) + kp)
                 else Bigarray.Array1.unsafe_get bd ((kp * bc) + j))
                inv_act
            else 0
          in
          let q0 = qat 0 and q1 = qat 1 and q2 = qat 2 and q3 = qat 3 in
          s0 := !s0 + q0;
          s1 := !s1 + q1;
          s2 := !s2 + q2;
          s3 := !s3 + q3;
          let o = wbase + (2 * p) in
          Bigarray.Array1.unsafe_set bw o ((q0 + 128) lor ((q1 + 128) lsl 32));
          Bigarray.Array1.unsafe_set bw (o + 1) ((q2 + 128) lor ((q3 + 128) lsl 32))
        done;
      let sb = pj * nr in
      Bigarray.Array1.unsafe_set bsums sb !s0;
      Bigarray.Array1.unsafe_set bsums (sb + 1) !s1;
      Bigarray.Array1.unsafe_set bsums (sb + 2) !s2;
      Bigarray.Array1.unsafe_set bsums (sb + 3) !s3
    done

  (* 4-row x 2-word microkernel over one KC block: 8 packed-pair integer
     accumulators, written into [accs] (length 8, row-major by word). *)
  let kern4x2w ap abase bw bbase ~kcur accs =
    let acc00 = ref 0 and acc01 = ref 0 in
    let acc10 = ref 0 and acc11 = ref 0 in
    let acc20 = ref 0 and acc21 = ref 0 in
    let acc30 = ref 0 and acc31 = ref 0 in
    let ai = ref abase and bi = ref bbase in
    (* k unrolled by two: halves the pointer/branch overhead per 16 MACs. *)
    for _p = 1 to kcur / 2 do
      let x0 = Bigarray.Array1.unsafe_get ap !ai
      and x1 = Bigarray.Array1.unsafe_get ap (!ai + 1)
      and x2 = Bigarray.Array1.unsafe_get ap (!ai + 2)
      and x3 = Bigarray.Array1.unsafe_get ap (!ai + 3) in
      let w0 = Bigarray.Array1.unsafe_get bw !bi
      and w1 = Bigarray.Array1.unsafe_get bw (!bi + 1) in
      acc00 := !acc00 + (x0 * w0);
      acc01 := !acc01 + (x0 * w1);
      acc10 := !acc10 + (x1 * w0);
      acc11 := !acc11 + (x1 * w1);
      acc20 := !acc20 + (x2 * w0);
      acc21 := !acc21 + (x2 * w1);
      acc30 := !acc30 + (x3 * w0);
      acc31 := !acc31 + (x3 * w1);
      let x0 = Bigarray.Array1.unsafe_get ap (!ai + 4)
      and x1 = Bigarray.Array1.unsafe_get ap (!ai + 5)
      and x2 = Bigarray.Array1.unsafe_get ap (!ai + 6)
      and x3 = Bigarray.Array1.unsafe_get ap (!ai + 7) in
      let w0 = Bigarray.Array1.unsafe_get bw (!bi + 2)
      and w1 = Bigarray.Array1.unsafe_get bw (!bi + 3) in
      acc00 := !acc00 + (x0 * w0);
      acc01 := !acc01 + (x0 * w1);
      acc10 := !acc10 + (x1 * w0);
      acc11 := !acc11 + (x1 * w1);
      acc20 := !acc20 + (x2 * w0);
      acc21 := !acc21 + (x2 * w1);
      acc30 := !acc30 + (x3 * w0);
      acc31 := !acc31 + (x3 * w1);
      ai := !ai + 8;
      bi := !bi + 4
    done;
    if kcur land 1 = 1 then begin
      let x0 = Bigarray.Array1.unsafe_get ap !ai
      and x1 = Bigarray.Array1.unsafe_get ap (!ai + 1)
      and x2 = Bigarray.Array1.unsafe_get ap (!ai + 2)
      and x3 = Bigarray.Array1.unsafe_get ap (!ai + 3) in
      let w0 = Bigarray.Array1.unsafe_get bw !bi
      and w1 = Bigarray.Array1.unsafe_get bw (!bi + 1) in
      acc00 := !acc00 + (x0 * w0);
      acc01 := !acc01 + (x0 * w1);
      acc10 := !acc10 + (x1 * w0);
      acc11 := !acc11 + (x1 * w1);
      acc20 := !acc20 + (x2 * w0);
      acc21 := !acc21 + (x2 * w1);
      acc30 := !acc30 + (x3 * w0);
      acc31 := !acc31 + (x3 * w1)
    end;
    accs.(0) <- !acc00;
    accs.(1) <- !acc01;
    accs.(2) <- !acc10;
    accs.(3) <- !acc11;
    accs.(4) <- !acc20;
    accs.(5) <- !acc21;
    accs.(6) <- !acc30;
    accs.(7) <- !acc31

  (* One lane's share: MR panels [pan_lo .. pan_hi] of C, full jc -> pc
     sweep. A is prepacked so there is no per-lane A packing (and no MC
     loop: a lane's whole byte block per KC step is a few KB). *)
  let gemm_lane ~qw ~act_scale ~trans_b ~bd ~bc ~cd ~n ~pan_lo ~pan_hi ~bw ~bsums =
    let m = qw.qm and k = qw.qk in
    let npan = npanels m in
    let ap = qw.qpack in
    let inv_act = 1.0 /. act_scale in
    let accs = Array.make 8 0 in
    let jc = ref 0 in
    while !jc < n do
      let ncur = min nc_blk (n - !jc) in
      let pc = ref 0 in
      while !pc < k do
        let kcur = min kc_blk (k - !pc) in
        let blk = !pc / kc_blk in
        let first = !pc = 0 in
        pack_qb ~trans:trans_b bd ~bc ~p0:!pc ~kcur ~j0:!jc ~ncur ~inv_act bw bsums;
        let ablock = npan * mr * !pc in
        let npanb = (ncur + nr - 1) / nr in
        for pj = 0 to npanb - 1 do
          let cols = min nr (ncur - (pj * nr)) in
          let bbase = pj * 2 * kcur and jcol = !jc + (pj * nr) in
          for pi = pan_lo to pan_hi do
            let row0 = pi * mr in
            let rows = min mr (m - row0) in
            kern4x2w ap (ablock + (pi * mr * kcur)) bw bbase ~kcur accs;
            for r = 0 to rows - 1 do
              let i = row0 + r in
              let sw = qw.qscales.(i) *. act_scale in
              let rsum = qw.qrow_sums.((blk * m) + i) in
              let cbase = (i * n) + jcol in
              let badd =
                if first then match qw.qbias with Some bs -> bs.(i) | None -> 0.0
                else 0.0
              in
              for cc = 0 to cols - 1 do
                let w = accs.((r * 2) + (cc lsr 1)) in
                let lane =
                  if cc land 1 = 0 then w land 0xFFFFFFFF else w lsr 32
                in
                let csum = Bigarray.Array1.unsafe_get bsums ((pj * nr) + cc) in
                let dot = lane - (128 * (rsum + csum)) - (16384 * kcur) in
                let o = cbase + cc in
                Bigarray.Array1.unsafe_set cd o
                  (Bigarray.Array1.unsafe_get cd o +. (sw *. float_of_int dot) +. badd)
              done
            done
          done
        done;
        pc := !pc + kcur
      done;
      jc := !jc + ncur
    done

  let gemm ?(trans_b = false) ~a:qw ~act_scale ~b c =
    check_2d "Blas.Int8.gemm b" b;
    check_2d "Blas.Int8.gemm c" c;
    if not (Float.is_finite act_scale) || act_scale <= 0.0 then
      invalid_arg "Blas.Int8.gemm: act_scale must be positive";
    let k = Tensor.dim b (if trans_b then 1 else 0) in
    let n = Tensor.dim b (if trans_b then 0 else 1) in
    if k <> qw.qk then invalid_arg "Blas.Int8.gemm: inner dimension mismatch";
    if Tensor.dim c 0 <> qw.qm || Tensor.dim c 1 <> n then
      invalid_arg "Blas.Int8.gemm: output dimension mismatch";
    Tensor.fill c 0.0;
    let bd = b.Tensor.data and cd = c.Tensor.data in
    let bc = Tensor.dim b 1 in
    let npan = npanels qw.qm in
    let words = 2 * kc_blk * ((nc_blk + nr - 1) / nr) in
    Dpool.parallel_for npan (fun plo phi ->
        Workspace.with_ibuf2 words nc_blk (fun bw bsums ->
            gemm_lane ~qw ~act_scale ~trans_b ~bd ~bc ~cd ~n ~pan_lo:plo ~pan_hi:phi
              ~bw ~bsums))
end
