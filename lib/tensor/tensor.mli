(** Dense float32 tensors backed by [Bigarray].

    Layout is row-major ("C order"); 4-D tensors use the NCHW convention
    (batch, channels, height, width) throughout the repository. All indices
    are 0-based. Operations raise [Invalid_argument] on shape mismatch. *)

type buffer =
  (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  data : buffer;  (** flat storage, length [numel t] *)
  shape : int array;  (** dimensions, outermost first *)
}

(** {1 Construction} *)

val create : int array -> t
(** Uninitialised contents. *)

val zeros : int array -> t
val ones : int array -> t
val full : int array -> float -> t

val scalar : float -> t
(** A 1-element tensor of shape [\[|1|\]]. *)

val of_array : int array -> float array -> t
(** [of_array shape a] copies [a] (row-major). Length must equal the shape's
    element count. *)

val randn : Prng.t -> int array -> t
(** I.i.d. standard normal entries. *)

val rand : Prng.t -> int array -> lo:float -> hi:float -> t
(** I.i.d. uniform entries in [\[lo, hi)]. *)

val copy : t -> t

val of_buffer : buffer -> int array -> t
(** [of_buffer buf shape] wraps an existing storage buffer (no copy); the
    buffer's length must equal the shape's element count. Used by
    {!Workspace} to hand out views of pooled scratch storage. *)

val view : t -> int array -> t
(** [view t shape] shares storage with [t] under a new shape of equal element
    count. *)

val sub_view : t -> off:int -> shape:int array -> t
(** [sub_view t ~off ~shape] is a view sharing [t]'s storage starting at flat
    offset [off] and covering the element count of [shape]. Writes through the
    view mutate [t]. *)

(** {1 Access} *)

val numel : t -> int
val shape : t -> int array
val dim : t -> int -> int

val get : t -> int -> float
(** Flat (row-major) read. *)

val set : t -> int -> float -> unit
(** Flat (row-major) write. *)

val get2 : t -> int -> int -> float
(** [get2 t i j] for a 2-D tensor. *)

val set2 : t -> int -> int -> float -> unit

val get4 : t -> int -> int -> int -> int -> float
(** [get4 t n c h w] for a 4-D NCHW tensor. *)

val set4 : t -> int -> int -> int -> int -> float -> unit
val to_array : t -> float array

(** {1 In-place mutation} *)

val fill : t -> float -> unit
val blit : src:t -> dst:t -> unit

val add_ : t -> t -> unit
(** [add_ dst x] is [dst <- dst + x] elementwise. *)

val sub_ : t -> t -> unit
val mul_ : t -> t -> unit
val scale_ : t -> float -> unit

val axpy : alpha:float -> x:t -> y:t -> unit
(** [y <- alpha * x + y]. *)

val map_ : (float -> float) -> t -> unit
val clip_ : t -> lo:float -> hi:float -> unit

(** {1 Allocating elementwise operations} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val scale : t -> float -> t
val neg : t -> t
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

val map3 : (float -> float -> float -> float) -> t -> t -> t -> t
(** [map3 f a b c] is the elementwise three-argument map (sizes must agree).
    Like every elementwise operation here, large tensors are processed in
    parallel on the {!Dpool} backend, so [f] must be pure. *)

(** {1 Reductions and statistics} *)

val sum : t -> float
val mean : t -> float
val max_value : t -> float
val min_value : t -> float

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val channel_mean_var : t -> (float array * float array)
(** For a 4-D NCHW tensor: per-channel mean and (biased) variance over the
    N, H, W axes — the statistics batch normalisation needs. *)

(** {1 Structure} *)

val concat_channels : t -> t -> t
(** Concatenate two NCHW tensors along the channel axis; N, H, W must
    agree. *)

val split_channels : t -> int -> t * t
(** [split_channels t c] undoes [concat_channels]: first [c] channels and
    the rest, as fresh tensors. *)

val broadcast_spatial : t -> h:int -> w:int -> t
(** Tile an [n; c; 1; 1] tensor to [n; c; h; w] — how a per-sample
    conditioning vector is spread over a bottleneck whose spatial extent is
    larger than 1x1 (the half-depth student generator). *)

val spatial_sum : t -> t
(** Sum an NCHW tensor over its H and W axes, to [n; c; 1; 1] — the adjoint
    of {!broadcast_spatial}. *)

val spatial_mean : t -> t
(** Mean of an NCHW tensor over its H and W axes, to [n; c] — global average
    pooling, used to compare bottleneck activations across architectures. *)

val slice_batch : t -> int -> int -> t
(** [slice_batch t off len] copies rows [off..off+len-1] of the leading
    (batch) axis. *)

val stack_batch : t list -> t
(** Concatenate along a new/existing leading axis: inputs must share trailing
    dimensions; each input's leading dim contributes. *)

val equal_shape : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints shape and a truncated value listing (for debugging). *)
