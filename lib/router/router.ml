(* The cachebox shard router: one front process consistent-hashing wire
   requests across N backend serve daemons.

   Requests are keyed by the same canonical config descriptor (and CRC-32
   digest) that [Simcache] uses to address simulation results, so every
   request for one cache geometry lands on one shard — its predictions stay
   hot in that backend's batches and in the router's memo. Fault tolerance
   is end to end:

   + per-backend health probes with EWMA latency and consecutive-failure
     ejection ([Backend_health], fed by probes and real requests alike);
   + bounded retry with jittered exponential backoff onto the next ring
     replica ([Hash_ring.successors] is the failover order);
   + a per-backend circuit breaker ([Breaker]) that backs off a shard that
     keeps failing or shedding;
   + hedged per-attempt timeouts that always honor the request deadline;
   + graceful degradation to the in-process HRD/STM baseline — tagged
     [degraded:true, source:"router-..."] — when no replica is usable;
   + a content-addressed prediction memo ([Predmemo]) so identical
     (digest, trace-window) requests short-circuit without an upstream hop.

   Threading mirrors the serve daemon: one [Reactor] owns all client I/O
   and pushes admitted lines into a bounded [Squeue]; a small pool of
   forwarder threads drains it, each talking to backends over blocking
   sockets with SO_RCVTIMEO/SO_SNDTIMEO as the per-attempt timeout. One
   connection carries one outstanding request, so replies can never alias
   across requests; idle connections are pooled per backend. A prober
   thread health-checks every backend each interval, so a dead shard is
   ejected within one probe interval even with no traffic, and re-admitted
   by the first successful probe after it returns. *)

type config = {
  listen : Serve_daemon.listen;
  backends : (string * Serve_daemon.listen) list;  (* name -> address *)
  queue_depth : int;
  workers : int;  (* forwarder threads *)
  vnodes : int;
  max_attempts : int;  (* total upstream attempts per request *)
  backoff_base_s : float;
  backoff_max_s : float;
  attempt_timeout_s : float;  (* hedge trigger; clamped to the deadline *)
  reload_timeout_s : float;  (* reloads load+warm a model: generous *)
  probe_interval_s : float;
  probe_timeout_s : float;
  eject_after : int;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  fallback : Cbox_infer.fallback;
  memo_capacity : int;
  default_deadline_s : float;
  max_trace_len : int;
}

let default_config ~listen ~backends =
  {
    listen;
    backends;
    queue_depth = 128;
    workers = 4;
    vnodes = 128;
    max_attempts = 3;
    backoff_base_s = 0.025;
    backoff_max_s = 0.5;
    attempt_timeout_s = 2.0;
    reload_timeout_s = 120.0;
    probe_interval_s = 1.0;
    probe_timeout_s = 0.5;
    eject_after = 3;
    breaker_threshold = 3;
    breaker_cooldown_s = 5.0;
    fallback = Cbox_infer.Fallback_hrd;
    memo_capacity = 256;
    default_deadline_s = 5.0;
    max_trace_len = Validate.default_max_trace_len;
  }

type backend = {
  b_name : string;
  b_addr : Unix.sockaddr;
  b_health : Backend_health.t;
  b_breaker : Breaker.t;
  b_pool : Unix.file_descr list ref;  (* idle persistent upstream conns *)
  b_pm : Mutex.t;
  mutable b_attempts : int;  (* request attempts routed here (not probes) *)
}

type t = {
  cfg : config;
  ring : Hash_ring.t;
  backends : backend array;
  by_name : (string, backend) Hashtbl.t;
  stats : Serve_stats.t;
  memo : Predmemo.t;
  journal : Runlog.t option;
  jm : Mutex.t;
  now : unit -> float;
  draining : bool Atomic.t;
}

type job = { line : string; arrival : float; ticket : Reactor.ticket }

let journal_event t kind fields =
  match t.journal with
  | None -> ()
  | Some j ->
    Mutex.lock t.jm;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.jm)
      (fun () -> Runlog.event j kind fields)

(* --- wire replies (same shapes the backend emits) --- *)

let base_fields id = match id with None -> [] | Some id -> [ ("id", Sjson.Str id) ]

let error_reply ?id (e : Serve_error.t) =
  Sjson.Obj
    (base_fields id
    @ [
        ("ok", Sjson.Bool false);
        ("error", Sjson.Str (Serve_error.code_string e.Serve_error.code));
        ("message", Sjson.Str e.Serve_error.message);
      ])

let hit_rate_reply ?id ~degraded ~source ~backend ~reason ~latency_ms hit_rate =
  Sjson.Obj
    (base_fields id
    @ [
        ("ok", Sjson.Bool true);
        ("op", Sjson.Str "infer");
        ("hit_rate", Sjson.Num hit_rate);
        ("degraded", Sjson.Bool degraded);
        ("source", Sjson.Str source);
        ("backend", Sjson.Str backend);
      ]
    @ (match reason with None -> [] | Some r -> [ ("reason", Sjson.Str r) ])
    @ [ ("latency_ms", Sjson.Num latency_ms) ])

let record ?backend t ~arrival ~ok ~degraded ~code =
  Serve_stats.record ?backend t.stats ~ok ~degraded ~code
    ~latency_s:(t.now () -. arrival)

let answer ?backend t job ~arrival ~ok ~degraded ~code reply =
  record ?backend t ~arrival ~ok ~degraded ~code;
  Reactor.resolve job.ticket (Sjson.to_string reply)

let answer_error t job ?id ~arrival e =
  answer t job ~arrival ~ok:false ~degraded:false ~code:(Some e.Serve_error.code)
    (error_reply ?id e)

(* --- shard + memo keys (the Simcache descriptor convention) --- *)

let policy_tag = function
  | Cache.Lru -> "lru"
  | Cache.Fifo -> "fifo"
  | Cache.Plru -> "plru"
  | Cache.Srrip -> "srrip"
  | Cache.Random_policy seed -> Printf.sprintf "rnd%d" seed

(* Identical to Simcache's config_tag: the router's placement digest and
   the sim cache's entry key agree on what "the same config" means. *)
let config_tag (c : Cache.config) =
  Printf.sprintf "%ds%dw%db-%s" c.Cache.sets c.Cache.ways c.Cache.block_bytes
    (policy_tag c.Cache.policy)

let shard_key tag = Printf.sprintf "cachebox-shard/1|%s" tag

let trace_digest arr =
  let b = Buffer.create (8 * Array.length arr) in
  Array.iter (fun a -> Buffer.add_int64_le b (Int64.of_int a)) arr;
  Crc32.digest (Buffer.contents b)

(* None = not memoizable (trace files can change on disk under the same
   path, so they are never content-addressed by name). *)
let memo_key tag = function
  | Validate.Inline arr ->
    Some
      (Printf.sprintf "cachebox-predmemo/1|%s|inline:%d:%08x" tag (Array.length arr)
         (trace_digest arr))
  | Validate.Benchmark { name; length } ->
    Some (Printf.sprintf "cachebox-predmemo/1|%s|bench:%s:%d" tag name length)
  | Validate.File _ -> None

let strip_fields json keys =
  match json with
  | Sjson.Obj l -> Sjson.Obj (List.filter (fun (k, _) -> not (List.mem k keys)) l)
  | j -> j

(* --- upstream I/O --- *)

exception Upstream_timeout
exception Upstream_eof

let set_timeouts fd secs =
  let secs = Float.max 0.01 secs in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO secs

let send_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write fd data !pos (len - !pos) with
    | 0 -> raise Upstream_eof
    | n -> pos := !pos + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise Upstream_timeout
  done

(* One reply is one line; a connection never carries two outstanding
   requests, so everything up to the first newline is ours. *)
let recv_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> raise Upstream_eof
    | n -> (
      let s = Bytes.sub_string chunk 0 n in
      match String.index_opt s '\n' with
      | Some i ->
        Buffer.add_string buf (String.sub s 0 i);
        Buffer.contents buf
      | None ->
        Buffer.add_string buf s;
        if Buffer.length buf > 1 lsl 20 then raise Upstream_eof else go ())
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise Upstream_timeout
  in
  go ()

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let take_pooled b =
  Mutex.lock b.b_pm;
  let fd = match !(b.b_pool) with
    | fd :: rest ->
      b.b_pool := rest;
      Some fd
    | [] -> None
  in
  Mutex.unlock b.b_pm;
  fd

let give_back b fd =
  Mutex.lock b.b_pm;
  b.b_pool := fd :: !(b.b_pool);
  Mutex.unlock b.b_pm

let flush_pool b =
  Mutex.lock b.b_pm;
  let fds = !(b.b_pool) in
  b.b_pool := [];
  Mutex.unlock b.b_pm;
  List.iter close_quietly fds

let connect_fresh b =
  let fd = Unix.socket (Unix.domain_of_sockaddr b.b_addr) Unix.SOCK_STREAM 0 in
  match Unix.connect fd b.b_addr with
  | () -> fd
  | exception e ->
    close_quietly fd;
    raise e

let run_attempt b fd line ~timeout =
  match
    set_timeouts fd timeout;
    send_line fd line;
    recv_line fd
  with
  | reply ->
    give_back b fd;
    `Reply reply
  | exception Upstream_timeout ->
    (* The late reply may still arrive on this conn; never reuse it, or it
       would alias against the next request. *)
    close_quietly fd;
    `Timeout
  | exception Upstream_eof ->
    close_quietly fd;
    `Down "connection closed by backend"
  | exception Unix.Unix_error (e, _, _) ->
    close_quietly fd;
    `Down (Unix.error_message e)
  | exception e ->
    close_quietly fd;
    `Down (Printexc.to_string e)

(* One bounded-time request/reply exchange. An idle pooled connection may
   have died while parked (backend restart): a transport error on a pooled
   conn flushes the pool and retries once on a fresh connect, so a healthy
   restarted backend is not mistaken for a dead one. *)
let upstream_call b line ~timeout =
  let fresh () =
    match connect_fresh b with
    | fd -> run_attempt b fd line ~timeout
    | exception Unix.Unix_error (e, _, _) -> `Down (Unix.error_message e)
    | exception e -> `Down (Printexc.to_string e)
  in
  match take_pooled b with
  | None -> fresh ()
  | Some fd -> (
    match run_attempt b fd line ~timeout with
    | `Down _ ->
      flush_pool b;
      fresh ()
    | r -> r)

(* --- health bookkeeping (requests and probes feed the same streaks) --- *)

let health_success t b ~latency_s =
  if Backend_health.record_success b.b_health ~latency_s then
    journal_event t "readmit" [ ("backend", Runlog.S b.b_name) ]

let health_failure t b ~why =
  if Backend_health.record_failure b.b_health then
    journal_event t "eject" [ ("backend", Runlog.S b.b_name); ("why", Runlog.S why) ]

(* --- routing --- *)

let resolve_trace t source =
  match source with
  | Validate.Inline arr -> Ok arr
  | Validate.Benchmark { name; length } -> (
    match Suite.find name with
    | w -> Ok (w.Workload.generate length)
    | exception Not_found ->
      Error (Serve_error.v Serve_error.Bad_request "unknown benchmark %S" name))
  | Validate.File path -> Validate.read_trace_file ~max_len:t.cfg.max_trace_len path

(* All replicas for the key are down/unusable: answer from the in-process
   baseline, tagged so clients and stats can tell router-level degradation
   from backend-level degradation. *)
let degrade t job ~id ~arrival ~cache ~source reason =
  journal_event t "degraded_router" [ ("reason", Runlog.S reason) ];
  match resolve_trace t source with
  | Error e -> answer_error t job ?id ~arrival e
  | Ok trace -> (
    match Cbox_infer.baseline_hit_rate t.cfg.fallback cache trace with
    | Some hit_rate ->
      Serve_stats.record_degraded_router t.stats;
      let fb = Cbox_infer.fallback_name t.cfg.fallback in
      answer ~backend:fb t job ~arrival ~ok:true ~degraded:true ~code:None
        (hit_rate_reply ?id ~degraded:true ~source:("router-" ^ fb) ~backend:fb
           ~reason:(Some reason)
           ~latency_ms:(1000.0 *. (t.now () -. arrival))
           hit_rate)
    | None ->
      answer_error t job ?id ~arrival
        (Serve_error.v Serve_error.Upstream_unavailable
           "no live replica for this shard (%s) and fallback is off" reason)
    | exception e -> answer_error t job ?id ~arrival (Serve_error.of_exn e))

let reply_is_shed json =
  match Sjson.member "ok" json with
  | Some (Sjson.Bool true) -> false
  | _ -> (
    match Option.bind (Sjson.member "error" json) Sjson.to_str with
    | Some "overloaded" -> true
    | _ -> false)

(* Forward the final upstream reply verbatim, recording it exactly once in
   client-visible stats — attempts that were shed or failed along the way
   left no mark here (only in retries/hedges and per-backend counters). *)
let finalize t job ~arrival ~memo_key json line =
  let ok =
    match Sjson.member "ok" json with Some (Sjson.Bool b) -> b | _ -> false
  in
  let degraded =
    match Sjson.member "degraded" json with Some (Sjson.Bool b) -> b | _ -> false
  in
  let code =
    Option.bind
      (Option.bind (Sjson.member "error" json) Sjson.to_str)
      Serve_error.code_of_string
  in
  let backend =
    if ok then Option.bind (Sjson.member "backend" json) Sjson.to_str else None
  in
  record ?backend t ~arrival ~ok ~degraded ~code;
  (match memo_key with
  | Some key
    when ok && (not degraded)
         && Option.bind (Sjson.member "source" json) Sjson.to_str = Some "model" ->
    Predmemo.add t.memo key (strip_fields json [ "id"; "latency_ms"; "memo" ])
  | _ -> ());
  Reactor.resolve job.ticket line

let answer_from_memo t job ~id ~arrival cached =
  let fields = match cached with Sjson.Obj l -> l | j -> [ ("value", j) ] in
  let backend = Option.bind (Sjson.member "backend" cached) Sjson.to_str in
  answer ?backend t job ~arrival ~ok:true ~degraded:false ~code:None
    (Sjson.Obj
       (base_fields id @ fields
       @ [
           ("latency_ms", Sjson.Num (1000.0 *. (t.now () -. arrival)));
           ("memo", Sjson.Bool true);
         ]))

let route_infer t rng job ~id ~sets ~ways ~source ~deadline_s ~backend =
  let arrival = job.arrival in
  match Validate.cache_config ~sets ~ways () with
  | Error e -> answer_error t job ?id ~arrival e
  | Ok cache -> (
    let budget = Option.value deadline_s ~default:t.cfg.default_deadline_s in
    let deadline = arrival +. budget in
    let tag = config_tag cache in
    (* The raw line (and its "backend" field) is forwarded verbatim, so the
       memo key must be backend-scoped: an int8 answer may not satisfy a
       float32 request for the same config/trace. An absent field stays
       distinct from an explicit "float32" — the daemon's default backend is
       its own business. *)
    let mtag =
      match backend with
      | None -> tag
      | Some b -> tag ^ "+" ^ Cbox_infer.backend_name b
    in
    let mkey = memo_key mtag source in
    match Option.bind mkey (Predmemo.find t.memo) with
    | Some cached -> answer_from_memo t job ~id ~arrival cached
    | None ->
      let candidates =
        List.filter_map
          (Hashtbl.find_opt t.by_name)
          (Hash_ring.successors t.ring ~key:(shard_key tag)
             (Array.length t.backends))
      in
      let finish_deadline () =
        answer_error t job ?id ~arrival
          (Serve_error.v Serve_error.Deadline_exceeded
             "deadline (%.0f ms) expired while routing" (1000.0 *. budget))
      in
      let rec go attempt =
        let now = t.now () in
        if now >= deadline then finish_deadline ()
        else if attempt >= t.cfg.max_attempts then
          degrade t job ~id ~arrival ~cache ~source "upstream_exhausted"
        else begin
          let usable =
            List.filter
              (fun b -> Backend_health.up b.b_health && Breaker.allow b.b_breaker)
              candidates
          in
          match usable with
          | [] ->
            degrade t job ~id ~arrival ~cache ~source
              (if List.exists (fun b -> Backend_health.up b.b_health) candidates then
                 "breakers_open"
               else "all_backends_down")
          | _ -> (
            let b = List.nth usable (attempt mod List.length usable) in
            let timeout = Float.min t.cfg.attempt_timeout_s (deadline -. now) in
            Mutex.lock b.b_pm;
            b.b_attempts <- b.b_attempts + 1;
            Mutex.unlock b.b_pm;
            let t0 = t.now () in
            match upstream_call b job.line ~timeout with
            | `Reply line -> (
              let latency = t.now () -. t0 in
              match Sjson.parse line with
              | Error _ ->
                Breaker.record_failure b.b_breaker;
                health_failure t b ~why:"garbage reply";
                retry attempt
              | Ok json ->
                if reply_is_shed json then begin
                  (* Alive but shedding: a load signal for the breaker, not
                     a liveness failure. *)
                  Breaker.record_failure b.b_breaker;
                  retry attempt
                end
                else begin
                  Breaker.record_success b.b_breaker;
                  health_success t b ~latency_s:latency;
                  finalize t job ~arrival ~memo_key:mkey json line
                end)
            | `Timeout ->
              (* Hedge: abandon the slow attempt and move on immediately —
                 the wait already burned the backoff budget. *)
              Serve_stats.record_hedge t.stats;
              Breaker.record_failure b.b_breaker;
              health_failure t b ~why:"timeout";
              go (attempt + 1)
            | `Down why ->
              Breaker.record_failure b.b_breaker;
              health_failure t b ~why;
              retry attempt)
        end
      and retry attempt =
        let next = attempt + 1 in
        if next < t.cfg.max_attempts && t.now () < deadline then begin
          Serve_stats.record_retry t.stats;
          (* Jittered exponential backoff, never sleeping past the
             deadline: [min(max, base*2^k) * U(0.5, 1)]. *)
          let ceilinged =
            Float.min
              (t.cfg.backoff_base_s *. (2.0 ** float_of_int attempt))
              t.cfg.backoff_max_s
          in
          let d = ceilinged *. (0.5 +. (0.5 *. Prng.float rng 1.0)) in
          let d = Float.min d (deadline -. t.now () -. 0.001) in
          if d > 0.0 then Thread.delay d
        end;
        go next
      in
      go 0)

(* --- control-plane ops --- *)

let backends_up t =
  Array.fold_left
    (fun acc b -> if Backend_health.up b.b_health then acc + 1 else acc)
    0 t.backends

let health_reply t =
  let up = backends_up t in
  let total = Array.length t.backends in
  Sjson.Obj
    [
      ("ok", Sjson.Bool true);
      ("op", Sjson.Str "health");
      ( "status",
        Sjson.Str (if up = total then "ok" else if up > 0 then "degraded" else "down")
      );
      ("role", Sjson.Str "router");
      ("backends_up", Sjson.Num (float_of_int up));
      ("backends_total", Sjson.Num (float_of_int total));
      ("fallback", Sjson.Str (Cbox_infer.fallback_name t.cfg.fallback));
    ]

let backend_json b =
  Sjson.Obj
    [
      ("name", Sjson.Str b.b_name);
      ("up", Sjson.Bool (Backend_health.up b.b_health));
      ("breaker", Sjson.Str (Breaker.state_name (Breaker.state b.b_breaker)));
      ("ewma_ms", Sjson.Num (Backend_health.ewma_ms b.b_health));
      ( "consecutive_failures",
        Sjson.Num (float_of_int (Backend_health.consecutive_failures b.b_health)) );
      ("attempts", Sjson.Num (float_of_int b.b_attempts));
      ("successes", Sjson.Num (float_of_int (Backend_health.successes b.b_health)));
      ("failures", Sjson.Num (float_of_int (Backend_health.failures b.b_health)));
      ("ejections", Sjson.Num (float_of_int (Backend_health.ejections b.b_health)));
      ( "readmissions",
        Sjson.Num (float_of_int (Backend_health.readmissions b.b_health)) );
    ]

let stats_reply t =
  let s = Serve_stats.snapshot t.stats in
  Sjson.Obj
    ([
       ("ok", Sjson.Bool true);
       ("op", Sjson.Str "stats");
       ("role", Sjson.Str "router");
       ("served", Sjson.Num (float_of_int s.Serve_stats.served));
       ("ok_count", Sjson.Num (float_of_int s.Serve_stats.ok));
       ("degraded_count", Sjson.Num (float_of_int s.Serve_stats.degraded));
       ("shed", Sjson.Num (float_of_int s.Serve_stats.shed));
       ("p50_ms", Sjson.Num s.Serve_stats.p50_ms);
       ("p99_ms", Sjson.Num s.Serve_stats.p99_ms);
       ("retries", Sjson.Num (float_of_int s.Serve_stats.retries));
       ("hedges", Sjson.Num (float_of_int s.Serve_stats.hedges));
       ("degraded_router", Sjson.Num (float_of_int s.Serve_stats.degraded_router));
       ("memo_hits", Sjson.Num (float_of_int (Predmemo.hits t.memo)));
       ("memo_entries", Sjson.Num (float_of_int (Predmemo.length t.memo)));
       ("backends_up", Sjson.Num (float_of_int (backends_up t)));
       ("backends", Sjson.Arr (Array.to_list (Array.map backend_json t.backends)));
     ]
    (* Per-serving-backend success counters, mirroring the daemon's stats
       reply (the router credits whichever backend the upstream reply
       names), always all six so clients can reconcile deltas. JSON keys
       map '-' to '_' exactly like the daemon's (backend_student_int8). *)
    @ List.map
        (fun b ->
          let n =
            match List.assoc_opt b s.Serve_stats.backends with
            | Some n -> n
            | None -> 0
          in
          let key = String.map (fun c -> if c = '-' then '_' else c) b in
          ("backend_" ^ key, Sjson.Num (float_of_int n)))
        [ "float32"; "int8"; "student"; "student-int8"; "hrd"; "stm" ]
    @ List.map
        (fun (code, n) -> ("err_" ^ code, Sjson.Num (float_of_int n)))
        s.Serve_stats.errors)

(* Rolling reload across every backend, one at a time, so at most one shard
   is warming a model at any moment while the others keep serving. The
   memo is cleared afterwards — the old model's predictions are stale. *)
let broadcast_reload t job ~id ~checkpoint =
  let arrival = job.arrival in
  let line =
    Sjson.to_string
      (Sjson.Obj
         (("op", Sjson.Str "reload")
         :: (match checkpoint with
            | None -> []
            | Some c -> [ ("checkpoint", Sjson.Str c) ])))
  in
  let results =
    Array.to_list
      (Array.map
         (fun b ->
           let outcome =
             match upstream_call b line ~timeout:t.cfg.reload_timeout_s with
             | `Reply l -> (
               match Sjson.parse l with
               | Ok json -> strip_fields json [ "id" ]
               | Error _ ->
                 error_reply (Serve_error.v Serve_error.Internal "garbage reply"))
             | `Timeout ->
               error_reply
                 (Serve_error.v Serve_error.Deadline_exceeded "reload timed out")
             | `Down why ->
               error_reply (Serve_error.v Serve_error.Upstream_unavailable "%s" why)
           in
           ( b.b_name,
             match outcome with
             | Sjson.Obj l -> Sjson.Obj (("backend", Sjson.Str b.b_name) :: l)
             | j -> j ))
         t.backends)
  in
  Predmemo.clear t.memo;
  let all_ok =
    List.for_all
      (fun (_, j) ->
        match Sjson.member "ok" j with Some (Sjson.Bool b) -> b | _ -> false)
      results
  in
  journal_event t "reload_broadcast"
    [ ("ok", Runlog.B all_ok); ("backends", Runlog.I (List.length results)) ];
  let code =
    if all_ok then None
    else
      List.find_map
        (fun (_, j) ->
          Option.bind
            (Option.bind (Sjson.member "error" j) Sjson.to_str)
            Serve_error.code_of_string)
        results
  in
  answer t job ~arrival ~ok:all_ok ~degraded:false ~code
    (Sjson.Obj
       (base_fields id
       @ [ ("ok", Sjson.Bool all_ok); ("op", Sjson.Str "reload") ]
       @ (match code with
         | Some c when not all_ok ->
           (* Surface the first backend's taxonomy code at top level so
              [cachebox call] exits with the real cause, not [internal]. *)
           [ ("error", Sjson.Str (Serve_error.code_string c)) ]
         | _ -> [])
       @ [ ("results", Sjson.Arr (List.map snd results)) ]))

(* --- the serving loops --- *)

let shed_reply t ~why =
  Serve_stats.shed t.stats;
  error_reply (Serve_error.v Serve_error.Overloaded "%s" why)

let process t rng queue job =
  if Atomic.get t.draining then
    Reactor.resolve job.ticket (Sjson.to_string (shed_reply t ~why:"router shutting down"))
  else
    let arrival = job.arrival in
    match Sjson.parse job.line with
    | Error why ->
      answer_error t job ~arrival
        (Serve_error.v Serve_error.Bad_request "malformed JSON: %s" why)
    | Ok json -> (
      match Validate.request ~max_trace_len:t.cfg.max_trace_len json with
      | Error e -> answer_error t job ~arrival e
      | Ok Validate.Health ->
        answer t job ~arrival ~ok:true ~degraded:false ~code:None (health_reply t)
      | Ok Validate.Stats_request ->
        answer t job ~arrival ~ok:true ~degraded:false ~code:None (stats_reply t)
      | Ok Validate.Shutdown ->
        journal_event t "router_stop" [];
        Atomic.set t.draining true;
        answer t job ~arrival ~ok:true ~degraded:false ~code:None
          (Sjson.Obj [ ("ok", Sjson.Bool true); ("op", Sjson.Str "shutdown") ]);
        Squeue.close queue
      | Ok (Validate.Reload { id; checkpoint }) -> broadcast_reload t job ~id ~checkpoint
      | Ok
          ( Validate.Stream_open { id; _ }
          | Validate.Stream_feed { id; _ }
          | Validate.Stream_resume { id; _ }
          | Validate.Stream_close { id; _ } ) ->
        (* Streaming sessions are stateful and bound to one backend's
           session registry; a hit-rate-hashing forwarder cannot carry
           them. Clients stream against a shard daemon directly. *)
        answer_error t job ~arrival ?id
          (Serve_error.v Serve_error.Bad_request
             "stream ops are not routable; connect to a backend daemon directly")
      | Ok (Validate.Infer { id; sets; ways; source; deadline_s; backend }) ->
        route_infer t rng job ~id ~sets ~ways ~source ~deadline_s ~backend)

(* Total: a forwarder that dies would strand its ticket and hang the
   client's FIFO; any escaped exception becomes an internal reply. *)
let process_total t rng queue job =
  match process t rng queue job with
  | () -> ()
  | exception e ->
    let e = { (Serve_error.of_exn e) with Serve_error.code = Serve_error.Internal } in
    answer_error t job ~arrival:job.arrival e

let worker_loop t queue k () =
  let rng = Prng.of_label (Printf.sprintf "router-worker-%d" k) in
  let rec go () =
    match Squeue.pop queue with
    | None -> ()
    | Some job ->
      process_total t rng queue job;
      go ()
  in
  go ()

let prober_loop t stop () =
  let line = Sjson.to_string (Sjson.Obj [ ("op", Sjson.Str "health") ]) in
  while not (Atomic.get stop) do
    Array.iter
      (fun b ->
        if not (Atomic.get stop) then begin
          let t0 = t.now () in
          match upstream_call b line ~timeout:t.cfg.probe_timeout_s with
          | `Reply _ -> health_success t b ~latency_s:(t.now () -. t0)
          | `Timeout -> health_failure t b ~why:"probe timeout"
          | `Down why -> health_failure t b ~why:("probe: " ^ why)
        end)
      t.backends;
    let slept = ref 0.0 in
    while (not (Atomic.get stop)) && !slept < t.cfg.probe_interval_s do
      Thread.delay 0.05;
      slept := !slept +. 0.05
    done
  done

let sockaddr_of_listen = function
  | Serve_daemon.Unix_socket path -> Unix.ADDR_UNIX path
  | Serve_daemon.Tcp (host, port) -> (
    match (Unix.gethostbyname host).Unix.h_addr_list.(0) with
    | addr -> Unix.ADDR_INET (addr, port)
    | exception (Not_found | Invalid_argument _) ->
      Serve_error.fail Serve_error.Invalid_config "cannot resolve host %S" host)

let make_backend cfg (name, listen) =
  {
    b_name = name;
    b_addr = sockaddr_of_listen listen;
    b_health = Backend_health.create ~eject_after:cfg.eject_after ();
    b_breaker =
      Breaker.create ~threshold:cfg.breaker_threshold ~cooldown:cfg.breaker_cooldown_s
        ~now:Unix.gettimeofday ();
    b_pool = ref [];
    b_pm = Mutex.create ();
    b_attempts = 0;
  }

let run ?journal ?(ready = fun () -> ()) (config : config) =
  if config.backends = [] then
    Serve_error.fail Serve_error.Invalid_config "router needs at least one backend";
  let names = List.map fst config.backends in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    Serve_error.fail Serve_error.Invalid_config "backend names must be distinct";
  if config.workers < 1 then
    Serve_error.fail Serve_error.Invalid_config "router needs at least one worker";
  (* Upstream writes race with backend crashes by design; a broken pipe
     must surface as EPIPE on the write, not kill the router. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t =
    {
      cfg = config;
      ring = Hash_ring.create ~vnodes:config.vnodes names;
      backends = Array.of_list (List.map (make_backend config) config.backends);
      by_name = Hashtbl.create 8;
      stats = Serve_stats.create ();
      memo = Predmemo.create ~capacity:config.memo_capacity;
      journal;
      jm = Mutex.create ();
      now = Unix.gettimeofday;
      draining = Atomic.make false;
    }
  in
  Array.iter (fun b -> Hashtbl.replace t.by_name b.b_name b) t.backends;
  let listener = Serve_daemon.bind_listener config.listen in
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  journal_event t "router_start"
    [
      ("backends", Runlog.I (Array.length t.backends));
      ("workers", Runlog.I config.workers);
      ("vnodes", Runlog.I config.vnodes);
    ];
  let queue : job Squeue.t = Squeue.create ~capacity:config.queue_depth in
  let reactor = Reactor.create ~listener () in
  Reactor.set_on_line reactor (fun ticket line ->
      if Atomic.get t.draining then
        Reactor.resolve ticket
          (Sjson.to_string (shed_reply t ~why:"router shutting down"))
      else begin
        let job = { line; arrival = t.now (); ticket } in
        if not (Squeue.try_push queue job) then
          Reactor.resolve ticket
            (Sjson.to_string (shed_reply t ~why:"request queue full"))
      end);
  let workers =
    List.init config.workers (fun k -> Thread.create (worker_loop t queue k) ())
  in
  let stop_probe = Atomic.make false in
  let prober = Thread.create (prober_loop t stop_probe) () in
  (* Workers exit once the queue is closed (shutdown op) and drained; only
     then may the reactor stop, with every ticket resolved. *)
  let closer =
    Thread.create
      (fun () ->
        List.iter Thread.join workers;
        Atomic.set stop_probe true;
        Thread.join prober;
        Reactor.stop reactor)
      ()
  in
  ready ();
  Reactor.run reactor;
  Thread.join closer;
  Array.iter flush_pool t.backends;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  match config.listen with
  | Serve_daemon.Unix_socket path -> (
    try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | Serve_daemon.Tcp _ -> ()
