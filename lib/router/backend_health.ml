(* Per-backend liveness and latency tracking.

   A backend starts admitted ("up"). [eject_after] consecutive failures —
   from probes or real requests, both feed the same streak — eject it; any
   single success re-admits it. Latency is a 0.7/0.3 EWMA over successful
   round trips (the same blend the serve engine uses for its headroom
   estimate). All transitions happen under one mutex so concurrent
   forwarder threads and the prober never double-count an ejection. *)

type t = {
  m : Mutex.t;
  eject_after : int;
  mutable up : bool;
  mutable streak : int;  (* consecutive failures *)
  mutable ewma_s : float;  (* 0 until the first success *)
  mutable successes : int;
  mutable failures : int;
  mutable ejections : int;
  mutable readmissions : int;
}

let create ?(eject_after = 3) () =
  if eject_after < 1 then invalid_arg "Backend_health.create: eject_after must be >= 1";
  {
    m = Mutex.create ();
    eject_after;
    up = true;
    streak = 0;
    ewma_s = 0.0;
    successes = 0;
    failures = 0;
    ejections = 0;
    readmissions = 0;
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Both recorders return whether the up/down state flipped, so the caller
   can journal ejections/readmissions without re-deriving transitions. *)
let record_success t ~latency_s =
  with_lock t (fun () ->
      t.successes <- t.successes + 1;
      t.streak <- 0;
      t.ewma_s <-
        (if t.ewma_s = 0.0 then latency_s else (0.7 *. t.ewma_s) +. (0.3 *. latency_s));
      if not t.up then begin
        t.up <- true;
        t.readmissions <- t.readmissions + 1;
        true
      end
      else false)

let record_failure t =
  with_lock t (fun () ->
      t.failures <- t.failures + 1;
      t.streak <- t.streak + 1;
      if t.up && t.streak >= t.eject_after then begin
        t.up <- false;
        t.ejections <- t.ejections + 1;
        true
      end
      else false)

let up t = with_lock t (fun () -> t.up)
let ewma_ms t = with_lock t (fun () -> 1000.0 *. t.ewma_s)
let consecutive_failures t = with_lock t (fun () -> t.streak)
let successes t = with_lock t (fun () -> t.successes)
let failures t = with_lock t (fun () -> t.failures)
let ejections t = with_lock t (fun () -> t.ejections)
let readmissions t = with_lock t (fun () -> t.readmissions)
