(** Consistent hash ring over CRC-32 points (the router's placement
    function).

    Placement is deterministic across processes: a key's owner depends only
    on the node-name set and [vnodes], never on process state or node list
    order. Adding or removing one node moves only the keys that gain or
    lose that node (minimal disruption). *)

type t

val create : ?vnodes:int -> string list -> t
(** [create nodes] builds a ring with [vnodes] virtual points per node
    (default 128). Raises [Invalid_argument] on an empty or duplicate node
    list, or [vnodes < 1]. *)

val lookup : t -> key:string -> string
(** The node owning [key] (its primary replica). *)

val successors : t -> key:string -> int -> string list
(** The first [n] {e distinct} nodes clockwise from [key] — the retry
    order: primary first, then failover replicas. Capped at the node
    count. *)

val nodes : t -> string list
(** Node names, in the order given to {!create}. *)

val node_count : t -> int

val point_of_key : string -> int
(** The ring coordinate of a key (exposed for determinism tests). *)

val spread : t -> string list -> (string * int) list
(** Keys-per-node histogram for a key list (balance tests, stats). *)
