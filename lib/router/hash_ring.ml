(* Consistent hash ring over CRC-32 points.

   Each node contributes [vnodes] virtual points at
   mix(crc32(name ^ "#" ^ i)); a key lands on the first point clockwise
   from mix(crc32(key)). The CRC is the same digest [Simcache] keys its
   entries with, so a request's shard is a pure function of its canonical
   config descriptor — deterministic across processes and across restarts.
   The extra avalanche mix matters: CRC-32 of near-identical strings
   ("b#1" vs "b#2") differs in few bits, and without finalization the
   points would clump. Ties (astronomically rare 32-bit collisions) break
   on node name so placement is independent of the order nodes were
   listed. *)

type t = {
  points : (int * string) array;  (* (ring point, node), sorted ascending *)
  nodes : string array;  (* distinct node names, input order *)
}

(* 32-bit avalanche finalizer (the classic murmur3-style fmix variant with
   Ettinger's constants). *)
let mix h =
  let m = 0xFFFFFFFF in
  let h = h land m in
  let h = h lxor (h lsr 16) in
  let h = h * 0x7feb352d land m in
  let h = h lxor (h lsr 15) in
  let h = h * 0x846ca68b land m in
  h lxor (h lsr 16)

let point_of_key key = mix (Crc32.digest key)

let create ?(vnodes = 128) nodes =
  if nodes = [] then invalid_arg "Hash_ring.create: need at least one node";
  if vnodes < 1 then invalid_arg "Hash_ring.create: vnodes must be >= 1";
  let distinct = List.sort_uniq String.compare nodes in
  if List.length distinct <> List.length nodes then
    invalid_arg "Hash_ring.create: node names must be distinct";
  let points =
    Array.init
      (List.length nodes * vnodes)
      (fun k ->
        let node = List.nth nodes (k / vnodes) in
        (point_of_key (Printf.sprintf "%s#%d" node (k mod vnodes)), node))
  in
  Array.sort
    (fun (p1, n1) (p2, n2) ->
      match compare (p1 : int) p2 with 0 -> String.compare n1 n2 | c -> c)
    points;
  { points; nodes = Array.of_list nodes }

let nodes t = Array.to_list t.nodes
let node_count t = Array.length t.nodes

(* Index of the first point with point >= p, wrapping past the top. *)
let first_at_or_after t p =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < p then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let lookup t ~key = snd t.points.(first_at_or_after t (point_of_key key))

let successors t ~key n =
  let n = min n (Array.length t.nodes) in
  if n <= 0 then []
  else begin
    let start = first_at_or_after t (point_of_key key) in
    let total = Array.length t.points in
    let seen = Hashtbl.create 8 in
    let out = ref [] in
    let i = ref 0 in
    while List.length !out < n && !i < total do
      let node = snd t.points.((start + !i) mod total) in
      if not (Hashtbl.mem seen node) then begin
        Hashtbl.add seen node ();
        out := node :: !out
      end;
      incr i
    done;
    List.rev !out
  end

(* Per-node share of [keys], for balance tests and the stats reply. *)
let spread t keys =
  let counts = Hashtbl.create 8 in
  Array.iter (fun n -> Hashtbl.replace counts n 0) t.nodes;
  List.iter
    (fun k ->
      let n = lookup t ~key:k in
      Hashtbl.replace counts n (1 + Hashtbl.find counts n))
    keys;
  Array.to_list (Array.map (fun n -> (n, Hashtbl.find counts n)) t.nodes)
