(** Fault-tolerant shard router: one front process consistent-hashing wire
    requests across N backend serve daemons.

    Placement is keyed by the canonical cache-config descriptor (the same
    CRC-32'd tag [Simcache] uses), so requests for one geometry always hit
    the same shard. Failures are absorbed end to end: health-checked
    backends with consecutive-failure ejection, bounded retries with
    jittered exponential backoff onto successor replicas, per-backend
    circuit breakers, per-attempt (hedge) timeouts under the request
    deadline, and — when no replica is usable — graceful degradation to
    the in-process analytical baseline, tagged in the reply. A [reload]
    wire verb rolls a zero-downtime model hot-swap across every backend.

    Speaks exactly the serve daemon's line-delimited JSON protocol, so
    [cachebox call] and [cachebox loadgen] work unchanged against it. *)

type config = {
  listen : Serve_daemon.listen;  (** where the router accepts clients *)
  backends : (string * Serve_daemon.listen) list;
      (** distinct name → backend address; names seed ring placement, so
          keep them stable across restarts *)
  queue_depth : int;  (** admission queue bound; overflow is shed *)
  workers : int;  (** concurrent forwarder threads *)
  vnodes : int;  (** ring virtual nodes per backend *)
  max_attempts : int;  (** total upstream attempts per request *)
  backoff_base_s : float;  (** retry backoff: min(max, base*2^k)*U(.5,1) *)
  backoff_max_s : float;
  attempt_timeout_s : float;
      (** per-attempt (hedge) timeout, clamped to the request deadline *)
  reload_timeout_s : float;  (** reloads load + warm a model: generous *)
  probe_interval_s : float;  (** health-probe cadence per backend *)
  probe_timeout_s : float;
  eject_after : int;  (** consecutive failures before ejection *)
  breaker_threshold : int;
  breaker_cooldown_s : float;
  fallback : Cbox_infer.fallback;
      (** router-level degradation baseline; [No_fallback] turns
          exhaustion into [upstream_unavailable] errors *)
  memo_capacity : int;  (** prediction memo entries; 0 disables *)
  default_deadline_s : float;  (** for requests without [deadline_ms] *)
  max_trace_len : int;
}

val default_config :
  listen:Serve_daemon.listen ->
  backends:(string * Serve_daemon.listen) list ->
  config
(** 4 workers, 128 vnodes, 3 attempts, 25 ms–0.5 s backoff, 2 s attempt
    timeout, 1 s probes (0.5 s timeout), eject after 3, breaker 3/5 s,
    HRD fallback, 256-entry memo, 5 s default deadline. *)

val run : ?journal:Runlog.t -> ?ready:(unit -> unit) -> config -> unit
(** Serve until a [shutdown] request: bind the listener, start the reactor,
    forwarder pool and prober, call [ready] once accepting. Installs a
    SIGPIPE-ignore handler (upstream sockets die mid-write by design).
    Raises {!Serve_error.Error} ([Invalid_config]) on an empty or
    duplicate-named backend list, or an unbindable/unresolvable address. *)
