(* Content-addressed prediction memo — the serving twin of [Simcache].

   Keys are canonical descriptor strings covering everything a prediction
   depends on (config tag + trace source digest); values are wire replies
   with the per-request fields (id, latency_ms, memo) stripped, so a hit
   can be re-dressed for any requester. Bounded LRU: a hashtable over an
   intrusive doubly-linked recency list, all under one mutex (forwarder
   threads share the memo). Capacity 0 disables the memo entirely. *)

type node = {
  key : string;
  mutable value : Sjson.t;
  mutable prev : node option;  (* towards MRU *)
  mutable next : node option;  (* towards LRU *)
}

type t = {
  m : Mutex.t;
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Predmemo.create: capacity must be >= 0";
  {
    m = Mutex.create ();
    capacity;
    table = Hashtbl.create (max 16 capacity);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* list surgery (lock held) *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.mru;
  n.prev <- None;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let find t key =
  if t.capacity = 0 then None
  else
    with_lock t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some n ->
          t.hits <- t.hits + 1;
          unlink t n;
          push_front t n;
          Some n.value
        | None ->
          t.misses <- t.misses + 1;
          None)

let add t key value =
  if t.capacity > 0 then
    with_lock t (fun () ->
        (match Hashtbl.find_opt t.table key with
        | Some n ->
          n.value <- value;
          unlink t n;
          push_front t n
        | None ->
          let n = { key; value; prev = None; next = None } in
          Hashtbl.replace t.table key n;
          push_front t n);
        while Hashtbl.length t.table > t.capacity do
          match t.lru with
          | None -> Hashtbl.reset t.table (* unreachable: table larger than list *)
          | Some victim ->
            unlink t victim;
            Hashtbl.remove t.table victim.key;
            t.evictions <- t.evictions + 1
        done)

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.mru <- None;
      t.lru <- None)

let length t = with_lock t (fun () -> Hashtbl.length t.table)
let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let evictions t = with_lock t (fun () -> t.evictions)
let capacity t = t.capacity
