(** Per-backend liveness + EWMA latency for the router.

    Thread-safe; probe and request outcomes feed the same failure streak.
    A backend is ejected after [eject_after] consecutive failures and
    re-admitted by any success. *)

type t

val create : ?eject_after:int -> unit -> t
(** [eject_after] defaults to 3; must be [>= 1]. A fresh backend is up. *)

val record_success : t -> latency_s:float -> bool
(** Resets the failure streak, folds the latency into the EWMA
    (0.7 old / 0.3 new). Returns [true] iff this re-admitted a
    previously-ejected backend. *)

val record_failure : t -> bool
(** Extends the failure streak. Returns [true] iff this ejected the
    backend (streak just reached the threshold). *)

val up : t -> bool
val ewma_ms : t -> float  (** 0 before the first success *)

val consecutive_failures : t -> int
val successes : t -> int
val failures : t -> int
val ejections : t -> int
val readmissions : t -> int
