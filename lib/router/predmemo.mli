(** Bounded LRU memo of model predictions, keyed by content-addressed
    descriptor strings (the serving twin of [Simcache]). Thread-safe.
    Capacity 0 disables the memo ({!find} always misses, {!add} is a
    no-op). *)

type t

val create : capacity:int -> t
val find : t -> string -> Sjson.t option  (** hit promotes to MRU *)

val add : t -> string -> Sjson.t -> unit
(** Insert or refresh; evicts from the LRU end past capacity. *)

val clear : t -> unit
(** Drop every entry (after a cluster-wide reload the old model's
    predictions are stale). Hit/miss counters survive. *)

val length : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val capacity : t -> int
