(* CacheBox command-line interface.

   Subcommands mirror the paper artifact's workflow:
     list       - enumerate the benchmark roster
     simulate   - trace-driven cache/hierarchy simulation (ChampSim role)
     heatmap    - trace -> access/miss heatmaps (HeatmapDataGenerator role)
     train      - train a CB-GAN and write a checkpoint
     infer      - load a checkpoint and predict hit rates (+ hit-rate calc)
     baselines  - HRD / STM / TabSynth predictions for comparison
     serve      - hardened line-delimited-JSON inference daemon
     call       - one-shot client for a running serve daemon
     route      - fault-tolerant shard router over N serve daemons

   Every externally-caused failure exits with the stable taxonomy code
   (see Serve_error): bad request/config 2, corrupt input 3, model
   unavailable 4, deadline 5, overloaded 6, internal 7. *)

open Cmdliner

let die (e : Serve_error.t) =
  Fmt.epr "%a@." Serve_error.pp e;
  exit (Serve_error.exit_code e.Serve_error.code)

let or_die = function Ok v -> v | Error e -> die e

(* --- shared arguments --- *)

let sets_arg =
  Arg.(value & opt int 64 & info [ "sets" ] ~docv:"N" ~doc:"Number of cache sets (power of two).")

let ways_arg = Arg.(value & opt int 12 & info [ "ways" ] ~docv:"N" ~doc:"Cache associativity.")

let trace_len_arg =
  Arg.(value & opt int 16_000 & info [ "trace-len" ] ~docv:"N" ~doc:"Accesses per benchmark trace.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
      ~docv:"N"
      ~doc:
        "Worker domains for the parallel compute backend (default: \
         $(b,CACHEBOX_DOMAINS) or all cores). Results are bit-identical for \
         every value.")

let apply_domains = function
  | None -> ()
  | Some n when n >= 1 -> Dpool.set_domains n
  | Some n ->
    Fmt.epr "--domains must be at least 1 (got %d)@." n;
    exit 2

let simcache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "simcache" ] ~docv:"DIR"
      ~doc:
        "Cache ground-truth simulation results under $(docv) (default: \
         $(b,CACHEBOX_SIMCACHE)). Entries are keyed by workload, trace \
         length, cache configs and heatmap spec; corrupt or stale entries \
         are ignored and regenerated.")

let apply_simcache = function None -> () | Some d -> Simcache.set_dir (Some d)

let workload_arg idx =
  Arg.(required & pos idx (some string) None & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name (see $(b,cachebox list)).")

let find_workload name =
  try Suite.find name
  with Not_found ->
    Fmt.epr "unknown benchmark %S; try `cachebox list`@." name;
    exit 2

(* All CLI cache geometry flows through the shared Validate gate: an
   impossible --sets/--ways prints the taxonomy error and exits 2 instead
   of dying on an uncaught Invalid_argument. *)
let cache_config ~sets ~ways = or_die (Validate.cache_config ~sets ~ways ())

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun suite ->
        Fmt.pr "== %s ==@." (Workload.suite_name suite);
        List.iter
          (fun w -> Fmt.pr "  %-28s (group %s)@." w.Workload.name w.Workload.group)
          (Suite.of_suite suite))
      [ Workload.Spec; Workload.Ligra; Workload.Polybench ]
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark roster")
    Term.(const run $ const ())

(* --- simulate --- *)

let simulate_cmd =
  let levels_arg =
    Arg.(value & opt int 1 & info [ "levels" ] ~docv:"N" ~doc:"Hierarchy depth (1-3).")
  in
  let prefetcher_arg =
    Arg.(value & opt string "none" & info [ "prefetcher" ] ~docv:"KIND" ~doc:"L1 prefetcher: none, next-line or stride.")
  in
  let run name sets ways trace_len levels prefetcher =
    let w = find_workload name in
    let trace = w.Workload.generate trace_len in
    let l1 = cache_config ~sets ~ways in
    let l2 = if levels >= 2 then Some (cache_config ~sets:(sets * 4) ~ways:8) else None in
    let l3 = if levels >= 3 then Some (cache_config ~sets:(sets * 8) ~ways:16) else None in
    or_die (Validate.hierarchy_configs (l1 :: (Option.to_list l2 @ Option.to_list l3)));
    let pf =
      match prefetcher with
      | "none" -> Prefetch.No_prefetch
      | "next-line" -> Prefetch.Next_line
      | "stride" -> Prefetch.Stride { degree = 2; table_size = 64 }
      | other ->
        Fmt.epr "unknown prefetcher %S@." other;
        exit 2
    in
    let h = Hierarchy.create ?l2 ?l3 ~l1_prefetcher:pf ~l1 () in
    Hierarchy.run h trace;
    Fmt.pr "benchmark: %s (%d accesses)@." name trace_len;
    List.iter
      (fun (lvl, (s : Cache.stats)) ->
        Fmt.pr "%s: accesses %8d  hits %8d  misses %8d  hit rate %.4f@."
          (Hierarchy.level_name lvl) s.Cache.accesses s.Cache.hits s.Cache.misses
          (Cache.hit_rate s))
      (Hierarchy.stats h);
    let pf_count = Array.length (Hierarchy.prefetched_addresses h) in
    if pf_count > 0 then Fmt.pr "prefetches issued: %d@." pf_count
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run a benchmark through the cache hierarchy simulator")
    Term.(const run $ workload_arg 0 $ sets_arg $ ways_arg $ trace_len_arg $ levels_arg $ prefetcher_arg)

(* --- heatmap --- *)

let heatmap_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc:"Write PGM images into DIR.")
  in
  let run name sets ways trace_len out =
    let w = find_workload name in
    let spec = Heatmap.spec () in
    let trace = w.Workload.generate trace_len in
    let cache = Cache.create (cache_config ~sets ~ways) in
    let hits = Array.map (fun a -> Cache.access cache a) trace in
    let pairs = Heatmap.pair_of_trace spec ~addresses:trace ~hits in
    Fmt.pr "%d heatmap pair(s); true hit rate %.4f@." (List.length pairs)
      (Heatmap.hit_rate spec ~access:(List.map fst pairs) ~miss:(List.map snd pairs));
    (match pairs with
    | (a, m) :: _ ->
      Fmt.pr "access heatmap:@.%s" (Heatmap.render_ascii a);
      Fmt.pr "miss heatmap:@.%s" (Heatmap.render_ascii m)
    | [] -> ());
    match out with
    | None -> ()
    | Some dir ->
      List.iteri
        (fun i (a, m) ->
          let base = Filename.concat dir (Printf.sprintf "%s_%02d" name i) in
          Heatmap.write_pgm (base ^ "_access.pgm") a;
          Heatmap.write_pgm (base ^ "_miss.pgm") m)
        pairs;
      Fmt.pr "wrote %d PGM pairs to %s@." (List.length pairs) dir
  in
  Cmd.v (Cmd.info "heatmap" ~doc:"Generate access/miss heatmaps for a benchmark")
    Term.(const run $ workload_arg 0 $ sets_arg $ ways_arg $ trace_len_arg $ out_arg)

(* --- train --- *)

let checkpoint_arg =
  Arg.(value & opt string "cachebox.ckpt" & info [ "checkpoint" ] ~docv:"FILE" ~doc:"Model checkpoint path.")

let epochs_arg = Arg.(value & opt int 10 & info [ "epochs" ] ~docv:"N" ~doc:"Training epochs.")

let train_cmd =
  let count_arg =
    Arg.(value & opt int 10 & info [ "benchmarks" ] ~docv:"N" ~doc:"Training benchmarks (from the train split).")
  in
  let snapshot_every_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Write a training snapshot every N batches (atomic, checksummed; the last 3 are \
             kept). Required for $(b,--resume).")
  in
  let snapshot_dir_arg =
    Arg.(
      value
      & opt string "_snapshots"
      & info [ "snapshot-dir" ] ~docv:"DIR" ~doc:"Directory for rotating training snapshots.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the newest loadable snapshot in $(b,--snapshot-dir); the continued \
             run is bit-identical to one that was never interrupted.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Append run events (snapshots, divergence rollbacks, resumes) to a JSONL journal.")
  in
  let run sets ways trace_len epochs ckpt count domains simcache snapshot_every snapshot_dir
      resume journal =
    apply_domains domains;
    apply_simcache simcache;
    let spec = Heatmap.spec () in
    let cfg = cache_config ~sets ~ways in
    let split = Suite.split (Suite.all ()) in
    let train_ws = List.filteri (fun i _ -> i < count) split.Suite.train in
    Fmt.pr "building dataset: %d benchmarks, %s, %d-access traces@." (List.length train_ws)
      (Cache.config_name cfg) trace_len;
    let data = Cbox_dataset.build_l1 spec ~configs:[ cfg ] ~trace_len train_ws in
    let model = Cbgan.create ~seed:42 (Cbgan.default_config ()) in
    let snapshots_on = snapshot_every <> None || resume in
    let options =
      {
        (Cbox_train.default_options ~epochs ~batch_size:4 ?snapshot_every
           ?snapshot_dir:(if snapshots_on then Some snapshot_dir else None)
           ?journal ())
        with
        Cbox_train.lr = 1e-3;
      }
    in
    ignore
      (Cbox_train.train ~log:print_endline ~resume model spec options
         (Cbox_dataset.to_samples data));
    Cbgan.save model ckpt;
    Fmt.pr "checkpoint written to %s (%d parameters)@." ckpt (Cbgan.parameter_count model)
  in
  Cmd.v (Cmd.info "train" ~doc:"Train CB-GAN on the training split and save a checkpoint")
    Term.(
      const run $ sets_arg $ ways_arg $ trace_len_arg $ epochs_arg $ checkpoint_arg $ count_arg
      $ domains_arg $ simcache_arg $ snapshot_every_arg $ snapshot_dir_arg $ resume_arg
      $ journal_arg)

(* --- distill --- *)

let distill_cmd =
  let count_arg =
    Arg.(value & opt int 10 & info [ "benchmarks" ] ~docv:"N" ~doc:"Distillation benchmarks (from the train split).")
  in
  let out_arg =
    Arg.(value & opt string "student.ckpt" & info [ "out" ] ~docv:"FILE" ~doc:"Student checkpoint path to write.")
  in
  let temperature_arg =
    Arg.(value & opt float 1.0 & info [ "temperature" ] ~docv:"T" ~doc:"Teacher-imitation weight in [0, 1]: 0 trains purely against ground truth (the teacher is never evaluated), 1 purely against the teacher's heatmaps.")
  in
  let feat_weight_arg =
    Arg.(value & opt float 0.0 & info [ "feat-weight" ] ~docv:"W" ~doc:"Bottleneck feature-matching weight; 0 disables the term (and its training-time adapter).")
  in
  let depth_div_arg =
    Arg.(value & opt int 2 & info [ "depth-div" ] ~docv:"D" ~doc:"Student depth = teacher levels / D (floor 2).")
  in
  let width_div_arg =
    Arg.(value & opt int 2 & info [ "width-div" ] ~docv:"D" ~doc:"Student width = teacher channels / D.")
  in
  let snapshot_every_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Write a distillation snapshot every N batches (atomic, checksummed; the last \
             3 are kept). Required for $(b,--resume).")
  in
  let snapshot_dir_arg =
    Arg.(
      value
      & opt string "_snapshots"
      & info [ "snapshot-dir" ] ~docv:"DIR" ~doc:"Directory for rotating distillation snapshots.")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the newest loadable snapshot in $(b,--snapshot-dir); the continued \
             run is bit-identical to one that was never interrupted.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Append run events (snapshots, divergence rollbacks, resumes) to a JSONL journal.")
  in
  let run sets ways trace_len epochs ckpt out count temperature feat_weight depth_div
      width_div domains simcache snapshot_every snapshot_dir resume journal =
    apply_domains domains;
    apply_simcache simcache;
    let spec = Heatmap.spec () in
    let cfg = cache_config ~sets ~ways in
    let teacher =
      match
        Serve_engine.model_of_checkpoint ~seed:42 (Cbgan.default_config ()) ~path:ckpt
      with
      | Ok model -> model
      | Error e ->
        Fmt.epr "%a@." Serve_error.pp e;
        Fmt.epr "distillation needs a trained teacher; run `cachebox train` first@.";
        exit (Serve_error.exit_code e.Serve_error.code)
    in
    let split = Suite.split (Suite.all ()) in
    let train_ws = List.filteri (fun i _ -> i < count) split.Suite.train in
    Fmt.pr "building dataset: %d benchmarks, %s, %d-access traces@." (List.length train_ws)
      (Cache.config_name cfg) trace_len;
    let data = Cbox_dataset.build_l1 spec ~configs:[ cfg ] ~trace_len train_ws in
    let scfg =
      Distill.student_config ~depth_div ~width_div (Cbgan.model_config teacher)
    in
    let student = Student.create ~seed:7 scfg in
    Fmt.pr "student: %d levels, ngf %d — %d parameters (teacher %d)@."
      scfg.Student.st_levels scfg.Student.st_ngf
      (Student.parameter_count student)
      (Cbgan.parameter_count teacher);
    let snapshots_on = snapshot_every <> None || resume in
    let options =
      {
        (Distill.default_options ~epochs ~temperature ~feat_weight ?snapshot_every
           ?snapshot_dir:(if snapshots_on then Some snapshot_dir else None)
           ?journal ())
        with
        Distill.batch_size = 4;
      }
    in
    let stats =
      Distill.train ~log:print_endline ~resume ~teacher student spec options
        (Cbox_dataset.to_samples data)
    in
    (match List.rev stats with
    | last :: _ ->
      Fmt.pr "final epoch %d: pixel loss %.6f, feature loss %.6f over %d batches@."
        last.Distill.epoch last.Distill.pixel last.Distill.feat last.Distill.batches
    | [] -> ());
    Student.save student out;
    Fmt.pr "student checkpoint written to %s (%d parameters)@." out
      (Student.parameter_count student)
  in
  Cmd.v
    (Cmd.info "distill"
       ~doc:
         "Distill a trained CB-GAN teacher into a half-depth/half-width student \
          checkpoint for the student/student-int8 serving backends")
    Term.(
      const run $ sets_arg $ ways_arg $ trace_len_arg $ epochs_arg $ checkpoint_arg
      $ out_arg $ count_arg $ temperature_arg $ feat_weight_arg $ depth_div_arg
      $ width_div_arg $ domains_arg $ simcache_arg $ snapshot_every_arg $ snapshot_dir_arg
      $ resume_arg $ journal_arg)

(* --- infer --- *)

let fallback_arg =
  Arg.(
    value
    & opt string "none"
    & info [ "fallback" ] ~docv:"KIND"
        ~doc:
          "Analytical fallback when the learned model is unusable: $(b,hrd), $(b,stm) or \
           $(b,none). With $(b,none), a missing or corrupt checkpoint is a hard taxonomy \
           error.")

let parse_fallback s =
  match Cbox_infer.fallback_of_string s with
  | Some f -> f
  | None ->
    die (Serve_error.v Serve_error.Bad_request "unknown fallback %S (hrd|stm|none)" s)

let backend_arg =
  Arg.(
    value
    & opt string "float32"
    & info [ "backend" ] ~docv:"KIND"
        ~env:(Cmd.Env.info "CACHEBOX_BACKEND")
        ~doc:
          "Serving backend: $(b,float32) (the learned model), $(b,int8) (its \
           post-training quantization), $(b,student) (the distilled half-depth/\
           half-width generator), $(b,student-int8) (the student's int8 \
           quantization; the two speedups compose), or the analytical \
           $(b,hrd)/$(b,stm) predictors. Every derived backend degrades to \
           float32 when its model is unavailable or faults.")

let parse_backend s =
  match Cbox_infer.backend_of_string s with
  | Some b -> b
  | None ->
    die
      (Serve_error.v Serve_error.Invalid_config
         "unknown backend %S (float32|int8|student|student-int8|hrd|stm)" s)

let student_checkpoint_arg =
  Arg.(
    value
    & opt string "student.ckpt"
    & info [ "student" ] ~docv:"FILE"
        ~env:(Cmd.Env.info "CACHEBOX_STUDENT")
        ~doc:
          "Distilled student checkpoint, used by the $(b,student) and \
           $(b,student-int8) backends (written by $(b,cachebox distill)).")

let infer_cmd =
  let run name sets ways trace_len ckpt student_ckpt domains fallback backend =
    apply_domains domains;
    let fallback = parse_fallback fallback in
    let backend = parse_backend backend in
    let spec = Heatmap.spec () in
    let cfg = cache_config ~sets ~ways in
    let w = find_workload name in
    let data = Cbox_dataset.build_l1 spec ~configs:[ cfg ] ~trace_len [ w ] in
    match backend with
    | Cbox_infer.Backend_hrd | Cbox_infer.Backend_stm ->
      (* Explicitly requested analytical backends are first-class answers,
         not degradations: no checkpoint is loaded at all. *)
      let fb =
        if backend = Cbox_infer.Backend_hrd then Cbox_infer.Fallback_hrd
        else Cbox_infer.Fallback_stm
      in
      List.iter
        (fun (d : Cbox_dataset.benchmark_data) ->
          let trace = d.Cbox_dataset.workload.Workload.generate trace_len in
          let predicted =
            Option.get (Cbox_infer.baseline_hit_rate fb d.Cbox_dataset.cache trace)
          in
          Fmt.pr "%-24s %s: true %.4f predicted %.4f |diff| %.2f%% (backend %s)@."
            d.Cbox_dataset.workload.Workload.name (Cache.config_name cfg)
            d.Cbox_dataset.true_hit_rate predicted
            (Metrics.abs_pct_diff ~truth:d.Cbox_dataset.true_hit_rate ~predicted)
            (Cbox_infer.backend_name backend))
        data
    | Cbox_infer.Backend_student | Cbox_infer.Backend_student_int8 ->
      (* The student ladder mirrors the daemon's: a missing/corrupt student
         checkpoint (or a failed int8 compilation of it) re-runs the request
         on the float32 teacher, flagged, never silently. *)
      let want_int8 = backend = Cbox_infer.Backend_student_int8 in
      let served =
        match Student.load student_ckpt with
        | exception Failure why ->
          Error
            ( why,
              if want_int8 then "student_int8_unavailable" else "student_unavailable" )
        | exception e ->
          Error
            ( Printexc.to_string e,
              if want_int8 then "student_int8_unavailable" else "student_unavailable" )
        | s ->
          if not want_int8 then Ok (`Student s)
          else (
            match Qgen.of_student ~spec s with
            | q -> Ok (`Qstudent q)
            | exception _ ->
              Error ("int8 compilation failed", "student_int8_unavailable"))
      in
      (match served with
      | Ok m ->
        List.iter
          (fun (d : Cbox_dataset.benchmark_data) ->
            let p =
              match m with
              | `Student s -> Cbox_infer.spredict s spec d
              | `Qstudent q -> Cbox_infer.qpredict q spec d
            in
            Fmt.pr "%-24s %s: true %.4f predicted %.4f |diff| %.2f%% (backend %s)@."
              p.Cbox_infer.benchmark (Cache.config_name cfg) p.Cbox_infer.true_hit_rate
              p.Cbox_infer.predicted_hit_rate (Cbox_infer.abs_pct_diff p)
              (Cbox_infer.backend_name backend))
          data
      | Error (why, reason) -> (
        Fmt.epr "student backend unusable (%s: %s); degrading to float32@." student_ckpt
          why;
        match
          Serve_engine.model_of_checkpoint ~seed:42 (Cbgan.default_config ()) ~path:ckpt
        with
        | Ok model ->
          List.iter
            (fun (d : Cbox_dataset.benchmark_data) ->
              let p = Cbox_infer.predict model spec d in
              Fmt.pr
                "%-24s %s: true %.4f predicted %.4f |diff| %.2f%% (backend float32, \
                 degraded: %s)@."
                p.Cbox_infer.benchmark (Cache.config_name cfg) p.Cbox_infer.true_hit_rate
                p.Cbox_infer.predicted_hit_rate (Cbox_infer.abs_pct_diff p) reason)
            data
        | Error e ->
          Fmt.epr "%a@." Serve_error.pp e;
          if fallback = Cbox_infer.No_fallback then begin
            Fmt.epr
              "no fallback enabled; rerun with --fallback hrd|stm or `cachebox train`@.";
            exit (Serve_error.exit_code e.Serve_error.code)
          end;
          List.iter
            (fun (d : Cbox_dataset.benchmark_data) ->
              let trace = d.Cbox_dataset.workload.Workload.generate trace_len in
              let predicted =
                Option.get
                  (Cbox_infer.baseline_hit_rate fallback d.Cbox_dataset.cache trace)
              in
              Fmt.pr
                "%-24s %s: true %.4f predicted %.4f |diff| %.2f%% (degraded: %s \
                 fallback)@."
                d.Cbox_dataset.workload.Workload.name (Cache.config_name cfg)
                d.Cbox_dataset.true_hit_rate predicted
                (Metrics.abs_pct_diff ~truth:d.Cbox_dataset.true_hit_rate ~predicted)
                (Cbox_infer.fallback_name fallback))
            data))
    | Cbox_infer.Backend_float32 | Cbox_infer.Backend_int8 ->
      let model =
        match
          Serve_engine.model_of_checkpoint ~seed:42 (Cbgan.default_config ()) ~path:ckpt
        with
        | Ok model -> Some model
        | Error e ->
          Fmt.epr "%a@." Serve_error.pp e;
          if fallback = Cbox_infer.No_fallback then begin
            Fmt.epr
              "no fallback enabled; rerun with --fallback hrd|stm or `cachebox train`@.";
            exit (Serve_error.exit_code e.Serve_error.code)
          end;
          Fmt.epr "degrading to the %s analytical baseline@."
            (Cbox_infer.fallback_name fallback);
          None
      in
      (* The int8 rung degrades to float32, never the other way round. *)
      let qmodel =
        match (backend, model) with
        | Cbox_infer.Backend_int8, Some m -> (
          match Qgen.of_model ~spec m with
          | q -> Some q
          | exception _ ->
            Fmt.epr "int8 quantization failed; degrading to float32@.";
            None)
        | _ -> None
      in
      List.iter
        (fun (d : Cbox_dataset.benchmark_data) ->
          match model with
          | Some model ->
            let p, tag =
              match qmodel with
              | Some q -> (Cbox_infer.qpredict q spec d, " (backend int8)")
              | None ->
                ( Cbox_infer.predict model spec d,
                  if backend = Cbox_infer.Backend_int8 then
                    " (backend float32, degraded: int8_unavailable)"
                  else "" )
            in
            Fmt.pr "%-24s %s: true %.4f predicted %.4f |diff| %.2f%%%s@."
              p.Cbox_infer.benchmark (Cache.config_name cfg) p.Cbox_infer.true_hit_rate
              p.Cbox_infer.predicted_hit_rate (Cbox_infer.abs_pct_diff p) tag
          | None ->
            let trace = d.Cbox_dataset.workload.Workload.generate trace_len in
            let predicted =
              Option.get (Cbox_infer.baseline_hit_rate fallback d.Cbox_dataset.cache trace)
            in
            Fmt.pr
              "%-24s %s: true %.4f predicted %.4f |diff| %.2f%% (degraded: %s fallback)@."
              d.Cbox_dataset.workload.Workload.name (Cache.config_name cfg)
              d.Cbox_dataset.true_hit_rate predicted
              (Metrics.abs_pct_diff ~truth:d.Cbox_dataset.true_hit_rate ~predicted)
              (Cbox_infer.fallback_name fallback))
        data
  in
  Cmd.v (Cmd.info "infer" ~doc:"Predict a benchmark's hit rate with a trained checkpoint")
    Term.(
      const run $ workload_arg 0 $ sets_arg $ ways_arg $ trace_len_arg $ checkpoint_arg
      $ student_checkpoint_arg $ domains_arg $ fallback_arg $ backend_arg)

(* --- serve / call --- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path (default cachebox.sock).")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Listen/connect on 127.0.0.1:PORT instead of a unix socket.")

let listen_of ~socket ~port =
  match (socket, port) with
  | _, Some p -> Serve_daemon.Tcp ("127.0.0.1", p)
  | Some path, None -> Serve_daemon.Unix_socket path
  | None, None -> Serve_daemon.Unix_socket "cachebox.sock"

let serve_cmd =
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N" ~doc:"Bounded request-queue capacity; overflow is shed with an $(b,overloaded) reply.")
  in
  let deadline_arg =
    Arg.(value & opt int 5000 & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Default per-request deadline.")
  in
  let breaker_threshold_arg =
    Arg.(value & opt int 3 & info [ "breaker-threshold" ] ~docv:"N" ~doc:"Consecutive model faults before the circuit breaker opens.")
  in
  let breaker_cooldown_arg =
    Arg.(value & opt int 5000 & info [ "breaker-cooldown-ms" ] ~docv:"MS" ~doc:"Cooldown before a half-open model probe.")
  in
  let max_trace_arg =
    Arg.(value & opt int Validate.default_max_trace_len & info [ "max-trace-len" ] ~docv:"N" ~doc:"Largest accepted trace, in accesses.")
  in
  let journal_serve_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc:"Append serve events (start/stop, degradations, breaker trips, sheds) to a JSONL journal.")
  in
  let batch_max_arg =
    Arg.(value & opt int Batcher.default_config.Batcher.max_batch & info [ "batch-max" ] ~docv:"N" ~doc:"Micro-batching: flush as soon as N infer requests have coalesced.")
  in
  let batch_linger_arg =
    Arg.(value & opt float 5.0 & info [ "batch-linger-ms" ] ~docv:"MS" ~doc:"Micro-batching: longest any request waits for batch mates before its batch is flushed.")
  in
  let replicas_arg =
    Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"N" ~doc:"Model replica pool size; due batches are executed concurrently across replicas.")
  in
  let senv name = Cmd.Env.info ("CACHEBOX_" ^ name) in
  let idle_timeout_arg =
    Arg.(value & opt int 0 & info [ "idle-timeout-ms" ] ~docv:"MS" ~env:(senv "IDLE_TIMEOUT_MS") ~doc:"Close connections idle this long with no reply owed (0 disables). Streaming connections are exempt while their session is live.")
  in
  let stream_sessions_arg =
    Arg.(value & opt int Stream_session.default_config.Stream_session.max_sessions & info [ "stream-sessions" ] ~docv:"N" ~env:(senv "STREAM_SESSIONS") ~doc:"Live streaming sessions admitted before opens shed with $(b,overloaded).")
  in
  let stream_credit_arg =
    Arg.(value & opt int Stream_session.default_config.Stream_session.retain_windows & info [ "stream-credit" ] ~docv:"W" ~env:(senv "STREAM_CREDIT") ~doc:"Per-session credit horizon: un-acknowledged window results retained for replay; feed credit never outruns this ring.")
  in
  let stream_pending_arg =
    Arg.(value & opt int Stream_session.default_config.Stream_session.max_pending_windows & info [ "stream-pending" ] ~docv:"N" ~env:(senv "STREAM_PENDING") ~doc:"Streamed windows in flight across all sessions before further windows degrade to the analytical baseline.")
  in
  let stream_bytes_arg =
    Arg.(value & opt int Stream_session.default_config.Stream_session.max_bytes & info [ "stream-bytes" ] ~docv:"B" ~env:(senv "STREAM_BYTES") ~doc:"Summed session buffer bytes before opens shed with $(b,overloaded).")
  in
  let stream_ttl_arg =
    Arg.(value & opt int 300_000 & info [ "stream-ttl-ms" ] ~docv:"MS" ~env:(senv "STREAM_TTL_MS") ~doc:"Idle streaming sessions older than this are evicted and release their quota.")
  in
  let student_arg =
    Arg.(value & opt (some string) None & info [ "student" ] ~docv:"FILE" ~env:(senv "STUDENT") ~doc:"Distilled student checkpoint for the $(b,student)/$(b,student-int8) backends; re-read on every reload/SIGHUP so the student hot-swaps with the teacher. A checkpoint that fails to load is rejected (journalled $(b,student_reject)) while float32 keeps serving.")
  in
  let run socket port ckpt student fallback backend queue_depth deadline_ms
      breaker_threshold breaker_cooldown_ms max_trace_len journal batch_max
      batch_linger_ms replicas idle_timeout_ms stream_sessions stream_credit
      stream_pending stream_bytes stream_ttl_ms domains =
    apply_domains domains;
    if Faultinject.arm_from_env () then
      Fmt.epr "cachebox serve: fault armed from CACHEBOX_FAULT@.";
    let fallback = parse_fallback fallback in
    let default_backend = parse_backend backend in
    let spec = Heatmap.spec () in
    let model =
      match
        Serve_engine.model_of_checkpoint ~seed:42 (Cbgan.default_config ()) ~path:ckpt
      with
      | Ok model -> Some model
      | Error e ->
        (* Startup survives a bad checkpoint: serve analytically, degraded,
           so callers keep getting (flagged) answers while the model is
           repaired. *)
        Fmt.epr "%a@." Serve_error.pp e;
        Fmt.epr "starting DEGRADED: every inference will use the %s baseline@."
          (Cbox_infer.fallback_name fallback);
        None
    in
    if model = None && fallback = Cbox_infer.No_fallback then begin
      Fmt.epr "no model and no fallback: refusing to start@.";
      exit (Serve_error.exit_code Serve_error.Model_unavailable)
    end;
    let listen = listen_of ~socket ~port in
    let config =
      {
        Serve_daemon.listen;
        queue_depth;
        batcher =
          {
            Batcher.default_config with
            Batcher.max_batch = batch_max;
            max_linger_s = batch_linger_ms /. 1000.0;
          };
        engine =
          {
            (Serve_engine.default_config ~fallback ~default_backend ()) with
            Serve_engine.default_deadline_s = float_of_int deadline_ms /. 1000.0;
            breaker_threshold;
            breaker_cooldown_s = float_of_int breaker_cooldown_ms /. 1000.0;
            max_trace_len;
            replicas;
          };
        stream =
          {
            Stream_session.max_sessions = stream_sessions;
            retain_windows = stream_credit;
            max_pending_windows = stream_pending;
            max_bytes = stream_bytes;
            session_ttl_s = float_of_int stream_ttl_ms /. 1000.0;
          };
        idle_timeout_s =
          (if idle_timeout_ms > 0 then Some (float_of_int idle_timeout_ms /. 1000.0)
           else None);
      }
    in
    let ready () =
      Fmt.pr
        "cachebox serve: listening on %s (model %s, student %s, fallback %s, default \
         backend %s)@."
        (match listen with
        | Serve_daemon.Unix_socket p -> "unix:" ^ p
        | Serve_daemon.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p)
        (if model = None then "UNAVAILABLE" else "loaded")
        (match student with None -> "none" | Some p -> p)
        (Cbox_infer.fallback_name fallback)
        (Cbox_infer.backend_name default_backend)
    in
    (* Hot-swap is always armed: a reload request (or SIGHUP) re-reads the
       same checkpoint path unless the request names another one; the
       student checkpoint rides along on every swap. *)
    let reload =
      {
        Serve_engine.reload_seed = 42;
        reload_model_cfg = Cbgan.default_config ();
        reload_default_path = Some ckpt;
        reload_student_path = student;
      }
    in
    let serve journal =
      try Serve_daemon.run ?journal ~reload ?student_path:student ~ready ~spec ~model config
      with Serve_error.Error e -> die e
    in
    match journal with
    | None -> serve None
    | Some path -> Runlog.with_journal path (fun j -> serve (Some j))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve hit-rate predictions over line-delimited JSON (hardened: validated \
          ingestion, deadlines, bounded queue, circuit breaker, analytical fallback)")
    Term.(
      const run $ socket_arg $ port_arg $ checkpoint_arg $ student_arg
      $ Arg.(
          value
          & opt string "hrd"
          & info [ "fallback" ] ~docv:"KIND"
              ~doc:"Analytical fallback for degraded answers: $(b,hrd), $(b,stm) or $(b,none).")
      $ backend_arg $ queue_arg $ deadline_arg $ breaker_threshold_arg $ breaker_cooldown_arg
      $ max_trace_arg $ journal_serve_arg $ batch_max_arg $ batch_linger_arg
      $ replicas_arg $ idle_timeout_arg $ stream_sessions_arg $ stream_credit_arg
      $ stream_pending_arg $ stream_bytes_arg $ stream_ttl_arg $ domains_arg)

let call_cmd =
  let request_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JSON" ~doc:"One request object, e.g. '{\"op\": \"health\"}'.")
  in
  let call_backend_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "backend" ] ~docv:"KIND"
          ~env:(Cmd.Env.info "CACHEBOX_BACKEND")
          ~doc:
            "Inject $(docv) as the $(b,backend) field of an infer request that doesn't \
             already carry one: $(b,float32), $(b,int8), $(b,student), \
             $(b,student-int8), $(b,hrd) or $(b,stm).")
  in
  let run socket port backend request =
    (* The request line is normally forwarded verbatim; --backend decorates
       an infer request with the backend field (an explicit field in the
       JSON wins, and non-infer ops are never touched). *)
    let request =
      match backend with
      | None -> request
      | Some s -> (
        let b = parse_backend s in
        match Sjson.parse request with
        | Ok (Sjson.Obj fields)
          when List.assoc_opt "op" fields = Some (Sjson.Str "infer")
               && not (List.mem_assoc "backend" fields) ->
          Sjson.to_string
            (Sjson.Obj (fields @ [ ("backend", Sjson.Str (Cbox_infer.backend_name b)) ]))
        | _ -> request)
    in
    let addr =
      match (socket, port) with
      | _, Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
      | Some path, None -> Unix.ADDR_UNIX path
      | None, None -> Unix.ADDR_UNIX "cachebox.sock"
    in
    let fd =
      Unix.socket
        (match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
        Unix.SOCK_STREAM 0
    in
    (match Unix.connect fd addr with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) ->
      Fmt.epr "cannot connect: %s@." (Unix.error_message e);
      exit 1);
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    output_string oc request;
    output_char oc '\n';
    flush oc;
    (match input_line ic with
    | line -> (
      print_endline line;
      (* Exit status mirrors the reply: 0 for ok (degraded included), the
         stable taxonomy exit code for errors. *)
      match Sjson.parse line with
      | Ok json when Sjson.(member "ok" json |> Option.map to_bool) = Some (Some true) ->
        exit 0
      | Ok json -> (
        match
          Option.bind (Sjson.member "error" json) Sjson.to_str
          |> Option.map Serve_error.code_of_string
        with
        | Some (Some code) -> exit (Serve_error.exit_code code)
        | _ -> exit (Serve_error.exit_code Serve_error.Internal))
      | Error _ -> exit (Serve_error.exit_code Serve_error.Internal))
    | exception End_of_file ->
      Fmt.epr "connection closed without a reply@.";
      exit 1)
  in
  Cmd.v
    (Cmd.info "call" ~doc:"Send one request line to a running serve daemon and print the reply")
    Term.(const run $ socket_arg $ port_arg $ call_backend_arg $ request_arg)

(* --- stream: pour a trace into a live daemon over a streaming session ---

   Prints one "window=I hit_rate=H ..." line per window with hex floats,
   so two runs (say, an uninterrupted one and a kill-then-resume one) can
   be diffed bit-for-bit. Respects the server's credit grants, and has the
   failure knobs the robustness smoke test drives: die abruptly after K
   windows with a feed still in flight, resume from a session token, or
   corrupt one chunk and expect the typed poison. *)

let stream_cmd =
  let trace_file_arg =
    Arg.(value & opt (some string) None & info [ "trace-file" ] ~docv:"FILE" ~doc:"Stream this trace file (text or binary). Default: generate $(b,--benchmark) client-side.")
  in
  let stream_benchmark_arg =
    Arg.(value & opt string "600.perlbench_s-734B" & info [ "benchmark" ] ~docv:"NAME" ~doc:"Benchmark to generate when no $(b,--trace-file) is given.")
  in
  let stream_trace_len_arg =
    Arg.(value & opt int 16_000 & info [ "trace-len" ] ~docv:"N" ~doc:"Length of the generated trace.")
  in
  let sets_arg =
    Arg.(value & opt int 64 & info [ "sets" ] ~docv:"N" ~doc:"Cache sets for the session.")
  in
  let ways_arg =
    Arg.(value & opt int 4 & info [ "ways" ] ~docv:"N" ~doc:"Cache ways for the session.")
  in
  let chunk_arg =
    Arg.(value & opt int 1024 & info [ "chunk" ] ~docv:"N" ~doc:"Accesses per feed chunk (clipped to the server's credit).")
  in
  let kill_after_arg =
    Arg.(value & opt (some int) None & info [ "kill-after-windows" ] ~docv:"K" ~doc:"After K windows, send one more chunk and close the socket without reading — simulates a client dying mid-stream. The session survives for $(b,--resume).")
  in
  let resume_arg =
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"TOKEN" ~doc:"Resume this session instead of opening one; replayed windows are printed, then pouring continues from the server's $(b,consumed) position.")
  in
  let resume_from_arg =
    Arg.(value & opt int (-1) & info [ "resume-from" ] ~docv:"W" ~doc:"With $(b,--resume): acknowledge windows up to this index (they are pruned, not replayed).")
  in
  let corrupt_at_arg =
    Arg.(value & opt (some int) None & info [ "corrupt-at" ] ~docv:"SEQ" ~doc:"Replace chunk SEQ's payload with a non-integer element and expect the typed $(b,corrupt_input) poison (exit 3).")
  in
  let run socket port trace_file benchmark trace_len sets ways chunk kill_after resume
      resume_from corrupt_at =
    let addr =
      match (socket, port) with
      | _, Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
      | Some path, None -> Unix.ADDR_UNIX path
      | None, None -> Unix.ADDR_UNIX "cachebox.sock"
    in
    let fd =
      Unix.socket
        (match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
        Unix.SOCK_STREAM 0
    in
    (match Unix.connect fd addr with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) ->
      Fmt.epr "cannot connect: %s@." (Unix.error_message e);
      exit 1);
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
    let ic = Unix.in_channel_of_descr fd
    and oc = Unix.out_channel_of_descr fd in
    let send line =
      output_string oc line;
      output_char oc '\n';
      flush oc
    in
    let recv () =
      match input_line ic with
      | exception End_of_file ->
        Fmt.epr "connection closed without a reply@.";
        exit 1
      | exception Sys_error m ->
        Fmt.epr "read failed: %s@." m;
        exit 1
      | line -> (
        match Sjson.parse line with
        | Ok j -> j
        | Error e ->
          Fmt.epr "server sent bad JSON: %s@." e;
          exit (Serve_error.exit_code Serve_error.Internal))
    in
    let int_f name j = Option.bind (Sjson.member name j) Sjson.to_int in
    let str_f name j = Option.bind (Sjson.member name j) Sjson.to_str in
    let is_ok j = Sjson.(member "ok" j |> Option.map to_bool) = Some (Some true) in
    let fail_reply j =
      Fmt.epr "%s@." (Sjson.to_string j);
      match Option.map Serve_error.code_of_string (str_f "error" j) with
      | Some (Some c) -> exit (Serve_error.exit_code c)
      | _ -> exit (Serve_error.exit_code Serve_error.Internal)
    in
    let trace =
      match trace_file with
      | Some f -> (
        match Validate.read_trace_file f with Ok t -> t | Error e -> die e)
      | None -> (find_workload benchmark).Workload.generate trace_len
    in
    (* Windows are printed once, on first delivery — a resume may replay
       un-acked results the dying run already printed. *)
    let seen = Hashtbl.create 64 in
    let emit_windows j =
      match Sjson.member "windows" j with
      | Some (Sjson.Arr ws) ->
        List.iter
          (fun w ->
            match int_f "window" w with
            | Some i when not (Hashtbl.mem seen i) ->
              Hashtbl.replace seen i ();
              (match Option.bind (Sjson.member "hit_rate" w) Sjson.to_float with
              | Some h ->
                Fmt.pr "window=%d hit_rate=%h degraded=%b@." i h
                  (Sjson.(member "degraded" w |> Option.map to_bool) = Some (Some true))
              | None ->
                Fmt.pr "window=%d error=%s@." i
                  (Option.value (str_f "error" w) ~default:"?"))
            | _ -> ())
          ws
      | _ -> ()
    in
    let last_seen () = Hashtbl.fold (fun k () acc -> max k acc) seen (-1) in
    let session, credit0, start =
      match resume with
      | None ->
        send (Printf.sprintf "{\"op\": \"stream_open\", \"sets\": %d, \"ways\": %d}" sets ways);
        let j = recv () in
        if not (is_ok j) then fail_reply j;
        let tok =
          match str_f "session" j with
          | Some t -> t
          | None ->
            Fmt.epr "open reply has no session token@.";
            exit 1
        in
        Fmt.pr "session=%s@." tok;
        (tok, Option.value (int_f "credit" j) ~default:0, 0)
      | Some tok ->
        (* Results of windows that were still in the batcher when the old
           connection died land in the retention ring as they finish; poll
           until the server reports none pending. *)
        let rec attach ack =
          send
            (Printf.sprintf
               "{\"op\": \"stream_resume\", \"session\": %S, \"last_window\": %d}" tok ack);
          let j = recv () in
          if not (is_ok j) then fail_reply j;
          emit_windows j;
          if Option.value (int_f "pending" j) ~default:0 > 0 then begin
            Thread.delay 0.05;
            attach (last_seen ())
          end
          else j
        in
        let j = attach resume_from in
        let consumed = Option.value (int_f "consumed" j) ~default:0 in
        Fmt.pr "resumed consumed=%d@." consumed;
        (tok, Option.value (int_f "credit" j) ~default:0, consumed)
    in
    let len = Array.length trace in
    let pos = ref start
    and credit = ref credit0
    and seq = ref 0
    and killed = ref false in
    let chunk_json n =
      if corrupt_at = Some !seq then "[1, \"bogus\"]"
      else begin
        let b = Buffer.create ((n * 8) + 2) in
        Buffer.add_char b '[';
        for i = 0 to n - 1 do
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int trace.(!pos + i))
        done;
        Buffer.add_char b ']';
        Buffer.contents b
      end
    in
    let feed_line n =
      Printf.sprintf "{\"op\": \"stream_feed\", \"session\": %S, \"seq\": %d, \"ack\": %d, \"addrs\": %s}"
        session !seq (last_seen ()) (chunk_json n)
    in
    while !pos < len && not !killed do
      let n = min chunk (min !credit (len - !pos)) in
      if n = 0 && !credit = 0 then
        (* Retention full with results still in flight: an empty feed acks
           what we have seen and fetches a fresh grant. *)
        Thread.delay 0.02;
      send (feed_line n);
      incr seq;
      let j = recv () in
      if not (is_ok j) then fail_reply j;
      emit_windows j;
      credit := Option.value (int_f "credit" j) ~default:0;
      pos := Option.value (int_f "consumed" j) ~default:!pos;
      match kill_after with
      | Some k when Hashtbl.length seen >= k && not !killed ->
        (* Die with a feed in flight: pour one more chunk and vanish. *)
        let extra = min chunk (min !credit (len - !pos)) in
        if extra > 0 then send (feed_line extra);
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Fmt.pr "killed windows=%d@." (Hashtbl.length seen);
        killed := true
      | _ -> ()
    done;
    if not !killed then begin
      send (Printf.sprintf "{\"op\": \"stream_close\", \"session\": %S}" session);
      let j = recv () in
      if not (is_ok j) then fail_reply j;
      Fmt.pr "closed consumed=%d windows=%d@."
        (Option.value (int_f "consumed" j) ~default:(-1))
        (Hashtbl.length seen);
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Stream a trace into a running serve daemon over a backpressured session and \
          print each window's prediction as it closes")
    Term.(
      const run $ socket_arg $ port_arg $ trace_file_arg $ stream_benchmark_arg
      $ stream_trace_len_arg $ sets_arg $ ways_arg $ chunk_arg $ kill_after_arg
      $ resume_arg $ resume_from_arg $ corrupt_at_arg)

(* --- route: fault-tolerant shard router over N serve daemons ---

   Backend specs are "unix:PATH", "HOST:PORT" or "NAME=ADDR"; the name (the
   address string when not given) seeds consistent-hash placement, so keep
   names stable across router restarts or keys will move shards. *)

let parse_backend_addr s =
  match String.index_opt s ':' with
  | Some 4 when String.sub s 0 4 = "unix" ->
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then Error "empty unix socket path"
    else Ok (Serve_daemon.Unix_socket path)
  | Some i -> (
    let host = String.sub s 0 i
    and port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Serve_daemon.Tcp (host, p))
    | _ -> Error (Printf.sprintf "bad HOST:PORT %S" s))
  | None -> Error (Printf.sprintf "backend %S is neither unix:PATH nor HOST:PORT" s)

let parse_backend_spec s =
  let named name addr =
    Result.map (fun a -> (name, a)) (parse_backend_addr addr)
  in
  match String.index_opt s '=' with
  | Some i when i > 0 && String.sub s 0 i <> "unix" ->
    named (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1))
  | _ -> named s s

let route_cmd =
  let renv name = Cmd.Env.info ("CACHEBOX_ROUTER_" ^ name) in
  let backends_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "backend" ] ~docv:"SPEC" ~env:(renv "BACKENDS")
          ~doc:
            "Backend serve daemon, repeatable: $(b,unix:PATH), $(b,HOST:PORT) or \
             $(b,NAME=ADDR). The env var takes a comma-separated list.")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~env:(renv "WORKERS") ~doc:"Concurrent forwarder threads.")
  in
  let vnodes_arg =
    Arg.(value & opt int 128 & info [ "vnodes" ] ~docv:"N" ~env:(renv "VNODES") ~doc:"Consistent-hash virtual nodes per backend.")
  in
  let attempts_arg =
    Arg.(value & opt int 3 & info [ "max-attempts" ] ~docv:"N" ~env:(renv "ATTEMPTS") ~doc:"Total upstream attempts per request before degrading.")
  in
  let attempt_timeout_arg =
    Arg.(value & opt int 2000 & info [ "attempt-timeout-ms" ] ~docv:"MS" ~env:(renv "ATTEMPT_TIMEOUT_MS") ~doc:"Per-attempt (hedge) timeout; always clamped to the request deadline.")
  in
  let probe_interval_arg =
    Arg.(value & opt int 1000 & info [ "probe-interval-ms" ] ~docv:"MS" ~env:(renv "PROBE_INTERVAL_MS") ~doc:"Health-probe cadence per backend.")
  in
  let eject_after_arg =
    Arg.(value & opt int 3 & info [ "eject-after" ] ~docv:"N" ~env:(renv "EJECT_AFTER") ~doc:"Consecutive failures (probe or request) before a backend is ejected.")
  in
  let memo_arg =
    Arg.(value & opt int 256 & info [ "memo-capacity" ] ~docv:"N" ~env:(renv "MEMO") ~doc:"Content-addressed prediction memo entries (0 disables).")
  in
  let queue_arg =
    Arg.(value & opt int 128 & info [ "queue-depth" ] ~docv:"N" ~doc:"Bounded admission queue; overflow is shed with an $(b,overloaded) reply.")
  in
  let deadline_arg =
    Arg.(value & opt int 5000 & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Default per-request deadline.")
  in
  let fallback_arg =
    Arg.(
      value
      & opt string "hrd"
      & info [ "fallback" ] ~docv:"KIND" ~env:(renv "FALLBACK")
          ~doc:
            "Router-level degradation baseline when no replica is usable: $(b,hrd), \
             $(b,stm) or $(b,none) (none turns exhaustion into \
             $(b,upstream_unavailable) errors).")
  in
  let journal_arg =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc:"Append router events (start/stop, ejections, readmissions, degradations) to a JSONL journal.")
  in
  let run socket port backends workers vnodes max_attempts attempt_timeout_ms
      probe_interval_ms eject_after memo_capacity queue_depth deadline_ms fallback
      journal =
    let fallback = parse_fallback fallback in
    (* The env var carries one comma-separated string; the flag repeats. *)
    let specs =
      List.concat_map
        (fun s -> List.filter (( <> ) "") (String.split_on_char ',' s))
        backends
    in
    if specs = [] then begin
      Fmt.epr "cachebox route: no backends (repeat --backend or set CACHEBOX_ROUTER_BACKENDS)@.";
      exit 2
    end;
    let backends =
      List.map
        (fun s ->
          match parse_backend_spec s with
          | Ok b -> b
          | Error m ->
            Fmt.epr "cachebox route: %s@." m;
            exit 2)
        specs
    in
    let listen = listen_of ~socket ~port in
    let config =
      {
        (Router.default_config ~listen ~backends) with
        Router.workers;
        vnodes;
        max_attempts;
        attempt_timeout_s = float_of_int attempt_timeout_ms /. 1000.0;
        probe_interval_s = float_of_int probe_interval_ms /. 1000.0;
        eject_after;
        memo_capacity;
        queue_depth;
        default_deadline_s = float_of_int deadline_ms /. 1000.0;
        fallback;
      }
    in
    let ready () =
      Fmt.pr "cachebox route: listening on %s, %d backends (fallback %s)@."
        (match listen with
        | Serve_daemon.Unix_socket p -> "unix:" ^ p
        | Serve_daemon.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p)
        (List.length backends)
        (Cbox_infer.fallback_name fallback)
    in
    let route journal =
      try Router.run ?journal ~ready config with Serve_error.Error e -> die e
    in
    match journal with
    | None -> route None
    | Some path -> Runlog.with_journal path (fun j -> route (Some j))
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Shard requests across serve daemons by cache-config digest (health checks, \
          retries with backoff, circuit breakers, baseline fallback, zero-downtime \
          reload broadcast)")
    Term.(
      const run $ socket_arg $ port_arg $ backends_arg $ workers_arg $ vnodes_arg
      $ attempts_arg $ attempt_timeout_arg $ probe_interval_arg $ eject_after_arg
      $ memo_arg $ queue_arg $ deadline_arg $ fallback_arg $ journal_arg)

(* --- loadgen: concurrency stress against a running daemon ---

   N client threads each pipeline R line-delimited requests (a mix of valid
   inferences and malformed lines) down one connection and then read R
   replies back. The reactor guarantees per-connection FIFO replies, so
   reply j on a connection answers request j: a valid request must come
   back with its own echoed id (anything else is a reorder or duplicate), a
   malformed one must come back as bad_request, and either may come back as
   an id-less overloaded shed. Any missing reply (EOF or timeout) is a
   drop. Afterwards the shed count every client observed is reconciled
   against the daemon's own stats. Exits non-zero on any violation. *)

(* Streaming load generator: N concurrent sessions pouring deterministic
   traces, with exactly-once in-order window accounting, deliberate
   over-credit probes, mid-stream disconnect + resume coverage, and a
   reconciliation of the daemon's stream counters against what the clients
   observed. *)
let loadgen_stream_run ~addr ~clients ~windows ~shutdown_after =
  let connect () =
    let fd =
      Unix.socket
        (match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
        Unix.SOCK_STREAM 0
    in
    Unix.connect fd addr;
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
    fd
  in
  let int_f name j = Option.bind (Sjson.member name j) Sjson.to_int in
  let str_f name j = Option.bind (Sjson.member name j) Sjson.to_str in
  let is_ok j = Sjson.(member "ok" j |> Option.map to_bool) = Some (Some true) in
  let got_windows = Array.make clients 0
  and shed_probes = Array.make clients 0
  and resumes = Array.make clients 0
  and failures = Array.make clients [] in
  let fail k fmt = Printf.ksprintf (fun m -> failures.(k) <- m :: failures.(k)) fmt in
  (* Each client disconnects abruptly halfway and resumes (k mod 3 = 1), or
     sends one deliberately over-credit chunk and expects the typed shed
     (k mod 3 = 2), or just streams cleanly. *)
  let client k () =
    let exception Fatal in
    try
      let fd = ref (connect ()) in
      let ic = ref (Unix.in_channel_of_descr !fd)
      and oc = ref (Unix.out_channel_of_descr !fd) in
      let send line =
        output_string !oc line;
        output_char !oc '\n';
        flush !oc
      in
      let recv what =
        match input_line !ic with
        | exception (End_of_file | Sys_error _) ->
          fail k "%s: connection died" what;
          raise Fatal
        | line -> (
          match Sjson.parse line with
          | Ok j -> j
          | Error e ->
            fail k "%s: bad JSON from server (%s)" what e;
            raise Fatal)
      in
      send
        (Printf.sprintf "{\"op\": \"stream_open\", \"sets\": %d, \"ways\": %d}"
           (16 lsl (k mod 4))
           (1 + (k mod 8)));
      let openr = recv "open" in
      if not (is_ok openr) then begin
        fail k "open rejected: %s" (Sjson.to_string openr);
        raise Fatal
      end;
      let session = Option.value (str_f "session" openr) ~default:"" in
      let apw = Option.value (int_f "accesses_per_image" openr) ~default:0 in
      let step = Option.value (int_f "step_accesses" openr) ~default:0 in
      let len = apw + ((windows - 1) * step) in
      (* Deterministic per-client trace: the resumed half regenerates the
         same addresses from the server's consumed position. *)
      let addr_at i = (i * 2654435761) lxor (k * 40503) land 0xFFFFF in
      let next_expected = ref 0 in
      let take_windows j =
        match Sjson.member "windows" j with
        | Some (Sjson.Arr ws) ->
          List.iter
            (fun w ->
              match int_f "window" w with
              | Some i ->
                if i = !next_expected then begin
                  incr next_expected;
                  got_windows.(k) <- got_windows.(k) + 1
                end
                else if i > !next_expected then begin
                  fail k "window %d arrived before %d — gap or reorder" i !next_expected;
                  raise Fatal
                end
                (* i < next_expected: an un-acked result replayed by resume;
                   exactly-once is on first delivery, so it is dropped. *)
              | None -> fail k "window entry without an index")
            ws
        | _ -> ()
      in
      let credit = ref (Option.value (int_f "credit" openr) ~default:0) in
      let pos = ref 0 in
      let seq = ref 0 in
      let probe_done = ref false in
      let disconnected = ref false in
      while !next_expected < windows do
        if k mod 3 = 2 && (not !probe_done) && !seq = 1 then begin
          (* Over-credit probe: must shed with a typed overloaded reply and
             apply nothing. *)
          probe_done := true;
          let n = !credit + step + 1 in
          let b = Buffer.create (n * 4) in
          for i = 0 to n - 1 do
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b "1"
          done;
          send
            (Printf.sprintf "{\"op\": \"stream_feed\", \"session\": %S, \"seq\": -1, \"addrs\": [%s]}"
               session (Buffer.contents b));
          let j = recv "probe" in
          (match str_f "error" j with
          | Some "overloaded" -> shed_probes.(k) <- shed_probes.(k) + 1
          | _ -> fail k "over-credit chunk was not shed: %s" (Sjson.to_string j))
        end
        else if k mod 3 = 1 && (not !disconnected) && !next_expected >= windows / 2
        then begin
          (* Abrupt mid-stream death, then resume on a fresh connection. *)
          disconnected := true;
          (try Unix.close !fd with Unix.Unix_error _ -> ());
          fd := connect ();
          ic := Unix.in_channel_of_descr !fd;
          oc := Unix.out_channel_of_descr !fd;
          let rec attach () =
            send
              (Printf.sprintf
                 "{\"op\": \"stream_resume\", \"session\": %S, \"last_window\": %d}"
                 session (!next_expected - 1));
            let j = recv "resume" in
            if not (is_ok j) then begin
              fail k "resume rejected: %s" (Sjson.to_string j);
              raise Fatal
            end;
            take_windows j;
            if Option.value (int_f "pending" j) ~default:0 > 0 then begin
              Thread.delay 0.02;
              attach ()
            end
            else j
          in
          let j = attach () in
          resumes.(k) <- resumes.(k) + 1;
          credit := Option.value (int_f "credit" j) ~default:0;
          pos := Option.value (int_f "consumed" j) ~default:!pos
        end
        else begin
          let n = min 512 (min !credit (len - !pos)) in
          if n = 0 && !credit = 0 then Thread.delay 0.01;
          let b = Buffer.create ((n * 8) + 2) in
          for i = 0 to n - 1 do
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b (string_of_int (addr_at (!pos + i)))
          done;
          send
            (Printf.sprintf
               "{\"op\": \"stream_feed\", \"session\": %S, \"seq\": %d, \"ack\": %d, \"addrs\": [%s]}"
               session !seq (!next_expected - 1) (Buffer.contents b));
          incr seq;
          let j = recv "feed" in
          if not (is_ok j) then begin
            fail k "feed rejected: %s" (Sjson.to_string j);
            raise Fatal
          end;
          take_windows j;
          credit := Option.value (int_f "credit" j) ~default:0;
          pos := Option.value (int_f "consumed" j) ~default:!pos
        end
      done;
      send (Printf.sprintf "{\"op\": \"stream_close\", \"session\": %S}" session);
      let j = recv "close" in
      if not (is_ok j) then fail k "close rejected: %s" (Sjson.to_string j);
      try Unix.close !fd with Unix.Unix_error _ -> ()
    with
    | Fatal -> ()
    | Unix.Unix_error (e, _, _) -> fail k "socket error: %s" (Unix.error_message e)
  in
  let control op =
    match connect () with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let ic = Unix.in_channel_of_descr fd
          and oc = Unix.out_channel_of_descr fd in
          output_string oc op;
          output_char oc '\n';
          flush oc;
          match input_line ic with
          | exception _ -> Error "no reply"
          | line -> ( match Sjson.parse line with Ok j -> Ok j | Error e -> Error e))
  in
  let stream_counts () =
    match control "{\"op\": \"stats\"}" with
    | Error e -> Error e
    | Ok json -> (
      match Sjson.member "stream" json with
      | None -> Error "stats reply has no stream section"
      | Some s ->
        let g name = Option.value (int_f name s) ~default:0 in
        Ok (g "opened", g "closed", g "windows", g "shed_credit", g "resumed"))
  in
  let before = stream_counts () in
  let threads = List.init clients (fun k -> Thread.create (client k) ()) in
  List.iter Thread.join threads;
  let sum a = Array.fold_left ( + ) 0 a in
  let problems = ref (List.concat_map List.rev (Array.to_list failures)) in
  if sum got_windows <> clients * windows then
    problems :=
      Printf.sprintf "received %d windows, expected %d" (sum got_windows)
        (clients * windows)
      :: !problems;
  (match (before, stream_counts ()) with
  | Error e, _ | _, Error e ->
    problems := Printf.sprintf "stats query failed: %s" e :: !problems
  | Ok (o0, c0, w0, s0, r0), Ok (o1, c1, w1, s1, r1) ->
    let check name delta expect =
      if delta <> expect then
        problems :=
          Printf.sprintf "daemon counted %d %s, clients observed %d" delta name expect
          :: !problems
    in
    check "stream opens" (o1 - o0) clients;
    check "stream closes" (c1 - c0) clients;
    check "streamed windows" (w1 - w0) (sum got_windows);
    check "credit sheds" (s1 - s0) (sum shed_probes);
    check "resumes" (r1 - r0) (sum resumes));
  if shutdown_after then (
    match control "{\"op\": \"shutdown\"}" with
    | Ok json when Sjson.(member "ok" json |> Option.map to_bool) = Some (Some true) ->
      ()
    | Ok json ->
      problems := Printf.sprintf "shutdown refused: %s" (Sjson.to_string json) :: !problems
    | Error e -> problems := Printf.sprintf "shutdown failed: %s" e :: !problems);
  Fmt.pr
    "loadgen --stream: %d sessions x %d windows: %d windows delivered in order (%d \
     resumes, %d credit sheds)@."
    clients windows (sum got_windows) (sum resumes) (sum shed_probes);
  match !problems with
  | [] -> Fmt.pr "loadgen: OK@."
  | ps ->
    List.iter (fun p -> Fmt.epr "loadgen: FAIL: %s@." p) (List.rev ps);
    exit 1

let loadgen_cmd =
  let clients_arg =
    Arg.(value & opt int 8 & info [ "n"; "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let requests_arg =
    Arg.(value & opt int 32 & info [ "r"; "requests" ] ~docv:"N" ~doc:"Requests pipelined per client.")
  in
  let invalid_every_arg =
    Arg.(value & opt int 7 & info [ "invalid-every" ] ~docv:"K" ~doc:"Every Kth request on each connection is malformed JSON (0 disables).")
  in
  let loadgen_benchmark_arg =
    Arg.(value & opt string "600.perlbench_s-734B" & info [ "benchmark" ] ~docv:"NAME" ~doc:"Benchmark named by the valid infer requests.")
  in
  let loadgen_trace_arg =
    Arg.(value & opt int 4000 & info [ "trace-len" ] ~docv:"N" ~doc:"Trace length of the valid infer requests.")
  in
  let shutdown_after_arg =
    Arg.(value & flag & info [ "shutdown-after" ] ~doc:"After the run and the stats reconciliation, ask the daemon to shut down and expect a clean drain.")
  in
  let stream_flag =
    Arg.(value & flag & info [ "stream" ] ~doc:"Streaming mode: each client opens a session, pours a deterministic trace under credit, and checks exactly-once in-order window delivery; a third of the clients die mid-stream and resume, another third probe the credit limit.")
  in
  let stream_windows_arg =
    Arg.(value & opt int 6 & info [ "stream-windows" ] ~docv:"W" ~doc:"With $(b,--stream): windows each client's trace closes.")
  in
  let loadgen_backend_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "backend" ] ~docv:"KIND"
          ~env:(Cmd.Env.info "CACHEBOX_BACKEND")
          ~doc:
            "Valid infer requests carry this $(b,backend) field ($(b,float32), \
             $(b,int8), $(b,student), $(b,student-int8), $(b,hrd) or $(b,stm)); \
             the per-backend counters in the daemon's stats are then required to \
             reconcile with the replies the clients observed.")
  in
  let backend_mix_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "backend-mix" ] ~docv:"NAME:W,..."
          ~doc:
            "Weighted backend mix, e.g. $(b,float32:2,int8:1,student:1): each valid \
             infer request deterministically draws its $(b,backend) field from the \
             expanded weight list, so one closed-loop run exercises heterogeneous \
             batches (the daemon's batcher must still keep every wide-batch forward \
             single-backend). Mutually exclusive with $(b,--backend); the per-backend \
             reconciliation applies to every backend in the mix.")
  in
  let run socket port clients requests invalid_every benchmark trace_len backend
      backend_mix shutdown_after stream stream_windows =
    let backend = Option.map (fun s -> parse_backend s) backend in
    let mix =
      match backend_mix with
      | None -> None
      | Some s ->
        let bad why =
          Fmt.epr "--backend-mix: %s (expected NAME:W,... e.g. float32:2,int8:1)@." why;
          exit 2
        in
        let entries = String.split_on_char ',' s in
        let expanded =
          List.concat_map
            (fun entry ->
              match String.index_opt entry ':' with
              | None -> bad (Printf.sprintf "entry %S has no :WEIGHT" entry)
              | Some i -> (
                let name = String.sub entry 0 i in
                let b = parse_backend name in
                match
                  int_of_string_opt (String.sub entry (i + 1) (String.length entry - i - 1))
                with
                | Some w when w > 0 ->
                  List.init w (fun _ -> Cbox_infer.backend_name b)
                | _ -> bad (Printf.sprintf "entry %S has a non-positive weight" entry)))
            entries
        in
        if expanded = [] then bad "empty mix";
        Some (Array.of_list expanded)
    in
    if backend <> None && mix <> None then begin
      Fmt.epr "--backend and --backend-mix are mutually exclusive@.";
      exit 2
    end;
    let addr =
      match (socket, port) with
      | _, Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
      | Some path, None -> Unix.ADDR_UNIX path
      | None, None -> Unix.ADDR_UNIX "cachebox.sock"
    in
    if stream then
      loadgen_stream_run ~addr ~clients ~windows:stream_windows ~shutdown_after
    else
    let connect () =
      let fd =
        Unix.socket
          (match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
          Unix.SOCK_STREAM 0
      in
      Unix.connect fd addr;
      (* A lost reply must fail the run, not hang it. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
      fd
    in
    let is_valid j = invalid_every <= 0 || (j + 1) mod invalid_every <> 0 in
    (* Geometry varies per client and per request so the traffic spreads
       across shards when the target is a router (and exercises several
       configs when it is a plain daemon) instead of collapsing onto one
       memoizable key. *)
    (* With a mix, each request deterministically draws its backend by
       position, so the same invocation always generates the same
       heterogeneous interleaving and the reconciliation is exact. *)
    let backend_field k j =
      match mix with
      | Some names ->
        Printf.sprintf ", \"backend\": %S" names.((k + j) mod Array.length names)
      | None -> (
        match backend with
        | None -> ""
        | Some b -> Printf.sprintf ", \"backend\": %S" (Cbox_infer.backend_name b))
    in
    let request k j =
      if is_valid j then
        Printf.sprintf
          "{\"op\": \"infer\", \"id\": \"c%d-%d\", \"sets\": %d, \"ways\": %d, \
           \"benchmark\": %S, \"trace_len\": %d%s}"
          k j
          (16 lsl (j mod 4))
          (1 + (k mod 8))
          benchmark trace_len (backend_field k j)
      else Printf.sprintf "{\"op\": \"infer\", \"id\": \"c%d-%d\"" k j
    in
    let backend_names = [ "float32"; "int8"; "student"; "student-int8"; "hrd"; "stm" ] in
    let answered = Array.make clients 0
    and ok_replies = Array.make clients 0
    and degraded_replies = Array.make clients 0
    and shed_replies = Array.make clients 0
    and late_replies = Array.make clients 0
    and invalid_replies = Array.make clients 0
    (* Per-client count of ok replies naming each backend, reconciled after
       the run against the daemon's backend_* counter deltas. *)
    and backend_replies = Array.make_matrix clients (List.length backend_names) 0
    and failures = Array.make clients [] in
    let fail k fmt = Printf.ksprintf (fun m -> failures.(k) <- m :: failures.(k)) fmt in
    let str_field name json = Option.bind (Sjson.member name json) Sjson.to_str in
    let client k () =
      match connect () with
      | exception Unix.Unix_error (e, _, _) -> fail k "connect: %s" (Unix.error_message e)
      | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let ic = Unix.in_channel_of_descr fd
            and oc = Unix.out_channel_of_descr fd in
            for j = 0 to requests - 1 do
              output_string oc (request k j);
              output_char oc '\n';
              (* A third of the clients dribble line by line instead of
                 bursting, to vary the interleavings the reactor sees. *)
              if k mod 3 = 2 then begin
                flush oc;
                Thread.delay 0.001
              end
            done;
            flush oc;
            (try
               for j = 0 to requests - 1 do
                 match input_line ic with
                 | exception End_of_file ->
                   fail k "reply %d: EOF — reply dropped" j;
                   raise Exit
                 | exception Sys_error m ->
                   fail k "reply %d: read failed (%s)" j m;
                   raise Exit
                 | line -> (
                   answered.(k) <- answered.(k) + 1;
                   match Sjson.parse line with
                   | Error e -> fail k "reply %d: server sent bad JSON (%s)" j e
                   | Ok json -> (
                     let expect = Printf.sprintf "c%d-%d" k j in
                     match (str_field "id" json, str_field "error" json) with
                     | Some got, _ when got <> expect ->
                       fail k "reply %d: id %S, expected %S — reordered or duplicated" j
                         got expect
                     | Some _, None ->
                       ok_replies.(k) <- ok_replies.(k) + 1;
                       (match str_field "backend" json with
                       | Some b -> (
                         match List.find_index (String.equal b) backend_names with
                         | Some i ->
                           backend_replies.(k).(i) <- backend_replies.(k).(i) + 1
                         | None -> fail k "reply %d: unknown backend %S" j b)
                       | None -> ());
                       (* Degraded answers (backend fallback, or the router
                          covering for dead shards) are successes, counted
                          separately so smoke tests can gate on them. *)
                       if
                         Sjson.(member "degraded" json |> Option.map to_bool)
                         = Some (Some true)
                       then degraded_replies.(k) <- degraded_replies.(k) + 1
                     | Some _, Some "deadline_exceeded" ->
                       (* Deadline-aware flushing under overload: an in-order,
                          exactly-once answer, just an unhappy one. *)
                       late_replies.(k) <- late_replies.(k) + 1
                     | Some _, Some err ->
                       fail k "reply %d: unexpected error %S on a valid request" j err
                     | None, Some "overloaded" -> shed_replies.(k) <- shed_replies.(k) + 1
                     | None, Some "bad_request" when not (is_valid j) ->
                       invalid_replies.(k) <- invalid_replies.(k) + 1
                     | None, err ->
                       fail k "reply %d: unmatched reply (error %s)" j
                         (Option.value err ~default:"<none>")))
               done
             with Exit -> ()))
    in
    let control op =
      let fd = connect () in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let ic = Unix.in_channel_of_descr fd
          and oc = Unix.out_channel_of_descr fd in
          output_string oc op;
          output_char oc '\n';
          flush oc;
          match input_line ic with
          | exception _ -> Error "no reply"
          | line -> ( match Sjson.parse line with Ok j -> Ok j | Error e -> Error e))
    in
    let stats_counts () =
      match control "{\"op\": \"stats\"}" with
      | Error e -> Error e
      | Ok json ->
        let num name = Option.bind (Sjson.member name json) Sjson.to_int in
        (* Counter keys are JSON identifiers: "student-int8" -> backend_student_int8. *)
        let key b = "backend_" ^ String.map (fun c -> if c = '-' then '_' else c) b in
        Ok (num "shed", num "served", List.map (fun b -> num (key b)) backend_names)
    in
    (* The daemon may be long-lived (e.g. a router shared across several
       smoke phases), so its counters are reconciled as deltas across this
       run, not as absolutes. *)
    let before = stats_counts () in
    let threads = List.init clients (fun k -> Thread.create (client k) ()) in
    List.iter Thread.join threads;
    let sum a = Array.fold_left ( + ) 0 a in
    let total = clients * requests in
    let problems = ref (List.concat_map List.rev (Array.to_list failures)) in
    let shed_total = sum shed_replies in
    if sum answered <> total then
      problems :=
        Printf.sprintf "answered %d of %d requests — replies were dropped" (sum answered)
          total
        :: !problems;
    let observed_backend i =
      Array.fold_left (fun acc row -> acc + row.(i)) 0 backend_replies
    in
    (match (before, stats_counts ()) with
    | Error e, _ | _, Error e ->
      problems := Printf.sprintf "stats query failed: %s" e :: !problems
    | Ok (shed0, served0, backends0), Ok (shed1, served1, backends1) ->
      (match (shed0, shed1) with
      | Some a, Some b when b - a <> shed_total ->
        problems :=
          Printf.sprintf "daemon counted %d shed requests, clients observed %d" (b - a)
            shed_total
          :: !problems
      | Some _, Some _ -> ()
      | _ -> problems := "stats reply has no shed count" :: !problems);
      (match (served0, served1) with
      | Some a, Some b when b - a < total - shed_total ->
        problems :=
          Printf.sprintf "daemon served %d < answered-minus-shed %d" (b - a)
            (total - shed_total)
          :: !problems
      | Some _, Some _ -> ()
      | _ -> problems := "stats reply has no served count" :: !problems);
      (* Per-backend reconciliation: every successful answer credits exactly
         one backend counter, so each counter's delta must equal the ok
         replies the clients saw naming that backend. Absent counters only
         fail the run when a backend was explicitly requested (an old
         daemon without the registry is otherwise tolerated). *)
      List.iteri
        (fun i name ->
          match (List.nth backends0 i, List.nth backends1 i) with
          | Some a, Some b when b - a <> observed_backend i ->
            problems :=
              Printf.sprintf "daemon counted %d %s answers, clients observed %d"
                (b - a) name (observed_backend i)
              :: !problems
          | Some _, Some _ -> ()
          | _ ->
            if backend <> None || mix <> None then
              problems :=
                Printf.sprintf "stats reply has no backend_%s counter" name :: !problems)
        backend_names);
    if shutdown_after then (
      match control "{\"op\": \"shutdown\"}" with
      | Ok json
        when Sjson.(member "ok" json |> Option.map to_bool) = Some (Some true) ->
        ()
      | Ok json ->
        problems :=
          Printf.sprintf "shutdown refused: %s" (Sjson.to_string json) :: !problems
      | Error e -> problems := Printf.sprintf "shutdown failed: %s" e :: !problems);
    Fmt.pr
      "loadgen: %d clients x %d requests: %d answered (%d ok of which %d degraded, %d \
       bad_request, %d shed, %d past deadline)@."
      clients requests (sum answered) (sum ok_replies) (sum degraded_replies)
      (sum invalid_replies) shed_total (sum late_replies);
    Fmt.pr "loadgen: backends: %s@."
      (String.concat ", "
         (List.mapi
            (fun i name -> Printf.sprintf "%s %d" name (observed_backend i))
            backend_names));
    match !problems with
    | [] -> Fmt.pr "loadgen: OK@."
    | ps ->
      List.iter (fun p -> Fmt.epr "loadgen: FAIL: %s@." p) (List.rev ps);
      exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Stress a running serve daemon with concurrent pipelined clients and check \
          every reply for drops, duplicates and reorders")
    Term.(
      const run $ socket_arg $ port_arg $ clients_arg $ requests_arg $ invalid_every_arg
      $ loadgen_benchmark_arg $ loadgen_trace_arg $ loadgen_backend_arg $ backend_mix_arg
      $ shutdown_after_arg $ stream_flag $ stream_windows_arg)

(* --- export / import traces --- *)

let export_cmd =
  let out_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let format_arg =
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT" ~doc:"text or binary.")
  in
  let run name out trace_len format =
    let w = find_workload name in
    let trace = w.Workload.generate trace_len in
    (match format with
    | "text" -> Trace_io.write_text out trace
    | "binary" -> Trace_io.write_binary out trace
    | other ->
      Fmt.epr "unknown format %S (text|binary)@." other;
      exit 2);
    Fmt.pr "wrote %d accesses to %s (%s)@." trace_len out format
  in
  Cmd.v (Cmd.info "export" ~doc:"Export a benchmark's address trace to a file")
    Term.(const run $ workload_arg 0 $ out_arg $ trace_len_arg $ format_arg)

let replay_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Trace file (text or binary; auto-detected).")
  in
  let run file sets ways =
    if not (Sys.file_exists file) then begin
      Fmt.epr "no such trace file: %s@." file;
      exit 2
    end;
    let trace = Trace_io.read_auto file in
    let cache = Cache.create (cache_config ~sets ~ways) in
    Array.iter (fun a -> ignore (Cache.access cache a)) trace;
    let s = Cache.stats cache in
    Fmt.pr "%s: %d accesses, hit rate %.4f (%d misses)@." file s.Cache.accesses
      (Cache.hit_rate s) s.Cache.misses
  in
  Cmd.v (Cmd.info "replay" ~doc:"Replay an imported address trace through the simulator")
    Term.(const run $ file_arg $ sets_arg $ ways_arg)

(* --- characterize --- *)

let characterize_cmd =
  let run name trace_len =
    let w = find_workload name in
    let trace = w.Workload.generate trace_len in
    let s = Characterize.summarize trace in
    Fmt.pr "%s:@.  %a@." name Characterize.pp_summary s;
    Fmt.pr "  top strides (blocks):";
    List.iter (fun (d, c) -> Fmt.pr " %+d x%d" d c) (Characterize.stride_histogram ~top:6 trace);
    Fmt.pr "@.  miss-ratio curve (fully-assoc LRU):@.";
    List.iter
      (fun (cap, mr) -> Fmt.pr "    %6d blocks (%4d KiB): %.4f@." cap (cap * 64 / 1024) mr)
      (Characterize.miss_ratio_curve ~capacities:[ 64; 256; 1024; 4096; 16384 ] trace)
  in
  Cmd.v (Cmd.info "characterize" ~doc:"Summarise a benchmark's locality profile")
    Term.(const run $ workload_arg 0 $ trace_len_arg)

(* --- baselines --- *)

let baselines_cmd =
  let run name sets ways trace_len =
    let cfg = cache_config ~sets ~ways in
    let w = find_workload name in
    let trace = w.Workload.generate trace_len in
    let cache = Cache.create cfg in
    Array.iter (fun a -> ignore (Cache.access cache a)) trace;
    let truth = Cache.hit_rate (Cache.stats cache) in
    Fmt.pr "%-12s true hit rate: %.4f@." name truth;
    let report label v =
      Fmt.pr "%-12s predicted %.4f  |diff| %.2f%%@." label v
        (Metrics.abs_pct_diff ~truth ~predicted:v)
    in
    report "HRD" (Hrd.predict_l1 cfg trace);
    report "STM" (Stm.predict cfg trace);
    report "Tab-Base" (Tabsynth.predict ~variant:Tabsynth.Base cfg trace);
    report "Tab-RD" (Tabsynth.predict ~variant:Tabsynth.Rd cfg trace);
    report "Tab-IC" (Tabsynth.predict ~variant:Tabsynth.Ic cfg trace)
  in
  Cmd.v (Cmd.info "baselines" ~doc:"Run the HRD/STM/TabSynth baseline predictors on a benchmark")
    Term.(const run $ workload_arg 0 $ sets_arg $ ways_arg $ trace_len_arg)

(* --- bench: kernel benchmarks + perf-regression gate --- *)

let bench_cmd =
  let suite_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("kernels", `Kernels); ("dataset", `Dataset); ("serve", `Serve); ("all", `All);
             ])
          `Kernels
      & info [ "suite" ] ~docv:"SUITE"
        ~doc:
          "Benchmark suite to run: $(b,kernels) (reference vs tiled dense \
           path, including the int8 quantized rows), $(b,dataset) \
           (recorded-trace vs streaming/parallel/cached dataset builders), \
           $(b,serve) (per-request inference vs dynamic micro-batching, with \
           closed-loop latency percentiles) or $(b,all) (every suite, merged \
           into one result set). All share the JSON schema and the baseline \
           gate.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
        ~doc:"Write the results as BENCH_KERNELS.json / BENCH_DATASET.json to $(docv).")
  in
  let baseline_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "baseline" ] ~docv:"PATH"
        ~doc:
          "Committed BENCH_KERNELS.json to compare against; exits 1 when any \
           benchmark's speedup regressed by more than $(b,--max-slowdown). \
           Repeatable, so $(b,--suite all) can be gated against the three \
           per-suite baselines at once.")
  in
  let require_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "require" ] ~docv:"NAME=MINX"
        ~doc:
          "Absolute speedup floor: fail when benchmark $(b,NAME)'s measured \
           speedup is below $(b,MINX), at every domain count the row was \
           measured at. Repeatable. Unlike $(b,--baseline), this gates \
           against a fixed number, not a committed run.")
  in
  let max_err_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "max-err" ] ~docv:"NAME=BOUND"
        ~doc:
          "Accuracy bound: fail when benchmark $(b,NAME)'s max_rel_err \
           exceeds $(b,BOUND) (or was not recorded). Repeatable.")
  in
  let max_slowdown_arg =
    Arg.(
      value
      & opt float 2.0
      & info [ "max-slowdown" ] ~docv:"X"
        ~doc:
          "Regression threshold: fail when measured speedup falls below \
           baseline speedup divided by $(docv). Generous by default — \
           speedups are machine-portable but still noisy on loaded CI \
           hosts.")
  in
  let fast_arg =
    Arg.(
      value & flag
      & info [ "fast" ] ~doc:"Shrink shapes for a smoke run (also: $(b,CACHEBOX_FAST)=1).")
  in
  (* The committed baseline is read with the serving stack's JSON codec so
     harness, CI and CLI share one schema and one parser. *)
  let read_baseline path =
    if not (Sys.file_exists path) then begin
      Fmt.epr "no such baseline file: %s@." path;
      exit 2
    end;
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Sjson.parse text with
    | Error why ->
      Fmt.epr "malformed baseline %s: %s@." path why;
      exit 2
    | Ok json ->
      let results =
        Option.bind (Sjson.member "results" json) Sjson.to_list
        |> Option.value ~default:[]
      in
      List.filter_map
        (fun r ->
          match
            ( Option.bind (Sjson.member "name" r) Sjson.to_str,
              Option.bind (Sjson.member "domains" r) Sjson.to_int,
              Option.bind (Sjson.member "speedup" r) Sjson.to_float )
          with
          | Some name, Some domains, Some speedup -> Some ((name, domains), speedup)
          | _ -> None)
        results
  in
  (* "NAME=1.5" -> ("NAME", 1.5), with a loud exit on anything else. *)
  let parse_floor flag s =
    let bad () =
      Fmt.epr "--%s expects NAME=FLOAT (got %S)@." flag s;
      exit 2
    in
    match String.index_opt s '=' with
    | None -> bad ()
    | Some i -> (
      let name = String.sub s 0 i in
      match float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some f when name <> "" -> (name, f)
      | _ -> bad ())
  in
  let run domains suite json baselines requires max_errs max_slowdown fast =
    apply_domains domains;
    if max_slowdown < 1.0 then begin
      Fmt.epr "--max-slowdown must be at least 1.0 (got %g)@." max_slowdown;
      exit 2
    end;
    let fast = fast || Sys.getenv_opt "CACHEBOX_FAST" <> None in
    let log name = Fmt.pr "  [%s]@." name in
    let results, serve_results =
      match suite with
      | `Kernels -> (Kbench.run ~fast ~log (), None)
      | `Dataset -> (Dbench.run ~fast ~log (), None)
      | `Serve ->
        let rs = Sbench.run ~fast ~log () in
        (Sbench.to_kbench rs, Some rs)
      | `All ->
        let k = Kbench.run ~fast ~log () in
        let d = Dbench.run ~fast ~log () in
        let s = Sbench.run ~fast ~log () in
        (k @ d @ Sbench.to_kbench s, Some s)
    in
    (match (suite, serve_results) with
    | `Serve, Some rs -> Sbench.pp_table Format.std_formatter rs
    | _, Some rs ->
      Kbench.pp_table Format.std_formatter results;
      Sbench.pp_table Format.std_formatter rs
    | _, None -> Kbench.pp_table Format.std_formatter results);
    Option.iter
      (fun path ->
        (* --suite serve keeps its richer schema (per-mode rps and latency
           percentiles); the merged --suite all artifact uses the shared
           kernel schema every row projects onto. *)
        (match (suite, serve_results) with
        | `Serve, Some rs -> Sbench.write_json ~path rs
        | _ -> Kbench.write_json ~path results);
        Fmt.pr "wrote %s@." path)
      json;
    let failures = ref 0 in
    let rows_named flag spec name =
      match List.filter (fun (r : Kbench.result) -> r.Kbench.name = name) results with
      | [] ->
        Fmt.epr "--%s %s: no benchmark named %S in this run@." flag spec name;
        exit 2
      | rows -> rows
    in
    List.iter
      (fun spec ->
        let name, floor = parse_floor "require" spec in
        List.iter
          (fun (r : Kbench.result) ->
            if r.Kbench.speedup < floor then begin
              incr failures;
              Fmt.epr "REQUIREMENT %s (domains %d): speedup %.2fx < required %.2fx@."
                r.Kbench.name r.Kbench.domains r.Kbench.speedup floor
            end)
          (rows_named "require" spec name))
      requires;
    List.iter
      (fun spec ->
        let name, bound = parse_floor "max-err" spec in
        List.iter
          (fun (r : Kbench.result) ->
            match r.Kbench.max_rel_err with
            | Some e when e <= bound -> ()
            | Some e ->
              incr failures;
              Fmt.epr "ACCURACY %s (domains %d): max_rel_err %g > bound %g@."
                r.Kbench.name r.Kbench.domains e bound
            | None ->
              incr failures;
              Fmt.epr "ACCURACY %s (domains %d): no max_rel_err recorded@."
                r.Kbench.name r.Kbench.domains)
          (rows_named "max-err" spec name))
      max_errs;
    List.iter
      (fun path ->
        let committed = read_baseline path in
        let matched =
          List.exists
            (fun (r : Kbench.result) ->
              List.mem_assoc (r.Kbench.name, r.Kbench.domains) committed)
            results
        in
        (* Benchmark names embed their shapes, so a --fast run gated against a
           full-scale baseline would compare nothing and "pass"; make that
           mistake loud instead. *)
        if not matched then begin
          Fmt.epr
            "baseline %s shares no benchmarks with this run (fast vs full \
             scale mismatch?)@."
            path;
          exit 2
        end;
        let regressions =
          List.filter_map
            (fun (r : Kbench.result) ->
              match List.assoc_opt (r.Kbench.name, r.Kbench.domains) committed with
              | None -> None
              | Some committed_speedup ->
                let floor = committed_speedup /. max_slowdown in
                if r.Kbench.speedup < floor then Some (r, committed_speedup, floor)
                else None)
            results
        in
        List.iter
          (fun ((r : Kbench.result), committed_speedup, floor) ->
            Fmt.epr
              "REGRESSION %s (domains %d): speedup %.2fx < floor %.2fx (baseline \
               %.2fx / %g)@."
              r.Kbench.name r.Kbench.domains r.Kbench.speedup floor committed_speedup
              max_slowdown)
          regressions;
        if regressions <> [] then failures := !failures + List.length regressions
        else Fmt.pr "no perf regressions vs %s (max slowdown %gx)@." path max_slowdown)
      baselines;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run the kernel or dataset-pipeline benchmarks with the perf-regression gate"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Times the old implementation against the new one in one \
              process and reports per-benchmark speedups: \
              $(b,--suite kernels) covers the dense path (reference GEMM vs \
              tiled+packed with the workspace arena), $(b,--suite dataset) \
              the dataset pipeline (recorded traces + second-pass heatmaps \
              vs streaming/parallel builders and the warm simulation \
              cache). With $(b,--json) the results are written in the \
              BENCH_KERNELS.json schema; with $(b,--baseline) the measured \
              speedups are gated against a committed baseline (CI's \
              perf-regression jobs).";
         ])
    Term.(
      const run $ domains_arg $ suite_arg $ json_arg $ baseline_arg $ require_arg
      $ max_err_arg $ max_slowdown_arg $ fast_arg)

let () =
  let doc = "CacheBox: learning architectural cache simulator behaviour" in
  let info = Cmd.info "cachebox" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; simulate_cmd; heatmap_cmd; train_cmd; distill_cmd; infer_cmd; serve_cmd; call_cmd; stream_cmd; route_cmd; loadgen_cmd; baselines_cmd; bench_cmd; export_cmd; replay_cmd; characterize_cmd ]))
