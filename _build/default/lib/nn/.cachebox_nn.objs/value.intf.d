lib/nn/value.mli: Param Prng Tensor
