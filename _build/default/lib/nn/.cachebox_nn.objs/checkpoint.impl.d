lib/nn/checkpoint.ml: Array Buffer Fun Hashtbl Int32 List Param String Tensor
