lib/nn/layers.ml: Array Option Param Tensor Value
