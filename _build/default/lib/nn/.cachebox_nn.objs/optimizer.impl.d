lib/nn/optimizer.ml: Array Param Tensor
