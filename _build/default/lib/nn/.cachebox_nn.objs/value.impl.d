lib/nn/value.ml: Array Blas Conv Float Hashtbl List Option Param Prng Stack Tensor
