lib/nn/optimizer.mli: Param
