lib/nn/param.mli: Tensor
