lib/nn/layers.mli: Param Prng Value
