lib/nn/param.ml: Hashtbl List Tensor
