(** Trainable parameters.

    A parameter owns its value tensor and a persistent gradient tensor that
    autodiff accumulates into; the optimizer reads the gradient and mutates
    the value in place. *)

type t = {
  name : string;  (** unique within a model; used by checkpointing *)
  value : Tensor.t;
  grad : Tensor.t;
}

val create : string -> Tensor.t -> t
(** Wraps an initial value; the gradient starts at zero. *)

val zero_grad : t -> unit
val numel : t -> int

val group : t list list -> t list
(** Flattens parameter groups and checks name uniqueness
    ([Invalid_argument] on duplicates). *)
