(** Binary model checkpoints.

    A checkpoint stores named parameter tensors and named auxiliary float
    arrays (batch-norm running statistics). The on-disk format is a small
    little-endian binary container (magic, entry count, then
    name/shape/float32-payload records); it is independent of OCaml's
    [Marshal] so files are stable across compiler versions. *)

val save :
  string -> params:Param.t list -> state:(string * float array) list -> unit
(** Writes a checkpoint; overwrites any existing file. *)

val load :
  string -> params:Param.t list -> state:(string * float array) list -> unit
(** Loads values into the given parameters/state arrays by name. Raises
    [Failure] if the file is malformed, an entry is missing, or a shape
    disagrees. Entries present in the file but not requested are ignored. *)

val entries : string -> (string * int array) list
(** Names and shapes stored in a checkpoint (diagnostic). *)
