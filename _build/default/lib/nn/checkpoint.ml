let magic = "CBOXCKPT1"

let write_int32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let write_entry buf name dims (get : int -> float) n =
  write_int32 buf (String.length name);
  Buffer.add_string buf name;
  write_int32 buf (Array.length dims);
  Array.iter (fun d -> write_int32 buf d) dims;
  for i = 0 to n - 1 do
    Buffer.add_int32_le buf (Int32.bits_of_float (get i))
  done

let save path ~params ~state =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  write_int32 buf (List.length params + List.length state);
  List.iter
    (fun (p : Param.t) ->
      let v = p.value in
      write_entry buf p.name (Tensor.shape v) (Tensor.get v) (Tensor.numel v))
    params;
  List.iter
    (fun (name, a) ->
      write_entry buf name [| Array.length a |] (Array.get a) (Array.length a))
    state;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)

type entry = { dims : int array; data : float array }

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      if len < String.length magic || String.sub raw 0 (String.length magic) <> magic
      then failwith ("Checkpoint.load: bad magic in " ^ path);
      let pos = ref (String.length magic) in
      let read_i32 () =
        let v = Int32.to_int (String.get_int32_le raw !pos) in
        pos := !pos + 4;
        v
      in
      let read_f32 () =
        let v = Int32.float_of_bits (String.get_int32_le raw !pos) in
        pos := !pos + 4;
        v
      in
      let count = read_i32 () in
      let table = Hashtbl.create (2 * count) in
      for _ = 1 to count do
        let name_len = read_i32 () in
        let name = String.sub raw !pos name_len in
        pos := !pos + name_len;
        let ndims = read_i32 () in
        let dims = Array.init ndims (fun _ -> read_i32 ()) in
        let n = Array.fold_left ( * ) 1 dims in
        let data = Array.init n (fun _ -> read_f32 ()) in
        Hashtbl.replace table name { dims; data }
      done;
      table)

let load path ~params ~state =
  let table = read_all path in
  let find name =
    match Hashtbl.find_opt table name with
    | Some e -> e
    | None -> failwith ("Checkpoint.load: missing entry " ^ name ^ " in " ^ path)
  in
  List.iter
    (fun (p : Param.t) ->
      let e = find p.name in
      if e.dims <> Tensor.shape p.value then
        failwith ("Checkpoint.load: shape mismatch for " ^ p.name);
      Array.iteri (fun i v -> Tensor.set p.value i v) e.data)
    params;
  List.iter
    (fun (name, a) ->
      let e = find name in
      if Array.length e.data <> Array.length a then
        failwith ("Checkpoint.load: length mismatch for " ^ name);
      Array.blit e.data 0 a 0 (Array.length a))
    state

let entries path =
  let table = read_all path in
  Hashtbl.fold (fun name e acc -> (name, e.dims) :: acc) table []
  |> List.sort compare
