type t = { name : string; value : Tensor.t; grad : Tensor.t }

let create name value = { name; value; grad = Tensor.zeros (Tensor.shape value) }
let zero_grad p = Tensor.fill p.grad 0.0
let numel p = Tensor.numel p.value

let group groups =
  let all = List.concat groups in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.name then
        invalid_arg ("Param.group: duplicate parameter name " ^ p.name);
      Hashtbl.add seen p.name ())
    all;
  all
