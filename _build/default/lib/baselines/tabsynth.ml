type variant = Base | Rd | Ic

let variant_name = function Base -> "Tab-Base" | Rd -> "Tab-RD" | Ic -> "Tab-IC"

(* --- Tab-Base: i.i.d. empirical address sampling --- *)

let synth_base rng block_bytes trace n =
  let blocks = Array.map (fun a -> a / block_bytes) trace in
  Array.init n (fun _ -> blocks.(Prng.int rng (Array.length blocks)) * block_bytes)

(* --- Tab-RD: LRU-stack sampler matching the reuse-distance histogram ---

   Maintain an explicit LRU stack. For each synthetic access, draw a stack
   distance from the trace's empirical distance histogram; distance d means
   "access the block currently at stack depth d" (a cold distance allocates
   a fresh block). The clone's fully-associative reuse-distance profile then
   matches the original's by construction. *)

let synth_rd rng block_bytes trace n =
  (* Like the tabular generator it stands in for, the sampler works from a
     compact (log2-binned) distance profile, not the exact histogram. *)
  let dists = Reuse_distance.log2_binned (Reuse_distance.distances ~block_bytes trace) in
  let hist = Reuse_distance.histogram dists in
  let support = Array.of_list hist in
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 support in
  let draw () =
    let r = Prng.int rng total in
    let acc = ref 0 and result = ref Reuse_distance.infinite in
    (try
       Array.iter
         (fun (d, c) ->
           acc := !acc + c;
           if r < !acc then begin
             result := d;
             raise Exit
           end)
         support
     with Exit -> ());
    !result
  in
  (* LRU stack as an array deque: the stack front sits at index [front] and
     grows leftwards. Fresh blocks are pushed at the front in O(1); moving
     the element at depth d to the front shifts only d elements. *)
  let cap = n + 1 in
  let stack = Array.make cap 0 in
  let front = ref cap in
  let len = ref 0 in
  let fresh = ref 0 in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let d = draw () in
    let block =
      if d = Reuse_distance.infinite || d >= !len then begin
        (* Cold access: allocate a new block at the stack front. *)
        incr fresh;
        decr front;
        incr len;
        stack.(!front) <- !fresh;
        !fresh
      end
      else begin
        let pos = !front + d in
        let b = stack.(pos) in
        Array.blit stack !front stack (!front + 1) d;
        stack.(!front) <- b;
        b
      end
    in
    out.(i) <- block * block_bytes
  done;
  out

(* --- Tab-IC: first-order Markov chain over exact block deltas --- *)

let synth_ic rng block_bytes trace n =
  let deltas = Hashtbl.create 1024 in
  (* delta -> (next delta -> count) conditional table *)
  let prev_block = ref (trace.(0) / block_bytes) in
  let prev_delta = ref 0 in
  for i = 1 to Array.length trace - 1 do
    let block = trace.(i) / block_bytes in
    let d = block - !prev_block in
    let row =
      match Hashtbl.find_opt deltas !prev_delta with
      | Some r -> r
      | None ->
        let r = Hashtbl.create 16 in
        Hashtbl.replace deltas !prev_delta r;
        r
    in
    Hashtbl.replace row d (1 + Option.value ~default:0 (Hashtbl.find_opt row d));
    prev_block := block;
    prev_delta := d
  done;
  let sample_row row =
    let total = Hashtbl.fold (fun _ c acc -> acc + c) row 0 in
    let r = Prng.int rng total in
    let acc = ref 0 and result = ref 0 in
    (try
       Hashtbl.iter
         (fun d c ->
           acc := !acc + c;
           if r < !acc then begin
             result := d;
             raise Exit
           end)
         row
     with Exit -> ());
    !result
  in
  let out = Array.make n 0 in
  let block = ref (trace.(0) / block_bytes) and delta = ref 0 in
  for i = 0 to n - 1 do
    out.(i) <- !block * block_bytes;
    let d =
      match Hashtbl.find_opt deltas !delta with
      | Some row when Hashtbl.length row > 0 -> sample_row row
      | _ -> 0
    in
    block := max 0 (!block + d);
    delta := d
  done;
  out

let synthesize ?(seed = 11) ~variant ?(block_bytes = 64) trace =
  let rng = Prng.create seed in
  let n = Array.length trace in
  if n = 0 then invalid_arg "Tabsynth.synthesize: empty trace";
  match variant with
  | Base -> synth_base rng block_bytes trace n
  | Rd -> synth_rd rng block_bytes trace n
  | Ic -> synth_ic rng block_bytes trace n

let predict ?seed ~variant cfg trace =
  let clone = synthesize ?seed ~variant ~block_bytes:cfg.Cache.block_bytes trace in
  let cache = Cache.create cfg in
  Array.iter (fun addr -> ignore (Cache.access cache addr)) clone;
  Cache.hit_rate (Cache.stats cache)
