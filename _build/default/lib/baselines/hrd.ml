let predict ~configs trace =
  if configs = [] then invalid_arg "Hrd.predict: no configs";
  let rng = Prng.create (Array.length trace) in
  let rec go current_trace = function
    | [] -> []
    | (cfg : Cache.config) :: deeper ->
      (* HRD keeps compact log2-binned profiles, not exact histograms. *)
      let dists =
        Reuse_distance.log2_binned
          (Reuse_distance.distances ~block_bytes:cfg.block_bytes current_trace)
      in
      let hr =
        Reuse_distance.predict_set_associative ~sets:cfg.sets ~ways:cfg.ways dists
      in
      let rest =
        if deeper = [] then []
        else begin
          (* Thin to the expected miss stream entering the next level. *)
          let memo = Hashtbl.create 1024 in
          let miss_prob d =
            match Hashtbl.find_opt memo d with
            | Some p -> p
            | None ->
              let p =
                1.0
                -. Reuse_distance.set_associative_hit_probability ~sets:cfg.sets
                     ~ways:cfg.ways ~distance:d
              in
              Hashtbl.replace memo d p;
              p
          in
          let kept = ref [] in
          Array.iteri
            (fun i addr ->
              if Prng.float rng 1.0 < miss_prob dists.(i) then kept := addr :: !kept)
            current_trace;
          let next = Array.of_list (List.rev !kept) in
          if Array.length next = 0 then List.map (fun _ -> 0.0) deeper
          else go next deeper
        end
      in
      hr :: rest
  in
  go trace configs

let predict_l1 cfg trace =
  match predict ~configs:[ cfg ] trace with
  | [ hr ] -> hr
  | _ -> assert false
