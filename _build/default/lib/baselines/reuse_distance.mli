(** Exact LRU stack-distance (reuse-distance) computation.

    The stack distance of an access is the number of *distinct* blocks
    referenced since the previous access to the same block; cold accesses
    have infinite distance. Computed in O(n log n) with a Fenwick tree over
    access timestamps (Bennett & Kruskal / Olken's algorithm). *)

val infinite : int
(** Sentinel for cold (first-touch) accesses ([max_int]). *)

val distances : ?block_bytes:int -> int array -> int array
(** Per-access stack distance of the block-folded trace, fully-associative
    semantics. Default block size 64. *)

val histogram : int array -> (int * int) list
(** Sorted (distance, count) pairs; {!infinite} collects cold misses. *)

val log2_bin : int -> int
(** Representative distance of the power-of-two bucket containing the
    argument (0 and {!infinite} map to themselves). Compact log2-binned
    profiles are what HRD-family tools store instead of exact histograms;
    binning before prediction reproduces their fidelity. *)

val log2_binned : int array -> int array
(** Maps every distance through {!log2_bin}. *)

val hit_rate_fully_associative : capacity_blocks:int -> int array -> float
(** Exact LRU hit rate of a fully-associative cache of the given capacity,
    derived from distances (LRU stack inclusion: hit iff distance <
    capacity). *)

val set_associative_hit_probability :
  sets:int -> ways:int -> distance:int -> float
(** Probabilistic fully-associative-to-set-associative conversion (Smith's
    binomial model): the probability that an access at fully-associative
    stack distance [d] hits in a [sets] x [ways] LRU cache, assuming blocks
    scatter uniformly over sets. *)

val predict_set_associative : sets:int -> ways:int -> int array -> float
(** Expected hit rate of a set-associative LRU cache under the binomial
    model, given the per-access distances. This is the (deliberately
    approximate) single-level predictor HRD builds on. *)
