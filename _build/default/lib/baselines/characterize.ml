type summary = {
  accesses : int;
  footprint_blocks : int;
  footprint_bytes : int;
  sequential_fraction : float;
  same_block_fraction : float;
  mean_reuse_distance : float;
  median_reuse_distance : int;
  cold_fraction : float;
  top8_block_share : float;
}

let summarize ?(block_bytes = 64) trace =
  let n = Array.length trace in
  if n = 0 then invalid_arg "Characterize.summarize: empty trace";
  let counts = Hashtbl.create 4096 in
  let seq = ref 0 and same = ref 0 in
  let prev = ref (trace.(0) / block_bytes) in
  Array.iteri
    (fun i addr ->
      let b = addr / block_bytes in
      Hashtbl.replace counts b (1 + Option.value ~default:0 (Hashtbl.find_opt counts b));
      if i > 0 then begin
        let d = b - !prev in
        if abs d = 1 then incr seq else if d = 0 then incr same
      end;
      prev := b)
    trace;
  let dists = Reuse_distance.distances ~block_bytes trace in
  let finite = Array.to_list dists |> List.filter (fun d -> d <> Reuse_distance.infinite) in
  let cold = n - List.length finite in
  let mean_rd =
    match finite with
    | [] -> 0.0
    | ds -> float_of_int (List.fold_left ( + ) 0 ds) /. float_of_int (List.length ds)
  in
  let median_rd =
    match List.sort compare finite with
    | [] -> 0
    | sorted -> List.nth sorted (List.length sorted / 2)
  in
  let by_count =
    Hashtbl.fold (fun _ c acc -> c :: acc) counts [] |> List.sort (fun a b -> compare b a)
  in
  let top8 = List.filteri (fun i _ -> i < 8) by_count |> List.fold_left ( + ) 0 in
  {
    accesses = n;
    footprint_blocks = Hashtbl.length counts;
    footprint_bytes = Hashtbl.length counts * block_bytes;
    sequential_fraction = float_of_int !seq /. float_of_int n;
    same_block_fraction = float_of_int !same /. float_of_int n;
    mean_reuse_distance = mean_rd;
    median_reuse_distance = median_rd;
    cold_fraction = float_of_int cold /. float_of_int n;
    top8_block_share = float_of_int top8 /. float_of_int n;
  }

let working_set_curve ?(block_bytes = 64) ~window trace =
  if window <= 0 then invalid_arg "Characterize.working_set_curve: window must be positive";
  let n = Array.length trace in
  let out = ref [] in
  let start = ref 0 in
  while !start < n do
    let stop = min n (!start + window) in
    let distinct = Hashtbl.create 256 in
    for i = !start to stop - 1 do
      Hashtbl.replace distinct (trace.(i) / block_bytes) ()
    done;
    out := (!start, Hashtbl.length distinct) :: !out;
    start := stop
  done;
  List.rev !out

let stride_histogram ?(block_bytes = 64) ?(top = 10) trace =
  let table = Hashtbl.create 256 in
  for i = 1 to Array.length trace - 1 do
    let d = (trace.(i) / block_bytes) - (trace.(i - 1) / block_bytes) in
    Hashtbl.replace table d (1 + Option.value ~default:0 (Hashtbl.find_opt table d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < top)

let miss_ratio_curve ?(block_bytes = 64) ~capacities trace =
  let dists = Reuse_distance.distances ~block_bytes trace in
  List.map
    (fun cap ->
      let hr = Reuse_distance.hit_rate_fully_associative ~capacity_blocks:cap dists in
      (cap, 1.0 -. hr))
    capacities

let pp_summary ppf s =
  Format.fprintf ppf
    "accesses %d; footprint %d blocks (%d KiB); sequential %.1f%%; same-block %.1f%%;@ \
     reuse distance mean %.1f median %d; cold %.1f%%; top-8 blocks hold %.1f%% of accesses"
    s.accesses s.footprint_blocks (s.footprint_bytes / 1024)
    (100.0 *. s.sequential_fraction)
    (100.0 *. s.same_block_fraction)
    s.mean_reuse_distance s.median_reuse_distance
    (100.0 *. s.cold_fraction)
    (100.0 *. s.top8_block_share)
