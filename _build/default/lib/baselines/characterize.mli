(** Trace characterization: the workload-analysis toolkit behind the
    paper's motivation (§2) — compact summaries of a trace's spatial and
    temporal locality that explain *why* a heatmap carries enough signal for
    a model to learn the cache's filter.

    All statistics are at cache-block (64 B) granularity unless noted. *)

type summary = {
  accesses : int;
  footprint_blocks : int;  (** distinct blocks touched *)
  footprint_bytes : int;
  sequential_fraction : float;  (** |delta| = 1 block *)
  same_block_fraction : float;  (** delta = 0 *)
  mean_reuse_distance : float;  (** over finite distances *)
  median_reuse_distance : int;  (** over finite distances; 0 if none *)
  cold_fraction : float;  (** first-touch accesses *)
  top8_block_share : float;  (** access share of the 8 hottest blocks *)
}

val summarize : ?block_bytes:int -> int array -> summary

val working_set_curve : ?block_bytes:int -> window:int -> int array -> (int * int) list
(** [(window-start, distinct-blocks)] per non-overlapping window — the
    classic working-set profile. *)

val stride_histogram : ?block_bytes:int -> ?top:int -> int array -> (int * int) list
(** Most frequent block deltas, descending by count. *)

val miss_ratio_curve :
  ?block_bytes:int -> capacities:int list -> int array -> (int * float) list
(** [(capacity-in-blocks, fully-associative LRU miss ratio)] — derived from
    one reuse-distance pass, the cheap capacity-planning curve HRD-style
    models are built on. *)

val pp_summary : Format.formatter -> summary -> unit
