(** Hierarchical Reuse Distance (HRD) predictor, after Maeda et al.
    (HPCA'17): a single fully-associative reuse-distance profile of the
    trace drives probabilistic hit-rate predictions for every cache level.

    Level 1 is predicted directly with the binomial set-associative model
    (see {!Reuse_distance.predict_set_associative}). Deeper levels are
    predicted hierarchically: the access stream entering level i+1 is
    approximated by thinning the trace with each access's level-i miss
    probability, then re-profiling — the source of HRD's characteristic
    error against exact simulation. *)

val predict : configs:Cache.config list -> int array -> float list
(** [predict ~configs trace] returns one hit-rate prediction per config,
    innermost level first in the order given (L1 first). The list must be
    non-empty. Deterministic (the thinning PRNG seed derives from the trace
    length). *)

val predict_l1 : Cache.config -> int array -> float
(** Single-level convenience wrapper. *)
