lib/baselines/hrd.mli: Cache
