lib/baselines/stm.ml: Array Cache Float Hashtbl List Prng
