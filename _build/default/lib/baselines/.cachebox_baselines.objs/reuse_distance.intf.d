lib/baselines/reuse_distance.mli:
