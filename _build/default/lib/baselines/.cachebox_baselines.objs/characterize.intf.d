lib/baselines/characterize.mli: Format
