lib/baselines/reuse_distance.ml: Array Float Hashtbl List Option
