lib/baselines/characterize.ml: Array Format Hashtbl List Option Reuse_distance
