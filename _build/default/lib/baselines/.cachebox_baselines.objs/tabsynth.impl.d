lib/baselines/tabsynth.ml: Array Cache Hashtbl Option Prng Reuse_distance
