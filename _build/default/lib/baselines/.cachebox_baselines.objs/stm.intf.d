lib/baselines/stm.mli: Cache
