lib/baselines/hrd.ml: Array Cache Hashtbl List Prng Reuse_distance
