lib/baselines/tabsynth.mli: Cache
