let infinite = max_int

(* Fenwick (binary indexed) tree over 1-based positions. *)
module Fenwick = struct
  type t = { tree : int array; n : int }

  let create n = { tree = Array.make (n + 1) 0; n }

  let add t i delta =
    let i = ref (i + 1) in
    while !i <= t.n do
      t.tree.(!i) <- t.tree.(!i) + delta;
      i := !i + (!i land - !i)
    done

  (* Sum of positions [0, i]. *)
  let prefix t i =
    let i = ref (i + 1) in
    let acc = ref 0 in
    while !i > 0 do
      acc := !acc + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !acc

  let range t lo hi = if hi < lo then 0 else prefix t hi - if lo = 0 then 0 else prefix t (lo - 1)
end

let distances ?(block_bytes = 64) trace =
  let n = Array.length trace in
  let out = Array.make n infinite in
  let fen = Fenwick.create n in
  let last = Hashtbl.create 4096 in
  for t = 0 to n - 1 do
    let block = trace.(t) / block_bytes in
    (match Hashtbl.find_opt last block with
    | None -> ()
    | Some t' ->
      (* Distinct blocks touched strictly between t' and t are exactly the
         marked positions in (t', t). *)
      out.(t) <- Fenwick.range fen (t' + 1) (t - 1);
      Fenwick.add fen t' (-1));
    Fenwick.add fen t 1;
    Hashtbl.replace last block t
  done;
  out

let histogram dists =
  let table = Hashtbl.create 256 in
  Array.iter
    (fun d ->
      Hashtbl.replace table d (1 + Option.value ~default:0 (Hashtbl.find_opt table d)))
    dists;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) table [] |> List.sort compare

let log2_bin d =
  if d <= 0 || d = infinite then d
  else begin
    (* Bucket [2^k, 2^(k+1)); representative = floor of the geometric mean
       of the bucket bounds. *)
    let k = ref 0 in
    while 1 lsl (!k + 1) <= d do incr k done;
    let lo = 1 lsl !k in
    int_of_float (Float.of_int lo *. sqrt 2.0)
  end

let log2_binned dists = Array.map log2_bin dists

let hit_rate_fully_associative ~capacity_blocks dists =
  let n = Array.length dists in
  if n = 0 then 0.0
  else begin
    let hits = ref 0 in
    Array.iter (fun d -> if d <> infinite && d < capacity_blocks then incr hits) dists;
    float_of_int !hits /. float_of_int n
  end

(* P(hit) = P(fewer than [ways] of the [distance] intervening distinct blocks
   fall in the same set), intervening blocks scattering uniformly:
   sum_{k<ways} C(d,k) p^k (1-p)^(d-k) with p = 1/sets. Evaluated by
   recurrence to stay stable for large d. *)
let set_associative_hit_probability ~sets ~ways ~distance =
  if distance = infinite then 0.0
  else if sets <= 1 then if distance < ways then 1.0 else 0.0
  else begin
    let p = 1.0 /. float_of_int sets in
    let q = 1.0 -. p in
    let d = float_of_int distance in
    (* term_0 = q^d; term_{k+1} = term_k * (d-k)/(k+1) * p/q *)
    let term = ref (q ** d) in
    let acc = ref 0.0 in
    (try
       for k = 0 to ways - 1 do
         if k > distance then raise Exit;
         acc := !acc +. !term;
         term := !term *. (d -. float_of_int k) /. float_of_int (k + 1) *. (p /. q)
       done
     with Exit -> ());
    Float.min 1.0 !acc
  end

let predict_set_associative ~sets ~ways dists =
  let n = Array.length dists in
  if n = 0 then 0.0
  else begin
    (* Memoise over distinct distances: traces repeat distances heavily. *)
    let memo = Hashtbl.create 1024 in
    let total = ref 0.0 in
    Array.iter
      (fun d ->
        let p =
          match Hashtbl.find_opt memo d with
          | Some p -> p
          | None ->
            let p = set_associative_hit_probability ~sets ~ways ~distance:d in
            Hashtbl.replace memo d p;
            p
        in
        total := !total +. p)
      dists;
    !total /. float_of_int n
  end
