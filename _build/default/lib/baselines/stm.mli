(** Spatio-Temporal Memory (STM) model, after Awad & Solihin (HPCA'14):
    clone-and-resimulate. A compact statistical profile of the trace —
    first-order stride (spatial) behaviour plus a coarse temporal-reuse
    histogram — drives generation of a synthetic clone trace of equal
    length, which is then run through the exact cache simulator. The
    prediction error is exactly the behaviour the clone fails to preserve. *)

type profile

val profile : ?block_bytes:int -> int array -> profile
(** Collects the stride transition table and reuse statistics. *)

val clone : ?seed:int -> profile -> int -> int array
(** Generates a synthetic trace of the requested length from a profile. *)

val predict : ?seed:int -> Cache.config -> int array -> float
(** Profile the trace, clone it, simulate the clone: predicted hit rate. *)
