(** Tabular generative trace synthesis — the REaLTabFormer comparator of
    Table 1, reimplemented as three clone-and-resimulate synthesizers of
    increasing structure (mirroring the paper's Tab-Base / Tab-RD / Tab-IC
    columns):

    - {!val-base}: i.i.d. sampling from the empirical block-address
      distribution (no temporal structure at all);
    - {!val-rd}: an LRU-stack sampler that reproduces the trace's
      fully-associative reuse-distance histogram (temporal structure,
      no spatial structure);
    - {!val-ic}: a first-order Markov chain over exact block deltas
      ("instruction-context" conditioning; spatial structure, weak temporal
      structure). *)

type variant = Base | Rd | Ic

val variant_name : variant -> string

val synthesize : ?seed:int -> variant:variant -> ?block_bytes:int -> int array -> int array
(** Generate a clone trace of the same length as the input. *)

val predict : ?seed:int -> variant:variant -> Cache.config -> int array -> float
(** Clone the trace and simulate the clone: predicted hit rate. *)
