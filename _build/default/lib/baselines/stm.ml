(* The profile quantises block-address deltas into named stride bins and
   records the first-order transition frequencies between bins, plus the
   empirical magnitude distribution within each bin. Cloning replays the
   bin-level Markov chain; within a bin the concrete delta is sampled from
   the recorded magnitudes. A separate "reuse jump" records how often the
   clone should return to a previously-touched region, which is STM's
   temporal component. *)

type bin = int
(* Bin encoding: deltas are clamped to [-max_delta, max_delta] and bucketed
   by signed log2 magnitude; bin 0 is delta 0. *)

let bin_count = 41

let bin_of_delta d =
  if d = 0 then 20
  else begin
    let mag = min 19 (int_of_float (Float.log2 (float_of_int (abs d)) +. 1.0)) in
    if d > 0 then 20 + mag else 20 - mag
  end

type profile = {
  block_bytes : int;
  transitions : int array;  (** [bin_count * bin_count] counts *)
  samples : int list array;  (** representative deltas per bin (capped) *)
  start_block : int;
  footprint : int;  (** distinct blocks *)
  reuse_fraction : float;  (** fraction of accesses that are block re-visits *)
}

let max_samples_per_bin = 64

let profile ?(block_bytes = 64) trace =
  let n = Array.length trace in
  if n < 2 then invalid_arg "Stm.profile: trace too short";
  let transitions = Array.make (bin_count * bin_count) 0 in
  let samples = Array.make bin_count [] in
  let sample_counts = Array.make bin_count 0 in
  let seen = Hashtbl.create 4096 in
  let reuses = ref 0 in
  let prev_bin = ref (bin_of_delta 0) in
  let prev_block = ref (trace.(0) / block_bytes) in
  Hashtbl.replace seen !prev_block ();
  for i = 1 to n - 1 do
    let block = trace.(i) / block_bytes in
    let delta = block - !prev_block in
    let b = bin_of_delta delta in
    transitions.((!prev_bin * bin_count) + b) <- transitions.((!prev_bin * bin_count) + b) + 1;
    if sample_counts.(b) < max_samples_per_bin then begin
      samples.(b) <- delta :: samples.(b);
      sample_counts.(b) <- sample_counts.(b) + 1
    end;
    if Hashtbl.mem seen block then incr reuses else Hashtbl.replace seen block ();
    prev_bin := b;
    prev_block := block
  done;
  {
    block_bytes;
    transitions;
    samples;
    start_block = trace.(0) / block_bytes;
    footprint = Hashtbl.length seen;
    reuse_fraction = float_of_int !reuses /. float_of_int n;
  }

let next_bin rng p (current : bin) =
  let row = Array.sub p.transitions (current * bin_count) bin_count in
  let total = Array.fold_left ( + ) 0 row in
  if total = 0 then bin_of_delta 0
  else begin
    let r = Prng.int rng total in
    let acc = ref 0 and result = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if r < !acc then begin
             result := i;
             raise Exit
           end)
         row
     with Exit -> ());
    !result
  end

let clone ?(seed = 7) p n =
  let rng = Prng.create seed in
  let out = Array.make n 0 in
  let block = ref p.start_block in
  let bin = ref (bin_of_delta 0) in
  (* Bounded history of visited blocks backs the temporal reuse jumps. *)
  let history = Array.make (max 16 (min p.footprint 8192)) p.start_block in
  let hist_len = ref 1 and hist_pos = ref 1 in
  for i = 0 to n - 1 do
    out.(i) <- !block * p.block_bytes;
    if Prng.float rng 1.0 < p.reuse_fraction *. 0.1 && !hist_len > 1 then
      (* Temporal jump back to a previously visited block. *)
      block := history.(Prng.int rng !hist_len)
    else begin
      bin := next_bin rng p !bin;
      let delta =
        match p.samples.(!bin) with
        | [] -> 0
        | ds -> List.nth ds (Prng.int rng (List.length ds))
      in
      block := max 0 (!block + delta)
    end;
    history.(!hist_pos) <- !block;
    hist_pos := (!hist_pos + 1) mod Array.length history;
    hist_len := min (Array.length history) (!hist_len + 1)
  done;
  out

let predict ?seed cfg trace =
  let p = profile ~block_bytes:cfg.Cache.block_bytes trace in
  let synthetic = clone ?seed p (Array.length trace) in
  let cache = Cache.create cfg in
  Array.iter (fun addr -> ignore (Cache.access cache addr)) synthetic;
  Cache.hit_rate (Cache.stats cache)
