(** Two-level inclusion-policy models (paper §6.3 lists inclusion/exclusion
    among the unexplored cache options; this is the substrate for studying
    them).

    - {b Inclusive}: every L1 block is also in L2; an L2 eviction
      back-invalidates the L1 copy.
    - {b Exclusive}: a block lives in exactly one level; an L1 hit leaves
      L2 untouched, an L2 hit moves the block up (removing it from L2), and
      an L1 eviction spills the victim into L2.
    - {b Nine} (non-inclusive, non-exclusive): no constraint — the model
      {!Hierarchy} implements; provided here for side-by-side comparison. *)

type policy = Inclusive | Exclusive | Nine

val policy_name : policy -> string

type t

val create : policy -> l1:Cache.config -> l2:Cache.config -> t

val access : t -> int -> [ `L1_hit | `L2_hit | `Miss ]

type stats = { accesses : int; l1_hits : int; l2_hits : int; misses : int }

val stats : t -> stats
val l1_hit_rate : stats -> float
val holds_invariant : t -> int array -> bool
(** Replays a trace and checks the policy's structural invariant after
    every access (inclusive: L1 contents ⊆ L2; exclusive: L1 ∩ L2 = ∅),
    probing the given addresses. Intended for tests. *)

val reset : t -> unit
