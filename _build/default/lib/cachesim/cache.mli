(** Trace-driven set-associative cache model (the ChampSim-equivalent
    ground-truth engine of this reproduction).

    Addresses are byte addresses; the cache operates on aligned blocks of
    [block_bytes]. The set count must be a power of two (as in ChampSim);
    associativity is arbitrary. *)

type policy =
  | Lru  (** least-recently-used (ChampSim default, used by the paper) *)
  | Fifo
  | Plru  (** bit-PLRU (MRU-bit approximation, any associativity) *)
  | Srrip  (** 2-bit static RRIP *)
  | Random_policy of int  (** uniformly random victim, seeded *)

type config = {
  sets : int;
  ways : int;
  block_bytes : int;
  policy : policy;
}

val config :
  ?block_bytes:int -> ?policy:policy -> sets:int -> ways:int -> unit -> config
(** Defaults: 64-byte blocks, LRU — the paper's fixed setting. *)

val size_bytes : config -> int
(** Total capacity in bytes. *)

val config_name : config -> string
(** e.g. ["64set-12way"], the paper's naming. *)

type stats = { accesses : int; hits : int; misses : int }

val hit_rate : stats -> float
(** Hits over accesses; 0 when empty. *)

type t

val create : config -> t
val get_config : t -> config

val access : t -> int -> bool
(** Demand access by byte address: returns [true] on hit, updates
    replacement state and statistics, and allocates the block on miss. *)

val access_evict : t -> int -> bool * int option
(** Like {!access}, additionally reporting the byte address of the block
    evicted to make room (None on hit or when an invalid way was filled) —
    the hook victim caches and exclusive hierarchies need. *)

val probe : t -> int -> bool
(** Presence check with no side effects. *)

val insert : t -> int -> unit
(** Fill a block without touching demand statistics (prefetch fill). No-op
    if already present. *)

val invalidate : t -> int -> bool
(** Remove a block if present (back-invalidation for inclusive hierarchies,
    or extraction for exclusive ones); returns whether it was present. *)

val stats : t -> stats
val reset : t -> unit
(** Empties the cache and clears statistics. *)
