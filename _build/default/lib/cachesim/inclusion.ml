type policy = Inclusive | Exclusive | Nine

let policy_name = function
  | Inclusive -> "inclusive"
  | Exclusive -> "exclusive"
  | Nine -> "NINE"

type t = {
  policy : policy;
  l1 : Cache.t;
  l2 : Cache.t;
  mutable accesses : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
}

let create policy ~l1 ~l2 =
  { policy; l1 = Cache.create l1; l2 = Cache.create l2; accesses = 0; l1_hits = 0; l2_hits = 0 }

let access t addr =
  t.accesses <- t.accesses + 1;
  let l1_hit, l1_evicted = Cache.access_evict t.l1 addr in
  if l1_hit then begin
    t.l1_hits <- t.l1_hits + 1;
    `L1_hit
  end
  else begin
    let l2_hit =
      match t.policy with
      | Exclusive ->
        (* The block moves up on an L2 hit and is never demand-allocated in
           L2 (lines enter L2 only as L1 spills); extract the requested
           line *before* spilling so the spill cannot displace it. *)
        let hit = Cache.probe t.l2 addr in
        if hit then ignore (Cache.invalidate t.l2 addr);
        (match l1_evicted with Some victim -> Cache.insert t.l2 victim | None -> ());
        hit
      | Inclusive | Nine ->
        let hit, l2_evicted = Cache.access_evict t.l2 addr in
        (match (t.policy, l2_evicted) with
        | Inclusive, Some victim ->
          (* Back-invalidate: inclusion demands the L1 copy dies with
             L2's. *)
          ignore (Cache.invalidate t.l1 victim)
        | (Exclusive | Nine | Inclusive), _ -> ());
        hit
    in
    if l2_hit then begin
      t.l2_hits <- t.l2_hits + 1;
      `L2_hit
    end
    else `Miss
  end

type stats = { accesses : int; l1_hits : int; l2_hits : int; misses : int }

let stats (t : t) =
  {
    accesses = t.accesses;
    l1_hits = t.l1_hits;
    l2_hits = t.l2_hits;
    misses = t.accesses - t.l1_hits - t.l2_hits;
  }

let l1_hit_rate s =
  if s.accesses = 0 then 0.0 else float_of_int s.l1_hits /. float_of_int s.accesses

let holds_invariant t trace =
  let check addr_pool =
    match t.policy with
    | Nine -> true
    | Inclusive ->
      Array.for_all
        (fun a -> (not (Cache.probe t.l1 a)) || Cache.probe t.l2 a)
        addr_pool
    | Exclusive ->
      Array.for_all
        (fun a -> not (Cache.probe t.l1 a && Cache.probe t.l2 a))
        addr_pool
  in
  Array.for_all
    (fun addr ->
      ignore (access t addr);
      check trace)
    trace

let reset t =
  Cache.reset t.l1;
  Cache.reset t.l2;
  t.accesses <- 0;
  t.l1_hits <- 0;
  t.l2_hits <- 0
