(** Victim cache (paper §6.3 lists victim caches as unexplored future work;
    this module provides the substrate to study them).

    A small fully-associative LRU buffer sits next to a main set-associative
    cache. On a main-cache miss the victim buffer is probed; a victim hit
    swaps the block back into the main cache (counted as a hit). Blocks
    evicted from the main cache drop into the victim buffer. *)

type t

val create : main:Cache.config -> victim_entries:int -> t

val access : t -> int -> [ `Main_hit | `Victim_hit | `Miss ]
(** One demand access by byte address. *)

type stats = {
  accesses : int;
  main_hits : int;
  victim_hits : int;
  misses : int;
}

val stats : t -> stats

val hit_rate : stats -> float
(** Combined (main + victim) hit rate. *)

val reset : t -> unit
