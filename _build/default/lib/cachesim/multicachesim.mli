(** A minimal, throughput-oriented cache-only simulator in the spirit of
    MultiCacheSim (Lucia), used as the traditional-simulation speed
    comparator for RQ5. It models one set-associative LRU cache, keeps no
    per-access trace, and its hot loop avoids every source of allocation. *)

type t

val create : sets:int -> ways:int -> block_bytes:int -> t

val run : t -> int array -> int
(** Simulates a whole trace and returns the miss count. State persists
    across calls (call {!reset} between benchmarks). *)

val hit_rate : t -> float
val reset : t -> unit
