type t = {
  sets : int;
  ways : int;
  block_shift : int;
  set_shift : int;
  tags : int array;
  stamps : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~sets ~ways ~block_bytes =
  if sets land (sets - 1) <> 0 then invalid_arg "Multicachesim.create: sets must be power of two";
  {
    sets;
    ways;
    block_shift = log2 block_bytes;
    set_shift = log2 sets;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let run t trace =
  let misses_before = t.misses in
  let n = Array.length trace in
  let ways = t.ways in
  for i = 0 to n - 1 do
    let block = Array.unsafe_get trace i lsr t.block_shift in
    let set = block land (t.sets - 1) in
    let tag = block lsr t.set_shift in
    let base = set * ways in
    t.clock <- t.clock + 1;
    t.accesses <- t.accesses + 1;
    let way = ref (-1) in
    for w = 0 to ways - 1 do
      if Array.unsafe_get t.tags (base + w) = tag then way := w
    done;
    if !way >= 0 then Array.unsafe_set t.stamps (base + !way) t.clock
    else begin
      t.misses <- t.misses + 1;
      (* LRU victim *)
      let victim = ref 0 in
      let oldest = ref max_int in
      for w = 0 to ways - 1 do
        if Array.unsafe_get t.tags (base + w) = -1 then begin
          if !oldest > -1 then begin
            oldest := -1;
            victim := w
          end
        end
        else if !oldest > -1 && Array.unsafe_get t.stamps (base + w) < !oldest then begin
          oldest := Array.unsafe_get t.stamps (base + w);
          victim := w
        end
      done;
      Array.unsafe_set t.tags (base + !victim) tag;
      Array.unsafe_set t.stamps (base + !victim) t.clock
    end
  done;
  t.misses - misses_before

let hit_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int (t.accesses - t.misses) /. float_of_int t.accesses

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0
