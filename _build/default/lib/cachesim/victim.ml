type t = {
  main : Cache.t;
  block_bytes : int;
  entries : int array;  (** block addresses, -1 = invalid *)
  stamps : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable main_hits : int;
  mutable victim_hits : int;
}

let create ~main ~victim_entries =
  if victim_entries <= 0 then invalid_arg "Victim.create: need at least one entry";
  {
    main = Cache.create main;
    block_bytes = main.Cache.block_bytes;
    entries = Array.make victim_entries (-1);
    stamps = Array.make victim_entries 0;
    clock = 0;
    accesses = 0;
    main_hits = 0;
    victim_hits = 0;
  }

let block_of t addr = addr / t.block_bytes

let victim_find t block =
  let rec go i =
    if i >= Array.length t.entries then -1
    else if t.entries.(i) = block then i
    else go (i + 1)
  in
  go 0

let victim_insert t block =
  (* LRU slot, preferring invalid entries. *)
  let slot = ref 0 in
  for i = 1 to Array.length t.entries - 1 do
    if t.entries.(i) = -1 && t.entries.(!slot) <> -1 then slot := i
    else if t.entries.(!slot) <> -1 && t.stamps.(i) < t.stamps.(!slot) then slot := i
  done;
  t.clock <- t.clock + 1;
  t.entries.(!slot) <- block;
  t.stamps.(!slot) <- t.clock

let victim_remove t i = t.entries.(i) <- -1

let spill t evicted =
  match evicted with
  | None -> ()
  | Some addr -> victim_insert t (block_of t addr)

let access t addr =
  t.accesses <- t.accesses + 1;
  let hit, evicted = Cache.access_evict t.main addr in
  if hit then begin
    t.main_hits <- t.main_hits + 1;
    `Main_hit
  end
  else begin
    (* [Cache.access_evict] already allocated the block in the main cache;
       probe the buffer for the requested line *before* spilling the evictee
       so the spill cannot displace the entry being recovered. *)
    let i = victim_find t (block_of t addr) in
    let recovered = i >= 0 in
    if recovered then victim_remove t i;
    spill t evicted;
    if recovered then begin
      t.victim_hits <- t.victim_hits + 1;
      `Victim_hit
    end
    else `Miss
  end

type stats = {
  accesses : int;
  main_hits : int;
  victim_hits : int;
  misses : int;
}

let stats (t : t) =
  {
    accesses = t.accesses;
    main_hits = t.main_hits;
    victim_hits = t.victim_hits;
    misses = t.accesses - t.main_hits - t.victim_hits;
  }

let hit_rate s =
  if s.accesses = 0 then 0.0
  else float_of_int (s.main_hits + s.victim_hits) /. float_of_int s.accesses

let reset t =
  Cache.reset t.main;
  Array.fill t.entries 0 (Array.length t.entries) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.main_hits <- 0;
  t.victim_hits <- 0
