type level = L1 | L2 | L3

let level_name = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3"

type level_trace = {
  level : level;
  addresses : int array;
  hits : bool array;
}

let trace_hit_rate t =
  let n = Array.length t.hits in
  if n = 0 then 0.0
  else begin
    let h = ref 0 in
    Array.iter (fun b -> if b then incr h) t.hits;
    float_of_int !h /. float_of_int n
  end

type recorder = { addrs : Buffer.t; flags : Buffer.t }
(* Traces are recorded compactly: addresses as 8 little-endian bytes, flags
   as single bytes; converted to arrays on demand. *)

let recorder () = { addrs = Buffer.create 4096; flags = Buffer.create 512 }

let record r addr hit =
  Buffer.add_int64_le r.addrs (Int64.of_int addr);
  Buffer.add_char r.flags (if hit then '\001' else '\000')

let recorded_trace r level =
  let raw = Buffer.contents r.addrs in
  let n = String.length raw / 8 in
  let addresses = Array.init n (fun i -> Int64.to_int (String.get_int64_le raw (i * 8))) in
  let flags_raw = Buffer.contents r.flags in
  let hits = Array.init n (fun i -> flags_raw.[i] = '\001') in
  { level; addresses; hits }

type node = { cache : Cache.t; rec_ : recorder }

type t = {
  levels : (level * node) list;  (** innermost first; non-empty *)
  prefetcher : Prefetch.t;
  pf_addrs : Buffer.t;
}

let create ?l2 ?l3 ?(l1_prefetcher = Prefetch.No_prefetch) ~l1 () =
  if l3 <> None && l2 = None then
    invalid_arg "Hierarchy.create: cannot have an L3 without an L2";
  let mk lvl cfg = (lvl, { cache = Cache.create cfg; rec_ = recorder () }) in
  let levels =
    mk L1 l1
    :: List.filter_map
         (fun x -> x)
         [ Option.map (mk L2) l2; Option.map (mk L3) l3 ]
  in
  { levels; prefetcher = Prefetch.create l1_prefetcher; pf_addrs = Buffer.create 512 }

let access t addr =
  match t.levels with
  | [] -> assert false
  | ((_, l1_node) :: deeper) ->
    let pf =
      Prefetch.on_access t.prefetcher ~addr
        ~block_bytes:(Cache.get_config l1_node.cache).Cache.block_bytes
    in
    let l1_hit = Cache.access l1_node.cache addr in
    record l1_node.rec_ addr l1_hit;
    let rec go levels =
      match levels with
      | [] -> ()
      | (_lvl, node) :: rest ->
        let hit = Cache.access node.cache addr in
        record node.rec_ addr hit;
        if not hit then go rest
    in
    if not l1_hit then go deeper;
    (* L1 prefetches are generated from the demand stream and fill L1 only. *)
    List.iter
      (fun pf_addr ->
        Buffer.add_int64_le t.pf_addrs (Int64.of_int pf_addr);
        Cache.insert l1_node.cache pf_addr)
      pf;
    l1_hit

let run t trace = Array.iter (fun addr -> ignore (access t addr)) trace

let level_traces t =
  List.map (fun (lvl, node) -> recorded_trace node.rec_ lvl) t.levels

let prefetched_addresses t =
  let raw = Buffer.contents t.pf_addrs in
  let n = String.length raw / 8 in
  Array.init n (fun i -> Int64.to_int (String.get_int64_le raw (i * 8)))

let stats t = List.map (fun (lvl, node) -> (lvl, Cache.stats node.cache)) t.levels

let reset t =
  List.iter
    (fun (_, node) ->
      Cache.reset node.cache;
      Buffer.clear node.rec_.addrs;
      Buffer.clear node.rec_.flags)
    t.levels;
  Prefetch.reset t.prefetcher;
  Buffer.clear t.pf_addrs
