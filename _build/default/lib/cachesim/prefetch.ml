type kind =
  | No_prefetch
  | Next_line
  | Stride of { degree : int; table_size : int }

type stride_entry = { mutable last_block : int; mutable stride : int; mutable confidence : int }

type state =
  | S_none
  | S_next
  | S_stride of { degree : int; table : stride_entry array }

type t = { k : kind; state : state; mutable issued : int }

let create k =
  let state =
    match k with
    | No_prefetch -> S_none
    | Next_line -> S_next
    | Stride { degree; table_size } ->
      if degree <= 0 || table_size <= 0 then invalid_arg "Prefetch.create: bad stride params";
      S_stride
        { degree;
          table = Array.init table_size (fun _ -> { last_block = -1; stride = 0; confidence = 0 }) }
  in
  { k; state; issued = 0 }

let kind t = t.k

(* The trace has no PCs, so the stride table is keyed by the 4KiB region the
   access falls in — a region-local stride detector, as in spatial-pattern
   prefetchers. *)
let region_key addr table_len = (addr lsr 12) mod table_len

let on_access t ~addr ~block_bytes =
  let block = addr / block_bytes in
  let result =
    match t.state with
    | S_none -> []
    | S_next -> [ (block + 1) * block_bytes ]
    | S_stride { degree; table } ->
      let e = table.(region_key addr (Array.length table)) in
      let out =
        if e.last_block < 0 then []
        else begin
          let s = block - e.last_block in
          if s <> 0 && s = e.stride then begin
            e.confidence <- min 3 (e.confidence + 1);
            if e.confidence >= 2 then
              List.init degree (fun i -> (block + (s * (i + 1))) * block_bytes)
            else []
          end
          else begin
            e.stride <- s;
            e.confidence <- 0;
            []
          end
        end
      in
      e.last_block <- block;
      out
  in
  t.issued <- t.issued + List.length result;
  result

let issued t = t.issued

let reset t =
  t.issued <- 0;
  match t.state with
  | S_none | S_next -> ()
  | S_stride { table; _ } ->
    Array.iter
      (fun e ->
        e.last_block <- -1;
        e.stride <- 0;
        e.confidence <- 0)
      table
