lib/cachesim/inclusion.mli: Cache
