lib/cachesim/inclusion.ml: Array Cache
