lib/cachesim/prefetch.mli:
