lib/cachesim/trace_io.mli:
