lib/cachesim/multicachesim.ml: Array
