lib/cachesim/trace_io.ml: Array Bytes Fun Int64 List Printf String
