lib/cachesim/prefetch.ml: Array List
