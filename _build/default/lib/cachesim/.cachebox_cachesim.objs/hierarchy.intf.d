lib/cachesim/hierarchy.mli: Cache Prefetch
