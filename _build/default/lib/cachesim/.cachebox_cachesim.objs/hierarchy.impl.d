lib/cachesim/hierarchy.ml: Array Buffer Cache Int64 List Option Prefetch String
