lib/cachesim/multicachesim.mli:
