lib/cachesim/victim.ml: Array Cache
