lib/cachesim/victim.mli: Cache
