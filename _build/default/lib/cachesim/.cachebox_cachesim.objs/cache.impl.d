lib/cachesim/cache.ml: Array Printf Prng
