lib/cachesim/cache.mli:
