lib/tensor/prng.mli:
