lib/tensor/blas.ml: Array Bigarray Tensor
