lib/tensor/blas.ml: Array Bigarray Dpool Tensor
