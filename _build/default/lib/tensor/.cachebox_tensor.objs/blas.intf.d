lib/tensor/blas.mli: Tensor
