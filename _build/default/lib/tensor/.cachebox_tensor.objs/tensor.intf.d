lib/tensor/tensor.mli: Bigarray Format Prng
