lib/tensor/dpool.ml: Array Condition Domain Fun Mutex Printexc String Sys
