lib/tensor/dpool.ml: Array Domain List Option
