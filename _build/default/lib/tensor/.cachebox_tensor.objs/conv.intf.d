lib/tensor/conv.mli: Tensor
