lib/tensor/tensor.ml: Array Bigarray Float Format List Prng
