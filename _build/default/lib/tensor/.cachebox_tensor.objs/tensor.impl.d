lib/tensor/tensor.ml: Array Bigarray Dpool Float Format List Prng
