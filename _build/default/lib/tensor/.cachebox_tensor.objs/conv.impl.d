lib/tensor/conv.ml: Bigarray Blas Dpool Tensor
