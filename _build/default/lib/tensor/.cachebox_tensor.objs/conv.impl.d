lib/tensor/conv.ml: Bigarray Blas Tensor
