lib/tensor/dpool.mli:
