(** Minimal multicore helper (OCaml 5 domains).

    Used for sample-parallel CB-GAN inference (the paper's RQ5 batching):
    on a multi-core host, batch elements are scored on separate domains; on
    a single-core host everything degrades gracefully to the serial path. *)

val recommended : unit -> int
(** Domains worth spawning on this machine (at least 1). *)

val parallel_map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map_array f a] applies [f] to every element, splitting the
    work across up to [domains] (default {!recommended}) domains. Order is
    preserved. [f] must not rely on shared mutable state: each domain
    executes a disjoint slice. Falls back to plain [Array.map] when one
    domain suffices or the array is small. *)
