(** Dense linear algebra kernels over 2-D {!Tensor.t} values.

    These are the hot loops of the neural-network stack: everything
    convolutional is lowered onto {!gemm} through im2col (see {!Conv}). *)

val gemm :
  ?trans_a:bool ->
  ?trans_b:bool ->
  alpha:float ->
  a:Tensor.t ->
  b:Tensor.t ->
  beta:float ->
  Tensor.t ->
  unit
(** [gemm ~alpha ~a ~b ~beta c] computes [c <- alpha * op(a) * op(b) + beta * c]
    where [op] optionally transposes. All of [a], [b], [c] are 2-D; inner
    dimensions must agree. *)

val matmul : Tensor.t -> Tensor.t -> Tensor.t
(** [matmul a b] allocates [a * b] for 2-D [a], [b]. *)

val transpose : Tensor.t -> Tensor.t
(** Fresh transposed copy of a 2-D tensor. *)

val gemv : a:Tensor.t -> x:Tensor.t -> Tensor.t
(** [gemv ~a ~x] is the matrix-vector product for 2-D [a] and 1-D [x]. *)
