let recommended () = max 1 (Domain.recommended_domain_count ())

let parallel_map_array ?domains f a =
  let n = Array.length a in
  let workers = min (Option.value domains ~default:(recommended ())) n in
  if workers <= 1 || n < 2 then Array.map f a
  else begin
    let results = Array.make n None in
    (* Contiguous slices, one per domain. *)
    let slice w =
      let lo = w * n / workers and hi = ((w + 1) * n / workers) - 1 in
      (lo, hi)
    in
    let run_slice w =
      let lo, hi = slice w in
      for i = lo to hi do
        results.(i) <- Some (f a.(i))
      done
    in
    let handles =
      List.init (workers - 1) (fun w -> Domain.spawn (fun () -> run_slice (w + 1)))
    in
    run_slice 0;
    List.iter Domain.join handles;
    Array.map (function Some v -> v | None -> assert false) results
  end
