let check_2d name t =
  if Array.length (Tensor.shape t) <> 2 then invalid_arg (name ^ ": expected 2-D tensor")

let transpose t =
  check_2d "Blas.transpose" t;
  let m = Tensor.dim t 0 and n = Tensor.dim t 1 in
  let r = Tensor.create [| n; m |] in
  let td = t.Tensor.data and rd = r.Tensor.data in
  for i = 0 to m - 1 do
    let row = i * n in
    for j = 0 to n - 1 do
      Bigarray.Array1.unsafe_set rd ((j * m) + i) (Bigarray.Array1.unsafe_get td (row + j))
    done
  done;
  r

(* Minimum multiply-add count before a kernel is worth fanning out over the
   domain pool; below it the dispatch overhead dominates. Thresholding never
   affects results: the parallel slices compute bit-identical values. *)
let par_flops = 16_384

(* Core kernel over rows [row_lo .. row_hi] (inclusive) of the output:
   c[i,:] += alpha * a[i,:] * b, with an i-k-j loop order so the inner loop
   streams contiguously over b and c. Two rows of A per pass halve the
   traffic on B. Row slices handed to the pool are aligned to even row pairs
   so the pairing — and with it the exact float behaviour — matches the
   serial pass over [0 .. m-1]. *)
let gemm_rows ~alpha ~ad ~bd ~cd ~k ~n ~row_lo ~row_hi =
  let i = ref row_lo in
  while !i <= row_hi do
    let two_rows = !i + 1 <= row_hi in
    let a_row0 = !i * k and a_row1 = (!i + 1) * k in
    let c_row0 = !i * n and c_row1 = (!i + 1) * n in
    for p = 0 to k - 1 do
      let a0 = alpha *. Bigarray.Array1.unsafe_get ad (a_row0 + p) in
      let a1 =
        if two_rows then alpha *. Bigarray.Array1.unsafe_get ad (a_row1 + p) else 0.0
      in
      if a0 <> 0.0 || a1 <> 0.0 then begin
        let b_row = p * n in
        if two_rows then
          for j = 0 to n - 1 do
            let bv = Bigarray.Array1.unsafe_get bd (b_row + j) in
            Bigarray.Array1.unsafe_set cd (c_row0 + j)
              (Bigarray.Array1.unsafe_get cd (c_row0 + j) +. (a0 *. bv));
            Bigarray.Array1.unsafe_set cd (c_row1 + j)
              (Bigarray.Array1.unsafe_get cd (c_row1 + j) +. (a1 *. bv))
          done
        else
          for j = 0 to n - 1 do
            Bigarray.Array1.unsafe_set cd (c_row0 + j)
              (Bigarray.Array1.unsafe_get cd (c_row0 + j)
              +. (a0 *. Bigarray.Array1.unsafe_get bd (b_row + j)))
          done
      end
    done;
    i := !i + if two_rows then 2 else 1
  done

let gemm_nn ~alpha ~a ~b ~c ~m ~k ~n =
  let ad = a.Tensor.data and bd = b.Tensor.data and cd = c.Tensor.data in
  if m * n * k < par_flops then gemm_rows ~alpha ~ad ~bd ~cd ~k ~n ~row_lo:0 ~row_hi:(m - 1)
  else begin
    (* Slice ownership in units of row pairs keeps the two-row blocking of
       the serial pass intact, so results are bit-identical for any lane
       count. Each lane writes only its own rows of c. *)
    let npairs = (m + 1) / 2 in
    Dpool.parallel_for npairs (fun plo phi ->
        gemm_rows ~alpha ~ad ~bd ~cd ~k ~n ~row_lo:(2 * plo)
          ~row_hi:(min (m - 1) ((2 * phi) + 1)))
  end

let gemm ?(trans_a = false) ?(trans_b = false) ~alpha ~a ~b ~beta c =
  check_2d "Blas.gemm a" a;
  check_2d "Blas.gemm b" b;
  check_2d "Blas.gemm c" c;
  let a = if trans_a then transpose a else a in
  let b = if trans_b then transpose b else b in
  let m = Tensor.dim a 0 and k = Tensor.dim a 1 in
  let k2 = Tensor.dim b 0 and n = Tensor.dim b 1 in
  if k <> k2 then invalid_arg "Blas.gemm: inner dimension mismatch";
  if Tensor.dim c 0 <> m || Tensor.dim c 1 <> n then
    invalid_arg "Blas.gemm: output dimension mismatch";
  if beta = 0.0 then Tensor.fill c 0.0 else if beta <> 1.0 then Tensor.scale_ c beta;
  gemm_nn ~alpha ~a ~b ~c ~m ~k ~n

let matmul a b =
  let m = Tensor.dim a 0 and n = Tensor.dim b 1 in
  let c = Tensor.zeros [| m; n |] in
  gemm ~alpha:1.0 ~a ~b ~beta:0.0 c;
  c

let gemv ~a ~x =
  check_2d "Blas.gemv" a;
  if Array.length (Tensor.shape x) <> 1 then invalid_arg "Blas.gemv: x must be 1-D";
  let m = Tensor.dim a 0 and n = Tensor.dim a 1 in
  if Tensor.dim x 0 <> n then invalid_arg "Blas.gemv: dimension mismatch";
  let r = Tensor.zeros [| m |] in
  let ad = a.Tensor.data and xd = x.Tensor.data and rd = r.Tensor.data in
  let rows row_lo row_hi =
    for i = row_lo to row_hi do
      let row = i * n in
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc := !acc +. (Bigarray.Array1.unsafe_get ad (row + j) *. Bigarray.Array1.unsafe_get xd j)
      done;
      Bigarray.Array1.unsafe_set rd i !acc
    done
  in
  (* Each row's dot product is self-contained, so row slices are bit-identical
     to the serial loop. *)
  if m * n < par_flops then rows 0 (m - 1) else Dpool.parallel_for m rows;
  r
