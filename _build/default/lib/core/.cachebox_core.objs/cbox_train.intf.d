lib/core/cbox_train.mli: Cbgan Cbox_dataset Heatmap
