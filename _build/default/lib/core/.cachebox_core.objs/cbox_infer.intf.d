lib/core/cbox_infer.mli: Cache Cbgan Cbox_dataset Heatmap Hierarchy Tensor
