lib/core/cbgan.ml: Array Cache Checkpoint Layers List Option Param Printf Prng Tensor Value
