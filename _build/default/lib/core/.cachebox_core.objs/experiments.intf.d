lib/core/experiments.mli: Cache Cbgan Heatmap Hierarchy Metrics Workload
