lib/core/cbgan.mli: Cache Param Prng Tensor Value
