lib/core/cbox_train.ml: Cbgan Cbox_dataset Float List Optimizer Printf Prng Tensor Value
