lib/core/cbox_train.ml: Cbgan Cbox_dataset Dpool Float List Optimizer Printf Prng Tensor Value
