lib/core/cbox_dataset.mli: Cache Heatmap Hierarchy Prefetch Prng Tensor Workload
