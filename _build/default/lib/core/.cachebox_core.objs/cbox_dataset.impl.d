lib/core/cbox_dataset.ml: Array Cache Float Heatmap Hierarchy List Prefetch Prng Tensor Workload
