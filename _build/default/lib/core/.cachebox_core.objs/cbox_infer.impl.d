lib/core/cbox_infer.ml: Array Cache Cbgan Cbox_dataset Dpool Float Heatmap Hierarchy List Metrics Prng Tensor Value Workload
