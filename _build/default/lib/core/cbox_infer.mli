(** CB-GAN inference: synthetic miss heatmaps and predicted hit rates
    (paper §3.2.4, §4.4).

    Inference is batched: a benchmark's access heatmaps are grouped into
    batches of a configurable size and pushed through the generator in eval
    mode (no dropout; batch statistics, as pix2pix does). Larger batches
    amortise per-call overheads — the mechanism behind RQ5. *)

type prediction = {
  benchmark : string;
  cache : Cache.config;
  level : Hierarchy.level;
  true_hit_rate : float;
  predicted_hit_rate : float;
  synthetic : Tensor.t list;  (** denormalised synthetic miss heatmaps *)
}

val synthesize :
  Cbgan.t ->
  Heatmap.spec ->
  ?batch_size:int ->
  ?domains:int ->
  cache:Cache.config ->
  Tensor.t list ->
  Tensor.t list
(** Raw pipeline: access heatmaps in, denormalised synthetic miss heatmaps
    out (order preserved). Default batch size 8. When [domains] (default
    {!Dpool.recommended}) exceeds 1, batches are scored on separate domains
    — sample results are independent because inference batch-norm uses
    running statistics, so the parallel and serial paths agree exactly. *)

val predict :
  Cbgan.t -> Heatmap.spec -> ?batch_size:int -> Cbox_dataset.benchmark_data -> prediction
(** Full per-benchmark prediction, including the de-overlapped hit-rate
    computation against the real access heatmaps. *)

val predict_all :
  Cbgan.t ->
  Heatmap.spec ->
  ?batch_size:int ->
  Cbox_dataset.benchmark_data list ->
  prediction list

val abs_pct_diff : prediction -> float
(** |true - predicted| hit rate, in percentage points. *)
