type options = {
  epochs : int;
  batch_size : int;
  lr : float;
  beta1 : float;
  lambda_l1 : float;
  seed : int;
  domains : int option;
}

let default_options ?(epochs = 2) ?(batch_size = 4) ?(lambda_l1 = 150.0) ?domains () =
  { epochs; batch_size; lr = 2e-4; beta1 = 0.5; lambda_l1; seed = 1234; domains }

type epoch_stats = {
  epoch : int;
  g_adv : float;
  g_l1 : float;
  d_loss : float;
  batches : int;
}

let chunks size xs =
  let rec go acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
      if count = size then go (List.rev current :: acc) [ x ] 1 rest
      else go acc (x :: current) (count + 1) rest
  in
  go [] [] 0 xs

let batch_tensors spec model (samples : Cbox_dataset.sample list) =
  let access = Cbox_dataset.batch_images spec (List.map (fun (s : Cbox_dataset.sample) -> s.access) samples) in
  let target = Cbox_dataset.batch_images spec (List.map (fun (s : Cbox_dataset.sample) -> s.target) samples) in
  let cp =
    if (Cbgan.model_config model).Cbgan.use_cache_params then
      Some (Cbgan.cache_params_tensor (List.map (fun (s : Cbox_dataset.sample) -> s.cache) samples))
    else None
  in
  (access, target, cp)

let scalar v = Tensor.get (Value.value v) 0

let train_loop ~log model spec options samples =
  let rng = Prng.create options.seed in
  let g_opt = Optimizer.adam ~lr:options.lr ~beta1:options.beta1 (Cbgan.generator_params model) in
  let d_opt = Optimizer.adam ~lr:options.lr ~beta1:options.beta1 (Cbgan.discriminator_params model) in
  let history = ref [] in
  for epoch = 1 to options.epochs do
    let shuffled = Cbox_dataset.shuffle rng samples in
    let batches = chunks options.batch_size shuffled in
    let sum_g_adv = ref 0.0 and sum_g_l1 = ref 0.0 and sum_d = ref 0.0 in
    let n_batches = ref 0 in
    List.iter
      (fun batch ->
        let access, target, cp = batch_tensors spec model batch in
        let shape = Tensor.shape target in
        (* One generator forward serves both phases: the discriminator step
           sees a detached copy, the generator step reuses the live graph. *)
        let fake = Cbgan.generator_forward model ~rng ~training:true ?cache_params:cp access in
        let fake_detached = Tensor.copy (Value.value fake) in
        (* --- Discriminator step --- *)
        Optimizer.zero_grad d_opt;
        let d_real = Cbgan.discriminator_forward model ~training:true ~access ~miss:(Value.const target) in
        let d_fake = Cbgan.discriminator_forward model ~training:true ~access ~miss:(Value.const fake_detached) in
        let ones = Tensor.ones (Tensor.shape (Value.value d_real)) in
        let zeros = Tensor.zeros (Tensor.shape (Value.value d_fake)) in
        let loss_d =
          Value.scale
            (Value.add (Value.bce_with_logits d_real ones) (Value.bce_with_logits d_fake zeros))
            0.5
        in
        Value.backward loss_d;
        Optimizer.step d_opt;
        (* --- Generator step --- *)
        Optimizer.zero_grad g_opt;
        Optimizer.zero_grad d_opt;
        let d_on_fake = Cbgan.discriminator_forward model ~training:true ~access ~miss:fake in
        let adv_target = Tensor.ones (Tensor.shape (Value.value d_on_fake)) in
        let adv = Value.bce_with_logits d_on_fake adv_target in
        let l1 = Value.l1_loss fake (Tensor.view target shape) in
        (* Miss heatmaps can be very sparse (a few hundred non-empty pixels
           in a 64x64 image); a plain mean L1 is then dominated by the empty
           background and the generator collapses to "no misses". Class-
           balance by adding an L1 term restricted to the non-empty target
           pixels, weighted by half the background/foreground pixel ratio —
           the weight vanishes on dense targets and grows with sparsity. *)
        let fg_mask = Tensor.map (fun v -> if v > -0.999 then 1.0 else 0.0) target in
        let fg_count = Tensor.sum fg_mask in
        let bg_count = float_of_int (Tensor.numel target) -. fg_count in
        let fg_weight =
          Float.min 8.0 (0.5 *. (bg_count /. Float.max 1.0 fg_count)) in
        let recon =
          if fg_weight < 0.05 then l1
          else begin
            let fg_target = Tensor.mul target fg_mask in
            let l1_fg = Value.l1_loss (Value.mul fake (Value.const fg_mask)) fg_target in
            Value.add l1 (Value.scale l1_fg fg_weight)
          end
        in
        let loss_g = Value.add adv (Value.scale recon options.lambda_l1) in
        Value.backward loss_g;
        Optimizer.step g_opt;
        (* The generator step leaked gradients into the discriminator's
           parameters; clear them so the next D step starts clean. *)
        Optimizer.zero_grad d_opt;
        sum_g_adv := !sum_g_adv +. scalar adv;
        sum_g_l1 := !sum_g_l1 +. scalar l1;
        sum_d := !sum_d +. scalar loss_d;
        incr n_batches)
      batches;
    let n = float_of_int (max 1 !n_batches) in
    let stats =
      {
        epoch;
        g_adv = !sum_g_adv /. n;
        g_l1 = !sum_g_l1 /. n;
        d_loss = !sum_d /. n;
        batches = !n_batches;
      }
    in
    log
      (Printf.sprintf "epoch %d/%d: G_adv %.4f G_L1 %.4f D %.4f (%d batches)" epoch
         options.epochs stats.g_adv stats.g_l1 stats.d_loss stats.batches);
    history := stats :: !history
  done;
  List.rev !history

let train ?(log = fun _ -> ()) model spec options samples =
  if samples = [] then invalid_arg "Cbox_train.train: empty dataset";
  (* [domains] pins the Dpool lane count for the whole run, so every kernel
     under the step (gemm, conv, elementwise) runs data-parallel; [None]
     keeps the ambient CACHEBOX_DOMAINS / machine default. *)
  match options.domains with
  | Some d -> Dpool.with_domains d (fun () -> train_loop ~log model spec options samples)
  | None -> train_loop ~log model spec options samples
