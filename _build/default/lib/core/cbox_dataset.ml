type sample = {
  benchmark : string;
  cache : Cache.config;
  level : Hierarchy.level;
  access : Tensor.t;
  target : Tensor.t;
}

type benchmark_data = {
  workload : Workload.t;
  cache : Cache.config;
  level : Hierarchy.level;
  pairs : (Tensor.t * Tensor.t) list;
  true_hit_rate : float;
}

(* Pixel counts are mapped log-scale into [-1, 1]: count 0 sits at -1 and a
   single access already lands at ~-0.65, so the generator's tanh does not
   have to saturate to render empty background. Denormalisation inverts the
   log map and rounds, since true heatmap pixels are integral counts — this
   keeps the hit-rate sums (paper §4.4) from being polluted by a slightly
   non-zero background level. *)
let normalize (spec : Heatmap.spec) img =
  let scale = log (1.0 +. float_of_int spec.window) in
  Tensor.map
    (fun v -> Float.max (-1.0) (Float.min 1.0 ((2.0 *. log (1.0 +. v) /. scale) -. 1.0)))
    img

let denormalize (spec : Heatmap.spec) img =
  let scale = log (1.0 +. float_of_int spec.window) in
  Tensor.map
    (fun v -> Float.max 0.0 (Float.round (exp ((v +. 1.0) /. 2.0 *. scale) -. 1.0)))
    img

let batch_images spec imgs =
  match imgs with
  | [] -> invalid_arg "Cbox_dataset.batch_images: empty batch"
  | first :: _ ->
    let h = Tensor.dim first 0 and w = Tensor.dim first 1 in
    let normalized =
      List.map (fun img -> Tensor.view (normalize spec img) [| 1; 1; h; w |]) imgs
    in
    Tensor.stack_batch normalized

let hit_flags_for_config cfg trace =
  let cache = Cache.create cfg in
  Array.map (fun addr -> Cache.access cache addr) trace

let data_for ~workload ~cache ~level spec ~addresses ~hits =
  let pairs = Heatmap.pair_of_trace spec ~addresses ~hits in
  let access = List.map fst pairs and miss = List.map snd pairs in
  {
    workload;
    cache;
    level;
    pairs;
    true_hit_rate = Heatmap.hit_rate spec ~access ~miss;
  }

let build_l1 spec ~configs ~trace_len workloads =
  List.concat_map
    (fun w ->
      let trace = w.Workload.generate trace_len in
      List.map
        (fun cfg ->
          let hits = hit_flags_for_config cfg trace in
          data_for ~workload:w ~cache:cfg ~level:Hierarchy.L1 spec ~addresses:trace
            ~hits)
        configs)
    workloads

let build_hierarchy spec ~l1 ~l2 ~l3 ~trace_len workloads =
  let config_of_level = function
    | Hierarchy.L1 -> l1
    | Hierarchy.L2 -> l2
    | Hierarchy.L3 -> l3
  in
  List.concat_map
    (fun w ->
      let trace = w.Workload.generate trace_len in
      let h = Hierarchy.create ~l2 ~l3 ~l1 () in
      Hierarchy.run h trace;
      Hierarchy.level_traces h
      |> List.filter_map (fun (lt : Hierarchy.level_trace) ->
             if Array.length lt.addresses < Heatmap.accesses_per_image spec then None
             else
               Some
                 (data_for ~workload:w ~cache:(config_of_level lt.level)
                    ~level:lt.level spec ~addresses:lt.addresses ~hits:lt.hits)))
    workloads

let build_prefetch spec ~config ~kind ~trace_len workloads =
  List.map
    (fun w ->
      let trace = w.Workload.generate trace_len in
      let cache = Cache.create config in
      let pf = Prefetch.create kind in
      let n = Array.length trace in
      (* Align prefetches with the demand access that triggered them: one
         slot per access, holding the first prefetched address (next-line
         issues at most one). *)
      let pf_addr = Array.make n 0 in
      let pf_keep = Array.make n false in
      let hits = Array.make n false in
      for i = 0 to n - 1 do
        let proposals =
          Prefetch.on_access pf ~addr:trace.(i) ~block_bytes:config.Cache.block_bytes
        in
        hits.(i) <- Cache.access cache trace.(i);
        match proposals with
        | [] -> ()
        | addr :: _ ->
          pf_addr.(i) <- addr;
          pf_keep.(i) <- true;
          List.iter (Cache.insert cache) proposals
      done;
      let access = Heatmap.of_trace spec trace in
      let prefetch = Heatmap.of_trace_filtered spec ~addresses:pf_addr ~keep:pf_keep in
      let miss = Heatmap.of_trace_filtered spec ~addresses:trace
          ~keep:(Array.map not hits)
      in
      {
        workload = w;
        cache = config;
        level = Hierarchy.L1;
        pairs = List.combine access prefetch;
        true_hit_rate = Heatmap.hit_rate spec ~access ~miss;
      })
    workloads

let to_samples data =
  List.concat_map
    (fun d ->
      List.map
        (fun (access, target) ->
          {
            benchmark = d.workload.Workload.name;
            cache = d.cache;
            level = d.level;
            access;
            target;
          })
        d.pairs)
    data

let shuffle rng samples =
  let a = Array.of_list samples in
  Prng.shuffle rng a;
  Array.to_list a
