type prediction = {
  benchmark : string;
  cache : Cache.config;
  level : Hierarchy.level;
  true_hit_rate : float;
  predicted_hit_rate : float;
  synthetic : Tensor.t list;
}

let synthesize model spec ?(batch_size = 8) ?domains ~cache access_heatmaps =
  if batch_size <= 0 then invalid_arg "Cbox_infer.synthesize: batch_size must be positive";
  let h = (Cbgan.model_config model).Cbgan.image_size in
  let run_batch batch =
    (* Inference needs no dropout randomness; the rng is unused but required
       by the forward signature. *)
    let rng = Prng.create 0 in
    let x = Cbox_dataset.batch_images spec batch in
    let n = List.length batch in
    let cp =
      if (Cbgan.model_config model).Cbgan.use_cache_params then
        Some (Cbgan.cache_params_tensor (List.init n (fun _ -> cache)))
      else None
    in
    let out = Value.value (Cbgan.generator_forward model ~rng ~training:false ?cache_params:cp x) in
    List.init n (fun i ->
        let img = Tensor.slice_batch out i 1 in
        Cbox_dataset.denormalize spec (Tensor.view img [| h; h |]))
  in
  let rec batches acc = function
    | [] -> List.rev acc
    | imgs ->
      let batch = List.filteri (fun i _ -> i < batch_size) imgs in
      let rest = List.filteri (fun i _ -> i >= batch_size) imgs in
      batches (batch :: acc) rest
  in
  let batch_list = Array.of_list (batches [] access_heatmaps) in
  (* Sample results are independent at inference (running-stats batch norm),
     so batches may be scored on separate domains when the host has spare
     cores. *)
  Dpool.parallel_map_array ?domains run_batch batch_list
  |> Array.to_list |> List.concat

let predict model spec ?batch_size (data : Cbox_dataset.benchmark_data) =
  let access = List.map fst data.pairs in
  let synthetic = synthesize model spec ?batch_size ~cache:data.cache access in
  let predicted = Heatmap.hit_rate spec ~access ~miss:synthetic in
  {
    benchmark = data.workload.Workload.name;
    cache = data.cache;
    level = data.level;
    true_hit_rate = data.true_hit_rate;
    predicted_hit_rate = Float.max 0.0 (Float.min 1.0 predicted);
    synthetic;
  }

let predict_all model spec ?batch_size data = List.map (predict model spec ?batch_size) data

let abs_pct_diff p =
  Metrics.abs_pct_diff ~truth:p.true_hit_rate ~predicted:p.predicted_hit_rate
