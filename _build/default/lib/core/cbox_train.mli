(** CB-GAN training loop (paper §3.2.2, Fig 6).

    Standard pix2pix alternation per batch: one discriminator step on a
    (real, fake) pair with the fake detached, then one generator step
    minimising the adversarial loss plus [lambda_l1] times the L1
    reconstruction loss (Equation 1; the paper uses lambda = 150). Both
    optimizers are Adam with beta1 = 0.5. *)

type options = {
  epochs : int;
  batch_size : int;
  lr : float;
  beta1 : float;
  lambda_l1 : float;
  seed : int;
  domains : int option;
      (** Dpool lane count used for the whole run ([None] = ambient
          [CACHEBOX_DOMAINS] / machine default). Results are bit-identical
          for every setting. *)
}

val default_options :
  ?epochs:int -> ?batch_size:int -> ?lambda_l1:float -> ?domains:int -> unit -> options
(** Defaults: 2 epochs, batch 4, lr 2e-4, beta1 0.5, lambda 150, seed 1234,
    ambient domain count. *)

type epoch_stats = {
  epoch : int;
  g_adv : float;  (** mean generator adversarial loss *)
  g_l1 : float;  (** mean (unweighted) L1 reconstruction loss *)
  d_loss : float;  (** mean discriminator loss *)
  batches : int;
}

val train :
  ?log:(string -> unit) ->
  Cbgan.t ->
  Heatmap.spec ->
  options ->
  Cbox_dataset.sample list ->
  epoch_stats list
(** Trains in place (random batching each epoch, as the paper notes) and
    returns per-epoch loss statistics. *)
