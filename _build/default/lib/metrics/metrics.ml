let abs_pct_diff ~truth ~predicted = Float.abs (truth -. predicted) *. 100.0

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

let mse a b =
  if Tensor.numel a <> Tensor.numel b then invalid_arg "Metrics.mse: size mismatch";
  let acc = ref 0.0 in
  for i = 0 to Tensor.numel a - 1 do
    let d = Tensor.get a i -. Tensor.get b i in
    acc := !acc +. (d *. d)
  done;
  !acc /. float_of_int (Tensor.numel a)

let ssim ?(window = 8) a b =
  let ha = Tensor.dim a 0 and wa = Tensor.dim a 1 in
  if Tensor.shape a <> Tensor.shape b then invalid_arg "Metrics.ssim: shape mismatch";
  if window <= 0 || window > ha || window > wa then invalid_arg "Metrics.ssim: bad window";
  let range =
    let hi = Float.max (Tensor.max_value a) (Tensor.max_value b) in
    let lo = Float.min (Tensor.min_value a) (Tensor.min_value b) in
    Float.max 1e-6 (hi -. lo)
  in
  let c1 = (0.01 *. range) ** 2.0 and c2 = (0.03 *. range) ** 2.0 in
  let stats img r0 c0 =
    let n = float_of_int (window * window) in
    let s = ref 0.0 and s2 = ref 0.0 in
    for r = r0 to r0 + window - 1 do
      for c = c0 to c0 + window - 1 do
        let v = Tensor.get2 img r c in
        s := !s +. v;
        s2 := !s2 +. (v *. v)
      done
    done;
    let mu = !s /. n in
    (mu, Float.max 0.0 ((!s2 /. n) -. (mu *. mu)))
  in
  let covar r0 c0 mu_a mu_b =
    let n = float_of_int (window * window) in
    let s = ref 0.0 in
    for r = r0 to r0 + window - 1 do
      for c = c0 to c0 + window - 1 do
        s := !s +. ((Tensor.get2 a r c -. mu_a) *. (Tensor.get2 b r c -. mu_b))
      done
    done;
    !s /. n
  in
  let total = ref 0.0 and count = ref 0 in
  let step = window in
  let r0 = ref 0 in
  while !r0 + window <= ha do
    let c0 = ref 0 in
    while !c0 + window <= wa do
      let mu_a, var_a = stats a !r0 !c0 in
      let mu_b, var_b = stats b !r0 !c0 in
      let cov = covar !r0 !c0 mu_a mu_b in
      let s =
        ((2.0 *. mu_a *. mu_b) +. c1)
        *. ((2.0 *. cov) +. c2)
        /. (((mu_a *. mu_a) +. (mu_b *. mu_b) +. c1) *. (var_a +. var_b +. c2))
      in
      total := !total +. s;
      incr count;
      c0 := !c0 + step
    done;
    r0 := !r0 + step
  done;
  if !count = 0 then 0.0 else !total /. float_of_int !count

type histogram = { lo : float; hi : float; counts : int array }

let histogram ~bins ~lo ~hi values =
  if bins <= 0 then invalid_arg "Metrics.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Metrics.histogram: hi must exceed lo";
  let counts = Array.make bins 0 in
  List.iter
    (fun v ->
      let idx =
        int_of_float (float_of_int bins *. (v -. lo) /. (hi -. lo))
        |> max 0
        |> min (bins - 1)
      in
      counts.(idx) <- counts.(idx) + 1)
    values;
  { lo; hi; counts }

let render_histogram { lo; hi; counts } =
  let bins = Array.length counts in
  let peak = Array.fold_left max 1 counts in
  let buf = Buffer.create 512 in
  Array.iteri
    (fun i c ->
      let b_lo = lo +. (float_of_int i *. (hi -. lo) /. float_of_int bins) in
      let b_hi = lo +. (float_of_int (i + 1) *. (hi -. lo) /. float_of_int bins) in
      let bar = String.make (c * 50 / peak) '#' in
      Buffer.add_string buf (Printf.sprintf "[%6.2f, %6.2f) %4d %s\n" b_lo b_hi c bar))
    counts;
  Buffer.contents buf
