(** Evaluation metrics used throughout the paper's figures and tables. *)

val abs_pct_diff : truth:float -> predicted:float -> float
(** Absolute percentage-point difference between two rates expressed in
    [\[0, 1\]], reported on a 0-100 scale — the paper's headline metric
    ("average absolute percentage difference in hit rates"). *)

val mean : float list -> float
val stddev : float list -> float

val mse : Tensor.t -> Tensor.t -> float
(** Mean squared per-pixel error (RQ7). *)

val ssim : ?window:int -> Tensor.t -> Tensor.t -> float
(** Structural similarity index over sliding windows (default 8x8) with the
    standard constants (k1 = 0.01, k2 = 0.03) and a dynamic range taken from
    the pair's joint value range. Result lies in [\[-1, 1\]] (RQ7). *)

type histogram = { lo : float; hi : float; counts : int array }

val histogram : bins:int -> lo:float -> hi:float -> float list -> histogram
(** Values outside [\[lo, hi\]] are clamped into the boundary bins. *)

val render_histogram : histogram -> string
(** Simple textual bar rendering (Fig 14). *)
