module B = Workload.Builder

(* Every kernel lays its arrays out with a bump allocator starting at a fixed
   virtual base, so traces are deterministic and arrays land in distinct
   regions as they would in a real address space. Elements are 8-byte
   doubles. *)

let elem = 8

type arena = { mutable cursor : int }

let arena () = { cursor = 0x1000_0000 }

let alloc a count =
  let base = a.cursor in
  (* Round regions up to 4 KiB pages, as malloc'd arrays effectively are. *)
  let bytes = count * elem in
  a.cursor <- a.cursor + ((bytes + 4095) / 4096 * 4096) + 4096;
  base

(* Access helpers: [ld] models a load of element [i] of a 1-D array, [ld2] of
   a row-major 2-D array. Stores touch the same addresses, so they reuse
   [ld]; a read-modify-write emits the address twice. *)
let ld b base i = B.emit b (base + (i * elem))
let ld2 b base n i j = B.emit b (base + (((i * n) + j) * elem))

let gemm b n =
  let a = arena () in
  let pa = alloc a (n * n) and pb = alloc a (n * n) and pc = alloc a (n * n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      ld2 b pc n i j;
      for k = 0 to n - 1 do
        ld2 b pa n i k;
        ld2 b pb n k j;
        ld2 b pc n i j
      done
    done
  done

let two_mm b n =
  let a = arena () in
  let pa = alloc a (n * n) and pb = alloc a (n * n) in
  let ptmp = alloc a (n * n) and pc = alloc a (n * n) and pd = alloc a (n * n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      ld2 b ptmp n i j;
      for k = 0 to n - 1 do
        ld2 b pa n i k;
        ld2 b pb n k j;
        ld2 b ptmp n i j
      done
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      ld2 b pd n i j;
      for k = 0 to n - 1 do
        ld2 b ptmp n i k;
        ld2 b pc n k j;
        ld2 b pd n i j
      done
    done
  done

let atax b n =
  let a = arena () in
  let pa = alloc a (n * n) and px = alloc a n and py = alloc a n and ptmp = alloc a n in
  for i = 0 to n - 1 do
    ld b ptmp i;
    for j = 0 to n - 1 do
      ld2 b pa n i j;
      ld b px j;
      ld b ptmp i
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      ld2 b pa n i j;
      ld b ptmp i;
      ld b py j
    done
  done

let bicg b n =
  let a = arena () in
  let pa = alloc a (n * n) in
  let ps = alloc a n and pq = alloc a n and pp = alloc a n and pr = alloc a n in
  for i = 0 to n - 1 do
    ld b pq i;
    for j = 0 to n - 1 do
      ld b ps j;
      ld b pr i;
      ld2 b pa n i j;
      ld b ps j;
      ld b pq i;
      ld2 b pa n i j;
      ld b pp j
    done
  done

let mvt b n =
  let a = arena () in
  let pa = alloc a (n * n) in
  let px1 = alloc a n and px2 = alloc a n and py1 = alloc a n and py2 = alloc a n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      ld b px1 i;
      ld2 b pa n i j;
      ld b py1 j;
      ld b px1 i
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      ld b px2 i;
      ld2 b pa n j i;
      ld b py2 j;
      ld b px2 i
    done
  done

let gesummv b n =
  let a = arena () in
  let pa = alloc a (n * n) and pb = alloc a (n * n) in
  let px = alloc a n and py = alloc a n and ptmp = alloc a n in
  for i = 0 to n - 1 do
    ld b ptmp i;
    ld b py i;
    for j = 0 to n - 1 do
      ld2 b pa n i j;
      ld b px j;
      ld b ptmp i;
      ld2 b pb n i j;
      ld b px j;
      ld b py i
    done;
    ld b ptmp i;
    ld b py i
  done

let gemver b n =
  let a = arena () in
  let pa = alloc a (n * n) in
  let pu1 = alloc a n and pv1 = alloc a n and pu2 = alloc a n and pv2 = alloc a n in
  let px = alloc a n and py = alloc a n and pw = alloc a n and pz = alloc a n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      ld2 b pa n i j;
      ld b pu1 i;
      ld b pv1 j;
      ld b pu2 i;
      ld b pv2 j;
      ld2 b pa n i j
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      ld b px i;
      ld2 b pa n j i;
      ld b py j;
      ld b px i
    done
  done;
  for i = 0 to n - 1 do
    ld b px i;
    ld b pz i;
    ld b px i
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      ld b pw i;
      ld2 b pa n i j;
      ld b px j;
      ld b pw i
    done
  done

let syrk b n =
  let a = arena () in
  let pa = alloc a (n * n) and pc = alloc a (n * n) in
  for i = 0 to n - 1 do
    for j = 0 to i do
      ld2 b pc n i j;
      for k = 0 to n - 1 do
        ld2 b pa n i k;
        ld2 b pa n j k;
        ld2 b pc n i j
      done
    done
  done

let trmm b n =
  let a = arena () in
  let pa = alloc a (n * n) and pb = alloc a (n * n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = i + 1 to n - 1 do
        ld2 b pa n k i;
        ld2 b pb n k j;
        ld2 b pb n i j
      done;
      ld2 b pb n i j
    done
  done

let jacobi_2d b n =
  let a = arena () in
  let pa = alloc a (n * n) and pb = alloc a (n * n) in
  for _t = 0 to 9 do
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        ld2 b pa n i j;
        ld2 b pa n i (j - 1);
        ld2 b pa n i (j + 1);
        ld2 b pa n (i - 1) j;
        ld2 b pa n (i + 1) j;
        ld2 b pb n i j
      done
    done;
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        ld2 b pb n i j;
        ld2 b pa n i j
      done
    done
  done

let seidel_2d b n =
  let a = arena () in
  let pa = alloc a (n * n) in
  for _t = 0 to 9 do
    for i = 1 to n - 2 do
      for j = 1 to n - 2 do
        ld2 b pa n (i - 1) (j - 1);
        ld2 b pa n (i - 1) j;
        ld2 b pa n (i - 1) (j + 1);
        ld2 b pa n i (j - 1);
        ld2 b pa n i j;
        ld2 b pa n i (j + 1);
        ld2 b pa n (i + 1) (j - 1);
        ld2 b pa n (i + 1) j;
        ld2 b pa n (i + 1) (j + 1);
        ld2 b pa n i j
      done
    done
  done

let fdtd_2d b n =
  let a = arena () in
  let pex = alloc a (n * n) and pey = alloc a (n * n) and phz = alloc a (n * n) in
  for _t = 0 to 9 do
    for i = 1 to n - 1 do
      for j = 0 to n - 1 do
        ld2 b pey n i j;
        ld2 b phz n i j;
        ld2 b phz n (i - 1) j;
        ld2 b pey n i j
      done
    done;
    for i = 0 to n - 1 do
      for j = 1 to n - 1 do
        ld2 b pex n i j;
        ld2 b phz n i j;
        ld2 b phz n i (j - 1);
        ld2 b pex n i j
      done
    done;
    for i = 0 to n - 2 do
      for j = 0 to n - 2 do
        ld2 b phz n i j;
        ld2 b pex n i (j + 1);
        ld2 b pex n i j;
        ld2 b pey n (i + 1) j;
        ld2 b pey n i j;
        ld2 b phz n i j
      done
    done
  done

let lu b n =
  let a = arena () in
  let pa = alloc a (n * n) in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      for k = 0 to j - 1 do
        ld2 b pa n i k;
        ld2 b pa n k j;
        ld2 b pa n i j
      done;
      ld2 b pa n j j;
      ld2 b pa n i j
    done;
    for j = i to n - 1 do
      for k = 0 to i - 1 do
        ld2 b pa n i k;
        ld2 b pa n k j;
        ld2 b pa n i j
      done
    done
  done

let cholesky b n =
  let a = arena () in
  let pa = alloc a (n * n) in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      for k = 0 to j - 1 do
        ld2 b pa n i k;
        ld2 b pa n j k;
        ld2 b pa n i j
      done;
      ld2 b pa n j j;
      ld2 b pa n i j
    done;
    for k = 0 to i - 1 do
      ld2 b pa n i k;
      ld2 b pa n i i
    done;
    ld2 b pa n i i
  done

let floyd_warshall b n =
  let a = arena () in
  let pp = alloc a (n * n) in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        ld2 b pp n i j;
        ld2 b pp n i k;
        ld2 b pp n k j;
        ld2 b pp n i j
      done
    done
  done

let doitgen b n =
  let a = arena () in
  (* A[r][q][p], C4[p][s], sum[p] with r = q = s = p = n *)
  let pa = alloc a (n * n * n) and pc4 = alloc a (n * n) and psum = alloc a n in
  for r = 0 to n - 1 do
    for q = 0 to n - 1 do
      for p = 0 to n - 1 do
        ld b psum p;
        for s = 0 to n - 1 do
          B.emit b (pa + ((((r * n) + q) * n + s) * elem));
          ld2 b pc4 n s p;
          ld b psum p
        done
      done;
      for p = 0 to n - 1 do
        ld b psum p;
        B.emit b (pa + ((((r * n) + q) * n + p) * elem))
      done
    done
  done

let covariance b n =
  let a = arena () in
  let pdata = alloc a (n * n) and pcov = alloc a (n * n) and pmean = alloc a n in
  for j = 0 to n - 1 do
    ld b pmean j;
    for i = 0 to n - 1 do
      ld2 b pdata n i j;
      ld b pmean j
    done;
    ld b pmean j
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      ld2 b pdata n i j;
      ld b pmean j;
      ld2 b pdata n i j
    done
  done;
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      ld2 b pcov n i j;
      for k = 0 to n - 1 do
        ld2 b pdata n k i;
        ld2 b pdata n k j;
        ld2 b pcov n i j
      done;
      ld2 b pcov n j i
    done
  done

let trisolv b n =
  let a = arena () in
  let pl = alloc a (n * n) and px = alloc a n and pb = alloc a n in
  for i = 0 to n - 1 do
    ld b pb i;
    ld b px i;
    for j = 0 to i - 1 do
      ld2 b pl n i j;
      ld b px j;
      ld b px i
    done;
    ld2 b pl n i i;
    ld b px i
  done

let kernels =
  [
    ("gemm", gemm);
    ("2mm", two_mm);
    ("atax", atax);
    ("bicg", bicg);
    ("mvt", mvt);
    ("gesummv", gesummv);
    ("gemver", gemver);
    ("syrk", syrk);
    ("trmm", trmm);
    ("jacobi-2d", jacobi_2d);
    ("seidel-2d", seidel_2d);
    ("fdtd-2d", fdtd_2d);
    ("lu", lu);
    ("cholesky", cholesky);
    ("floyd-warshall", floyd_warshall);
    ("doitgen", doitgen);
    ("covariance", covariance);
    ("trisolv", trisolv);
  ]

let kernel_names = List.map fst kernels

let trace ~name ~size n =
  let k = List.assoc name kernels in
  B.run n (fun b -> k b size)

(* doitgen is O(n^4); keep its dimension smaller so problem sizes stay
   comparable across kernels. *)
let size_for name variant =
  match (name, variant) with
  | "doitgen", `Small -> 12
  | "doitgen", `Large -> 20
  | ("trisolv" | "atax" | "bicg" | "mvt" | "gesummv" | "gemver"), `Small -> 96
  | ("trisolv" | "atax" | "bicg" | "mvt" | "gesummv" | "gemver"), `Large -> 220
  | _, `Small -> 40
  | _, `Large -> 88

let workloads () =
  List.concat_map
    (fun (name, _) ->
      List.map
        (fun variant ->
          let tag = match variant with `Small -> "small" | `Large -> "large" in
          let size = size_for name variant in
          Workload.make
            ~name:(Printf.sprintf "%s.%s" name tag)
            ~suite:Workload.Polybench ~group:name
            (fun n -> trace ~name ~size n))
        [ `Small; `Large ])
    kernels
