type suite = Spec | Ligra | Polybench

let suite_name = function Spec -> "SPEC" | Ligra -> "Ligra" | Polybench -> "Polybench"

type t = {
  name : string;
  suite : suite;
  group : string;
  generate : int -> int array;
}

let make ~name ~suite ~group generate = { name; suite; group; generate }

module Builder = struct
  type b = { mutable data : int array; mutable len : int; cap : int }

  exception Full

  let create cap = { data = Array.make (min cap 4096) 0; len = 0; cap }

  let emit b addr =
    if b.len >= b.cap then raise Full;
    if b.len >= Array.length b.data then begin
      let bigger = Array.make (min b.cap (2 * Array.length b.data)) 0 in
      Array.blit b.data 0 bigger 0 b.len;
      b.data <- bigger
    end;
    b.data.(b.len) <- addr;
    b.len <- b.len + 1

  let read b ~base ~index ~elem_bytes = emit b (base + (index * elem_bytes))

  let length b = b.len
  let contents b = Array.sub b.data 0 b.len

  let run n f =
    let b = create n in
    (try
       while b.len < n do
         let before = b.len in
         f b;
         if b.len = before then failwith "Workload.Builder.run: generator emitted nothing"
       done
     with Full -> ());
    assert (b.len = n);
    contents b
end
