(** Workload (benchmark) abstraction.

    A workload deterministically generates a memory-address trace of a
    requested length — the role Pin-captured SPEC/Ligra/Polybench traces play
    in the paper. Workloads are grouped into the paper's three suites; the
    [group] field ties together multiple traces ("phases") of the same
    benchmark so the train/test split never separates them (paper §4.1). *)

type suite = Spec | Ligra | Polybench

val suite_name : suite -> string

type t = {
  name : string;  (** unique, e.g. "602.stream_s-1211B" *)
  suite : suite;
  group : string;  (** benchmark family; phases share a group *)
  generate : int -> int array;
      (** [generate n] returns a byte-address trace of exactly [n] accesses;
          deterministic in [name]. *)
}

val make : name:string -> suite:suite -> group:string -> (int -> int array) -> t

(** {1 Trace construction helper} *)

module Builder : sig
  (** Append-only address-trace sink with a hard capacity: generators emit
      until full, which lets loop-nest kernels stop mid-iteration once the
      requested trace length is reached. *)

  type b

  exception Full

  val create : int -> b
  val emit : b -> int -> unit
  (** Record one byte address; raises {!Full} when capacity is reached. *)

  val read : b -> base:int -> index:int -> elem_bytes:int -> unit
  (** Convenience: emit the address of element [index] of an array at
      [base]. *)

  val length : b -> int
  val contents : b -> int array

  val run : int -> (b -> unit) -> int array
  (** [run n f] collects exactly [n] addresses, restarting [f] from scratch
      if it terminates early (so short kernels wrap around), and swallowing
      {!Full}. [f] must emit at least one address per invocation. *)
end
