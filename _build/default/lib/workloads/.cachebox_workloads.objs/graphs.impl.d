lib/workloads/graphs.ml: Array Hashtbl Lazy List Printf Prng Queue Workload
