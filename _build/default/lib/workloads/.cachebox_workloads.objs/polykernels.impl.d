lib/workloads/polykernels.ml: List Printf Workload
