lib/workloads/graphs.mli: Workload
