lib/workloads/workload.ml: Array
