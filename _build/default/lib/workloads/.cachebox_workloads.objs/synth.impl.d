lib/workloads/synth.ml: Array Hashtbl List Printf Prng Workload
