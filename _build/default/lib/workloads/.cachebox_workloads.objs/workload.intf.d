lib/workloads/workload.mli:
