lib/workloads/suite.ml: Array Float Graphs Hashtbl List Polykernels Prng Synth Workload
