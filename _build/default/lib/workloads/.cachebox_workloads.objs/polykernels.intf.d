lib/workloads/polykernels.mli: Workload
