lib/workloads/synth.mli: Prng Workload
