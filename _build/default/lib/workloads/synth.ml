module B = Workload.Builder

type pattern =
  | Stream of { region_bytes : int; stride : int }
  | Zipf of { region_bytes : int; exponent : float }
  | Pointer_chase of { nodes : int }
  | Stack_walk of { max_depth : int }
  | Tiled of { matrix : int; tile : int }

let pattern_stepper rng pattern ~base =
  match pattern with
  | Stream { region_bytes; stride } ->
    let pos = ref 0 in
    fun () ->
      let addr = base + !pos in
      pos := (!pos + stride) mod region_bytes;
      addr
  | Zipf { region_bytes; exponent } ->
    let elems = max 1 (region_bytes / 8) in
    fun () ->
      let rank = Prng.zipf rng ~n:elems ~s:exponent in
      (* Spread ranks with a multiplicative hash so popularity is temporal,
         not spatial. *)
      let idx = rank * 2654435761 mod elems in
      base + (idx * 8)
  | Pointer_chase { nodes } ->
    (* A random cyclic permutation: the worst case for spatial locality,
       the defining pattern of mcf-like benchmarks. *)
    let next = Array.init nodes (fun i -> i) in
    Prng.shuffle rng next;
    let cur = ref 0 in
    fun () ->
      let addr = base + (next.(!cur) * 64) in
      cur := next.(!cur);
      addr
  | Stack_walk { max_depth } ->
    let depth = ref (max_depth / 2) in
    fun () ->
      let step = Prng.int rng 7 - 3 in
      depth := max 0 (min (max_depth - 1) (!depth + step));
      base + (!depth * 8)
  | Tiled { matrix; tile } ->
    let ti = ref 0 and tj = ref 0 and i = ref 0 and j = ref 0 in
    fun () ->
      let row = (!ti * tile) + !i and col = (!tj * tile) + !j in
      let addr = base + ((((row * matrix) + col) * 8) mod (matrix * matrix * 8)) in
      incr j;
      if !j >= tile then begin
        j := 0;
        incr i;
        if !i >= tile then begin
          i := 0;
          incr tj;
          if !tj * tile >= matrix then begin
            tj := 0;
            incr ti;
            if !ti * tile >= matrix then ti := 0
          end
        end
      end;
      addr

let trace_of_patterns ~seed weighted n =
  if weighted = [] then invalid_arg "Synth.trace_of_patterns: no patterns";
  let rng = Prng.create seed in
  let steppers =
    List.mapi
      (fun i (p, w) ->
        (* Each pattern gets its own region and its own random stream. *)
        let base = 0x4000_0000 + (i * 0x0800_0000) in
        (pattern_stepper (Prng.split rng) p ~base, w))
      weighted
  in
  let total_weight = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 steppers in
  let pick () =
    let r = Prng.float rng total_weight in
    let rec go acc = function
      | [ (s, _) ] -> s
      | (s, w) :: rest -> if r < acc +. w then s else go (acc +. w) rest
      | [] -> assert false
    in
    go 0.0 steppers
  in
  let out = Array.make n 0 in
  let i = ref 0 in
  (* Patterns interleave in bursts, like program regions do. *)
  while !i < n do
    let stepper = pick () in
    let burst = 16 + Prng.int rng 112 in
    let stop = min n (!i + burst) in
    while !i < stop do
      out.(!i) <- stepper ();
      incr i
    done
  done;
  out

let kib n = n * 1024
let mib n = n * 1024 * 1024

(* Benchmark roster. Archetype mixes are chosen so the suite's L1 hit-rate
   histogram matches the paper's Fig 14: predominantly > 65%, with a
   mid-range band and a few pathological low-hit-rate traces. *)
let roster =
  [
    (* name, [pattern, weight] *)
    ("600.perlbench_s", [ (Zipf { region_bytes = kib 24; exponent = 1.1 }, 3.0);
                          (Stream { region_bytes = kib 64; stride = 4096 }, 0.35);
                          (Stack_walk { max_depth = 2048 }, 2.0);
                          (Stream { region_bytes = kib 64; stride = 8 }, 1.0) ]);
    ("602.gcc_s", [ (Zipf { region_bytes = kib 96; exponent = 0.9 }, 2.0);
                    (Stream { region_bytes = kib 128; stride = 8192 }, 0.4);
                    (Pointer_chase { nodes = 16384 }, 0.5);
                    (Stack_walk { max_depth = 4096 }, 2.0) ]);
    ("603.bwaves_s", [ (Stream { region_bytes = mib 4; stride = 8 }, 4.0);
                       (Tiled { matrix = 256; tile = 16 }, 1.0) ]);
    ("605.mcf_s", [ (Pointer_chase { nodes = 131072 }, 3.0);
                    (Zipf { region_bytes = kib 64; exponent = 1.2 }, 0.6) ]);
    ("607.cactuBSSN_s", [ (Tiled { matrix = 384; tile = 8 }, 2.0);
                          (Stream { region_bytes = kib 64; stride = 4096 }, 0.5);
                          (Stream { region_bytes = mib 2; stride = 24 }, 2.0);
                          (Stack_walk { max_depth = 512 }, 1.0) ]);
    ("619.lbm_s", [ (Stream { region_bytes = mib 8; stride = 8 }, 3.0);
                    (Stream { region_bytes = mib 8; stride = 152 }, 0.4) ]);
    ("620.omnetpp_s", [ (Pointer_chase { nodes = 65536 }, 1.0);
                        (Zipf { region_bytes = kib 48; exponent = 1.2 }, 2.0);
                        (Stack_walk { max_depth = 1024 }, 1.0) ]);
    ("621.wrf_s", [ (Stream { region_bytes = mib 1; stride = 8 }, 3.0);
                    (Tiled { matrix = 192; tile = 12 }, 1.0) ]);
    ("623.xalancbmk_s", [ (Zipf { region_bytes = kib 160; exponent = 1.0 }, 2.0);
                          (Pointer_chase { nodes = 8192 }, 0.5) ]);
    ("625.x264_s", [ (Tiled { matrix = 320; tile = 16 }, 3.0);
                     (Zipf { region_bytes = kib 16; exponent = 1.3 }, 1.0) ]);
    ("627.cam4_s", [ (Stream { region_bytes = mib 2; stride = 16 }, 2.0);
                     (Stack_walk { max_depth = 768 }, 1.0) ]);
    ("628.pop2_s", [ (Stream { region_bytes = kib 512; stride = 8 }, 2.0);
                     (Stream { region_bytes = kib 512; stride = 64 }, 0.4) ]);
    ("631.deepsjeng_s", [ (Zipf { region_bytes = kib 32; exponent = 1.2 }, 3.0);
                          (Stream { region_bytes = kib 64; stride = 4096 }, 0.3);
                          (Stack_walk { max_depth = 256 }, 2.0) ]);
    ("638.imagick_s", [ (Stream { region_bytes = kib 256; stride = 8 }, 3.0);
                        (Stream { region_bytes = kib 64; stride = 4096 }, 0.4);
                        (Tiled { matrix = 128; tile = 8 }, 2.0);
                        (Zipf { region_bytes = kib 8; exponent = 1.0 }, 1.0) ]);
    ("641.leela_s", [ (Zipf { region_bytes = kib 40; exponent = 1.1 }, 2.0);
                      (Stack_walk { max_depth = 1536 }, 1.0) ]);
    ("644.nab_s", [ (Stream { region_bytes = kib 128; stride = 8 }, 2.0);
                    (Zipf { region_bytes = kib 12; exponent = 1.0 }, 1.0) ]);
    ("648.exchange2_s", [ (Stack_walk { max_depth = 128 }, 3.0);
                          (Zipf { region_bytes = kib 4; exponent = 1.4 }, 1.0) ]);
    ("649.fotonik3d_s", [ (Stream { region_bytes = mib 6; stride = 8 }, 3.0);
                          (Stream { region_bytes = mib 6; stride = 4096 }, 0.3) ]);
    ("654.roms_s", [ (Stream { region_bytes = mib 3; stride = 8 }, 2.0);
                     (Tiled { matrix = 224; tile = 14 }, 1.0) ]);
    ("657.xz_s", [ (Zipf { region_bytes = mib 1; exponent = 0.7 }, 2.0);
                   (Stream { region_bytes = kib 192; stride = 8 }, 1.0) ]);
    ("400.perlbench", [ (Zipf { region_bytes = kib 20; exponent = 1.1 }, 2.0);
                        (Stack_walk { max_depth = 512 }, 1.0) ]);
    ("401.bzip2", [ (Stream { region_bytes = kib 900; stride = 8 }, 2.0);
                    (Zipf { region_bytes = kib 640; exponent = 0.9 }, 1.0) ]);
    ("429.mcf", [ (Pointer_chase { nodes = 262144 }, 4.0);
                  (Stack_walk { max_depth = 64 }, 1.0) ]);
    ("470.lbm", [ (Stream { region_bytes = mib 12; stride = 8 }, 3.0);
                  (Stream { region_bytes = mib 12; stride = 320 }, 0.4) ]);
  ]

let phase_suffixes = [ "734B"; "2375B" ]

(* Phase 2 of each benchmark perturbs the weights so phases differ without
   changing the benchmark's character. *)
let phase_weights phase weighted =
  List.mapi
    (fun i (p, w) ->
      let tweak = if (i + phase) mod 2 = 0 then 1.5 else 0.75 in
      (p, w *. tweak))
    weighted

let workloads () =
  List.concat_map
    (fun (group, weighted) ->
      List.mapi
        (fun phase suffix ->
          let name = Printf.sprintf "%s-%s" group suffix in
          let seed = Hashtbl.hash name in
          let weighted = phase_weights phase weighted in
          Workload.make ~name ~suite:Workload.Spec ~group (fun n ->
              trace_of_patterns ~seed weighted n))
        phase_suffixes)
    roster

let table1_apps =
  [ "600.perlbench_s"; "602.gcc_s"; "607.cactuBSSN_s"; "631.deepsjeng_s"; "638.imagick_s" ]
