let all () = Synth.workloads () @ Graphs.workloads () @ Polykernels.workloads ()

let of_suite suite = List.filter (fun w -> w.Workload.suite = suite) (all ())

let find name =
  match List.find_opt (fun w -> w.Workload.name = name) (all ()) with
  | Some w -> w
  | None -> raise Not_found

type split = { train : Workload.t list; test : Workload.t list }

let split ?(seed = 42) ?(train_fraction = 0.8) workloads =
  if train_fraction <= 0.0 || train_fraction >= 1.0 then
    invalid_arg "Suite.split: train_fraction must be in (0, 1)";
  (* Split each suite independently (the paper splits each suite 80/20),
     keeping whole groups together. *)
  let rng = Prng.create seed in
  let suites =
    List.sort_uniq compare (List.map (fun w -> w.Workload.suite) workloads)
  in
  let train = ref [] and test = ref [] in
  List.iter
    (fun suite ->
      let ws = List.filter (fun w -> w.Workload.suite = suite) workloads in
      let groups =
        List.sort_uniq compare (List.map (fun w -> w.Workload.group) ws)
        |> Array.of_list
      in
      Prng.shuffle rng groups;
      let n_train =
        (* At least one group on each side. *)
        let raw = int_of_float (Float.round (train_fraction *. float_of_int (Array.length groups))) in
        max 1 (min (Array.length groups - 1) raw)
      in
      let train_groups = Hashtbl.create 32 in
      Array.iteri (fun i g -> if i < n_train then Hashtbl.replace train_groups g ()) groups;
      List.iter
        (fun w ->
          if Hashtbl.mem train_groups w.Workload.group then train := w :: !train
          else test := w :: !test)
        ws)
    suites;
  { train = List.rev !train; test = List.rev !test }

let split_disjoint { train; test } =
  let train_groups = List.map (fun w -> w.Workload.group) train in
  List.for_all (fun w -> not (List.mem w.Workload.group train_groups)) test
