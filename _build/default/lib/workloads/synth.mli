(** SPEC CPU suite stand-in: a parameterized family of phase-structured
    synthetic benchmarks.

    Each benchmark is a deterministic mixture of access-pattern primitives
    (sequential streams, strided sweeps, Zipf hot-set accesses, pointer
    chases, stack walks and blocked 2-D traversals) whose footprints are
    drawn to span the paper's observed hit-rate spectrum (Fig 14: most SPEC
    traces above 65% L1 hit rate, with a long low-hit-rate tail). Benchmarks
    may have several phases — separate traces sharing a [group] — mirroring
    the multiple DPC3 trace files per SPEC benchmark used in Table 1. *)

type pattern =
  | Stream of { region_bytes : int; stride : int }
  | Zipf of { region_bytes : int; exponent : float }
  | Pointer_chase of { nodes : int }
  | Stack_walk of { max_depth : int }
  | Tiled of { matrix : int; tile : int }

val pattern_stepper : Prng.t -> pattern -> base:int -> unit -> int
(** [pattern_stepper rng p ~base] returns a stateful generator of byte
    addresses following pattern [p] inside a region starting at [base]. *)

val trace_of_patterns : seed:int -> (pattern * float) list -> int -> int array
(** [trace_of_patterns ~seed weighted n] interleaves the weighted patterns
    stochastically into an [n]-access trace. *)

val workloads : unit -> Workload.t list
(** The full SPEC-like roster (48 traces across 24 benchmark groups). *)

val table1_apps : string list
(** The five benchmark groups used by the paper's Table 1 comparison
    (numbered 600/602/607/631/638 after their SPEC counterparts); each has
    at least two phases. *)
