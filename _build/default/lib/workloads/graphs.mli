(** Ligra benchmark suite stand-in: shared-memory graph algorithms run over
    CSR graphs, recording every access to the offsets / edges / per-vertex
    data arrays. The irregular access patterns are produced by genuine
    traversals, not sampled distributions. *)

type graph = {
  vertex_count : int;
  offsets : int array;  (** CSR row offsets, length [vertex_count + 1] *)
  edges : int array;  (** concatenated adjacency lists *)
}

val uniform_graph : seed:int -> vertices:int -> avg_degree:int -> graph
(** Erdős–Rényi-style random graph. *)

val rmat_graph : seed:int -> vertices:int -> avg_degree:int -> graph
(** RMAT-style power-law graph (a=0.57, b=c=0.19), the skewed-degree kind
    Ligra's inputs exhibit. Vertex count is rounded up to a power of two. *)

val algorithm_names : string list
(** bfs, pagerank, components, sssp, degree-hist. *)

val trace : algo:string -> graph:graph -> int -> int array
(** [trace ~algo ~graph n] runs the algorithm over the graph and returns its
    first [n] memory accesses (wrapping if it converges early). *)

val workloads : unit -> Workload.t list
(** 5 algorithms x 5 graphs = 25 workloads. *)
