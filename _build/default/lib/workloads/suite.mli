(** Benchmark registry and train/test splitting.

    Mirrors the paper's dataset methodology (§4.1): every suite is split
    80/20 into train and test sets at *benchmark-group* granularity — all
    phases of one benchmark land on the same side, so inference only ever
    sees programs that are entirely absent from training. *)

val all : unit -> Workload.t list
(** Full roster: SPEC-like (48) + Ligra-like (25) + Polybench-like (36). *)

val of_suite : Workload.suite -> Workload.t list

val find : string -> Workload.t
(** Lookup by exact name; raises [Not_found]. *)

type split = { train : Workload.t list; test : Workload.t list }

val split : ?seed:int -> ?train_fraction:float -> Workload.t list -> split
(** Group-aware shuffled split; deterministic in [seed] (default 42). The
    train fraction (default 0.8) applies to groups, not traces. *)

val split_disjoint : split -> bool
(** True when no group appears on both sides (sanity invariant). *)
