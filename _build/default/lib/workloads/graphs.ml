module B = Workload.Builder

type graph = {
  vertex_count : int;
  offsets : int array;
  edges : int array;
}

let build_from_pairs vertices pairs =
  let degree = Array.make vertices 0 in
  List.iter (fun (u, _) -> degree.(u) <- degree.(u) + 1) pairs;
  let offsets = Array.make (vertices + 1) 0 in
  for v = 0 to vertices - 1 do
    offsets.(v + 1) <- offsets.(v) + degree.(v)
  done;
  let edges = Array.make offsets.(vertices) 0 in
  let cursor = Array.copy offsets in
  List.iter
    (fun (u, v) ->
      edges.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1)
    pairs;
  { vertex_count = vertices; offsets; edges }

let uniform_graph ~seed ~vertices ~avg_degree =
  let g = Prng.create seed in
  let pairs = ref [] in
  for u = 0 to vertices - 1 do
    for _ = 1 to avg_degree do
      pairs := (u, Prng.int g vertices) :: !pairs
    done
  done;
  build_from_pairs vertices !pairs

let rmat_graph ~seed ~vertices ~avg_degree =
  let g = Prng.create seed in
  let bits =
    let rec go b = if 1 lsl b >= vertices then b else go (b + 1) in
    go 0
  in
  let n = 1 lsl bits in
  let sample_vertex () =
    (* Recursive quadrant descent with (a, b, c, d) = (.57, .19, .19, .05). *)
    let u = ref 0 and v = ref 0 in
    for _ = 1 to bits do
      let r = Prng.float g 1.0 in
      let bu, bv =
        if r < 0.57 then (0, 0)
        else if r < 0.76 then (0, 1)
        else if r < 0.95 then (1, 0)
        else (1, 1)
      in
      u := (!u lsl 1) lor bu;
      v := (!v lsl 1) lor bv
    done;
    (!u, !v)
  in
  let pairs = ref [] in
  for _ = 1 to n * avg_degree do
    pairs := sample_vertex () :: !pairs
  done;
  build_from_pairs n !pairs

(* Virtual address layout for the traced arrays: offsets and edges are int64
   arrays; per-vertex payloads are 8-byte values. Regions are page-separated
   like distinct allocations. *)
type layout = {
  p_offsets : int;
  p_edges : int;
  p_data1 : int;
  p_data2 : int;
  p_frontier : int;
}

let elem = 8

let layout graph =
  let cursor = ref 0x2000_0000 in
  let alloc count =
    let base = !cursor in
    cursor := !cursor + ((count * elem) + 4095) / 4096 * 4096 + 4096;
    base
  in
  {
    p_offsets = alloc (graph.vertex_count + 1);
    p_edges = alloc (Array.length graph.edges);
    p_data1 = alloc graph.vertex_count;
    p_data2 = alloc graph.vertex_count;
    p_frontier = alloc graph.vertex_count;
  }

let ld b base i = B.emit b (base + (i * elem))

let scan_neighbours b lay graph v f =
  ld b lay.p_offsets v;
  ld b lay.p_offsets (v + 1);
  for e = graph.offsets.(v) to graph.offsets.(v + 1) - 1 do
    ld b lay.p_edges e;
    f graph.edges.(e)
  done

let bfs b graph =
  let lay = layout graph in
  let visited = Array.make graph.vertex_count false in
  let queue = Queue.create () in
  (* Sweep sources until the builder is full so disconnected graphs still
     generate work. *)
  for src = 0 to graph.vertex_count - 1 do
    if not visited.(src) then begin
      visited.(src) <- true;
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        ld b lay.p_frontier v;
        scan_neighbours b lay graph v (fun w ->
            ld b lay.p_data1 w;
            if not visited.(w) then begin
              visited.(w) <- true;
              ld b lay.p_data1 w;
              Queue.add w queue
            end)
      done
    end
  done

let pagerank b graph =
  let lay = layout graph in
  for _iter = 1 to 10 do
    for v = 0 to graph.vertex_count - 1 do
      ld b lay.p_data2 v;
      scan_neighbours b lay graph v (fun w ->
          ld b lay.p_data1 w;
          ld b lay.p_data2 v)
    done;
    for v = 0 to graph.vertex_count - 1 do
      ld b lay.p_data2 v;
      ld b lay.p_data1 v
    done
  done

let components b graph =
  let lay = layout graph in
  let label = Array.init graph.vertex_count (fun i -> i) in
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to graph.vertex_count - 1 do
      ld b lay.p_data1 v;
      scan_neighbours b lay graph v (fun w ->
          ld b lay.p_data1 w;
          if label.(w) < label.(v) then begin
            label.(v) <- label.(w);
            changed := true;
            ld b lay.p_data1 v
          end)
    done
  done

let sssp b graph =
  (* Bellman-Ford-style rounds with implicit unit weights. *)
  let lay = layout graph in
  let dist = Array.make graph.vertex_count max_int in
  dist.(0) <- 0;
  for _round = 1 to 8 do
    for v = 0 to graph.vertex_count - 1 do
      ld b lay.p_data1 v;
      if dist.(v) < max_int then
        scan_neighbours b lay graph v (fun w ->
            ld b lay.p_data1 w;
            if dist.(v) + 1 < dist.(w) then begin
              dist.(w) <- dist.(v) + 1;
              ld b lay.p_data1 w
            end)
    done
  done

let degree_hist b graph =
  let lay = layout graph in
  (* Histogram of degrees: a scatter-heavy pattern (indexed writes). *)
  for v = 0 to graph.vertex_count - 1 do
    ld b lay.p_offsets v;
    ld b lay.p_offsets (v + 1);
    let d = graph.offsets.(v + 1) - graph.offsets.(v) in
    ld b lay.p_data1 (d mod graph.vertex_count);
    ld b lay.p_data1 (d mod graph.vertex_count)
  done

let algorithms =
  [
    ("bfs", bfs);
    ("pagerank", pagerank);
    ("components", components);
    ("sssp", sssp);
    ("degree-hist", degree_hist);
  ]

let algorithm_names = List.map fst algorithms

let trace ~algo ~graph n =
  let f = List.assoc algo algorithms in
  B.run n (fun b -> f b graph)

let graph_specs =
  [
    ("uni-small", `Uniform, 2_000, 8);
    ("uni-large", `Uniform, 20_000, 8);
    ("uni-dense", `Uniform, 4_000, 32);
    ("rmat-small", `Rmat, 2_048, 8);
    ("rmat-large", `Rmat, 16_384, 12);
  ]

let build_graph (name, kind, vertices, avg_degree) =
  let seed = Hashtbl.hash name in
  match kind with
  | `Uniform -> uniform_graph ~seed ~vertices ~avg_degree
  | `Rmat -> rmat_graph ~seed ~vertices ~avg_degree

let workloads () =
  List.concat_map
    (fun ((gname, _, _, _) as spec) ->
      (* Graphs are built lazily, once, and shared across the algorithms. *)
      let graph = lazy (build_graph spec) in
      List.map
        (fun (aname, _) ->
          Workload.make
            ~name:(Printf.sprintf "%s.%s" aname gname)
            ~suite:Workload.Ligra ~group:aname
            (fun n -> trace ~algo:aname ~graph:(Lazy.force graph) n))
        algorithms)
    graph_specs
