(** Polyhedral benchmark suite stand-in: real Polybench loop nests,
    reimplemented to emit the byte address of every array element they touch.
    The traces are therefore exact replicas of the kernels' access patterns,
    not statistical models (see DESIGN.md substitution table). *)

val kernel_names : string list
(** The 16 implemented kernels. *)

val trace : name:string -> size:int -> int -> int array
(** [trace ~name ~size n] runs kernel [name] with problem dimension [size]
    and returns its first [n] memory accesses (wrapping around if the kernel
    finishes early). Raises [Not_found] for unknown names. *)

val workloads : unit -> Workload.t list
(** The full suite: every kernel at two dataset sizes (32 workloads),
    mirroring the paper's 32 Polybench benchmarks. *)
