type spec = {
  height : int;
  width : int;
  window : int;
  overlap : float;
  granularity : int;
}

let spec ?(height = 64) ?(width = 64) ?(window = 50) ?(overlap = 0.3) ?(granularity = 64) () =
  if height <= 0 || width <= 0 || window <= 0 then
    invalid_arg "Heatmap.spec: dimensions must be positive";
  if overlap < 0.0 || overlap >= 1.0 then
    invalid_arg "Heatmap.spec: overlap must be in [0, 1)";
  if granularity <= 0 then invalid_arg "Heatmap.spec: granularity must be positive";
  { height; width; window; overlap; granularity }

let paper_spec = spec ~height:512 ~width:512 ~window:100 ~overlap:0.3 ~granularity:64 ()

let accesses_per_image s = s.width * s.window

let overlap_columns s = int_of_float (Float.round (s.overlap *. float_of_int s.width))

let step_accesses s = (s.width - overlap_columns s) * s.window

let image_count s trace_len =
  let per_image = accesses_per_image s in
  if trace_len < per_image then
    invalid_arg
      (Printf.sprintf "Heatmap.image_count: trace of %d accesses is shorter than one image (%d)"
         trace_len per_image);
  1 + ((trace_len - per_image) / step_accesses s)

let row_of_address s addr = addr / s.granularity mod s.height

let build_image s addresses keep start =
  let img = Tensor.zeros [| s.height; s.width |] in
  for col = 0 to s.width - 1 do
    let col_start = start + (col * s.window) in
    for k = 0 to s.window - 1 do
      let i = col_start + k in
      if keep i then begin
        let row = row_of_address s addresses.(i) in
        Tensor.set2 img row col (Tensor.get2 img row col +. 1.0)
      end
    done
  done;
  img

let images s addresses keep =
  let n = image_count s (Array.length addresses) in
  List.init n (fun i -> build_image s addresses keep (i * step_accesses s))

let of_trace s addresses = images s addresses (fun _ -> true)

let of_trace_filtered s ~addresses ~keep =
  if Array.length keep <> Array.length addresses then
    invalid_arg "Heatmap.of_trace_filtered: length mismatch";
  images s addresses (fun i -> keep.(i))

let pair_of_trace s ~addresses ~hits =
  if Array.length hits <> Array.length addresses then
    invalid_arg "Heatmap.pair_of_trace: length mismatch";
  let access = of_trace s addresses in
  let miss = images s addresses (fun i -> not hits.(i)) in
  List.combine access miss

let deoverlapped_sum s imgs =
  let ov = overlap_columns s in
  let sum_from img first_col =
    let acc = ref 0.0 in
    for row = 0 to s.height - 1 do
      for col = first_col to s.width - 1 do
        acc := !acc +. Tensor.get2 img row col
      done
    done;
    !acc
  in
  match imgs with
  | [] -> 0.0
  | first :: rest ->
    List.fold_left (fun acc img -> acc +. sum_from img ov) (sum_from first 0) rest

let hit_rate s ~access ~miss =
  let total = deoverlapped_sum s access in
  if total <= 0.0 then 0.0
  else begin
    let missed = deoverlapped_sum s miss in
    1.0 -. (missed /. total)
  end

let render_ascii ?(max_rows = 32) ?(max_cols = 64) img =
  let h = Tensor.dim img 0 and w = Tensor.dim img 1 in
  let rows = min h max_rows and cols = min w max_cols in
  let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  let cell r c =
    (* Max-pool the covered region so sparse dots stay visible. *)
    let r0 = r * h / rows and r1 = ((r + 1) * h / rows) - 1 in
    let c0 = c * w / cols and c1 = ((c + 1) * w / cols) - 1 in
    let m = ref 0.0 in
    for i = r0 to max r0 r1 do
      for j = c0 to max c0 c1 do
        m := Float.max !m (Tensor.get2 img i j)
      done
    done;
    !m
  in
  let peak = Float.max 1e-9 (Tensor.max_value img) in
  let buf = Buffer.create ((rows + 2) * (cols + 3)) in
  Buffer.add_char buf '+';
  for _ = 1 to cols do Buffer.add_char buf '-' done;
  Buffer.add_string buf "+\n";
  for r = 0 to rows - 1 do
    Buffer.add_char buf '|';
    for c = 0 to cols - 1 do
      let v = cell r c /. peak in
      let idx = min 9 (int_of_float (v *. 9.99)) in
      Buffer.add_char buf shades.(idx)
    done;
    Buffer.add_string buf "|\n"
  done;
  Buffer.add_char buf '+';
  for _ = 1 to cols do Buffer.add_char buf '-' done;
  Buffer.add_string buf "+\n";
  Buffer.contents buf

let write_pgm path img =
  let h = Tensor.dim img 0 and w = Tensor.dim img 1 in
  let peak = Float.max 1e-9 (Tensor.max_value img) in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "P5\n%d %d\n255\n" w h;
      for r = 0 to h - 1 do
        for c = 0 to w - 1 do
          let v = int_of_float (Tensor.get2 img r c /. peak *. 255.0) in
          output_char oc (Char.chr (max 0 (min 255 v)))
        done
      done)
