(* Finite-difference gradient checks for the conv / deconv / dense layers,
   run under the parallel backend (3 domains) so backprop correctness is
   pinned for the Dpool kernel paths.

   phi(theta) = <layer(x), g> for a fixed random g is linear in each
   parameter, so the central difference is exact up to float32 rounding; a
   large step (0.1) swamps that rounding and the 1e-2 relative tolerance
   checks the autodiff gradient directly. *)

let gradcheck_domains = 3

let rel_ok fd ad = Float.abs (fd -. ad) <= 1e-2 *. (1.0 +. Float.abs fd)

(* phi = sum(layer_output * g); returns (phi as Value graph, scalar). *)
let phi_of forward g =
  let out = forward () in
  Value.value (Value.sum_all (Value.mul out (Value.const g)))
  |> fun t -> Tensor.get t 0

let check_params ~name forward params =
  Dpool.with_domains gradcheck_domains (fun () ->
      (* Autodiff gradient. *)
      List.iter Param.zero_grad params;
      let g_target =
        (* Fixed projection tensor, shaped like the output. *)
        let out = forward () in
        Tensor.randn (Prng.create 99) (Tensor.shape (Value.value out))
      in
      let loss () = Value.sum_all (Value.mul (forward ()) (Value.const g_target)) in
      Value.backward (loss ());
      let eps = 0.1 in
      List.iter
        (fun (p : Param.t) ->
          let n = Tensor.numel p.Param.value in
          (* Probe a handful of coordinates spread across the tensor. *)
          let probes = if n <= 6 then List.init n Fun.id else [ 0; 1; n / 3; n / 2; (2 * n) / 3; n - 1 ] in
          List.iter
            (fun i ->
              let orig = Tensor.get p.Param.value i in
              Tensor.set p.Param.value i (orig +. eps);
              let plus = phi_of forward g_target in
              Tensor.set p.Param.value i (orig -. eps);
              let minus = phi_of forward g_target in
              Tensor.set p.Param.value i orig;
              let fd = (plus -. minus) /. (2.0 *. eps) in
              let ad = Tensor.get p.Param.grad i in
              if not (rel_ok fd ad) then
                Alcotest.failf "%s: %s[%d]: finite-diff %.6f vs autodiff %.6f" name
                  p.Param.name i fd ad)
            probes)
        params)

let test_conv_layer () =
  let rng = Prng.create 21 in
  let layer =
    Layers.conv2d rng ~name:"gc_conv" ~in_channels:2 ~out_channels:3 ~kernel:3 ~stride:2 ~pad:1
      ~bias:true
  in
  let x = Tensor.randn rng [| 2; 2; 6; 6 |] in
  check_params ~name:"conv2d"
    (fun () -> Layers.apply_conv2d layer (Value.const x))
    (Layers.conv2d_params layer)

let test_deconv_layer () =
  let rng = Prng.create 22 in
  let layer =
    Layers.conv_transpose2d rng ~name:"gc_deconv" ~in_channels:3 ~out_channels:2 ~kernel:4
      ~stride:2 ~pad:1 ~bias:true
  in
  let x = Tensor.randn rng [| 2; 3; 5; 5 |] in
  check_params ~name:"conv_transpose2d"
    (fun () -> Layers.apply_conv_transpose2d layer (Value.const x))
    (Layers.conv_transpose2d_params layer)

let test_dense_layer () =
  let rng = Prng.create 23 in
  let layer = Layers.linear rng ~name:"gc_dense" ~in_dim:7 ~out_dim:5 ~bias:true in
  let x = Tensor.randn rng [| 4; 7 |] in
  check_params ~name:"linear"
    (fun () -> Layers.apply_linear layer (Value.const x))
    (Layers.linear_params layer)

let test_input_gradient () =
  (* Gradient w.r.t. the input (the path the U-Net skip connections use),
     checked the same way through a Value.leaf. *)
  Dpool.with_domains gradcheck_domains (fun () ->
      let rng = Prng.create 24 in
      let layer =
        Layers.conv2d rng ~name:"gc_conv_x" ~in_channels:2 ~out_channels:2 ~kernel:3 ~stride:1
          ~pad:1 ~bias:false
      in
      let x = Tensor.randn rng [| 1; 2; 5; 5 |] in
      let g = Tensor.randn rng [| 1; 2; 5; 5 |] in
      let forward x =
        Tensor.get
          (Value.value
             (Value.sum_all (Value.mul (Layers.apply_conv2d layer (Value.const x)) (Value.const g))))
          0
      in
      let leaf = Value.leaf x in
      Value.backward (Value.sum_all (Value.mul (Layers.apply_conv2d layer leaf) (Value.const g)));
      let gx = Value.grad leaf in
      let eps = 0.1 in
      List.iter
        (fun i ->
          let orig = Tensor.get x i in
          Tensor.set x i (orig +. eps);
          let plus = forward x in
          Tensor.set x i (orig -. eps);
          let minus = forward x in
          Tensor.set x i orig;
          let fd = (plus -. minus) /. (2.0 *. eps) in
          if not (rel_ok fd (Tensor.get gx i)) then
            Alcotest.failf "input grad [%d]: finite-diff %.6f vs autodiff %.6f" i fd
              (Tensor.get gx i))
        [ 0; 7; 23; 49 ])

let suite =
  ( "gradcheck-parallel",
    [
      Alcotest.test_case "conv2d layer" `Quick test_conv_layer;
      Alcotest.test_case "conv_transpose2d layer" `Quick test_deconv_layer;
      Alcotest.test_case "dense layer" `Quick test_dense_layer;
      Alcotest.test_case "input gradient" `Quick test_input_gradient;
    ] )
