(* Autodiff engine: per-op gradients (exact or adjoint-identity based),
   gradient accumulation across re-used nodes, and loss semantics. *)

let feq tol = Alcotest.(check (float tol))

let grad_of v = Tensor.to_array (Value.grad v)

let test_add_grad () =
  let a = Value.leaf (Tensor.of_array [| 2 |] [| 1.; 2. |]) in
  let b = Value.leaf (Tensor.of_array [| 2 |] [| 3.; 4. |]) in
  let s = Value.sum_all (Value.add a b) in
  Value.backward s;
  Alcotest.(check (array (float 1e-6))) "da" [| 1.; 1. |] (grad_of a);
  Alcotest.(check (array (float 1e-6))) "db" [| 1.; 1. |] (grad_of b)

let test_sub_grad () =
  let a = Value.leaf (Tensor.of_array [| 2 |] [| 1.; 2. |]) in
  let b = Value.leaf (Tensor.of_array [| 2 |] [| 3.; 4. |]) in
  Value.backward (Value.sum_all (Value.sub a b));
  Alcotest.(check (array (float 1e-6))) "db = -1" [| -1.; -1. |] (grad_of b)

let test_mul_grad () =
  let a = Value.leaf (Tensor.of_array [| 2 |] [| 2.; 3. |]) in
  let b = Value.leaf (Tensor.of_array [| 2 |] [| 5.; 7. |]) in
  Value.backward (Value.sum_all (Value.mul a b));
  Alcotest.(check (array (float 1e-6))) "da = b" [| 5.; 7. |] (grad_of a);
  Alcotest.(check (array (float 1e-6))) "db = a" [| 2.; 3. |] (grad_of b)

let test_scale_neg () =
  let a = Value.leaf (Tensor.of_array [| 2 |] [| 1.; -1. |]) in
  Value.backward (Value.sum_all (Value.neg (Value.scale a 3.0)));
  Alcotest.(check (array (float 1e-6))) "chain" [| -3.; -3. |] (grad_of a)

let test_reuse_accumulates () =
  (* y = a + a: gradient must be 2. *)
  let a = Value.leaf (Tensor.of_array [| 1 |] [| 5.0 |]) in
  Value.backward (Value.sum_all (Value.add a a));
  feq 1e-6 "d(a+a)/da = 2" 2.0 (Tensor.get (Value.grad a) 0)

let test_param_accumulation () =
  (* Two separate graphs over the same parameter accumulate into p.grad. *)
  let p = Param.create "p" (Tensor.of_array [| 1 |] [| 2.0 |]) in
  Value.backward (Value.sum_all (Value.of_param p));
  Value.backward (Value.sum_all (Value.scale (Value.of_param p) 3.0));
  feq 1e-6 "sum over graphs" 4.0 (Tensor.get p.Param.grad 0);
  Param.zero_grad p;
  feq 1e-6 "zeroed" 0.0 (Tensor.get p.Param.grad 0)

let test_activations () =
  let x = Tensor.of_array [| 4 |] [| -2.0; -0.5; 0.5; 2.0 |] in
  let a = Value.leaf x in
  Value.backward (Value.sum_all (Value.relu a));
  Alcotest.(check (array (float 1e-6))) "relu grad" [| 0.; 0.; 1.; 1. |] (grad_of a);
  let b = Value.leaf x in
  Value.backward (Value.sum_all (Value.leaky_relu 0.2 b));
  Alcotest.(check (array (float 1e-5))) "leaky grad" [| 0.2; 0.2; 1.; 1. |] (grad_of b);
  let c = Value.leaf (Tensor.of_array [| 1 |] [| 0.3 |]) in
  Value.backward (Value.sum_all (Value.tanh_ c));
  let th = Float.tanh 0.3 in
  feq 1e-4 "tanh grad" (1.0 -. (th *. th)) (Tensor.get (Value.grad c) 0);
  let d = Value.leaf (Tensor.of_array [| 1 |] [| 0.3 |]) in
  Value.backward (Value.sum_all (Value.sigmoid d));
  let s = 1.0 /. (1.0 +. exp (-0.3)) in
  feq 1e-4 "sigmoid grad" (s *. (1.0 -. s)) (Tensor.get (Value.grad d) 0)

let test_dropout_eval_identity () =
  let rng = Prng.create 1 in
  let x = Tensor.of_array [| 4 |] [| 1.; 2.; 3.; 4. |] in
  let out = Value.dropout rng ~rate:0.5 ~training:false (Value.leaf x) in
  Alcotest.(check (array (float 1e-6))) "identity at eval" (Tensor.to_array x)
    (Tensor.to_array (Value.value out))

let test_dropout_training_scaling () =
  let rng = Prng.create 2 in
  let n = 10_000 in
  let x = Tensor.ones [| n |] in
  let out = Value.value (Value.dropout rng ~rate:0.3 ~training:true (Value.leaf x)) in
  (* Survivors are scaled by 1/(1-rate); the mean stays ~1. *)
  let mean = Tensor.mean out in
  Alcotest.(check bool) "mean preserved" true (Float.abs (mean -. 1.0) < 0.05);
  let is_valid v = v = 0.0 || Float.abs (v -. (1.0 /. 0.7)) < 1e-4 in
  Alcotest.(check bool) "values are 0 or 1/(1-p)" true
    (Array.for_all is_valid (Tensor.to_array out))

let test_reshape_grad () =
  let a = Value.leaf (Tensor.of_array [| 4 |] [| 1.; 2.; 3.; 4. |]) in
  let r = Value.reshape a [| 2; 2 |] in
  Value.backward (Value.sum_all r);
  Alcotest.(check (array int)) "grad shape follows leaf" [| 4 |]
    (Tensor.shape (Value.grad a))

let test_concat_grad () =
  let a = Value.leaf (Tensor.ones [| 1; 1; 2; 2 |]) in
  let b = Value.leaf (Tensor.ones [| 1; 2; 2; 2 |]) in
  let j = Value.concat_channels a b in
  Value.backward (Value.sum_all (Value.scale j 2.0));
  Alcotest.(check (array (float 1e-6))) "da" [| 2.; 2.; 2.; 2. |] (grad_of a);
  Alcotest.(check int) "db size" 8 (Tensor.numel (Value.grad b))

let test_linear_grad () =
  (* y = x W^T + b with known values. *)
  let x = Value.leaf (Tensor.of_array [| 1; 2 |] [| 1.; 2. |]) in
  let w = Value.leaf (Tensor.of_array [| 2; 2 |] [| 1.; 0.; 0.; 1. |]) in
  let b = Value.leaf (Tensor.of_array [| 2 |] [| 0.5; -0.5 |]) in
  let y = Value.linear ~weight:w ~bias:(Some b) x in
  Alcotest.(check (array (float 1e-5))) "forward" [| 1.5; 1.5 |]
    (Tensor.to_array (Value.value y));
  Value.backward (Value.sum_all y);
  Alcotest.(check (array (float 1e-5))) "dx = col sums of W" [| 1.; 1. |] (grad_of x);
  Alcotest.(check (array (float 1e-5))) "dW = outer(g, x)" [| 1.; 2.; 1.; 2. |] (grad_of w);
  Alcotest.(check (array (float 1e-5))) "db" [| 1.; 1. |] (grad_of b)

let test_batch_norm_forward () =
  (* With gamma=1, beta=0 a training-mode BN output has zero mean and unit
     variance per channel. *)
  let rng = Prng.create 3 in
  let x = Value.leaf (Tensor.randn rng [| 4; 2; 3; 3 |]) in
  let gamma = Value.leaf (Tensor.ones [| 2 |]) in
  let beta = Value.leaf (Tensor.zeros [| 2 |]) in
  let rm = Array.make 2 0.0 and rv = Array.make 2 1.0 in
  let y =
    Value.batch_norm ~gamma ~beta ~running_mean:rm ~running_var:rv ~momentum:0.5
      ~eps:1e-5 ~training:true x
  in
  let means, vars = Tensor.channel_mean_var (Value.value y) in
  Array.iter (fun m -> Alcotest.(check bool) "mean 0" true (Float.abs m < 1e-3)) means;
  Array.iter (fun v -> Alcotest.(check bool) "var 1" true (Float.abs (v -. 1.0) < 1e-2)) vars;
  Alcotest.(check bool) "running mean updated" true (rm.(0) <> 0.0 || rm.(1) <> 0.0)

let test_batch_norm_grad_fd () =
  let rng = Prng.create 7 in
  let xt = Tensor.randn rng [| 2; 2; 3; 3 |] in
  let rm = Array.make 2 0.0 and rv = Array.make 2 1.0 in
  let target = Tensor.randn rng [| 2; 2; 3; 3 |] in
  let f () =
    let x = Value.leaf xt in
    let gamma = Value.leaf (Tensor.ones [| 2 |]) in
    let beta = Value.leaf (Tensor.zeros [| 2 |]) in
    let y =
      Value.batch_norm ~gamma ~beta ~running_mean:rm ~running_var:rv ~momentum:0.0
        ~eps:1e-5 ~training:true x
    in
    (Value.mse_loss y target, x)
  in
  let loss, x = f () in
  Value.backward loss;
  let l0 = Tensor.get (Value.value loss) 0 in
  let eps = 1e-2 in
  for i = 0 to 5 do
    let orig = Tensor.get xt i in
    Tensor.set xt i (orig +. eps);
    let l1, _ = f () in
    Tensor.set xt i orig;
    let fd = (Tensor.get (Value.value l1) 0 -. l0) /. eps in
    let an = Tensor.get (Value.grad x) i in
    Alcotest.(check bool) "bn dx matches fd" true (Float.abs (fd -. an) < 0.05 *. (1.0 +. Float.abs fd))
  done

let test_losses_values () =
  let a = Value.leaf (Tensor.of_array [| 2 |] [| 1.0; 3.0 |]) in
  let t = Tensor.of_array [| 2 |] [| 0.0; 1.0 |] in
  feq 1e-5 "l1" 1.5 (Tensor.get (Value.value (Value.l1_loss a t)) 0);
  feq 1e-5 "mse" 2.5 (Tensor.get (Value.value (Value.mse_loss a t)) 0);
  let logits = Value.leaf (Tensor.of_array [| 1 |] [| 0.0 |]) in
  feq 1e-4 "bce at logit 0" (log 2.0)
    (Tensor.get (Value.value (Value.bce_with_logits logits (Tensor.of_array [| 1 |] [| 1.0 |]))) 0)

let test_bce_grad () =
  let logits = Value.leaf (Tensor.of_array [| 1 |] [| 0.7 |]) in
  let t = Tensor.of_array [| 1 |] [| 1.0 |] in
  Value.backward (Value.bce_with_logits logits t);
  let s = 1.0 /. (1.0 +. exp (-0.7)) in
  feq 1e-4 "d bce = sigmoid - t" (s -. 1.0) (Tensor.get (Value.grad logits) 0)

let test_mean_all_grad () =
  let a = Value.leaf (Tensor.of_array [| 4 |] [| 1.; 2.; 3.; 4. |]) in
  Value.backward (Value.mean_all a);
  Alcotest.(check (array (float 1e-6))) "1/n" [| 0.25; 0.25; 0.25; 0.25 |] (grad_of a)

let test_const_has_no_grad () =
  let c = Value.const (Tensor.ones [| 2 |]) in
  let l = Value.leaf (Tensor.ones [| 2 |]) in
  Value.backward (Value.sum_all (Value.mul c l));
  Alcotest.(check (array (float 1e-6))) "leaf got grad" [| 1.; 1. |] (grad_of l)

let suite =
  ( "value (autodiff)",
    [
      Alcotest.test_case "add grad" `Quick test_add_grad;
      Alcotest.test_case "sub grad" `Quick test_sub_grad;
      Alcotest.test_case "mul grad" `Quick test_mul_grad;
      Alcotest.test_case "scale/neg chain" `Quick test_scale_neg;
      Alcotest.test_case "node reuse accumulates" `Quick test_reuse_accumulates;
      Alcotest.test_case "param accumulation across graphs" `Quick test_param_accumulation;
      Alcotest.test_case "activations" `Quick test_activations;
      Alcotest.test_case "dropout eval identity" `Quick test_dropout_eval_identity;
      Alcotest.test_case "dropout training scaling" `Quick test_dropout_training_scaling;
      Alcotest.test_case "reshape grad" `Quick test_reshape_grad;
      Alcotest.test_case "concat grad" `Quick test_concat_grad;
      Alcotest.test_case "linear grad" `Quick test_linear_grad;
      Alcotest.test_case "batch norm forward" `Quick test_batch_norm_forward;
      Alcotest.test_case "batch norm dx (finite diff)" `Quick test_batch_norm_grad_fd;
      Alcotest.test_case "loss values" `Quick test_losses_values;
      Alcotest.test_case "bce grad" `Quick test_bce_grad;
      Alcotest.test_case "mean_all grad" `Quick test_mean_all_grad;
      Alcotest.test_case "const has no grad" `Quick test_const_has_no_grad;
    ] )
