(* Workload generators: determinism, exact trace lengths, suite registry
   invariants, and the benchmark-group-aware train/test split. *)

let test_builder_exact_length () =
  let trace = Workload.Builder.run 100 (fun b -> Workload.Builder.emit b 0) in
  Alcotest.(check int) "exact length" 100 (Array.length trace)

let test_builder_wraps_short_generators () =
  (* A generator that emits 7 addresses restarts until the sink is full. *)
  let trace =
    Workload.Builder.run 20 (fun b ->
        for i = 0 to 6 do
          Workload.Builder.emit b (i * 8)
        done)
  in
  Alcotest.(check int) "length" 20 (Array.length trace);
  Alcotest.(check int) "wrapped content" 0 trace.(7)

let test_builder_read_helper () =
  let trace =
    Workload.Builder.run 1 (fun b -> Workload.Builder.read b ~base:1000 ~index:3 ~elem_bytes:8)
  in
  Alcotest.(check int) "address arithmetic" 1024 trace.(0)

let test_all_workloads_deterministic () =
  (* Every registered workload generates identical traces on repeated calls.
     Sampled on a prefix of the roster to keep the test quick. *)
  let ws = Suite.all () in
  List.iteri
    (fun i w ->
      if i mod 11 = 0 then begin
        let a = w.Workload.generate 2000 and b = w.Workload.generate 2000 in
        Alcotest.(check bool) (w.Workload.name ^ " deterministic") true (a = b);
        Alcotest.(check int) (w.Workload.name ^ " length") 2000 (Array.length a)
      end)
    ws

let test_roster_counts () =
  Alcotest.(check int) "spec-like count" 48 (List.length (Suite.of_suite Workload.Spec));
  Alcotest.(check int) "ligra-like count" 25 (List.length (Suite.of_suite Workload.Ligra));
  Alcotest.(check int) "polybench-like count" 36 (List.length (Suite.of_suite Workload.Polybench))

let test_names_unique () =
  let names = List.map (fun w -> w.Workload.name) (Suite.all ()) in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_find () =
  let w = Suite.find "gemm.small" in
  Alcotest.(check string) "found" "gemm.small" w.Workload.name;
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Suite.find "nope"))

let test_split_group_disjoint =
  QCheck.Test.make ~name:"split keeps groups together" ~count:20 QCheck.small_int
    (fun seed ->
      let split = Suite.split ~seed (Suite.all ()) in
      Suite.split_disjoint split)

let test_split_covers_everything () =
  let all = Suite.all () in
  let split = Suite.split ~seed:1 all in
  Alcotest.(check int) "partition" (List.length all)
    (List.length split.Suite.train + List.length split.Suite.test);
  Alcotest.(check bool) "train nonempty" true (split.Suite.train <> []);
  Alcotest.(check bool) "test nonempty" true (split.Suite.test <> [])

let test_split_fraction () =
  let all = Suite.all () in
  let split = Suite.split ~seed:3 ~train_fraction:0.8 all in
  let frac = float_of_int (List.length split.Suite.train) /. float_of_int (List.length all) in
  Alcotest.(check bool) "roughly 80/20" true (frac > 0.6 && frac < 0.95)

let test_spec_phases_share_group () =
  let spec = Suite.of_suite Workload.Spec in
  let gcc = List.filter (fun w -> w.Workload.group = "602.gcc_s") spec in
  Alcotest.(check int) "two phases" 2 (List.length gcc);
  match gcc with
  | [ a; b ] ->
    Alcotest.(check bool) "phases differ" true
      (a.Workload.generate 1000 <> b.Workload.generate 1000)
  | _ -> Alcotest.fail "unexpected"

let test_polykernel_traces_nontrivial () =
  List.iter
    (fun name ->
      let t = Polykernels.trace ~name ~size:16 1000 in
      Alcotest.(check int) (name ^ " length") 1000 (Array.length t);
      let distinct = List.sort_uniq compare (Array.to_list t) in
      Alcotest.(check bool) (name ^ " touches several addresses") true
        (List.length distinct > 4))
    Polykernels.kernel_names

let test_zipf_pattern_hot_set () =
  (* The Zipf pattern concentrates accesses on few blocks. *)
  let trace =
    Synth.trace_of_patterns ~seed:5
      [ (Synth.Zipf { region_bytes = 64 * 1024; exponent = 1.2 }, 1.0) ]
      20_000
  in
  let table = Hashtbl.create 256 in
  Array.iter
    (fun a ->
      let b = a / 64 in
      Hashtbl.replace table b (1 + Option.value ~default:0 (Hashtbl.find_opt table b)))
    trace;
  let counts = List.sort (fun a b -> compare b a) (Hashtbl.fold (fun _ c acc -> c :: acc) table []) in
  match counts with
  | top :: _ ->
    Alcotest.(check bool) "hot block dominates" true (top > 20000 / 100)
  | [] -> Alcotest.fail "empty"

let test_stream_pattern_is_sequential () =
  let trace =
    Synth.trace_of_patterns ~seed:6
      [ (Synth.Stream { region_bytes = 4096; stride = 8 }, 1.0) ]
      512
  in
  Alcotest.(check int) "wraps modulo region" 0 (trace.(512 / 1 - 1) mod 4096 mod 8);
  let deltas_ok = ref true in
  for i = 1 to 100 do
    let d = trace.(i) - trace.(i - 1) in
    if d <> 8 && d <> 8 - 4096 then deltas_ok := false
  done;
  Alcotest.(check bool) "stride-8 deltas" true !deltas_ok

let test_graph_csr_well_formed () =
  let g = Graphs.uniform_graph ~seed:1 ~vertices:100 ~avg_degree:4 in
  Alcotest.(check int) "offsets length" 101 (Array.length g.Graphs.offsets);
  Alcotest.(check int) "edge count" 400 (Array.length g.Graphs.edges);
  Alcotest.(check int) "offsets end" 400 g.Graphs.offsets.(100);
  Array.iter
    (fun v -> Alcotest.(check bool) "edge target in range" true (v >= 0 && v < 100))
    g.Graphs.edges;
  for v = 0 to 99 do
    Alcotest.(check bool) "offsets monotone" true (g.Graphs.offsets.(v) <= g.Graphs.offsets.(v + 1))
  done

let test_rmat_graph_pow2 () =
  let g = Graphs.rmat_graph ~seed:2 ~vertices:100 ~avg_degree:4 in
  Alcotest.(check int) "rounded to power of two" 128 g.Graphs.vertex_count

let test_graph_algorithms_run () =
  let g = Graphs.uniform_graph ~seed:3 ~vertices:200 ~avg_degree:4 in
  List.iter
    (fun algo ->
      let t = Graphs.trace ~algo ~graph:g 500 in
      Alcotest.(check int) (algo ^ " length") 500 (Array.length t))
    Graphs.algorithm_names

let test_table1_apps_have_phases () =
  List.iter
    (fun app ->
      let phases = List.filter (fun w -> w.Workload.group = app) (Suite.of_suite Workload.Spec) in
      Alcotest.(check bool) (app ^ " has >= 2 phases") true (List.length phases >= 2))
    Synth.table1_apps

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "workloads",
    [
      Alcotest.test_case "builder exact length" `Quick test_builder_exact_length;
      Alcotest.test_case "builder wraps" `Quick test_builder_wraps_short_generators;
      Alcotest.test_case "builder read helper" `Quick test_builder_read_helper;
      Alcotest.test_case "determinism (sampled)" `Slow test_all_workloads_deterministic;
      Alcotest.test_case "roster counts" `Quick test_roster_counts;
      Alcotest.test_case "unique names" `Quick test_names_unique;
      Alcotest.test_case "find" `Quick test_find;
      Alcotest.test_case "split covers all" `Quick test_split_covers_everything;
      Alcotest.test_case "split fraction" `Quick test_split_fraction;
      Alcotest.test_case "phases share group" `Quick test_spec_phases_share_group;
      Alcotest.test_case "polykernels nontrivial" `Slow test_polykernel_traces_nontrivial;
      Alcotest.test_case "zipf hot set" `Quick test_zipf_pattern_hot_set;
      Alcotest.test_case "stream sequential" `Quick test_stream_pattern_is_sequential;
      Alcotest.test_case "csr well formed" `Quick test_graph_csr_well_formed;
      Alcotest.test_case "rmat power of two" `Quick test_rmat_graph_pow2;
      Alcotest.test_case "graph algorithms run" `Quick test_graph_algorithms_run;
      Alcotest.test_case "table1 apps" `Quick test_table1_apps_have_phases;
      qc test_split_group_disjoint;
    ] )
