(* Multi-level hierarchy: per-level trace recording, miss propagation, and
   prefetcher integration. *)

let l1 = Cache.config ~sets:2 ~ways:2 ()
let l2 = Cache.config ~sets:4 ~ways:4 ()
let l3 = Cache.config ~sets:8 ~ways:4 ()

let blocks bs = Array.of_list (List.map (fun b -> b * 64) bs)

let test_l1_only () =
  let h = Hierarchy.create ~l1 () in
  Hierarchy.run h (blocks [ 0; 0; 1 ]);
  match Hierarchy.level_traces h with
  | [ t ] ->
    Alcotest.(check int) "three accesses" 3 (Array.length t.Hierarchy.addresses);
    Alcotest.(check (array bool)) "hits" [| false; true; false |] t.Hierarchy.hits
  | _ -> Alcotest.fail "expected one level"

let test_miss_propagation () =
  let h = Hierarchy.create ~l2 ~l3 ~l1 () in
  Hierarchy.run h (blocks [ 0; 0; 1; 0 ]);
  match Hierarchy.level_traces h with
  | [ t1; t2; t3 ] ->
    Alcotest.(check int) "L1 sees all" 4 (Array.length t1.Hierarchy.addresses);
    let l1_misses = Array.length (Array.of_seq (Seq.filter not (Array.to_seq t1.Hierarchy.hits))) in
    Alcotest.(check int) "L2 sees exactly the L1 misses" l1_misses
      (Array.length t2.Hierarchy.addresses);
    let l2_misses = Array.length (Array.of_seq (Seq.filter not (Array.to_seq t2.Hierarchy.hits))) in
    Alcotest.(check int) "L3 sees exactly the L2 misses" l2_misses
      (Array.length t3.Hierarchy.addresses)
  | _ -> Alcotest.fail "expected three levels"

let test_propagation_random =
  QCheck.Test.make ~name:"level i+1 stream = level i misses" ~count:50
    QCheck.(list_of_size Gen.(20 -- 300) (int_range 0 500))
    (fun bs ->
      let h = Hierarchy.create ~l2 ~l1 () in
      Hierarchy.run h (blocks bs);
      match Hierarchy.level_traces h with
      | [ t1; t2 ] ->
        let missed =
          Array.to_list t1.Hierarchy.addresses
          |> List.filteri (fun i _ -> not t1.Hierarchy.hits.(i))
        in
        missed = Array.to_list t2.Hierarchy.addresses
      | _ -> false)

let test_stats_match_traces () =
  let h = Hierarchy.create ~l2 ~l1 () in
  Hierarchy.run h (blocks [ 0; 1; 2; 3; 0; 1 ]);
  List.iter2
    (fun (lvl, (s : Cache.stats)) (t : Hierarchy.level_trace) ->
      Alcotest.(check bool) "same level" true (lvl = t.Hierarchy.level);
      Alcotest.(check int) "accesses" s.Cache.accesses (Array.length t.Hierarchy.addresses);
      Alcotest.(check (float 1e-9)) "hit rate" (Cache.hit_rate s)
        (Hierarchy.trace_hit_rate t))
    (Hierarchy.stats h) (Hierarchy.level_traces h)

let test_next_line_prefetcher () =
  let h = Hierarchy.create ~l1 ~l1_prefetcher:Prefetch.Next_line () in
  (* Access block 0; next-line should have filled block 1, so a demand for
     block 1 hits. *)
  ignore (Hierarchy.access h 0);
  Alcotest.(check bool) "prefetched next block hits" true (Hierarchy.access h 64);
  let pf = Hierarchy.prefetched_addresses h in
  Alcotest.(check bool) "prefetches recorded" true (Array.length pf >= 1);
  Alcotest.(check int) "first prefetch is next line" 64 pf.(0)

let test_reset () =
  let h = Hierarchy.create ~l2 ~l1 () in
  Hierarchy.run h (blocks [ 0; 1; 2 ]);
  Hierarchy.reset h;
  List.iter
    (fun (t : Hierarchy.level_trace) ->
      Alcotest.(check int) "traces cleared" 0 (Array.length t.Hierarchy.addresses))
    (Hierarchy.level_traces h)

let test_l3_requires_l2 () =
  Alcotest.check_raises "l3 without l2"
    (Invalid_argument "Hierarchy.create: cannot have an L3 without an L2") (fun () ->
      ignore (Hierarchy.create ~l3 ~l1 ()))

let test_level_names () =
  Alcotest.(check string) "L1" "L1" (Hierarchy.level_name Hierarchy.L1);
  Alcotest.(check string) "L2" "L2" (Hierarchy.level_name Hierarchy.L2);
  Alcotest.(check string) "L3" "L3" (Hierarchy.level_name Hierarchy.L3)

(* --- prefetcher unit behaviour --- *)

let test_prefetch_none () =
  let p = Prefetch.create Prefetch.No_prefetch in
  Alcotest.(check (list int)) "no proposals" []
    (Prefetch.on_access p ~addr:0 ~block_bytes:64);
  Alcotest.(check int) "none issued" 0 (Prefetch.issued p)

let test_prefetch_next_line () =
  let p = Prefetch.create Prefetch.Next_line in
  Alcotest.(check (list int)) "next block" [ 128 ]
    (Prefetch.on_access p ~addr:64 ~block_bytes:64);
  Alcotest.(check (list int)) "offset folded to block" [ 128 ]
    (Prefetch.on_access p ~addr:100 ~block_bytes:64);
  Alcotest.(check int) "issued counted" 2 (Prefetch.issued p)

let test_prefetch_stride () =
  let p = Prefetch.create (Prefetch.Stride { degree = 2; table_size = 16 }) in
  (* Constant stride of 2 blocks within one region; confidence builds after
     two confirmations, then prefetches fire. *)
  let accesses = [ 0; 128; 256; 384; 512 ] in
  let all = List.concat_map (fun a -> Prefetch.on_access p ~addr:a ~block_bytes:64) accesses in
  Alcotest.(check bool) "eventually fires" true (List.length all > 0);
  (* Prefetches are the next strided blocks. *)
  (match all with
  | a :: _ -> Alcotest.(check int) "strided target" 0 ((a / 64) mod 2)
  | [] -> ());
  Prefetch.reset p;
  Alcotest.(check int) "reset clears issued" 0 (Prefetch.issued p)

let test_prefetch_stride_irregular () =
  let p = Prefetch.create (Prefetch.Stride { degree = 1; table_size = 8 }) in
  (* A random walk should not build confidence. *)
  let rng = Prng.create 9 in
  let fired = ref 0 in
  let block = ref 0 in
  for _ = 1 to 50 do
    block := max 0 (!block + Prng.int rng 11 - 5);
    fired := !fired + List.length (Prefetch.on_access p ~addr:(!block * 64) ~block_bytes:64)
  done;
  Alcotest.(check bool) "mostly silent on noise" true (!fired < 10)

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "hierarchy & prefetch",
    [
      Alcotest.test_case "single level" `Quick test_l1_only;
      Alcotest.test_case "miss propagation" `Quick test_miss_propagation;
      Alcotest.test_case "stats match traces" `Quick test_stats_match_traces;
      Alcotest.test_case "next-line prefetcher fills L1" `Quick test_next_line_prefetcher;
      Alcotest.test_case "reset" `Quick test_reset;
      Alcotest.test_case "l3 requires l2" `Quick test_l3_requires_l2;
      Alcotest.test_case "level names" `Quick test_level_names;
      Alcotest.test_case "no-prefetch" `Quick test_prefetch_none;
      Alcotest.test_case "next-line proposals" `Quick test_prefetch_next_line;
      Alcotest.test_case "stride detection" `Quick test_prefetch_stride;
      Alcotest.test_case "stride ignores noise" `Quick test_prefetch_stride_irregular;
      qc test_propagation_random;
    ] )
