(* Tensor storage and elementwise/reduction/structure operations. *)

let feq = Alcotest.(check (float 1e-4))

let test_create_shape () =
  let t = Tensor.zeros [| 2; 3; 4 |] in
  Alcotest.(check int) "numel" 24 (Tensor.numel t);
  Alcotest.(check (array int)) "shape" [| 2; 3; 4 |] (Tensor.shape t);
  Alcotest.(check int) "dim" 3 (Tensor.dim t 1);
  Alcotest.check_raises "bad dims" (Invalid_argument "Tensor.create: dims must be positive")
    (fun () -> ignore (Tensor.create [| 2; 0 |]))

let test_of_array_roundtrip () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  let t = Tensor.of_array [| 2; 3 |] a in
  Alcotest.(check (array (float 1e-6))) "roundtrip" a (Tensor.to_array t);
  feq "get2" 6.0 (Tensor.get2 t 1 2)

let test_view_shares () =
  let t = Tensor.zeros [| 4 |] in
  let v = Tensor.view t [| 2; 2 |] in
  Tensor.set2 v 1 1 9.0;
  feq "aliasing" 9.0 (Tensor.get t 3);
  Alcotest.check_raises "bad view" (Invalid_argument "Tensor.view: element count mismatch")
    (fun () -> ignore (Tensor.view t [| 3 |]))

let test_sub_view () =
  let t = Tensor.of_array [| 6 |] [| 0.; 1.; 2.; 3.; 4.; 5. |] in
  let v = Tensor.sub_view t ~off:2 ~shape:[| 2; 2 |] in
  feq "subview read" 3.0 (Tensor.get2 v 0 1);
  Tensor.set2 v 1 0 42.0;
  feq "subview write-through" 42.0 (Tensor.get t 4)

let test_get4 () =
  let t = Tensor.of_array [| 1; 2; 2; 2 |] [| 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7. |] in
  feq "nchw indexing" 5.0 (Tensor.get4 t 0 1 0 1);
  Tensor.set4 t 0 1 1 0 (-1.0);
  feq "set4" (-1.0) (Tensor.get t 6)

let test_elementwise () =
  let a = Tensor.of_array [| 3 |] [| 1.; 2.; 3. |] in
  let b = Tensor.of_array [| 3 |] [| 4.; 5.; 6. |] in
  Alcotest.(check (array (float 1e-6))) "add" [| 5.; 7.; 9. |] (Tensor.to_array (Tensor.add a b));
  Alcotest.(check (array (float 1e-6))) "sub" [| -3.; -3.; -3. |] (Tensor.to_array (Tensor.sub a b));
  Alcotest.(check (array (float 1e-6))) "mul" [| 4.; 10.; 18. |] (Tensor.to_array (Tensor.mul a b));
  Alcotest.(check (array (float 1e-5))) "div" [| 0.25; 0.4; 0.5 |] (Tensor.to_array (Tensor.div a b));
  Alcotest.(check (array (float 1e-6))) "scale" [| 2.; 4.; 6. |] (Tensor.to_array (Tensor.scale a 2.0));
  Alcotest.(check (array (float 1e-6))) "neg" [| -1.; -2.; -3. |] (Tensor.to_array (Tensor.neg a))

let test_inplace () =
  let a = Tensor.of_array [| 3 |] [| 1.; 2.; 3. |] in
  let b = Tensor.of_array [| 3 |] [| 1.; 1.; 1. |] in
  Tensor.add_ a b;
  Alcotest.(check (array (float 1e-6))) "add_" [| 2.; 3.; 4. |] (Tensor.to_array a);
  Tensor.axpy ~alpha:2.0 ~x:b ~y:a;
  Alcotest.(check (array (float 1e-6))) "axpy" [| 4.; 5.; 6. |] (Tensor.to_array a);
  Tensor.clip_ a ~lo:4.5 ~hi:5.5;
  Alcotest.(check (array (float 1e-6))) "clip_" [| 4.5; 5.; 5.5 |] (Tensor.to_array a);
  Tensor.scale_ a 2.0;
  feq "scale_" 9.0 (Tensor.get a 0)

let test_size_mismatch () =
  let a = Tensor.zeros [| 3 |] and b = Tensor.zeros [| 4 |] in
  Alcotest.check_raises "add mismatch" (Invalid_argument "Tensor.add: size mismatch")
    (fun () -> ignore (Tensor.add a b))

let test_reductions () =
  let t = Tensor.of_array [| 4 |] [| 1.; -2.; 3.; 0.5 |] in
  feq "sum" 2.5 (Tensor.sum t);
  feq "mean" 0.625 (Tensor.mean t);
  feq "max" 3.0 (Tensor.max_value t);
  feq "min" (-2.0) (Tensor.min_value t)

let test_channel_mean_var () =
  (* Naive reference over a random NCHW tensor. *)
  let rng = Prng.create 11 in
  let t = Tensor.randn rng [| 2; 3; 4; 5 |] in
  let means, vars = Tensor.channel_mean_var t in
  for c = 0 to 2 do
    let acc = ref 0.0 and acc2 = ref 0.0 and count = ref 0 in
    for n = 0 to 1 do
      for h = 0 to 3 do
        for w = 0 to 4 do
          let v = Tensor.get4 t n c h w in
          acc := !acc +. v;
          acc2 := !acc2 +. (v *. v);
          incr count
        done
      done
    done;
    let m = !acc /. float_of_int !count in
    let var = (!acc2 /. float_of_int !count) -. (m *. m) in
    Alcotest.(check (float 1e-3)) "mean" m means.(c);
    Alcotest.(check (float 1e-3)) "var" var vars.(c)
  done

let test_concat_split_roundtrip =
  QCheck.Test.make ~name:"concat/split roundtrip" ~count:100
    QCheck.(quad (int_range 1 3) (int_range 1 4) (int_range 1 4) (int_range 1 5))
    (fun (n, ca, cb, h) ->
      let rng = Prng.create (n + (ca * 10) + (cb * 100) + (h * 1000)) in
      let a = Tensor.randn rng [| n; ca; h; h |] in
      let b = Tensor.randn rng [| n; cb; h; h |] in
      let joined = Tensor.concat_channels a b in
      let a', b' = Tensor.split_channels joined ca in
      Tensor.to_array a = Tensor.to_array a' && Tensor.to_array b = Tensor.to_array b')

let test_slice_stack () =
  let rng = Prng.create 13 in
  let a = Tensor.randn rng [| 2; 3 |] in
  let b = Tensor.randn rng [| 1; 3 |] in
  let s = Tensor.stack_batch [ a; b ] in
  Alcotest.(check (array int)) "stacked shape" [| 3; 3 |] (Tensor.shape s);
  let back = Tensor.slice_batch s 0 2 in
  Alcotest.(check (array (float 1e-6))) "slice back" (Tensor.to_array a) (Tensor.to_array back);
  let last = Tensor.slice_batch s 2 1 in
  Alcotest.(check (array (float 1e-6))) "slice last" (Tensor.to_array b) (Tensor.to_array last)

let test_map_fold () =
  let t = Tensor.of_array [| 3 |] [| 1.; 2.; 3. |] in
  let sq = Tensor.map (fun v -> v *. v) t in
  Alcotest.(check (array (float 1e-6))) "map" [| 1.; 4.; 9. |] (Tensor.to_array sq);
  feq "fold" 6.0 (Tensor.fold ( +. ) 0.0 t);
  let m2 = Tensor.map2 (fun a b -> a +. (2.0 *. b)) t sq in
  Alcotest.(check (array (float 1e-6))) "map2" [| 3.; 10.; 21. |] (Tensor.to_array m2)

let test_randn_deterministic () =
  let a = Tensor.randn (Prng.create 5) [| 10 |] in
  let b = Tensor.randn (Prng.create 5) [| 10 |] in
  Alcotest.(check (array (float 0.0))) "same seed same tensor" (Tensor.to_array a) (Tensor.to_array b)

let test_dpool_matches_serial =
  QCheck.Test.make ~name:"parallel_map_array = Array.map" ~count:30
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(0 -- 50) int))
    (fun (domains, xs) ->
      let a = Array.of_list xs in
      Dpool.parallel_map_array ~domains (fun x -> (x * 7) + 1) a
      = Array.map (fun x -> (x * 7) + 1) a)

let test_dpool_recommended () =
  Alcotest.(check bool) "at least one domain" true (Dpool.recommended () >= 1)

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "tensor",
    [
      Alcotest.test_case "create/shape" `Quick test_create_shape;
      Alcotest.test_case "of_array roundtrip" `Quick test_of_array_roundtrip;
      Alcotest.test_case "view shares storage" `Quick test_view_shares;
      Alcotest.test_case "sub_view" `Quick test_sub_view;
      Alcotest.test_case "nchw get4/set4" `Quick test_get4;
      Alcotest.test_case "elementwise" `Quick test_elementwise;
      Alcotest.test_case "in-place ops" `Quick test_inplace;
      Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
      Alcotest.test_case "reductions" `Quick test_reductions;
      Alcotest.test_case "channel_mean_var vs naive" `Quick test_channel_mean_var;
      Alcotest.test_case "slice/stack batch" `Quick test_slice_stack;
      Alcotest.test_case "map/fold/map2" `Quick test_map_fold;
      Alcotest.test_case "randn determinism" `Quick test_randn_deterministic;
      Alcotest.test_case "dpool recommended" `Quick test_dpool_recommended;
      qc test_concat_split_roundtrip;
      qc test_dpool_matches_serial;
    ] )
