test/test_hierarchy.ml: Alcotest Array Cache Gen Hierarchy List Prefetch Prng QCheck QCheck_alcotest Seq
