test/test_gradcheck.ml: Alcotest Dpool Float Fun Layers List Param Prng Tensor Value
