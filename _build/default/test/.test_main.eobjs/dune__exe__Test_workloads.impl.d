test/test_workloads.ml: Alcotest Array Graphs Hashtbl List Option Polykernels QCheck QCheck_alcotest Suite Synth Workload
