test/test_baselines.ml: Alcotest Array Cache Float Gen Hrd List Prng QCheck QCheck_alcotest Reuse_distance Stm Tabsynth
