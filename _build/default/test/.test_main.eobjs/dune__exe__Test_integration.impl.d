test/test_integration.ml: Alcotest Array Cache Cbgan Cbox_dataset Cbox_infer Experiments Filename Heatmap Hierarchy List Metrics Suite Sys Tensor Trace_io Unix Workload
