test/test_golden.ml: Alcotest Array Cache Format Hierarchy List Multicachesim Printf Sys
