test/test_blas.ml: Alcotest Array Blas Float Prng QCheck QCheck_alcotest Tensor
