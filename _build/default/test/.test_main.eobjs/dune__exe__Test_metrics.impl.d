test/test_metrics.ml: Alcotest Array Float Metrics Prng QCheck QCheck_alcotest String Tensor
