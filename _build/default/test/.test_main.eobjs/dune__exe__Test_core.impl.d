test/test_core.ml: Alcotest Array Cache Cbgan Cbox_dataset Cbox_infer Cbox_train Filename Float Heatmap Hierarchy List Prefetch Prng QCheck QCheck_alcotest Sys Tensor Value Workload
