test/test_characterize.ml: Alcotest Array Cache Characterize List Prng QCheck QCheck_alcotest
