test/test_prng.ml: Alcotest Array Float Gen List Prng QCheck QCheck_alcotest
