test/test_tensor.ml: Alcotest Array Dpool Gen Prng QCheck QCheck_alcotest Tensor
