test/test_heatmap.ml: Alcotest Array Cache Filename Float Heatmap List Prng QCheck QCheck_alcotest String Sys Tensor
