test/test_conv.ml: Alcotest Array Conv Float Prng QCheck QCheck_alcotest Tensor
