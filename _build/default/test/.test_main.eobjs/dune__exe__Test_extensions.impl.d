test/test_extensions.ml: Alcotest Array Cache Filename Gen Hashtbl Inclusion List Prng QCheck QCheck_alcotest String Sys Trace_io Victim
