test/test_value.ml: Alcotest Array Float Param Prng Tensor Value
