test/test_multicachesim.ml: Alcotest Array Cache Gen List Multicachesim QCheck QCheck_alcotest
