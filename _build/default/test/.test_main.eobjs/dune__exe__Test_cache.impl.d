test/test_cache.ml: Alcotest Cache Gen List QCheck QCheck_alcotest
