test/test_nn.ml: Alcotest Array Checkpoint Filename Layers List Optimizer Param Prng Sys Tensor Value
