test/test_dpool.ml: Alcotest Array Dpool List Printf QCheck QCheck_alcotest
