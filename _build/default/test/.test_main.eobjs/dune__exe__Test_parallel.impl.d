test/test_parallel.ml: Array Blas Conv Dpool Float Printf Prng QCheck QCheck_alcotest Tensor
