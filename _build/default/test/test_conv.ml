(* Convolution kernels: naive references, adjoint identities, and shape
   arithmetic. The adjoint identities <Ax, g> = <x, A^T g> are exact up to
   float32 rounding and pin down the backward passes completely. *)

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Tensor.numel a - 1 do
    acc := !acc +. (Tensor.get a i *. Tensor.get b i)
  done;
  !acc

let rel_close x y = Float.abs (x -. y) <= 1e-3 *. (1.0 +. Float.max (Float.abs x) (Float.abs y))

let naive_conv2d ~x ~weight ~stride ~pad =
  let n = Tensor.dim x 0 and ic = Tensor.dim x 1 in
  let h = Tensor.dim x 2 and w = Tensor.dim x 3 in
  let oc = Tensor.dim weight 0 and kernel = Tensor.dim weight 2 in
  let oh = Conv.out_size ~size:h ~kernel ~stride ~pad in
  let ow = Conv.out_size ~size:w ~kernel ~stride ~pad in
  let y = Tensor.zeros [| n; oc; oh; ow |] in
  for ni = 0 to n - 1 do
    for oci = 0 to oc - 1 do
      for ohi = 0 to oh - 1 do
        for owi = 0 to ow - 1 do
          let acc = ref 0.0 in
          for ici = 0 to ic - 1 do
            for kh = 0 to kernel - 1 do
              for kw = 0 to kernel - 1 do
                let ih = (ohi * stride) - pad + kh and iw = (owi * stride) - pad + kw in
                if ih >= 0 && ih < h && iw >= 0 && iw < w then
                  acc :=
                    !acc
                    +. (Tensor.get4 x ni ici ih iw *. Tensor.get4 weight oci ici kh kw)
              done
            done
          done;
          Tensor.set4 y ni oci ohi owi !acc
        done
      done
    done
  done;
  y

let test_conv_matches_naive =
  QCheck.Test.make ~name:"conv2d = naive" ~count:60
    QCheck.(
      quad (int_range 1 2) (int_range 1 3) (int_range 3 8)
        (pair (int_range 1 2) small_int))
    (fun (n, ic, hw, (stride, seed)) ->
      let rng = Prng.create seed in
      let kernel = 3 and pad = 1 in
      let x = Tensor.randn rng [| n; ic; hw; hw |] in
      let w = Tensor.randn rng [| 2; ic; kernel; kernel |] in
      let fast = Conv.conv2d ~x ~weight:w ~bias:None ~stride ~pad in
      let slow = naive_conv2d ~x ~weight:w ~stride ~pad in
      let fa = Tensor.to_array fast and sa = Tensor.to_array slow in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-3) fa sa)

let test_conv_bias () =
  let x = Tensor.ones [| 1; 1; 4; 4 |] in
  let w = Tensor.zeros [| 2; 1; 3; 3 |] in
  let bias = Tensor.of_array [| 2 |] [| 1.5; -2.0 |] in
  let y = Conv.conv2d ~x ~weight:w ~bias:(Some bias) ~stride:1 ~pad:1 in
  Alcotest.(check (float 1e-5)) "bias ch0" 1.5 (Tensor.get4 y 0 0 2 2);
  Alcotest.(check (float 1e-5)) "bias ch1" (-2.0) (Tensor.get4 y 0 1 0 0)

let test_out_sizes () =
  Alcotest.(check int) "conv 64->32" 32 (Conv.out_size ~size:64 ~kernel:4 ~stride:2 ~pad:1);
  Alcotest.(check int) "tconv 32->64" 64 (Conv.tconv_out_size ~size:32 ~kernel:4 ~stride:2 ~pad:1);
  Alcotest.(check int) "tconv 1->2" 2 (Conv.tconv_out_size ~size:1 ~kernel:4 ~stride:2 ~pad:1);
  Alcotest.check_raises "degenerate"
    (Invalid_argument "Conv.out_size: non-positive output size") (fun () ->
      ignore (Conv.out_size ~size:1 ~kernel:4 ~stride:2 ~pad:0))

let test_tconv_inverts_conv_shape =
  QCheck.Test.make ~name:"tconv size inverts conv size" ~count:100
    QCheck.(int_range 4 128)
    (fun size ->
      let down = Conv.out_size ~size ~kernel:4 ~stride:2 ~pad:1 in
      Conv.tconv_out_size ~size:down ~kernel:4 ~stride:2 ~pad:1 = (size / 2) * 2)

let test_conv_adjoint =
  QCheck.Test.make ~name:"conv2d backward is the adjoint" ~count:40
    QCheck.(pair small_int (int_range 1 2))
    (fun (seed, stride) ->
      let rng = Prng.create seed in
      let x = Tensor.randn rng [| 2; 2; 6; 6 |] in
      let w = Tensor.randn rng [| 3; 2; 3; 3 |] in
      let ax = Conv.conv2d ~x ~weight:w ~bias:None ~stride ~pad:1 in
      let g = Tensor.randn rng (Tensor.shape ax) in
      let gw = Tensor.zeros (Tensor.shape w) in
      let atg =
        Conv.conv2d_backward ~x ~weight:w ~gout:g ~stride ~pad:1 ~grad_weight:gw
          ~grad_bias:None
      in
      rel_close (dot ax g) (dot x atg))

let test_tconv_adjoint =
  QCheck.Test.make ~name:"conv_transpose2d backward is the adjoint" ~count:40
    QCheck.(pair small_int (int_range 1 2))
    (fun (seed, stride) ->
      let rng = Prng.create (seed + 77) in
      let x = Tensor.randn rng [| 2; 3; 5; 5 |] in
      let w = Tensor.randn rng [| 3; 2; 4; 4 |] in
      let ax = Conv.conv_transpose2d ~x ~weight:w ~bias:None ~stride ~pad:1 in
      let g = Tensor.randn rng (Tensor.shape ax) in
      let gw = Tensor.zeros (Tensor.shape w) in
      let atg =
        Conv.conv_transpose2d_backward ~x ~weight:w ~gout:g ~stride ~pad:1
          ~grad_weight:gw ~grad_bias:None
      in
      rel_close (dot ax g) (dot x atg))

let test_weight_gradient_fd () =
  (* dphi/dW for phi(W) = <conv(x; W), g> equals the accumulated grad. *)
  let rng = Prng.create 4 in
  let x = Tensor.randn rng [| 1; 2; 5; 5 |] in
  let w = Tensor.randn rng [| 2; 2; 3; 3 |] in
  let stride = 2 and pad = 1 in
  let g = Tensor.randn rng (Tensor.shape (Conv.conv2d ~x ~weight:w ~bias:None ~stride ~pad)) in
  let gw = Tensor.zeros (Tensor.shape w) in
  ignore (Conv.conv2d_backward ~x ~weight:w ~gout:g ~stride ~pad ~grad_weight:gw ~grad_bias:None);
  let phi () = dot (Conv.conv2d ~x ~weight:w ~bias:None ~stride ~pad) g in
  let p0 = phi () in
  let eps = 1e-3 in
  for i = 0 to 10 do
    let orig = Tensor.get w i in
    Tensor.set w i (orig +. eps);
    let fd = (phi () -. p0) /. eps in
    Tensor.set w i orig;
    Alcotest.(check bool) "fd matches" true (Float.abs (fd -. Tensor.get gw i) < 0.05 *. (1.0 +. Float.abs fd))
  done

let test_bias_gradient () =
  let x = Tensor.ones [| 2; 1; 4; 4 |] in
  let w = Tensor.zeros [| 1; 1; 3; 3 |] in
  let y = Conv.conv2d ~x ~weight:w ~bias:None ~stride:1 ~pad:1 in
  let gout = Tensor.ones (Tensor.shape y) in
  let gw = Tensor.zeros (Tensor.shape w) in
  let gb = Tensor.zeros [| 1 |] in
  ignore (Conv.conv2d_backward ~x ~weight:w ~gout ~stride:1 ~pad:1 ~grad_weight:gw ~grad_bias:(Some gb));
  (* 2 samples x 16 output pixels *)
  Alcotest.(check (float 1e-4)) "bias grad sums gout" 32.0 (Tensor.get gb 0)

let test_im2col_col2im_adjoint =
  QCheck.Test.make ~name:"col2im is the adjoint of im2col" ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let x = Tensor.randn rng [| 1; 2; 6; 6 |] in
      let cols = Conv.im2col x ~n:0 ~kernel:3 ~stride:2 ~pad:1 in
      let g = Tensor.randn rng (Tensor.shape cols) in
      let back = Tensor.zeros (Tensor.shape x) in
      Conv.col2im g ~dst:back ~n:0 ~channels:2 ~height:6 ~width:6 ~kernel:3 ~stride:2 ~pad:1;
      rel_close (dot cols g) (dot x back))

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "conv",
    [
      Alcotest.test_case "bias broadcast" `Quick test_conv_bias;
      Alcotest.test_case "output sizes" `Quick test_out_sizes;
      Alcotest.test_case "weight gradient (finite diff)" `Quick test_weight_gradient_fd;
      Alcotest.test_case "bias gradient" `Quick test_bias_gradient;
      qc test_conv_matches_naive;
      qc test_tconv_inverts_conv_shape;
      qc test_conv_adjoint;
      qc test_tconv_adjoint;
      qc test_im2col_col2im_adjoint;
    ] )
