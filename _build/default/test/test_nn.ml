(* Layers, optimizers and checkpointing. *)

let feq tol = Alcotest.(check (float tol))

let test_sgd_quadratic () =
  (* Minimise (x - 3)^2 by SGD. *)
  let p = Param.create "x" (Tensor.of_array [| 1 |] [| 0.0 |]) in
  let opt = Optimizer.sgd ~lr:0.1 [ p ] in
  for _ = 1 to 100 do
    Optimizer.zero_grad opt;
    let x = Value.of_param p in
    let loss = Value.mse_loss x (Tensor.of_array [| 1 |] [| 3.0 |]) in
    Value.backward loss;
    Optimizer.step opt
  done;
  feq 1e-2 "converged" 3.0 (Tensor.get p.Param.value 0)

let test_sgd_momentum () =
  let p = Param.create "x" (Tensor.of_array [| 1 |] [| 0.0 |]) in
  let opt = Optimizer.sgd ~lr:0.05 ~momentum:0.9 [ p ] in
  for _ = 1 to 200 do
    Optimizer.zero_grad opt;
    let loss = Value.mse_loss (Value.of_param p) (Tensor.of_array [| 1 |] [| -2.0 |]) in
    Value.backward loss;
    Optimizer.step opt
  done;
  feq 5e-2 "converged with momentum" (-2.0) (Tensor.get p.Param.value 0)

let test_adam_rosenbrockish () =
  (* Adam on a 2-parameter quadratic with very different curvatures; Adam's
     per-parameter scaling should still converge quickly. *)
  let p = Param.create "xy" (Tensor.of_array [| 2 |] [| 5.0; -5.0 |]) in
  let target = Tensor.of_array [| 2 |] [| 1.0; 2.0 |] in
  let opt = Optimizer.adam ~lr:0.1 [ p ] in
  for _ = 1 to 500 do
    Optimizer.zero_grad opt;
    let diff = Value.sub (Value.of_param p) (Value.const target) in
    let scaled = Value.mul diff (Value.const (Tensor.of_array [| 2 |] [| 10.0; 0.1 |])) in
    Value.backward (Value.sum_all (Value.mul scaled scaled));
    Optimizer.step opt
  done;
  feq 0.1 "fast axis" 1.0 (Tensor.get p.Param.value 0);
  feq 0.1 "slow axis" 2.0 (Tensor.get p.Param.value 1)

let test_clip_grad_norm () =
  let p = Param.create "g" (Tensor.zeros [| 4 |]) in
  Tensor.fill p.Param.grad 10.0;
  let opt = Optimizer.sgd ~lr:1.0 [ p ] in
  Optimizer.clip_grad_norm opt ~max_norm:1.0;
  feq 1e-4 "clipped norm" 1.0 (Optimizer.grad_norm opt)

let test_zero_grad () =
  let p = Param.create "z" (Tensor.zeros [| 2 |]) in
  Tensor.fill p.Param.grad 5.0;
  let opt = Optimizer.adam ~lr:0.1 [ p ] in
  Optimizer.zero_grad opt;
  feq 1e-9 "grads cleared" 0.0 (Optimizer.grad_norm opt)

let test_param_group_unique () =
  let a = Param.create "same" (Tensor.zeros [| 1 |]) in
  let b = Param.create "same" (Tensor.zeros [| 1 |]) in
  Alcotest.check_raises "duplicate names rejected"
    (Invalid_argument "Param.group: duplicate parameter name same") (fun () ->
      ignore (Param.group [ [ a ]; [ b ] ]))

let test_layers_shapes () =
  let rng = Prng.create 1 in
  let conv =
    Layers.conv2d rng ~name:"c" ~in_channels:3 ~out_channels:5 ~kernel:4 ~stride:2
      ~pad:1 ~bias:true
  in
  let x = Value.const (Tensor.zeros [| 2; 3; 8; 8 |]) in
  let y = Layers.apply_conv2d conv x in
  Alcotest.(check (array int)) "conv shape" [| 2; 5; 4; 4 |] (Tensor.shape (Value.value y));
  let tconv =
    Layers.conv_transpose2d rng ~name:"t" ~in_channels:5 ~out_channels:3 ~kernel:4
      ~stride:2 ~pad:1 ~bias:true
  in
  let z = Layers.apply_conv_transpose2d tconv y in
  Alcotest.(check (array int)) "tconv shape" [| 2; 3; 8; 8 |] (Tensor.shape (Value.value z));
  Alcotest.(check int) "conv params" 2 (List.length (Layers.conv2d_params conv));
  let lin = Layers.linear rng ~name:"l" ~in_dim:4 ~out_dim:3 ~bias:false in
  let out = Layers.apply_linear lin (Value.const (Tensor.zeros [| 2; 4 |])) in
  Alcotest.(check (array int)) "linear shape" [| 2; 3 |] (Tensor.shape (Value.value out))

let test_batch_norm_layer_state () =
  let rng = Prng.create 2 in
  let bn = Layers.batch_norm rng ~name:"bn" ~channels:3 in
  Alcotest.(check int) "two state arrays" 2 (List.length (Layers.batch_norm_state bn));
  let x = Value.const (Tensor.randn rng [| 4; 3; 2; 2 |]) in
  ignore (Layers.apply_batch_norm bn ~training:true x);
  Alcotest.(check bool) "running stats moved" true
    (Array.exists (fun v -> v <> 0.0) bn.Layers.running_mean)

let test_checkpoint_roundtrip () =
  let dir = Filename.temp_file "cbox" "" in
  Sys.remove dir;
  let path = dir ^ ".ckpt" in
  let rng = Prng.create 3 in
  let p1 = Param.create "layer.weight" (Tensor.randn rng [| 3; 4 |]) in
  let p2 = Param.create "layer.bias" (Tensor.randn rng [| 3 |]) in
  let state = [ ("layer.running", [| 1.5; -2.5 |]) ] in
  Checkpoint.save path ~params:[ p1; p2 ] ~state;
  let q1 = Param.create "layer.weight" (Tensor.zeros [| 3; 4 |]) in
  let q2 = Param.create "layer.bias" (Tensor.zeros [| 3 |]) in
  let st = [| 0.0; 0.0 |] in
  Checkpoint.load path ~params:[ q1; q2 ] ~state:[ ("layer.running", st) ];
  Alcotest.(check (array (float 1e-6))) "weights restored"
    (Tensor.to_array p1.Param.value) (Tensor.to_array q1.Param.value);
  Alcotest.(check (array (float 1e-6))) "bias restored"
    (Tensor.to_array p2.Param.value) (Tensor.to_array q2.Param.value);
  Alcotest.(check (array (float 1e-6))) "state restored" [| 1.5; -2.5 |] st;
  let entries = Checkpoint.entries path in
  Alcotest.(check int) "entry count" 3 (List.length entries);
  Sys.remove path

let test_checkpoint_missing_entry () =
  let path = Filename.temp_file "cbox" ".ckpt" in
  Checkpoint.save path ~params:[] ~state:[];
  let p = Param.create "absent" (Tensor.zeros [| 1 |]) in
  (try
     Checkpoint.load path ~params:[ p ] ~state:[];
     Alcotest.fail "expected failure"
   with Failure _ -> ());
  Sys.remove path

let test_checkpoint_shape_mismatch () =
  let path = Filename.temp_file "cbox" ".ckpt" in
  let p = Param.create "w" (Tensor.zeros [| 2; 2 |]) in
  Checkpoint.save path ~params:[ p ] ~state:[];
  let q = Param.create "w" (Tensor.zeros [| 4 |]) in
  (try
     Checkpoint.load path ~params:[ q ] ~state:[];
     Alcotest.fail "expected failure"
   with Failure _ -> ());
  Sys.remove path

let suite =
  ( "nn (layers/optim/checkpoint)",
    [
      Alcotest.test_case "sgd quadratic" `Quick test_sgd_quadratic;
      Alcotest.test_case "sgd momentum" `Quick test_sgd_momentum;
      Alcotest.test_case "adam anisotropic" `Quick test_adam_rosenbrockish;
      Alcotest.test_case "clip grad norm" `Quick test_clip_grad_norm;
      Alcotest.test_case "zero grad" `Quick test_zero_grad;
      Alcotest.test_case "param group uniqueness" `Quick test_param_group_unique;
      Alcotest.test_case "layer shapes" `Quick test_layers_shapes;
      Alcotest.test_case "batch norm layer state" `Quick test_batch_norm_layer_state;
      Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
      Alcotest.test_case "checkpoint missing entry" `Quick test_checkpoint_missing_entry;
      Alcotest.test_case "checkpoint shape mismatch" `Quick test_checkpoint_shape_mismatch;
    ] )
