(* Trace characterization toolkit. *)

let seq_trace n = Array.init n (fun i -> i * 64)

let test_summary_sequential () =
  let s = Characterize.summarize (seq_trace 1000) in
  Alcotest.(check int) "accesses" 1000 s.Characterize.accesses;
  Alcotest.(check int) "footprint" 1000 s.Characterize.footprint_blocks;
  Alcotest.(check bool) "fully sequential" true (s.Characterize.sequential_fraction > 0.99);
  Alcotest.(check (float 1e-6)) "all cold" 1.0 s.Characterize.cold_fraction

let test_summary_hot_block () =
  let s = Characterize.summarize (Array.make 1000 4096) in
  Alcotest.(check int) "one block" 1 s.Characterize.footprint_blocks;
  Alcotest.(check bool) "same-block dominated" true (s.Characterize.same_block_fraction > 0.99);
  Alcotest.(check (float 1e-6)) "top8 covers all" 1.0 s.Characterize.top8_block_share;
  Alcotest.(check (float 1e-6)) "mean reuse distance 0" 0.0 s.Characterize.mean_reuse_distance

let test_working_set_curve () =
  let curve = Characterize.working_set_curve ~window:100 (seq_trace 250) in
  Alcotest.(check int) "three windows" 3 (List.length curve);
  List.iter
    (fun (start, distinct) ->
      let expected = min 100 (250 - start) in
      Alcotest.(check int) "distinct = window size for a stream" expected distinct)
    curve

let test_stride_histogram () =
  let h = Characterize.stride_histogram ~top:3 (seq_trace 500) in
  match h with
  | (d, c) :: _ ->
    Alcotest.(check int) "dominant stride +1" 1 d;
    Alcotest.(check int) "count" 499 c
  | [] -> Alcotest.fail "empty histogram"

let test_miss_ratio_curve_monotone =
  QCheck.Test.make ~name:"miss ratio non-increasing in capacity" ~count:30
    QCheck.small_int (fun seed ->
      let rng = Prng.create seed in
      let trace = Array.init 2000 (fun _ -> Prng.zipf rng ~n:600 ~s:1.1 * 64) in
      let curve =
        Characterize.miss_ratio_curve ~capacities:[ 8; 32; 128; 512; 2048 ] trace
      in
      let rec monotone = function
        | (_, a) :: ((_, b) :: _ as rest) -> a +. 1e-9 >= b && monotone rest
        | _ -> true
      in
      monotone curve)

let test_miss_ratio_matches_simulation () =
  (* Fully-associative LRU simulation agrees with the curve. *)
  let rng = Prng.create 5 in
  let trace = Array.init 3000 (fun _ -> Prng.int rng 256 * 64) in
  let cap = 64 in
  let cache = Cache.create (Cache.config ~sets:1 ~ways:cap ()) in
  Array.iter (fun a -> ignore (Cache.access cache a)) trace;
  let sim_mr = 1.0 -. Cache.hit_rate (Cache.stats cache) in
  match Characterize.miss_ratio_curve ~capacities:[ cap ] trace with
  | [ (_, mr) ] -> Alcotest.(check (float 1e-9)) "exact agreement" sim_mr mr
  | _ -> Alcotest.fail "unexpected"

let test_empty_trace_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Characterize.summarize: empty trace")
    (fun () -> ignore (Characterize.summarize [||]))

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "characterize",
    [
      Alcotest.test_case "sequential summary" `Quick test_summary_sequential;
      Alcotest.test_case "hot-block summary" `Quick test_summary_hot_block;
      Alcotest.test_case "working-set curve" `Quick test_working_set_curve;
      Alcotest.test_case "stride histogram" `Quick test_stride_histogram;
      Alcotest.test_case "miss-ratio = simulation" `Quick test_miss_ratio_matches_simulation;
      Alcotest.test_case "empty trace" `Quick test_empty_trace_rejected;
      qc test_miss_ratio_curve_monotone;
    ] )
