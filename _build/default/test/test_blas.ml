(* GEMM/GEMV against naive references, over randomized shapes. *)

let naive_matmul a b =
  let m = Tensor.dim a 0 and k = Tensor.dim a 1 and n = Tensor.dim b 1 in
  let c = Tensor.zeros [| m; n |] in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for p = 0 to k - 1 do
        acc := !acc +. (Tensor.get2 a i p *. Tensor.get2 b p j)
      done;
      Tensor.set2 c i j !acc
    done
  done;
  c

let close a b =
  let aa = Tensor.to_array a and bb = Tensor.to_array b in
  Array.for_all2 (fun x y -> Float.abs (x -. y) <= 1e-3 *. (1.0 +. Float.abs y)) aa bb

let test_matmul_matches_naive =
  QCheck.Test.make ~name:"matmul = naive" ~count:100
    QCheck.(quad (int_range 1 9) (int_range 1 9) (int_range 1 9) small_int)
    (fun (m, k, n, seed) ->
      let rng = Prng.create seed in
      let a = Tensor.randn rng [| m; k |] and b = Tensor.randn rng [| k; n |] in
      close (Blas.matmul a b) (naive_matmul a b))

let test_gemm_transposes =
  QCheck.Test.make ~name:"gemm with transposes = naive" ~count:100
    QCheck.(quad (int_range 1 8) (int_range 1 8) (int_range 1 8) small_int)
    (fun (m, k, n, seed) ->
      let rng = Prng.create (seed + 1) in
      let a_t = Tensor.randn rng [| k; m |] in
      let b_t = Tensor.randn rng [| n; k |] in
      let c = Tensor.zeros [| m; n |] in
      Blas.gemm ~trans_a:true ~trans_b:true ~alpha:1.0 ~a:a_t ~b:b_t ~beta:0.0 c;
      close c (naive_matmul (Blas.transpose a_t) (Blas.transpose b_t)))

let test_gemm_alpha_beta () =
  let a = Tensor.of_array [| 2; 2 |] [| 1.; 0.; 0.; 1. |] in
  let b = Tensor.of_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let c = Tensor.of_array [| 2; 2 |] [| 10.; 10.; 10.; 10. |] in
  Blas.gemm ~alpha:2.0 ~a ~b ~beta:0.5 c;
  Alcotest.(check (array (float 1e-4))) "alpha*A*B + beta*C"
    [| 7.; 9.; 11.; 13. |] (Tensor.to_array c)

let test_gemm_accumulates () =
  let a = Tensor.of_array [| 1; 1 |] [| 2.0 |] in
  let b = Tensor.of_array [| 1; 1 |] [| 3.0 |] in
  let c = Tensor.of_array [| 1; 1 |] [| 1.0 |] in
  Blas.gemm ~alpha:1.0 ~a ~b ~beta:1.0 c;
  Alcotest.(check (float 1e-5)) "beta=1 accumulates" 7.0 (Tensor.get c 0)

let test_transpose_involution =
  QCheck.Test.make ~name:"transpose involution" ~count:100
    QCheck.(triple (int_range 1 10) (int_range 1 10) small_int)
    (fun (m, n, seed) ->
      let t = Tensor.randn (Prng.create seed) [| m; n |] in
      Tensor.to_array (Blas.transpose (Blas.transpose t)) = Tensor.to_array t)

let test_gemv () =
  let a = Tensor.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let x = Tensor.of_array [| 3 |] [| 1.; 0.; -1. |] in
  let y = Blas.gemv ~a ~x in
  Alcotest.(check (array (float 1e-5))) "gemv" [| -2.; -2. |] (Tensor.to_array y)

let test_dim_mismatch () =
  let a = Tensor.zeros [| 2; 3 |] and b = Tensor.zeros [| 2; 3 |] in
  let c = Tensor.zeros [| 2; 3 |] in
  Alcotest.check_raises "inner mismatch" (Invalid_argument "Blas.gemm: inner dimension mismatch")
    (fun () -> Blas.gemm ~alpha:1.0 ~a ~b ~beta:0.0 c)

let qc = QCheck_alcotest.to_alcotest

let suite =
  ( "blas",
    [
      Alcotest.test_case "alpha/beta semantics" `Quick test_gemm_alpha_beta;
      Alcotest.test_case "beta accumulation" `Quick test_gemm_accumulates;
      Alcotest.test_case "gemv" `Quick test_gemv;
      Alcotest.test_case "dim mismatch" `Quick test_dim_mismatch;
      qc test_matmul_matches_naive;
      qc test_gemm_transposes;
      qc test_transpose_involution;
    ] )
